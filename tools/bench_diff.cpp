// bench_diff — the CI regression gate over BENCH_*.json artifacts.
//
//   bench_diff <baseline.json> <candidate.json> [--rtol X] [--verbose]
//
// Loads two artifacts emitted by the bench harnesses (or cimflow_cli) and
// compares them metric-by-metric under each metric's own gate: exact metrics
// (cycles, instruction counts) must match bit-for-bit, rtol metrics (energy,
// TOPS) must stay within their recorded relative tolerance, and info metrics
// (wall-clock) are reported but never gated. A metric present in the baseline
// but missing from the candidate is a violation; new candidate metrics are
// listed but allowed (benches grow).
//
// Exit codes: 0 = pass, 1 = violations (table on stdout), 2 = usage/IO error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cimflow/support/artifact.hpp"
#include "cimflow/support/status.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff <baseline.json> <candidate.json> "
               "[--rtol X] [--verbose]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cimflow;
  std::vector<std::string> paths;
  double rtol_override = -1;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--rtol") == 0) {
      if (i + 1 >= argc) return usage();
      try {
        rtol_override = std::stod(argv[++i]);
      } catch (const std::exception&) {
        return usage();
      }
      if (rtol_override < 0) return usage();
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2) return usage();

  try {
    const BenchArtifact baseline = BenchArtifact::load(paths[0]);
    const BenchArtifact candidate = BenchArtifact::load(paths[1]);
    const BenchDiffResult diff = diff_artifacts(baseline, candidate, rtol_override);

    std::printf("bench_diff: '%s' — baseline %s (%zu metrics) vs candidate %s (%zu metrics)\n",
                baseline.bench.c_str(), paths[0].c_str(), baseline.metrics.size(),
                paths[1].c_str(), candidate.metrics.size());
    const std::string table = diff.table(verbose);
    if (!table.empty()) std::printf("%s", table.c_str());
    std::printf("%s\n", diff.summary().c_str());
    return diff.ok() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }
}
