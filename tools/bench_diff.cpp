// bench_diff — the CI regression gate over BENCH_*.json artifacts.
//
//   bench_diff <baseline.json> <candidate.json> [--rtol X] [--verbose]
//              [--info-trend] [--expect-rebaseline]
//   bench_diff <baseline-dir> <candidate-dir>   [same options]
//
// File mode loads two artifacts emitted by the bench harnesses (or
// cimflow_cli) and compares them metric-by-metric under each metric's own
// gate: exact metrics (cycles, instruction counts) must match bit-for-bit,
// rtol metrics (energy, TOPS) must stay within their recorded relative
// tolerance, and info metrics (wall-clock) are reported but never gated. A
// metric present in the baseline but missing from the candidate is a
// violation; new candidate metrics are listed but allowed (benches grow).
//
// Directory mode diffs every BENCH_*.json of the baseline directory against
// the same-named file in the candidate directory in one invocation — one
// combined violation report, a single exit code. A baseline file with no
// candidate counterpart is a violation (an artifact silently vanished);
// candidate-only files are listed but allowed.
//
// --info-trend additionally renders a delta table for the info-gated metrics
// (sim_wall_seconds, wall_ms, ...): the perf-trajectory view. It NEVER
// affects the exit code — info metrics stay ungated by definition; the
// nightly job pipes the table into its job summary.
//
// --expect-rebaseline flips the tool from gate to annotation: every metric
// (moved and unchanged) is rendered as an old-vs-new table and out-of-gate
// deltas are counted as documented moves instead of violations. Use it in the
// PR that intentionally swaps bench/baselines/ — the diff table becomes the
// reviewable record of exactly what the new baseline changed. The mode never
// fails on metric movement; only usage/IO errors exit non-zero.
//
// Exit codes: 0 = pass, 1 = violations (table on stdout), 2 = usage/IO error.
// Under --expect-rebaseline the violation exit is suppressed (0 or 2 only).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "cimflow/support/artifact.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace {

namespace fs = std::filesystem;

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff <baseline.json|baseline-dir> "
               "<candidate.json|candidate-dir> [--rtol X] [--verbose] [--info-trend] "
               "[--expect-rebaseline]\n");
  return 2;
}

/// The --expect-rebaseline annotation: every metric of the pair, old vs new,
/// with out-of-gate deltas tagged "moved" rather than failed. The table is the
/// reviewable record of an intentional baseline swap.
void print_rebaseline_annotation(const cimflow::BenchDiffResult& diff) {
  using cimflow::BenchDiffEntry;
  std::printf("rebaseline annotation (all metrics, nothing gated):\n");
  std::printf("  %-44s %14s %14s %9s  %s\n", "metric", "old", "new", "delta", "note");
  std::size_t moved = 0;
  for (const BenchDiffEntry& entry : diff.entries) {
    const char* note = "";
    switch (entry.kind) {
      case BenchDiffEntry::Kind::kViolation:
        note = "moved";
        ++moved;
        break;
      case BenchDiffEntry::Kind::kMissing:
        note = "dropped";
        ++moved;
        break;
      case BenchDiffEntry::Kind::kAdded:
        note = "new";
        break;
      case BenchDiffEntry::Kind::kInfo:
        note = "info";
        break;
      case BenchDiffEntry::Kind::kMatch:
        break;
    }
    const double base = entry.baseline;
    const double cand = entry.candidate;
    if (entry.kind == BenchDiffEntry::Kind::kAdded) {
      std::printf("  %-44s %14s %14.6g %9s  %s\n", entry.metric.c_str(), "-", cand,
                  "", note);
    } else if (entry.kind == BenchDiffEntry::Kind::kMissing) {
      std::printf("  %-44s %14.6g %14s %9s  %s\n", entry.metric.c_str(), base, "-", "",
                  note);
    } else {
      const double pct = base != 0 ? 100.0 * (cand - base) / base : 0;
      std::printf("  %-44s %14.6g %14.6g %+8.2f%%  %s\n", entry.metric.c_str(), base,
                  cand, pct, note);
    }
  }
  std::printf("rebaseline annotation: %zu metric(s) moved or dropped, %zu compared — "
              "documented, not gated\n",
              moved, diff.compared);
}

/// Renders the info-gated metrics of one diff as a delta table (the
/// trajectory view behind --info-trend). Candidate-only info metrics (a
/// freshly introduced measurement that the checked-in baseline predates)
/// appear with a "new" delta so the trajectory starts the night the metric
/// lands, not the night its baseline is regenerated. Reported only — info
/// metrics never gate, so this cannot change the exit code.
void print_info_trend(const cimflow::BenchDiffResult& diff,
                      const cimflow::BenchArtifact& candidate) {
  using cimflow::BenchDiffEntry;
  using cimflow::MetricGate;
  std::size_t infos = 0;
  auto header_once = [&] {
    if (infos == 0) {
      std::printf("info trend (reported, never gated):\n");
      std::printf("  %-44s %14s %14s %9s\n", "metric", "baseline", "candidate", "delta");
    }
    ++infos;
  };
  for (const BenchDiffEntry& entry : diff.entries) {
    if (entry.kind == BenchDiffEntry::Kind::kInfo) {
      header_once();
      const double base = entry.baseline;
      const double cand = entry.candidate;
      const double pct = base != 0 ? 100.0 * (cand - base) / base : 0;
      std::printf("  %-44s %14.6g %14.6g %+8.1f%%\n", entry.metric.c_str(), base, cand,
                  pct);
    } else if (entry.kind == BenchDiffEntry::Kind::kAdded) {
      const auto it = candidate.metrics.find(entry.metric);
      if (it == candidate.metrics.end() || it->second.gate != MetricGate::kInfo) continue;
      header_once();
      std::printf("  %-44s %14s %14.6g %9s\n", entry.metric.c_str(), "-",
                  it->second.value, "new");
    }
  }
  if (infos == 0) std::printf("info trend: no info metrics\n");
}

/// Sorted BENCH_*.json file names directly inside `dir`.
std::vector<std::string> artifact_names(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json") {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

/// Diffs one baseline/candidate artifact pair; returns its violation count.
std::size_t diff_pair(const std::string& baseline_path, const std::string& candidate_path,
                      double rtol_override, bool verbose, bool info_trend,
                      bool expect_rebaseline) {
  using namespace cimflow;
  const BenchArtifact baseline = BenchArtifact::load(baseline_path);
  const BenchArtifact candidate = BenchArtifact::load(candidate_path);
  const BenchDiffResult diff = diff_artifacts(baseline, candidate, rtol_override);

  std::printf("bench_diff: '%s' — baseline %s (%zu metrics) vs candidate %s (%zu metrics)\n",
              baseline.bench.c_str(), baseline_path.c_str(), baseline.metrics.size(),
              candidate_path.c_str(), candidate.metrics.size());
  if (expect_rebaseline) {
    print_rebaseline_annotation(diff);
    if (info_trend) print_info_trend(diff, candidate);
    return 0;
  }
  const std::string table = diff.table(verbose);
  if (!table.empty()) std::printf("%s", table.c_str());
  if (info_trend) print_info_trend(diff, candidate);
  std::printf("%s\n", diff.summary().c_str());
  return diff.violations;
}

std::size_t diff_directories(const std::string& baseline_dir,
                             const std::string& candidate_dir, double rtol_override,
                             bool verbose, bool info_trend, bool expect_rebaseline) {
  const std::vector<std::string> baseline_names = artifact_names(baseline_dir);
  if (baseline_names.empty()) {
    cimflow::raise(cimflow::ErrorCode::kInvalidArgument,
                   "no BENCH_*.json artifacts in " + baseline_dir);
  }
  std::size_t violations = 0;
  for (const std::string& name : baseline_names) {
    const std::string baseline_path = baseline_dir + "/" + name;
    const std::string candidate_path = candidate_dir + "/" + name;
    if (!fs::exists(candidate_path)) {
      // Even a rebaseline must not lose an artifact silently — an intentional
      // swap replaces metrics, it doesn't vanish whole files.
      std::printf("bench_diff: %s has no candidate counterpart in %s — VIOLATION\n",
                  name.c_str(), candidate_dir.c_str());
      ++violations;
      continue;
    }
    try {
      violations += diff_pair(baseline_path, candidate_path, rtol_override, verbose,
                              info_trend, expect_rebaseline);
    } catch (const cimflow::Error& e) {
      // A corrupt/unreadable artifact on either side fails this pair but
      // must not abort the combined report — the remaining pairs still diff.
      std::printf("bench_diff: %s unusable (%s) — VIOLATION\n", name.c_str(), e.what());
      ++violations;
    }
    std::printf("\n");
  }
  // Candidate-only artifacts: benches grow; report, don't gate.
  for (const std::string& name : artifact_names(candidate_dir)) {
    if (std::find(baseline_names.begin(), baseline_names.end(), name) ==
        baseline_names.end()) {
      std::printf("bench_diff: %s exists only in the candidate directory (allowed)\n",
                  name.c_str());
    }
  }
  std::printf("bench_diff: %zu artifact pair(s), %zu violation(s) total\n",
              baseline_names.size(), violations);
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cimflow;
  std::vector<std::string> paths;
  double rtol_override = -1;
  bool verbose = false;
  bool info_trend = false;
  bool expect_rebaseline = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--info-trend") == 0) {
      info_trend = true;
    } else if (std::strcmp(argv[i], "--expect-rebaseline") == 0) {
      expect_rebaseline = true;
    } else if (std::strcmp(argv[i], "--rtol") == 0) {
      if (i + 1 >= argc) return usage();
      try {
        // Strict: "--rtol 0.05x" is a named error, not a silent 0.05.
        rtol_override = parse_f64(argv[++i]);
      } catch (const Error& e) {
        std::fprintf(stderr, "bench_diff: --rtol: %s\n", e.what());
        return usage();
      }
      if (rtol_override < 0) return usage();
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2) return usage();

  try {
    const bool dirs = fs::is_directory(paths[0]) || fs::is_directory(paths[1]);
    if (dirs && !(fs::is_directory(paths[0]) && fs::is_directory(paths[1]))) {
      raise(ErrorCode::kInvalidArgument,
            "mixed file/directory arguments: " + paths[0] + " vs " + paths[1]);
    }
    const std::size_t violations =
        dirs ? diff_directories(paths[0], paths[1], rtol_override, verbose, info_trend,
                                expect_rebaseline)
             : diff_pair(paths[0], paths[1], rtol_override, verbose, info_trend,
                         expect_rebaseline);
    return violations == 0 ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    // e.g. std::filesystem_error from an unreadable directory — still the
    // documented usage/IO exit, never std::terminate.
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }
}
