// Fig. 6 reproduction: energy breakdown (local memory / compute unit / NoC)
// and throughput across architectures with different macro-group sizes
// (macros per MG in {4, 8, 12, 16}) and NoC link bandwidths (flit size 8 or
// 16 bytes), for ResNet18 (compute-intensive) and EfficientNetB0 (compact),
// compiled with the generic mapping strategy.
//
// Paper expectations:
//  - ResNet18: throughput scales with MG size; doubling flit size boosts
//    inter-layer pipeline throughput (paper: up to 39.6%); compute-unit
//    energy dominates.
//  - EfficientNetB0: larger MGs yield only modest gains; the NoC share of
//    energy grows large (paper: up to 55.4% at MG size 4 / 16-byte flits).
#include <cstdio>

#include "bench_common.hpp"
#include "cimflow/core/dse.hpp"

int main() {
  using namespace cimflow;
  using namespace cimflow::bench;
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();

  std::printf("=== Fig. 6: MG size / NoC bandwidth sweep (generic mapping) ===\n\n");
  for (const std::string& name : {std::string("resnet18"), std::string("efficientnetb0")}) {
    const graph::Graph model = models::build_model(name);
    const std::int64_t batch = batch_for(name);
    TextTable table({"MG size", "Flit", "TOPS", "mJ/img", "E.compute", "E.localmem",
                     "E.NoC", "E.static", "NoC % dyn"});
    double flit8_best = 0;
    double flit16_best = 0;
    for (std::int64_t flit : {8, 16}) {
      for (std::int64_t mg : {4, 8, 12, 16}) {
        const arch::ArchConfig arch = arch_with(base, mg, flit);
        const EvaluationReport report =
            evaluate(model, arch, compiler::Strategy::kGeneric, batch);
        const auto& e = report.sim.energy;
        const double images = static_cast<double>(report.sim.images);
        table.add_row({strprintf("%lld", (long long)mg), strprintf("%lldB", (long long)flit),
                       fmt(report.sim.tops(), "%.4f"),
                       fmt(report.sim.energy_per_image_mj()),
                       fmt(e.fig6_compute() * 1e-9 / images),
                       fmt(e.fig6_local_mem() * 1e-9 / images),
                       fmt(e.fig6_noc() * 1e-9 / images),
                       fmt(e.leakage * 1e-9 / images),
                       fmt(100.0 * e.fig6_noc() / e.dynamic_total(), "%.1f%%")});
        if (flit == 8) flit8_best = std::max(flit8_best, report.sim.tops());
        if (flit == 16) flit16_best = std::max(flit16_best, report.sim.tops());
      }
    }
    std::printf("--- %s (batch %lld) ---\n%s", name.c_str(), (long long)batch,
                table.to_string().c_str());
    std::printf("flit 8B -> 16B best-throughput gain: %.1f%%  (paper, ResNet18: up to 39.6%%)\n\n",
                100.0 * (flit16_best / flit8_best - 1.0));
  }
  return 0;
}
