// Fig. 6 reproduction: energy breakdown (local memory / compute unit / NoC)
// and throughput across architectures with different macro-group sizes
// (macros per MG in {4, 8, 12, 16}) and NoC link bandwidths (flit size 8 or
// 16 bytes), for ResNet18 (compute-intensive) and EfficientNetB0 (compact),
// compiled with the generic mapping strategy.
//
// Paper expectations:
//  - ResNet18: throughput scales with MG size; doubling flit size boosts
//    inter-layer pipeline throughput (paper: up to 39.6%); compute-unit
//    energy dominates.
//  - EfficientNetB0: larger MGs yield only modest gains; the NoC share of
//    energy grows large (paper: up to 55.4% at MG size 4 / 16-byte flits).
//
// The sweeps run through the parallel DseEngine. A final section checks the
// engine against the serial path: the same 16-point grid evaluated with 1 and
// 4 threads must produce byte-identical reports, and both wall-clocks are
// printed.
#include <cstdio>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "cimflow/core/dse.hpp"

namespace {

using namespace cimflow;

/// All report bytes of a sweep, in grid order — the serial/parallel
/// equivalence check compares these strings.
std::string sweep_digest(const DseResult& result) {
  std::string digest;
  for (const DsePoint& p : result.points) {
    digest += bench::fmt(static_cast<double>(p.index), "[%.0f] ");
    digest += p.ok ? p.report.summary() : "FAILED: " + p.error;
    digest += strprintf("seed=%llu\n", (unsigned long long)p.input_seed);
  }
  return digest;
}

}  // namespace

int main() {
  using namespace cimflow::bench;
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  BenchArtifact artifact;
  artifact.bench = "fig6";
  SimSpeedTally speed;

  std::printf("=== Fig. 6: MG size / NoC bandwidth sweep (generic mapping) ===\n\n");
  for (const std::string& name : {std::string("resnet18"), std::string("efficientnetb0")}) {
    const graph::Graph model = models::build_model(name);
    const std::int64_t batch = batch_for(name);

    DseJob job;
    job.mg_sizes = {4, 8, 12, 16};
    job.flit_sizes = {8, 16};
    job.strategies = {compiler::Strategy::kGeneric};
    job.batch = batch;
    const DseResult result = DseEngine().run(model, base, job);
    speed.add(result);

    TextTable table({"MG size", "Flit", "TOPS", "mJ/img", "E.compute", "E.localmem",
                     "E.NoC", "E.static", "NoC % dyn"});
    double flit8_best = 0;
    double flit16_best = 0;
    for (std::size_t flit_i = 0; flit_i < job.flit_sizes.size(); ++flit_i) {
      for (std::size_t mg_i = 0; mg_i < job.mg_sizes.size(); ++mg_i) {
        const DsePoint& p = result.points[mg_i * job.flit_sizes.size() + flit_i];
        if (!p.ok) {
          std::fprintf(stderr, "point %zu failed: %s\n", p.index, p.error.c_str());
          continue;
        }
        const auto& e = p.report.sim.energy;
        const double images = static_cast<double>(p.report.sim.images);
        table.add_row({strprintf("%lld", (long long)p.macros_per_group),
                       strprintf("%lldB", (long long)p.flit_bytes),
                       fmt(p.tops(), "%.4f"), fmt(p.energy_mj()),
                       fmt(e.fig6_compute() * 1e-9 / images),
                       fmt(e.fig6_local_mem() * 1e-9 / images),
                       fmt(e.fig6_noc() * 1e-9 / images),
                       fmt(e.leakage * 1e-9 / images),
                       fmt(100.0 * e.fig6_noc() / e.dynamic_total(), "%.1f%%")});
        if (p.flit_bytes == 8) flit8_best = std::max(flit8_best, p.tops());
        if (p.flit_bytes == 16) flit16_best = std::max(flit16_best, p.tops());
        add_sim_metrics(artifact,
                        strprintf("%s.mg%lld.flit%lld", name.c_str(),
                                  (long long)p.macros_per_group, (long long)p.flit_bytes),
                        p.report.sim);
      }
    }
    add_sweep_metrics(artifact, name + ".sweep", result.stats);
    artifact.set_float(name + ".flit16_over_flit8_gain",
                       flit8_best > 0 ? flit16_best / flit8_best - 1.0 : 0);
    std::printf("--- %s (batch %lld) ---\n%s", name.c_str(), (long long)batch,
                table.to_string().c_str());
    std::printf("sweep: %s\n", result.stats.summary().c_str());
    std::printf("flit 8B -> 16B best-throughput gain: %.1f%%  (paper, ResNet18: up to 39.6%%)\n\n",
                100.0 * (flit16_best / flit8_best - 1.0));
  }

  // --- engine vs. serial path: 16 points, batch 4, 1 vs 4 threads -----------
  std::printf("=== DseEngine parallel-vs-serial check (16 points, batch 4) ===\n");
  const graph::Graph model = models::build_model("efficientnetb0");
  DseJob check;
  check.mg_sizes = {4, 8, 12, 16};
  check.flit_sizes = {8, 16};
  check.strategies = {compiler::Strategy::kGeneric, compiler::Strategy::kDpOptimized};
  check.batch = 4;

  const DseResult serial = DseEngine(std::size_t{1}).run(model, base, check);
  const DseResult parallel = DseEngine(std::size_t{4}).run(model, base, check);
  speed.add(serial);
  speed.add(parallel);
  const bool identical = sweep_digest(serial) == sweep_digest(parallel);

  std::printf("serial   (1 thread):  %.1f ms\n", serial.stats.wall_ms);
  std::printf("parallel (4 threads): %.1f ms\n", parallel.stats.wall_ms);
  std::printf("speedup: %.2fx (%u hardware thread(s) available)\n",
              serial.stats.wall_ms / parallel.stats.wall_ms,
              std::thread::hardware_concurrency());
  std::printf("reports byte-identical: %s\n", identical ? "YES" : "NO (BUG)");

  artifact.set_exact("check.parallel_identical", identical ? 1 : 0);
  speed.emit(artifact);
  artifact.set_info("check.serial_wall_ms", serial.stats.wall_ms, "ms");
  artifact.set_info("check.parallel_wall_ms", parallel.stats.wall_ms, "ms");
  write_artifact(artifact);
  return identical ? 0 : 1;
}
