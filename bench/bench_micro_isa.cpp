// Microbenchmarks of the ISA layer: binary encode/decode and the textual
// assembler/disassembler round trip.
#include <benchmark/benchmark.h>

#include "cimflow/isa/assembler.hpp"
#include "cimflow/isa/instruction.hpp"
#include "cimflow/support/rng.hpp"

namespace {

using namespace cimflow;

std::vector<isa::Instruction> sample_instructions(std::size_t count) {
  std::vector<isa::Instruction> out;
  SplitMix64 rng(99);
  for (std::size_t i = 0; i < count; ++i) {
    switch (rng.next_below(6)) {
      case 0:
        out.push_back(isa::Instruction::cim_mvm(
            static_cast<std::uint8_t>(rng.next_below(32)),
            static_cast<std::uint8_t>(rng.next_below(32)),
            static_cast<std::uint8_t>(rng.next_below(32)), rng.next_below(2) != 0));
        break;
      case 1:
        out.push_back(isa::Instruction::vec_op(
            isa::VecFunct::kAdd8, static_cast<std::uint8_t>(rng.next_below(32)),
            static_cast<std::uint8_t>(rng.next_below(32)),
            static_cast<std::uint8_t>(rng.next_below(32)),
            static_cast<std::uint8_t>(rng.next_below(32))));
        break;
      case 2:
        out.push_back(isa::Instruction::sc_addi(
            isa::ScalarFunct::kAdd, static_cast<std::uint8_t>(rng.next_below(32)),
            static_cast<std::uint8_t>(rng.next_below(32)),
            static_cast<std::int32_t>(rng.next_in(-512, 511))));
        break;
      case 3:
        out.push_back(isa::Instruction::send(
            static_cast<std::uint8_t>(rng.next_below(32)),
            static_cast<std::uint8_t>(rng.next_below(32)),
            static_cast<std::uint8_t>(rng.next_below(32)),
            static_cast<std::int32_t>(rng.next_below(1024))));
        break;
      case 4:
        out.push_back(isa::Instruction::branch(
            isa::Opcode::kBlt, static_cast<std::uint8_t>(rng.next_below(32)),
            static_cast<std::uint8_t>(rng.next_below(32)),
            static_cast<std::int32_t>(rng.next_in(-100, 100))));
        break;
      default:
        out.push_back(isa::Instruction::g_li(
            static_cast<std::uint8_t>(rng.next_below(32)),
            static_cast<std::int32_t>(rng.next_in(-32768, 32767))));
        break;
    }
  }
  return out;
}

void BM_Encode(benchmark::State& state) {
  const auto instructions = sample_instructions(1024);
  for (auto _ : state) {
    for (const auto& inst : instructions) {
      benchmark::DoNotOptimize(isa::encode(inst));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Encode);

void BM_Decode(benchmark::State& state) {
  const auto instructions = sample_instructions(1024);
  std::vector<std::uint32_t> words;
  for (const auto& inst : instructions) words.push_back(isa::encode(inst));
  for (auto _ : state) {
    for (std::uint32_t word : words) {
      benchmark::DoNotOptimize(isa::decode(word));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Decode);

void BM_Disassemble(benchmark::State& state) {
  const auto instructions = sample_instructions(256);
  for (auto _ : state) {
    for (const auto& inst : instructions) {
      benchmark::DoNotOptimize(isa::disassemble(inst));
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_Disassemble);

void BM_AssembleRoundTrip(benchmark::State& state) {
  const auto instructions = sample_instructions(256);
  isa::CoreProgram program;
  program.code = instructions;
  const std::string text = isa::disassemble(program);
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::assemble(text));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_AssembleRoundTrip);

}  // namespace

BENCHMARK_MAIN();
