// Adaptive-vs-dense comparison on the Fig. 7 design space: for each model,
// evaluate the full (mg x flit x strategy) grid with GridStrategy, then rerun
// with ParetoRefineStrategy capped at HALF the grid budget, and check the
// adaptive front against the dense one.
//
// This is the acceptance gate for the search subsystem: the adaptive run must
// recover a Pareto front equal to or dominating the dense grid's front while
// evaluating <= 50% of the grid points. The harness exits non-zero when the
// front is missed, and records the verdict as exact-gated artifact metrics so
// the nightly CI can track it.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "cimflow/search/driver.hpp"

int main() {
  using namespace cimflow;
  using namespace cimflow::bench;
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();

  std::printf("=== Fig. 7 adaptive search: Pareto-guided vs dense grid ===\n\n");
  BenchArtifact artifact;
  artifact.bench = "fig7_adaptive";
  SimSpeedTally speed;
  bool all_recovered = true;

  for (const std::string& name : {std::string("resnet18"), std::string("efficientnetb0")}) {
    const graph::Graph model = models::build_model(name);

    search::SearchJob job;
    job.space.mg_sizes = {4, 8, 12, 16};
    job.space.flit_sizes = {8, 16};
    job.space.strategies = {compiler::Strategy::kGeneric,
                            compiler::Strategy::kDpOptimized};
    job.batch = batch_for(name);

    const search::SearchDriver driver;
    search::GridStrategy grid;
    const search::SearchResult dense = driver.run(model, base, grid, job);

    search::ParetoRefineStrategy refine;
    job.budget = job.space.size() / 2;
    const search::SearchResult adaptive = driver.run(model, base, refine, job);

    speed.add(dense.stats, dense.points);
    speed.add(adaptive.stats, adaptive.points);
    const bool recovered = adaptive.archive.covers_front(dense.archive);
    all_recovered = all_recovered && recovered;

    std::printf("--- %s ---\n", name.c_str());
    std::printf("dense:    %zu evaluations, front size %zu, %.1f ms\n",
                dense.evaluations(), dense.archive.size(), dense.stats.wall_ms);
    std::printf("adaptive: %zu evaluations (budget %zu of %zu), front size %zu, %.1f ms\n",
                adaptive.evaluations(), adaptive.budget, adaptive.space_size,
                adaptive.archive.size(), adaptive.stats.wall_ms);
    std::printf("verdict:  adaptive front %s the dense front\n\n",
                recovered ? "matches or dominates" : "MISSES");

    const std::string prefix = name;
    artifact.set_exact(prefix + ".space_size", static_cast<double>(dense.space_size));
    artifact.set_exact(prefix + ".dense_evaluations",
                       static_cast<double>(dense.evaluations()));
    artifact.set_exact(prefix + ".dense_front_size",
                       static_cast<double>(dense.archive.size()));
    artifact.set_exact(prefix + ".adaptive_evaluations",
                       static_cast<double>(adaptive.evaluations()));
    artifact.set_exact(prefix + ".adaptive_front_size",
                       static_cast<double>(adaptive.archive.size()));
    artifact.set_exact(prefix + ".adaptive_front_recovered", recovered ? 1 : 0);
    artifact.set_info(prefix + ".dense_wall_ms", dense.stats.wall_ms, "ms");
    artifact.set_info(prefix + ".adaptive_wall_ms", adaptive.stats.wall_ms, "ms");
    add_scheduler_sweep_metrics(artifact, prefix + ".dense", dense.points);
    add_scheduler_sweep_metrics(artifact, prefix + ".adaptive", adaptive.points);
  }

  speed.emit(artifact);
  write_artifact(artifact);
  if (!all_recovered) {
    std::fprintf(stderr,
                 "FAIL: adaptive search missed part of a dense Pareto front\n");
    return 1;
  }
  return 0;
}
