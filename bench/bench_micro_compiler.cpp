// Microbenchmarks of the compiler: condensation, dependency-closure
// enumeration (Algorithm 1 line 1), DP partitioning, and full compilation.
#include <benchmark/benchmark.h>

#include "cimflow/compiler/compiler.hpp"
#include "cimflow/graph/closures.hpp"
#include "cimflow/graph/condense.hpp"
#include "cimflow/models/models.hpp"

namespace {

using namespace cimflow;

void BM_Condense(benchmark::State& state) {
  const graph::Graph model = models::efficientnet_b0();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::CondensedGraph::build(model));
  }
}
BENCHMARK(BM_Condense);

void BM_ClosureEnumeration(benchmark::State& state) {
  const graph::Graph model = models::resnet18();
  const graph::CondensedGraph cg = graph::CondensedGraph::build(model);
  const auto order = cg.compute_order();
  std::vector<std::int32_t> bit_of(static_cast<std::size_t>(cg.size()), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    bit_of[static_cast<std::size_t>(order[i])] = static_cast<std::int32_t>(i);
  }
  std::vector<std::vector<std::int32_t>> preds(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (graph::GroupId p : cg.group(order[i]).preds) {
      if (bit_of[static_cast<std::size_t>(p)] >= 0) {
        preds[i].push_back(bit_of[static_cast<std::size_t>(p)]);
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::enumerate_closures(preds));
  }
}
BENCHMARK(BM_ClosureEnumeration);

void BM_PlanMapping(benchmark::State& state) {
  const graph::Graph model = models::resnet18();
  const graph::CondensedGraph cg = graph::CondensedGraph::build(model);
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  const auto strategy = static_cast<compiler::Strategy>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::plan_mapping(cg, arch, strategy, 8));
  }
}
BENCHMARK(BM_PlanMapping)->Arg(0)->Arg(1)->Arg(2);

void BM_FullCompile(benchmark::State& state) {
  const graph::Graph model = models::mobilenet_v2();
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  compiler::CompileOptions options;
  options.strategy = compiler::Strategy::kDpOptimized;
  options.batch = 8;
  options.materialize_data = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::compile(model, arch, options));
  }
}
BENCHMARK(BM_FullCompile)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
