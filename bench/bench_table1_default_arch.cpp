// Table I reproduction: architecture parameters of the default architecture,
// as resolved by ArchConfig::cimflow_default(), plus the derived quantities
// (CIM capacity, peak throughput) the rest of the evaluation depends on —
// and one simulated reference point (ResNet18, batch 16, DP strategy) whose
// cycle/energy metrics anchor the nightly sim-threads determinism gate: the
// artifact must be metric-identical at any $CIMFLOW_SIM_THREADS.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace cimflow;
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();

  std::printf("=== Table I: architecture parameters of the default architecture ===\n\n");
  TextTable table({"Level", "Parameter", "Value", "Paper (Table I)"});
  const auto& chip = arch.chip();
  const auto& core = arch.core();
  const auto& unit = arch.unit();
  table.add_row({"Chip", "Core num.", strprintf("%lld", (long long)chip.core_count), "64"});
  table.add_row({"Chip", "NoC flit size", strprintf("%lld Byte", (long long)chip.noc_flit_bytes), "8 Byte"});
  table.add_row({"Chip", "Global mem.", strprintf("%lld MB", (long long)(chip.global_mem_bytes >> 20)), "16 MB"});
  table.add_row({"Core", "CIM comp. unit (# MG)", strprintf("%lld", (long long)core.mg_per_unit), "16"});
  table.add_row({"Core", "Local mem.", strprintf("%lld KB", (long long)(core.local_mem_bytes >> 10)), "512 KB"});
  table.add_row({"Unit", "Macro group (# macro)", strprintf("%lld", (long long)unit.macros_per_group), "8"});
  table.add_row({"Unit", "Macro", strprintf("%lldx%lld", (long long)unit.macro_rows, (long long)unit.macro_cols), "512x64"});
  table.add_row({"Unit", "Element", strprintf("%lldx%lld", (long long)unit.element_rows, (long long)unit.element_cols), "32x8"});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Derived quantities:\n");
  std::printf("  MG weight tile          : %lld x %lld INT8 (%lld KB)\n",
              (long long)arch.mg_rows(), (long long)arch.mg_cols(),
              (long long)(arch.mg_weight_bytes() >> 10));
  std::printf("  CIM capacity            : %lld KB/core, %lld MB/chip\n",
              (long long)(arch.core_weight_bytes() >> 10),
              (long long)(arch.chip_weight_bytes() >> 20));
  std::printf("  bit-serial MVM interval : %lld cycles (INT%lld inputs)\n",
              (long long)arch.mvm_interval_cycles(), (long long)arch.unit().input_bits);
  std::printf("  peak throughput         : %.1f TOPS (INT8, all arrays active)\n",
              arch.peak_tops());
  std::printf("\nModel fit against CIM capacity (the paper's capacity-constraint story):\n");
  BenchArtifact artifact;
  artifact.bench = "table1";
  artifact.set_exact("chip.core_count", static_cast<double>(chip.core_count));
  artifact.set_exact("chip.noc_flit_bytes", static_cast<double>(chip.noc_flit_bytes), "B");
  artifact.set_exact("chip.global_mem_bytes", static_cast<double>(chip.global_mem_bytes), "B");
  artifact.set_exact("core.mg_per_unit", static_cast<double>(core.mg_per_unit));
  artifact.set_exact("core.local_mem_bytes", static_cast<double>(core.local_mem_bytes), "B");
  artifact.set_exact("unit.macros_per_group", static_cast<double>(unit.macros_per_group));
  artifact.set_exact("unit.macro_rows", static_cast<double>(unit.macro_rows));
  artifact.set_exact("unit.macro_cols", static_cast<double>(unit.macro_cols));
  artifact.set_exact("derived.mg_weight_bytes", static_cast<double>(arch.mg_weight_bytes()), "B");
  artifact.set_exact("derived.core_weight_bytes",
                     static_cast<double>(arch.core_weight_bytes()), "B");
  artifact.set_exact("derived.chip_weight_bytes",
                     static_cast<double>(arch.chip_weight_bytes()), "B");
  artifact.set_exact("derived.mvm_interval_cycles",
                     static_cast<double>(arch.mvm_interval_cycles()), "cycles");
  artifact.set_float("derived.peak_tops", arch.peak_tops(), "TOPS");
  for (const std::string& name : models::benchmark_suite()) {
    const graph::Graph model = models::build_model(name);
    const double mb = static_cast<double>(model.total_weight_bytes()) / 1e6;
    const double cap = static_cast<double>(arch.chip_weight_bytes()) / 1e6;
    std::printf("  %-16s: %7.1f MB weights -> %s\n", name.c_str(), mb,
                mb <= cap ? "fits on chip" : "exceeds chip capacity (multi-stage)");
    artifact.set_exact("model." + name + ".weight_bytes",
                       static_cast<double>(model.total_weight_bytes()), "B");
  }

  // Simulated reference point for the determinism gate. Gated metrics come
  // from the simulator (identical at any thread count); the wall clock is an
  // info metric the nightly job reads to require parallel >= serial speed —
  // so it times ONLY the simulation (model build + compile are serial either
  // way and would dilute the comparison).
  const std::int64_t sim_threads = bench::sim_threads();
  std::printf("\nReference point: resnet18, batch 16, DP strategy, sim-threads %lld\n",
              (long long)sim_threads);
  const graph::Graph ref_model = models::build_model("resnet18");
  Flow flow(arch);
  FlowOptions fopt;
  fopt.strategy = compiler::Strategy::kDpOptimized;
  fopt.batch = 16;
  const compiler::CompileResult compiled = flow.compile(ref_model, fopt);
  sim::SimOptions sopt;
  sopt.threads = sim_threads;
  sim::Simulator simulator(arch, sopt);
  const auto t0 = std::chrono::steady_clock::now();
  const sim::SimReport ref = simulator.run(compiled.program);
  const double sim_wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("%s  (simulated in %.0f ms)\n", ref.summary().c_str(), sim_wall_ms);
  bench::add_sim_metrics(artifact, "refpoint", ref);
  artifact.set_info("refpoint.sim_threads", static_cast<double>(sim_threads));
  artifact.set_info("refpoint.sim_wall_ms", sim_wall_ms, "ms");

  // Idle-heavy reference: micro_cnn in timing mode spends most of its core
  // time parked at SEND/RECV rendezvous, so it is the benchmark where the
  // event kernel's idle-cycle skipping pays — the info metrics record both
  // the skipped-cycle count and the resulting wall clock.
  std::printf("\nIdle-heavy point: micro, batch 8, DP strategy\n");
  const graph::Graph idle_model = models::build_model("micro");
  FlowOptions iopt;
  iopt.strategy = compiler::Strategy::kDpOptimized;
  iopt.batch = 8;
  const compiler::CompileResult idle_compiled = flow.compile(idle_model, iopt);
  sim::Simulator idle_simulator(arch, sopt);
  const auto idle_t0 = std::chrono::steady_clock::now();
  const sim::SimReport idle = idle_simulator.run(idle_compiled.program);
  const double idle_wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                idle_t0)
          .count();
  std::printf("%s  (simulated in %.1f ms)\n", idle.summary().c_str(), idle_wall_ms);
  bench::add_sim_metrics(artifact, "idlepoint", idle);
  artifact.set_info("idlepoint.sim_wall_ms", idle_wall_ms, "ms");

  bench::SimSpeedTally speed;
  speed.add(sim_wall_ms / 1e3, ref.instructions);
  speed.add(idle_wall_ms / 1e3, idle.instructions);
  speed.emit(artifact);

  bench::write_artifact(artifact);
  return 0;
}
