// Fig. 7 reproduction: the software/hardware design space categorized by MG
// size — energy-vs-throughput points for the generic mapping versus the
// DP-optimized mapping across MG sizes {4, 8, 12, 16} and flit sizes
// {8, 16} bytes, for ResNet18 and EfficientNetB0. The grid is evaluated by
// the parallel DseEngine (one job per model).
//
// Paper expectation: compilation optimization shifts the whole performance
// envelope; differences between hardware configurations can shrink or even
// reverse under the optimized mapping — the co-design argument.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "cimflow/core/dse.hpp"

int main() {
  using namespace cimflow;
  using namespace cimflow::bench;
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();

  std::printf("=== Fig. 7: SW/HW design space (energy vs throughput) ===\n\n");
  BenchArtifact artifact;
  artifact.bench = "fig7";
  SimSpeedTally speed;
  for (const std::string& name : {std::string("resnet18"), std::string("efficientnetb0")}) {
    const graph::Graph model = models::build_model(name);
    const std::int64_t batch = batch_for(name);

    DseJob job;
    job.mg_sizes = {4, 8, 12, 16};
    job.flit_sizes = {8, 16};
    job.strategies = {compiler::Strategy::kGeneric, compiler::Strategy::kDpOptimized};
    job.batch = batch;
    const DseResult result = DseEngine().run(model, base, job);
    speed.add(result);

    TextTable table({"Mapping", "MG size", "Flit", "TOPS", "mJ/img"});
    // Track whether the optimized mapping reorders hardware configurations.
    double generic_best_tops = 0, optimized_worst_tops = 1e30;
    for (std::size_t strat_i = 0; strat_i < job.strategies.size(); ++strat_i) {
      for (std::size_t flit_i = 0; flit_i < job.flit_sizes.size(); ++flit_i) {
        for (std::size_t mg_i = 0; mg_i < job.mg_sizes.size(); ++mg_i) {
          const std::size_t index =
              (mg_i * job.flit_sizes.size() + flit_i) * job.strategies.size() + strat_i;
          const DsePoint& p = result.points[index];
          if (!p.ok) {
            std::fprintf(stderr, "point %zu failed: %s\n", p.index, p.error.c_str());
            continue;
          }
          table.add_row({p.strategy == compiler::Strategy::kGeneric ? "generic" : "optimized",
                         strprintf("%lld", (long long)p.macros_per_group),
                         strprintf("%lldB", (long long)p.flit_bytes),
                         fmt(p.tops(), "%.4f"), fmt(p.energy_mj())});
          if (p.strategy == compiler::Strategy::kGeneric) {
            generic_best_tops = std::max(generic_best_tops, p.tops());
          } else {
            optimized_worst_tops = std::min(optimized_worst_tops, p.tops());
          }
          add_sim_metrics(artifact,
                          strprintf("%s.%s.mg%lld.flit%lld", name.c_str(),
                                    compiler::to_string(p.strategy),
                                    (long long)p.macros_per_group, (long long)p.flit_bytes),
                          p.report.sim);
        }
      }
    }
    add_sweep_metrics(artifact, name + ".sweep", result.stats);
    std::printf("--- %s (batch %lld) ---\n%s", name.c_str(), (long long)batch,
                table.to_string().c_str());
    std::printf("sweep: %s\n", result.stats.summary().c_str());
    std::printf("best generic config:  %.4f TOPS\n", generic_best_tops);
    std::printf("worst optimized config: %.4f TOPS%s\n\n", optimized_worst_tops,
                optimized_worst_tops > generic_best_tops
                    ? "  -> optimization reverses hardware ordering (paper's co-design point)"
                    : "");
  }
  speed.emit(artifact);
  write_artifact(artifact);
  return 0;
}
