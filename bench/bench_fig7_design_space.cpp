// Fig. 7 reproduction: the software/hardware design space categorized by MG
// size — energy-vs-throughput points for the generic mapping versus the
// DP-optimized mapping across MG sizes {4, 8, 12, 16} and flit sizes
// {8, 16} bytes, for ResNet18 and EfficientNetB0.
//
// Paper expectation: compilation optimization shifts the whole performance
// envelope; differences between hardware configurations can shrink or even
// reverse under the optimized mapping — the co-design argument.
#include <cstdio>

#include "bench_common.hpp"
#include "cimflow/core/dse.hpp"

int main() {
  using namespace cimflow;
  using namespace cimflow::bench;
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();

  std::printf("=== Fig. 7: SW/HW design space (energy vs throughput) ===\n\n");
  for (const std::string& name : {std::string("resnet18"), std::string("efficientnetb0")}) {
    const graph::Graph model = models::build_model(name);
    const std::int64_t batch = batch_for(name);
    TextTable table({"Mapping", "MG size", "Flit", "TOPS", "mJ/img"});
    // Track whether the optimized mapping reorders hardware configurations.
    double generic_best_tops = 0, optimized_worst_tops = 1e30;
    for (compiler::Strategy strategy :
         {compiler::Strategy::kGeneric, compiler::Strategy::kDpOptimized}) {
      for (std::int64_t flit : {8, 16}) {
        for (std::int64_t mg : {4, 8, 12, 16}) {
          const arch::ArchConfig arch = arch_with(base, mg, flit);
          const EvaluationReport report = evaluate(model, arch, strategy, batch);
          table.add_row({strategy == compiler::Strategy::kGeneric ? "generic" : "optimized",
                         strprintf("%lld", (long long)mg),
                         strprintf("%lldB", (long long)flit),
                         fmt(report.sim.tops(), "%.4f"),
                         fmt(report.sim.energy_per_image_mj())});
          if (strategy == compiler::Strategy::kGeneric) {
            generic_best_tops = std::max(generic_best_tops, report.sim.tops());
          } else {
            optimized_worst_tops = std::min(optimized_worst_tops, report.sim.tops());
          }
        }
      }
    }
    std::printf("--- %s (batch %lld) ---\n%s", name.c_str(), (long long)batch,
                table.to_string().c_str());
    std::printf("best generic config:  %.4f TOPS\n", generic_best_tops);
    std::printf("worst optimized config: %.4f TOPS%s\n\n", optimized_worst_tops,
                optimized_worst_tops > generic_best_tops
                    ? "  -> optimization reverses hardware ordering (paper's co-design point)"
                    : "");
  }
  return 0;
}
