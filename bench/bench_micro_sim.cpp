// Microbenchmarks of the simulator: end-to-end simulation rate
// (instructions per second of simulated execution) in timing and functional
// modes, the hot functional kernels in isolation (old column-strided vs new
// row-major MVM, the pointer-resolved vs byte-routed exec_vec path, the
// GlobalImage span-pinning vs byte path), and the NoC transfer model. The
// kernel-level entries exist so a hot-path regression shows up here long
// before it is visible end-to-end.
#include <benchmark/benchmark.h>

#include <cstring>
#include <random>
#include <vector>

#include "cimflow/arch/energy_model.hpp"
#include "cimflow/compiler/compiler.hpp"
#include "cimflow/graph/executor.hpp"
#include "cimflow/isa/assembler.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/sim/kernels.hpp"
#include "cimflow/sim/kernels_dispatch.hpp"
#include "cimflow/sim/memory.hpp"
#include "cimflow/sim/noc.hpp"
#include "cimflow/sim/simulator.hpp"

namespace {

using namespace cimflow;

void BM_SimulateMicroCnn(benchmark::State& state) {
  const bool functional = state.range(0) != 0;
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  compiler::CompileOptions copt;
  copt.strategy = compiler::Strategy::kDpOptimized;
  copt.batch = 2;
  copt.materialize_data = functional;
  const compiler::CompileResult compiled = compiler::compile(model, arch, copt);

  std::vector<std::vector<std::uint8_t>> inputs;
  if (functional) {
    const graph::Shape shape = model.node(model.inputs().front()).out_shape;
    for (int img = 0; img < 2; ++img) {
      const graph::TensorI8 tensor = graph::random_tensor(shape, 7 + img);
      const auto* data = reinterpret_cast<const std::uint8_t*>(tensor.data());
      inputs.emplace_back(data, data + tensor.size());
    }
  }
  std::int64_t instructions = 0;
  for (auto _ : state) {
    sim::SimOptions sopt;
    sopt.functional = functional;
    sim::Simulator simulator(arch, sopt);
    const sim::SimReport report = simulator.run(compiled.program, inputs);
    instructions = report.instructions;
    benchmark::DoNotOptimize(report.cycles);
  }
  state.SetItemsProcessed(state.iterations() * instructions);
  state.SetLabel(functional ? "functional" : "timing");
}
BENCHMARK(BM_SimulateMicroCnn)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// End-to-end serial functional simulation of a full topology (ResNet18 at
// test-sized images): the number the hot-path work is ultimately about —
// items/s is simulated instructions per wall second.
void BM_SimulateResnet18Functional(benchmark::State& state) {
  models::ModelOptions mopt;
  mopt.input_hw = 64;
  const graph::Graph model = models::resnet18(mopt);
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  compiler::CompileOptions copt;
  copt.strategy = compiler::Strategy::kDpOptimized;
  copt.batch = 1;
  copt.materialize_data = true;
  const compiler::CompileResult compiled = compiler::compile(model, arch, copt);
  const graph::Shape shape = model.node(model.inputs().front()).out_shape;
  std::vector<std::vector<std::uint8_t>> inputs;
  const graph::TensorI8 tensor = graph::random_tensor(shape, 7);
  const auto* data = reinterpret_cast<const std::uint8_t*>(tensor.data());
  inputs.emplace_back(data, data + tensor.size());
  std::int64_t instructions = 0;
  for (auto _ : state) {
    sim::SimOptions sopt;
    sopt.functional = true;
    sim::Simulator simulator(arch, sopt);
    const sim::SimReport report = simulator.run(compiled.program, inputs);
    instructions = report.instructions;
    benchmark::DoNotOptimize(report.cycles);
  }
  state.SetItemsProcessed(state.iterations() * instructions);
}
BENCHMARK(BM_SimulateResnet18Functional)->Unit(benchmark::kMillisecond);

// --- functional MVM kernel: seed-era column-strided vs blocked row-major ----
//
// Identical inputs, identical (bit-exact) outputs; only the walk order and
// the per-column byte swizzle differ. The acceptance bar for the hot-path
// overhaul is >= 2x on this comparison.

std::vector<std::int8_t> random_weights(std::int64_t n, unsigned seed) {
  std::minstd_rand rng(seed);
  std::vector<std::int8_t> w(static_cast<std::size_t>(n));
  for (auto& v : w) v = static_cast<std::int8_t>(rng() & 0xFF);
  return w;
}

void BM_MvmKernelRef(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const std::int64_t cols = state.range(1);
  const std::vector<std::int8_t> weights = random_weights(rows * cols, 7);
  const std::vector<std::int8_t> in_v = random_weights(rows, 11);
  const auto* in = reinterpret_cast<const std::uint8_t*>(in_v.data());
  std::vector<std::uint8_t> out(static_cast<std::size_t>(4 * cols), 0);
  for (auto _ : state) {
    sim::kernels::mvm_ref(out.data(), in, weights.data(), rows, cols,
                          /*accumulate=*/true);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_MvmKernelRef)
    ->Args({64, 64})->Args({256, 64})->Args({512, 64})->Args({512, 256})
    ->Args({256, 256})->Args({512, 512});

void BM_MvmKernelNew(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const std::int64_t cols = state.range(1);
  const std::vector<std::int8_t> weights = random_weights(rows * cols, 7);
  const std::vector<std::int8_t> in_v = random_weights(rows, 11);
  const auto* in = reinterpret_cast<const std::uint8_t*>(in_v.data());
  std::vector<std::uint8_t> out(static_cast<std::size_t>(4 * cols), 0);
  std::vector<std::int32_t> row(static_cast<std::size_t>(cols));
  for (auto _ : state) {
    // The exec_mvm fast path in miniature: preload the psum row, stream the
    // weights row-major, flush once.
    sim::kernels::load_le32_row(row.data(), out.data(), cols);
    sim::kernels::mvm_accumulate(row.data(), in, weights.data(), rows, cols);
    sim::kernels::store_le32_row(out.data(), row.data(), cols);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_MvmKernelNew)
    ->Args({64, 64})->Args({256, 64})->Args({512, 64})->Args({512, 256})
    ->Args({256, 256})->Args({512, 512});

// --- SIMD tier sweep: every registered tier over the same shapes ------------
//
// Registered from main() for exactly the tiers kernels::available_tiers()
// reports on this host, so the scalar-vs-AVX2/NEON comparison is one run of
// this binary and absent tiers simply don't appear (instead of crashing on
// SIGILL). The dispatched tier rides in each entry's name and label — that is
// how a benchmark artifact stays attributable to the host's kernels. The
// acceptance bar for the SIMD layer is >= 2x over the scalar tier on the
// >= 256-wide tiles.

void BM_MvmKernelTier(benchmark::State& state, sim::kernels::KernelTier tier,
                      std::int64_t rows, std::int64_t cols) {
  const sim::kernels::KernelTable& table = sim::kernels::kernel_table(tier);
  const std::vector<std::int8_t> weights = random_weights(rows * cols, 7);
  const std::vector<std::int8_t> in_v = random_weights(rows, 11);
  const auto* in = reinterpret_cast<const std::uint8_t*>(in_v.data());
  std::vector<std::uint8_t> out(static_cast<std::size_t>(4 * cols), 0);
  std::vector<std::int32_t> row(static_cast<std::size_t>(cols));
  for (auto _ : state) {
    sim::kernels::load_le32_row(row.data(), out.data(), cols);
    table.mvm_accumulate(row.data(), in, weights.data(), rows, cols);
    sim::kernels::store_le32_row(out.data(), row.data(), cols);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
  state.SetLabel(std::string(sim::kernels::to_string(tier)));
}

// --- exec_vec: pointer-resolved fast path vs byte-routed reference ----------
//
// Measured through the real simulator on a synthetic program that loops
// VEC_ADD8 + VEC_QUANT over a large buffer, toggling only
// SimOptions::reference_kernels — so the comparison includes span
// resolution, exactly what exec_vec pays per instruction.

arch::ArchConfig vec_exec_arch() {
  arch::ChipParams chip;
  chip.core_count = 4;
  chip.mesh_cols = 2;
  chip.global_mem_banks = 2;
  return arch::ArchConfig(chip, arch::CoreParams{}, arch::UnitParams{},
                          arch::EnergyParams{});
}

// 64 iterations of add8 + quant over 4096-element rows, core 0 only.
isa::Program vec_exec_program() {
  isa::Program program(4);
  program.cores[0] = isa::assemble(R"(
      G_LI R4, 0
      G_LIH R4, -32768     ; a @ local 0
      G_LI R5, 4096
      G_LIH R5, -32768     ; b @ local 4096
      G_LI R6, 8192
      G_LIH R6, -32768     ; c8 @ local 8192
      G_LI R7, 16384
      G_LIH R7, -32768     ; c32 @ local 16384
      G_LI R8, 4096        ; n
      G_LI R9, 5
      VEC_FILL8 R4, R4, R9, R8
      G_LI R10, 3
      VEC_FILL8 R5, R5, R10, R8
      VEC_FILL32 R7, R7, R10, R8
      G_LI R11, 2
      CIM_CFG S2, R11
      CIM_CFG S3, R0
      G_LI R12, 0          ; i
      G_LI R13, 64
    loop:
      VEC_ADD8 R6, R4, R5, R8
      VEC_QUANT R6, R7, R0, R8
      SC_ADDI R12, R12, 1
      BLT R12, R13, loop
      HALT
  )");
  for (int c = 1; c < 4; ++c) program.cores[c].code.push_back(isa::Instruction::halt());
  program.batch = 0;
  return program;
}

void BM_VecExec(benchmark::State& state) {
  const bool reference = state.range(0) != 0;
  const arch::ArchConfig arch = vec_exec_arch();
  const isa::Program program = vec_exec_program();
  sim::SimOptions options;
  options.functional = true;
  options.reference_kernels = reference;
  std::int64_t elements = 0;
  for (auto _ : state) {
    sim::Simulator simulator(arch, options);
    const sim::SimReport report = simulator.run(program, {});
    benchmark::DoNotOptimize(report.cycles);
    elements = 64 * 2 * 4096;
  }
  state.SetItemsProcessed(state.iterations() * elements);
  state.SetLabel(reference ? "reference" : "pointer");
}
BENCHMARK(BM_VecExec)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// The same synthetic VEC program through each registered SIMD tier (pointer
// path only): what the saturating vec kernels buy end to end, span
// resolution included. Registered per tier from main() like the MVM sweep.
void BM_VecExecTier(benchmark::State& state, sim::kernels::KernelTier tier) {
  const arch::ArchConfig arch = vec_exec_arch();
  const isa::Program program = vec_exec_program();
  sim::SimOptions options;
  options.functional = true;
  options.kernel_tier = tier;
  std::int64_t elements = 0;
  for (auto _ : state) {
    sim::Simulator simulator(arch, options);
    const sim::SimReport report = simulator.run(program, {});
    benchmark::DoNotOptimize(report.cycles);
    elements = 64 * 2 * 4096;
  }
  state.SetItemsProcessed(state.iterations() * elements);
  state.SetLabel(std::string(sim::kernels::to_string(tier)));
}

// --- GlobalImage: span pinning vs the byte path -----------------------------

void BM_GlobalImageRead(benchmark::State& state) {
  const bool span = state.range(0) != 0;
  const std::int64_t len = state.range(1);
  const std::vector<std::uint8_t> base(1 << 20, 42);
  sim::GlobalImage image;
  image.bind(&base, nullptr);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(len));
  std::int64_t addr = 128;  // inside one page, resolvable as one span
  for (auto _ : state) {
    if (span) {
      const std::uint8_t* p = image.span_for_read(addr, len);
      std::memcpy(out.data(), p, static_cast<std::size_t>(len));
    } else {
      image.read_bytes(addr, len, out.data());
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * len);
  state.SetLabel(span ? "span" : "byte");
}
BENCHMARK(BM_GlobalImageRead)->Args({0, 256})->Args({1, 256})->Args({0, 4096})->Args({1, 4096});

void BM_NocTransfer(benchmark::State& state) {
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  const arch::EnergyModel energy(arch);
  sim::Noc noc(arch, energy);
  std::int64_t t = 0;
  for (auto _ : state) {
    for (std::int64_t src = 0; src < 16; ++src) {
      benchmark::DoNotOptimize(noc.transfer(src, 63 - src, 256, t));
    }
    t += 64;
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_NocTransfer);

/// Registers the per-tier sweeps for exactly the tiers this host can run
/// (scalar always first — the comparison baseline), then defers to the
/// standard benchmark driver for everything, statically registered entries
/// included.
void register_tier_benchmarks() {
  const auto shapes = {std::pair<std::int64_t, std::int64_t>{64, 64},
                       {128, 128},
                       {256, 256},
                       {512, 512}};
  for (sim::kernels::KernelTier tier : sim::kernels::available_tiers()) {
    const std::string tier_name(sim::kernels::to_string(tier));
    for (const auto& [rows, cols] : shapes) {
      benchmark::RegisterBenchmark(
          ("BM_MvmKernelTier/" + tier_name + "/" + std::to_string(rows) + "x" +
           std::to_string(cols))
              .c_str(),
          [tier, rows = rows, cols = cols](benchmark::State& state) {
            BM_MvmKernelTier(state, tier, rows, cols);
          });
    }
    benchmark::RegisterBenchmark(
        ("BM_VecExecTier/" + tier_name).c_str(),
        [tier](benchmark::State& state) { BM_VecExecTier(state, tier); })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  register_tier_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
