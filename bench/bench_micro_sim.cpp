// Microbenchmarks of the simulator: end-to-end simulation rate
// (instructions per second of simulated execution) in timing and functional
// modes, and the NoC transfer model.
#include <benchmark/benchmark.h>

#include "cimflow/arch/energy_model.hpp"
#include "cimflow/compiler/compiler.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/sim/noc.hpp"
#include "cimflow/graph/executor.hpp"
#include "cimflow/sim/simulator.hpp"

namespace {

using namespace cimflow;

void BM_SimulateMicroCnn(benchmark::State& state) {
  const bool functional = state.range(0) != 0;
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  compiler::CompileOptions copt;
  copt.strategy = compiler::Strategy::kDpOptimized;
  copt.batch = 2;
  copt.materialize_data = functional;
  const compiler::CompileResult compiled = compiler::compile(model, arch, copt);

  std::vector<std::vector<std::uint8_t>> inputs;
  if (functional) {
    const graph::Shape shape = model.node(model.inputs().front()).out_shape;
    for (int img = 0; img < 2; ++img) {
      const graph::TensorI8 tensor = graph::random_tensor(shape, 7 + img);
      const auto* data = reinterpret_cast<const std::uint8_t*>(tensor.data());
      inputs.emplace_back(data, data + tensor.size());
    }
  }
  std::int64_t instructions = 0;
  for (auto _ : state) {
    sim::SimOptions sopt;
    sopt.functional = functional;
    sim::Simulator simulator(arch, sopt);
    const sim::SimReport report = simulator.run(compiled.program, inputs);
    instructions = report.instructions;
    benchmark::DoNotOptimize(report.cycles);
  }
  state.SetItemsProcessed(state.iterations() * instructions);
  state.SetLabel(functional ? "functional" : "timing");
}
BENCHMARK(BM_SimulateMicroCnn)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_NocTransfer(benchmark::State& state) {
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  const arch::EnergyModel energy(arch);
  sim::Noc noc(arch, energy);
  std::int64_t t = 0;
  for (auto _ : state) {
    for (std::int64_t src = 0; src < 16; ++src) {
      benchmark::DoNotOptimize(noc.transfer(src, 63 - src, 256, t));
    }
    t += 64;
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_NocTransfer);

}  // namespace

BENCHMARK_MAIN();
