// Microbenchmarks of the graph layer: model construction, condensation
// statistics and the golden INT8 reference executor.
#include <benchmark/benchmark.h>

#include "cimflow/graph/executor.hpp"
#include "cimflow/models/models.hpp"

namespace {

using namespace cimflow;

void BM_BuildResNet18(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::resnet18());
  }
  state.SetLabel("resnet18 @224");
}
BENCHMARK(BM_BuildResNet18)->Unit(benchmark::kMillisecond);

void BM_BuildEfficientNetB0(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::efficientnet_b0());
  }
}
BENCHMARK(BM_BuildEfficientNetB0)->Unit(benchmark::kMillisecond);

void BM_GoldenExecutorMicroCnn(benchmark::State& state) {
  const graph::Graph model = models::micro_cnn({});
  const graph::Shape shape = model.node(model.inputs().front()).out_shape;
  const graph::TensorI8 input = graph::random_tensor(shape, 5);
  for (auto _ : state) {
    graph::ReferenceExecutor executor(model);
    benchmark::DoNotOptimize(executor.run({input}));
  }
}
BENCHMARK(BM_GoldenExecutorMicroCnn);

void BM_GoldenExecutorConv(benchmark::State& state) {
  graph::Graph g("conv");
  auto x = g.add_input(graph::Shape{1, 28, 28, 64});
  x = g.add_conv2d(x, graph::ConvAttrs{128, 3, 1, 1}, "conv");
  g.set_output(x);
  g.randomize_parameters(9);
  const graph::TensorI8 input = graph::random_tensor(graph::Shape{1, 28, 28, 64}, 5);
  for (auto _ : state) {
    graph::ReferenceExecutor executor(g);
    benchmark::DoNotOptimize(executor.run({input}));
  }
  state.SetItemsProcessed(state.iterations() *
                          g.node(g.output()).macs());
}
BENCHMARK(BM_GoldenExecutorConv)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
