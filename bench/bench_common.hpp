// Shared helpers for the paper-reproduction benchmark harnesses, including
// the BENCH_<name>.json artifact emitter every harness uses so CI can track
// throughput/energy numerically (tools/bench_diff gates on these files).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cimflow/core/dse.hpp"
#include "cimflow/core/flow.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/sim/kernels_dispatch.hpp"
#include "cimflow/support/artifact.hpp"
#include "cimflow/support/strings.hpp"
#include "cimflow/support/table.hpp"

namespace cimflow::bench {

/// Batch used for throughput-style evaluation (images pipelined through the
/// chip). VGG19 uses a smaller batch to bound simulation memory.
inline std::int64_t batch_for(const std::string& model) {
  return model == "vgg19" ? 8 : 16;
}

/// Simulator worker threads for harness evaluations: $CIMFLOW_SIM_THREADS
/// when set (the nightly determinism gate runs every harness at 1 and 4 and
/// requires metric-identical artifacts), the serial kernel otherwise. A
/// malformed value throws (std::stoll) — a mistyped gate must fail loudly,
/// not silently fall back to some thread count.
inline std::int64_t sim_threads() {
  const char* env = std::getenv("CIMFLOW_SIM_THREADS");
  return (env != nullptr && *env != '\0') ? std::stoll(env) : 1;
}

inline EvaluationReport evaluate(const graph::Graph& model, const arch::ArchConfig& arch,
                                 compiler::Strategy strategy, std::int64_t batch) {
  Flow flow(arch);
  FlowOptions options;
  options.strategy = strategy;
  options.batch = batch;
  options.functional = false;  // timing mode for sweeps
  options.eval.sim_threads = sim_threads();  // never changes the metrics, only the wall clock
  return flow.evaluate(model, options);
}

inline std::string fmt(double value, const char* format = "%.3f") {
  return strprintf(format, value);
}

/// Where a harness's artifact lands: $CIMFLOW_BENCH_DIR when set (CI points
/// it at the upload directory), the working directory otherwise.
inline std::string artifact_path(const std::string& bench_name) {
  const char* dir = std::getenv("CIMFLOW_BENCH_DIR");
  const std::string prefix = (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" : "";
  return prefix + "BENCH_" + bench_name + ".json";
}

/// The standard per-configuration metric block under `prefix.`: simulated
/// counters are deterministic and gated exact; derived floating-point figures
/// (TOPS, energy) carry the default relative tolerance so the gate survives
/// FP-environment differences without missing real regressions.
inline void add_sim_metrics(BenchArtifact& artifact, const std::string& prefix,
                            const sim::SimReport& report) {
  artifact.set_exact(prefix + ".cycles", static_cast<double>(report.cycles), "cycles");
  artifact.set_exact(prefix + ".instructions", static_cast<double>(report.instructions));
  artifact.set_exact(prefix + ".mvm_count", static_cast<double>(report.mvm_count));
  artifact.set_float(prefix + ".tops", report.tops(), "TOPS");
  artifact.set_float(prefix + ".mj_per_image", report.energy_per_image_mj(), "mJ");
  artifact.set_float(prefix + ".ms_per_image", report.latency_per_image_ms(), "ms");
  artifact.set_float(prefix + ".energy_compute_pj", report.energy.fig6_compute(), "pJ");
  artifact.set_float(prefix + ".energy_local_mem_pj", report.energy.fig6_local_mem(), "pJ");
  artifact.set_float(prefix + ".energy_noc_pj", report.energy.fig6_noc(), "pJ");
  artifact.set_float(prefix + ".energy_leakage_pj", report.energy.leakage, "pJ");
  // Event-kernel telemetry: deterministic across thread counts but tied to
  // SimOptions::lookahead, so informational only — the artifact trail tracks
  // event volume and idle-cycle skipping without gating on them.
  artifact.set_info(prefix + ".sim_events_dispatched",
                    static_cast<double>(report.scheduler.events_dispatched));
  artifact.set_info(prefix + ".sim_max_queue_depth",
                    static_cast<double>(report.scheduler.max_queue_depth), "events");
  artifact.set_info(prefix + ".sim_idle_cycles_skipped",
                    static_cast<double>(report.scheduler.idle_cycles_skipped), "cycles");
  // The SIMD tier the simulator dispatched to: info-only (tiers are
  // byte-identical on the gated metrics, so the tier itself must never gate)
  // but recorded so every artifact is attributable to the host's kernels.
  // Numeric value is the tier id; the unit column carries the name.
  if (!report.kernel_tier.empty()) {
    artifact.set_info(prefix + ".kernel_tier",
                      static_cast<double>(static_cast<int>(
                          sim::kernels::tier_from_string(report.kernel_tier))),
                      report.kernel_tier);
  }
}

/// Sweep-level scheduler rollup under `prefix.`: event volume summed and
/// queue depth maxed over every evaluated point, so sweep harnesses carry the
/// same event-kernel telemetry trail as the single-run ones. Info-only for
/// the same reason as in add_sim_metrics.
inline void add_scheduler_sweep_metrics(BenchArtifact& artifact, const std::string& prefix,
                                        const std::vector<DsePoint>& points) {
  double events = 0, idle = 0, depth = 0;
  for (const DsePoint& point : points) {
    if (!point.ok) continue;
    events += static_cast<double>(point.report.sim.scheduler.events_dispatched);
    idle += static_cast<double>(point.report.sim.scheduler.idle_cycles_skipped);
    depth = std::max(depth,
                     static_cast<double>(point.report.sim.scheduler.max_queue_depth));
  }
  artifact.set_info(prefix + ".sim_events_dispatched", events);
  artifact.set_info(prefix + ".sim_max_queue_depth", depth, "events");
  artifact.set_info(prefix + ".sim_idle_cycles_skipped", idle, "cycles");
}

/// Sweep bookkeeping under `prefix.`: point counts gate the grid shape;
/// wall-clock and scheduling-dependent counters are informational only.
inline void add_sweep_metrics(BenchArtifact& artifact, const std::string& prefix,
                              const DseStats& stats) {
  artifact.set_exact(prefix + ".points", static_cast<double>(stats.total_points));
  artifact.set_exact(prefix + ".evaluated", static_cast<double>(stats.evaluated));
  artifact.set_exact(prefix + ".failed", static_cast<double>(stats.failed));
  artifact.set_info(prefix + ".wall_ms", stats.wall_ms, "ms");
  artifact.set_info(prefix + ".threads", static_cast<double>(stats.threads_used));
}

/// Tallies how much wall-clock the harness spent inside the cycle-accurate
/// simulator (and how many instructions it retired there), then lands both
/// in the artifact as the standard info-only speed metrics — never gated,
/// but recorded in every BENCH_*.json so the nightly artifact trail carries
/// the simulator-speed trajectory (`bench_diff --info-trend` renders it).
struct SimSpeedTally {
  double wall_seconds = 0;
  double instructions = 0;

  void add(double sim_wall_seconds, std::int64_t sim_instructions) {
    wall_seconds += sim_wall_seconds;
    instructions += static_cast<double>(sim_instructions);
  }
  void add(const EvaluationReport& report) {
    add(report.sim_wall_seconds, report.sim.instructions);
  }
  /// Sums a whole sweep: the engine's accumulated simulator wall-clock plus
  /// the evaluated points' dynamic instruction counts. Also fits the search
  /// driver's SearchResult (same stats/points shape).
  void add(const DseStats& stats, const std::vector<DsePoint>& points) {
    wall_seconds += stats.sim_wall_seconds;
    for (const DsePoint& point : points) {
      if (point.ok) instructions += static_cast<double>(point.report.sim.instructions);
    }
  }
  void add(const DseResult& result) { add(result.stats, result.points); }

  void emit(BenchArtifact& artifact) const {
    artifact.set_info("sim_wall_seconds", wall_seconds, "s");
    artifact.set_info("sim_instructions_per_sec",
                      wall_seconds > 0 ? instructions / wall_seconds : 0, "instr/s");
  }
};

/// Writes BENCH_<name>.json and announces the path. Unwritable destinations
/// raise Error(kIoError) with the path — artifacts are never dropped
/// silently (the harness then fails loudly instead of CI gating on nothing).
inline void write_artifact(const BenchArtifact& artifact) {
  const std::string path = artifact_path(artifact.bench);
  artifact.save(path);
  std::printf("bench artifact: %s (%zu metrics)\n", path.c_str(), artifact.metrics.size());
}

}  // namespace cimflow::bench
