// Shared helpers for the paper-reproduction benchmark harnesses.
#pragma once

#include <cstdint>
#include <string>

#include "cimflow/core/flow.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/support/strings.hpp"
#include "cimflow/support/table.hpp"

namespace cimflow::bench {

/// Batch used for throughput-style evaluation (images pipelined through the
/// chip). VGG19 uses a smaller batch to bound simulation memory.
inline std::int64_t batch_for(const std::string& model) {
  return model == "vgg19" ? 8 : 16;
}

inline EvaluationReport evaluate(const graph::Graph& model, const arch::ArchConfig& arch,
                                 compiler::Strategy strategy, std::int64_t batch) {
  Flow flow(arch);
  FlowOptions options;
  options.strategy = strategy;
  options.batch = batch;
  options.functional = false;  // timing mode for sweeps
  return flow.evaluate(model, options);
}

inline std::string fmt(double value, const char* format = "%.3f") {
  return strprintf(format, value);
}

}  // namespace cimflow::bench
