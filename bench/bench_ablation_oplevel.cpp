// Ablation: the OP-level memory-access annotation (paper Fig. 4 "Mem. Acc.
// Annotation"). With the pass enabled, input windows are prefetched at the
// highest loop level that fits local memory; disabled, every output row
// re-fetches its k-row window from global memory. Measures the data-transfer
// and latency cost of placing memory accesses at the wrong loop level.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace cimflow;
  using namespace cimflow::bench;
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();

  std::printf("=== Ablation: OP-level memory-access annotation ===\n\n");
  BenchArtifact artifact;
  artifact.bench = "ablation";
  TextTable table({"Model", "Annotation", "ms/image", "mJ/image", "global traffic (mJ)"});
  SimSpeedTally speed;
  for (const std::string& name : {std::string("resnet18"), std::string("mobilenetv2")}) {
    const graph::Graph model = models::build_model(name);
    for (bool annotate : {true, false}) {
      Flow flow(arch);
      FlowOptions options;
      options.strategy = compiler::Strategy::kDpOptimized;
      options.batch = 8;
      options.hoist_memory = annotate;
      const EvaluationReport report = flow.evaluate(model, options);
      speed.add(report);
      table.add_row({name, annotate ? "on (annotated)" : "off (innermost)",
                     fmt(report.sim.latency_per_image_ms()),
                     fmt(report.sim.energy_per_image_mj()),
                     fmt(report.sim.energy.global_mem * 1e-9 /
                         static_cast<double>(report.sim.images))});
      const std::string prefix = name + (annotate ? ".annotated" : ".innermost");
      add_sim_metrics(artifact, prefix, report.sim);
      artifact.set_float(prefix + ".energy_global_mem_pj", report.sim.energy.global_mem, "pJ");
    }
  }
  std::printf("%s", table.to_string().c_str());
  speed.emit(artifact);
  write_artifact(artifact);
  return 0;
}
