// Fig. 5 reproduction: normalized speed and energy of the three compilation
// strategies (generic mapping / CIM-MLC-style opportunistic duplication /
// CIMFlow's DP-based optimization) across the four DNN benchmarks, on the
// default (Table I) architecture.
//
// Paper expectation: DP-based optimization achieves the highest speed and
// lowest energy everywhere, with up to ~2.8x speedup and ~60% energy
// reduction against the baselines.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace cimflow;
  using namespace cimflow::bench;
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  const compiler::Strategy strategies[] = {compiler::Strategy::kGeneric,
                                           compiler::Strategy::kOpportunistic,
                                           compiler::Strategy::kDpOptimized};

  std::printf("=== Fig. 5: compilation strategy comparison (default architecture) ===\n\n");
  BenchArtifact artifact;
  artifact.bench = "fig5";
  TextTable table({"Model", "Strategy", "ms/image", "Norm. speed", "mJ/image",
                   "Norm. energy", "Stages"});
  SimSpeedTally speed;
  double max_speedup = 0;
  double max_energy_cut = 0;
  for (const std::string& name : models::benchmark_suite()) {
    const graph::Graph model = models::build_model(name);
    const std::int64_t batch = batch_for(name);
    double base_latency = 0;
    double base_energy = 0;
    double worst_latency = 0;
    double worst_energy = 0;
    double dp_latency = 0;
    double dp_energy = 0;
    for (compiler::Strategy strategy : strategies) {
      const EvaluationReport report = evaluate(model, arch, strategy, batch);
      speed.add(report);
      const double latency = report.sim.latency_per_image_ms();
      const double energy = report.sim.energy_per_image_mj();
      if (strategy == compiler::Strategy::kGeneric) {
        base_latency = latency;
        base_energy = energy;
      }
      worst_latency = std::max(worst_latency, latency);
      worst_energy = std::max(worst_energy, energy);
      if (strategy == compiler::Strategy::kDpOptimized) {
        dp_latency = latency;
        dp_energy = energy;
      }
      table.add_row({name, compiler::to_string(strategy), fmt(latency),
                     fmt(base_latency / latency, "%.2fx"), fmt(energy),
                     fmt(energy / base_energy, "%.2f"),
                     strprintf("%lld", (long long)report.compile_stats.stages)});
      const std::string prefix = name + "." + compiler::to_string(strategy);
      add_sim_metrics(artifact, prefix, report.sim);
      artifact.set_exact(prefix + ".stages",
                         static_cast<double>(report.compile_stats.stages));
    }
    max_speedup = std::max(max_speedup, worst_latency / dp_latency);
    max_energy_cut = std::max(max_energy_cut, 1.0 - dp_energy / worst_energy);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Headline (max over models, DP vs worst baseline):\n");
  std::printf("  speedup          : %.2fx   (paper: up to 2.8x)\n", max_speedup);
  std::printf("  energy reduction : %.1f%%  (paper: up to 61.7%%)\n",
              100.0 * max_energy_cut);
  artifact.set_float("headline.max_speedup", max_speedup);
  artifact.set_float("headline.max_energy_cut", max_energy_cut);
  speed.emit(artifact);
  write_artifact(artifact);
  return 0;
}
