// ASCII table printer used by benchmark harnesses and the evaluation report
// to emit the same row/column layout as the paper's tables and figures.
#pragma once

#include <string>
#include <vector>

namespace cimflow {

class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns and +---+ separators.
  std::string to_string() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cimflow
