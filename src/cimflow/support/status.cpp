#include "cimflow/support/status.hpp"

#include <cstdio>
#include <cstdlib>

namespace cimflow {

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kInvalidConfig: return "InvalidConfig";
    case ErrorCode::kParseError: return "ParseError";
    case ErrorCode::kCapacityExceeded: return "CapacityExceeded";
    case ErrorCode::kUnsupported: return "Unsupported";
    case ErrorCode::kInternal: return "Internal";
    case ErrorCode::kIoError: return "IoError";
  }
  return "Unknown";
}

Error::Error(ErrorCode code, const std::string& message)
    : std::runtime_error(std::string(to_string(code)) + ": " + message),
      code_(code) {}

void raise(ErrorCode code, const std::string& message) {
  throw Error(code, message);
}

namespace detail {

void check_failed(const char* expr, const std::string& message,
                  const std::source_location& loc) {
  std::fprintf(stderr, "CIMFLOW_CHECK failed at %s:%u: (%s) %s\n",
               loc.file_name(), static_cast<unsigned>(loc.line()), expr,
               message.c_str());
  std::abort();
}

}  // namespace detail
}  // namespace cimflow
