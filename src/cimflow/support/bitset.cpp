#include "cimflow/support/bitset.hpp"

#include <bit>

#include "cimflow/support/status.hpp"

namespace cimflow {
namespace {
constexpr std::size_t kWordBits = 64;
}

DynBitset::DynBitset(std::size_t size)
    : size_(size), words_((size + kWordBits - 1) / kWordBits, 0) {}

std::size_t DynBitset::count() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t word : words_) total += static_cast<std::size_t>(std::popcount(word));
  return total;
}

bool DynBitset::none() const noexcept {
  for (std::uint64_t word : words_) {
    if (word != 0) return false;
  }
  return true;
}

bool DynBitset::test(std::size_t pos) const {
  CIMFLOW_CHECK(pos < size_, "bit index out of range");
  return (words_[pos / kWordBits] >> (pos % kWordBits)) & 1u;
}

DynBitset& DynBitset::set(std::size_t pos, bool value) {
  CIMFLOW_CHECK(pos < size_, "bit index out of range");
  const std::uint64_t mask = std::uint64_t{1} << (pos % kWordBits);
  if (value) {
    words_[pos / kWordBits] |= mask;
  } else {
    words_[pos / kWordBits] &= ~mask;
  }
  return *this;
}

DynBitset& DynBitset::reset(std::size_t pos) { return set(pos, false); }

DynBitset& DynBitset::clear() noexcept {
  for (std::uint64_t& word : words_) word = 0;
  return *this;
}

void DynBitset::check_same_domain(const DynBitset& other) const {
  CIMFLOW_CHECK(size_ == other.size_, "bitset domain mismatch");
}

bool DynBitset::contains(const DynBitset& other) const {
  check_same_domain(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((other.words_[i] & ~words_[i]) != 0) return false;
  }
  return true;
}

bool DynBitset::intersects(const DynBitset& other) const {
  check_same_domain(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

DynBitset& DynBitset::operator|=(const DynBitset& other) {
  check_same_domain(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynBitset& DynBitset::operator&=(const DynBitset& other) {
  check_same_domain(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynBitset& DynBitset::operator^=(const DynBitset& other) {
  check_same_domain(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

DynBitset DynBitset::difference(const DynBitset& other) const {
  check_same_domain(other);
  DynBitset result(size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    result.words_[i] = words_[i] & ~other.words_[i];
  }
  return result;
}

bool DynBitset::operator==(const DynBitset& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

std::size_t DynBitset::find_first() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

std::size_t DynBitset::find_next(std::size_t pos) const noexcept {
  ++pos;
  if (pos >= size_) return size_;
  std::size_t w = pos / kWordBits;
  std::uint64_t word = words_[w] & (~std::uint64_t{0} << (pos % kWordBits));
  while (true) {
    if (word != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(word));
    }
    if (++w >= words_.size()) return size_;
    word = words_[w];
  }
}

std::vector<std::size_t> DynBitset::to_indices() const {
  std::vector<std::size_t> indices;
  indices.reserve(count());
  for_each([&](std::size_t i) { indices.push_back(i); });
  return indices;
}

std::string DynBitset::to_string() const {
  std::string out = "{";
  bool first = true;
  for_each([&](std::size_t i) {
    if (!first) out += ",";
    out += std::to_string(i);
    first = false;
  });
  out += "}";
  return out;
}

std::size_t DynBitset::hash() const noexcept {
  std::size_t h = 1469598103934665603ull;
  for (std::uint64_t word : words_) {
    h ^= static_cast<std::size_t>(word);
    h *= 1099511628211ull;
  }
  return h ^ size_;
}

}  // namespace cimflow
