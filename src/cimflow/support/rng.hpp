// Deterministic pseudo-random generator (SplitMix64). All randomized inputs
// in CIMFlow (synthetic weights, property-test cases) use fixed seeds so runs
// are reproducible bit-for-bit across machines.
#pragma once

#include <cstdint>

namespace cimflow {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound); bound must be positive.
  constexpr std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform value in [lo, hi] (inclusive).
  constexpr std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform signed 8-bit value, the INT8 synthetic-weight primitive.
  constexpr std::int8_t next_int8() { return static_cast<std::int8_t>(next() & 0xFF); }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

}  // namespace cimflow
