#include "cimflow/support/artifact.hpp"

#include <algorithm>
#include <cmath>

#include "cimflow/support/io.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"
#include "cimflow/support/table.hpp"

namespace cimflow {

const char* to_string(MetricGate gate) noexcept {
  switch (gate) {
    case MetricGate::kExact: return "exact";
    case MetricGate::kRtol: return "rtol";
    case MetricGate::kInfo: return "info";
  }
  return "unknown";
}

MetricGate metric_gate_from_string(const std::string& text) {
  if (text == "exact") return MetricGate::kExact;
  if (text == "rtol") return MetricGate::kRtol;
  if (text == "info") return MetricGate::kInfo;
  raise(ErrorCode::kParseError, "unknown metric gate: " + text);
}

void BenchArtifact::set(const std::string& name, double value, MetricGate gate,
                        const std::string& unit, double rtol) {
  BenchMetric metric;
  metric.value = value;
  metric.gate = gate;
  metric.rtol = gate == MetricGate::kRtol ? rtol : 0;
  metric.unit = unit;
  metrics[name] = std::move(metric);
}

void BenchArtifact::set_exact(const std::string& name, double value, const std::string& unit) {
  set(name, value, MetricGate::kExact, unit);
}

void BenchArtifact::set_float(const std::string& name, double value, const std::string& unit,
                              double rtol) {
  set(name, value, MetricGate::kRtol, unit, rtol);
}

void BenchArtifact::set_info(const std::string& name, double value, const std::string& unit) {
  set(name, value, MetricGate::kInfo, unit);
}

Json BenchArtifact::to_json() const {
  JsonObject doc;
  doc["schema"] = Json(std::string(kSchema));
  doc["bench"] = Json(bench);
  JsonObject metric_objects;
  for (const auto& [name, metric] : metrics) {
    JsonObject entry;
    entry["value"] = Json(metric.value);
    entry["gate"] = Json(std::string(to_string(metric.gate)));
    if (metric.gate == MetricGate::kRtol) entry["rtol"] = Json(metric.rtol);
    if (!metric.unit.empty()) entry["unit"] = Json(metric.unit);
    metric_objects[name] = Json(std::move(entry));
  }
  doc["metrics"] = Json(std::move(metric_objects));
  return Json(std::move(doc));
}

std::string BenchArtifact::dump() const { return to_json().dump() + "\n"; }

BenchArtifact BenchArtifact::from_json(const Json& json) {
  const std::string schema = json.get_or("schema", std::string());
  if (schema != kSchema) {
    raise(ErrorCode::kParseError,
          strprintf("not a %s artifact (schema: '%s')", kSchema, schema.c_str()));
  }
  BenchArtifact artifact;
  artifact.bench = json.at("bench").as_string();
  for (const auto& [name, entry] : json.at("metrics").as_object()) {
    BenchMetric metric;
    metric.value = entry.at("value").as_double();
    metric.gate = metric_gate_from_string(entry.at("gate").as_string());
    metric.rtol = entry.get_or("rtol", 0.0);
    metric.unit = entry.get_or("unit", std::string());
    artifact.metrics[name] = std::move(metric);
  }
  return artifact;
}

BenchArtifact BenchArtifact::load(const std::string& path) {
  try {
    return from_json(Json::parse_file(path));
  } catch (const Error& e) {
    if (e.code() == ErrorCode::kIoError) throw;
    raise(e.code(), path + ": " + e.what());
  }
}

void BenchArtifact::save(const std::string& path) const { write_text_file(path, dump()); }

const char* to_string(BenchDiffEntry::Kind kind) noexcept {
  switch (kind) {
    case BenchDiffEntry::Kind::kMatch: return "ok";
    case BenchDiffEntry::Kind::kViolation: return "VIOLATION";
    case BenchDiffEntry::Kind::kMissing: return "MISSING";
    case BenchDiffEntry::Kind::kAdded: return "added";
    case BenchDiffEntry::Kind::kInfo: return "info";
  }
  return "unknown";
}

namespace {

double relative_delta(double baseline, double candidate) {
  if (baseline == candidate) return 0;  // covers the both-zero case
  const double scale = std::max(std::abs(baseline), std::abs(candidate));
  return std::abs(candidate - baseline) / scale;
}

}  // namespace

BenchDiffResult diff_artifacts(const BenchArtifact& baseline, const BenchArtifact& candidate,
                               double rtol_override) {
  BenchDiffResult result;
  if (baseline.bench != candidate.bench) {
    BenchDiffEntry entry;
    entry.metric = strprintf("(bench name: '%s' vs '%s')", baseline.bench.c_str(),
                             candidate.bench.c_str());
    entry.kind = BenchDiffEntry::Kind::kViolation;
    result.entries.push_back(std::move(entry));
    ++result.violations;
  }
  for (const auto& [name, base_metric] : baseline.metrics) {
    BenchDiffEntry entry;
    entry.metric = name;
    entry.baseline = base_metric.value;
    const auto it = candidate.metrics.find(name);
    if (it == candidate.metrics.end()) {
      entry.kind = BenchDiffEntry::Kind::kMissing;
      ++result.violations;
      result.entries.push_back(std::move(entry));
      continue;
    }
    entry.candidate = it->second.value;
    entry.rel_delta = relative_delta(entry.baseline, entry.candidate);
    if (base_metric.gate == MetricGate::kInfo) {
      entry.kind = BenchDiffEntry::Kind::kInfo;
      result.entries.push_back(std::move(entry));
      continue;
    }
    ++result.compared;
    entry.allowed = rtol_override >= 0 ? rtol_override
                    : base_metric.gate == MetricGate::kRtol ? base_metric.rtol
                                                            : 0;
    if (entry.rel_delta > entry.allowed) {
      entry.kind = BenchDiffEntry::Kind::kViolation;
      ++result.violations;
    } else {
      entry.kind = BenchDiffEntry::Kind::kMatch;
    }
    result.entries.push_back(std::move(entry));
  }
  for (const auto& [name, cand_metric] : candidate.metrics) {
    if (baseline.metrics.count(name) != 0) continue;
    BenchDiffEntry entry;
    entry.metric = name;
    entry.kind = BenchDiffEntry::Kind::kAdded;
    entry.candidate = cand_metric.value;
    result.entries.push_back(std::move(entry));
  }
  return result;
}

std::string BenchDiffResult::table(bool verbose) const {
  TextTable table({"Metric", "Baseline", "Candidate", "Rel. delta", "Allowed", "Status"});
  for (const BenchDiffEntry& entry : entries) {
    const bool problem = entry.kind == BenchDiffEntry::Kind::kViolation ||
                         entry.kind == BenchDiffEntry::Kind::kMissing ||
                         entry.kind == BenchDiffEntry::Kind::kAdded;
    if (!problem && !verbose) continue;
    const bool has_baseline = entry.kind != BenchDiffEntry::Kind::kAdded;
    const bool has_candidate = entry.kind != BenchDiffEntry::Kind::kMissing;
    table.add_row({entry.metric,
                   has_baseline ? Json::number_to_string(entry.baseline) : "-",
                   has_candidate ? Json::number_to_string(entry.candidate) : "-",
                   has_baseline && has_candidate ? strprintf("%.3e", entry.rel_delta) : "-",
                   entry.kind == BenchDiffEntry::Kind::kMatch ||
                           entry.kind == BenchDiffEntry::Kind::kViolation
                       ? strprintf("%.3e", entry.allowed)
                       : "-",
                   to_string(entry.kind)});
  }
  return table.row_count() > 0 ? table.to_string() : std::string();
}

std::string BenchDiffResult::summary() const {
  return strprintf("%zu gated metric(s) compared, %zu violation(s)%s", compared, violations,
                   violations == 0 ? " — PASS" : " — FAIL");
}

}  // namespace cimflow
