#include "cimflow/support/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

#include "cimflow/support/status.hpp"

namespace cimflow {

std::vector<std::string> split(std::string_view text, char sep, bool keep_empty) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(sep, start);
    const std::size_t end = (pos == std::string_view::npos) ? text.size() : pos;
    std::string_view piece = text.substr(start, end - start);
    if (keep_empty || !piece.empty()) parts.emplace_back(piece);
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return parts;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::int64_t parse_i64(std::string_view text) {
  // std::from_chars understands '-' but not '+'; accept an explicit plus so
  // "+4" parses like every other strict integer reader.
  std::string_view digits = text;
  if (!digits.empty() && digits.front() == '+') digits.remove_prefix(1);
  std::int64_t value = 0;
  const auto [end, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec == std::errc::result_out_of_range) {
    raise(ErrorCode::kInvalidArgument,
          "integer out of range: '" + std::string(text) + "'");
  }
  if (ec != std::errc() || end != digits.data() + digits.size()) {
    raise(ErrorCode::kInvalidArgument, "invalid integer '" + std::string(text) + "'");
  }
  return value;
}

double parse_f64(std::string_view text) {
  std::string_view digits = text;
  if (!digits.empty() && digits.front() == '+') digits.remove_prefix(1);
  double value = 0;
  const auto [end, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc() || end != digits.data() + digits.size()) {
    raise(ErrorCode::kInvalidArgument, "invalid number '" + std::string(text) + "'");
  }
  return value;
}

std::vector<std::int64_t> parse_i64_list(std::string_view text) {
  std::vector<std::int64_t> values;
  for (const std::string& piece : split(text, ',', /*keep_empty=*/true)) {
    if (piece.empty()) {
      raise(ErrorCode::kInvalidArgument,
            "empty element in list '" + std::string(text) + "'");
    }
    values.push_back(parse_i64(piece));
  }
  return values;
}

std::string csv_field(std::string_view text) {
  if (text.find_first_of(",\"\n\r") == std::string_view::npos) return std::string(text);
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace cimflow
