#include "cimflow/support/table.hpp"

#include <algorithm>

#include "cimflow/support/status.hpp"

namespace cimflow {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CIMFLOW_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  CIMFLOW_CHECK(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&]() {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string out = rule() + emit_row(headers_) + rule();
  for (const auto& row : rows_) out += emit_row(row);
  out += rule();
  return out;
}

}  // namespace cimflow
