// Machine-readable benchmark artifacts (the `BENCH_<name>.json` files every
// harness writes next to its text tables) and the metric-by-metric diff that
// backs the tools/bench_diff CI regression gate.
//
// An artifact is a flat map of named scalar metrics. Each metric carries a
// gate that tells the diff how to treat it:
//   * kExact — deterministic quantities (cycle counts, instruction counts,
//     capacities): any difference against the baseline is a regression;
//   * kRtol  — deterministic floating-point quantities (energy, TOPS): gated
//     with a small per-metric relative tolerance so FP-environment noise
//     (compiler version, FMA contraction) cannot flake the gate;
//   * kInfo  — measurements of the run itself (wall-clock): recorded for the
//     trajectory, never gated.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cimflow/support/json.hpp"

namespace cimflow {

enum class MetricGate : std::uint8_t { kExact, kRtol, kInfo };

/// "exact" / "rtol" / "info" — the on-disk gate names.
const char* to_string(MetricGate gate) noexcept;
/// Inverse of to_string; throws Error(kParseError) on unknown names.
MetricGate metric_gate_from_string(const std::string& text);

struct BenchMetric {
  double value = 0;
  MetricGate gate = MetricGate::kExact;
  double rtol = 0;   ///< allowed relative error (used when gate == kRtol)
  std::string unit;  ///< display only ("cycles", "mJ", "TOPS", "ms", ...)

  bool operator==(const BenchMetric&) const = default;
};

/// One BENCH_<name>.json document: schema tag, harness name, sorted metrics.
struct BenchArtifact {
  static constexpr const char* kSchema = "cimflow.bench.v1";
  /// Default relative tolerance for kRtol metrics added via set_float.
  static constexpr double kDefaultRtol = 1e-6;

  std::string bench;                          ///< harness name ("fig6", ...)
  std::map<std::string, BenchMetric> metrics; ///< sorted -> deterministic dump

  void set(const std::string& name, double value, MetricGate gate,
           const std::string& unit = "", double rtol = 0);
  void set_exact(const std::string& name, double value, const std::string& unit = "");
  void set_float(const std::string& name, double value, const std::string& unit = "",
                 double rtol = kDefaultRtol);
  void set_info(const std::string& name, double value, const std::string& unit = "");

  Json to_json() const;
  std::string dump() const;  ///< to_json().dump() — deterministic bytes

  /// Throws Error(kParseError) when the document is not a v1 artifact.
  static BenchArtifact from_json(const Json& json);
  /// Reads + parses a file; throws Error(kIoError / kParseError) with path.
  static BenchArtifact load(const std::string& path);
  /// Writes dump() to `path`; throws Error(kIoError) naming the path when the
  /// destination is unwritable (never drops the artifact silently).
  void save(const std::string& path) const;

  bool operator==(const BenchArtifact&) const = default;
};

/// Verdict for one metric of a baseline/candidate comparison.
struct BenchDiffEntry {
  enum class Kind : std::uint8_t {
    kMatch,      ///< gated metric within tolerance
    kViolation,  ///< gated metric outside tolerance — fails the gate
    kMissing,    ///< present in baseline, absent from candidate — fails
    kAdded,      ///< new in candidate (benches grow); reported, not gated
    kInfo,       ///< info-gated metric; reported, not gated
  };

  std::string metric;
  Kind kind = Kind::kMatch;
  double baseline = 0;
  double candidate = 0;
  double rel_delta = 0;  ///< |c - b| / max(|b|, |c|); 0 when both are 0
  double allowed = 0;    ///< tolerance the metric was gated with
};

const char* to_string(BenchDiffEntry::Kind kind) noexcept;

struct BenchDiffResult {
  std::vector<BenchDiffEntry> entries;  ///< baseline order, then additions
  std::size_t compared = 0;             ///< gated metrics present on both sides
  std::size_t violations = 0;           ///< kViolation + kMissing entries

  bool ok() const noexcept { return violations == 0; }
  /// Violations/missing/added (plus matches and infos when `verbose`),
  /// rendered as an aligned table. Empty string when there is nothing to show.
  std::string table(bool verbose = false) const;
  std::string summary() const;
};

/// Compares `candidate` against `baseline` metric-by-metric. A mismatched
/// bench name is itself a violation (comparing unrelated artifacts is a CI
/// wiring bug). `rtol_override` >= 0 replaces every gated metric's tolerance,
/// kExact included — the bench_diff --rtol escape hatch.
BenchDiffResult diff_artifacts(const BenchArtifact& baseline,
                               const BenchArtifact& candidate,
                               double rtol_override = -1);

}  // namespace cimflow
