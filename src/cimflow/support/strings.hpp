// String helpers used by the assembler, config loader and report printers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cimflow {

/// Splits on `sep`, dropping empty pieces when `keep_empty` is false.
std::vector<std::string> split(std::string_view text, char sep, bool keep_empty = false);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Case-sensitive join with separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view text);

/// printf-style formatting into std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// RFC-4180 CSV field: quotes (doubling embedded quotes) when the text
/// contains a comma, quote, or newline; passes everything else through.
std::string csv_field(std::string_view text);

/// Strict whole-string integer parse: optional sign, decimal digits, nothing
/// else. Unlike std::stoll this rejects trailing garbage ("4x"), embedded
/// whitespace, and empty input, throwing Error(kInvalidArgument) with the
/// offending text — the CLI/daemon option parsers wrap it to name the flag.
std::int64_t parse_i64(std::string_view text);

/// Strict whole-string floating-point parse; same rejection rules as
/// parse_i64 (the full text must be consumed).
double parse_f64(std::string_view text);

/// Comma-separated list of strict integers. Empty elements ("2,,8", a
/// trailing comma, or an empty string) are rejected with a message quoting
/// the list — they are always flag typos, never an intentional value.
std::vector<std::int64_t> parse_i64_list(std::string_view text);

}  // namespace cimflow
