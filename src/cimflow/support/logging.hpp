// Minimal leveled logger. CIMFlow components log compilation and simulation
// progress at Info level; verbose pass-by-pass detail goes to Debug.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace cimflow::log {

enum class Level : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so that
/// tests and benchmarks stay quiet unless they opt in.
Level threshold() noexcept;
void set_threshold(Level level) noexcept;

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive) into
/// a Level; throws Error(kInvalidArgument) naming the bad value otherwise —
/// a mistyped CIMFLOW_LOG or --log-level must fail loudly, never silently
/// fall back to some verbosity.
Level level_from_string(const std::string& text);
const char* to_string(Level level) noexcept;

/// Applies $CIMFLOW_LOG to the global threshold (unset/empty = leave the
/// default). Entry points call this once at startup; an explicit --log-level
/// flag should be applied after (flags beat environment).
void init_from_env();

/// Emits one line to stderr if `level` passes the threshold.
void emit(Level level, const std::string& message);

namespace detail {

class LineLogger {
 public:
  explicit LineLogger(Level level) : level_(level) {}
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;
  ~LineLogger() { emit(level_, stream_.str()); }

  template <typename T>
  LineLogger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace cimflow::log

#define CIMFLOW_LOG(level) ::cimflow::log::detail::LineLogger(level)
#define CIMFLOW_DEBUG() CIMFLOW_LOG(::cimflow::log::Level::kDebug)
#define CIMFLOW_INFO() CIMFLOW_LOG(::cimflow::log::Level::kInfo)
#define CIMFLOW_WARN() CIMFLOW_LOG(::cimflow::log::Level::kWarn)
#define CIMFLOW_ERROR() CIMFLOW_LOG(::cimflow::log::Level::kError)
