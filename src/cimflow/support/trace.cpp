#include "cimflow/support/trace.hpp"

#include <algorithm>
#include <chrono>

namespace cimflow::trace {
namespace {

thread_local Collector* t_current = nullptr;

}  // namespace

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Collector::record(const char* name, std::int64_t start_ns,
                       std::int64_t dur_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& total = totals_[name];
  total.first += dur_ns;
  total.second += 1;
  if (spans_.size() < kMaxSpans) {
    spans_.push_back(SpanRecord{name, start_ns, dur_ns});
  } else {
    ++dropped_;
  }
}

void Collector::counter_add(const char* name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

std::vector<PhaseTiming> Collector::phase_timings() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PhaseTiming> out;
  out.reserve(totals_.size());
  for (const auto& [name, total] : totals_) {  // std::map: name-sorted
    out.push_back(PhaseTiming{name, static_cast<double>(total.first) * 1e-9,
                              total.second});
  }
  return out;
}

std::vector<SpanRecord> Collector::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::map<std::string, double> Collector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::size_t Collector::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

Collector* current() noexcept { return t_current; }

Scope::Scope(Collector* collector) noexcept : previous_(t_current) {
  t_current = collector;
}

Scope::~Scope() { t_current = previous_; }

void LatencyHistogram::record_ns(std::int64_t ns) {
  ns = std::max<std::int64_t>(ns, 0);
  // Smallest finite bucket whose bound (1 µs << i) holds the sample; the
  // unbounded tail bucket catches everything past ~537 s.
  int bucket = kFiniteBuckets;  // tail
  std::int64_t upper = 1000;    // 1 µs in ns
  for (int i = 0; i < kFiniteBuckets; ++i) {
    if (ns <= upper) {
      bucket = i;
      break;
    }
    upper <<= 1;
  }
  ++buckets_[bucket];
  ++count_;
  sum_ns_ += ns;
}

double LatencyHistogram::bucket_upper_seconds(int bucket) {
  return 1e-6 * static_cast<double>(std::int64_t{1} << bucket);
}

double LatencyHistogram::percentile_seconds(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::int64_t target = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(q * static_cast<double>(count_) + 0.5));
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return bucket_upper_seconds(std::min(i, kFiniteBuckets - 1));
    }
  }
  return bucket_upper_seconds(kFiniteBuckets - 1);
}

}  // namespace cimflow::trace
