// Runtime-gated tracing primitives: scoped wall-clock spans aggregated into
// per-phase timings, named counters, and a fixed log-scale latency histogram.
//
// The gate is a thread-local Collector pointer. With no Collector installed
// (the default), CIMFLOW_TRACE_SPAN compiles to one thread-local load and a
// null check — no clock reads, no allocation, no locking — so instrumented
// hot paths cost nothing when tracing is off. Installing a trace::Scope on a
// thread routes every span that thread opens into the scoped Collector; the
// Collector itself is thread-safe, so one Collector may be shared by many
// worker threads (each worker installs its own Scope over the same sink).
//
// Spans record wall-clock (steady_clock) time, which is why they are
// *telemetry*: consumers (EvaluationReport::phase_timings, the trace file's
// host track) must keep them out of byte-reproducible payloads, exactly like
// EvaluationReport::sim_wall_seconds.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cimflow::trace {

/// Monotonic wall-clock in nanoseconds (std::chrono::steady_clock).
std::int64_t now_ns();

/// One completed span as recorded: name, start (ns since an arbitrary epoch),
/// and duration.
struct SpanRecord {
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
};

/// Aggregated view of every span sharing a name: total wall-clock and the
/// number of times the span ran. This is the shape EvaluationReport carries.
struct PhaseTiming {
  std::string name;
  double seconds = 0;
  std::int64_t count = 0;
};

/// Thread-safe span/counter sink. Individual spans are retained up to
/// kMaxSpans (aggregate totals keep counting past the cap, so phase timings
/// never saturate); counters are plain named accumulators.
class Collector {
 public:
  /// Span retention cap — bounds memory on pathological span storms (e.g. a
  /// span inside a per-kernel loop). Aggregation is unaffected by the cap.
  static constexpr std::size_t kMaxSpans = 1 << 16;

  Collector() = default;
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  void record(const char* name, std::int64_t start_ns, std::int64_t dur_ns);
  void counter_add(const char* name, double delta);

  /// Aggregated totals by span name, name-sorted (deterministic order).
  std::vector<PhaseTiming> phase_timings() const;
  /// The retained individual spans, in completion order.
  std::vector<SpanRecord> spans() const;
  std::map<std::string, double> counters() const;
  /// Spans dropped past kMaxSpans (still aggregated, not retained).
  std::size_t dropped_spans() const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::size_t dropped_ = 0;
  // name -> (total ns, count)
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> totals_;
  std::map<std::string, double> counters_;
};

/// The collector spans on this thread record into; null = tracing off.
Collector* current() noexcept;

/// RAII: installs `collector` as this thread's span sink, restoring the
/// previous sink on destruction. Passing nullptr disables tracing in the
/// scope (useful to shield a subtree from an outer scope).
class Scope {
 public:
  explicit Scope(Collector* collector) noexcept;
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
  ~Scope();

 private:
  Collector* previous_;
};

/// RAII span: captures the thread's collector at construction and records
/// [construction, destruction) into it. `name` must outlive the span (string
/// literals only — the macro enforces this by construction).
class Span {
 public:
  explicit Span(const char* name) noexcept
      : name_(name), collector_(current()) {
    if (collector_ != nullptr) start_ns_ = now_ns();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (collector_ != nullptr) {
      collector_->record(name_, start_ns_, now_ns() - start_ns_);
    }
  }

 private:
  const char* name_;
  Collector* collector_;
  std::int64_t start_ns_ = 0;
};

/// Adds `delta` to counter `name` on the current collector; no-op when
/// tracing is off.
inline void counter_add(const char* name, double delta) {
  Collector* collector = current();
  if (collector != nullptr) collector->counter_add(name, delta);
}

/// Fixed log-scale latency histogram: bucket i holds samples with latency
/// <= 1 µs · 2^i (the last bucket is unbounded). Fixed bounds keep the
/// Prometheus exposition's `le` labels stable across processes and make
/// percentile extraction a cumulative walk. Nanosecond samples — satellite
/// fix for the Router's old millisecond truncation, where every sub-ms
/// request rounded to zero.
///
/// Not internally synchronized: callers guard it with whatever lock protects
/// the surrounding stats (the Router holds its stats mutex).
class LatencyHistogram {
 public:
  /// 30 finite buckets span 1 µs .. ~537 s; bucket 30 catches the rest.
  static constexpr int kFiniteBuckets = 30;
  static constexpr int kBuckets = kFiniteBuckets + 1;

  void record_ns(std::int64_t ns);

  std::int64_t count() const noexcept { return count_; }
  double sum_seconds() const noexcept { return static_cast<double>(sum_ns_) * 1e-9; }
  std::int64_t bucket_count(int bucket) const { return buckets_[bucket]; }
  /// Upper bound of finite bucket `bucket`, in seconds.
  static double bucket_upper_seconds(int bucket);
  /// Conservative quantile estimate (upper bound of the bucket holding the
  /// q-th sample); q in (0, 1]. Returns 0 when empty. Samples beyond the last
  /// finite bucket report that bucket's bound.
  double percentile_seconds(double q) const;

 private:
  std::int64_t buckets_[kBuckets] = {};
  std::int64_t count_ = 0;
  std::int64_t sum_ns_ = 0;
};

}  // namespace cimflow::trace

// Opens a scoped span named `name` (a string literal) for the rest of the
// enclosing block. Zero-cost when no trace::Scope is installed on the thread.
#define CIMFLOW_TRACE_CONCAT_IMPL(a, b) a##b
#define CIMFLOW_TRACE_CONCAT(a, b) CIMFLOW_TRACE_CONCAT_IMPL(a, b)
#define CIMFLOW_TRACE_SPAN(name) \
  ::cimflow::trace::Span CIMFLOW_TRACE_CONCAT(cimflow_trace_span_, __LINE__) { name }
