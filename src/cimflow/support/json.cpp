#include "cimflow/support/json.hpp"

#include <cmath>
#include <cstdlib>

#include "cimflow/support/io.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    raise(ErrorCode::kParseError,
          strprintf("JSON error at offset %zu: %s", pos_, what.c_str()));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        // Allow // comments in config files (strict JSON plus comments).
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(strprintf("expected '%c'", c));
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': return parse_keyword("true", Json(true));
      case 'f': return parse_keyword("false", Json(false));
      case 'n': return parse_keyword("null", Json());
      default: return parse_number();
    }
  }

  Json parse_keyword(std::string_view word, Json value) {
    if (text_.substr(pos_, word.size()) != word) fail("invalid literal");
    pos_ += word.size();
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            if (code > 0x7F) fail("non-ASCII \\u escapes unsupported");
            out += static_cast<char>(code);
            break;
          }
          default: fail("bad escape character");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("invalid number");
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return Json(value);
  }

  Json parse_array() {
    expect('[');
    JsonArray items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(items));
  }

  Json parse_object() {
    expect('{');
    JsonObject members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members[std::move(key)] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(members));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void type_error(const char* want, Json::Kind got) {
  raise(ErrorCode::kParseError,
        strprintf("JSON type mismatch: wanted %s, got kind %d", want, static_cast<int>(got)));
}

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) type_error("bool", kind_);
  return bool_;
}

double Json::as_double() const {
  if (!is_number()) type_error("number", kind_);
  return number_;
}

std::int64_t Json::as_int() const {
  if (!is_number()) type_error("integer", kind_);
  const double rounded = std::nearbyint(number_);
  if (std::abs(number_ - rounded) > 1e-9) type_error("integer", kind_);
  return static_cast<std::int64_t>(rounded);
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("string", kind_);
  return string_;
}

const JsonArray& Json::as_array() const {
  if (!is_array()) type_error("array", kind_);
  return array_;
}

const JsonObject& Json::as_object() const {
  if (!is_object()) type_error("object", kind_);
  return object_;
}

const Json& Json::at(const std::string& key) const {
  const JsonObject& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) {
    raise(ErrorCode::kParseError, "missing JSON key: " + key);
  }
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && object_.count(key) > 0;
}

std::int64_t Json::get_or(const std::string& key, std::int64_t fallback) const {
  return contains(key) ? at(key).as_int() : fallback;
}

double Json::get_or(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_double() : fallback;
}

std::string Json::get_or(const std::string& key, const std::string& fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

bool Json::get_or(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

Json Json::parse_file(const std::string& path) { return parse(read_text_file(path)); }

namespace {

void append_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_line_to(const Json& value, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    out += Json::number_to_string(value.as_double());
  } else if (value.is_string()) {
    append_escaped(out, value.as_string());
  } else if (value.is_array()) {
    out += '[';
    const JsonArray& items = value.as_array();
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i != 0) out += ',';
      dump_line_to(items[i], out);
    }
    out += ']';
  } else {
    out += '{';
    std::size_t i = 0;
    for (const auto& [key, member] : value.as_object()) {
      if (i++ != 0) out += ',';
      append_escaped(out, key);
      out += ':';
      dump_line_to(member, out);
    }
    out += '}';
  }
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
  const std::string closing_pad(static_cast<std::size_t>(indent * depth), ' ');
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += number_to_string(number_); break;
    case Kind::kString: append_escaped(out, string_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 != array_.size()) out += ',';
        out += '\n';
      }
      out += closing_pad + "]";
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      std::size_t i = 0;
      for (const auto& [key, value] : object_) {
        out += pad + '"' + key + "\": ";
        value.dump_to(out, indent, depth + 1);
        if (++i != object_.size()) out += ',';
        out += '\n';
      }
      out += closing_pad + "}";
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

std::string Json::dump_line() const {
  std::string out;
  dump_line_to(*this, out);
  return out;
}

std::string Json::number_to_string(double value) {
  if (!std::isfinite(value)) return "null";
  // 2^53: largest magnitude below which every integer is exactly a double,
  // so the integer rendering is still round-trip exact.
  if (value == std::nearbyint(value) && std::abs(value) < 9007199254740992.0) {
    return strprintf("%lld", static_cast<long long>(value));
  }
  // Shortest decimal that parses back to the identical double (17 significant
  // digits always suffice for IEEE binary64).
  for (int precision = 15; precision <= 17; ++precision) {
    std::string repr = strprintf("%.*g", precision, value);
    if (std::strtod(repr.c_str(), nullptr) == value) return repr;
  }
  return strprintf("%.17g", value);
}

}  // namespace cimflow
