#include "cimflow/support/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "cimflow/support/status.hpp"

namespace cimflow::log {
namespace {

std::atomic<Level> g_threshold{Level::kWarn};

const char* level_tag(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

Level threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_threshold(Level level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

Level level_from_string(const std::string& text) {
  std::string lower = text;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "debug") return Level::kDebug;
  if (lower == "info") return Level::kInfo;
  if (lower == "warn" || lower == "warning") return Level::kWarn;
  if (lower == "error") return Level::kError;
  if (lower == "off" || lower == "none") return Level::kOff;
  raise(ErrorCode::kInvalidArgument,
        "unknown log level '" + text + "' (expected debug|info|warn|error|off)");
}

const char* to_string(Level level) noexcept { return level_tag(level); }

void init_from_env() {
  const char* env = std::getenv("CIMFLOW_LOG");
  if (env == nullptr || *env == '\0') return;
  set_threshold(level_from_string(env));
}

void emit(Level level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(threshold())) return;
  std::fprintf(stderr, "[cimflow %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace cimflow::log
