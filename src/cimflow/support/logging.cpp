#include "cimflow/support/logging.hpp"

#include <atomic>
#include <cstdio>

namespace cimflow::log {
namespace {

std::atomic<Level> g_threshold{Level::kWarn};

const char* level_tag(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

Level threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_threshold(Level level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

void emit(Level level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(threshold())) return;
  std::fprintf(stderr, "[cimflow %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace cimflow::log
