// A small JSON value type + recursive-descent parser, used for architecture
// configuration files (paper Fig. 2 "Arch. Config" / "Config File" input).
// Supports the full JSON grammar except \u escapes beyond ASCII.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cimflow {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

/// Immutable-ish JSON value (object keys are kept sorted for deterministic
/// printing). Accessors throw cimflow::Error on type mismatch so config
/// errors surface with a useful message instead of UB.
class Json {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  Json(double value) : kind_(Kind::kNumber), number_(value) {}
  Json(int value) : kind_(Kind::kNumber), number_(value) {}
  Json(std::int64_t value) : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
  Json(const char* value) : kind_(Kind::kString), string_(value) {}
  Json(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}
  Json(JsonArray value) : kind_(Kind::kArray), array_(std::move(value)) {}
  Json(JsonObject value) : kind_(Kind::kObject), object_(std::move(value)) {}

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;  ///< requires an integral number
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member access; throws when missing (use `get_or`/`contains` for
  /// optional keys).
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Optional lookup with default for numbers — the common config pattern.
  std::int64_t get_or(const std::string& key, std::int64_t fallback) const;
  double get_or(const std::string& key, double fallback) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  bool get_or(const std::string& key, bool fallback) const;

  /// Parses text; throws Error(kParseError) with offset info on failure.
  static Json parse(std::string_view text);

  /// Reads and parses a file; throws Error(kIoError) when unreadable and
  /// Error(kParseError) when malformed.
  static Json parse_file(const std::string& path);

  /// Serializes with 2-space indentation. Output is deterministic (sorted
  /// object keys, fixed number formatting) and round-trip exact:
  /// parse(x.dump()) reconstructs the same value, bit-exact for numbers.
  std::string dump(int indent = 2) const;

  /// Serializes the whole value onto one line with no whitespace — the
  /// newline-delimited wire format of cimflowd, where one request or event
  /// must be exactly one '\n'-terminated line. Same determinism and
  /// round-trip guarantees as dump(); only the whitespace differs.
  std::string dump_line() const;

  /// The number formatting used by dump(): integral values within the
  /// double-exact range print as integers, everything else as the shortest
  /// decimal that parses back to the same double. Non-finite values (which
  /// JSON cannot represent) print as "null". Shared with the CSV emitters so
  /// all machine-readable output formats numbers identically.
  static std::string number_to_string(double value);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

}  // namespace cimflow
