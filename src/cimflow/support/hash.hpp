// Deterministic 64-bit hashing (FNV-1a) for cache keys and fingerprints.
// Unlike std::hash, the result is stable across platforms and runs, so it is
// safe to persist or to compare between processes.
#pragma once

#include <cstdint>
#include <string_view>

namespace cimflow {

inline constexpr std::uint64_t kFnv1aOffset = 0xCBF29CE484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001B3ull;

/// Streaming FNV-1a hasher: feed bytes/values, read `digest()` at any point.
class Fnv1a {
 public:
  constexpr Fnv1a& bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= p[i];
      state_ *= kFnv1aPrime;
    }
    return *this;
  }

  Fnv1a& str(std::string_view text) { return bytes(text.data(), text.size()); }

  constexpr Fnv1a& u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      state_ ^= (value >> (8 * i)) & 0xFF;
      state_ *= kFnv1aPrime;
    }
    return *this;
  }

  constexpr Fnv1a& i64(std::int64_t value) {
    return u64(static_cast<std::uint64_t>(value));
  }

  constexpr std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = kFnv1aOffset;
};

/// One-shot hash of a string.
inline std::uint64_t fnv1a64(std::string_view text) {
  return Fnv1a().str(text).digest();
}

/// Boost-style order-dependent combiner for composing pre-hashed values.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return seed ^ (value + 0x9E3779B97F4A7C15ull + (seed << 12) + (seed >> 4));
}

}  // namespace cimflow
