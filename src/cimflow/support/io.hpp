// Small file I/O helpers with uniform error reporting: every failure throws
// cimflow::Error(kIoError) naming the offending path, so report emitters and
// artifact writers never drop output silently.
#pragma once

#include <string>
#include <string_view>

namespace cimflow {

/// Writes `content` to `path`, replacing any existing file. Throws
/// Error(kIoError) with the path when the file cannot be opened (e.g. the
/// directory does not exist or is unwritable) or when the write itself fails.
void write_text_file(const std::string& path, std::string_view content);

/// Reads the whole file as text. Throws Error(kIoError) with the path when
/// the file cannot be opened or read.
std::string read_text_file(const std::string& path);

/// Verifies `path` can be opened for writing without touching existing
/// content (append-mode probe; a file the probe had to create is removed
/// again). Lets long-running producers reject a bad --json/--csv destination
/// up front instead of after the run, without leaving a zero-byte artifact
/// behind. Throws Error(kIoError) with the path on failure.
void ensure_writable(const std::string& path);

}  // namespace cimflow
