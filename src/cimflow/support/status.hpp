// Error handling primitives for CIMFlow.
//
// CIMFlow follows the C++ Core Guidelines error-handling model: invariant
// violations and unrecoverable misuse abort via CIMFLOW_CHECK (these indicate
// programming errors), while recoverable user-facing failures (bad config
// files, infeasible mappings, malformed models) throw cimflow::Error.
#pragma once

#include <cstdint>
#include <source_location>
#include <stdexcept>
#include <string>

namespace cimflow {

/// Category of a recoverable error, used by callers that want to react
/// differently to different failure classes (e.g. DSE sweeps that skip
/// infeasible configurations).
enum class ErrorCode : std::uint8_t {
  kInvalidArgument,  ///< caller passed a value outside the documented domain
  kInvalidConfig,    ///< architecture/model configuration failed validation
  kParseError,       ///< textual input (JSON/assembly/model file) is malformed
  kCapacityExceeded, ///< workload cannot be placed under resource constraints
  kUnsupported,      ///< feature combination not implemented
  kInternal,         ///< invariant violation surfaced as an exception
  kIoError,          ///< file could not be read or written (path in message)
};

/// Human-readable name of an ErrorCode (e.g. "InvalidConfig").
const char* to_string(ErrorCode code) noexcept;

/// Exception type thrown for all recoverable CIMFlow failures.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message);

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Throws Error with the given code; convenience for formatted call sites.
[[noreturn]] void raise(ErrorCode code, const std::string& message);

namespace detail {
[[noreturn]] void check_failed(const char* expr, const std::string& message,
                               const std::source_location& loc);
}  // namespace detail

}  // namespace cimflow

/// Aborts (after printing file:line and a message) when `expr` is false.
/// Use for internal invariants; use cimflow::raise for user-facing errors.
#define CIMFLOW_CHECK(expr, message)                                        \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::cimflow::detail::check_failed(#expr, (message),                     \
                                      std::source_location::current());     \
    }                                                                       \
  } while (false)
