// Small arithmetic helpers shared across the compiler and simulator.
#pragma once

#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "cimflow/support/status.hpp"

namespace cimflow {

/// True when `a` Pareto-dominates `b` under minimization: no element worse,
/// at least one strictly better (vectors must have equal size). The shared
/// dominance predicate of core's legacy pareto_front and the search
/// subsystem's ParetoArchive — it lives here so core never depends on the
/// higher-level search package.
inline bool pareto_dominates(const std::vector<double>& a, const std::vector<double>& b) {
  CIMFLOW_CHECK(a.size() == b.size(), "objective vectors differ in size");
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

/// ceil(a / b) for non-negative integers; b must be positive.
template <typename T>
constexpr T ceil_div(T a, T b) {
  static_assert(std::is_integral_v<T>);
  CIMFLOW_CHECK(b > 0, "ceil_div divisor must be positive");
  CIMFLOW_CHECK(a >= 0, "ceil_div operand must be non-negative");
  return (a + b - 1) / b;
}

/// Smallest multiple of `align` that is >= value; align must be positive.
template <typename T>
constexpr T align_up(T value, T align) {
  return ceil_div(value, align) * align;
}

template <typename T>
constexpr bool is_pow2(T value) {
  return value > 0 && (value & (value - 1)) == 0;
}

/// Saturates a 32-bit accumulation to the signed 8-bit range; used by the
/// INT8 requantization paths in both the golden executor and the simulator.
constexpr std::int8_t saturate_int8(std::int32_t value) {
  if (value > std::numeric_limits<std::int8_t>::max()) return std::numeric_limits<std::int8_t>::max();
  if (value < std::numeric_limits<std::int8_t>::min()) return std::numeric_limits<std::int8_t>::min();
  return static_cast<std::int8_t>(value);
}

/// Arithmetic right shift with round-to-nearest (ties away from zero); this
/// is the fixed-point requantization primitive used throughout CIMFlow.
constexpr std::int32_t rounding_shift_right(std::int64_t value, int shift) {
  if (shift <= 0) return static_cast<std::int32_t>(value << -shift);
  const std::int64_t round = std::int64_t{1} << (shift - 1);
  if (value >= 0) return static_cast<std::int32_t>((value + round) >> shift);
  return static_cast<std::int32_t>(-((-value + round) >> shift));
}

}  // namespace cimflow
