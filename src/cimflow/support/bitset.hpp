// Dynamic bitset used by the CG-level partitioner to encode dependency
// closures as bitmasks (the "state compression" of Algorithm 1). Optimized
// for the subset/difference/union operations the DP performs in its inner
// loop; sized at construction and fixed thereafter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cimflow {

class DynBitset {
 public:
  DynBitset() = default;

  /// Creates a bitset with `size` bits, all cleared.
  explicit DynBitset(std::size_t size);

  std::size_t size() const noexcept { return size_; }
  bool empty_domain() const noexcept { return size_ == 0; }

  /// Number of set bits.
  std::size_t count() const noexcept;

  /// True when no bit is set.
  bool none() const noexcept;
  bool any() const noexcept { return !none(); }

  bool test(std::size_t pos) const;
  DynBitset& set(std::size_t pos, bool value = true);
  DynBitset& reset(std::size_t pos);
  DynBitset& clear() noexcept;

  /// True when every set bit of `other` is also set in *this.
  bool contains(const DynBitset& other) const;

  /// True when *this and `other` share at least one set bit.
  bool intersects(const DynBitset& other) const;

  DynBitset& operator|=(const DynBitset& other);
  DynBitset& operator&=(const DynBitset& other);
  DynBitset& operator^=(const DynBitset& other);

  /// Set difference: bits of *this that are not in `other`.
  DynBitset difference(const DynBitset& other) const;

  friend DynBitset operator|(DynBitset lhs, const DynBitset& rhs) { return lhs |= rhs; }
  friend DynBitset operator&(DynBitset lhs, const DynBitset& rhs) { return lhs &= rhs; }
  friend DynBitset operator^(DynBitset lhs, const DynBitset& rhs) { return lhs ^= rhs; }

  bool operator==(const DynBitset& other) const;

  /// Index of the lowest set bit, or size() when none is set.
  std::size_t find_first() const noexcept;

  /// Index of the lowest set bit strictly greater than `pos`, or size().
  std::size_t find_next(std::size_t pos) const noexcept;

  /// Invokes `fn(index)` for every set bit in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Collects indices of set bits in ascending order.
  std::vector<std::size_t> to_indices() const;

  /// "{0,3,7}"-style rendering, for diagnostics.
  std::string to_string() const;

  /// FNV-style hash suitable for unordered containers.
  std::size_t hash() const noexcept;

 private:
  void check_same_domain(const DynBitset& other) const;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

struct DynBitsetHash {
  std::size_t operator()(const DynBitset& bits) const noexcept { return bits.hash(); }
};

}  // namespace cimflow
