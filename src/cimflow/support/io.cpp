#include "cimflow/support/io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cimflow/support/status.hpp"

namespace cimflow {

void write_text_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) raise(ErrorCode::kIoError, "cannot open for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) raise(ErrorCode::kIoError, "write failed: " + path);
}

void ensure_writable(const std::string& path) {
  const bool existed = static_cast<bool>(std::ifstream(path));
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) raise(ErrorCode::kIoError, "cannot open for writing: " + path);
  out.close();
  // The append-mode probe creates the file when missing; don't leave a
  // zero-byte artifact behind if the producer later fails before writing.
  if (!existed) std::remove(path.c_str());
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) raise(ErrorCode::kIoError, "cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) raise(ErrorCode::kIoError, "read failed: " + path);
  return buffer.str();
}

}  // namespace cimflow
