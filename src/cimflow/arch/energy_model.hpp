// EnergyModel: converts architectural events into picojoules. Shared by the
// compiler's cost estimator (CG-level mapping decisions) and the simulator's
// per-unit energy accounting so both sides price the same event identically.
#pragma once

#include <cstdint>

#include "cimflow/arch/arch_config.hpp"

namespace cimflow::arch {

class EnergyModel {
 public:
  explicit EnergyModel(const ArchConfig& config) : cfg_(&config) {}

  /// One bit-serial MVM over `active_rows x active_cols` of a macro group.
  /// Energy scales with the *active* array fraction (digital CIM gates unused
  /// rows/columns), which is what makes low-utilization depthwise layers
  /// cheap per op but expensive per useful MAC.
  double mvm_pj(std::int64_t active_rows, std::int64_t active_cols) const {
    const auto& e = cfg_->energy();
    const double macs = static_cast<double>(active_rows) * static_cast<double>(active_cols);
    return macs * e.macro_mac_pj +
           static_cast<double>(active_cols) *
               (e.adder_tree_pj_per_col + e.accumulator_pj_per_col) *
               static_cast<double>(cfg_->unit().input_bits);
  }

  /// MVM energy with an explicit active-MAC count (block-diagonal depthwise
  /// tiles switch far fewer multipliers than rows*cols).
  double mvm_pj_macs(std::int64_t macs, std::int64_t active_cols) const {
    const auto& e = cfg_->energy();
    return static_cast<double>(macs) * e.macro_mac_pj +
           static_cast<double>(active_cols) *
               (e.adder_tree_pj_per_col + e.accumulator_pj_per_col) *
               static_cast<double>(cfg_->unit().input_bits);
  }

  /// Writing `bytes` of weights into macro arrays (CIM_LOAD).
  double cim_load_pj(std::int64_t bytes) const {
    return static_cast<double>(bytes) * cfg_->energy().cim_load_pj_per_byte;
  }

  double local_mem_pj(std::int64_t bytes) const {
    return static_cast<double>(bytes) * cfg_->energy().local_mem_pj_per_byte;
  }

  double global_mem_pj(std::int64_t bytes) const {
    return static_cast<double>(bytes) * cfg_->energy().global_mem_pj_per_byte;
  }

  /// NoC transfer of `bytes` over `hops` mesh links.
  double noc_pj(std::int64_t bytes, std::int64_t hops) const {
    const std::int64_t flits =
        (bytes + cfg_->chip().noc_flit_bytes - 1) / cfg_->chip().noc_flit_bytes;
    return static_cast<double>(flits) * static_cast<double>(hops) *
           cfg_->energy().noc_pj_per_flit_hop;
  }

  double instruction_pj() const { return cfg_->energy().instr_pj; }
  double scalar_op_pj() const { return cfg_->energy().scalar_op_pj; }

  double vector_op_pj(std::int64_t elements) const {
    return static_cast<double>(elements) * cfg_->energy().vector_op_pj_per_elem;
  }

  /// Static (leakage) energy for `cores` cores over `cycles` cycles.
  double leakage_pj(std::int64_t cores, std::int64_t cycles) const {
    const double seconds = static_cast<double>(cycles) * cfg_->cycle_ns() * 1e-9;
    return static_cast<double>(cores) * cfg_->energy().core_leakage_mw * 1e-3 * seconds * 1e12;
  }

  /// Static energy of the chip-level shared fabric (global buffer + NoC).
  double global_leakage_pj(std::int64_t cycles) const {
    const double seconds = static_cast<double>(cycles) * cfg_->cycle_ns() * 1e-9;
    return cfg_->energy().global_leakage_mw * 1e-3 * seconds * 1e12;
  }

 private:
  const ArchConfig* cfg_;
};

}  // namespace cimflow::arch
