// ArchConfig: validated architecture description plus derived quantities.
// This is the hierarchical hardware abstraction interface that guides both
// compilation optimization and simulation execution (paper Sec. III-B).
#pragma once

#include <cstdint>
#include <string>

#include "cimflow/arch/params.hpp"
#include "cimflow/support/json.hpp"

namespace cimflow::arch {

class ArchConfig {
 public:
  /// Builds a config from raw parameter structs; throws Error(kInvalidConfig)
  /// when any parameter is inconsistent (see validate()).
  ArchConfig(ChipParams chip, CoreParams core, UnitParams unit, EnergyParams energy);

  /// The paper's Table I default architecture: 64 cores, 8 B flits, 16 MB
  /// global memory; 16 MGs/core, 512 KB local memory; 8 macros/MG, 512x64
  /// macros, 32x8 elements.
  static ArchConfig cimflow_default();

  /// Loads from a JSON configuration file (all keys optional; unspecified
  /// values keep Table I defaults). Schema: {"chip": {...}, "core": {...},
  /// "unit": {...}, "energy": {...}}.
  static ArchConfig from_json(const Json& json);
  static ArchConfig from_file(const std::string& path);

  /// Serializes the full (resolved) configuration.
  Json to_json() const;

  /// Stable 64-bit hash of the full resolved configuration (platform- and
  /// run-independent; safe to persist).
  std::uint64_t fingerprint() const;

  /// Hash of only the parameters that influence compilation: chip, core and
  /// unit sections. EnergyParams feed the simulator's energy model but are
  /// never read by the compiler, so configs differing only in energy share
  /// compiled programs (the DSE program-cache key builds on this).
  std::uint64_t compile_fingerprint() const;

  const ChipParams& chip() const noexcept { return chip_; }
  const CoreParams& core() const noexcept { return core_; }
  const UnitParams& unit() const noexcept { return unit_; }
  const EnergyParams& energy() const noexcept { return energy_; }

  // --- Derived unit-level geometry -----------------------------------------

  /// INT8 weight columns per macro (= macro_cols / weight_bits).
  std::int64_t weights_per_macro_row() const noexcept;

  /// Weight-tile shape held by one macro group: mg_rows() x mg_cols() INT8
  /// weights (rows are broadcast-shared; columns concatenate across macros).
  std::int64_t mg_rows() const noexcept { return unit_.macro_rows; }
  std::int64_t mg_cols() const noexcept;

  /// Bytes of INT8 weights stored by one macro / macro group / core / chip.
  std::int64_t macro_weight_bytes() const noexcept;
  std::int64_t mg_weight_bytes() const noexcept;
  std::int64_t core_weight_bytes() const noexcept;
  std::int64_t chip_weight_bytes() const noexcept;

  /// Cycles one CIM_MVM occupies a macro group (bit-serial initiation
  /// interval) and its result latency.
  std::int64_t mvm_interval_cycles() const noexcept { return unit_.input_bits; }
  std::int64_t mvm_latency_cycles() const noexcept {
    return unit_.input_bits + unit_.mvm_pipeline_depth;
  }

  /// Peak chip throughput in INT8 TOPS (2 ops per MAC, all MGs busy).
  double peak_tops() const noexcept;

  /// First-order 28 nm silicon-area estimate in mm²: CIM macro arrays plus
  /// local and global SRAM (cell area with array overheads; peripheral logic
  /// folded into the per-bit constants). Deliberately coarse — it exists so
  /// design-space exploration can trade area off against latency and energy
  /// (the search subsystem's optional third objective), not to predict a
  /// floorplan. Grows with macros_per_group: the swept MG size changes the
  /// chip's total macro count.
  double area_mm2() const noexcept;

  /// Mesh position of a core (row-major layout).
  std::int64_t mesh_rows() const noexcept;
  std::int64_t core_x(std::int64_t core_id) const noexcept { return core_id % chip_.mesh_cols; }
  std::int64_t core_y(std::int64_t core_id) const noexcept { return core_id / chip_.mesh_cols; }

  /// Manhattan hop count between two cores (XY routing).
  std::int64_t hops_between(std::int64_t a, std::int64_t b) const noexcept;

  /// Hops from a core to the global-memory controller (mesh corner 0).
  std::int64_t hops_to_global(std::int64_t core_id) const noexcept;

  /// Cycle period in nanoseconds.
  double cycle_ns() const noexcept { return 1.0 / chip_.frequency_ghz; }

  /// Human-readable multi-line summary (used by bench_table1).
  std::string summary() const;

 private:
  void validate() const;

  ChipParams chip_;
  CoreParams core_;
  UnitParams unit_;
  EnergyParams energy_;
};

}  // namespace cimflow::arch
