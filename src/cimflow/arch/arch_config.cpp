#include "cimflow/arch/arch_config.hpp"

#include <cmath>
#include <cstdlib>

#include "cimflow/support/hash.hpp"
#include "cimflow/support/numeric.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::arch {

ArchConfig::ArchConfig(ChipParams chip, CoreParams core, UnitParams unit,
                       EnergyParams energy)
    : chip_(chip), core_(core), unit_(unit), energy_(energy) {
  validate();
}

ArchConfig ArchConfig::cimflow_default() {
  return ArchConfig(ChipParams{}, CoreParams{}, UnitParams{}, EnergyParams{});
}

void ArchConfig::validate() const {
  auto require = [](bool ok, const std::string& what) {
    if (!ok) raise(ErrorCode::kInvalidConfig, what);
  };
  require(chip_.core_count >= 1, "core_count must be >= 1");
  require(chip_.mesh_cols >= 1, "mesh_cols must be >= 1");
  require(chip_.core_count % chip_.mesh_cols == 0,
          "core_count must be a multiple of mesh_cols (rectangular mesh)");
  require(chip_.noc_flit_bytes >= 1, "noc_flit_bytes must be >= 1");
  require(chip_.noc_router_latency >= 1, "noc_router_latency must be >= 1");
  require(chip_.global_mem_bytes > 0, "global_mem_bytes must be positive");
  require(chip_.global_mem_bytes_per_cycle > 0, "global memory bandwidth must be positive");
  require(chip_.global_mem_banks >= 1 && chip_.global_mem_banks <= chip_.mesh_cols,
          "global_mem_banks must be in [1, mesh_cols]");
  require(chip_.frequency_ghz > 0, "frequency must be positive");

  require(core_.mg_per_unit >= 1, "mg_per_unit must be >= 1");
  require(core_.local_mem_bytes >= 4096, "local memory too small");
  require(core_.local_mem_width_bytes >= 1, "local memory width must be >= 1");
  require(core_.num_gregs >= 8 && core_.num_gregs <= 32,
          "num_gregs must be in [8, 32] (5-bit operand fields)");
  require(core_.num_sregs >= 8 && core_.num_sregs <= 32,
          "num_sregs must be in [8, 32]");
  require(core_.instr_mem_words >= 64, "instruction memory too small");
  require(core_.segments >= 4, "need at least 4 local-memory segments");
  require(core_.cim_load_bytes_per_cycle >= 1, "cim_load bandwidth must be >= 1");

  require(unit_.macro_rows >= 1 && unit_.macro_cols >= 1, "macro dims must be positive");
  require(unit_.element_rows >= 1 && unit_.element_cols >= 1, "element dims must be positive");
  require(unit_.macro_rows % unit_.element_rows == 0,
          "macro_rows must be a multiple of element_rows");
  require(unit_.macro_cols % unit_.element_cols == 0,
          "macro_cols must be a multiple of element_cols");
  require(unit_.macros_per_group >= 1, "macros_per_group must be >= 1");
  require(unit_.weight_bits >= 1 && unit_.weight_bits <= 16, "weight_bits in [1,16]");
  require(unit_.macro_cols % unit_.weight_bits == 0,
          "macro_cols must be a multiple of weight_bits");
  require(unit_.input_bits >= 1 && unit_.input_bits <= 16, "input_bits in [1,16]");
  require(unit_.vector_lanes >= 1, "vector_lanes must be >= 1");
}

namespace {

void load_chip(const Json& j, ChipParams& p) {
  p.core_count = j.get_or("core_count", p.core_count);
  p.mesh_cols = j.get_or("mesh_cols", p.mesh_cols);
  p.noc_flit_bytes = j.get_or("noc_flit_bytes", p.noc_flit_bytes);
  p.noc_router_latency = j.get_or("noc_router_latency", p.noc_router_latency);
  p.global_mem_bytes = j.get_or("global_mem_bytes", p.global_mem_bytes);
  p.global_mem_bytes_per_cycle =
      j.get_or("global_mem_bytes_per_cycle", p.global_mem_bytes_per_cycle);
  p.global_mem_banks = j.get_or("global_mem_banks", p.global_mem_banks);
  p.global_mem_latency = j.get_or("global_mem_latency", p.global_mem_latency);
  p.frequency_ghz = j.get_or("frequency_ghz", p.frequency_ghz);
}

void load_core(const Json& j, CoreParams& p) {
  p.mg_per_unit = j.get_or("mg_per_unit", p.mg_per_unit);
  p.local_mem_bytes = j.get_or("local_mem_bytes", p.local_mem_bytes);
  p.local_mem_ports = j.get_or("local_mem_ports", p.local_mem_ports);
  p.local_mem_width_bytes = j.get_or("local_mem_width_bytes", p.local_mem_width_bytes);
  p.instr_mem_words = j.get_or("instr_mem_words", p.instr_mem_words);
  p.num_gregs = j.get_or("num_gregs", p.num_gregs);
  p.num_sregs = j.get_or("num_sregs", p.num_sregs);
  p.segments = j.get_or("segments", p.segments);
  p.cim_load_bytes_per_cycle = j.get_or("cim_load_bytes_per_cycle", p.cim_load_bytes_per_cycle);
}

void load_unit(const Json& j, UnitParams& p) {
  p.macro_rows = j.get_or("macro_rows", p.macro_rows);
  p.macro_cols = j.get_or("macro_cols", p.macro_cols);
  p.element_rows = j.get_or("element_rows", p.element_rows);
  p.element_cols = j.get_or("element_cols", p.element_cols);
  p.macros_per_group = j.get_or("macros_per_group", p.macros_per_group);
  p.weight_bits = j.get_or("weight_bits", p.weight_bits);
  p.input_bits = j.get_or("input_bits", p.input_bits);
  p.mvm_pipeline_depth = j.get_or("mvm_pipeline_depth", p.mvm_pipeline_depth);
  p.vector_lanes = j.get_or("vector_lanes", p.vector_lanes);
  p.vector_pipeline_depth = j.get_or("vector_pipeline_depth", p.vector_pipeline_depth);
}

void load_energy(const Json& j, EnergyParams& p) {
  p.macro_mac_pj = j.get_or("macro_mac_pj", p.macro_mac_pj);
  p.adder_tree_pj_per_col = j.get_or("adder_tree_pj_per_col", p.adder_tree_pj_per_col);
  p.accumulator_pj_per_col = j.get_or("accumulator_pj_per_col", p.accumulator_pj_per_col);
  p.cim_load_pj_per_byte = j.get_or("cim_load_pj_per_byte", p.cim_load_pj_per_byte);
  p.local_mem_pj_per_byte = j.get_or("local_mem_pj_per_byte", p.local_mem_pj_per_byte);
  p.global_mem_pj_per_byte = j.get_or("global_mem_pj_per_byte", p.global_mem_pj_per_byte);
  p.noc_pj_per_flit_hop = j.get_or("noc_pj_per_flit_hop", p.noc_pj_per_flit_hop);
  p.reg_access_pj = j.get_or("reg_access_pj", p.reg_access_pj);
  p.instr_pj = j.get_or("instr_pj", p.instr_pj);
  p.scalar_op_pj = j.get_or("scalar_op_pj", p.scalar_op_pj);
  p.vector_op_pj_per_elem = j.get_or("vector_op_pj_per_elem", p.vector_op_pj_per_elem);
  p.core_leakage_mw = j.get_or("core_leakage_mw", p.core_leakage_mw);
  p.global_leakage_mw = j.get_or("global_leakage_mw", p.global_leakage_mw);
}

}  // namespace

ArchConfig ArchConfig::from_json(const Json& json) {
  ChipParams chip;
  CoreParams core;
  UnitParams unit;
  EnergyParams energy;
  if (json.contains("chip")) load_chip(json.at("chip"), chip);
  if (json.contains("core")) load_core(json.at("core"), core);
  if (json.contains("unit")) load_unit(json.at("unit"), unit);
  if (json.contains("energy")) load_energy(json.at("energy"), energy);
  return ArchConfig(chip, core, unit, energy);
}

ArchConfig ArchConfig::from_file(const std::string& path) {
  return from_json(Json::parse_file(path));
}

Json ArchConfig::to_json() const {
  JsonObject chip{
      {"core_count", Json(chip_.core_count)},
      {"mesh_cols", Json(chip_.mesh_cols)},
      {"noc_flit_bytes", Json(chip_.noc_flit_bytes)},
      {"noc_router_latency", Json(chip_.noc_router_latency)},
      {"global_mem_bytes", Json(chip_.global_mem_bytes)},
      {"global_mem_bytes_per_cycle", Json(chip_.global_mem_bytes_per_cycle)},
      {"global_mem_banks", Json(chip_.global_mem_banks)},
      {"global_mem_latency", Json(chip_.global_mem_latency)},
      {"frequency_ghz", Json(chip_.frequency_ghz)},
  };
  JsonObject core{
      {"mg_per_unit", Json(core_.mg_per_unit)},
      {"local_mem_bytes", Json(core_.local_mem_bytes)},
      {"local_mem_ports", Json(core_.local_mem_ports)},
      {"local_mem_width_bytes", Json(core_.local_mem_width_bytes)},
      {"instr_mem_words", Json(core_.instr_mem_words)},
      {"num_gregs", Json(core_.num_gregs)},
      {"num_sregs", Json(core_.num_sregs)},
      {"segments", Json(core_.segments)},
      {"cim_load_bytes_per_cycle", Json(core_.cim_load_bytes_per_cycle)},
  };
  JsonObject unit{
      {"macro_rows", Json(unit_.macro_rows)},
      {"macro_cols", Json(unit_.macro_cols)},
      {"element_rows", Json(unit_.element_rows)},
      {"element_cols", Json(unit_.element_cols)},
      {"macros_per_group", Json(unit_.macros_per_group)},
      {"weight_bits", Json(unit_.weight_bits)},
      {"input_bits", Json(unit_.input_bits)},
      {"mvm_pipeline_depth", Json(unit_.mvm_pipeline_depth)},
      {"vector_lanes", Json(unit_.vector_lanes)},
      {"vector_pipeline_depth", Json(unit_.vector_pipeline_depth)},
  };
  JsonObject energy{
      {"macro_mac_pj", Json(energy_.macro_mac_pj)},
      {"adder_tree_pj_per_col", Json(energy_.adder_tree_pj_per_col)},
      {"accumulator_pj_per_col", Json(energy_.accumulator_pj_per_col)},
      {"cim_load_pj_per_byte", Json(energy_.cim_load_pj_per_byte)},
      {"local_mem_pj_per_byte", Json(energy_.local_mem_pj_per_byte)},
      {"global_mem_pj_per_byte", Json(energy_.global_mem_pj_per_byte)},
      {"noc_pj_per_flit_hop", Json(energy_.noc_pj_per_flit_hop)},
      {"reg_access_pj", Json(energy_.reg_access_pj)},
      {"instr_pj", Json(energy_.instr_pj)},
      {"scalar_op_pj", Json(energy_.scalar_op_pj)},
      {"vector_op_pj_per_elem", Json(energy_.vector_op_pj_per_elem)},
      {"core_leakage_mw", Json(energy_.core_leakage_mw)},
      {"global_leakage_mw", Json(energy_.global_leakage_mw)},
  };
  return Json(JsonObject{{"chip", Json(std::move(chip))},
                         {"core", Json(std::move(core))},
                         {"unit", Json(std::move(unit))},
                         {"energy", Json(std::move(energy))}});
}

std::uint64_t ArchConfig::fingerprint() const { return fnv1a64(to_json().dump(0)); }

std::uint64_t ArchConfig::compile_fingerprint() const {
  JsonObject sections = to_json().as_object();
  sections.erase("energy");
  return fnv1a64(Json(std::move(sections)).dump(0));
}

std::int64_t ArchConfig::weights_per_macro_row() const noexcept {
  return unit_.macro_cols / unit_.weight_bits;
}

std::int64_t ArchConfig::mg_cols() const noexcept {
  return unit_.macros_per_group * weights_per_macro_row();
}

std::int64_t ArchConfig::macro_weight_bytes() const noexcept {
  // One byte per stored INT8 weight; a macro holds rows x (cols/weight_bits).
  return unit_.macro_rows * weights_per_macro_row();
}

std::int64_t ArchConfig::mg_weight_bytes() const noexcept {
  // INT8 weights: one byte per stored weight.
  return mg_rows() * mg_cols();
}

std::int64_t ArchConfig::core_weight_bytes() const noexcept {
  return mg_weight_bytes() * core_.mg_per_unit;
}

std::int64_t ArchConfig::chip_weight_bytes() const noexcept {
  return core_weight_bytes() * chip_.core_count;
}

double ArchConfig::peak_tops() const noexcept {
  const double macs_per_mvm = static_cast<double>(mg_rows() * mg_cols());
  const double mvms_per_second_per_mg =
      chip_.frequency_ghz * 1e9 / static_cast<double>(mvm_interval_cycles());
  const double total_mgs =
      static_cast<double>(core_.mg_per_unit * chip_.core_count);
  return 2.0 * macs_per_mvm * mvms_per_second_per_mg * total_mgs / 1e12;
}

double ArchConfig::area_mm2() const noexcept {
  // 28 nm figures, µm² per SRAM bit including array overhead: a plain 6T
  // cell is ~0.127 µm²; CIM macro cells carry multiplier elements and an
  // adder tree, so they land ~3x denser logic-per-bit. Matches the energy
  // model's calibration point (ISSCC'22 digital CIM macro, see params.hpp).
  constexpr double kCimBitUm2 = 0.40;
  constexpr double kLocalSramBitUm2 = 0.18;
  constexpr double kGlobalSramBitUm2 = 0.15;

  const double cim_bits = static_cast<double>(unit_.macro_rows * unit_.macro_cols *
                                              unit_.macros_per_group * core_.mg_per_unit *
                                              chip_.core_count);
  const double local_bits =
      static_cast<double>(core_.local_mem_bytes * chip_.core_count) * 8.0;
  const double global_bits = static_cast<double>(chip_.global_mem_bytes) * 8.0;
  const double um2 = cim_bits * kCimBitUm2 + local_bits * kLocalSramBitUm2 +
                     global_bits * kGlobalSramBitUm2;
  return um2 * 1e-6;
}

std::int64_t ArchConfig::mesh_rows() const noexcept {
  return chip_.core_count / chip_.mesh_cols;
}

std::int64_t ArchConfig::hops_between(std::int64_t a, std::int64_t b) const noexcept {
  return std::llabs(core_x(a) - core_x(b)) + std::llabs(core_y(a) - core_y(b));
}

std::int64_t ArchConfig::hops_to_global(std::int64_t core_id) const noexcept {
  // The global-memory controller sits at mesh position (0, 0); accesses also
  // pay one extra hop into the controller.
  return core_x(core_id) + core_y(core_id) + 1;
}

std::string ArchConfig::summary() const {
  std::string out;
  out += "CIMFlow architecture\n";
  out += strprintf("  chip : %lld cores (%lldx%lld mesh), flit %lld B, global mem %lld MB @ %lld B/cyc, %.2f GHz\n",
                   (long long)chip_.core_count, (long long)mesh_rows(),
                   (long long)chip_.mesh_cols, (long long)chip_.noc_flit_bytes,
                   (long long)(chip_.global_mem_bytes >> 20),
                   (long long)chip_.global_mem_bytes_per_cycle, chip_.frequency_ghz);
  out += strprintf("  core : %lld MGs, local mem %lld KB, %lld G_Regs / %lld S_Regs, %lld segments\n",
                   (long long)core_.mg_per_unit, (long long)(core_.local_mem_bytes >> 10),
                   (long long)core_.num_gregs, (long long)core_.num_sregs,
                   (long long)core_.segments);
  out += strprintf("  unit : macro %lldx%lld cells (element %lldx%lld), %lld macros/MG -> MG tile %lldx%lld INT8\n",
                   (long long)unit_.macro_rows, (long long)unit_.macro_cols,
                   (long long)unit_.element_rows, (long long)unit_.element_cols,
                   (long long)unit_.macros_per_group, (long long)mg_rows(),
                   (long long)mg_cols());
  out += strprintf("  derived: CIM capacity %lld KB/core, %lld MB/chip; peak %.2f TOPS (INT8)\n",
                   (long long)(core_weight_bytes() >> 10),
                   (long long)(chip_weight_bytes() >> 20), peak_tops());
  return out;
}

}  // namespace cimflow::arch
