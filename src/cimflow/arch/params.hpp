// Three-level hardware abstraction of the CIMFlow ISA (paper Sec. III-B,
// Fig. 3, Table I): chip level (cores + NoC + global memory), core level
// (compute units, register files, local memory), unit level (macro groups,
// macros, elements). These structs are the "architecture configuration file"
// contents; ArchConfig validates them and derives secondary quantities.
#pragma once

#include <cstdint>

namespace cimflow::arch {

/// Unit-level parameters: the digital CIM macro geometry.
///
/// A macro is a modified SRAM array of `macro_rows x macro_cols` cells built
/// from `element_rows x element_cols` multiplier elements. INT8 weights are
/// bit-sliced along columns, so one macro stores a
/// (macro_rows) x (macro_cols / weight_bits) INT8 weight tile. A macro group
/// (MG) gangs `macros_per_group` macros that share a broadcast input and
/// concatenate along the output-channel dimension.
struct UnitParams {
  std::int64_t macro_rows = 512;       ///< SRAM rows per macro (cells)
  std::int64_t macro_cols = 64;        ///< SRAM columns per macro (cells)
  std::int64_t element_rows = 32;      ///< rows per multiplier element
  std::int64_t element_cols = 8;       ///< cols per multiplier element
  std::int64_t macros_per_group = 8;   ///< macros ganged into one MG
  std::int64_t weight_bits = 8;        ///< bits per stored weight (INT8)
  std::int64_t input_bits = 8;         ///< bit-serial input precision
  std::int64_t mvm_pipeline_depth = 4; ///< adder tree + shift-accumulate stages
  std::int64_t vector_lanes = 32;      ///< SIMD lanes of the vector unit
  std::int64_t vector_pipeline_depth = 2;
};

/// Core-level parameters: resource organization inside one core.
struct CoreParams {
  std::int64_t mg_per_unit = 16;            ///< macro groups in the CIM unit
  std::int64_t local_mem_bytes = 512 * 1024;///< unified local scratchpad
  std::int64_t local_mem_ports = 2;         ///< concurrent r/w ports
  std::int64_t local_mem_width_bytes = 32;  ///< bytes per port per cycle
  std::int64_t instr_mem_words = 1 << 16;   ///< instruction memory capacity
  std::int64_t num_gregs = 32;              ///< general-purpose registers
  std::int64_t num_sregs = 16;              ///< special-purpose registers
  std::int64_t segments = 8;                ///< local-memory segment count
  std::int64_t cim_load_bytes_per_cycle = 64; ///< weight write bandwidth per MG
};

/// Chip-level parameters: multicore coordination fabric.
struct ChipParams {
  std::int64_t core_count = 64;             ///< cores on the mesh
  std::int64_t mesh_cols = 8;               ///< NoC mesh X dimension
  std::int64_t noc_flit_bytes = 8;          ///< flit size (link bandwidth/cycle)
  std::int64_t noc_router_latency = 2;      ///< cycles per hop
  std::int64_t global_mem_bytes = 16ll * 1024 * 1024;
  std::int64_t global_mem_bytes_per_cycle = 64; ///< aggregate global SRAM bandwidth
  std::int64_t global_mem_banks = 8;        ///< banks along the mesh top edge,
                                            ///< page-interleaved (4 KB)
  std::int64_t global_mem_latency = 20;     ///< fixed access latency (cycles)
  double frequency_ghz = 1.0;               ///< core & NoC clock
};

/// Energy model parameters (pJ unless noted). Defaults are calibrated to the
/// 28 nm ISSCC'22 digital CIM macro the paper characterizes (27.38 TOPS/W
/// signed INT8 => ~0.073 pJ/MAC at the array) plus typical 28 nm SRAM / NoC /
/// register-file figures. See DESIGN.md "Substitutions".
struct EnergyParams {
  double macro_mac_pj = 0.073;          ///< per INT8 MAC inside a macro
  double adder_tree_pj_per_col = 0.05;  ///< per active output column per MVM
  double accumulator_pj_per_col = 0.02; ///< shift & accumulate per column
  double cim_load_pj_per_byte = 1.2;    ///< writing weights into the array
  double local_mem_pj_per_byte = 0.8;   ///< scratchpad access
  double global_mem_pj_per_byte = 8.0;  ///< global SRAM access
  double noc_pj_per_flit_hop = 48.0;    ///< link + router energy per flit-hop
  double reg_access_pj = 0.05;          ///< register-file read/write
  double instr_pj = 1.5;                ///< fetch + decode per instruction
  double scalar_op_pj = 0.3;            ///< scalar ALU op
  double vector_op_pj_per_elem = 0.35;  ///< vector lane-op per element
  double core_leakage_mw = 6.0;         ///< static power per core (CIM arrays
                                        ///< + local SRAM retention dominate:
                                        ///< ~1 MB of always-on SRAM per core)
  double global_leakage_mw = 50.0;      ///< static power of global buffer + NoC
};

}  // namespace cimflow::arch
