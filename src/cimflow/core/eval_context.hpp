// The caller-scoped evaluation context. Flow::evaluate, DseEngine and
// SearchDriver all accept the same warm layers (compiled-program memo,
// persistent on-disk cache, decode LRU) and evaluation-wide knobs (simulator
// threads, precomputed model fingerprint); before this struct existed each of
// them re-declared the five fields and every caller re-threaded them per
// call. A caller now builds one EvalContext per scope — cimflowd builds
// exactly one per daemon — and stamps per-model copies with for_model().
#pragma once

#include <cstdint>

#include "cimflow/sim/decoded.hpp"
#include "cimflow/sim/kernels_dispatch.hpp"

namespace cimflow::trace {
class Collector;
}  // namespace cimflow::trace

namespace cimflow {

class PersistentProgramCache;
class ProgramMemo;

struct EvalContext {
  /// Shared in-process compiled-program memo (nullptr = no memoization).
  /// Non-owning; must outlive every evaluation run against this context.
  /// Reports are byte-identical with or without the caching layers — only
  /// the *_cache_hit telemetry differs.
  ProgramMemo* memo = nullptr;
  /// Size-capped on-disk compiled-program cache (nullptr = in-process only).
  /// Non-owning, same lifetime contract as `memo`.
  PersistentProgramCache* persistent_cache = nullptr;
  /// Precomputed model_fingerprint(graph) for the cache keys; 0 = hash the
  /// model inside the evaluation. Callers evaluating one loaded model
  /// repeatedly (cimflowd) hash once — rehashing every weight byte per
  /// request is pure overhead on warm-cache paths.
  std::uint64_t model_fingerprint = 0;
  /// Worker threads inside the cycle-accurate simulator (SimOptions::threads):
  /// 1 = serial kernel, 0 = hardware concurrency. Reports are byte-identical
  /// for any value; raise it to spread one big evaluation over the machine.
  std::int64_t sim_threads = 1;
  /// SIMD kernel tier inside the simulator (SimOptions::kernel_tier): kAuto
  /// resolves via the strict CIMFLOW_KERNELS override, then the best tier
  /// the host supports. Every tier is byte-identical — wall clock only.
  sim::kernels::KernelTier kernel_tier = sim::kernels::KernelTier::kAuto;
  /// Strong-reference capacity of the process-wide predecode LRU; takes
  /// effect through install_decode_cache() (the daemon and CLI call it once
  /// at startup — it is process state, not per-evaluation state).
  std::size_t decode_lru = sim::kDefaultStrongDecodes;
  /// Optional caller-owned span sink (see support/trace.hpp): Flow, the DSE
  /// engine and the search driver forward their phase spans here on top of
  /// their run-local aggregation, so a caller can observe an entire sweep
  /// with one Collector. Non-owning, thread-safe, nullptr = off. Telemetry
  /// only — never changes a result byte.
  trace::Collector* trace = nullptr;

  bool caching() const noexcept {
    return memo != nullptr || persistent_cache != nullptr;
  }

  /// Copy stamped for one model — the per-request step in the daemon (the
  /// warm layers stay shared; only the fingerprint is request-scoped).
  EvalContext for_model(std::uint64_t fingerprint) const {
    EvalContext ctx = *this;
    ctx.model_fingerprint = fingerprint;
    return ctx;
  }

  /// Installs `decode_lru` as the process-wide decode-cache capacity.
  void install_decode_cache() const {
    sim::decoded_cache_set_strong_capacity(decode_lru);
  }
};

}  // namespace cimflow
