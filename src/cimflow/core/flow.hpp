// The integrated CIMFlow workflow (paper Fig. 2): DNN model description +
// architecture configuration -> compile -> functional validation -> cycle-
// accurate simulation -> detailed evaluation report. This facade is the
// public out-of-the-box API; examples and benchmark harnesses build on it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cimflow/arch/arch_config.hpp"
#include "cimflow/compiler/compiler.hpp"
#include "cimflow/core/eval_context.hpp"
#include "cimflow/graph/executor.hpp"
#include "cimflow/graph/graph.hpp"
#include "cimflow/sim/simulator.hpp"
#include "cimflow/support/trace.hpp"

namespace cimflow {

struct FlowOptions {
  compiler::Strategy strategy = compiler::Strategy::kDpOptimized;
  std::int64_t batch = 1;        ///< images pipelined through the chip
  bool functional = false;       ///< simulate real INT8 data movement
  bool validate = false;         ///< compare against the golden executor
                                 ///< (implies functional)
  std::uint64_t input_seed = 7;  ///< synthetic input-image seed
  bool hoist_memory = true;      ///< OP-level memory-annotation pass
  /// Chrome trace-event timeline destination ("" = off): forwarded to
  /// SimOptions::trace_path, with this evaluation's compile-phase wall-clock
  /// spans embedded as the trace's host track. Tracing never perturbs the
  /// report or the --json payload (see SimOptions::trace_path).
  std::string trace_path;

  /// Caller-scoped warm layers + simulator threading (see eval_context.hpp).
  /// With `eval.memo` or `eval.persistent_cache` set, the compile goes
  /// through the same key and entry machinery as the DSE engine — a daemon
  /// evaluate and a sweep point with matching software configuration share
  /// one compiled program.
  EvalContext eval;
};

/// Everything one evaluation produces: compile statistics, mapping summary,
/// simulation report and (optionally) the functional-validation verdict.
struct EvaluationReport {
  std::string model;
  std::string strategy;
  compiler::CompileStats compile_stats;
  std::string mapping_summary;
  sim::SimReport sim;
  /// Wall-clock of the simulator.run call (seconds). Run telemetry: excluded
  /// from to_json() so `evaluate --json` stays byte-reproducible; the bench
  /// harnesses record it as an info-only artifact metric instead.
  double sim_wall_seconds = 0;
  /// Where the compiled program came from when FlowOptions wires in caching
  /// layers (run telemetry, excluded from to_json()): served by the shared
  /// in-memory memo / loaded from the persistent on-disk cache. Both stay
  /// false on the plain path and on a true compile.
  bool compile_cache_hit = false;
  bool persistent_cache_hit = false;
  /// Wall-clock per named phase (compile.partition/tiling/mapping/lower/
  /// codegen, flow.compile/simulate/validate), aggregated from the trace
  /// spans this evaluation opened. Run telemetry like sim_wall_seconds:
  /// excluded from to_json() so --json payloads stay byte-reproducible.
  std::vector<trace::PhaseTiming> phase_timings;

  bool validated = false;
  bool validation_passed = false;
  std::int64_t mismatched_bytes = 0;

  std::string summary() const;

  /// Machine-readable form of the whole evaluation (model, strategy, compile
  /// statistics, detailed simulation report, validation verdict) — what
  /// `cimflow_cli evaluate --json <path>` writes.
  Json to_json() const;
};

class Flow {
 public:
  explicit Flow(arch::ArchConfig arch) : arch_(std::move(arch)) {}

  const arch::ArchConfig& arch() const noexcept { return arch_; }

  /// Compiles and simulates `graph` under `options`. With validate set, the
  /// simulator output of every image is compared bit-exactly against the
  /// golden reference executor (paper Fig. 2 "Exec. Result Check").
  EvaluationReport evaluate(const graph::Graph& graph, const FlowOptions& options = {});

  /// Compile only (no simulation); useful for inspecting mappings.
  compiler::CompileResult compile(const graph::Graph& graph,
                                  const FlowOptions& options = {}) const;

 private:
  arch::ArchConfig arch_;
};

/// Raw bytes of an INT8 tensor (simulator I/O form).
std::vector<std::uint8_t> tensor_bytes(const graph::TensorI8& tensor);

}  // namespace cimflow
