#include "cimflow/core/dse.hpp"

#include "cimflow/support/logging.hpp"

namespace cimflow {

arch::ArchConfig arch_with(const arch::ArchConfig& base, std::int64_t macros_per_group,
                           std::int64_t flit_bytes) {
  arch::ChipParams chip = base.chip();
  arch::CoreParams core = base.core();
  arch::UnitParams unit = base.unit();
  arch::EnergyParams energy = base.energy();
  unit.macros_per_group = macros_per_group;
  chip.noc_flit_bytes = flit_bytes;
  return arch::ArchConfig(chip, core, unit, energy);
}

std::vector<DsePoint> run_dse_sweep(const graph::Graph& model,
                                    const arch::ArchConfig& base,
                                    const DseSweepOptions& options) {
  std::vector<DsePoint> points;
  const std::size_t total = options.mg_sizes.size() * options.flit_sizes.size() *
                            options.strategies.size();
  std::size_t index = 0;
  for (std::int64_t mg : options.mg_sizes) {
    for (std::int64_t flit : options.flit_sizes) {
      for (compiler::Strategy strategy : options.strategies) {
        if (options.progress) options.progress(index, total);
        ++index;
        DsePoint point;
        point.macros_per_group = mg;
        point.flit_bytes = flit;
        point.strategy = strategy;
        try {
          Flow flow(arch_with(base, mg, flit));
          FlowOptions fopt;
          fopt.strategy = strategy;
          fopt.batch = options.batch;
          fopt.functional = false;
          point.report = flow.evaluate(model, fopt);
        } catch (const Error& e) {
          CIMFLOW_WARN() << "DSE point (mg=" << mg << ", flit=" << flit
                         << ", strategy=" << compiler::to_string(strategy)
                         << ") skipped: " << e.what();
          continue;
        }
        points.push_back(std::move(point));
      }
    }
  }
  return points;
}

std::vector<std::size_t> pareto_front(const std::vector<DsePoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      const bool better_tops = points[j].tops() >= points[i].tops();
      const bool better_energy = points[j].energy_mj() <= points[i].energy_mj();
      const bool strictly = points[j].tops() > points[i].tops() ||
                            points[j].energy_mj() < points[i].energy_mj();
      if (better_tops && better_energy && strictly) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

}  // namespace cimflow
