#include "cimflow/core/dse.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "cimflow/core/program_cache.hpp"
#include "cimflow/graph/condense.hpp"
#include "cimflow/sim/decoded.hpp"
#include "cimflow/support/hash.hpp"
#include "cimflow/support/numeric.hpp"
#include "cimflow/support/logging.hpp"
#include "cimflow/support/rng.hpp"
#include "cimflow/support/strings.hpp"
#include "cimflow/support/table.hpp"
#include "cimflow/support/trace.hpp"

namespace cimflow {
namespace {

/// Everything a compile produces that sweep points can share — whether it
/// came from the compiler or from the persistent on-disk cache, so it IS the
/// cache's payload type (one struct, no per-field copying at the cache
/// boundary). Immutable once published; concurrent simulators only read the
/// program (each simulator borrows the global image behind a copy-on-write
/// overlay and never writes through its program pointers).
using CompiledEntry = PersistentProgramCache::Entry;
using EntryPtr = ProgramMemo::EntryPtr;

}  // namespace

arch::ArchConfig arch_with(const arch::ArchConfig& base, std::int64_t macros_per_group,
                           std::int64_t flit_bytes) {
  arch::ChipParams chip = base.chip();
  arch::CoreParams core = base.core();
  arch::UnitParams unit = base.unit();
  arch::EnergyParams energy = base.energy();
  unit.macros_per_group = macros_per_group;
  chip.noc_flit_bytes = flit_bytes;
  return arch::ArchConfig(chip, core, unit, energy);
}

std::uint64_t dse_point_seed(std::uint64_t seed, std::size_t index) {
  return SplitMix64(seed ^ (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(index) + 1)))
      .next();
}

DseResult DseEngine::run(const graph::Graph& model, const arch::ArchConfig& base,
                         const DseJob& job) const {
  const std::size_t total = job.size();
  DseResult result;
  result.stats.total_points = total;
  result.points.resize(total);

  if (job.explicit_points.empty()) {
    const std::size_t nflit = job.flit_sizes.size();
    const std::size_t nstrat = job.strategies.size();
    for (std::size_t i = 0; i < total; ++i) {
      const DseGridCoords c = dse_grid_coords(i, nflit, nstrat);
      DsePoint& point = result.points[i];
      point.index = i;
      point.macros_per_group = job.mg_sizes[c.mg_i];
      point.flit_bytes = job.flit_sizes[c.flit_i];
      point.strategy = job.strategies[c.strategy_i];
      point.input_seed = dse_point_seed(job.seed, i);
    }
  } else {
    for (std::size_t i = 0; i < total; ++i) {
      const DseJobPoint& sample = job.explicit_points[i];
      DsePoint& point = result.points[i];
      point.index = i;
      point.macros_per_group = sample.macros_per_group;
      point.flit_bytes = sample.flit_bytes;
      point.strategy = sample.strategy;
      // Seed from the caller's canonical index, not the batch position: the
      // same design point evaluates identically in any batch arrangement.
      point.input_seed = dse_point_seed(job.seed, sample.seed_index);
    }
  }
  if (total == 0) return result;

  const auto t0 = std::chrono::steady_clock::now();
  const graph::CondensedGraph cg = graph::CondensedGraph::build(model);
  const PersistentProgramCache::Stats persistent_before =
      options_.eval.persistent_cache == nullptr
          ? PersistentProgramCache::Stats{}
          : options_.eval.persistent_cache->stats();

  // The model half of the cache keys: the context's precomputed value, or
  // hashed here (once per sweep) when the caller didn't supply one. Needed
  // whenever a cache layer can outlive this run — the persistent store
  // always, the in-memory memo when the caller shares one across runs.
  const std::uint64_t model_fp =
      !options_.eval.caching()
          ? 0
          : (options_.eval.model_fingerprint != 0
                 ? options_.eval.model_fingerprint
                 : cimflow::model_fingerprint(model));

  // Run-local memo unless the caller hoisted one to its own scope.
  ProgramMemo local_memo;
  ProgramMemo* memo =
      options_.eval.memo != nullptr ? options_.eval.memo : &local_memo;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> hits{0};
  std::atomic<std::size_t> misses{0};
  std::atomic<std::size_t> persistent_hits{0};
  std::atomic<std::size_t> persistent_stores{0};

  // Collector state: workers write only their own point slot, then publish
  // completion under the mutex. `frontier` streams the completed prefix to
  // on_point in grid order regardless of completion order.
  std::mutex collect_mu;
  std::vector<unsigned char> done(total, 0);
  std::size_t frontier = 0;
  std::size_t completed = 0;
  std::exception_ptr fatal_error;

  auto evaluate_point = [&](DsePoint& point) {
    // Route this worker's spans (dse.* plus the nested compile.* phases) into
    // the caller's sweep-wide sink when one is wired in; a null sink keeps
    // tracing off for the whole point at the usual zero cost.
    trace::Scope trace_scope(options_.eval.trace);
    CIMFLOW_TRACE_SPAN("dse.point");
    try {
      const arch::ArchConfig arch =
          arch_with(base, point.macros_per_group, point.flit_bytes);
      compiler::CompileOptions copt;
      copt.strategy = point.strategy;
      copt.batch = job.batch;
      copt.materialize_data = job.functional;
      copt.hoist_memory = job.hoist_memory;

      // The compile path behind the in-memory memoization layer: consult the
      // persistent cache first (a disk load replaces the whole compiler
      // invocation), compile on a true miss, and spill the fresh program back
      // for future runs and processes.
      auto compile_entry = [&]() -> EntryPtr {
        CIMFLOW_TRACE_SPAN("dse.compile");
        PersistentProgramCache* persistent = options_.eval.persistent_cache;
        const PersistentProgramCache::Key pkey{
            model_fp, arch.compile_fingerprint(),
            static_cast<std::uint8_t>(point.strategy), copt.batch,
            copt.materialize_data, copt.hoist_memory};
        if (persistent != nullptr) {
          if (auto cached = persistent->load(pkey)) {
            persistent_hits.fetch_add(1, std::memory_order_relaxed);
            auto entry = std::make_shared<CompiledEntry>(std::move(*cached));
            entry->decoded =
                sim::DecodedProgram::shared(entry->program, isa::Registry::builtin());
            return entry;
          }
        }
        misses.fetch_add(1, std::memory_order_relaxed);
        compiler::CompileResult compiled = compiler::compile(model, arch, copt);
        auto entry = std::make_shared<CompiledEntry>();
        entry->mapping_summary = compiled.plan.summary(cg);
        entry->strategy_name = compiled.plan.strategy;
        entry->stats = compiled.stats;
        entry->program = std::move(compiled.program);
        // Pin the decode next to the program: every point (and, through a
        // caller-scoped memo, every batch) simulating this entry shares it.
        entry->decoded =
            sim::DecodedProgram::shared(entry->program, isa::Registry::builtin());
        if (persistent != nullptr && persistent->store(pkey, *entry)) {
          persistent_stores.fetch_add(1, std::memory_order_relaxed);
        }
        return entry;
      };

      EntryPtr entry;
      if (options_.cache_programs) {
        const ProgramMemo::Key key{model_fp, arch.compile_fingerprint(),
                                   static_cast<std::uint8_t>(point.strategy),
                                   copt.batch, copt.materialize_data,
                                   copt.hoist_memory};
        bool memo_hit = false;
        entry = memo->get_or_compile(key, compile_entry, &memo_hit);
        if (memo_hit) hits.fetch_add(1, std::memory_order_relaxed);
      } else {
        entry = compile_entry();
      }

      EvaluationReport report;
      report.model = model.name();
      report.strategy = entry->strategy_name;
      report.compile_stats = entry->stats;
      report.mapping_summary = entry->mapping_summary;

      sim::SimOptions sopt;
      sopt.functional = job.functional;
      sopt.threads = options_.eval.sim_threads;
      sopt.kernel_tier = options_.eval.kernel_tier;
      sim::Simulator simulator(arch, sopt);
      std::vector<std::vector<std::uint8_t>> inputs;
      if (job.functional) {
        const graph::Shape in_shape = model.node(model.inputs().front()).out_shape;
        for (std::int64_t img = 0; img < job.batch; ++img) {
          inputs.push_back(tensor_bytes(graph::random_tensor(
              in_shape, point.input_seed + static_cast<std::uint64_t>(img))));
        }
      }
      // `entry` rides along as the image owner: every concurrent simulator of
      // this software configuration shares the cached program's global image
      // (weights included) instead of copying it, bounding sweep memory. (The
      // pinned entry->decoded makes the simulator's decode lookup a shared
      // cache hit, too.)
      const auto sim_t0 = std::chrono::steady_clock::now();
      {
        CIMFLOW_TRACE_SPAN("dse.simulate");
        report.sim = simulator.run(entry->program, inputs, entry, entry->decoded);
      }
      report.sim_wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - sim_t0)
              .count();
      point.report = std::move(report);
      point.ok = true;
    } catch (const Error& e) {
      // Domain failures (infeasible config, capacity, ...) are a property of
      // the point, not the sweep: record and continue. Anything else — e.g.
      // std::bad_alloc — is systemic and propagates from the worker below.
      point.ok = false;
      point.error = e.what();
      CIMFLOW_WARN() << "DSE point " << point.index << " (mg=" << point.macros_per_group
                     << ", flit=" << point.flit_bytes
                     << ", strategy=" << compiler::to_string(point.strategy)
                     << ") skipped: " << e.what();
    }
  };

  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      try {
        evaluate_point(result.points[i]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(collect_mu);
        if (!fatal_error) fatal_error = std::current_exception();
        next.store(total, std::memory_order_relaxed);  // drain remaining work
        return;
      }

      std::lock_guard<std::mutex> lock(collect_mu);
      done[i] = 1;
      ++completed;
      if (fatal_error) continue;  // callbacks disabled after a throw
      try {
        if (job.progress) job.progress(completed, total);
        while (frontier < total && done[frontier]) {
          if (job.on_point) job.on_point(result.points[frontier]);
          ++frontier;
        }
      } catch (...) {
        fatal_error = std::current_exception();
        next.store(total, std::memory_order_relaxed);  // drain remaining work
      }
    }
  };

  std::size_t nthreads = options_.num_threads != 0
                             ? options_.num_threads
                             : static_cast<std::size_t>(std::thread::hardware_concurrency());
  if (nthreads == 0) nthreads = 1;
  nthreads = std::min(nthreads, total);

  if (nthreads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (fatal_error) std::rethrow_exception(fatal_error);

  result.stats.threads_used = nthreads;
  result.stats.compile_cache_hits = hits.load();
  result.stats.compile_cache_misses = misses.load();
  result.stats.persistent_cache_hits = persistent_hits.load();
  result.stats.persistent_cache_stores = persistent_stores.load();
  if (options_.eval.persistent_cache != nullptr) {
    const PersistentProgramCache::Stats persistent_after =
        options_.eval.persistent_cache->stats();
    result.stats.persistent_cache_evictions =
        persistent_after.evictions - persistent_before.evictions;
    result.stats.persistent_cache_touch_failures =
        persistent_after.touch_failures - persistent_before.touch_failures;
  }
  for (const DsePoint& point : result.points) {
    if (point.ok) {
      ++result.stats.evaluated;
      result.stats.sim_wall_seconds += point.report.sim_wall_seconds;
    } else {
      ++result.stats.failed;
    }
  }
  result.stats.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

std::vector<DsePoint> DseResult::ok_points() const {
  std::vector<DsePoint> out;
  out.reserve(points.size());
  for (const DsePoint& point : points) {
    if (point.ok) out.push_back(point);
  }
  return out;
}

Json DsePoint::to_json() const {
  JsonObject o;
  o["index"] = Json(static_cast<std::int64_t>(index));
  o["macros_per_group"] = Json(macros_per_group);
  o["flit_bytes"] = Json(flit_bytes);
  o["strategy"] = Json(std::string(compiler::to_string(strategy)));
  // 64-bit seeds exceed double precision; keep them lossless as strings.
  o["input_seed"] = Json(strprintf("%llu", (unsigned long long)input_seed));
  o["ok"] = Json(ok);
  if (ok) {
    o["tops"] = Json(tops());
    o["mj_per_image"] = Json(energy_mj());
    o["sim"] = report.sim.to_json();
  } else {
    o["error"] = Json(error);
  }
  return Json(std::move(o));
}

Json DseStats::to_json(bool include_run_info) const {
  JsonObject o;
  o["total_points"] = Json(static_cast<std::int64_t>(total_points));
  o["evaluated"] = Json(static_cast<std::int64_t>(evaluated));
  o["failed"] = Json(static_cast<std::int64_t>(failed));
  if (include_run_info) {
    o["compile_cache_hits"] = Json(static_cast<std::int64_t>(compile_cache_hits));
    o["compile_cache_misses"] = Json(static_cast<std::int64_t>(compile_cache_misses));
    o["persistent_cache_hits"] = Json(static_cast<std::int64_t>(persistent_cache_hits));
    o["persistent_cache_stores"] =
        Json(static_cast<std::int64_t>(persistent_cache_stores));
    o["persistent_cache_evictions"] =
        Json(static_cast<std::int64_t>(persistent_cache_evictions));
    o["persistent_cache_touch_failures"] =
        Json(static_cast<std::int64_t>(persistent_cache_touch_failures));
    o["threads_used"] = Json(static_cast<std::int64_t>(threads_used));
    o["wall_ms"] = Json(wall_ms);
    o["sim_wall_seconds"] = Json(sim_wall_seconds);
  }
  return Json(std::move(o));
}

Json DseResult::to_json(bool include_run_info) const {
  JsonObject o;
  o["stats"] = stats.to_json(include_run_info);
  JsonArray point_array;
  point_array.reserve(points.size());
  for (const DsePoint& point : points) point_array.push_back(point.to_json());
  o["points"] = Json(std::move(point_array));
  return Json(std::move(o));
}

std::string DseResult::to_csv() const {
  std::string out = "index,macros_per_group,flit_bytes,strategy,ok," +
                    sim::SimReport::csv_header() + ",error\n";
  for (const DsePoint& p : points) {
    out += strprintf("%zu,%lld,%lld,%s,%d,", p.index, (long long)p.macros_per_group,
                     (long long)p.flit_bytes, compiler::to_string(p.strategy),
                     p.ok ? 1 : 0);
    out += p.report.sim.to_csv_row();
    out += ',';
    out += csv_field(p.error);
    out += '\n';
  }
  return out;
}

std::string DseStats::summary() const {
  std::string out = strprintf(
      "%zu point(s): %zu ok, %zu failed; compile cache: %zu hit(s), %zu miss(es); "
      "%zu thread(s), %.1f ms",
      total_points, evaluated, failed, compile_cache_hits, compile_cache_misses,
      threads_used, wall_ms);
  if (persistent_cache_hits > 0 || persistent_cache_stores > 0) {
    out += strprintf("; persistent cache: %zu hit(s), %zu store(s)",
                     persistent_cache_hits, persistent_cache_stores);
    if (persistent_cache_evictions > 0) {
      out += strprintf(", %zu eviction(s)", persistent_cache_evictions);
    }
    if (persistent_cache_touch_failures > 0) {
      out += strprintf(", %zu failed touch(es)", persistent_cache_touch_failures);
    }
  }
  return out;
}

std::vector<DsePoint> run_dse_sweep(const graph::Graph& model,
                                    const arch::ArchConfig& base,
                                    const DseSweepOptions& options) {
  DseJob job;
  job.mg_sizes = options.mg_sizes;
  job.flit_sizes = options.flit_sizes;
  job.strategies = options.strategies;
  job.batch = options.batch;
  job.progress = options.progress;
  return DseEngine().run(model, base, job).ok_points();
}

std::string dse_points_table(const std::vector<DsePoint>& points,
                             const std::vector<std::size_t>& front) {
  TextTable table({"MG", "Flit", "Strategy", "TOPS", "mJ/image", "Pareto"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DsePoint& p = points[i];
    const bool on_front = std::find(front.begin(), front.end(), i) != front.end();
    table.add_row({strprintf("%lld", (long long)p.macros_per_group),
                   strprintf("%lldB", (long long)p.flit_bytes),
                   compiler::to_string(p.strategy), strprintf("%.4f", p.tops()),
                   strprintf("%.3f", p.energy_mj()), on_front ? "*" : ""});
  }
  return table.to_string();
}

std::vector<std::size_t> pareto_front(const std::vector<DsePoint>& points) {
  // Max-TOPS / min-energy as a minimization problem, sharing the dominance
  // predicate with the search subsystem's ParetoArchive. Unlike the archive,
  // exact metric ties all stay on the front (legacy table behavior).
  std::vector<std::vector<double>> objectives;
  objectives.reserve(points.size());
  for (const DsePoint& p : points) objectives.push_back({-p.tops(), p.energy_mj()});
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      dominated = i != j && pareto_dominates(objectives[j], objectives[i]);
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

}  // namespace cimflow
