// Design-space exploration engine (paper Sec. IV-C): architectural sweeps
// over macro-group size and NoC link bandwidth, under selectable compilation
// strategies — the machinery behind Figs. 6 and 7.
//
// Sweep points are independent trials, so DseEngine fans them out across a
// pool of std::thread workers (scaling across trials, not within one). Three
// properties make the parallel path a drop-in for the serial one:
//   * determinism — every point derives its input seed from its grid index,
//     so reports are bit-identical regardless of thread count or schedule;
//   * a compiled-program cache keyed on (compile-relevant arch fingerprint,
//     strategy, batch, compile flags), so points sharing a software
//     configuration compile once and share the immutable Program;
//   * a streaming collector that preserves grid ordering: on_point fires in
//     index order as soon as the completed prefix grows.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cimflow/core/flow.hpp"

namespace cimflow {

/// One (hardware configuration, software strategy) sample of the space.
struct DsePoint {
  std::size_t index = 0;  ///< position in the job's grid (row-major), or in
                          ///< explicit_points when that list is set
  std::int64_t macros_per_group = 8;
  std::int64_t flit_bytes = 8;
  compiler::Strategy strategy = compiler::Strategy::kGeneric;
  std::uint64_t input_seed = 0;  ///< derived from the grid index, not the
                                 ///< worker, so runs are schedule-independent

  bool ok = false;     ///< evaluation completed; report is valid
  std::string error;   ///< failure message when !ok (point was skipped)
  EvaluationReport report;

  double tops() const noexcept { return report.sim.tops(); }
  double energy_mj() const noexcept { return report.sim.energy_per_image_mj(); }

  /// Point coordinates + outcome; includes the full sim report when ok.
  Json to_json() const;
};

/// One explicitly chosen sample for a non-grid sweep (the adaptive search
/// driver's batches). `seed_index` is the point's canonical position in
/// whatever larger space the caller explores: the input seed derives from it
/// (not from the batch position), so the same design point evaluates
/// identically whether it arrives via a dense grid or an adaptive batch.
struct DseJobPoint {
  std::int64_t macros_per_group = 8;
  std::int64_t flit_bytes = 8;
  compiler::Strategy strategy = compiler::Strategy::kGeneric;
  std::size_t seed_index = 0;
};

/// A sweep description: the (mg x flit x strategy) grid plus evaluation
/// options. Grid index decodes mg-major: index = (mg_i * |flit| + flit_i) *
/// |strategies| + strategy_i. When `explicit_points` is non-empty it replaces
/// the cross-product grid: the job evaluates exactly those samples, in order.
struct DseJob {
  std::vector<std::int64_t> mg_sizes = {4, 8, 12, 16};
  std::vector<std::int64_t> flit_sizes = {8, 16};
  std::vector<compiler::Strategy> strategies = {compiler::Strategy::kGeneric};
  /// Non-empty = evaluate this list instead of the grid axes above.
  std::vector<DseJobPoint> explicit_points;
  std::int64_t batch = 4;
  bool functional = false;   ///< simulate real INT8 data movement
  bool hoist_memory = true;  ///< OP-level memory-annotation pass
  std::uint64_t seed = 7;    ///< base seed; per-point seeds derive from it

  /// Called as points complete, in grid order (a completed prefix streams
  /// out even while later indices are still in flight). Serialized by the
  /// engine: never invoked concurrently.
  std::function<void(const DsePoint&)> on_point;
  /// Called after each completion with (completed, total). Serialized.
  std::function<void(std::size_t, std::size_t)> progress;

  std::size_t size() const noexcept {
    return explicit_points.empty()
               ? mg_sizes.size() * flit_sizes.size() * strategies.size()
               : explicit_points.size();
  }
};

struct DseStats {
  std::size_t total_points = 0;
  std::size_t evaluated = 0;  ///< points with ok == true
  std::size_t failed = 0;     ///< points skipped on a per-point error
  std::size_t compile_cache_hits = 0;
  std::size_t compile_cache_misses = 0;  ///< actual compiler invocations
  std::size_t persistent_cache_hits = 0;    ///< compiles loaded from disk
  std::size_t persistent_cache_stores = 0;  ///< compiles spilled to disk
  std::size_t persistent_cache_evictions = 0;  ///< entries LRU-evicted by the size cap
  std::size_t persistent_cache_touch_failures = 0;  ///< LRU touch-on-load failed
                                                    ///< (read-only cache dir)
  std::size_t threads_used = 0;
  double wall_ms = 0;  ///< end-to-end sweep wall-clock
  /// Summed wall-clock of the simulator runs across evaluated points (run
  /// telemetry — the bench harnesses surface it as an info-only metric).
  double sim_wall_seconds = 0;

  std::string summary() const;

  /// With `include_run_info` the JSON carries everything above; without it
  /// only the deterministic fields (total_points / evaluated / failed)
  /// remain, so reports of identical sweeps are byte-identical across runs,
  /// thread counts, and cache temperatures. Run telemetry still reaches CI
  /// through the bench artifacts' info-gated metrics.
  Json to_json(bool include_run_info = true) const;
};

struct DseResult {
  /// One entry per grid point, in grid order (failed points included with
  /// ok == false). Identical for any thread count.
  std::vector<DsePoint> points;
  DseStats stats;

  /// The successfully evaluated subset, still in grid order.
  std::vector<DsePoint> ok_points() const;

  /// Whole sweep as JSON: {"stats": ..., "points": [...]}. `cimflow_cli
  /// sweep --json <path>` writes the deterministic form (include_run_info =
  /// false): rerunning the same sweep — cold or warm persistent cache, any
  /// thread count — produces byte-identical files.
  Json to_json(bool include_run_info = true) const;

  /// Flat CSV (one line per grid point, header first) for spreadsheets and
  /// pandas — what `cimflow_cli sweep --csv <path>` writes. Failed points
  /// keep their row with ok=0 and the error message in the last column.
  std::string to_csv() const;
};

class DseEngine {
 public:
  struct Options {
    std::size_t num_threads = 0;  ///< 0 = std::thread::hardware_concurrency()
    bool cache_programs = true;   ///< share compiles across matching points
    /// Caller-scoped warm layers + per-point simulator threading (see
    /// eval_context.hpp). By default every run() memoizes privately; a caller
    /// issuing many runs for one model (the SearchDriver's batches) hoists a
    /// memo into `eval.memo` so identical software configurations never
    /// recompile across batches, and `eval.persistent_cache` adds the on-disk
    /// layer behind it (hits skip the compiler entirely; fresh compiles are
    /// spilled back for future runs and processes). `eval.memo` is ignored
    /// when cache_programs is false; the persistent layer still applies.
    /// `eval.sim_threads` defaults to the serial kernel because the engine
    /// already parallelizes across points; raise it for few-point jobs of
    /// big models (reports stay byte-identical).
    EvalContext eval;
  };

  DseEngine() = default;
  explicit DseEngine(Options options) : options_(options) {}
  explicit DseEngine(std::size_t num_threads) : options_{num_threads, true, {}} {}

  const Options& options() const noexcept { return options_; }

  /// Evaluates every point of `job`'s grid for `model` on variations of
  /// `base`. Per-point domain failures (cimflow::Error: infeasible
  /// configurations, capacity limits) are recorded on the point and do not
  /// poison the sweep; systemic failures (callback exceptions, bad_alloc,
  /// any non-Error exception) abort it and propagate.
  DseResult run(const graph::Graph& model, const arch::ArchConfig& base,
                const DseJob& job) const;

 private:
  Options options_;
};

/// Returns the default architecture with the two swept parameters replaced.
arch::ArchConfig arch_with(const arch::ArchConfig& base, std::int64_t macros_per_group,
                           std::int64_t flit_bytes);

/// Deterministic input seed for grid point `index` under base `seed`.
std::uint64_t dse_point_seed(std::uint64_t seed, std::size_t index);

/// Per-axis indices of a DSE grid index. THE row-major decode (strategy
/// fastest, then flit, then mg) — DseEngine's grid fill and the search
/// subsystem's SearchSpace both use it, so the index/seed convention cannot
/// drift between dense grids and explicit-point batches.
struct DseGridCoords {
  std::size_t mg_i = 0;
  std::size_t flit_i = 0;
  std::size_t strategy_i = 0;
};
constexpr DseGridCoords dse_grid_coords(std::size_t index, std::size_t flit_count,
                                        std::size_t strategy_count) {
  return {index / (flit_count * strategy_count), (index / strategy_count) % flit_count,
          index % strategy_count};
}
constexpr std::size_t dse_grid_index(const DseGridCoords& c, std::size_t flit_count,
                                     std::size_t strategy_count) {
  return (c.mg_i * flit_count + c.flit_i) * strategy_count + c.strategy_i;
}

// --- Legacy serial-style facade ---------------------------------------------

struct DseSweepOptions {
  std::vector<std::int64_t> mg_sizes = {4, 8, 12, 16};
  std::vector<std::int64_t> flit_sizes = {8, 16};
  std::vector<compiler::Strategy> strategies = {compiler::Strategy::kGeneric};
  std::int64_t batch = 4;
  /// Progress callback (completed points, total) — sweeps can be slow.
  std::function<void(std::size_t, std::size_t)> progress;
};

/// Runs the full (mg x flit x strategy) grid for one model. Thin wrapper over
/// DseEngine (default thread pool); infeasible configurations are skipped
/// with a warning rather than aborting the sweep.
std::vector<DsePoint> run_dse_sweep(const graph::Graph& model,
                                    const arch::ArchConfig& base,
                                    const DseSweepOptions& options);

/// Points on the throughput/energy Pareto front (max TOPS, min mJ).
std::vector<std::size_t> pareto_front(const std::vector<DsePoint>& points);

/// Renders points as a MG/Flit/Strategy/TOPS/mJ table, starring the indices
/// in `front` (as returned by pareto_front). Shared by the CLI and examples.
std::string dse_points_table(const std::vector<DsePoint>& points,
                             const std::vector<std::size_t>& front);

}  // namespace cimflow
