// Design-space exploration helpers (paper Sec. IV-C): architectural sweeps
// over macro-group size and NoC link bandwidth, under selectable compilation
// strategies — the machinery behind Figs. 6 and 7.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cimflow/core/flow.hpp"

namespace cimflow {

/// One (hardware configuration, software strategy) sample of the space.
struct DsePoint {
  std::int64_t macros_per_group = 8;
  std::int64_t flit_bytes = 8;
  compiler::Strategy strategy = compiler::Strategy::kGeneric;
  EvaluationReport report;

  double tops() const noexcept { return report.sim.tops(); }
  double energy_mj() const noexcept { return report.sim.energy_per_image_mj(); }
};

struct DseSweepOptions {
  std::vector<std::int64_t> mg_sizes = {4, 8, 12, 16};
  std::vector<std::int64_t> flit_sizes = {8, 16};
  std::vector<compiler::Strategy> strategies = {compiler::Strategy::kGeneric};
  std::int64_t batch = 4;
  /// Progress callback (point index, total) — sweeps can be slow.
  std::function<void(std::size_t, std::size_t)> progress;
};

/// Returns the default architecture with the two swept parameters replaced.
arch::ArchConfig arch_with(const arch::ArchConfig& base, std::int64_t macros_per_group,
                           std::int64_t flit_bytes);

/// Runs the full (mg x flit x strategy) grid for one model builder.
/// `build_model` is invoked once; infeasible configurations are skipped with
/// a warning rather than aborting the sweep.
std::vector<DsePoint> run_dse_sweep(const graph::Graph& model,
                                    const arch::ArchConfig& base,
                                    const DseSweepOptions& options);

/// Points on the throughput/energy Pareto front (max TOPS, min mJ).
std::vector<std::size_t> pareto_front(const std::vector<DsePoint>& points);

}  // namespace cimflow
