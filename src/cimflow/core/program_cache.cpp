#include "cimflow/core/program_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <tuple>
#include <vector>

#include "cimflow/graph/serialize.hpp"
#include "cimflow/support/hash.hpp"
#include "cimflow/support/io.hpp"
#include "cimflow/support/logging.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

/// Raw bytes <-> lowercase hex. Hex keeps binary payloads (instruction words,
/// the global-memory image) inside JSON without an escaping scheme, and
/// round-trips exactly.
std::string hex_encode(const std::uint8_t* data, std::size_t size) {
  std::string out;
  out.reserve(size * 2);
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0xF]);
  }
  return out;
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

std::vector<std::uint8_t> hex_decode(const std::string& text) {
  if (text.size() % 2 != 0) raise(ErrorCode::kParseError, "odd-length hex payload");
  std::vector<std::uint8_t> out(text.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int hi = hex_value(text[2 * i]);
    const int lo = hex_value(text[2 * i + 1]);
    if (hi < 0 || lo < 0) raise(ErrorCode::kParseError, "non-hex byte in payload");
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return out;
}

std::string hex_encode_words(const std::vector<std::uint32_t>& words) {
  // Little-endian byte order, fixed explicitly so entries are portable.
  std::vector<std::uint8_t> bytes;
  bytes.reserve(words.size() * 4);
  for (std::uint32_t w : words) {
    bytes.push_back(static_cast<std::uint8_t>(w & 0xFF));
    bytes.push_back(static_cast<std::uint8_t>((w >> 8) & 0xFF));
    bytes.push_back(static_cast<std::uint8_t>((w >> 16) & 0xFF));
    bytes.push_back(static_cast<std::uint8_t>((w >> 24) & 0xFF));
  }
  return hex_encode(bytes.data(), bytes.size());
}

std::vector<std::uint32_t> hex_decode_words(const std::string& text) {
  const std::vector<std::uint8_t> bytes = hex_decode(text);
  if (bytes.size() % 4 != 0) raise(ErrorCode::kParseError, "truncated instruction words");
  std::vector<std::uint32_t> words(bytes.size() / 4);
  for (std::size_t i = 0; i < words.size(); ++i) {
    words[i] = static_cast<std::uint32_t>(bytes[4 * i]) |
               (static_cast<std::uint32_t>(bytes[4 * i + 1]) << 8) |
               (static_cast<std::uint32_t>(bytes[4 * i + 2]) << 16) |
               (static_cast<std::uint32_t>(bytes[4 * i + 3]) << 24);
  }
  return words;
}

/// 64-bit values exceed double precision; persist them as decimal strings
/// (the same convention DsePoint::to_json uses for seeds).
std::string u64_string(std::uint64_t value) {
  return strprintf("%llu", (unsigned long long)value);
}

std::uint64_t u64_from_string(const std::string& text) {
  if (text.empty()) raise(ErrorCode::kParseError, "empty u64 field");
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') raise(ErrorCode::kParseError, "non-decimal u64 field");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

Json key_to_json(const PersistentProgramCache::Key& key) {
  JsonObject o;
  o["model"] = Json(u64_string(key.model_fingerprint));
  o["arch"] = Json(u64_string(key.arch_fingerprint));
  o["strategy"] = Json(static_cast<std::int64_t>(key.strategy));
  o["batch"] = Json(key.batch);
  o["materialize_data"] = Json(key.materialize_data);
  o["hoist_memory"] = Json(key.hoist_memory);
  return Json(std::move(o));
}

PersistentProgramCache::Key key_from_json(const Json& j) {
  PersistentProgramCache::Key key;
  key.model_fingerprint = u64_from_string(j.at("model").as_string());
  key.arch_fingerprint = u64_from_string(j.at("arch").as_string());
  key.strategy = static_cast<std::uint8_t>(j.at("strategy").as_int());
  key.batch = j.at("batch").as_int();
  key.materialize_data = j.at("materialize_data").as_bool();
  key.hoist_memory = j.at("hoist_memory").as_bool();
  return key;
}

Json entry_to_json(const PersistentProgramCache::Key& key,
                   const PersistentProgramCache::Entry& entry) {
  const isa::Program& p = entry.program;
  JsonObject program;
  JsonArray cores;
  cores.reserve(p.cores.size());
  for (const isa::CoreProgram& core : p.cores) cores.push_back(Json(hex_encode_words(core.binary())));
  program["cores"] = Json(std::move(cores));
  program["global_image"] =
      Json(hex_encode(p.global_image.data(), p.global_image.size()));
  program["barrier_count"] = Json(p.barrier_count);
  program["input_global_offset"] = Json(static_cast<std::int64_t>(p.input_global_offset));
  program["input_bytes_per_image"] = Json(p.input_bytes_per_image);
  program["output_global_offset"] = Json(static_cast<std::int64_t>(p.output_global_offset));
  program["output_bytes_per_image"] = Json(p.output_bytes_per_image);
  program["batch"] = Json(p.batch);

  JsonObject stats;
  stats["stages"] = Json(entry.stats.stages);
  stats["total_instructions"] = Json(entry.stats.total_instructions);
  stats["global_bytes"] = Json(entry.stats.global_bytes);
  stats["weight_image_bytes"] = Json(entry.stats.weight_image_bytes);
  stats["estimated_cycles"] = Json(entry.stats.estimated_cycles);

  JsonObject o;
  o["schema"] = Json(std::string(PersistentProgramCache::kSchema));
  o["key"] = key_to_json(key);
  o["program"] = Json(std::move(program));
  o["stats"] = Json(std::move(stats));
  o["strategy_name"] = Json(entry.strategy_name);
  o["mapping_summary"] = Json(entry.mapping_summary);
  return Json(std::move(o));
}

PersistentProgramCache::Entry entry_from_json(const Json& j) {
  PersistentProgramCache::Entry entry;
  const Json& program = j.at("program");
  const JsonArray& cores = program.at("cores").as_array();
  entry.program = isa::Program(static_cast<std::int64_t>(cores.size()));
  for (std::size_t i = 0; i < cores.size(); ++i) {
    entry.program.cores[i] =
        isa::CoreProgram::from_binary(hex_decode_words(cores[i].as_string()));
  }
  entry.program.global_image = hex_decode(program.at("global_image").as_string());
  entry.program.barrier_count = program.at("barrier_count").as_int();
  entry.program.input_global_offset =
      static_cast<std::uint32_t>(program.at("input_global_offset").as_int());
  entry.program.input_bytes_per_image = program.at("input_bytes_per_image").as_int();
  entry.program.output_global_offset =
      static_cast<std::uint32_t>(program.at("output_global_offset").as_int());
  entry.program.output_bytes_per_image = program.at("output_bytes_per_image").as_int();
  entry.program.batch = program.at("batch").as_int();

  const Json& stats = j.at("stats");
  entry.stats.stages = stats.at("stages").as_int();
  entry.stats.total_instructions = stats.at("total_instructions").as_int();
  entry.stats.global_bytes = stats.at("global_bytes").as_int();
  entry.stats.weight_image_bytes = stats.at("weight_image_bytes").as_int();
  entry.stats.estimated_cycles = stats.at("estimated_cycles").as_double();

  entry.strategy_name = j.at("strategy_name").as_string();
  entry.mapping_summary = j.at("mapping_summary").as_string();
  return entry;
}

}  // namespace

std::uint64_t model_fingerprint(const graph::Graph& model) {
  // save_text captures topology, attributes and LUT contents; the seed
  // argument is caller-provided metadata, so pin it and fold the actual
  // parameter bytes in separately — graphs with equal structure but
  // different weights must not share compiled (materialized) programs.
  Fnv1a h;
  h.str(graph::save_text(model, 0));
  for (const graph::Node& node : model.nodes()) {
    if (node.weights) {
      h.i64(static_cast<std::int64_t>(node.weights->size()));
      h.bytes(node.weights->data(), node.weights->size());
    }
    if (node.bias) {
      h.i64(static_cast<std::int64_t>(node.bias->size()));
      h.bytes(node.bias->data(), node.bias->size() * sizeof(std::int32_t));
    }
  }
  return h.digest();
}

std::uint64_t PersistentProgramCache::Key::digest() const {
  return Fnv1a()
      .u64(model_fingerprint)
      .u64(arch_fingerprint)
      .u64(strategy)
      .i64(batch)
      .u64((materialize_data ? 2u : 0u) | (hoist_memory ? 1u : 0u))
      .digest();
}

PersistentProgramCache::PersistentProgramCache(std::string dir, std::int64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {
  if (dir_.empty()) raise(ErrorCode::kInvalidArgument, "cache directory path is empty");
  if (max_bytes_ < 0) {
    raise(ErrorCode::kInvalidArgument, "cache size cap must be >= 0 (0 = unlimited)");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    raise(ErrorCode::kIoError, "cannot create cache directory: " + dir_);
  }
  // Probe writability now so a read-only directory fails at configuration
  // time, not halfway through a sweep.
  ensure_writable(dir_ + "/.cimflow-cache-probe");
}

std::string PersistentProgramCache::entry_path(const Key& key) const {
  return dir_ + strprintf("/prog-%016llx.json", (unsigned long long)key.digest());
}

std::optional<PersistentProgramCache::Entry> PersistentProgramCache::load(const Key& key) {
  const std::string path = entry_path(key);
  // error_code overload: a cache directory that turned unreadable mid-sweep
  // is a miss, not an exception (load() documents never throwing).
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return std::nullopt;
  }
  try {
    const Json doc = Json::parse_file(path);
    if (doc.get_or("schema", std::string()) != kSchema) {
      raise(ErrorCode::kParseError, "schema mismatch in " + path);
    }
    if (key_from_json(doc.at("key")) != key) {
      // Key-hash collision or stale file under a reused name: a miss, never
      // a wrong program.
      raise(ErrorCode::kParseError, "key mismatch in " + path);
    }
    Entry entry = entry_from_json(doc);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
    // Touch the file so the size cap's LRU order tracks use, not creation.
    // The use counter doubles as sub-tick jitter on the written mtime, so
    // two loads inside one coarse filesystem tick still persist distinct
    // (and correctly ordered) timestamps where the filesystem can store
    // them. Best-effort: a read-only directory still serves hits, but the
    // failed touch is counted — an operator watching cimflowd's stats can
    // tell when LRU order is degrading toward creation order.
    const std::uint64_t use = record_use(path);
    std::filesystem::last_write_time(
        path,
        std::filesystem::file_time_type::clock::now() +
            std::chrono::nanoseconds(use & 0xFFFFF),
        ec);
    if (ec) ++stats_.touch_failures;
    return entry;
  } catch (const Error& e) {
    CIMFLOW_WARN() << "persistent program cache: ignoring unusable entry " << path << ": "
                   << e.what();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return std::nullopt;
  }
}

bool PersistentProgramCache::store(const Key& key, const Entry& entry) {
  const std::string path = entry_path(key);
  // Unique temp name per writer: concurrent stores of the same key (two
  // processes sharing a cache directory, or a cache-disabled engine
  // compiling a key twice) must never interleave into one file — whichever
  // rename lands last wins whole.
  static std::atomic<std::uint64_t> tmp_counter{0};
  const std::string tmp =
      path + strprintf(".tmp.%d.%llu", static_cast<int>(::getpid()),
                       (unsigned long long)tmp_counter.fetch_add(1));
  try {
    write_text_file(tmp, entry_to_json(key, entry).dump() + "\n");
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      std::filesystem::remove(tmp, ec);
      raise(ErrorCode::kIoError, "cannot publish cache entry: " + path);
    }
  } catch (const Error& e) {
    // Best-effort cleanup: tmp names are never reused, so a partial file
    // left by a failed write (full disk) would otherwise linger forever.
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    CIMFLOW_WARN() << "persistent program cache: store failed: " << e.what();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.store_failures;
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.stores;
    record_use(path);
  }
  enforce_size_cap(path);
  return true;
}

std::uint64_t PersistentProgramCache::record_use(const std::string& path) {
  return use_order_[path] = ++use_counter_;
}

void PersistentProgramCache::enforce_size_cap(const std::string& protect) {
  if (max_bytes_ <= 0) return;
  namespace fs = std::filesystem;
  struct EntryFile {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t use = 0;  ///< in-process use counter; 0 = not used here
    std::int64_t size = 0;
  };
  std::vector<EntryFile> files;
  std::int64_t total = 0;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end; it.increment(ec)) {
    const fs::path& path = it->path();
    const std::string name = path.filename().string();
    if (name.rfind("prog-", 0) != 0 || path.extension() != ".json") continue;
    std::error_code size_ec, time_ec;
    const auto size = static_cast<std::int64_t>(fs::file_size(path, size_ec));
    const auto mtime = fs::last_write_time(path, time_ec);
    if (size_ec || time_ec) continue;  // concurrently evicted elsewhere
    files.push_back({path, mtime, 0, size});
    total += size;
  }
  if (total <= max_bytes_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (EntryFile& file : files) {
      auto it = use_order_.find(file.path.string());
      if (it != use_order_.end()) file.use = it->second;
    }
  }
  // Oldest last-use first. Entries sharing an mtime tick (coarse-granularity
  // filesystems collapse sub-second touches) order by this process's
  // monotonic use counter — the entry actually used last is evicted last,
  // not whichever path sorts first. Files never used through this object
  // carry use = 0 and keep mtime/path order among themselves, which also
  // keeps concurrent writers converging on one eviction order.
  std::sort(files.begin(), files.end(), [](const EntryFile& a, const EntryFile& b) {
    return std::tie(a.mtime, a.use, a.path) < std::tie(b.mtime, b.use, b.path);
  });
  std::size_t evicted = 0;
  for (const EntryFile& file : files) {
    if (total <= max_bytes_) break;
    if (file.path == protect) continue;
    std::error_code remove_ec;
    if (fs::remove(file.path, remove_ec) && !remove_ec) {
      total -= file.size;
      ++evicted;
      CIMFLOW_INFO() << "persistent program cache: evicted " << file.path.string()
                     << " (" << file.size << " B) under the " << max_bytes_
                     << " B cap";
    }
  }
  if (evicted > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.evictions += evicted;
    // Drop use records of files that no longer exist so a long-lived daemon
    // cycling many keys through a small cap keeps the map bounded.
    for (auto it = use_order_.begin(); it != use_order_.end();) {
      std::error_code exists_ec;
      it = fs::exists(it->first, exists_ec) ? std::next(it) : use_order_.erase(it);
    }
  }
}

PersistentProgramCache::Stats PersistentProgramCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t ProgramMemo::KeyHash::operator()(const Key& key) const noexcept {
  std::uint64_t h = key.model_fingerprint;
  h = hash_combine(h, key.arch_fingerprint);
  h = hash_combine(h, key.strategy);
  h = hash_combine(h, static_cast<std::uint64_t>(key.batch));
  h = hash_combine(h, (key.materialize_data ? 2u : 0u) | (key.hoist_memory ? 1u : 0u));
  return static_cast<std::size_t>(h);
}

ProgramMemo::EntryPtr ProgramMemo::get_or_compile(
    const Key& key, const std::function<EntryPtr()>& compile, bool* hit) {
  std::promise<EntryPtr> promise;
  std::shared_future<EntryPtr> future;
  bool compiling_here = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (hit != nullptr) *hit = true;
      future = it->second;
    } else {
      if (hit != nullptr) *hit = false;
      future = promise.get_future().share();
      entries_.emplace(key, future);
      compiling_here = true;
    }
  }
  if (!compiling_here) return future.get();
  try {
    EntryPtr entry = compile();
    promise.set_value(entry);
    return entry;
  } catch (...) {
    promise.set_exception(std::current_exception());
    throw;
  }
}

std::size_t ProgramMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace cimflow
