#include "cimflow/core/flow.hpp"

#include <chrono>
#include <optional>

#include "cimflow/core/program_cache.hpp"
#include "cimflow/graph/condense.hpp"
#include "cimflow/sim/decoded.hpp"
#include "cimflow/support/logging.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow {

std::vector<std::uint8_t> tensor_bytes(const graph::TensorI8& tensor) {
  const auto* data = reinterpret_cast<const std::uint8_t*>(tensor.data());
  return {data, data + tensor.size()};
}

compiler::CompileResult Flow::compile(const graph::Graph& graph,
                                      const FlowOptions& options) const {
  compiler::CompileOptions copt;
  copt.strategy = options.strategy;
  copt.batch = options.batch;
  copt.materialize_data = options.functional || options.validate;
  copt.hoist_memory = options.hoist_memory;
  return compiler::compile(graph, arch_, copt);
}

EvaluationReport Flow::evaluate(const graph::Graph& graph, const FlowOptions& options) {
  EvaluationReport report;
  report.model = graph.name();

  // Every span this evaluation opens (the flow.* phases here, the compile.*
  // phases inside compiler::compile) lands in this run-local collector; it
  // also feeds the trace file's host track when --trace is on. Scope install
  // and span recording are pure telemetry — nothing below reads the clock
  // into a result.
  trace::Collector collector;
  trace::Scope trace_scope(&collector);

  // Either a plain compile (the default) or the cached path through the same
  // memo/persistent layers the DSE engine uses — the daemon wires warm caches
  // into every request this way. Exactly one of `compiled`/`entry` is filled;
  // `program` points into whichever owns the bits.
  compiler::CompileResult compiled;
  ProgramMemo::EntryPtr entry;
  const isa::Program* program = nullptr;
  std::shared_ptr<const sim::DecodedProgram> decoded;
  std::optional<trace::Span> compile_span;
  compile_span.emplace("flow.compile");
  if (options.eval.caching()) {
    compiler::CompileOptions copt;
    copt.strategy = options.strategy;
    copt.batch = options.batch;
    copt.materialize_data = options.functional || options.validate;
    copt.hoist_memory = options.hoist_memory;
    const std::uint64_t model_fp = options.eval.model_fingerprint != 0
                                       ? options.eval.model_fingerprint
                                       : model_fingerprint(graph);
    // Only meaningful when compile_entry actually runs in this call — a memo
    // hit never consults the disk, so the flag stays false there.
    bool persistent_hit = false;
    auto compile_entry = [&]() -> ProgramMemo::EntryPtr {
      PersistentProgramCache* persistent = options.eval.persistent_cache;
      const PersistentProgramCache::Key pkey{
          model_fp, arch_.compile_fingerprint(),
          static_cast<std::uint8_t>(options.strategy), copt.batch,
          copt.materialize_data, copt.hoist_memory};
      if (persistent != nullptr) {
        if (auto cached = persistent->load(pkey)) {
          persistent_hit = true;
          auto loaded =
              std::make_shared<PersistentProgramCache::Entry>(std::move(*cached));
          loaded->decoded =
              sim::DecodedProgram::shared(loaded->program, isa::Registry::builtin());
          return loaded;
        }
      }
      compiler::CompileResult fresh_compiled = compiler::compile(graph, arch_, copt);
      auto fresh = std::make_shared<PersistentProgramCache::Entry>();
      const graph::CondensedGraph cg = graph::CondensedGraph::build(graph);
      fresh->mapping_summary = fresh_compiled.plan.summary(cg);
      fresh->strategy_name = fresh_compiled.plan.strategy;
      fresh->stats = fresh_compiled.stats;
      fresh->program = std::move(fresh_compiled.program);
      fresh->decoded =
          sim::DecodedProgram::shared(fresh->program, isa::Registry::builtin());
      if (persistent != nullptr) persistent->store(pkey, *fresh);
      return fresh;
    };
    if (options.eval.memo != nullptr) {
      const ProgramMemo::Key key{model_fp, arch_.compile_fingerprint(),
                                 static_cast<std::uint8_t>(options.strategy),
                                 copt.batch, copt.materialize_data,
                                 copt.hoist_memory};
      entry = options.eval.memo->get_or_compile(key, compile_entry,
                                                &report.compile_cache_hit);
    } else {
      entry = compile_entry();
    }
    report.persistent_cache_hit = persistent_hit;
    report.strategy = entry->strategy_name;
    report.compile_stats = entry->stats;
    report.mapping_summary = entry->mapping_summary;
    program = &entry->program;
    decoded = entry->decoded;
  } else {
    compiled = compile(graph, options);
    report.strategy = compiled.plan.strategy;
    report.compile_stats = compiled.stats;
    {
      const graph::CondensedGraph cg = graph::CondensedGraph::build(graph);
      report.mapping_summary = compiled.plan.summary(cg);
    }
    program = &compiled.program;
  }
  compile_span.reset();  // close flow.compile before the simulate span opens

  const bool functional = options.functional || options.validate;
  sim::SimOptions sopt;
  sopt.functional = functional;
  sopt.threads = options.eval.sim_threads;
  sopt.kernel_tier = options.eval.kernel_tier;
  sopt.trace_path = options.trace_path;
  // Completed compile-phase spans ride into the trace file's host track; the
  // still-open flow.simulate span is naturally excluded at write time.
  sopt.trace_host = &collector;
  sim::Simulator simulator(arch_, sopt);

  std::vector<std::vector<std::uint8_t>> inputs;
  std::vector<graph::TensorI8> input_tensors;
  if (functional) {
    CIMFLOW_TRACE_SPAN("flow.inputs");
    const graph::Shape in_shape = graph.node(graph.inputs().front()).out_shape;
    for (std::int64_t img = 0; img < options.batch; ++img) {
      input_tensors.push_back(graph::random_tensor(
          in_shape, options.input_seed + static_cast<std::uint64_t>(img)));
      inputs.push_back(tensor_bytes(input_tensors.back()));
    }
  }
  const auto sim_t0 = std::chrono::steady_clock::now();
  {
    CIMFLOW_TRACE_SPAN("flow.simulate");
    report.sim = simulator.run(*program, inputs, entry, decoded);
  }
  report.sim_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sim_t0).count();

  if (options.validate) {
    CIMFLOW_TRACE_SPAN("flow.validate");
    report.validated = true;
    report.validation_passed = true;
    graph::ReferenceExecutor golden(graph);
    for (std::int64_t img = 0; img < options.batch; ++img) {
      const graph::TensorI8 expected =
          golden.run({input_tensors[static_cast<std::size_t>(img)]});
      const std::vector<std::uint8_t> actual = simulator.output(*program, img);
      const std::vector<std::uint8_t> want = tensor_bytes(expected);
      CIMFLOW_CHECK(actual.size() == want.size(), "output size mismatch");
      for (std::size_t i = 0; i < want.size(); ++i) {
        if (actual[i] != want[i]) {
          report.validation_passed = false;
          ++report.mismatched_bytes;
        }
      }
    }
    if (!report.validation_passed) {
      CIMFLOW_WARN() << graph.name() << " functional validation FAILED: "
                     << report.mismatched_bytes << " mismatched bytes";
    }
  }

  report.phase_timings = collector.phase_timings();
  // Forward the individual spans to a caller-provided sweep-wide sink (the
  // DSE engine and search driver aggregate whole runs this way).
  if (options.eval.trace != nullptr) {
    for (const trace::SpanRecord& span : collector.spans()) {
      options.eval.trace->record(span.name.c_str(), span.start_ns, span.dur_ns);
    }
  }
  return report;
}

std::string EvaluationReport::summary() const {
  std::string out;
  out += strprintf("=== %s / %s ===\n", model.c_str(), strategy.c_str());
  out += strprintf("compile           : %lld stage(s), %lld instructions, %.1f MB global\n",
                   (long long)compile_stats.stages,
                   (long long)compile_stats.total_instructions,
                   static_cast<double>(compile_stats.global_bytes) / 1e6);
  out += mapping_summary;
  out += sim.summary();
  if (validated) {
    out += strprintf("validation        : %s\n",
                     validation_passed ? "PASSED (bit-exact vs golden executor)"
                                       : strprintf("FAILED (%lld mismatched bytes)",
                                                   (long long)mismatched_bytes)
                                             .c_str());
  }
  return out;
}

Json EvaluationReport::to_json() const {
  JsonObject o;
  o["model"] = Json(model);
  o["strategy"] = Json(strategy);
  JsonObject compile_obj;
  compile_obj["stages"] = Json(compile_stats.stages);
  compile_obj["total_instructions"] = Json(compile_stats.total_instructions);
  compile_obj["global_bytes"] = Json(compile_stats.global_bytes);
  compile_obj["weight_image_bytes"] = Json(compile_stats.weight_image_bytes);
  compile_obj["estimated_cycles"] = Json(compile_stats.estimated_cycles);
  o["compile"] = Json(std::move(compile_obj));
  o["sim"] = sim.to_json();
  if (validated) {
    JsonObject validation;
    validation["passed"] = Json(validation_passed);
    validation["mismatched_bytes"] = Json(mismatched_bytes);
    o["validation"] = Json(std::move(validation));
  }
  return Json(std::move(o));
}

}  // namespace cimflow
