// On-disk compiled-program cache (ROADMAP "Persistent cache"): compile
// fingerprints are stable across runs and machines, so compiled programs can
// be spilled to a cache directory and reused between sweeps and processes.
// The DseEngine consults this cache behind its in-memory memoization layer —
// a warm directory turns a whole repeated sweep's compilation into file
// loads, and a second `cimflow_cli sweep --cache-dir <dir>` run reports the
// hits while producing a byte-identical result.
//
// Each entry is one JSON file (`prog-<keyhash>.json`, schema
// "cimflow.progcache.v1") holding the full key (verified on load — a hash
// collision degrades to a miss, never a wrong program), the encoded per-core
// instruction streams, the global-memory image, and the compile metadata the
// DSE report needs. Entries are written atomically (temp file + rename);
// corrupt, truncated, or version-mismatched entries are counted and treated
// as misses, and the next store overwrites them in place.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "cimflow/compiler/compiler.hpp"
#include "cimflow/graph/graph.hpp"
#include "cimflow/support/json.hpp"

namespace cimflow {

/// Deterministic 64-bit identity of a model for persistent cache keys: the
/// canonical text serialization (topology, attributes, LUT contents) combined
/// with the actual weight/bias bytes — two graphs that would compile
/// differently never share a fingerprint.
std::uint64_t model_fingerprint(const graph::Graph& model);

class PersistentProgramCache {
 public:
  static constexpr const char* kSchema = "cimflow.progcache.v1";

  /// Everything that selects a compiled program. `arch_fingerprint` is
  /// ArchConfig::compile_fingerprint() — configs differing only in energy
  /// parameters share entries, mirroring the in-memory cache key.
  struct Key {
    std::uint64_t model_fingerprint = 0;
    std::uint64_t arch_fingerprint = 0;
    std::uint8_t strategy = 0;  ///< compiler::Strategy
    std::int64_t batch = 1;
    bool materialize_data = false;
    bool hoist_memory = true;

    bool operator==(const Key&) const = default;

    /// Stable hash (file-name component).
    std::uint64_t digest() const;
  };

  /// The cached payload: the program plus the compile metadata an
  /// EvaluationReport carries (the full MappingPlan is not persisted — only
  /// its rendered summary and strategy name, which is all evaluation needs).
  struct Entry {
    isa::Program program;
    compiler::CompileStats stats;
    std::string strategy_name;
    std::string mapping_summary;
  };

  /// Load/store/corruption counters, cumulative over this object's lifetime.
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;          ///< key not present on disk
    std::size_t rejected = 0;        ///< present but corrupt / wrong schema /
                                     ///< key-hash collision — treated as a miss
    std::size_t stores = 0;
    std::size_t store_failures = 0;  ///< I/O failures (logged, never fatal)
  };

  /// Opens (creating if needed) the cache directory. Throws Error(kIoError)
  /// naming the path when the directory cannot be created or written — a bad
  /// --cache-dir fails fast instead of silently disabling persistence.
  explicit PersistentProgramCache(std::string dir);

  const std::string& dir() const noexcept { return dir_; }

  /// Fetches the entry for `key`, or nullopt on a miss. Never throws: a
  /// corrupt or mismatched entry is counted in stats().rejected and treated
  /// as a miss (the caller recompiles and the subsequent store overwrites the
  /// bad file). Thread-safe.
  std::optional<Entry> load(const Key& key);

  /// Writes the entry atomically (temp file + rename). Returns false (and
  /// logs a warning) on I/O failure — a full disk degrades the cache, it
  /// never aborts a sweep. Thread-safe.
  bool store(const Key& key, const Entry& entry);

  Stats stats() const;

  /// The file an entry for `key` lives in (inside dir()).
  std::string entry_path(const Key& key) const;

 private:
  std::string dir_;
  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace cimflow
