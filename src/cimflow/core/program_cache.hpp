// On-disk compiled-program cache (ROADMAP "Persistent cache"): compile
// fingerprints are stable across runs and machines, so compiled programs can
// be spilled to a cache directory and reused between sweeps and processes.
// The DseEngine consults this cache behind its in-memory memoization layer —
// a warm directory turns a whole repeated sweep's compilation into file
// loads, and a second `cimflow_cli sweep --cache-dir <dir>` run reports the
// hits while producing a byte-identical result.
//
// Each entry is one JSON file (`prog-<keyhash>.json`, schema
// "cimflow.progcache.v1") holding the full key (verified on load — a hash
// collision degrades to a miss, never a wrong program), the encoded per-core
// instruction streams, the global-memory image, and the compile metadata the
// DSE report needs. Entries are written atomically (temp file + rename);
// corrupt, truncated, or version-mismatched entries are counted and treated
// as misses, and the next store overwrites them in place.
//
// Content hashes never go stale, so entries have no expiry — but sweep farms
// sharing one directory need a bound: an optional size cap evicts
// least-recently-used entries (loads touch the file mtime; stores evict the
// oldest files until the directory fits) and counts them in stats().
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cimflow/compiler/compiler.hpp"
#include "cimflow/graph/graph.hpp"
#include "cimflow/support/json.hpp"

namespace cimflow::sim {
class DecodedProgram;
}  // namespace cimflow::sim

namespace cimflow {

/// Deterministic 64-bit identity of a model for persistent cache keys: the
/// canonical text serialization (topology, attributes, LUT contents) combined
/// with the actual weight/bias bytes — two graphs that would compile
/// differently never share a fingerprint.
std::uint64_t model_fingerprint(const graph::Graph& model);

class PersistentProgramCache {
 public:
  static constexpr const char* kSchema = "cimflow.progcache.v1";

  /// Everything that selects a compiled program. `arch_fingerprint` is
  /// ArchConfig::compile_fingerprint() — configs differing only in energy
  /// parameters share entries, mirroring the in-memory cache key.
  struct Key {
    std::uint64_t model_fingerprint = 0;
    std::uint64_t arch_fingerprint = 0;
    std::uint8_t strategy = 0;  ///< compiler::Strategy
    std::int64_t batch = 1;
    bool materialize_data = false;
    bool hoist_memory = true;

    bool operator==(const Key&) const = default;

    /// Stable hash (file-name component).
    std::uint64_t digest() const;
  };

  /// The cached payload: the program plus the compile metadata an
  /// EvaluationReport carries (the full MappingPlan is not persisted — only
  /// its rendered summary and strategy name, which is all evaluation needs).
  struct Entry {
    isa::Program program;
    compiler::CompileStats stats;
    std::string strategy_name;
    std::string mapping_summary;
    /// In-memory only (never persisted): the program's predecoded
    /// instruction streams, pinned here so every sweep point simulating this
    /// entry shares one decode — the instruction-side counterpart of sharing
    /// the global image. The DSE engine fills it right after the entry is
    /// compiled or loaded.
    std::shared_ptr<const sim::DecodedProgram> decoded;
  };

  /// Load/store/corruption counters, cumulative over this object's lifetime.
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;          ///< key not present on disk
    std::size_t rejected = 0;        ///< present but corrupt / wrong schema /
                                     ///< key-hash collision — treated as a miss
    std::size_t stores = 0;
    std::size_t store_failures = 0;  ///< I/O failures (logged, never fatal)
    std::size_t evictions = 0;       ///< entries removed by the size cap
    std::size_t touch_failures = 0;  ///< touch-on-load could not update the
                                     ///< mtime (read-only dir): LRU order
                                     ///< degrades toward creation order
  };

  /// Opens (creating if needed) the cache directory. Throws Error(kIoError)
  /// naming the path when the directory cannot be created or written — a bad
  /// --cache-dir fails fast instead of silently disabling persistence.
  /// `max_bytes` > 0 caps the directory: after every store, entry files are
  /// evicted oldest-last-use-first (mtime; loads touch it) until the cache
  /// fits. The just-stored entry is never evicted, even when it exceeds the
  /// cap alone.
  explicit PersistentProgramCache(std::string dir, std::int64_t max_bytes = 0);

  const std::string& dir() const noexcept { return dir_; }
  std::int64_t max_bytes() const noexcept { return max_bytes_; }

  /// Fetches the entry for `key`, or nullopt on a miss. Never throws: a
  /// corrupt or mismatched entry is counted in stats().rejected and treated
  /// as a miss (the caller recompiles and the subsequent store overwrites the
  /// bad file). Thread-safe.
  std::optional<Entry> load(const Key& key);

  /// Writes the entry atomically (temp file + rename). Returns false (and
  /// logs a warning) on I/O failure — a full disk degrades the cache, it
  /// never aborts a sweep. Thread-safe.
  bool store(const Key& key, const Entry& entry);

  Stats stats() const;

  /// The file an entry for `key` lives in (inside dir()).
  std::string entry_path(const Key& key) const;

 private:
  /// Removes oldest-last-use entry files until the directory fits the cap;
  /// `protect` (the entry just published) is never removed. Best-effort:
  /// filesystem races with other processes degrade to skipped evictions.
  void enforce_size_cap(const std::string& protect);

  /// Records that `path` was just used (stored or served). The counter is
  /// the eviction tiebreak for entries whose mtimes land on the same
  /// filesystem tick — file mtime alone would degenerate to path order on
  /// coarse-granularity filesystems, evicting the wrong entry under load
  /// (exactly the access pattern a long-lived cimflowd produces). Caller
  /// holds mu_.
  std::uint64_t record_use(const std::string& path);

  std::string dir_;
  std::int64_t max_bytes_ = 0;
  mutable std::mutex mu_;
  Stats stats_;
  /// Monotonic use order of entry files touched through THIS object; files
  /// last used by other processes fall back to mtime order among themselves.
  std::unordered_map<std::string, std::uint64_t> use_order_;
  std::uint64_t use_counter_ = 0;
};

/// In-memory memoization of compiled programs, shareable across DseEngine
/// runs (ROADMAP "cross-batch in-memory cache"). The first caller of a key
/// compiles it (outside the lock); concurrent requesters block on the shared
/// future, and a failed compile poisons its key so every point with that
/// software configuration reports the same error without recompiling. The
/// DseEngine creates a run-local memo by default; the SearchDriver hoists one
/// to search scope so cache-less adaptive sweeps stop recompiling identical
/// software configurations across propose() batches.
class ProgramMemo {
 public:
  using EntryPtr = std::shared_ptr<const PersistentProgramCache::Entry>;

  /// The compile-relevant identity of a program. `model_fingerprint` guards a
  /// memo shared across jobs (the SearchDriver hashes its model once); 0 is
  /// fine for a memo that only ever sees one model.
  struct Key {
    std::uint64_t model_fingerprint = 0;
    std::uint64_t arch_fingerprint = 0;  ///< ArchConfig::compile_fingerprint()
    std::uint8_t strategy = 0;
    std::int64_t batch = 0;
    bool materialize_data = false;
    bool hoist_memory = false;

    bool operator==(const Key&) const = default;
  };

  /// Returns the memoized entry for `key`, invoking `compile` exactly once
  /// per key across all threads. `hit` (optional) reports whether this call
  /// was served from the memo.
  EntryPtr get_or_compile(const Key& key, const std::function<EntryPtr()>& compile,
                          bool* hit = nullptr);

  /// Distinct keys memoized so far (successful and poisoned).
  std::size_t size() const;

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };

  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_future<EntryPtr>, KeyHash> entries_;
};

}  // namespace cimflow
