#include "cimflow/ir/pass.hpp"

#include <algorithm>

#include "cimflow/support/status.hpp"

namespace cimflow::ir {

void PassManager::run(Module& module, bool verify_each) const {
  for (const Pass& pass : passes_) {
    for (Func& func : module.funcs) pass.run(func);
    if (verify_each) verify(module);
  }
}

Pass canonicalize_pass() {
  return Pass{"canonicalize", [](Func& func) {
    walk(func.body, [](Op& op) {
      for (auto& [name, attr] : op.attrs) {
        if (auto* expr = std::get_if<AffineExpr>(&attr)) expr->canonicalize();
      }
    });
    // Remove zero-trip loops bottom-up.
    std::function<void(std::vector<Op>&)> prune = [&](std::vector<Op>& ops) {
      for (Op& op : ops) prune(op.body);
      std::erase_if(ops, [](const Op& op) {
        return op.is_loop() && op.i("upper") <= op.i("lower");
      });
    };
    prune(func.body);
  }};
}

namespace {

bool is_hoistable_kind(const Op& op) {
  return op.kind == "mem.fill" || op.kind == "mem.copy" || op.kind == "vec.elt" ||
         op.kind == "cim.load";
}

bool references_var(const Op& op, const std::string& var) {
  bool found = false;
  for (const auto& [name, attr] : op.attrs) {
    (void)name;
    if (const auto* expr = std::get_if<AffineExpr>(&attr)) {
      if (expr->references(var)) found = true;
    }
  }
  return found;
}

/// Buffers an op writes to (conservative, by buffer name).
std::vector<std::string> written_buffers(const Op& op) {
  std::vector<std::string> out;
  if (op.has("dst_buf")) out.push_back(op.s("dst_buf"));
  if (op.kind == "mem.fill") out.push_back(op.s("buf"));
  if (op.kind == "comm.recv") out.push_back(op.s("buf"));
  if (op.kind == "cim.mvm" && op.has("out_buf")) out.push_back(op.s("out_buf"));
  if (op.kind == "cim.load") out.push_back("@cimarray");
  return out;
}

/// Buffers an op reads from.
std::vector<std::string> read_buffers(const Op& op) {
  std::vector<std::string> out;
  if (op.has("src_buf")) out.push_back(op.s("src_buf"));
  if (op.has("a_buf")) out.push_back(op.s("a_buf"));
  if (op.has("b_buf")) out.push_back(op.s("b_buf"));
  if (op.has("in_buf")) out.push_back(op.s("in_buf"));
  if (op.kind == "comm.send") out.push_back(op.s("buf"));
  if (op.kind == "cim.mvm") out.push_back("@cimarray");
  return out;
}

/// A leading op X may be hoisted out of its loop only if no other op in the
/// body writes a buffer X reads (X's inputs are loop-invariant) and no other
/// op writes a buffer X writes (X's effect is not re-established each
/// iteration — e.g. an accumulator initialization must NOT be hoisted when
/// the body accumulates into it).
bool conflicts_with_body(const Op& candidate, const std::vector<Op>& body) {
  const std::vector<std::string> reads = read_buffers(candidate);
  const std::vector<std::string> writes = written_buffers(candidate);
  bool conflict = false;
  for (const Op& other : body) {
    if (&other == &candidate) continue;
    auto check = [&](const Op& op) {
      for (const std::string& w : written_buffers(op)) {
        for (const std::string& r : reads) {
          if (r == w) conflict = true;
        }
        for (const std::string& x : writes) {
          if (x == w) conflict = true;
        }
      }
    };
    check(other);
    walk(other.body, check);
  }
  return conflict;
}

/// Hoists invariant leading ops of each loop body into the parent region,
/// innermost-first, repeating until fixpoint within this region tree.
void hoist_in_region(std::vector<Op>& ops) {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    Op& op = ops[i];
    hoist_in_region(op.body);
    if (!op.is_loop()) continue;
    const std::string var = op.s("var");
    // Only leading ops may move: a later op could depend on buffers an
    // earlier (variant) op wrote, and reordering across writers is unsafe.
    std::vector<Op> hoisted;
    while (!op.body.empty() && is_hoistable_kind(op.body.front()) &&
           !references_var(op.body.front(), var) &&
           !conflicts_with_body(op.body.front(), op.body)) {
      hoisted.push_back(std::move(op.body.front()));
      op.body.erase(op.body.begin());
    }
    if (hoisted.empty()) continue;
    ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(i), hoisted.begin(),
               hoisted.end());
    i += hoisted.size();  // skip what we just inserted; revisit the loop op
  }
}

}  // namespace

Pass hoist_invariant_pass() {
  return Pass{"hoist-invariant", [](Func& func) { hoist_in_region(func.body); }};
}

Pass drop_empty_loops_pass() {
  return Pass{"drop-empty-loops", [](Func& func) {
    std::function<void(std::vector<Op>&)> prune = [&](std::vector<Op>& ops) {
      for (Op& op : ops) prune(op.body);
      std::erase_if(ops, [](const Op& op) { return op.is_loop() && op.body.empty(); });
    };
    prune(func.body);
  }};
}

void substitute_var(std::vector<Op>& ops, const std::string& var, std::int64_t value) {
  walk(ops, [&](Op& op) {
    for (auto& [name, attr] : op.attrs) {
      (void)name;
      if (auto* expr = std::get_if<AffineExpr>(&attr)) {
        std::int64_t coeff = 0;
        for (const auto& [v, c] : expr->terms) {
          if (v == var) coeff += c;
        }
        if (coeff != 0) {
          std::erase_if(expr->terms, [&](const auto& t) { return t.first == var; });
          expr->constant += coeff * value;
        }
      }
    }
  });
}

Pass unroll_small_loops_pass(std::int64_t max_trips) {
  return Pass{"unroll-small-loops", [max_trips](Func& func) {
    std::function<void(std::vector<Op>&)> process = [&](std::vector<Op>& ops) {
      std::vector<Op> result;
      for (Op& op : ops) {
        process(op.body);
        if (!op.is_loop()) {
          result.push_back(std::move(op));
          continue;
        }
        const std::int64_t lower = op.i("lower");
        const std::int64_t upper = op.i("upper");
        const std::int64_t step = op.i("step");
        const std::int64_t trips = (upper - lower + step - 1) / step;
        if (trips > max_trips) {
          result.push_back(std::move(op));
          continue;
        }
        const std::string var = op.s("var");
        for (std::int64_t iv = lower; iv < upper; iv += step) {
          std::vector<Op> clone = op.body;
          substitute_var(clone, var, iv);
          for (Op& c : clone) result.push_back(std::move(c));
        }
      }
      ops = std::move(result);
    };
    process(func.body);
  }};
}

}  // namespace cimflow::ir
