// A compact multi-level IR standing in for the MLIR infrastructure the paper
// builds its OP-level compiler on (see DESIGN.md "Substitutions"). Ops are
// structural records with named attributes and one nested region; loop
// induction variables appear in affine index expressions. The OP-level
// compiler builds per-core loop nests in this IR, transforms them with
// passes (tiling, MVM extraction, memory-access annotation) and finally
// lowers them to CIMFlow ISA instructions.
//
// Op kinds used by the CIMFlow pipeline (an open set — passes must tolerate
// unknown kinds):
//   loop.for        var(str) lower/upper/step(int), body = region
//   mem.fill        buf, index(affine), len(int), value(int), elem(int 1|4)
//   mem.copy        dst_buf/dst_index, src_buf/src_index, len(int)
//   mem.stride_copy dst_buf/dst_index/dst_stride, src_buf/src_index/src_stride,
//                   count(int), elem(int)
//   cim.load        mg(int), src_buf/src_index, rows(int), cols(int)
//   cim.mvm         mg(int), in_buf/in_index, out_buf/out_index, rows(int),
//                   cols(int), acc(int 0|1), macs(int)
//   vec.elt         funct(int = isa::VecFunct), dst_buf/dst_index,
//                   a_buf/a_index, [b_buf/b_index], len(int), [value(int)],
//                   [shift(int), zero(int)] for quant, [channels(int)]
//   vec.pool        avg(int), dst_buf/dst_index, src_buf/src_index, p_out(int),
//                   out_w(int), kh,kw,stride,pad,win,channels,h_in(int)
//   comm.send       buf/index, len(int), dst_core(int), tag(int)
//   comm.recv       buf/index, len(int), src_core(int), tag(int)
//   matmul.virtual  placeholder produced by virtual mapping, replaced by the
//                   tiling pass: in_buf/in_index, out_buf/out_index,
//                   rows(int), cols(int), tiles(vector<int> [mg,row0,rows,col0,cols]...)
//
// Buffer names refer to per-core local segments, except the reserved name
// "global" whose index expression is an absolute global-memory address.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace cimflow::ir {

/// Linear expression over loop variables: sum(coeff * var) + constant.
struct AffineExpr {
  std::vector<std::pair<std::string, std::int64_t>> terms;
  std::int64_t constant = 0;

  AffineExpr() = default;
  /*implicit*/ AffineExpr(std::int64_t value) : constant(value) {}

  static AffineExpr var(const std::string& name, std::int64_t coeff = 1) {
    AffineExpr e;
    if (coeff != 0) e.terms.emplace_back(name, coeff);
    return e;
  }

  AffineExpr& operator+=(const AffineExpr& other);
  AffineExpr& operator+=(std::int64_t value) {
    constant += value;
    return *this;
  }
  friend AffineExpr operator+(AffineExpr lhs, const AffineExpr& rhs) { return lhs += rhs; }
  AffineExpr scaled(std::int64_t factor) const;

  bool is_constant() const noexcept { return terms.empty(); }
  bool references(const std::string& name) const noexcept;

  /// Merges duplicate variables, drops zero coefficients, sorts terms.
  void canonicalize();

  /// Evaluates with the given variable bindings; throws on unbound variables.
  std::int64_t evaluate(const std::map<std::string, std::int64_t>& env) const;

  std::string to_string() const;
  bool operator==(const AffineExpr&) const = default;
};

using Attr = std::variant<std::int64_t, std::string, std::vector<std::int64_t>, AffineExpr>;

struct Op {
  std::string kind;
  std::map<std::string, Attr> attrs;
  std::vector<Op> body;  ///< nested region (loop bodies)

  Op() = default;
  explicit Op(std::string k) : kind(std::move(k)) {}

  bool has(const std::string& name) const { return attrs.count(name) != 0; }
  std::int64_t i(const std::string& name) const;
  std::int64_t i_or(const std::string& name, std::int64_t fallback) const;
  const std::string& s(const std::string& name) const;
  const AffineExpr& affine(const std::string& name) const;
  const std::vector<std::int64_t>& ints(const std::string& name) const;

  Op& set(const std::string& name, Attr value) {
    attrs[name] = std::move(value);
    return *this;
  }

  bool is_loop() const noexcept { return kind == "loop.for"; }
};

/// Convenience builder for loop.for ops.
Op make_for(const std::string& var, std::int64_t lower, std::int64_t upper,
            std::int64_t step = 1);

struct Func {
  std::string name;
  std::map<std::string, Attr> attrs;
  std::vector<Op> body;
};

struct Module {
  std::string name;
  std::vector<Func> funcs;
};

/// Pre-order walk over an op list (including nested regions); `fn` may
/// mutate the op in place but must not change the region structure it is
/// currently iterating.
template <typename Fn>
void walk(std::vector<Op>& ops, Fn&& fn) {
  for (Op& op : ops) {
    fn(op);
    walk(op.body, fn);
  }
}

template <typename Fn>
void walk(const std::vector<Op>& ops, Fn&& fn) {
  for (const Op& op : ops) {
    fn(op);
    walk(op.body, fn);
  }
}

/// Textual rendering (deterministic), used by pass tests and debug dumps.
std::string print(const Op& op, int indent = 0);
std::string print(const Func& func);
std::string print(const Module& module);

/// Structural verification: loop variables are unique along any path and
/// every affine attribute only references in-scope loop variables. Throws
/// Error(kInternal) with the offending op kind.
void verify(const Func& func);
void verify(const Module& module);

}  // namespace cimflow::ir
