#include "cimflow/ir/ir.hpp"

#include <algorithm>
#include <set>

#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::ir {

AffineExpr& AffineExpr::operator+=(const AffineExpr& other) {
  terms.insert(terms.end(), other.terms.begin(), other.terms.end());
  constant += other.constant;
  canonicalize();
  return *this;
}

AffineExpr AffineExpr::scaled(std::int64_t factor) const {
  AffineExpr out;
  out.constant = constant * factor;
  for (const auto& [var, coeff] : terms) {
    if (coeff * factor != 0) out.terms.emplace_back(var, coeff * factor);
  }
  return out;
}

bool AffineExpr::references(const std::string& name) const noexcept {
  return std::any_of(terms.begin(), terms.end(),
                     [&](const auto& t) { return t.first == name; });
}

void AffineExpr::canonicalize() {
  std::map<std::string, std::int64_t> merged;
  for (const auto& [var, coeff] : terms) merged[var] += coeff;
  terms.clear();
  for (const auto& [var, coeff] : merged) {
    if (coeff != 0) terms.emplace_back(var, coeff);
  }
}

std::int64_t AffineExpr::evaluate(const std::map<std::string, std::int64_t>& env) const {
  std::int64_t value = constant;
  for (const auto& [var, coeff] : terms) {
    auto it = env.find(var);
    if (it == env.end()) {
      raise(ErrorCode::kInternal, "AffineExpr::evaluate: unbound variable " + var);
    }
    value += coeff * it->second;
  }
  return value;
}

std::string AffineExpr::to_string() const {
  std::string out;
  for (const auto& [var, coeff] : terms) {
    if (!out.empty()) out += " + ";
    if (coeff == 1) {
      out += var;
    } else {
      out += strprintf("%lld*%s", (long long)coeff, var.c_str());
    }
  }
  if (constant != 0 || out.empty()) {
    if (!out.empty()) out += " + ";
    out += strprintf("%lld", (long long)constant);
  }
  return out;
}

std::int64_t Op::i(const std::string& name) const {
  auto it = attrs.find(name);
  if (it == attrs.end()) {
    raise(ErrorCode::kInternal, "op '" + kind + "' missing int attr '" + name + "'");
  }
  if (const auto* value = std::get_if<std::int64_t>(&it->second)) return *value;
  if (const auto* expr = std::get_if<AffineExpr>(&it->second);
      expr != nullptr && expr->is_constant()) {
    return expr->constant;
  }
  raise(ErrorCode::kInternal, "op '" + kind + "' attr '" + name + "' is not an int");
}

std::int64_t Op::i_or(const std::string& name, std::int64_t fallback) const {
  return has(name) ? i(name) : fallback;
}

const std::string& Op::s(const std::string& name) const {
  auto it = attrs.find(name);
  if (it == attrs.end() || !std::holds_alternative<std::string>(it->second)) {
    raise(ErrorCode::kInternal, "op '" + kind + "' missing string attr '" + name + "'");
  }
  return std::get<std::string>(it->second);
}

const AffineExpr& Op::affine(const std::string& name) const {
  auto it = attrs.find(name);
  if (it == attrs.end() || !std::holds_alternative<AffineExpr>(it->second)) {
    raise(ErrorCode::kInternal, "op '" + kind + "' missing affine attr '" + name + "'");
  }
  return std::get<AffineExpr>(it->second);
}

const std::vector<std::int64_t>& Op::ints(const std::string& name) const {
  auto it = attrs.find(name);
  if (it == attrs.end() || !std::holds_alternative<std::vector<std::int64_t>>(it->second)) {
    raise(ErrorCode::kInternal, "op '" + kind + "' missing int-list attr '" + name + "'");
  }
  return std::get<std::vector<std::int64_t>>(it->second);
}

Op make_for(const std::string& var, std::int64_t lower, std::int64_t upper,
            std::int64_t step) {
  CIMFLOW_CHECK(step > 0, "loop step must be positive");
  Op op("loop.for");
  op.set("var", var).set("lower", lower).set("upper", upper).set("step", step);
  return op;
}

namespace {

std::string attr_to_string(const Attr& attr) {
  if (const auto* value = std::get_if<std::int64_t>(&attr)) {
    return strprintf("%lld", (long long)*value);
  }
  if (const auto* text = std::get_if<std::string>(&attr)) return "\"" + *text + "\"";
  if (const auto* list = std::get_if<std::vector<std::int64_t>>(&attr)) {
    std::string out = "[";
    for (std::size_t i = 0; i < list->size(); ++i) {
      if (i != 0) out += ",";
      out += strprintf("%lld", (long long)(*list)[i]);
    }
    return out + "]";
  }
  return "(" + std::get<AffineExpr>(attr).to_string() + ")";
}

}  // namespace

std::string print(const Op& op, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out = pad + op.kind;
  if (op.is_loop()) {
    out += strprintf(" %%%s [%lld, %lld)", op.s("var").c_str(), (long long)op.i("lower"),
                     (long long)op.i("upper"));
    if (op.i("step") != 1) out += strprintf(" step %lld", (long long)op.i("step"));
  } else if (!op.attrs.empty()) {
    out += " {";
    bool first = true;
    for (const auto& [name, attr] : op.attrs) {
      if (!first) out += ", ";
      out += name + "=" + attr_to_string(attr);
      first = false;
    }
    out += "}";
  }
  if (op.body.empty()) return out + "\n";
  out += " {\n";
  for (const Op& child : op.body) out += print(child, indent + 1);
  out += pad + "}\n";
  return out;
}

std::string print(const Func& func) {
  std::string out = "func @" + func.name + " {\n";
  for (const Op& op : func.body) out += print(op, 1);
  out += "}\n";
  return out;
}

std::string print(const Module& module) {
  std::string out = "module @" + module.name + " {\n";
  for (const Func& func : module.funcs) out += print(func);
  out += "}\n";
  return out;
}

namespace {

void verify_ops(const std::vector<Op>& ops, std::set<std::string>& scope) {
  for (const Op& op : ops) {
    for (const auto& [name, attr] : op.attrs) {
      if (const auto* expr = std::get_if<AffineExpr>(&attr)) {
        for (const auto& [var, coeff] : expr->terms) {
          (void)coeff;
          if (scope.count(var) == 0) {
            raise(ErrorCode::kInternal, "op '" + op.kind + "' attr '" + name +
                                            "' references out-of-scope var '" + var + "'");
          }
        }
      }
    }
    if (op.is_loop()) {
      const std::string& var = op.s("var");
      if (scope.count(var) != 0) {
        raise(ErrorCode::kInternal, "loop variable shadowing: " + var);
      }
      if (op.i("upper") < op.i("lower")) {
        raise(ErrorCode::kInternal, "loop with negative trip range: " + var);
      }
      scope.insert(var);
      verify_ops(op.body, scope);
      scope.erase(var);
    } else if (!op.body.empty()) {
      verify_ops(op.body, scope);
    }
  }
}

}  // namespace

void verify(const Func& func) {
  std::set<std::string> scope;
  verify_ops(func.body, scope);
}

void verify(const Module& module) {
  for (const Func& func : module.funcs) verify(func);
}

}  // namespace cimflow::ir
