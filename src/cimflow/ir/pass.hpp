// Pass infrastructure: named IR-to-IR transforms composed by a PassManager,
// mirroring the pass-pipeline structure of the MLIR-based compiler in the
// paper. Generic structural passes live here; CIM-specific passes (tiling,
// MVM extraction) live in the compiler library.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cimflow/ir/ir.hpp"

namespace cimflow::ir {

/// A pass transforms one function in place.
struct Pass {
  std::string name;
  std::function<void(Func&)> run;
};

class PassManager {
 public:
  PassManager& add(Pass pass) {
    passes_.push_back(std::move(pass));
    return *this;
  }

  /// Runs all passes over every function; verifies after each pass when
  /// `verify_each` is set (the default — catches pass bugs at the source).
  void run(Module& module, bool verify_each = true) const;

  const std::vector<Pass>& passes() const noexcept { return passes_; }

 private:
  std::vector<Pass> passes_;
};

// --- Generic built-in passes -------------------------------------------------

/// Canonicalizes every affine attribute (merges terms, drops zeros) and
/// removes zero-trip loops.
Pass canonicalize_pass();

/// Loop-invariant code motion for side-effect-free-to-repeat memory ops:
/// hoists mem.fill / mem.copy / vec.elt ops whose affine operands do not
/// reference the enclosing loop variable out of that loop. This implements
/// the "memory access operations are strategically annotated at appropriate
/// loop levels" optimization of the paper's OP-level flow.
Pass hoist_invariant_pass();

/// Removes loops with empty bodies (after other passes have emptied them).
Pass drop_empty_loops_pass();

/// Unrolls loops whose trip count is <= `max_trips` by cloning the body and
/// substituting the induction variable (used for tiny boundary loops).
Pass unroll_small_loops_pass(std::int64_t max_trips = 2);

/// Substitutes a variable with a constant in all affine attrs of `ops`.
void substitute_var(std::vector<Op>& ops, const std::string& var, std::int64_t value);

}  // namespace cimflow::ir
