#include "cimflow/service/router.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "cimflow/arch/arch_config.hpp"
#include "cimflow/core/flow.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/search/driver.hpp"
#include "cimflow/search/strategy.hpp"

namespace cimflow::service {
namespace {

// Typed param accessors that name the offending key — a daemon client gets
// the same quality of error a CLI user gets from the strict flag parsers.
std::int64_t int_param(const Json& params, const std::string& key,
                       std::int64_t fallback) {
  if (!params.contains(key)) return fallback;
  const Json& value = params.at(key);
  if (!value.is_number()) {
    raise(ErrorCode::kInvalidArgument, "param \"" + key + "\" must be a number");
  }
  return value.as_int();
}

bool bool_param(const Json& params, const std::string& key, bool fallback) {
  if (!params.contains(key)) return fallback;
  const Json& value = params.at(key);
  if (!value.is_bool()) {
    raise(ErrorCode::kInvalidArgument, "param \"" + key + "\" must be a boolean");
  }
  return value.as_bool();
}

std::string string_param(const Json& params, const std::string& key,
                         const std::string& fallback) {
  if (!params.contains(key)) return fallback;
  const Json& value = params.at(key);
  if (!value.is_string()) {
    raise(ErrorCode::kInvalidArgument, "param \"" + key + "\" must be a string");
  }
  return value.as_string();
}

std::vector<std::int64_t> int_list_param(const Json& params, const std::string& key,
                                         std::vector<std::int64_t> fallback) {
  if (!params.contains(key)) return fallback;
  const Json& value = params.at(key);
  if (!value.is_array()) {
    raise(ErrorCode::kInvalidArgument,
          "param \"" + key + "\" must be an array of numbers");
  }
  std::vector<std::int64_t> out;
  out.reserve(value.as_array().size());
  for (const Json& item : value.as_array()) {
    if (!item.is_number()) {
      raise(ErrorCode::kInvalidArgument,
            "param \"" + key + "\" must be an array of numbers");
    }
    out.push_back(item.as_int());
  }
  return out;
}

std::vector<std::string> string_list_param(const Json& params, const std::string& key,
                                           std::vector<std::string> fallback) {
  if (!params.contains(key)) return fallback;
  const Json& value = params.at(key);
  if (!value.is_array()) {
    raise(ErrorCode::kInvalidArgument,
          "param \"" + key + "\" must be an array of strings");
  }
  std::vector<std::string> out;
  out.reserve(value.as_array().size());
  for (const Json& item : value.as_array()) {
    if (!item.is_string()) {
      raise(ErrorCode::kInvalidArgument,
            "param \"" + key + "\" must be an array of strings");
    }
    out.push_back(item.as_string());
  }
  return out;
}

arch::ArchConfig arch_param(const Json& params) {
  if (!params.contains("arch")) return arch::ArchConfig::cimflow_default();
  const Json& value = params.at("arch");
  if (!value.is_object()) {
    raise(ErrorCode::kInvalidArgument,
          "param \"arch\" must be an architecture-config object");
  }
  return arch::ArchConfig::from_json(value);
}

Json decoded_stats_json() {
  const sim::DecodedCacheStats stats = sim::decoded_cache_stats();
  JsonObject o;
  o["lookups"] = Json(static_cast<std::int64_t>(stats.lookups));
  o["hits"] = Json(static_cast<std::int64_t>(stats.hits));
  o["builds"] = Json(static_cast<std::int64_t>(stats.builds));
  o["live"] = Json(static_cast<std::int64_t>(stats.live));
  o["strong_entries"] = Json(static_cast<std::int64_t>(stats.strong_entries));
  o["strong_evictions"] = Json(static_cast<std::int64_t>(stats.strong_evictions));
  o["strong_capacity"] = Json(static_cast<std::int64_t>(stats.strong_capacity));
  return Json(std::move(o));
}

}  // namespace

Router::Router(RouterOptions options) : options_(std::move(options)) {
  if (!options_.cache_dir.empty()) {
    persistent_.emplace(options_.cache_dir, options_.cache_max_bytes);
  }
  eval_.memo = &memo_;
  eval_.persistent_cache = persistent_ ? &*persistent_ : nullptr;
  eval_.decode_lru = options_.decode_lru;
  eval_.install_decode_cache();
}

void Router::record_scheduler(std::int64_t events_dispatched,
                              std::int64_t max_queue_depth,
                              std::int64_t idle_cycles_skipped) {
  std::lock_guard<std::mutex> lock(mu_);
  ++scheduler_.reports;
  scheduler_.events_dispatched += events_dispatched;
  scheduler_.max_queue_depth = std::max(scheduler_.max_queue_depth, max_queue_depth);
  scheduler_.idle_cycles_skipped += idle_cycles_skipped;
}

Router::ModelEntry Router::model(const std::string& name, std::int64_t input_hw) {
  const std::string key = name + "#" + std::to_string(input_hw);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(key);
  if (it == models_.end()) {
    models::ModelOptions options;
    options.input_hw = input_hw;
    ModelEntry entry;
    entry.graph =
        std::make_shared<const graph::Graph>(models::build_model(name, options));
    entry.fingerprint = model_fingerprint(*entry.graph);
    it = models_.emplace(key, std::move(entry)).first;
  }
  return it->second;
}

Json Router::handle_evaluate(const Json& params, const ProgressFn& progress) {
  const ModelEntry entry =
      model(string_param(params, "model", "micro"), int_param(params, "input_hw", 224));
  Flow flow(arch_param(params));
  FlowOptions options;
  options.strategy =
      compiler::strategy_from_string(string_param(params, "strategy", "dp"));
  options.batch = int_param(params, "batch", 8);
  options.functional = bool_param(params, "functional", false);
  options.validate = bool_param(params, "validate", false);
  options.input_seed =
      static_cast<std::uint64_t>(int_param(params, "seed", 7));
  options.eval = eval_.for_model(entry.fingerprint);
  options.eval.sim_threads = int_param(params, "sim_threads", 1);

  if (progress) progress(0, 1);
  const EvaluationReport report = flow.evaluate(*entry.graph, options);
  if (progress) progress(1, 1);
  record_scheduler(report.sim.scheduler.events_dispatched,
                   report.sim.scheduler.max_queue_depth,
                   report.sim.scheduler.idle_cycles_skipped);

  JsonObject cache;
  cache["compile_memo_hit"] = Json(report.compile_cache_hit);
  cache["persistent_hit"] = Json(report.persistent_cache_hit);
  JsonObject body;
  body["payload"] = report.to_json();  // exact `evaluate --json` document
  body["cache"] = Json(std::move(cache));
  return Json(std::move(body));
}

Json Router::handle_search(const Json& params, const ProgressFn& progress,
                           const std::string& default_strategy) {
  const ModelEntry entry =
      model(string_param(params, "model", "micro"), int_param(params, "input_hw", 224));
  const arch::ArchConfig base = arch_param(params);

  search::SearchJob job;
  job.space.mg_sizes = int_list_param(params, "mg", {4, 8, 12, 16});
  job.space.flit_sizes = int_list_param(params, "flit", {8, 16});
  job.space.strategies.clear();
  for (const std::string& name :
       string_list_param(params, "strategies", {"generic", "dp"})) {
    job.space.strategies.push_back(compiler::strategy_from_string(name));
  }
  job.batch = int_param(params, "batch", 4);
  job.functional = bool_param(params, "functional", false);
  job.seed = static_cast<std::uint64_t>(int_param(params, "seed", 7));
  const std::int64_t budget = int_param(params, "budget", 0);
  if (budget < 0) {
    raise(ErrorCode::kInvalidArgument,
          "param \"budget\" must be >= 0 (0 = the whole space)");
  }
  job.budget = static_cast<std::size_t>(budget);
  job.objectives.clear();
  for (const std::string& name :
       string_list_param(params, "objectives", {"latency", "energy"})) {
    job.objectives.push_back(search::objective_from_string(name));
  }
  if (progress) job.progress = progress;

  search::SearchDriver::Options dopt;
  dopt.engine.num_threads =
      static_cast<std::size_t>(int_param(params, "threads", 0));
  // The daemon-scoped warm layers replace the driver's run-local ones: the
  // memo and the persistent cache inside eval_ survive this request.
  dopt.engine.eval = eval_.for_model(entry.fingerprint);
  dopt.engine.eval.sim_threads = int_param(params, "sim_threads", 1);
  const std::unique_ptr<search::SearchStrategy> strategy =
      search::make_strategy(string_param(params, "search_strategy", default_strategy));
  const search::SearchResult result =
      search::SearchDriver(dopt).run(*entry.graph, base, *strategy, job);
  for (const DsePoint& point : result.points) {
    if (!point.ok) continue;
    record_scheduler(point.report.sim.scheduler.events_dispatched,
                     point.report.sim.scheduler.max_queue_depth,
                     point.report.sim.scheduler.idle_cycles_skipped);
  }

  JsonObject cache;
  cache["compile_memo_hits"] =
      Json(static_cast<std::int64_t>(result.stats.compile_cache_hits));
  cache["compile_memo_misses"] =
      Json(static_cast<std::int64_t>(result.stats.compile_cache_misses));
  cache["persistent_hits"] =
      Json(static_cast<std::int64_t>(result.stats.persistent_cache_hits));
  cache["persistent_stores"] =
      Json(static_cast<std::int64_t>(result.stats.persistent_cache_stores));
  JsonObject body;
  body["payload"] = result.to_json(false);  // exact `sweep --json` document
  body["cache"] = Json(std::move(cache));
  return Json(std::move(body));
}

Json Router::handle(const Request& request, const ProgressFn& progress) {
  const auto t0 = std::chrono::steady_clock::now();
  auto record = [&](bool failed) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    std::lock_guard<std::mutex> lock(mu_);
    VerbStats& stats = verbs_[request.verb];
    ++stats.requests;
    if (failed) ++stats.failures;
    stats.wall_ms_total += wall_ms;
    stats.wall_ms_last = wall_ms;
  };
  try {
    Json body{JsonObject{}};
    if (request.verb == "evaluate") {
      body = handle_evaluate(request.params, progress);
    } else if (request.verb == "sweep") {
      body = handle_search(request.params, progress, "grid");
    } else if (request.verb == "search") {
      body = handle_search(request.params, progress, "pareto");
    } else {
      raise(ErrorCode::kInvalidArgument,
            "unknown verb \"" + request.verb +
                "\" (expected evaluate, sweep, search, stats, or shutdown)");
    }
    record(false);
    return body;
  } catch (...) {
    record(true);
    throw;
  }
}

Json Router::stats_json() const {
  JsonObject verbs;
  std::size_t model_count = 0;
  SchedulerTotals sched;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [verb, stats] : verbs_) {
      JsonObject v;
      v["requests"] = Json(static_cast<std::int64_t>(stats.requests));
      v["failures"] = Json(static_cast<std::int64_t>(stats.failures));
      v["wall_ms_total"] = Json(stats.wall_ms_total);
      v["wall_ms_last"] = Json(stats.wall_ms_last);
      verbs[verb] = Json(std::move(v));
    }
    model_count = models_.size();
    sched = scheduler_;
  }
  JsonObject o;
  o["verbs"] = Json(std::move(verbs));
  o["models_cached"] = Json(static_cast<std::int64_t>(model_count));
  o["memo_entries"] = Json(static_cast<std::int64_t>(memo_.size()));
  o["decode_cache"] = decoded_stats_json();
  JsonObject scheduler;
  scheduler["reports"] = Json(sched.reports);
  scheduler["events_dispatched"] = Json(sched.events_dispatched);
  scheduler["max_queue_depth"] = Json(sched.max_queue_depth);
  scheduler["idle_cycles_skipped"] = Json(sched.idle_cycles_skipped);
  o["scheduler"] = Json(std::move(scheduler));
  if (persistent_) {
    const PersistentProgramCache::Stats stats = persistent_->stats();
    JsonObject p;
    p["dir"] = Json(persistent_->dir());
    p["hits"] = Json(static_cast<std::int64_t>(stats.hits));
    p["misses"] = Json(static_cast<std::int64_t>(stats.misses));
    p["rejected"] = Json(static_cast<std::int64_t>(stats.rejected));
    p["stores"] = Json(static_cast<std::int64_t>(stats.stores));
    p["store_failures"] = Json(static_cast<std::int64_t>(stats.store_failures));
    p["evictions"] = Json(static_cast<std::int64_t>(stats.evictions));
    p["touch_failures"] = Json(static_cast<std::int64_t>(stats.touch_failures));
    o["persistent_cache"] = Json(std::move(p));
  } else {
    o["persistent_cache"] = Json();
  }
  return Json(std::move(o));
}

}  // namespace cimflow::service
