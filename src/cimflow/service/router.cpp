#include "cimflow/service/router.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "cimflow/arch/arch_config.hpp"
#include "cimflow/core/flow.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/search/driver.hpp"
#include "cimflow/search/strategy.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::service {
namespace {

// Typed param accessors that name the offending key — a daemon client gets
// the same quality of error a CLI user gets from the strict flag parsers.
std::int64_t int_param(const Json& params, const std::string& key,
                       std::int64_t fallback) {
  if (!params.contains(key)) return fallback;
  const Json& value = params.at(key);
  if (!value.is_number()) {
    raise(ErrorCode::kInvalidArgument, "param \"" + key + "\" must be a number");
  }
  return value.as_int();
}

bool bool_param(const Json& params, const std::string& key, bool fallback) {
  if (!params.contains(key)) return fallback;
  const Json& value = params.at(key);
  if (!value.is_bool()) {
    raise(ErrorCode::kInvalidArgument, "param \"" + key + "\" must be a boolean");
  }
  return value.as_bool();
}

std::string string_param(const Json& params, const std::string& key,
                         const std::string& fallback) {
  if (!params.contains(key)) return fallback;
  const Json& value = params.at(key);
  if (!value.is_string()) {
    raise(ErrorCode::kInvalidArgument, "param \"" + key + "\" must be a string");
  }
  return value.as_string();
}

std::vector<std::int64_t> int_list_param(const Json& params, const std::string& key,
                                         std::vector<std::int64_t> fallback) {
  if (!params.contains(key)) return fallback;
  const Json& value = params.at(key);
  if (!value.is_array()) {
    raise(ErrorCode::kInvalidArgument,
          "param \"" + key + "\" must be an array of numbers");
  }
  std::vector<std::int64_t> out;
  out.reserve(value.as_array().size());
  for (const Json& item : value.as_array()) {
    if (!item.is_number()) {
      raise(ErrorCode::kInvalidArgument,
            "param \"" + key + "\" must be an array of numbers");
    }
    out.push_back(item.as_int());
  }
  return out;
}

std::vector<std::string> string_list_param(const Json& params, const std::string& key,
                                           std::vector<std::string> fallback) {
  if (!params.contains(key)) return fallback;
  const Json& value = params.at(key);
  if (!value.is_array()) {
    raise(ErrorCode::kInvalidArgument,
          "param \"" + key + "\" must be an array of strings");
  }
  std::vector<std::string> out;
  out.reserve(value.as_array().size());
  for (const Json& item : value.as_array()) {
    if (!item.is_string()) {
      raise(ErrorCode::kInvalidArgument,
            "param \"" + key + "\" must be an array of strings");
    }
    out.push_back(item.as_string());
  }
  return out;
}

arch::ArchConfig arch_param(const Json& params) {
  if (!params.contains("arch")) return arch::ArchConfig::cimflow_default();
  const Json& value = params.at("arch");
  if (!value.is_object()) {
    raise(ErrorCode::kInvalidArgument,
          "param \"arch\" must be an architecture-config object");
  }
  return arch::ArchConfig::from_json(value);
}

Json decoded_stats_json() {
  const sim::DecodedCacheStats stats = sim::decoded_cache_stats();
  JsonObject o;
  o["lookups"] = Json(static_cast<std::int64_t>(stats.lookups));
  o["hits"] = Json(static_cast<std::int64_t>(stats.hits));
  o["builds"] = Json(static_cast<std::int64_t>(stats.builds));
  o["live"] = Json(static_cast<std::int64_t>(stats.live));
  o["strong_entries"] = Json(static_cast<std::int64_t>(stats.strong_entries));
  o["strong_evictions"] = Json(static_cast<std::int64_t>(stats.strong_evictions));
  o["strong_capacity"] = Json(static_cast<std::int64_t>(stats.strong_capacity));
  return Json(std::move(o));
}

}  // namespace

Router::Router(RouterOptions options) : options_(std::move(options)) {
  if (!options_.cache_dir.empty()) {
    persistent_.emplace(options_.cache_dir, options_.cache_max_bytes);
  }
  eval_.memo = &memo_;
  eval_.persistent_cache = persistent_ ? &*persistent_ : nullptr;
  eval_.decode_lru = options_.decode_lru;
  eval_.kernel_tier = options_.kernel_tier;
  // Resolve once (env override + CPUID probe) so a bad CIMFLOW_KERNELS or
  // --kernels fails daemon startup, not the first request — and so
  // stats/metrics report the concrete tier every simulator will use.
  tier_ = sim::kernels::resolve_tier(options_.kernel_tier);
  eval_.install_decode_cache();
}

void Router::record_scheduler(std::int64_t events_dispatched,
                              std::int64_t max_queue_depth,
                              std::int64_t idle_cycles_skipped) {
  std::lock_guard<std::mutex> lock(mu_);
  ++scheduler_.reports;
  scheduler_.events_dispatched += events_dispatched;
  scheduler_.max_queue_depth = std::max(scheduler_.max_queue_depth, max_queue_depth);
  scheduler_.idle_cycles_skipped += idle_cycles_skipped;
}

Router::ModelEntry Router::model(const std::string& name, std::int64_t input_hw) {
  const std::string key = name + "#" + std::to_string(input_hw);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(key);
  if (it == models_.end()) {
    models::ModelOptions options;
    options.input_hw = input_hw;
    ModelEntry entry;
    entry.graph =
        std::make_shared<const graph::Graph>(models::build_model(name, options));
    entry.fingerprint = model_fingerprint(*entry.graph);
    it = models_.emplace(key, std::move(entry)).first;
  }
  return it->second;
}

Json Router::handle_evaluate(const Json& params, const ProgressFn& progress) {
  const ModelEntry entry =
      model(string_param(params, "model", "micro"), int_param(params, "input_hw", 224));
  Flow flow(arch_param(params));
  FlowOptions options;
  options.strategy =
      compiler::strategy_from_string(string_param(params, "strategy", "dp"));
  options.batch = int_param(params, "batch", 8);
  options.functional = bool_param(params, "functional", false);
  options.validate = bool_param(params, "validate", false);
  options.input_seed =
      static_cast<std::uint64_t>(int_param(params, "seed", 7));
  options.eval = eval_.for_model(entry.fingerprint);
  options.eval.sim_threads = int_param(params, "sim_threads", 1);

  if (progress) progress(0, 1);
  const EvaluationReport report = flow.evaluate(*entry.graph, options);
  if (progress) progress(1, 1);
  record_scheduler(report.sim.scheduler.events_dispatched,
                   report.sim.scheduler.max_queue_depth,
                   report.sim.scheduler.idle_cycles_skipped);

  JsonObject cache;
  cache["compile_memo_hit"] = Json(report.compile_cache_hit);
  cache["persistent_hit"] = Json(report.persistent_cache_hit);
  JsonObject body;
  body["payload"] = report.to_json();  // exact `evaluate --json` document
  body["cache"] = Json(std::move(cache));
  return Json(std::move(body));
}

Json Router::handle_search(const Json& params, const ProgressFn& progress,
                           const std::string& default_strategy) {
  const ModelEntry entry =
      model(string_param(params, "model", "micro"), int_param(params, "input_hw", 224));
  const arch::ArchConfig base = arch_param(params);

  search::SearchJob job;
  job.space.mg_sizes = int_list_param(params, "mg", {4, 8, 12, 16});
  job.space.flit_sizes = int_list_param(params, "flit", {8, 16});
  job.space.strategies.clear();
  for (const std::string& name :
       string_list_param(params, "strategies", {"generic", "dp"})) {
    job.space.strategies.push_back(compiler::strategy_from_string(name));
  }
  job.batch = int_param(params, "batch", 4);
  job.functional = bool_param(params, "functional", false);
  job.seed = static_cast<std::uint64_t>(int_param(params, "seed", 7));
  const std::int64_t budget = int_param(params, "budget", 0);
  if (budget < 0) {
    raise(ErrorCode::kInvalidArgument,
          "param \"budget\" must be >= 0 (0 = the whole space)");
  }
  job.budget = static_cast<std::size_t>(budget);
  job.objectives.clear();
  for (const std::string& name :
       string_list_param(params, "objectives", {"latency", "energy"})) {
    job.objectives.push_back(search::objective_from_string(name));
  }
  if (progress) job.progress = progress;

  search::SearchDriver::Options dopt;
  dopt.engine.num_threads =
      static_cast<std::size_t>(int_param(params, "threads", 0));
  // The daemon-scoped warm layers replace the driver's run-local ones: the
  // memo and the persistent cache inside eval_ survive this request.
  dopt.engine.eval = eval_.for_model(entry.fingerprint);
  dopt.engine.eval.sim_threads = int_param(params, "sim_threads", 1);
  const std::unique_ptr<search::SearchStrategy> strategy =
      search::make_strategy(string_param(params, "search_strategy", default_strategy));
  const search::SearchResult result =
      search::SearchDriver(dopt).run(*entry.graph, base, *strategy, job);
  for (const DsePoint& point : result.points) {
    if (!point.ok) continue;
    record_scheduler(point.report.sim.scheduler.events_dispatched,
                     point.report.sim.scheduler.max_queue_depth,
                     point.report.sim.scheduler.idle_cycles_skipped);
  }

  JsonObject cache;
  cache["compile_memo_hits"] =
      Json(static_cast<std::int64_t>(result.stats.compile_cache_hits));
  cache["compile_memo_misses"] =
      Json(static_cast<std::int64_t>(result.stats.compile_cache_misses));
  cache["persistent_hits"] =
      Json(static_cast<std::int64_t>(result.stats.persistent_cache_hits));
  cache["persistent_stores"] =
      Json(static_cast<std::int64_t>(result.stats.persistent_cache_stores));
  JsonObject body;
  body["payload"] = result.to_json(false);  // exact `sweep --json` document
  body["cache"] = Json(std::move(cache));
  return Json(std::move(body));
}

Json Router::handle(const Request& request, const ProgressFn& progress) {
  const auto t0 = std::chrono::steady_clock::now();
  auto record = [&](bool failed) {
    // Integer nanoseconds end to end: a double-milliseconds accumulator
    // rounded warm-cache requests (tens of microseconds) down to noise.
    const std::int64_t wall_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    std::lock_guard<std::mutex> lock(mu_);
    VerbStats& stats = verbs_[request.verb];
    ++stats.requests;
    if (failed) ++stats.failures;
    stats.wall_ns_total += wall_ns;
    stats.wall_ns_last = wall_ns;
    stats.latency.record_ns(wall_ns);
  };
  try {
    Json body{JsonObject{}};
    if (request.verb == "evaluate") {
      body = handle_evaluate(request.params, progress);
    } else if (request.verb == "sweep") {
      body = handle_search(request.params, progress, "grid");
    } else if (request.verb == "search") {
      body = handle_search(request.params, progress, "pareto");
    } else {
      raise(ErrorCode::kInvalidArgument,
            "unknown verb \"" + request.verb +
                "\" (expected evaluate, sweep, search, stats, metrics, or shutdown)");
    }
    record(false);
    return body;
  } catch (...) {
    record(true);
    throw;
  }
}

Json Router::stats_json() const {
  JsonObject verbs;
  std::size_t model_count = 0;
  SchedulerTotals sched;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [verb, stats] : verbs_) {
      JsonObject v;
      v["requests"] = Json(static_cast<std::int64_t>(stats.requests));
      v["failures"] = Json(static_cast<std::int64_t>(stats.failures));
      v["wall_seconds_total"] = Json(static_cast<double>(stats.wall_ns_total) * 1e-9);
      v["wall_seconds_last"] = Json(static_cast<double>(stats.wall_ns_last) * 1e-9);
      v["latency_p50_seconds"] = Json(stats.latency.percentile_seconds(0.50));
      v["latency_p90_seconds"] = Json(stats.latency.percentile_seconds(0.90));
      v["latency_p99_seconds"] = Json(stats.latency.percentile_seconds(0.99));
      verbs[verb] = Json(std::move(v));
    }
    model_count = models_.size();
    sched = scheduler_;
  }
  JsonObject o;
  o["verbs"] = Json(std::move(verbs));
  o["models_cached"] = Json(static_cast<std::int64_t>(model_count));
  o["memo_entries"] = Json(static_cast<std::int64_t>(memo_.size()));
  o["kernel_tier"] = Json(std::string(sim::kernels::to_string(tier_)));
  o["decode_cache"] = decoded_stats_json();
  JsonObject scheduler;
  scheduler["reports"] = Json(sched.reports);
  scheduler["events_dispatched"] = Json(sched.events_dispatched);
  scheduler["max_queue_depth"] = Json(sched.max_queue_depth);
  scheduler["idle_cycles_skipped"] = Json(sched.idle_cycles_skipped);
  o["scheduler"] = Json(std::move(scheduler));
  if (persistent_) {
    const PersistentProgramCache::Stats stats = persistent_->stats();
    JsonObject p;
    p["dir"] = Json(persistent_->dir());
    p["hits"] = Json(static_cast<std::int64_t>(stats.hits));
    p["misses"] = Json(static_cast<std::int64_t>(stats.misses));
    p["rejected"] = Json(static_cast<std::int64_t>(stats.rejected));
    p["stores"] = Json(static_cast<std::int64_t>(stats.stores));
    p["store_failures"] = Json(static_cast<std::int64_t>(stats.store_failures));
    p["evictions"] = Json(static_cast<std::int64_t>(stats.evictions));
    p["touch_failures"] = Json(static_cast<std::int64_t>(stats.touch_failures));
    o["persistent_cache"] = Json(std::move(p));
  } else {
    o["persistent_cache"] = Json();
  }
  return Json(std::move(o));
}

std::string Router::metrics_text(std::size_t queue_depth, std::size_t inflight) const {
  std::string out;
  out.reserve(4096);
  auto line = [&out](const std::string& text) {
    out += text;
    out += '\n';
  };
  line("# HELP cimflowd_queue_depth Requests waiting in the daemon queue.");
  line("# TYPE cimflowd_queue_depth gauge");
  line(strprintf("cimflowd_queue_depth %zu", queue_depth));
  line("# HELP cimflowd_inflight_requests Requests currently being handled.");
  line("# TYPE cimflowd_inflight_requests gauge");
  line(strprintf("cimflowd_inflight_requests %zu", inflight));

  std::map<std::string, VerbStats> verbs;
  SchedulerTotals sched;
  std::size_t model_count = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    verbs = verbs_;
    sched = scheduler_;
    model_count = models_.size();
  }

  line("# HELP cimflowd_requests_total Requests handled, by verb.");
  line("# TYPE cimflowd_requests_total counter");
  for (const auto& [verb, stats] : verbs) {
    line(strprintf("cimflowd_requests_total{verb=\"%s\"} %zu", verb.c_str(),
                   stats.requests));
  }
  line("# HELP cimflowd_request_failures_total Failed requests, by verb.");
  line("# TYPE cimflowd_request_failures_total counter");
  for (const auto& [verb, stats] : verbs) {
    line(strprintf("cimflowd_request_failures_total{verb=\"%s\"} %zu", verb.c_str(),
                   stats.failures));
  }
  line("# HELP cimflowd_request_seconds Request wall-clock latency, by verb.");
  line("# TYPE cimflowd_request_seconds histogram");
  for (const auto& [verb, stats] : verbs) {
    std::int64_t cumulative = 0;
    for (int i = 0; i < trace::LatencyHistogram::kFiniteBuckets; ++i) {
      cumulative += stats.latency.bucket_count(i);
      line(strprintf("cimflowd_request_seconds_bucket{verb=\"%s\",le=\"%.9g\"} %lld",
                     verb.c_str(), trace::LatencyHistogram::bucket_upper_seconds(i),
                     static_cast<long long>(cumulative)));
    }
    line(strprintf("cimflowd_request_seconds_bucket{verb=\"%s\",le=\"+Inf\"} %lld",
                   verb.c_str(), static_cast<long long>(stats.latency.count())));
    line(strprintf("cimflowd_request_seconds_sum{verb=\"%s\"} %.9g", verb.c_str(),
                   stats.latency.sum_seconds()));
    line(strprintf("cimflowd_request_seconds_count{verb=\"%s\"} %lld", verb.c_str(),
                   static_cast<long long>(stats.latency.count())));
  }

  line("# HELP cimflowd_kernel_tier The SIMD kernel tier every simulator dispatches to.");
  line("# TYPE cimflowd_kernel_tier gauge");
  line(strprintf("cimflowd_kernel_tier{tier=\"%s\"} 1",
                 sim::kernels::to_string(tier_)));

  line("# HELP cimflowd_models_cached Distinct (model, input_hw) graphs cached.");
  line("# TYPE cimflowd_models_cached gauge");
  line(strprintf("cimflowd_models_cached %zu", model_count));
  line("# HELP cimflowd_compile_memo_entries Programs held by the in-memory memo.");
  line("# TYPE cimflowd_compile_memo_entries gauge");
  line(strprintf("cimflowd_compile_memo_entries %zu", memo_.size()));

  const sim::DecodedCacheStats decode = sim::decoded_cache_stats();
  line("# HELP cimflowd_decode_cache_lookups_total Decoded-program cache lookups.");
  line("# TYPE cimflowd_decode_cache_lookups_total counter");
  line(strprintf("cimflowd_decode_cache_lookups_total %zu", decode.lookups));
  line("# HELP cimflowd_decode_cache_hits_total Decoded-program cache hits.");
  line("# TYPE cimflowd_decode_cache_hits_total counter");
  line(strprintf("cimflowd_decode_cache_hits_total %zu", decode.hits));

  if (persistent_) {
    const PersistentProgramCache::Stats stats = persistent_->stats();
    line("# HELP cimflowd_persistent_cache_hits_total On-disk compile-cache hits.");
    line("# TYPE cimflowd_persistent_cache_hits_total counter");
    line(strprintf("cimflowd_persistent_cache_hits_total %zu", stats.hits));
    line("# HELP cimflowd_persistent_cache_misses_total On-disk compile-cache misses.");
    line("# TYPE cimflowd_persistent_cache_misses_total counter");
    line(strprintf("cimflowd_persistent_cache_misses_total %zu", stats.misses));
  }

  line("# HELP cimflowd_sim_events_dispatched_total Scheduler events committed "
       "across every simulated report.");
  line("# TYPE cimflowd_sim_events_dispatched_total counter");
  line(strprintf("cimflowd_sim_events_dispatched_total %lld",
                 static_cast<long long>(sched.events_dispatched)));
  line("# HELP cimflowd_sim_max_queue_depth Peak scheduler event-queue depth "
       "over every simulated report.");
  line("# TYPE cimflowd_sim_max_queue_depth gauge");
  line(strprintf("cimflowd_sim_max_queue_depth %lld",
                 static_cast<long long>(sched.max_queue_depth)));
  return out;
}

}  // namespace cimflow::service
