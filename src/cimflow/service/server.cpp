#include "cimflow/service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "cimflow/support/logging.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::service {

/// One accepted client. The fd closes when the last reference (reader thread
/// or still-running job) drops, so a worker can finish writing a result for
/// a connection whose reader already saw EOF — a client may half-close its
/// write side and still collect responses.
struct Daemon::Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  /// Serialized best-effort write of one wire line. A failed send (peer
  /// fully gone) marks the connection dead; later events for it are dropped
  /// instead of blocking a worker.
  void write_line(const std::string& bytes) {
    std::lock_guard<std::mutex> lock(mu);
    if (dead) return;
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        dead = true;
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

  int fd = -1;
  std::mutex mu;
  bool dead = false;
};

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), router_(options_.router) {
  if (options_.socket_path.empty()) {
    raise(ErrorCode::kInvalidArgument, "DaemonOptions::socket_path must be set");
  }
  if (options_.workers == 0) options_.workers = 1;
  sockaddr_un addr{};
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    raise(ErrorCode::kInvalidArgument,
          "socket path too long for AF_UNIX: " + options_.socket_path);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    raise(ErrorCode::kIoError,
          std::string("cannot create UNIX socket: ") + std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // a stale file from a dead daemon
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    raise(ErrorCode::kIoError,
          "cannot listen on " + options_.socket_path + ": " + reason);
  }
}

Daemon::~Daemon() {
  request_stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
}

void Daemon::request_stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    stop_ = true;
  }
  queue_cv_.notify_all();
  drain_cv_.notify_all();
}

void Daemon::serve() {
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back(&Daemon::worker_loop, this);
  }
  std::vector<std::weak_ptr<Connection>> open;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) break;
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout (stop recheck) or EINTR
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>(fd);
    open.push_back(conn);
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.emplace_back(&Daemon::reader_loop, this, std::move(conn));
  }
  // Every admitted job has finished (the shutdown verb drained before
  // setting stop_; request_stop leaves the drain to the exiting workers).
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Unblock readers stuck in recv on clients that never disconnect.
  for (const std::weak_ptr<Connection>& weak : open) {
    if (auto conn = weak.lock()) ::shutdown(conn->fd, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::thread& reader : conn_threads_) reader.join();
    conn_threads_.clear();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
}

void Daemon::reader_loop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  bool discarding = false;  // oversized line: drop bytes until the next '\n'
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: no more requests on this connection
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (discarding) {
        discarding = false;  // the tail of the oversized line — skip it
        continue;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handle_line(conn, line);
    }
    if (!discarding && buffer.size() > options_.max_request_bytes) {
      conn->write_line(wire_line(error_event(
          0, ErrorCode::kInvalidArgument,
          strprintf("request line exceeds %zu bytes", options_.max_request_bytes))));
      buffer.clear();
      discarding = true;
    }
  }
}

void Daemon::handle_line(const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const Error& e) {
    // No usable id yet — the error echoes id 0.
    conn->write_line(wire_line(error_event(0, e.code(), e.what())));
    return;
  }

  if (request.verb == "stats") {
    JsonObject body;
    body["payload"] = stats_json();
    conn->write_line(wire_line(result_event(request.id, Json(std::move(body)))));
    return;
  }
  if (request.verb == "metrics") {
    // Prometheus text exposition. Answered inline like stats — a scrape must
    // not queue behind a long evaluate. The payload is a plain string; the
    // client prints string payloads verbatim so `cimflow_cli client metrics`
    // is directly scrape-shaped.
    std::size_t queue_depth = 0;
    std::size_t inflight = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_depth = queue_.size();
      inflight = active_jobs_;
    }
    JsonObject body;
    body["payload"] = Json(router_.metrics_text(queue_depth, inflight));
    conn->write_line(wire_line(result_event(request.id, Json(std::move(body)))));
    return;
  }
  if (request.verb == "shutdown") {
    {
      std::lock_guard<std::mutex> lock(mu_);
      draining_ = true;  // admission closes; queued + running work drains
    }
    wait_drained();
    JsonObject payload;
    payload["stopped"] = Json(true);
    JsonObject body;
    body["payload"] = Json(std::move(payload));
    conn->write_line(wire_line(result_event(request.id, Json(std::move(body)))));
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    queue_cv_.notify_all();
    return;
  }

  // Compute verb: admit or reject under the queue bound. The error is
  // written outside the lock — sends must never serialize admission.
  enum class Reject { kNone, kDraining, kFull };
  Reject reject = Reject::kNone;
  std::size_t pending = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ || stop_) {
      reject = Reject::kDraining;
      ++rejected_draining_;
    } else if (queue_.size() >= options_.max_queue) {
      reject = Reject::kFull;
      pending = queue_.size();
      ++rejected_queue_full_;
    } else {
      queue_.push_back(Job{conn, std::move(request)});
      ++accepted_;
    }
  }
  if (reject == Reject::kNone) {
    queue_cv_.notify_one();
  } else if (reject == Reject::kDraining) {
    conn->write_line(wire_line(
        error_event(request.id, ErrorCode::kCapacityExceeded,
                    "daemon is draining for shutdown; request rejected")));
  } else {
    conn->write_line(wire_line(error_event(
        request.id, ErrorCode::kCapacityExceeded,
        strprintf("admission queue is full (%zu pending); retry later", pending))));
  }
}

void Daemon::worker_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_jobs_;
    }
    run_job(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_jobs_;
    }
    drain_cv_.notify_all();
  }
}

void Daemon::run_job(const Job& job) {
  const std::shared_ptr<Connection> conn = job.conn;
  const std::int64_t id = job.request.id;
  const ProgressFn progress = [conn, id](std::size_t completed, std::size_t total) {
    conn->write_line(wire_line(progress_event(id, completed, total)));
  };
  bool ok = false;
  Json event;
  try {
    const Json body = options_.handler ? options_.handler(job.request, progress)
                                       : router_.handle(job.request, progress);
    event = result_event(id, body);
    ok = true;
  } catch (const Error& e) {
    event = error_event(id, e.code(), e.what());
  } catch (const std::exception& e) {
    // Systemic (bad_alloc, logic errors): report and keep serving — one bad
    // request must not take the daemon down.
    CIMFLOW_WARN() << "request " << id << " (" << job.request.verb
                   << ") failed unexpectedly: " << e.what();
    event = error_event(id, ErrorCode::kInternal, e.what());
  }
  // Count before writing the terminal event: a client that reads its result
  // and immediately asks for `stats` must see this request reflected in the
  // completed/failed counters.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ok) {
      ++completed_;
    } else {
      ++failed_;
    }
  }
  conn->write_line(wire_line(event));
}

void Daemon::wait_drained() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return queue_.empty() && active_jobs_ == 0; });
}

Json Daemon::stats_json() const {
  JsonObject daemon;
  {
    std::lock_guard<std::mutex> lock(mu_);
    daemon["workers"] = Json(static_cast<std::int64_t>(options_.workers));
    daemon["queue_capacity"] = Json(static_cast<std::int64_t>(options_.max_queue));
    daemon["queue_depth"] = Json(static_cast<std::int64_t>(queue_.size()));
    daemon["active"] = Json(static_cast<std::int64_t>(active_jobs_));
    daemon["accepted"] = Json(static_cast<std::int64_t>(accepted_));
    daemon["rejected_queue_full"] =
        Json(static_cast<std::int64_t>(rejected_queue_full_));
    daemon["rejected_draining"] = Json(static_cast<std::int64_t>(rejected_draining_));
    daemon["completed"] = Json(static_cast<std::int64_t>(completed_));
    daemon["failed"] = Json(static_cast<std::int64_t>(failed_));
    daemon["draining"] = Json(draining_);
  }
  JsonObject o = router_.stats_json().as_object();
  o["daemon"] = Json(std::move(daemon));
  return Json(std::move(o));
}

}  // namespace cimflow::service
