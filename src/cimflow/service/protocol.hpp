// cimflowd wire protocol: newline-delimited JSON over a UNIX-domain stream
// socket. Each request is one '\n'-terminated JSON object; the daemon answers
// with zero or more `progress` events followed by exactly one terminal
// `result` or `error` event for the same request id, all on the same
// connection:
//
//   -> {"id":1,"verb":"evaluate","params":{"model":"micro","batch":8}}
//   <- {"completed":0,"event":"progress","id":1,"total":1}
//   <- {"completed":1,"event":"progress","id":1,"total":1}
//   <- {"cache":{...},"event":"result","id":1,"payload":{...}}
//
// `payload` of a result event carries the exact document the CLI's
// --json flag would write for the equivalent direct invocation (the client
// re-dumps it byte-identically). Error events carry a structured object:
//   {"error":{"code":"InvalidArgument","message":"..."},"event":"error","id":1}
//
// Verbs: evaluate, sweep, search (compute, queued through the admission
// queue), stats and shutdown (control, answered inline). Ids are
// caller-chosen and merely echoed; 0 is used for errors raised before a
// request id could be parsed.
#pragma once

#include <cstdint>
#include <string>

#include "cimflow/support/json.hpp"
#include "cimflow/support/status.hpp"

namespace cimflow::service {

struct Request {
  std::int64_t id = 0;  ///< echoed on every event answering this request
  std::string verb;     ///< evaluate | sweep | search | stats | shutdown
  Json params{JsonObject{}};
};

/// Parses one request line. Throws Error(kParseError) for malformed JSON and
/// Error(kInvalidArgument) for a structurally wrong request (non-object,
/// missing verb, non-object params, non-integral id).
Request parse_request(const std::string& line);

/// Event builders. `result_event` spreads `body` (an object — typically
/// {"payload": ..., "cache": ...}) into the event alongside event/id, so the
/// terminal event stays flat and the payload key keeps the CLI-exact bytes.
Json progress_event(std::int64_t id, std::size_t completed, std::size_t total);
Json result_event(std::int64_t id, const Json& body);
Json error_event(std::int64_t id, ErrorCode code, const std::string& message);

/// An event as wire bytes: single-line dump + '\n'.
std::string wire_line(const Json& event);

}  // namespace cimflow::service
