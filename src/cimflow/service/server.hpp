// cimflowd — the long-lived evaluation daemon (ROADMAP "serve repeated
// evaluation requests without paying process start + cache warmup"). A
// blocking UNIX-domain stream listener accepts newline-delimited JSON
// requests (see protocol.hpp) and dispatches compute verbs onto a bounded
// worker pool over one shared Router, so every request after the first hits
// the warm model / program / decode caches that die with a one-shot CLI
// process.
//
// Concurrency model, smallest thing that works end to end:
//   * one reader thread per accepted connection (requests on one connection
//     are admitted in arrival order but may complete out of order — ids tell
//     events apart);
//   * a bounded admission queue feeding N worker threads. A full queue
//     rejects immediately with a structured kCapacityExceeded error rather
//     than stalling the connection — callers see backpressure, not silence;
//   * control verbs (stats, metrics, shutdown) are answered inline on the
//     reader thread, so they work even when every worker is busy;
//   * writes to one connection are serialized by a per-connection mutex;
//     a disconnected peer marks the connection dead and in-flight work for
//     it completes into the void (results are dropped, never blocked on).
//
// Graceful shutdown (`shutdown` verb or request_stop()): admission closes,
// queued and running jobs drain, the shutdown response is written last, and
// serve() returns after joining every thread and unlinking the socket path.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cimflow/service/protocol.hpp"
#include "cimflow/service/router.hpp"

#include <condition_variable>

namespace cimflow::service {

struct DaemonOptions {
  std::string socket_path;  ///< AF_UNIX path; created on bind, unlinked on exit
  std::size_t workers = 2;  ///< compute worker threads
  std::size_t max_queue = 8;  ///< admission bound: queued-but-not-running jobs
  /// Longest accepted request line (bytes, newline included). Oversized lines
  /// are answered with a structured error and discarded up to the next
  /// newline; the connection survives.
  std::size_t max_request_bytes = 1 << 20;
  RouterOptions router;
  /// Test seam: when set, replaces Router::handle for compute verbs (the
  /// protocol tests inject slow/failing handlers to pin queue-full, drain,
  /// and disconnect behavior without running real evaluations).
  std::function<Json(const Request&, const ProgressFn&)> handler;
};

class Daemon {
 public:
  /// Binds and listens (removing a stale socket file first); throws
  /// Error(kIoError) naming the path on failure. The Router is constructed
  /// here too, so a bad cache dir fails before serve().
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Accept loop; blocks until a shutdown request (or request_stop()) has
  /// drained all admitted work, then tears down and returns.
  void serve();

  /// Thread-safe shutdown trigger equivalent to a `shutdown` request with no
  /// connection to answer.
  void request_stop();

  const std::string& socket_path() const noexcept { return options_.socket_path; }

  /// The `stats` payload: admission/queue counters plus the Router's
  /// service block.
  Json stats_json() const;

 private:
  struct Connection;
  struct Job {
    std::shared_ptr<Connection> conn;
    Request request;
  };

  void reader_loop(std::shared_ptr<Connection> conn);
  void handle_line(const std::shared_ptr<Connection>& conn, const std::string& line);
  void worker_loop();
  void run_job(const Job& job);
  /// Blocks until every admitted job has finished (the shutdown drain).
  void wait_drained();

  DaemonOptions options_;
  Router router_;
  int listen_fd_ = -1;

  mutable std::mutex mu_;  ///< queue, counters, lifecycle flags
  std::condition_variable queue_cv_;  ///< workers: work available / stopping
  std::condition_variable drain_cv_;  ///< shutdown: admitted work finished
  std::deque<Job> queue_;
  std::size_t active_jobs_ = 0;
  bool draining_ = false;  ///< admission closed (shutdown in progress)
  bool stop_ = false;      ///< workers + acceptor exit when drained

  // Admission counters (reported by stats, asserted by the smoke tests).
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_queue_full_ = 0;
  std::uint64_t rejected_draining_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;

  std::vector<std::thread> workers_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace cimflow::service
