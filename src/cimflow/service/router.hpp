// Request dispatch for cimflowd: maps compute verbs (evaluate, sweep,
// search) onto the existing Flow / SearchDriver machinery while keeping the
// expensive state warm across requests. The warm layers live in exactly one
// daemon-scoped EvalContext — one ProgramMemo, one optional
// PersistentProgramCache, the process-wide strong decode LRU (installed at
// construction) — and every request gets a per-model for_model() copy. A
// second identical request therefore skips model building, compilation, and
// instruction decode entirely; the `stats` verb exposes the counters proving
// it, alongside the simulator's event-queue counters aggregated across
// requests.
//
// Thread-safety: handle() is called concurrently from the daemon's worker
// pool. The memo and persistent cache are internally synchronized; the model
// cache and per-verb counters are guarded here. Result payloads are the
// exact documents the CLI's --json flags write for equivalent direct
// invocations (deterministic dump makes the bytes identical).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "cimflow/core/eval_context.hpp"
#include "cimflow/core/program_cache.hpp"
#include "cimflow/graph/graph.hpp"
#include "cimflow/service/protocol.hpp"
#include "cimflow/sim/decoded.hpp"
#include "cimflow/support/trace.hpp"

namespace cimflow::service {

/// Streaming progress sink: (completed, total) per completed unit of work.
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

struct RouterOptions {
  /// Persistent compile-cache directory shared by every request; empty
  /// disables on-disk persistence (the in-memory memo still spans requests).
  /// Opening fails fast with Error(kIoError) at construction.
  std::string cache_dir;
  std::int64_t cache_max_bytes = 0;  ///< size cap for cache_dir (0 = unlimited)
  /// Strong decode-LRU capacity installed at construction (the daemon-wide
  /// warmth knob behind CIMFLOW_DECODE_LRU for direct CLI runs).
  std::size_t decode_lru = sim::kDefaultStrongDecodes;
  /// SIMD kernel tier for every simulator the daemon runs (`--kernels`,
  /// mirroring the CIMFLOW_KERNELS env override; kAuto = best available).
  /// Byte-identical payloads at any tier — surfaced in `stats`/`metrics`
  /// so artifacts are attributable to a tier.
  sim::kernels::KernelTier kernel_tier = sim::kernels::KernelTier::kAuto;
};

class Router {
 public:
  explicit Router(RouterOptions options);

  /// Dispatches one compute request and returns the result-event body:
  /// {"payload": <CLI-exact document>, "cache": <warmth telemetry>}. Streams
  /// (completed, total) through `progress` when non-null. Throws
  /// cimflow::Error for unknown verbs and malformed params; counters record
  /// the failure either way.
  Json handle(const Request& request, const ProgressFn& progress);

  /// The `stats` verb's service block: per-verb counters, memo size, decode
  /// cache counters, scheduler event-queue counters aggregated over every
  /// simulated report, and persistent-cache counters (null when disabled).
  Json stats_json() const;

  /// The `metrics` verb's body: Prometheus text exposition (one latency
  /// histogram per verb with _bucket/_sum/_count series, request/failure
  /// counters, cache counters). The daemon passes its queue-depth and
  /// in-flight gauges since only it can observe them.
  std::string metrics_text(std::size_t queue_depth, std::size_t inflight) const;

 private:
  struct ModelEntry {
    std::shared_ptr<const graph::Graph> graph;
    std::uint64_t fingerprint = 0;  ///< model_fingerprint(*graph), hashed once
  };
  struct VerbStats {
    std::size_t requests = 0;
    std::size_t failures = 0;
    /// Wall time accumulates in integer nanoseconds — a double-milliseconds
    /// total silently truncated sub-millisecond requests (the common case for
    /// warm-cache hits) and drifted once totals grew large. Reported as
    /// seconds (double) at the JSON boundary only.
    std::int64_t wall_ns_total = 0;
    std::int64_t wall_ns_last = 0;
    /// Fixed log-scale latency histogram feeding p50/p90/p99 in `stats` and
    /// the Prometheus `metrics` exposition. Guarded by mu_ like the counters.
    trace::LatencyHistogram latency;
  };
  /// Event-kernel telemetry summed (max for queue depth) across every
  /// simulator run the daemon served — the `stats` verb's scheduler block.
  struct SchedulerTotals {
    std::int64_t reports = 0;  ///< simulated reports folded in
    std::int64_t events_dispatched = 0;
    std::int64_t max_queue_depth = 0;  ///< max over runs, not a sum
    std::int64_t idle_cycles_skipped = 0;
  };

  /// The cached model for (name, input_hw), building and fingerprinting it on
  /// first use. Returned entry stays valid for the router's lifetime.
  ModelEntry model(const std::string& name, std::int64_t input_hw);

  Json handle_evaluate(const Json& params, const ProgressFn& progress);
  /// Sweep and search share the driver path; they differ only in the default
  /// search strategy (grid = the dense deterministic sweep, pareto = the
  /// adaptive refinement).
  Json handle_search(const Json& params, const ProgressFn& progress,
                     const std::string& default_strategy);

  /// Folds one simulator run's event-queue counters into the totals.
  void record_scheduler(std::int64_t events_dispatched, std::int64_t max_queue_depth,
                        std::int64_t idle_cycles_skipped);

  RouterOptions options_;
  ProgramMemo memo_;
  std::optional<PersistentProgramCache> persistent_;
  /// The daemon's one EvalContext: points at memo_/persistent_, carries the
  /// decode-LRU capacity. Requests take for_model() copies and stamp their
  /// own sim_threads; the warm layers themselves stay shared.
  EvalContext eval_;
  /// The concrete tier eval_ resolves to (env override + probe applied once
  /// at construction) — what stats/metrics report.
  sim::kernels::KernelTier tier_ = sim::kernels::KernelTier::kScalar;
  mutable std::mutex mu_;  ///< guards models_, verbs_, and scheduler_
  std::map<std::string, ModelEntry> models_;
  std::map<std::string, VerbStats> verbs_;
  SchedulerTotals scheduler_;
};

}  // namespace cimflow::service
