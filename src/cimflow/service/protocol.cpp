#include "cimflow/service/protocol.hpp"

namespace cimflow::service {

Request parse_request(const std::string& line) {
  const Json doc = Json::parse(line);  // throws Error(kParseError) with offset
  if (!doc.is_object()) {
    raise(ErrorCode::kInvalidArgument, "request must be a JSON object");
  }
  Request request;
  if (doc.contains("id")) {
    const Json& id = doc.at("id");
    if (!id.is_number()) {
      raise(ErrorCode::kInvalidArgument, "request \"id\" must be a number");
    }
    request.id = id.as_int();
  }
  if (!doc.contains("verb") || !doc.at("verb").is_string() ||
      doc.at("verb").as_string().empty()) {
    raise(ErrorCode::kInvalidArgument,
          "request is missing the \"verb\" field "
          "(evaluate, sweep, search, stats, or shutdown)");
  }
  request.verb = doc.at("verb").as_string();
  if (doc.contains("params")) {
    if (!doc.at("params").is_object()) {
      raise(ErrorCode::kInvalidArgument, "request \"params\" must be an object");
    }
    request.params = doc.at("params");
  }
  return request;
}

Json progress_event(std::int64_t id, std::size_t completed, std::size_t total) {
  JsonObject o;
  o["event"] = Json("progress");
  o["id"] = Json(id);
  o["completed"] = Json(static_cast<std::int64_t>(completed));
  o["total"] = Json(static_cast<std::int64_t>(total));
  return Json(std::move(o));
}

Json result_event(std::int64_t id, const Json& body) {
  JsonObject o = body.as_object();
  o["event"] = Json("result");
  o["id"] = Json(id);
  return Json(std::move(o));
}

Json error_event(std::int64_t id, ErrorCode code, const std::string& message) {
  JsonObject detail;
  detail["code"] = Json(std::string(to_string(code)));
  detail["message"] = Json(message);
  JsonObject o;
  o["event"] = Json("error");
  o["id"] = Json(id);
  o["error"] = Json(std::move(detail));
  return Json(std::move(o));
}

std::string wire_line(const Json& event) { return event.dump_line() + "\n"; }

}  // namespace cimflow::service
