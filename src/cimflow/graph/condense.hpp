// Computation-graph preprocessing (paper Sec. III-C, "CG-level
// Optimization / Preprocessing"): extract MVM-based operators, group
// adjacent non-MVM operators with them, and produce a condensed DAG whose
// topological (id) order is the dependency-preserving linearization used by
// the DP partitioner.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cimflow/graph/graph.hpp"

namespace cimflow::graph {

using GroupId = std::int32_t;

/// One condensed operator: an MVM anchor (conv / depthwise / fc) plus the
/// adjacent auxiliary nodes fused with it, or an anchor-less group (graph
/// inputs; vector-only tails).
struct Group {
  GroupId id = -1;
  std::vector<NodeId> nodes;   ///< members in topological order
  NodeId anchor = kInvalidNode;
  bool is_input = false;       ///< true for graph-input placeholder groups
  std::vector<GroupId> preds;  ///< deduplicated, ascending
  std::vector<GroupId> succs;

  std::int64_t weight_bytes = 0;  ///< INT8 weights held by members
  std::int64_t macs = 0;          ///< per-image MACs of the anchor
  std::int64_t in_bytes = 0;      ///< per-image external input bytes
  std::int64_t out_bytes = 0;     ///< per-image bytes consumed externally

  std::string name;  ///< anchor (or first member) name for reports
};

/// Condensed view of a Graph. Group ids are assigned in topological order,
/// so `groups()[i]` only depends on groups with smaller ids.
class CondensedGraph {
 public:
  /// Builds the condensed graph. Rule: every MVM node starts a new group;
  /// every non-MVM node joins the group of its most recent producer.
  static CondensedGraph build(const Graph& graph);

  const Graph& source() const noexcept { return *graph_; }
  const std::vector<Group>& groups() const noexcept { return groups_; }
  std::int64_t size() const noexcept { return static_cast<std::int64_t>(groups_.size()); }
  const Group& group(GroupId id) const;

  /// Group containing a given source node.
  GroupId group_of(NodeId node) const;

  /// Ids of non-input groups in linear (dependency-preserving) order — the
  /// operator sequence the partitioner works on.
  std::vector<GroupId> compute_order() const;

  std::string summary() const;

 private:
  const Graph* graph_ = nullptr;
  std::vector<Group> groups_;
  std::vector<GroupId> node_to_group_;
};

}  // namespace cimflow::graph
