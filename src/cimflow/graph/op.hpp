// Operator set of the computation graph. The set covers everything needed
// by the paper's benchmark suite (ResNet18, VGG19, MobileNetV2,
// EfficientNetB0) quantized to INT8: MVM-based operators (convolution,
// depthwise convolution, fully-connected) plus the auxiliary vector
// operators the CIM architecture executes on its vector unit.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>

#include "cimflow/graph/tensor.hpp"

namespace cimflow::graph {

enum class OpKind : std::uint8_t {
  kInput,            ///< graph input placeholder
  kConv2d,           ///< dense convolution (square kernel)
  kDepthwiseConv2d,  ///< depthwise convolution (channel multiplier 1)
  kFullyConnected,   ///< matrix-vector layer
  kRelu,             ///< clamp(x, 0, hi); hi=127 is plain ReLU, lower = ReLU6-style
  kAdd,              ///< elementwise residual add (re-quantized)
  kMaxPool,
  kAvgPool,
  kGlobalAvgPool,    ///< output [n,1,1,c]
  kLut,              ///< int8 -> int8 lookup (SiLU/sigmoid/HSwish tables)
  kScaleChannels,    ///< out[n,h,w,c] = sat((a[n,h,w,c]*s[c]) >> shift); SE apply
  kFlatten,          ///< [n,h,w,c] -> [n,1,1,h*w*c]
};

const char* to_string(OpKind kind) noexcept;

/// True for operators computed by in-memory MVM (the anchors of the
/// condensed computation graph).
constexpr bool is_mvm_kind(OpKind kind) {
  return kind == OpKind::kConv2d || kind == OpKind::kDepthwiseConv2d ||
         kind == OpKind::kFullyConnected;
}

struct ConvAttrs {
  std::int64_t out_channels = 0;
  std::int64_t kernel = 1;  ///< square kernel edge
  std::int64_t stride = 1;
  std::int64_t pad = 0;
};

struct FcAttrs {
  std::int64_t out_features = 0;
};

struct PoolAttrs {
  std::int64_t kernel = 2;
  std::int64_t stride = 2;
  std::int64_t pad = 0;
};

struct ReluAttrs {
  std::int8_t hi = 127;  ///< upper clamp in quantized units
};

struct LutAttrs {
  std::array<std::int8_t, 256> table{};  ///< indexed by (uint8)input
  std::string name;                      ///< e.g. "silu", "sigmoid"
};

struct NoAttrs {};

using OpAttrs = std::variant<NoAttrs, ConvAttrs, FcAttrs, PoolAttrs, ReluAttrs, LutAttrs>;

/// Post-accumulation requantization: int8 = saturate((acc + bias) >> shift).
/// Zero points are zero (symmetric quantization), matching typical INT8 CIM
/// deployments; `shift` is chosen per layer from its fan-in so synthetic
/// activations stay in range.
struct QuantSpec {
  int shift = 0;

  /// Heuristic shift for a layer accumulating `fan_in` INT8 products:
  /// keeps ~2 standard deviations of the accumulator inside INT8.
  static QuantSpec for_fan_in(std::int64_t fan_in);
};

}  // namespace cimflow::graph
