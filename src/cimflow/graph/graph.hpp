// The computation graph (DAG) consumed by the CIMFlow compiler — the
// in-memory equivalent of the paper's ONNX model description. Nodes carry
// operator attributes, INT8 weights, INT32 bias and quantization parameters;
// shape inference runs at construction so every edge has a concrete NHWC
// shape. The graph is append-only (node inputs must already exist), which
// makes it acyclic by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cimflow/graph/op.hpp"

namespace cimflow::graph {

using NodeId = std::int32_t;
constexpr NodeId kInvalidNode = -1;

struct Node {
  NodeId id = kInvalidNode;
  std::string name;
  OpKind kind = OpKind::kInput;
  OpAttrs attrs;
  std::vector<NodeId> inputs;
  std::vector<NodeId> users;
  Shape out_shape;
  QuantSpec quant;

  /// INT8 weights. Layouts: Conv2d [K][R][S][C]; DepthwiseConv2d [C][R][S];
  /// FullyConnected [O][I]; ScaleChannels per-channel scale [C].
  std::shared_ptr<std::vector<std::int8_t>> weights;
  /// Per-output-channel INT32 bias (Conv2d / FullyConnected / DepthwiseConv2d).
  std::shared_ptr<std::vector<std::int32_t>> bias;

  bool is_mvm() const noexcept { return is_mvm_kind(kind); }

  /// Multiply-accumulates per image (0 for non-MVM nodes).
  std::int64_t macs() const noexcept;

  /// Bytes of INT8 weights held by this node (0 when weightless).
  std::int64_t weight_bytes() const noexcept;

  const ConvAttrs& conv() const { return std::get<ConvAttrs>(attrs); }
  const FcAttrs& fc() const { return std::get<FcAttrs>(attrs); }
  const PoolAttrs& pool() const { return std::get<PoolAttrs>(attrs); }
  const ReluAttrs& relu() const { return std::get<ReluAttrs>(attrs); }
  const LutAttrs& lut() const { return std::get<LutAttrs>(attrs); }
};

class Graph {
 public:
  explicit Graph(std::string name = "graph") : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  // --- Builders (shape inference + validation happen here) -----------------

  NodeId add_input(Shape shape, std::string name = "input");
  NodeId add_conv2d(NodeId input, ConvAttrs attrs, std::string name = "");
  NodeId add_depthwise_conv2d(NodeId input, std::int64_t kernel, std::int64_t stride,
                              std::int64_t pad, std::string name = "");
  NodeId add_fully_connected(NodeId input, std::int64_t out_features,
                             std::string name = "");
  NodeId add_relu(NodeId input, std::int8_t hi = 127, std::string name = "");
  NodeId add_add(NodeId lhs, NodeId rhs, std::string name = "");
  NodeId add_max_pool(NodeId input, PoolAttrs attrs, std::string name = "");
  NodeId add_avg_pool(NodeId input, PoolAttrs attrs, std::string name = "");
  NodeId add_global_avg_pool(NodeId input, std::string name = "");
  NodeId add_lut(NodeId input, LutAttrs attrs, std::string name = "");
  NodeId add_scale_channels(NodeId tensor, NodeId scales, std::string name = "");
  NodeId add_flatten(NodeId input, std::string name = "");

  /// Marks the graph output (exactly one; usually the classifier logits).
  void set_output(NodeId node);
  NodeId output() const;

  // --- Access ---------------------------------------------------------------

  std::int64_t node_count() const noexcept { return static_cast<std::int64_t>(nodes_.size()); }
  const Node& node(NodeId id) const;
  Node& mutable_node(NodeId id);
  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  const std::vector<NodeId>& inputs() const noexcept { return input_ids_; }

  /// Deterministic topological order (ascending id — valid because edges
  /// always point from lower to higher ids).
  std::vector<NodeId> topo_order() const;

  /// Structural validation: operand shapes, weight/bias sizes, output set.
  /// Throws Error(kInvalidConfig) with the offending node name.
  void verify() const;

  // --- Whole-graph statistics ------------------------------------------------

  std::int64_t total_macs() const noexcept;
  std::int64_t total_weight_bytes() const noexcept;

  /// Fills all weights/bias with seeded synthetic data (deterministic).
  void randomize_parameters(std::uint64_t seed);

  /// One-line summary: name, nodes, MACs, weight megabytes.
  std::string summary() const;

  /// Resolves layout no-ops: a Flatten node's tensor IS its input's tensor
  /// (identical bytes in memory), so compilers address the producing node.
  NodeId resolve_alias(NodeId node) const;

 private:
  Node& create(OpKind kind, OpAttrs attrs, std::vector<NodeId> inputs, std::string name);
  void check_exists(NodeId id) const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> input_ids_;
  NodeId output_ = kInvalidNode;
};

}  // namespace cimflow::graph
