// Dependency-closure enumeration (Algorithm 1, line 1: GetDependencyMasks).
//
// A dependency closure is a set of operators whose dependencies are fully
// enclosed within the set — i.e. a downset (order ideal) of the condensed
// DAG. Closures are encoded as bitmasks over the compute groups (the "state
// compression" of the paper) and serve as the DP states whose pairwise set
// differences form candidate execution stages.
#pragma once

#include <cstddef>
#include <vector>

#include "cimflow/support/bitset.hpp"

namespace cimflow::graph {

/// Enumerates all downsets of a DAG given per-element predecessor lists
/// (indices into [0, n)). Returns them sorted by popcount, then by bit
/// pattern, so callers iterate states in DP-compatible order (every subset
/// precedes its supersets). Includes the empty and (if reachable) full sets.
///
/// `limit` bounds the enumeration; when the DAG has more downsets than
/// `limit`, enumeration stops and only the *prefix closures* of the
/// topological order are returned instead (always valid, chain-shaped
/// fallback), plus `truncated` is set when provided.
std::vector<DynBitset> enumerate_closures(
    const std::vector<std::vector<std::int32_t>>& preds, std::size_t limit = 200000,
    bool* truncated = nullptr);

}  // namespace cimflow::graph
