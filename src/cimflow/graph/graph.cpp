#include "cimflow/graph/graph.hpp"

#include <cmath>

#include "cimflow/support/rng.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::graph {

const char* to_string(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kInput: return "Input";
    case OpKind::kConv2d: return "Conv2d";
    case OpKind::kDepthwiseConv2d: return "DepthwiseConv2d";
    case OpKind::kFullyConnected: return "FullyConnected";
    case OpKind::kRelu: return "Relu";
    case OpKind::kAdd: return "Add";
    case OpKind::kMaxPool: return "MaxPool";
    case OpKind::kAvgPool: return "AvgPool";
    case OpKind::kGlobalAvgPool: return "GlobalAvgPool";
    case OpKind::kLut: return "Lut";
    case OpKind::kScaleChannels: return "ScaleChannels";
    case OpKind::kFlatten: return "Flatten";
  }
  return "?";
}

QuantSpec QuantSpec::for_fan_in(std::int64_t fan_in) {
  CIMFLOW_CHECK(fan_in > 0, "fan_in must be positive");
  // Keep roughly two standard deviations of the INT8xINT8 accumulator in
  // range: std(acc) ~= sqrt(fan_in) * 127^2 / 3.
  const double std_acc = std::sqrt(static_cast<double>(fan_in)) * 127.0 * 127.0 / 3.0;
  const int shift = static_cast<int>(std::ceil(std::log2(2.0 * std_acc / 127.0)));
  return QuantSpec{std::max(shift, 0)};
}

std::int64_t Node::macs() const noexcept {
  switch (kind) {
    case OpKind::kConv2d: {
      const auto& a = std::get<ConvAttrs>(attrs);
      // fan-in per output element times output elements (single image).
      const std::int64_t in_c = weights && a.out_channels > 0 && a.kernel > 0
                                    ? static_cast<std::int64_t>(weights->size()) /
                                          (a.out_channels * a.kernel * a.kernel)
                                    : 0;
      return out_shape.per_image() / out_shape.c * a.out_channels * a.kernel *
             a.kernel * in_c;
    }
    case OpKind::kDepthwiseConv2d: {
      const auto& a = std::get<ConvAttrs>(attrs);
      return out_shape.per_image() * a.kernel * a.kernel;
    }
    case OpKind::kFullyConnected: {
      const std::int64_t out = std::get<FcAttrs>(attrs).out_features;
      const std::int64_t in =
          weights ? static_cast<std::int64_t>(weights->size()) / out : 0;
      return out * in;
    }
    default:
      return 0;
  }
}

std::int64_t Node::weight_bytes() const noexcept {
  return weights ? static_cast<std::int64_t>(weights->size()) : 0;
}

void Graph::check_exists(NodeId id) const {
  CIMFLOW_CHECK(id >= 0 && id < node_count(), "node id out of range");
}

Node& Graph::create(OpKind kind, OpAttrs attrs, std::vector<NodeId> inputs,
                    std::string name) {
  for (NodeId input : inputs) check_exists(input);
  Node node;
  node.id = static_cast<NodeId>(nodes_.size());
  node.kind = kind;
  node.attrs = std::move(attrs);
  node.inputs = inputs;
  node.name = name.empty() ? strprintf("%s_%d", to_string(kind), node.id)
                           : std::move(name);
  nodes_.push_back(std::move(node));
  Node& stored = nodes_.back();
  for (NodeId input : inputs) nodes_[static_cast<std::size_t>(input)].users.push_back(stored.id);
  return stored;
}

NodeId Graph::add_input(Shape shape, std::string name) {
  Node& node = create(OpKind::kInput, NoAttrs{}, {}, std::move(name));
  node.out_shape = shape;
  input_ids_.push_back(node.id);
  return node.id;
}

NodeId Graph::add_conv2d(NodeId input, ConvAttrs attrs, std::string name) {
  const Shape in = node(input).out_shape;
  if (attrs.out_channels <= 0 || attrs.kernel <= 0 || attrs.stride <= 0 || attrs.pad < 0) {
    raise(ErrorCode::kInvalidArgument, "bad Conv2d attributes");
  }
  const std::int64_t oh = (in.h + 2 * attrs.pad - attrs.kernel) / attrs.stride + 1;
  const std::int64_t ow = (in.w + 2 * attrs.pad - attrs.kernel) / attrs.stride + 1;
  if (oh <= 0 || ow <= 0) raise(ErrorCode::kInvalidArgument, "Conv2d output collapses");
  Node& node = create(OpKind::kConv2d, attrs, {input}, std::move(name));
  node.out_shape = Shape{in.n, oh, ow, attrs.out_channels};
  const std::int64_t fan_in = attrs.kernel * attrs.kernel * in.c;
  node.quant = QuantSpec::for_fan_in(fan_in);
  node.weights = std::make_shared<std::vector<std::int8_t>>(
      static_cast<std::size_t>(attrs.out_channels * fan_in), 0);
  node.bias = std::make_shared<std::vector<std::int32_t>>(
      static_cast<std::size_t>(attrs.out_channels), 0);
  return node.id;
}

NodeId Graph::add_depthwise_conv2d(NodeId input, std::int64_t kernel,
                                   std::int64_t stride, std::int64_t pad,
                                   std::string name) {
  const Shape in = node(input).out_shape;
  const std::int64_t oh = (in.h + 2 * pad - kernel) / stride + 1;
  const std::int64_t ow = (in.w + 2 * pad - kernel) / stride + 1;
  if (oh <= 0 || ow <= 0) raise(ErrorCode::kInvalidArgument, "DWConv output collapses");
  ConvAttrs attrs{in.c, kernel, stride, pad};
  Node& node = create(OpKind::kDepthwiseConv2d, attrs, {input}, std::move(name));
  node.out_shape = Shape{in.n, oh, ow, in.c};
  node.quant = QuantSpec::for_fan_in(kernel * kernel);
  node.weights = std::make_shared<std::vector<std::int8_t>>(
      static_cast<std::size_t>(in.c * kernel * kernel), 0);
  node.bias = std::make_shared<std::vector<std::int32_t>>(static_cast<std::size_t>(in.c), 0);
  return node.id;
}

NodeId Graph::add_fully_connected(NodeId input, std::int64_t out_features,
                                  std::string name) {
  const Shape in = node(input).out_shape;
  const std::int64_t in_features = in.per_image();
  if (out_features <= 0) raise(ErrorCode::kInvalidArgument, "bad FC out_features");
  Node& node = create(OpKind::kFullyConnected, FcAttrs{out_features}, {input},
                      std::move(name));
  node.out_shape = Shape{in.n, 1, 1, out_features};
  node.quant = QuantSpec::for_fan_in(in_features);
  node.weights = std::make_shared<std::vector<std::int8_t>>(
      static_cast<std::size_t>(out_features * in_features), 0);
  node.bias = std::make_shared<std::vector<std::int32_t>>(
      static_cast<std::size_t>(out_features), 0);
  return node.id;
}

NodeId Graph::add_relu(NodeId input, std::int8_t hi, std::string name) {
  Node& node = create(OpKind::kRelu, ReluAttrs{hi}, {input}, std::move(name));
  node.out_shape = this->node(input).out_shape;
  return node.id;
}

NodeId Graph::add_add(NodeId lhs, NodeId rhs, std::string name) {
  const Shape a = node(lhs).out_shape;
  const Shape b = node(rhs).out_shape;
  if (!(a == b)) {
    raise(ErrorCode::kInvalidArgument,
          "Add operand shapes differ: " + a.to_string() + " vs " + b.to_string());
  }
  Node& node = create(OpKind::kAdd, NoAttrs{}, {lhs, rhs}, std::move(name));
  node.out_shape = a;
  return node.id;
}

namespace {
Shape pooled_shape(const Shape& in, const PoolAttrs& attrs) {
  const std::int64_t oh = (in.h + 2 * attrs.pad - attrs.kernel) / attrs.stride + 1;
  const std::int64_t ow = (in.w + 2 * attrs.pad - attrs.kernel) / attrs.stride + 1;
  if (oh <= 0 || ow <= 0) raise(ErrorCode::kInvalidArgument, "pool output collapses");
  return Shape{in.n, oh, ow, in.c};
}
}  // namespace

NodeId Graph::add_max_pool(NodeId input, PoolAttrs attrs, std::string name) {
  Node& node = create(OpKind::kMaxPool, attrs, {input}, std::move(name));
  node.out_shape = pooled_shape(this->node(input).out_shape, attrs);
  return node.id;
}

NodeId Graph::add_avg_pool(NodeId input, PoolAttrs attrs, std::string name) {
  Node& node = create(OpKind::kAvgPool, attrs, {input}, std::move(name));
  node.out_shape = pooled_shape(this->node(input).out_shape, attrs);
  return node.id;
}

NodeId Graph::add_global_avg_pool(NodeId input, std::string name) {
  const Shape in = node(input).out_shape;
  Node& node = create(OpKind::kGlobalAvgPool, NoAttrs{}, {input}, std::move(name));
  node.out_shape = Shape{in.n, 1, 1, in.c};
  return node.id;
}

NodeId Graph::add_lut(NodeId input, LutAttrs attrs, std::string name) {
  Node& node = create(OpKind::kLut, std::move(attrs), {input}, std::move(name));
  node.out_shape = this->node(input).out_shape;
  return node.id;
}

NodeId Graph::add_scale_channels(NodeId tensor, NodeId scales, std::string name) {
  const Shape t = node(tensor).out_shape;
  const Shape s = node(scales).out_shape;
  if (s.per_image() != t.c) {
    raise(ErrorCode::kInvalidArgument,
          "ScaleChannels scale vector must have C elements, got " + s.to_string());
  }
  Node& node = create(OpKind::kScaleChannels, NoAttrs{}, {tensor, scales}, std::move(name));
  node.out_shape = t;
  // Product of two int8 values fits comfortably after a shift of 7.
  node.quant = QuantSpec{7};
  return node.id;
}

NodeId Graph::add_flatten(NodeId input, std::string name) {
  const Shape in = node(input).out_shape;
  Node& node = create(OpKind::kFlatten, NoAttrs{}, {input}, std::move(name));
  node.out_shape = Shape{in.n, 1, 1, in.per_image()};
  return node.id;
}

void Graph::set_output(NodeId node) {
  check_exists(node);
  output_ = node;
}

NodeId Graph::output() const {
  CIMFLOW_CHECK(output_ != kInvalidNode, "graph output not set");
  return output_;
}

const Node& Graph::node(NodeId id) const {
  check_exists(id);
  return nodes_[static_cast<std::size_t>(id)];
}

Node& Graph::mutable_node(NodeId id) {
  check_exists(id);
  return nodes_[static_cast<std::size_t>(id)];
}

std::vector<NodeId> Graph::topo_order() const {
  std::vector<NodeId> order(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) order[i] = static_cast<NodeId>(i);
  return order;
}

void Graph::verify() const {
  if (output_ == kInvalidNode) {
    raise(ErrorCode::kInvalidConfig, "graph has no output node");
  }
  if (input_ids_.empty()) {
    raise(ErrorCode::kInvalidConfig, "graph has no input node");
  }
  for (const Node& node : nodes_) {
    for (NodeId input : node.inputs) {
      if (input < 0 || input >= node.id) {
        raise(ErrorCode::kInvalidConfig, "node " + node.name + " has invalid input edge");
      }
    }
    if (node.kind == OpKind::kConv2d) {
      const auto& a = node.conv();
      const Shape in = this->node(node.inputs.at(0)).out_shape;
      const std::size_t expected =
          static_cast<std::size_t>(a.out_channels * a.kernel * a.kernel * in.c);
      if (!node.weights || node.weights->size() != expected) {
        raise(ErrorCode::kInvalidConfig, "node " + node.name + " has bad weight size");
      }
      if (!node.bias || node.bias->size() != static_cast<std::size_t>(a.out_channels)) {
        raise(ErrorCode::kInvalidConfig, "node " + node.name + " has bad bias size");
      }
    }
    if (node.kind == OpKind::kScaleChannels && node.inputs.size() != 2) {
      raise(ErrorCode::kInvalidConfig, "ScaleChannels needs 2 inputs");
    }
    if (node.kind == OpKind::kAdd && node.inputs.size() != 2) {
      raise(ErrorCode::kInvalidConfig, "Add needs 2 inputs");
    }
  }
}

std::int64_t Graph::total_macs() const noexcept {
  std::int64_t total = 0;
  for (const Node& node : nodes_) total += node.macs();
  return total;
}

std::int64_t Graph::total_weight_bytes() const noexcept {
  std::int64_t total = 0;
  for (const Node& node : nodes_) total += node.weight_bytes();
  return total;
}

void Graph::randomize_parameters(std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (Node& node : nodes_) {
    if (node.weights) {
      for (std::int8_t& w : *node.weights) w = rng.next_int8();
    }
    if (node.bias) {
      // Bias magnitudes scaled to the accumulator range after shift.
      for (std::int32_t& b : *node.bias) {
        b = static_cast<std::int32_t>(rng.next_in(-1, 1)) << node.quant.shift;
      }
    }
  }
}

graph::NodeId Graph::resolve_alias(NodeId id) const {
  const Node& n = node(id);
  if (n.kind == OpKind::kFlatten) return resolve_alias(n.inputs.at(0));
  return id;
}

std::string Graph::summary() const {
  return strprintf("%s: %lld nodes, %.2f GMACs, %.2f MB weights", name_.c_str(),
                   (long long)node_count(), static_cast<double>(total_macs()) / 1e9,
                   static_cast<double>(total_weight_bytes()) / 1e6);
}

}  // namespace cimflow::graph
