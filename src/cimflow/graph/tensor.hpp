// Tensor shapes and dense INT8/INT32 tensors (NHWC activation layout).
// These are the values flowing through the computation graph and the golden
// reference executor; the simulator's functional mode reproduces them
// bit-exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cimflow/support/status.hpp"

namespace cimflow::graph {

/// Activation shape in NHWC order. Fully-connected activations use
/// {n, 1, 1, c}. `n` is the per-graph batch and is 1 inside the compiler
/// (batching is handled by the runtime pipeline).
struct Shape {
  std::int64_t n = 1;
  std::int64_t h = 1;
  std::int64_t w = 1;
  std::int64_t c = 1;

  std::int64_t elements() const noexcept { return n * h * w * c; }
  std::int64_t per_image() const noexcept { return h * w * c; }

  bool operator==(const Shape&) const = default;

  std::string to_string() const {
    return "[" + std::to_string(n) + "," + std::to_string(h) + "," +
           std::to_string(w) + "," + std::to_string(c) + "]";
  }
};

/// Dense INT8 tensor in NHWC layout.
class TensorI8 {
 public:
  TensorI8() = default;
  explicit TensorI8(Shape shape)
      : shape_(shape), data_(static_cast<std::size_t>(shape.elements()), 0) {}

  const Shape& shape() const noexcept { return shape_; }
  std::int64_t size() const noexcept { return static_cast<std::int64_t>(data_.size()); }

  std::int8_t* data() noexcept { return data_.data(); }
  const std::int8_t* data() const noexcept { return data_.data(); }

  std::int8_t& at(std::int64_t n, std::int64_t h, std::int64_t w, std::int64_t c) {
    return data_[static_cast<std::size_t>(index(n, h, w, c))];
  }
  std::int8_t at(std::int64_t n, std::int64_t h, std::int64_t w, std::int64_t c) const {
    return data_[static_cast<std::size_t>(index(n, h, w, c))];
  }

  std::int64_t index(std::int64_t n, std::int64_t h, std::int64_t w,
                     std::int64_t c) const {
    CIMFLOW_CHECK(n >= 0 && n < shape_.n && h >= 0 && h < shape_.h && w >= 0 &&
                      w < shape_.w && c >= 0 && c < shape_.c,
                  "tensor index out of range");
    return ((n * shape_.h + h) * shape_.w + w) * shape_.c + c;
  }

  bool operator==(const TensorI8&) const = default;

 private:
  Shape shape_;
  std::vector<std::int8_t> data_;
};

/// Dense INT32 tensor (accumulator precision), same layout rules.
class TensorI32 {
 public:
  TensorI32() = default;
  explicit TensorI32(Shape shape)
      : shape_(shape), data_(static_cast<std::size_t>(shape.elements()), 0) {}

  const Shape& shape() const noexcept { return shape_; }
  std::int32_t* data() noexcept { return data_.data(); }
  const std::int32_t* data() const noexcept { return data_.data(); }

  std::int32_t& at(std::int64_t n, std::int64_t h, std::int64_t w, std::int64_t c) {
    return data_[static_cast<std::size_t>(
        ((n * shape_.h + h) * shape_.w + w) * shape_.c + c)];
  }

 private:
  Shape shape_;
  std::vector<std::int32_t> data_;
};

}  // namespace cimflow::graph
