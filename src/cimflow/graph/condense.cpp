#include "cimflow/graph/condense.hpp"

#include <algorithm>
#include <set>

#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::graph {

CondensedGraph CondensedGraph::build(const Graph& graph) {
  graph.verify();
  CondensedGraph cg;
  cg.graph_ = &graph;
  cg.node_to_group_.assign(static_cast<std::size_t>(graph.node_count()), -1);

  auto new_group = [&cg](NodeId node, bool is_input) -> Group& {
    Group group;
    group.id = static_cast<GroupId>(cg.groups_.size());
    group.is_input = is_input;
    group.nodes.push_back(node);
    cg.groups_.push_back(std::move(group));
    cg.node_to_group_[static_cast<std::size_t>(node)] = cg.groups_.back().id;
    return cg.groups_.back();
  };

  for (NodeId id : graph.topo_order()) {
    const Node& node = graph.node(id);
    if (node.kind == OpKind::kInput) {
      Group& group = new_group(id, /*is_input=*/true);
      group.name = node.name;
      continue;
    }
    if (node.is_mvm()) {
      Group& group = new_group(id, /*is_input=*/false);
      group.anchor = id;
      group.name = node.name;
      continue;
    }
    if (node.kind == OpKind::kMaxPool || node.kind == OpKind::kAvgPool ||
        node.kind == OpKind::kGlobalAvgPool) {
      // Pooling reduces across spatial positions, so it cannot share its
      // producer's position striping — it becomes its own (vector-only)
      // condensed operator.
      Group& group = new_group(id, /*is_input=*/false);
      group.name = node.name;
      continue;
    }
    // Non-MVM: join the group of the most recent producer (largest group id)
    // — keeps group ids topologically ordered and fuses auxiliary operators
    // with the MVM that feeds them.
    GroupId target = -1;
    for (NodeId input : node.inputs) {
      target = std::max(target, cg.node_to_group_[static_cast<std::size_t>(input)]);
    }
    CIMFLOW_CHECK(target >= 0, "non-input node with no grouped producer");
    Group& group = cg.groups_[static_cast<std::size_t>(target)];
    if (group.is_input) {
      // Auxiliary op directly on a graph input: give it its own vector-only
      // group rather than fusing compute into the input placeholder.
      Group& fresh = new_group(id, /*is_input=*/false);
      fresh.name = node.name;
      continue;
    }
    group.nodes.push_back(id);
    cg.node_to_group_[static_cast<std::size_t>(id)] = group.id;
  }

  // Group edges + per-group statistics.
  for (Group& group : cg.groups_) {
    std::set<GroupId> preds;
    std::set<NodeId> external_inputs;
    for (NodeId member : group.nodes) {
      const Node& node = graph.node(member);
      group.weight_bytes += node.weight_bytes();
      group.macs += node.macs();
      for (NodeId input : node.inputs) {
        const GroupId pg = cg.node_to_group_[static_cast<std::size_t>(input)];
        if (pg != group.id) {
          preds.insert(pg);
          external_inputs.insert(input);
        }
      }
    }
    group.preds.assign(preds.begin(), preds.end());
    for (GroupId p : group.preds) {
      cg.groups_[static_cast<std::size_t>(p)].succs.push_back(group.id);
    }
    for (NodeId input : external_inputs) {
      group.in_bytes += graph.node(input).out_shape.per_image();
    }
    // Bytes this group exports: every member tensor consumed outside the
    // group (or the graph output itself).
    std::set<NodeId> exported;
    for (NodeId member : group.nodes) {
      const Node& node = graph.node(member);
      const bool is_output = (member == graph.output());
      bool used_outside = is_output;
      for (NodeId user : node.users) {
        if (cg.node_to_group_[static_cast<std::size_t>(user)] != group.id) {
          used_outside = true;
        }
      }
      if (used_outside) exported.insert(member);
    }
    for (NodeId node : exported) {
      group.out_bytes += graph.node(node).out_shape.per_image();
    }
  }
  return cg;
}

const Group& CondensedGraph::group(GroupId id) const {
  CIMFLOW_CHECK(id >= 0 && id < size(), "group id out of range");
  return groups_[static_cast<std::size_t>(id)];
}

GroupId CondensedGraph::group_of(NodeId node) const {
  CIMFLOW_CHECK(node >= 0 &&
                    node < static_cast<NodeId>(node_to_group_.size()),
                "node id out of range");
  return node_to_group_[static_cast<std::size_t>(node)];
}

std::vector<GroupId> CondensedGraph::compute_order() const {
  std::vector<GroupId> order;
  for (const Group& group : groups_) {
    if (!group.is_input) order.push_back(group.id);
  }
  return order;
}

std::string CondensedGraph::summary() const {
  std::int64_t mvm_groups = 0;
  for (const Group& g : groups_) {
    if (g.anchor != kInvalidNode) ++mvm_groups;
  }
  return strprintf("%s condensed: %lld groups (%lld MVM-anchored)",
                   graph_->name().c_str(), (long long)size(), (long long)mvm_groups);
}

}  // namespace cimflow::graph
