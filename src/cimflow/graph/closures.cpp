#include "cimflow/graph/closures.hpp"

#include <algorithm>
#include <unordered_set>

namespace cimflow::graph {
namespace {

bool bitset_less(const DynBitset& a, const DynBitset& b) {
  const std::size_t ca = a.count();
  const std::size_t cb = b.count();
  if (ca != cb) return ca < cb;
  // Same popcount: compare index sequences lexicographically.
  std::size_t ia = a.find_first();
  std::size_t ib = b.find_first();
  while (ia < a.size() && ib < b.size()) {
    if (ia != ib) return ia < ib;
    ia = a.find_next(ia);
    ib = b.find_next(ib);
  }
  return ib < b.size();
}

std::vector<DynBitset> prefix_closures(
    const std::vector<std::vector<std::int32_t>>& preds) {
  const std::size_t n = preds.size();
  std::vector<DynBitset> out;
  out.reserve(n + 1);
  DynBitset acc(n);
  out.push_back(acc);
  for (std::size_t i = 0; i < n; ++i) {
    acc.set(i);
    out.push_back(acc);
  }
  return out;
}

}  // namespace

std::vector<DynBitset> enumerate_closures(
    const std::vector<std::vector<std::int32_t>>& preds, std::size_t limit,
    bool* truncated) {
  const std::size_t n = preds.size();
  if (truncated != nullptr) *truncated = false;

  // Breadth-first expansion over the ideal lattice with hash dedup: from
  // each known downset, adding any element whose predecessors are already
  // inside yields another downset; every downset is reachable this way.
  std::unordered_set<DynBitset, DynBitsetHash> seen;
  std::vector<DynBitset> frontier;
  frontier.emplace_back(n);
  seen.insert(frontier.back());

  for (std::size_t cursor = 0; cursor < frontier.size(); ++cursor) {
    const DynBitset current = frontier[cursor];  // copy: frontier reallocates
    for (std::size_t g = 0; g < n; ++g) {
      if (current.test(g)) continue;
      bool ready = true;
      for (std::int32_t p : preds[g]) {
        if (!current.test(static_cast<std::size_t>(p))) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      DynBitset next = current;
      next.set(g);
      if (seen.insert(next).second) {
        frontier.push_back(std::move(next));
        if (frontier.size() > limit) {
          if (truncated != nullptr) *truncated = true;
          return prefix_closures(preds);
        }
      }
    }
  }

  std::sort(frontier.begin(), frontier.end(), bitset_less);
  return frontier;
}

}  // namespace cimflow::graph
