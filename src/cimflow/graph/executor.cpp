#include "cimflow/graph/executor.hpp"

#include <algorithm>

#include "cimflow/support/numeric.hpp"
#include "cimflow/support/rng.hpp"
#include "cimflow/support/status.hpp"

namespace cimflow::graph {
namespace {

std::int8_t requantize(std::int64_t acc, int shift) {
  return saturate_int8(rounding_shift_right(acc, shift));
}

/// Rounded integer division (ties away from zero) for average pooling.
std::int32_t rounded_div(std::int64_t sum, std::int64_t area) {
  if (sum >= 0) return static_cast<std::int32_t>((sum + area / 2) / area);
  return static_cast<std::int32_t>(-((-sum + area / 2) / area));
}

TensorI8 run_conv(const Node& node, const TensorI8& in) {
  const ConvAttrs& a = std::get<ConvAttrs>(node.attrs);
  const Shape is = in.shape();
  TensorI8 out(node.out_shape);
  const std::vector<std::int8_t>& w = *node.weights;
  const std::vector<std::int32_t>& bias = *node.bias;
  for (std::int64_t n = 0; n < out.shape().n; ++n) {
    for (std::int64_t p = 0; p < out.shape().h; ++p) {
      for (std::int64_t q = 0; q < out.shape().w; ++q) {
        for (std::int64_t k = 0; k < a.out_channels; ++k) {
          std::int64_t acc = bias[static_cast<std::size_t>(k)];
          for (std::int64_t r = 0; r < a.kernel; ++r) {
            const std::int64_t ih = p * a.stride + r - a.pad;
            if (ih < 0 || ih >= is.h) continue;
            for (std::int64_t s = 0; s < a.kernel; ++s) {
              const std::int64_t iw = q * a.stride + s - a.pad;
              if (iw < 0 || iw >= is.w) continue;
              for (std::int64_t c = 0; c < is.c; ++c) {
                const std::int64_t widx = ((k * a.kernel + r) * a.kernel + s) * is.c + c;
                acc += static_cast<std::int64_t>(w[static_cast<std::size_t>(widx)]) *
                       in.at(n, ih, iw, c);
              }
            }
          }
          out.at(n, p, q, k) = requantize(acc, node.quant.shift);
        }
      }
    }
  }
  return out;
}

TensorI8 run_depthwise(const Node& node, const TensorI8& in) {
  const ConvAttrs& a = std::get<ConvAttrs>(node.attrs);
  const Shape is = in.shape();
  TensorI8 out(node.out_shape);
  const std::vector<std::int8_t>& w = *node.weights;
  const std::vector<std::int32_t>& bias = *node.bias;
  for (std::int64_t n = 0; n < out.shape().n; ++n) {
    for (std::int64_t p = 0; p < out.shape().h; ++p) {
      for (std::int64_t q = 0; q < out.shape().w; ++q) {
        for (std::int64_t c = 0; c < is.c; ++c) {
          std::int64_t acc = bias[static_cast<std::size_t>(c)];
          for (std::int64_t r = 0; r < a.kernel; ++r) {
            const std::int64_t ih = p * a.stride + r - a.pad;
            if (ih < 0 || ih >= is.h) continue;
            for (std::int64_t s = 0; s < a.kernel; ++s) {
              const std::int64_t iw = q * a.stride + s - a.pad;
              if (iw < 0 || iw >= is.w) continue;
              const std::int64_t widx = (c * a.kernel + r) * a.kernel + s;
              acc += static_cast<std::int64_t>(w[static_cast<std::size_t>(widx)]) *
                     in.at(n, ih, iw, c);
            }
          }
          out.at(n, p, q, c) = requantize(acc, node.quant.shift);
        }
      }
    }
  }
  return out;
}

TensorI8 run_fc(const Node& node, const TensorI8& in) {
  const std::int64_t out_features = std::get<FcAttrs>(node.attrs).out_features;
  const std::int64_t in_features = in.shape().per_image();
  TensorI8 out(node.out_shape);
  const std::vector<std::int8_t>& w = *node.weights;
  const std::vector<std::int32_t>& bias = *node.bias;
  for (std::int64_t n = 0; n < in.shape().n; ++n) {
    const std::int8_t* x = in.data() + n * in_features;
    for (std::int64_t o = 0; o < out_features; ++o) {
      std::int64_t acc = bias[static_cast<std::size_t>(o)];
      const std::int8_t* row = w.data() + o * in_features;
      for (std::int64_t i = 0; i < in_features; ++i) {
        acc += static_cast<std::int64_t>(row[i]) * x[i];
      }
      out.at(n, 0, 0, o) = requantize(acc, node.quant.shift);
    }
  }
  return out;
}

TensorI8 run_pool(const Node& node, const TensorI8& in, bool average) {
  const PoolAttrs& a = std::get<PoolAttrs>(node.attrs);
  const Shape is = in.shape();
  TensorI8 out(node.out_shape);
  const std::int64_t area = a.kernel * a.kernel;
  for (std::int64_t n = 0; n < out.shape().n; ++n) {
    for (std::int64_t p = 0; p < out.shape().h; ++p) {
      for (std::int64_t q = 0; q < out.shape().w; ++q) {
        for (std::int64_t c = 0; c < is.c; ++c) {
          if (average) {
            std::int64_t sum = 0;  // zero padding contributes zero
            for (std::int64_t r = 0; r < a.kernel; ++r) {
              const std::int64_t ih = p * a.stride + r - a.pad;
              if (ih < 0 || ih >= is.h) continue;
              for (std::int64_t s = 0; s < a.kernel; ++s) {
                const std::int64_t iw = q * a.stride + s - a.pad;
                if (iw < 0 || iw >= is.w) continue;
                sum += in.at(n, ih, iw, c);
              }
            }
            out.at(n, p, q, c) = saturate_int8(rounded_div(sum, area));
          } else {
            std::int32_t best = -128;  // -inf padding for max pooling
            for (std::int64_t r = 0; r < a.kernel; ++r) {
              const std::int64_t ih = p * a.stride + r - a.pad;
              if (ih < 0 || ih >= is.h) continue;
              for (std::int64_t s = 0; s < a.kernel; ++s) {
                const std::int64_t iw = q * a.stride + s - a.pad;
                if (iw < 0 || iw >= is.w) continue;
                best = std::max<std::int32_t>(best, in.at(n, ih, iw, c));
              }
            }
            out.at(n, p, q, c) = static_cast<std::int8_t>(best);
          }
        }
      }
    }
  }
  return out;
}

TensorI8 run_global_avg_pool(const Node& node, const TensorI8& in) {
  const Shape is = in.shape();
  TensorI8 out(node.out_shape);
  const std::int64_t area = is.h * is.w;
  for (std::int64_t n = 0; n < is.n; ++n) {
    for (std::int64_t c = 0; c < is.c; ++c) {
      std::int64_t sum = 0;
      for (std::int64_t h = 0; h < is.h; ++h) {
        for (std::int64_t w = 0; w < is.w; ++w) sum += in.at(n, h, w, c);
      }
      out.at(n, 0, 0, c) = saturate_int8(rounded_div(sum, area));
    }
  }
  return out;
}

}  // namespace

TensorI8 ReferenceExecutor::run(const std::vector<TensorI8>& inputs) {
  graph_->verify();
  if (inputs.size() != graph_->inputs().size()) {
    raise(ErrorCode::kInvalidArgument, "input tensor count mismatch");
  }
  values_.clear();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const NodeId id = graph_->inputs()[i];
    if (!(inputs[i].shape() == graph_->node(id).out_shape)) {
      raise(ErrorCode::kInvalidArgument, "input tensor shape mismatch");
    }
    values_[id] = inputs[i];
  }
  for (NodeId id : graph_->topo_order()) {
    const Node& node = graph_->node(id);
    if (node.kind == OpKind::kInput) continue;
    values_[id] = evaluate(node);
  }
  return values_.at(graph_->output());
}

const TensorI8& ReferenceExecutor::value(NodeId node) const {
  auto it = values_.find(node);
  CIMFLOW_CHECK(it != values_.end(), "node value not computed");
  return it->second;
}

TensorI8 ReferenceExecutor::evaluate(const Node& node) {
  const TensorI8& in0 = values_.at(node.inputs.at(0));
  switch (node.kind) {
    case OpKind::kConv2d: return run_conv(node, in0);
    case OpKind::kDepthwiseConv2d: return run_depthwise(node, in0);
    case OpKind::kFullyConnected: return run_fc(node, in0);
    case OpKind::kRelu: {
      TensorI8 out(node.out_shape);
      const std::int8_t hi = node.relu().hi;
      for (std::int64_t i = 0; i < in0.size(); ++i) {
        out.data()[i] = std::clamp<std::int8_t>(in0.data()[i], 0, hi);
      }
      return out;
    }
    case OpKind::kAdd: {
      const TensorI8& in1 = values_.at(node.inputs.at(1));
      TensorI8 out(node.out_shape);
      for (std::int64_t i = 0; i < in0.size(); ++i) {
        out.data()[i] = saturate_int8(static_cast<std::int32_t>(in0.data()[i]) +
                                      static_cast<std::int32_t>(in1.data()[i]));
      }
      return out;
    }
    case OpKind::kMaxPool: return run_pool(node, in0, /*average=*/false);
    case OpKind::kAvgPool: return run_pool(node, in0, /*average=*/true);
    case OpKind::kGlobalAvgPool: return run_global_avg_pool(node, in0);
    case OpKind::kLut: {
      TensorI8 out(node.out_shape);
      const auto& table = node.lut().table;
      for (std::int64_t i = 0; i < in0.size(); ++i) {
        out.data()[i] = table[static_cast<std::uint8_t>(in0.data()[i])];
      }
      return out;
    }
    case OpKind::kScaleChannels: {
      const TensorI8& scales = values_.at(node.inputs.at(1));
      TensorI8 out(node.out_shape);
      const std::int64_t c = node.out_shape.c;
      const std::int64_t per_image = node.out_shape.per_image();
      for (std::int64_t i = 0; i < in0.size(); ++i) {
        const std::int64_t image = i / per_image;
        const std::int64_t ch = i % c;
        const std::int64_t product = static_cast<std::int64_t>(in0.data()[i]) *
                                     scales.data()[image * c + ch];
        out.data()[i] = requantize(product, node.quant.shift);
      }
      return out;
    }
    case OpKind::kFlatten: {
      TensorI8 out(node.out_shape);
      std::copy(in0.data(), in0.data() + in0.size(), out.data());
      return out;
    }
    case OpKind::kInput: break;
  }
  raise(ErrorCode::kInternal, "unhandled op kind in executor");
}

TensorI8 random_tensor(Shape shape, std::uint64_t seed) {
  TensorI8 tensor(shape);
  SplitMix64 rng(seed);
  for (std::int64_t i = 0; i < tensor.size(); ++i) tensor.data()[i] = rng.next_int8();
  return tensor;
}

}  // namespace cimflow::graph
