// Golden reference executor: bit-exact INT8 semantics for every graph
// operator. This is the oracle the compiler's functional validation stage
// (paper Fig. 2 "Exec. Result Check") compares simulator output against.
#pragma once

#include <map>
#include <vector>

#include "cimflow/graph/graph.hpp"

namespace cimflow::graph {

class ReferenceExecutor {
 public:
  explicit ReferenceExecutor(const Graph& graph) : graph_(&graph) {}

  /// Runs the whole graph for the given inputs (one tensor per graph input,
  /// in graph-input order). Returns the output node's tensor.
  TensorI8 run(const std::vector<TensorI8>& inputs);

  /// Tensor produced by `node` during the last run() (for per-layer checks).
  const TensorI8& value(NodeId node) const;

 private:
  TensorI8 evaluate(const Node& node);

  const Graph* graph_;
  std::map<NodeId, TensorI8> values_;
};

/// Convenience: deterministic random input tensor for tests/validation.
TensorI8 random_tensor(Shape shape, std::uint64_t seed);

}  // namespace cimflow::graph
