// Textual model description format — the repository's equivalent of the
// paper's ONNX input (Fig. 2 "Model Desc. / ONNX Format"): a line-oriented
// serialization of the computation graph (topology, operator attributes,
// LUT tables inline as hex, and the synthetic-parameter seed). Weights are
// regenerated deterministically from the stored seed on load.
//
//   # cimflow-graph v1
//   graph resnet18
//   seed 20911
//   input x 1 224 224 3
//   conv2d conv1 x 64 7 2 3
//   relu r1 conv1 127
//   ...
//   output fc
#pragma once

#include <string>

#include "cimflow/graph/graph.hpp"

namespace cimflow::graph {

/// Serializes the graph's structure (not its weight values — those are
/// reproduced from `seed` at load time).
std::string save_text(const Graph& graph, std::uint64_t seed);

/// Parses a model description; throws Error(kParseError) with a line number
/// on malformed input. The returned graph has parameters randomized from
/// the file's seed and passes verify().
Graph load_text(const std::string& text);

/// File convenience wrappers.
void save_text_file(const Graph& graph, std::uint64_t seed, const std::string& path);
Graph load_text_file(const std::string& path);

}  // namespace cimflow::graph
