#include "cimflow/graph/serialize.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "cimflow/support/io.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::graph {
namespace {

std::string hex_of(const std::array<std::int8_t, 256>& table) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(512);
  for (std::int8_t v : table) {
    const auto b = static_cast<std::uint8_t>(v);
    out += digits[b >> 4];
    out += digits[b & 0xF];
  }
  return out;
}

std::array<std::int8_t, 256> table_of(const std::string& hex, std::size_t line) {
  if (hex.size() != 512) {
    raise(ErrorCode::kParseError,
          strprintf("model line %zu: LUT must be 512 hex digits", line));
  }
  auto nibble = [&](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    raise(ErrorCode::kParseError, strprintf("model line %zu: bad hex digit", line));
  };
  std::array<std::int8_t, 256> table{};
  for (std::size_t i = 0; i < 256; ++i) {
    table[i] = static_cast<std::int8_t>((nibble(hex[2 * i]) << 4) | nibble(hex[2 * i + 1]));
  }
  return table;
}

}  // namespace

std::string save_text(const Graph& graph, std::uint64_t seed) {
  graph.verify();
  std::string out = "# cimflow-graph v1\n";
  out += "graph " + graph.name() + "\n";
  out += strprintf("seed %llu\n", (unsigned long long)seed);
  for (const Node& node : graph.nodes()) {
    switch (node.kind) {
      case OpKind::kInput:
        out += strprintf("input %s %lld %lld %lld %lld\n", node.name.c_str(),
                         (long long)node.out_shape.n, (long long)node.out_shape.h,
                         (long long)node.out_shape.w, (long long)node.out_shape.c);
        break;
      case OpKind::kConv2d: {
        const ConvAttrs& a = node.conv();
        out += strprintf("conv2d %s %s %lld %lld %lld %lld\n", node.name.c_str(),
                         graph.node(node.inputs[0]).name.c_str(),
                         (long long)a.out_channels, (long long)a.kernel,
                         (long long)a.stride, (long long)a.pad);
        break;
      }
      case OpKind::kDepthwiseConv2d: {
        const ConvAttrs& a = node.conv();
        out += strprintf("dwconv %s %s %lld %lld %lld\n", node.name.c_str(),
                         graph.node(node.inputs[0]).name.c_str(), (long long)a.kernel,
                         (long long)a.stride, (long long)a.pad);
        break;
      }
      case OpKind::kFullyConnected:
        out += strprintf("fc %s %s %lld\n", node.name.c_str(),
                         graph.node(node.inputs[0]).name.c_str(),
                         (long long)node.fc().out_features);
        break;
      case OpKind::kRelu:
        out += strprintf("relu %s %s %d\n", node.name.c_str(),
                         graph.node(node.inputs[0]).name.c_str(),
                         static_cast<int>(node.relu().hi));
        break;
      case OpKind::kAdd:
        out += strprintf("add %s %s %s\n", node.name.c_str(),
                         graph.node(node.inputs[0]).name.c_str(),
                         graph.node(node.inputs[1]).name.c_str());
        break;
      case OpKind::kMaxPool:
      case OpKind::kAvgPool: {
        const PoolAttrs& a = node.pool();
        out += strprintf("%s %s %s %lld %lld %lld\n",
                         node.kind == OpKind::kMaxPool ? "maxpool" : "avgpool",
                         node.name.c_str(), graph.node(node.inputs[0]).name.c_str(),
                         (long long)a.kernel, (long long)a.stride, (long long)a.pad);
        break;
      }
      case OpKind::kGlobalAvgPool:
        out += strprintf("gap %s %s\n", node.name.c_str(),
                         graph.node(node.inputs[0]).name.c_str());
        break;
      case OpKind::kLut:
        out += strprintf("lut %s %s %s %s\n", node.name.c_str(),
                         graph.node(node.inputs[0]).name.c_str(),
                         node.lut().name.empty() ? "anon" : node.lut().name.c_str(),
                         hex_of(node.lut().table).c_str());
        break;
      case OpKind::kScaleChannels:
        out += strprintf("scalech %s %s %s\n", node.name.c_str(),
                         graph.node(node.inputs[0]).name.c_str(),
                         graph.node(node.inputs[1]).name.c_str());
        break;
      case OpKind::kFlatten:
        out += strprintf("flatten %s %s\n", node.name.c_str(),
                         graph.node(node.inputs[0]).name.c_str());
        break;
    }
  }
  out += "output " + graph.node(graph.output()).name + "\n";
  return out;
}

Graph load_text(const std::string& text) {
  std::map<std::string, NodeId> by_name;
  Graph graph;
  bool named = false;
  std::uint64_t seed = 0;
  bool output_set = false;
  std::size_t line_number = 0;

  auto resolve = [&](const std::string& name) -> NodeId {
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      raise(ErrorCode::kParseError,
            strprintf("model line %zu: unknown node '%s'", line_number, name.c_str()));
    }
    return it->second;
  };
  auto as_int = [&](const std::string& token) -> std::int64_t {
    try {
      std::size_t used = 0;
      const long long v = std::stoll(token, &used);
      if (used != token.size()) throw std::invalid_argument(token);
      return v;
    } catch (const std::exception&) {
      raise(ErrorCode::kParseError,
            strprintf("model line %zu: bad integer '%s'", line_number, token.c_str()));
    }
  };

  for (const std::string& raw : split(text, '\n', /*keep_empty=*/true)) {
    ++line_number;
    std::string body(trim(raw));
    if (body.empty() || body[0] == '#') continue;
    const std::vector<std::string> tok = split(body, ' ');
    const std::string& kind = tok[0];
    auto need = [&](std::size_t n) {
      if (tok.size() != n) {
        raise(ErrorCode::kParseError,
              strprintf("model line %zu: '%s' expects %zu fields", line_number,
                        kind.c_str(), n - 1));
      }
    };
    if (kind == "graph") {
      need(2);
      if (named) raise(ErrorCode::kParseError, "duplicate 'graph' line");
      graph = Graph(tok[1]);
      named = true;
    } else if (kind == "seed") {
      need(2);
      seed = static_cast<std::uint64_t>(as_int(tok[1]));
    } else if (kind == "input") {
      need(6);
      by_name[tok[1]] = graph.add_input(
          Shape{as_int(tok[2]), as_int(tok[3]), as_int(tok[4]), as_int(tok[5])}, tok[1]);
    } else if (kind == "conv2d") {
      need(7);
      by_name[tok[1]] = graph.add_conv2d(
          resolve(tok[2]), ConvAttrs{as_int(tok[3]), as_int(tok[4]), as_int(tok[5]),
                                     as_int(tok[6])},
          tok[1]);
    } else if (kind == "dwconv") {
      need(6);
      by_name[tok[1]] = graph.add_depthwise_conv2d(resolve(tok[2]), as_int(tok[3]),
                                                   as_int(tok[4]), as_int(tok[5]), tok[1]);
    } else if (kind == "fc") {
      need(4);
      by_name[tok[1]] = graph.add_fully_connected(resolve(tok[2]), as_int(tok[3]), tok[1]);
    } else if (kind == "relu") {
      need(4);
      by_name[tok[1]] = graph.add_relu(resolve(tok[2]),
                                       static_cast<std::int8_t>(as_int(tok[3])), tok[1]);
    } else if (kind == "add") {
      need(4);
      by_name[tok[1]] = graph.add_add(resolve(tok[2]), resolve(tok[3]), tok[1]);
    } else if (kind == "maxpool" || kind == "avgpool") {
      need(6);
      const PoolAttrs attrs{as_int(tok[3]), as_int(tok[4]), as_int(tok[5])};
      by_name[tok[1]] = kind == "maxpool"
                            ? graph.add_max_pool(resolve(tok[2]), attrs, tok[1])
                            : graph.add_avg_pool(resolve(tok[2]), attrs, tok[1]);
    } else if (kind == "gap") {
      need(3);
      by_name[tok[1]] = graph.add_global_avg_pool(resolve(tok[2]), tok[1]);
    } else if (kind == "lut") {
      need(5);
      LutAttrs attrs;
      attrs.name = tok[3];
      attrs.table = table_of(tok[4], line_number);
      by_name[tok[1]] = graph.add_lut(resolve(tok[2]), std::move(attrs), tok[1]);
    } else if (kind == "scalech") {
      need(4);
      by_name[tok[1]] = graph.add_scale_channels(resolve(tok[2]), resolve(tok[3]), tok[1]);
    } else if (kind == "flatten") {
      need(3);
      by_name[tok[1]] = graph.add_flatten(resolve(tok[2]), tok[1]);
    } else if (kind == "output") {
      need(2);
      graph.set_output(resolve(tok[1]));
      output_set = true;
    } else {
      raise(ErrorCode::kParseError,
            strprintf("model line %zu: unknown directive '%s'", line_number,
                      kind.c_str()));
    }
  }
  if (!output_set) raise(ErrorCode::kParseError, "model has no 'output' line");
  graph.randomize_parameters(seed);
  graph.verify();
  return graph;
}

void save_text_file(const Graph& graph, std::uint64_t seed, const std::string& path) {
  write_text_file(path, save_text(graph, seed));
}

Graph load_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) raise(ErrorCode::kParseError, "cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_text(buffer.str());
}

}  // namespace cimflow::graph
