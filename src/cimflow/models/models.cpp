#include "cimflow/models/models.hpp"

#include <cmath>

#include "cimflow/support/numeric.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::models {

using graph::ConvAttrs;
using graph::Graph;
using graph::LutAttrs;
using graph::NodeId;
using graph::PoolAttrs;
using graph::Shape;

namespace {

constexpr std::int8_t kRelu6Hi = 110;  ///< quantized ReLU6 clamp level

LutAttrs make_lut(const char* name, double (*fn)(double)) {
  LutAttrs attrs;
  attrs.name = name;
  for (int i = 0; i < 256; ++i) {
    const auto raw = static_cast<std::int8_t>(i);
    const double x = static_cast<double>(raw) / 16.0;  // scale 1/16
    const double y = fn(x);
    attrs.table[static_cast<std::size_t>(i)] =
        saturate_int8(static_cast<std::int32_t>(std::lround(y * 16.0)));
  }
  return attrs;
}

double silu_fn(double x) { return x / (1.0 + std::exp(-x)); }
double sigmoid_fn(double x) { return 127.0 / 16.0 / (1.0 + std::exp(-x)); }
double hswish_fn(double x) {
  const double r = std::min(std::max(x + 3.0, 0.0), 6.0);
  return x * r / 6.0;
}

}  // namespace

LutAttrs silu_lut() { return make_lut("silu", silu_fn); }
LutAttrs sigmoid_lut() { return make_lut("sigmoid", sigmoid_fn); }
LutAttrs hswish_lut() { return make_lut("hswish", hswish_fn); }

Graph resnet18(const ModelOptions& opt) {
  Graph g("resnet18");
  NodeId x = g.add_input(Shape{1, opt.input_hw, opt.input_hw, opt.input_channels});
  x = g.add_conv2d(x, ConvAttrs{64, 7, 2, 3}, "conv1");
  x = g.add_relu(x);
  x = g.add_max_pool(x, PoolAttrs{3, 2, 1}, "maxpool");

  auto basic_block = [&g](NodeId in, std::int64_t channels, std::int64_t stride,
                          const std::string& name) {
    NodeId main = g.add_conv2d(in, ConvAttrs{channels, 3, stride, 1}, name + "_conv1");
    main = g.add_relu(main);
    main = g.add_conv2d(main, ConvAttrs{channels, 3, 1, 1}, name + "_conv2");
    NodeId skip = in;
    const bool reshape = stride != 1 || g.node(in).out_shape.c != channels;
    if (reshape) {
      skip = g.add_conv2d(in, ConvAttrs{channels, 1, stride, 0}, name + "_down");
    }
    NodeId out = g.add_add(main, skip, name + "_add");
    return g.add_relu(out, 127, name + "_relu");
  };

  const std::int64_t stage_channels[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    for (int block = 0; block < 2; ++block) {
      const std::int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      x = basic_block(x, stage_channels[stage], stride,
                      strprintf("layer%d_%d", stage + 1, block));
    }
  }
  x = g.add_global_avg_pool(x, "gap");
  x = g.add_fully_connected(x, opt.num_classes, "fc");
  g.set_output(x);
  g.randomize_parameters(opt.seed);
  g.verify();
  return g;
}

Graph vgg19(const ModelOptions& opt) {
  Graph g("vgg19");
  NodeId x = g.add_input(Shape{1, opt.input_hw, opt.input_hw, opt.input_channels});
  const std::vector<std::vector<std::int64_t>> stages = {
      {64, 64}, {128, 128}, {256, 256, 256, 256}, {512, 512, 512, 512},
      {512, 512, 512, 512}};
  int conv_index = 0;
  for (std::size_t stage = 0; stage < stages.size(); ++stage) {
    for (std::int64_t channels : stages[stage]) {
      x = g.add_conv2d(x, ConvAttrs{channels, 3, 1, 1}, strprintf("conv%d", ++conv_index));
      x = g.add_relu(x);
    }
    x = g.add_max_pool(x, PoolAttrs{2, 2, 0}, strprintf("pool%zu", stage + 1));
  }
  x = g.add_flatten(x, "flatten");
  x = g.add_fully_connected(x, 4096, "fc1");
  x = g.add_relu(x);
  x = g.add_fully_connected(x, 4096, "fc2");
  x = g.add_relu(x);
  x = g.add_fully_connected(x, opt.num_classes, "fc3");
  g.set_output(x);
  g.randomize_parameters(opt.seed);
  g.verify();
  return g;
}

Graph mobilenet_v2(const ModelOptions& opt) {
  Graph g("mobilenetv2");
  NodeId x = g.add_input(Shape{1, opt.input_hw, opt.input_hw, opt.input_channels});
  x = g.add_conv2d(x, ConvAttrs{32, 3, 2, 1}, "stem");
  x = g.add_relu(x, kRelu6Hi);

  int block_index = 0;
  auto inverted_residual = [&](NodeId in, std::int64_t expand, std::int64_t out_c,
                               std::int64_t stride) {
    const std::string name = strprintf("block%d", block_index++);
    const std::int64_t in_c = g.node(in).out_shape.c;
    NodeId h = in;
    if (expand != 1) {
      h = g.add_conv2d(h, ConvAttrs{in_c * expand, 1, 1, 0}, name + "_expand");
      h = g.add_relu(h, kRelu6Hi);
    }
    h = g.add_depthwise_conv2d(h, 3, stride, 1, name + "_dw");
    h = g.add_relu(h, kRelu6Hi);
    h = g.add_conv2d(h, ConvAttrs{out_c, 1, 1, 0}, name + "_project");
    if (stride == 1 && in_c == out_c) {
      h = g.add_add(h, in, name + "_add");
    }
    return h;
  };

  struct Stage { std::int64_t t, c, n, s; };
  const Stage stages[] = {{1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2},
                          {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1}};
  for (const Stage& st : stages) {
    for (std::int64_t i = 0; i < st.n; ++i) {
      x = inverted_residual(x, st.t, st.c, i == 0 ? st.s : 1);
    }
  }
  x = g.add_conv2d(x, ConvAttrs{1280, 1, 1, 0}, "head");
  x = g.add_relu(x, kRelu6Hi);
  x = g.add_global_avg_pool(x, "gap");
  x = g.add_fully_connected(x, opt.num_classes, "fc");
  g.set_output(x);
  g.randomize_parameters(opt.seed);
  g.verify();
  return g;
}

Graph efficientnet_b0(const ModelOptions& opt) {
  Graph g("efficientnetb0");
  const LutAttrs silu = silu_lut();
  const LutAttrs sigmoid = sigmoid_lut();
  NodeId x = g.add_input(Shape{1, opt.input_hw, opt.input_hw, opt.input_channels});
  x = g.add_conv2d(x, ConvAttrs{32, 3, 2, 1}, "stem");
  x = g.add_lut(x, silu, "stem_silu");

  int block_index = 0;
  auto mbconv = [&](NodeId in, std::int64_t expand, std::int64_t out_c,
                    std::int64_t kernel, std::int64_t stride) {
    const std::string name = strprintf("mb%d", block_index++);
    const std::int64_t in_c = g.node(in).out_shape.c;
    const std::int64_t mid_c = in_c * expand;
    NodeId h = in;
    if (expand != 1) {
      h = g.add_conv2d(h, ConvAttrs{mid_c, 1, 1, 0}, name + "_expand");
      h = g.add_lut(h, silu, name + "_expand_silu");
    }
    h = g.add_depthwise_conv2d(h, kernel, stride, kernel / 2, name + "_dw");
    h = g.add_lut(h, silu, name + "_dw_silu");
    // Squeeze-and-excitation on the expanded features; the squeeze width is
    // derived from the block *input* channels (EfficientNet convention).
    const std::int64_t se_c = std::max<std::int64_t>(1, in_c / 4);
    NodeId se = g.add_global_avg_pool(h, name + "_se_squeeze");
    se = g.add_fully_connected(se, se_c, name + "_se_reduce");
    se = g.add_lut(se, silu, name + "_se_silu");
    se = g.add_fully_connected(se, mid_c, name + "_se_expand");
    se = g.add_lut(se, sigmoid, name + "_se_gate");
    h = g.add_scale_channels(h, se, name + "_se_scale");
    h = g.add_conv2d(h, ConvAttrs{out_c, 1, 1, 0}, name + "_project");
    if (stride == 1 && in_c == out_c) {
      h = g.add_add(h, in, name + "_add");
    }
    return h;
  };

  struct Stage { std::int64_t t, c, n, k, s; };
  const Stage stages[] = {{1, 16, 1, 3, 1}, {6, 24, 2, 3, 2}, {6, 40, 2, 5, 2},
                          {6, 80, 3, 3, 2}, {6, 112, 3, 5, 1}, {6, 192, 4, 5, 2},
                          {6, 320, 1, 3, 1}};
  for (const Stage& st : stages) {
    for (std::int64_t i = 0; i < st.n; ++i) {
      x = mbconv(x, st.t, st.c, st.k, i == 0 ? st.s : 1);
    }
  }
  x = g.add_conv2d(x, ConvAttrs{1280, 1, 1, 0}, "head");
  x = g.add_lut(x, silu, "head_silu");
  x = g.add_global_avg_pool(x, "gap");
  x = g.add_fully_connected(x, opt.num_classes, "fc");
  g.set_output(x);
  g.randomize_parameters(opt.seed);
  g.verify();
  return g;
}

Graph micro_cnn(const ModelOptions& opt) {
  Graph g("micro_cnn");
  const std::int64_t hw = opt.input_hw == 224 ? 8 : opt.input_hw;
  NodeId x = g.add_input(Shape{1, hw, hw, 8});
  x = g.add_conv2d(x, ConvAttrs{16, 3, 1, 1}, "conv1");
  x = g.add_relu(x);
  x = g.add_max_pool(x, PoolAttrs{2, 2, 0}, "pool");
  x = g.add_conv2d(x, ConvAttrs{24, 3, 1, 1}, "conv2");
  x = g.add_relu(x);
  x = g.add_global_avg_pool(x, "gap");
  x = g.add_fully_connected(x, opt.num_classes == 1000 ? 10 : opt.num_classes, "fc");
  g.set_output(x);
  g.randomize_parameters(opt.seed);
  g.verify();
  return g;
}

Graph build_model(const std::string& name, const ModelOptions& options) {
  if (name == "resnet18") return resnet18(options);
  if (name == "vgg19") return vgg19(options);
  if (name == "mobilenetv2") return mobilenet_v2(options);
  if (name == "efficientnetb0") return efficientnet_b0(options);
  if (name == "micro") return micro_cnn(options);
  raise(ErrorCode::kInvalidArgument, "unknown model: " + name);
}

std::vector<std::string> benchmark_suite() {
  return {"resnet18", "vgg19", "mobilenetv2", "efficientnetb0"};
}

}  // namespace cimflow::models
