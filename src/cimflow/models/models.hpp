// DNN workload builders for the paper's evaluation suite (Sec. IV-A):
// compute-intensive ResNet18 and VGG19, and compact depthwise-separable
// MobileNetV2 and EfficientNetB0. All models are INT8 (weights and
// activations); parameters are synthetic but deterministic (fixed seed), and
// layer topology matches the published architectures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cimflow/graph/graph.hpp"

namespace cimflow::models {

struct ModelOptions {
  std::int64_t input_hw = 224;     ///< square input resolution
  std::int64_t input_channels = 3;
  std::int64_t num_classes = 1000;
  std::uint64_t seed = 0x51AFu;    ///< synthetic parameter seed
};

/// ResNet18: 7x7 stem, 4 stages of basic blocks with identity/1x1-projected
/// residuals, global average pool, classifier.
graph::Graph resnet18(const ModelOptions& options = {});

/// VGG19: 16 3x3 convolutions in 5 pooled stages plus 3 FC layers
/// (the capacity-constraint stress case: ~139 MB of INT8 weights).
graph::Graph vgg19(const ModelOptions& options = {});

/// MobileNetV2: inverted residual bottlenecks with ReLU6 and linear
/// projections (~3.4 MB INT8 weights).
graph::Graph mobilenet_v2(const ModelOptions& options = {});

/// EfficientNetB0: MBConv blocks with squeeze-and-excitation and SiLU
/// activations (~5.2 MB INT8 weights).
graph::Graph efficientnet_b0(const ModelOptions& options = {});

/// Small CNN used by quickstart/tests: 2 convs + pool + GAP + FC on an
/// 8x8x8 input. Fits on a handful of cores and simulates in milliseconds.
graph::Graph micro_cnn(const ModelOptions& options = {});

/// Builds a benchmark model by name ("resnet18", "vgg19", "mobilenetv2",
/// "efficientnetb0", "micro"); throws Error(kInvalidArgument) otherwise.
graph::Graph build_model(const std::string& name, const ModelOptions& options = {});

/// Names of the paper's four benchmark models in presentation order.
std::vector<std::string> benchmark_suite();

/// INT8 lookup tables for EfficientNet activations; the quantized domain
/// uses scale 1/16 (x_real = x_int8 / 16).
graph::LutAttrs silu_lut();
graph::LutAttrs sigmoid_lut();
graph::LutAttrs hswish_lut();

}  // namespace cimflow::models
