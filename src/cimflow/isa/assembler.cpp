#include "cimflow/isa/assembler.hpp"

#include <map>
#include <vector>

#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::isa {
namespace {

// Operand roles in textual order for each instruction form. Branch/jump
// relative-offset semantics: pc_next = pc + offset (offset 0 = self-loop),
// matching the paper's "JMP -26 // Loop back" style.
enum class Oper { kRd, kRs, kRt, kRe, kImm, kSRegField, kTarget };

std::vector<Oper> operand_layout(const InstructionDescriptor& d) {
  switch (static_cast<Opcode>(d.opcode)) {
    case Opcode::kCimMvm: return {Oper::kRs, Oper::kRt, Oper::kRe, Oper::kImm};
    case Opcode::kCimLoad: return {Oper::kRs, Oper::kRt};
    case Opcode::kCimCfg: return {Oper::kSRegField, Oper::kRs};
    case Opcode::kVecOp: return {Oper::kRd, Oper::kRs, Oper::kRt, Oper::kRe};
    case Opcode::kVecPool: return {Oper::kRd, Oper::kRs, Oper::kRe};
    case Opcode::kScOp: return {Oper::kRd, Oper::kRs, Oper::kRt};
    case Opcode::kScAddi:
    case Opcode::kScLw:
    case Opcode::kScSw: return {Oper::kRt, Oper::kRs, Oper::kImm};
    case Opcode::kMemCpy:
    case Opcode::kMemStride: return {Oper::kRs, Oper::kRt, Oper::kRd};
    case Opcode::kSend:
    case Opcode::kRecv: return {Oper::kRs, Oper::kRt, Oper::kRd, Oper::kImm};
    case Opcode::kBarrier: return {Oper::kImm};
    case Opcode::kJmp: return {Oper::kTarget};
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge: return {Oper::kRs, Oper::kRt, Oper::kTarget};
    case Opcode::kHalt:
    case Opcode::kNop: return {};
    case Opcode::kGLi:
    case Opcode::kGLih: return {Oper::kRt, Oper::kImm};
    default: break;
  }
  // Custom opcodes: derive a canonical layout from the encoding format.
  switch (d.format) {
    case Format::kCim: return {Oper::kRs, Oper::kRt, Oper::kRe, Oper::kImm};
    case Format::kVector: return {Oper::kRd, Oper::kRs, Oper::kRt, Oper::kRe};
    case Format::kScalarI: return {Oper::kRt, Oper::kRs, Oper::kImm};
    case Format::kComm: return {Oper::kRs, Oper::kRt, Oper::kRd, Oper::kImm};
    case Format::kControl: return {Oper::kRs, Oper::kRt, Oper::kImm};
  }
  return {};
}

struct PendingLine {
  std::string mnemonic;
  std::vector<std::string> operands;
  std::size_t line_number = 0;
};

[[noreturn]] void parse_fail(std::size_t line, const std::string& what) {
  raise(ErrorCode::kParseError, strprintf("asm line %zu: %s", line, what.c_str()));
}

std::uint8_t parse_reg(const std::string& token, char prefix, std::size_t line) {
  if (token.size() < 2 || (token[0] != prefix && token[0] != std::tolower(prefix))) {
    parse_fail(line, strprintf("expected %c-register, got '%s'", prefix, token.c_str()));
  }
  int value = 0;
  for (std::size_t i = 1; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) {
      parse_fail(line, "bad register index: " + token);
    }
    value = value * 10 + (token[i] - '0');
  }
  if (value < 0 || value > 31) parse_fail(line, "register index out of range: " + token);
  return static_cast<std::uint8_t>(value);
}

std::int32_t parse_int(const std::string& token, std::size_t line) {
  try {
    std::size_t consumed = 0;
    const long value = std::stol(token, &consumed, 0);
    if (consumed != token.size()) parse_fail(line, "bad integer: " + token);
    return static_cast<std::int32_t>(value);
  } catch (const std::exception&) {
    parse_fail(line, "bad integer: " + token);
  }
}

}  // namespace

CoreProgram assemble(std::string_view source, const Registry& registry) {
  // Pass 1: strip comments, collect labels and instruction lines.
  std::map<std::string, std::int32_t> labels;
  std::vector<PendingLine> lines;
  std::size_t line_number = 0;
  for (const std::string& raw : split(source, '\n', /*keep_empty=*/true)) {
    ++line_number;
    std::string text = raw;
    for (char comment_char : {';', '#'}) {
      const std::size_t pos = text.find(comment_char);
      if (pos != std::string::npos) text = text.substr(0, pos);
    }
    std::string_view body = trim(text);
    if (body.empty()) continue;

    const std::size_t colon = body.find(':');
    if (colon != std::string_view::npos && body.find_first_of(" \t") == std::string_view::npos) {
      const std::string label(trim(body.substr(0, colon)));
      if (label.empty()) parse_fail(line_number, "empty label");
      if (labels.count(label) != 0) parse_fail(line_number, "duplicate label: " + label);
      labels[label] = static_cast<std::int32_t>(lines.size());
      continue;
    }

    PendingLine pending;
    pending.line_number = line_number;
    const std::size_t space = body.find_first_of(" \t");
    pending.mnemonic = std::string(body.substr(0, space));
    if (space != std::string_view::npos) {
      for (const std::string& piece : split(body.substr(space), ',')) {
        pending.operands.emplace_back(trim(piece));
      }
    }
    lines.push_back(std::move(pending));
  }

  // Pass 2: encode each line using the registry's operand layout.
  CoreProgram program;
  program.code.reserve(lines.size());
  for (std::size_t pc = 0; pc < lines.size(); ++pc) {
    const PendingLine& line = lines[pc];
    const InstructionDescriptor* desc = registry.find_mnemonic(line.mnemonic);
    if (desc == nullptr) parse_fail(line.line_number, "unknown mnemonic: " + line.mnemonic);

    Instruction inst;
    inst.opcode = desc->opcode;
    if (desc->funct) inst.funct = *desc->funct;

    const std::vector<Oper> layout = operand_layout(*desc);
    if (line.operands.size() != layout.size()) {
      parse_fail(line.line_number,
                 strprintf("%s expects %zu operands, got %zu", line.mnemonic.c_str(),
                           layout.size(), line.operands.size()));
    }
    for (std::size_t i = 0; i < layout.size(); ++i) {
      const std::string& token = line.operands[i];
      switch (layout[i]) {
        case Oper::kRd: inst.rd = parse_reg(token, 'R', line.line_number); break;
        case Oper::kRs: inst.rs = parse_reg(token, 'R', line.line_number); break;
        case Oper::kRt: inst.rt = parse_reg(token, 'R', line.line_number); break;
        case Oper::kRe: inst.re = parse_reg(token, 'R', line.line_number); break;
        case Oper::kSRegField:
          inst.flags = parse_reg(token, 'S', line.line_number);
          break;
        case Oper::kImm: {
          const std::int32_t value = parse_int(token, line.line_number);
          if (desc->format == Format::kCim) {
            inst.flags = static_cast<std::uint16_t>(value);
          } else {
            inst.imm = value;
          }
          break;
        }
        case Oper::kTarget: {
          auto it = labels.find(token);
          if (it != labels.end()) {
            inst.imm = it->second - static_cast<std::int32_t>(pc);
          } else {
            inst.imm = parse_int(token, line.line_number);
          }
          break;
        }
      }
    }
    // Round-trip through the binary encoding so field-range errors surface
    // at assembly time with the offending line number.
    try {
      (void)encode(inst);
    } catch (const Error& e) {
      parse_fail(line.line_number, e.what());
    }
    program.code.push_back(inst);
  }
  return program;
}

std::string disassemble(const Instruction& inst, const Registry& registry) {
  const InstructionDescriptor& desc = registry.lookup(inst);
  std::string out = desc.mnemonic;
  const std::vector<Oper> layout = operand_layout(desc);
  for (std::size_t i = 0; i < layout.size(); ++i) {
    out += (i == 0) ? " " : ", ";
    switch (layout[i]) {
      case Oper::kRd: out += strprintf("R%u", inst.rd); break;
      case Oper::kRs: out += strprintf("R%u", inst.rs); break;
      case Oper::kRt: out += strprintf("R%u", inst.rt); break;
      case Oper::kRe: out += strprintf("R%u", inst.re); break;
      case Oper::kSRegField: out += strprintf("S%u", inst.flags); break;
      case Oper::kImm:
        out += (desc.format == Format::kCim) ? strprintf("%u", inst.flags)
                                             : strprintf("%d", inst.imm);
        break;
      case Oper::kTarget: out += strprintf("%d", inst.imm); break;
    }
  }
  return out;
}

std::string disassemble(const CoreProgram& program, const Registry& registry) {
  std::string out;
  for (std::size_t pc = 0; pc < program.code.size(); ++pc) {
    out += strprintf("%5zu:  %s\n", pc, disassemble(program.code[pc], registry).c_str());
  }
  return out;
}

}  // namespace cimflow::isa
