#include "cimflow/isa/registry.hpp"

#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::isa {
namespace {

InstructionDescriptor make(std::string mnemonic, Opcode opcode,
                           std::optional<std::uint8_t> funct, Format format,
                           UnitKind unit, TimingSpec timing, EnergySpec energy) {
  InstructionDescriptor d;
  d.mnemonic = std::move(mnemonic);
  d.opcode = static_cast<std::uint8_t>(opcode);
  d.funct = funct;
  d.format = format;
  d.unit = unit;
  d.timing = timing;
  d.energy = energy;
  return d;
}

std::uint8_t fn(VecFunct f) { return static_cast<std::uint8_t>(f); }
std::uint8_t fn(ScalarFunct f) { return static_cast<std::uint8_t>(f); }

}  // namespace

std::uint16_t Registry::key_of(std::uint8_t opcode, std::optional<std::uint8_t> funct) {
  return static_cast<std::uint16_t>((opcode << 8) | (funct ? (*funct + 1) : 0));
}

const Registry& Registry::builtin() {
  static const Registry instance = with_builtins();
  return instance;
}

Registry Registry::with_builtins() {
  Registry r;
  auto add = [&r](InstructionDescriptor d) {
    const std::uint16_t key = key_of(d.opcode, d.funct);
    r.by_mnemonic_.emplace(d.mnemonic, key);
    r.by_key_.emplace(key, std::move(d));
  };

  // Timing/energy values here are nominal templates: for built-in data ops
  // the simulator refines them with arch-aware, operand-dependent models
  // (bit-serial MVM interval, vector lane count, DMA bandwidth). Custom
  // instructions are priced exactly as their template says.
  const TimingSpec t_scalar{1, 0, 0};
  const TimingSpec t_vec{1, 32, 2};
  const EnergySpec e_scalar{0.3, 0.0};
  const EnergySpec e_vec{0.5, 0.35};

  add(make("CIM_MVM", Opcode::kCimMvm, {}, Format::kCim, UnitKind::kCim,
           TimingSpec{8, 0, 4}, EnergySpec{50.0, 0.0}));
  add(make("CIM_LOAD", Opcode::kCimLoad, {}, Format::kCim, UnitKind::kCim,
           TimingSpec{1, 64, 0}, EnergySpec{10.0, 1.2}));
  add(make("CIM_CFG", Opcode::kCimCfg, {}, Format::kCim, UnitKind::kCim,
           TimingSpec{1, 0, 0}, EnergySpec{0.1, 0.0}));

  struct VecEntry { const char* name; VecFunct funct; };
  const VecEntry vec_ops[] = {
      {"VEC_COPY8", VecFunct::kCopy8},   {"VEC_ADD8", VecFunct::kAdd8},
      {"VEC_SUB8", VecFunct::kSub8},     {"VEC_MAX8", VecFunct::kMax8},
      {"VEC_MIN8", VecFunct::kMin8},     {"VEC_RELU8", VecFunct::kRelu8},
      {"VEC_FILL8", VecFunct::kFill8},   {"VEC_ADD32", VecFunct::kAdd32},
      {"VEC_MAX32", VecFunct::kMax32},   {"VEC_RELU32", VecFunct::kRelu32},
      {"VEC_QUANT", VecFunct::kQuant},   {"VEC_LUT8", VecFunct::kLut8},
      {"VEC_SCALECH8", VecFunct::kScaleCh8}, {"VEC_COPY32", VecFunct::kCopy32},
      {"VEC_FILL32", VecFunct::kFill32}, {"VEC_DEQ8_32", VecFunct::kDeq8To32},
      {"VEC_ADD8TO32", VecFunct::kAdd8To32}, {"VEC_ROWSUM32", VecFunct::kRowSum32},
      {"VEC_DIVROUND8", VecFunct::kDivRound8},
  };
  for (const auto& [name, funct] : vec_ops) {
    add(make(name, Opcode::kVecOp, fn(funct), Format::kVector, UnitKind::kVector,
             t_vec, e_vec));
  }
  add(make("VEC_POOL_MAX", Opcode::kVecPool, std::uint8_t{0}, Format::kVector,
           UnitKind::kVector, t_vec, e_vec));
  add(make("VEC_POOL_AVG", Opcode::kVecPool, std::uint8_t{1}, Format::kVector,
           UnitKind::kVector, t_vec, e_vec));

  struct ScEntry { const char* name; ScalarFunct funct; };
  const ScEntry sc_reg_ops[] = {
      {"SC_ADD", ScalarFunct::kAdd}, {"SC_SUB", ScalarFunct::kSub},
      {"SC_MUL", ScalarFunct::kMul}, {"SC_AND", ScalarFunct::kAnd},
      {"SC_OR", ScalarFunct::kOr},   {"SC_XOR", ScalarFunct::kXor},
      {"SC_SLL", ScalarFunct::kSll}, {"SC_SRL", ScalarFunct::kSrl},
      {"SC_SRA", ScalarFunct::kSra}, {"SC_SLT", ScalarFunct::kSlt},
      {"SC_DIVU", ScalarFunct::kDivU}, {"SC_REMU", ScalarFunct::kRemU},
  };
  for (const auto& [name, funct] : sc_reg_ops) {
    add(make(name, Opcode::kScOp, fn(funct), Format::kVector, UnitKind::kScalar,
             t_scalar, e_scalar));
  }
  const ScEntry sc_imm_ops[] = {
      {"SC_ADDI", ScalarFunct::kAdd}, {"SC_SUBI", ScalarFunct::kSub},
      {"SC_MULI", ScalarFunct::kMul}, {"SC_ANDI", ScalarFunct::kAnd},
      {"SC_ORI", ScalarFunct::kOr},   {"SC_XORI", ScalarFunct::kXor},
      {"SC_SLLI", ScalarFunct::kSll}, {"SC_SRLI", ScalarFunct::kSrl},
      {"SC_SRAI", ScalarFunct::kSra}, {"SC_SLTI", ScalarFunct::kSlt},
  };
  for (const auto& [name, funct] : sc_imm_ops) {
    add(make(name, Opcode::kScAddi, fn(funct), Format::kScalarI, UnitKind::kScalar,
             t_scalar, e_scalar));
  }
  add(make("SC_LW", Opcode::kScLw, {}, Format::kScalarI, UnitKind::kScalar,
           TimingSpec{2, 0, 0}, EnergySpec{1.0, 0.0}));
  add(make("SC_SW", Opcode::kScSw, {}, Format::kScalarI, UnitKind::kScalar,
           TimingSpec{1, 0, 0}, EnergySpec{1.0, 0.0}));

  add(make("MEM_CPY", Opcode::kMemCpy, {}, Format::kComm, UnitKind::kTransfer,
           TimingSpec{4, 32, 0}, EnergySpec{2.0, 0.8}));
  add(make("MEM_STRIDE", Opcode::kMemStride, {}, Format::kComm, UnitKind::kTransfer,
           TimingSpec{4, 32, 0}, EnergySpec{2.0, 0.8}));
  add(make("SEND", Opcode::kSend, {}, Format::kComm, UnitKind::kTransfer,
           TimingSpec{4, 8, 0}, EnergySpec{4.0, 0.0}));
  add(make("RECV", Opcode::kRecv, {}, Format::kComm, UnitKind::kTransfer,
           TimingSpec{4, 8, 0}, EnergySpec{4.0, 0.0}));
  add(make("BARRIER", Opcode::kBarrier, {}, Format::kControl, UnitKind::kControl,
           TimingSpec{1, 0, 0}, EnergySpec{1.0, 0.0}));

  add(make("JMP", Opcode::kJmp, {}, Format::kControl, UnitKind::kControl, t_scalar, e_scalar));
  add(make("BEQ", Opcode::kBeq, {}, Format::kControl, UnitKind::kControl, t_scalar, e_scalar));
  add(make("BNE", Opcode::kBne, {}, Format::kControl, UnitKind::kControl, t_scalar, e_scalar));
  add(make("BLT", Opcode::kBlt, {}, Format::kControl, UnitKind::kControl, t_scalar, e_scalar));
  add(make("BGE", Opcode::kBge, {}, Format::kControl, UnitKind::kControl, t_scalar, e_scalar));
  add(make("HALT", Opcode::kHalt, {}, Format::kControl, UnitKind::kControl, t_scalar,
           EnergySpec{0.1, 0.0}));
  add(make("NOP", Opcode::kNop, {}, Format::kControl, UnitKind::kControl, t_scalar,
           EnergySpec{0.1, 0.0}));
  add(make("G_LI", Opcode::kGLi, {}, Format::kControl, UnitKind::kScalar, t_scalar, e_scalar));
  add(make("G_LIH", Opcode::kGLih, {}, Format::kControl, UnitKind::kScalar, t_scalar, e_scalar));
  return r;
}

void Registry::register_instruction(InstructionDescriptor descriptor) {
  if (descriptor.mnemonic.empty()) {
    raise(ErrorCode::kInvalidArgument, "custom instruction needs a mnemonic");
  }
  if (by_mnemonic_.count(descriptor.mnemonic) != 0) {
    raise(ErrorCode::kInvalidArgument,
          "mnemonic already registered: " + descriptor.mnemonic);
  }
  const bool custom_opcode = descriptor.opcode >= kFirstCustomOpcode &&
                             descriptor.opcode <= kLastCustomOpcode;
  const bool funct_extension =
      descriptor.funct.has_value() &&
      (descriptor.opcode == static_cast<std::uint8_t>(Opcode::kVecOp) ||
       descriptor.opcode == static_cast<std::uint8_t>(Opcode::kScOp));
  if (!custom_opcode && !funct_extension) {
    raise(ErrorCode::kInvalidArgument,
          strprintf("custom opcode 0x%02X outside reserved range [0x30,0x3F] "
                    "and not a funct extension",
                    descriptor.opcode));
  }
  const std::uint16_t key = key_of(descriptor.opcode, descriptor.funct);
  if (by_key_.count(key) != 0) {
    raise(ErrorCode::kInvalidArgument,
          strprintf("opcode/funct already registered: 0x%02X", descriptor.opcode));
  }
  if (!descriptor.execute) {
    raise(ErrorCode::kInvalidArgument,
          "custom instruction needs a functional callback (execute)");
  }
  if (custom_opcode) {
    detail::set_opcode_format(descriptor.opcode, descriptor.format);
  }
  by_mnemonic_.emplace(descriptor.mnemonic, key);
  by_key_.emplace(key, std::move(descriptor));
}

const InstructionDescriptor& Registry::lookup(const Instruction& inst) const {
  // Funct-dispatched opcodes first, then plain opcode entry.
  auto it = by_key_.find(key_of(inst.opcode, inst.funct));
  if (it == by_key_.end()) it = by_key_.find(key_of(inst.opcode, {}));
  if (it == by_key_.end()) {
    raise(ErrorCode::kUnsupported,
          strprintf("unknown instruction: opcode 0x%02X funct %u", inst.opcode,
                    inst.funct));
  }
  return it->second;
}

const InstructionDescriptor* Registry::find_mnemonic(const std::string& mnemonic) const {
  auto it = by_mnemonic_.find(mnemonic);
  if (it == by_mnemonic_.end()) return nullptr;
  return &by_key_.at(it->second);
}

std::vector<const InstructionDescriptor*> Registry::all() const {
  std::vector<const InstructionDescriptor*> out;
  out.reserve(by_mnemonic_.size());
  for (const auto& [name, key] : by_mnemonic_) out.push_back(&by_key_.at(key));
  return out;
}

}  // namespace cimflow::isa
