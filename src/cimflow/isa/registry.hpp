// Instruction registry: the "customized instruction description template" of
// paper Sec. III-B. Every instruction — built-in or user-registered — is
// described by an InstructionDescriptor carrying its mnemonic, encoding
// format, executing unit, timing and energy parameters, and (for custom
// instructions) a functional callback. The compiler queries descriptors for
// cost modeling; the simulator uses them for dispatch, timing and energy;
// the assembler/disassembler use them for text syntax.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cimflow/isa/instruction.hpp"

namespace cimflow::isa {

/// Timing template: an instruction occupies its unit for
/// `fixed_cycles + ceil(elements / elements_per_cycle)` cycles (the second
/// term only when elements_per_cycle > 0; `elements` is the value of the RE
/// length register at execution), and its result is ready `extra_latency`
/// cycles after the unit releases.
struct TimingSpec {
  std::int64_t fixed_cycles = 1;
  std::int64_t elements_per_cycle = 0;
  std::int64_t extra_latency = 0;
};

/// Energy template in picojoules: `fixed_pj + elements * per_element_pj`.
struct EnergySpec {
  double fixed_pj = 0.0;
  double per_element_pj = 0.0;
};

/// Execution-side view handed to custom instruction callbacks. Implemented
/// by the simulator core; lets extensions read/write registers and local
/// memory without depending on simulator internals.
class CustomExecContext {
 public:
  virtual ~CustomExecContext() = default;
  virtual std::int32_t reg(std::uint8_t index) const = 0;
  virtual void set_reg(std::uint8_t index, std::int32_t value) = 0;
  virtual std::int32_t sreg(std::uint8_t index) const = 0;
  virtual std::uint8_t load_byte(std::uint32_t local_offset) const = 0;
  virtual void store_byte(std::uint32_t local_offset, std::uint8_t value) = 0;
  virtual std::int64_t core_id() const = 0;
};

/// Full description of one instruction (or one funct-selected sub-operation
/// of a shared opcode).
struct InstructionDescriptor {
  std::string mnemonic;           ///< e.g. "CIM_MVM", "VEC_ADD8"
  std::uint8_t opcode = 0;
  std::optional<std::uint8_t> funct;  ///< set for funct-dispatched opcodes
  Format format = Format::kCim;
  UnitKind unit = UnitKind::kScalar;
  TimingSpec timing;
  EnergySpec energy;
  /// Functional semantics for custom instructions (built-ins are executed by
  /// the simulator natively and leave this empty).
  std::function<void(const Instruction&, CustomExecContext&)> execute;
};

/// Registry of instruction descriptors. `builtin()` returns the CIMFlow base
/// ISA; copies of it can be extended with register_instruction, enabling the
/// paper's "seamless integration of new operations ... when provided with
/// their associated performance parameters".
class Registry {
 public:
  /// The base CIMFlow ISA (paper Fig. 3).
  static const Registry& builtin();

  /// Starts from the base ISA; extend with register_instruction.
  static Registry with_builtins();

  /// Registers a custom instruction. Requirements: opcode in the custom
  /// range [0x30, 0x3F] (or a funct-extension of kVecOp/kScOp), unique
  /// mnemonic, and a functional callback. Throws Error(kInvalidArgument) on
  /// conflicts.
  void register_instruction(InstructionDescriptor descriptor);

  /// Descriptor for a decoded instruction (resolves funct dispatch).
  /// Throws Error(kUnsupported) for unknown opcode/funct combinations.
  const InstructionDescriptor& lookup(const Instruction& inst) const;

  /// Descriptor by mnemonic (assembler direction); nullptr when unknown.
  const InstructionDescriptor* find_mnemonic(const std::string& mnemonic) const;

  /// All registered descriptors in deterministic (mnemonic) order.
  std::vector<const InstructionDescriptor*> all() const;

 private:
  Registry() = default;

  static std::uint16_t key_of(std::uint8_t opcode, std::optional<std::uint8_t> funct);

  // Key: opcode<<8 | (funct+1) for funct-dispatched entries, opcode<<8 for
  // plain ones.
  std::map<std::uint16_t, InstructionDescriptor> by_key_;
  std::map<std::string, std::uint16_t> by_mnemonic_;
};

}  // namespace cimflow::isa
