#include "cimflow/isa/program.hpp"

namespace cimflow::isa {

std::vector<std::uint32_t> CoreProgram::binary() const {
  std::vector<std::uint32_t> words;
  words.reserve(code.size());
  for (const Instruction& inst : code) words.push_back(encode(inst));
  return words;
}

CoreProgram CoreProgram::from_binary(const std::vector<std::uint32_t>& words) {
  CoreProgram program;
  program.code.reserve(words.size());
  for (std::uint32_t word : words) program.code.push_back(decode(word));
  return program;
}

std::int64_t Program::total_instructions() const noexcept {
  std::int64_t total = 0;
  for (const CoreProgram& core : cores) total += static_cast<std::int64_t>(core.size());
  return total;
}

}  // namespace cimflow::isa
