// Decoded instruction representation and 32-bit binary encode/decode.
#pragma once

#include <cstdint>
#include <string>

#include "cimflow/isa/opcode.hpp"

namespace cimflow::isa {

/// A decoded instruction. Fields not present in the instruction's format are
/// zero. `imm` carries the sign-extended immediate/offset for kScalarI,
/// kComm and kControl formats; `flags` carries the 11-bit CIM flag field.
struct Instruction {
  std::uint8_t opcode = static_cast<std::uint8_t>(Opcode::kNop);
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::uint8_t re = 0;
  std::uint8_t rd = 0;
  std::uint8_t funct = 0;
  std::int32_t imm = 0;
  std::uint16_t flags = 0;

  Opcode op() const noexcept { return static_cast<Opcode>(opcode); }

  bool operator==(const Instruction&) const = default;

  // --- Convenience constructors used by the code generator -----------------

  static Instruction cim_mvm(std::uint8_t in_addr, std::uint8_t out_addr,
                             std::uint8_t mg, bool accumulate);
  static Instruction cim_load(std::uint8_t src_addr, std::uint8_t mg);
  static Instruction cim_cfg(SReg sreg, std::uint8_t value_reg);
  static Instruction vec_op(VecFunct fn, std::uint8_t dst, std::uint8_t src_a,
                            std::uint8_t src_b, std::uint8_t len);
  static Instruction vec_pool(bool average, std::uint8_t dst, std::uint8_t src,
                              std::uint8_t out_pixels);
  static Instruction sc_op(ScalarFunct fn, std::uint8_t dst, std::uint8_t src_a,
                           std::uint8_t src_b);
  static Instruction sc_addi(ScalarFunct fn, std::uint8_t dst, std::uint8_t src,
                             std::int32_t imm10);
  static Instruction sc_lw(std::uint8_t dst, std::uint8_t addr_reg, std::int32_t imm10);
  static Instruction sc_sw(std::uint8_t value, std::uint8_t addr_reg, std::int32_t imm10);
  static Instruction mem_cpy(std::uint8_t dst_addr, std::uint8_t src_addr,
                             std::uint8_t len_reg);
  static Instruction mem_stride(std::uint8_t dst_addr, std::uint8_t src_addr,
                                std::uint8_t count_reg);
  static Instruction send(std::uint8_t src_addr, std::uint8_t len_reg,
                          std::uint8_t dest_core_reg, std::int32_t tag);
  static Instruction recv(std::uint8_t dst_addr, std::uint8_t len_reg,
                          std::uint8_t src_core_reg, std::int32_t tag);
  static Instruction barrier(std::int32_t barrier_id);
  static Instruction jmp(std::int32_t offset);
  static Instruction branch(Opcode cmp, std::uint8_t rs, std::uint8_t rt,
                            std::int32_t offset);
  static Instruction g_li(std::uint8_t rt, std::int32_t imm16);
  static Instruction g_lih(std::uint8_t rt, std::int32_t imm16);
  static Instruction halt();
  static Instruction nop();
};

/// Encodes to the 32-bit binary format; throws Error(kInvalidArgument) when a
/// field does not fit (e.g. immediate out of range for the format).
std::uint32_t encode(const Instruction& inst);

/// Decodes a 32-bit word. Unknown opcodes decode with the kCim layout (the
/// registry decides how custom opcodes are interpreted).
Instruction decode(std::uint32_t word);

/// Format of a (possibly custom) opcode as registered; built-ins are fixed.
Format format_of(std::uint8_t opcode);

namespace detail {
/// Binds a custom opcode to an encoding format (process-wide; called by
/// Registry::register_instruction — not part of the public API).
void set_opcode_format(std::uint8_t opcode, Format format);
}  // namespace detail

}  // namespace cimflow::isa
