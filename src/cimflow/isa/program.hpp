// Program containers: the compiler's output and the simulator's input.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cimflow/isa/instruction.hpp"

namespace cimflow::isa {

/// Instruction stream for one core. Instructions are kept decoded; binary()
/// produces the 32-bit encoding (and is exercised by round-trip tests so the
/// decoded form can never silently diverge from the encodable ISA).
struct CoreProgram {
  std::vector<Instruction> code;

  bool empty() const noexcept { return code.empty(); }
  std::size_t size() const noexcept { return code.size(); }

  /// Encodes all instructions to binary words.
  std::vector<std::uint32_t> binary() const;

  /// Rebuilds a CoreProgram from binary words.
  static CoreProgram from_binary(const std::vector<std::uint32_t>& words);
};

/// A whole-chip program: one instruction stream per core plus the initial
/// global-memory image (weights, LUTs, input staging area) and metadata the
/// runtime needs to launch and read back results.
struct Program {
  std::vector<CoreProgram> cores;
  std::vector<std::uint8_t> global_image;  ///< initial global memory contents

  std::int64_t barrier_count = 0;    ///< number of global barriers used
  std::uint32_t input_global_offset = 0;   ///< where images are staged
  std::int64_t input_bytes_per_image = 0;
  std::uint32_t output_global_offset = 0;  ///< where results are written
  std::int64_t output_bytes_per_image = 0;
  std::int64_t batch = 1;            ///< images the program processes

  explicit Program(std::int64_t core_count = 0) : cores(static_cast<std::size_t>(core_count)) {}

  /// Total static instruction count across cores.
  std::int64_t total_instructions() const noexcept;
};

}  // namespace cimflow::isa
