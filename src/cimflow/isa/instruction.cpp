#include "cimflow/isa/instruction.hpp"

#include <array>

#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::isa {
namespace {

// Format table for the full 6-bit opcode space. Custom opcodes default to
// kCim layout until the registry assigns one (set_opcode_format).
std::array<Format, kNumOpcodes>& format_table() {
  static std::array<Format, kNumOpcodes> table = [] {
    std::array<Format, kNumOpcodes> t{};
    t.fill(Format::kCim);
    auto set = [&](Opcode op, Format f) { t[static_cast<std::size_t>(op)] = f; };
    set(Opcode::kCimMvm, Format::kCim);
    set(Opcode::kCimLoad, Format::kCim);
    set(Opcode::kCimCfg, Format::kCim);
    set(Opcode::kVecOp, Format::kVector);
    set(Opcode::kVecPool, Format::kVector);
    set(Opcode::kScOp, Format::kVector);  // scalar R-type uses the 4-operand layout
    set(Opcode::kScAddi, Format::kScalarI);
    set(Opcode::kScLw, Format::kScalarI);
    set(Opcode::kScSw, Format::kScalarI);
    set(Opcode::kMemCpy, Format::kComm);
    set(Opcode::kMemStride, Format::kComm);
    set(Opcode::kSend, Format::kComm);
    set(Opcode::kRecv, Format::kComm);
    set(Opcode::kBarrier, Format::kControl);
    set(Opcode::kJmp, Format::kControl);
    set(Opcode::kBeq, Format::kControl);
    set(Opcode::kBne, Format::kControl);
    set(Opcode::kBlt, Format::kControl);
    set(Opcode::kBge, Format::kControl);
    set(Opcode::kHalt, Format::kControl);
    set(Opcode::kNop, Format::kControl);
    set(Opcode::kGLi, Format::kControl);
    set(Opcode::kGLih, Format::kControl);
    return t;
  }();
  return table;
}

std::uint32_t field(std::uint32_t value, int bits, const char* name) {
  if (value >= (1u << bits)) {
    raise(ErrorCode::kInvalidArgument,
          strprintf("ISA field '%s' value %u does not fit in %d bits", name, value, bits));
  }
  return value;
}

std::uint32_t signed_field(std::int32_t value, int bits, const char* name) {
  const std::int32_t lo = -(1 << (bits - 1));
  const std::int32_t hi = (1 << (bits - 1)) - 1;
  if (value < lo || value > hi) {
    raise(ErrorCode::kInvalidArgument,
          strprintf("ISA field '%s' value %d out of range [%d, %d]", name, value, lo, hi));
  }
  return static_cast<std::uint32_t>(value) & ((1u << bits) - 1);
}

std::int32_t sext(std::uint32_t value, int bits) {
  const std::uint32_t mask = (1u << bits) - 1;
  value &= mask;
  const std::uint32_t sign = 1u << (bits - 1);
  return static_cast<std::int32_t>((value ^ sign)) - static_cast<std::int32_t>(sign);
}

}  // namespace

Format format_of(std::uint8_t opcode) {
  CIMFLOW_CHECK(opcode < kNumOpcodes, "opcode out of range");
  return format_table()[opcode];
}

namespace detail {
// Called by the registry when a custom opcode declares its format.
void set_opcode_format(std::uint8_t opcode, Format format) {
  CIMFLOW_CHECK(opcode < kNumOpcodes, "opcode out of range");
  format_table()[opcode] = format;
}
}  // namespace detail

std::uint32_t encode(const Instruction& inst) {
  const std::uint32_t op = field(inst.opcode, kOpcodeBits, "opcode") << 26;
  const std::uint32_t rs = field(inst.rs, 5, "rs") << 21;
  const std::uint32_t rt = field(inst.rt, 5, "rt") << 16;
  switch (format_of(inst.opcode)) {
    case Format::kCim:
      return op | rs | rt | (field(inst.re, 5, "re") << 11) |
             field(inst.flags, 11, "flags");
    case Format::kVector:
      return op | rs | rt | (field(inst.re, 5, "re") << 11) |
             (field(inst.rd, 5, "rd") << 6) | field(inst.funct, 6, "funct");
    case Format::kScalarI:
      return op | rs | rt | (field(inst.funct, 6, "funct") << 10) |
             signed_field(inst.imm, 10, "imm");
    case Format::kComm:
      return op | rs | rt | (field(inst.rd, 5, "rd") << 11) |
             signed_field(inst.imm, 11, "offset");
    case Format::kControl:
      return op | rs | rt | signed_field(inst.imm, 16, "offset");
  }
  raise(ErrorCode::kInternal, "unreachable format");
}

Instruction decode(std::uint32_t word) {
  Instruction inst;
  inst.opcode = static_cast<std::uint8_t>((word >> 26) & 0x3F);
  inst.rs = static_cast<std::uint8_t>((word >> 21) & 0x1F);
  inst.rt = static_cast<std::uint8_t>((word >> 16) & 0x1F);
  switch (format_of(inst.opcode)) {
    case Format::kCim:
      inst.re = static_cast<std::uint8_t>((word >> 11) & 0x1F);
      inst.flags = static_cast<std::uint16_t>(word & 0x7FF);
      break;
    case Format::kVector:
      inst.re = static_cast<std::uint8_t>((word >> 11) & 0x1F);
      inst.rd = static_cast<std::uint8_t>((word >> 6) & 0x1F);
      inst.funct = static_cast<std::uint8_t>(word & 0x3F);
      break;
    case Format::kScalarI:
      inst.funct = static_cast<std::uint8_t>((word >> 10) & 0x3F);
      inst.imm = sext(word, 10);
      break;
    case Format::kComm:
      inst.rd = static_cast<std::uint8_t>((word >> 11) & 0x1F);
      inst.imm = sext(word, 11);
      break;
    case Format::kControl:
      inst.imm = sext(word, 16);
      break;
  }
  return inst;
}

Instruction Instruction::cim_mvm(std::uint8_t in_addr, std::uint8_t out_addr,
                                 std::uint8_t mg, bool accumulate) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kCimMvm);
  i.rs = in_addr;
  i.rt = out_addr;
  i.re = mg;
  i.flags = accumulate ? 1 : 0;
  return i;
}

Instruction Instruction::cim_load(std::uint8_t src_addr, std::uint8_t mg) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kCimLoad);
  i.rs = src_addr;
  i.rt = mg;
  return i;
}

Instruction Instruction::cim_cfg(SReg sreg, std::uint8_t value_reg) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kCimCfg);
  i.rs = value_reg;
  i.flags = static_cast<std::uint16_t>(sreg);
  return i;
}

Instruction Instruction::vec_op(VecFunct fn, std::uint8_t dst, std::uint8_t src_a,
                                std::uint8_t src_b, std::uint8_t len) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kVecOp);
  i.rd = dst;
  i.rs = src_a;
  i.rt = src_b;
  i.re = len;
  i.funct = static_cast<std::uint8_t>(fn);
  return i;
}

Instruction Instruction::vec_pool(bool average, std::uint8_t dst, std::uint8_t src,
                                  std::uint8_t out_pixels) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kVecPool);
  i.rd = dst;
  i.rs = src;
  i.re = out_pixels;
  i.funct = average ? 1 : 0;
  return i;
}

Instruction Instruction::sc_op(ScalarFunct fn, std::uint8_t dst, std::uint8_t src_a,
                               std::uint8_t src_b) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kScOp);
  i.rd = dst;
  i.rs = src_a;
  i.rt = src_b;
  i.funct = static_cast<std::uint8_t>(fn);
  return i;
}

Instruction Instruction::sc_addi(ScalarFunct fn, std::uint8_t dst, std::uint8_t src,
                                 std::int32_t imm10) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kScAddi);
  i.rt = dst;
  i.rs = src;
  i.funct = static_cast<std::uint8_t>(fn);
  i.imm = imm10;
  return i;
}

Instruction Instruction::sc_lw(std::uint8_t dst, std::uint8_t addr_reg,
                               std::int32_t imm10) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kScLw);
  i.rt = dst;
  i.rs = addr_reg;
  i.imm = imm10;
  return i;
}

Instruction Instruction::sc_sw(std::uint8_t value, std::uint8_t addr_reg,
                               std::int32_t imm10) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kScSw);
  i.rt = value;
  i.rs = addr_reg;
  i.imm = imm10;
  return i;
}

Instruction Instruction::mem_stride(std::uint8_t dst_addr, std::uint8_t src_addr,
                                    std::uint8_t count_reg) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kMemStride);
  i.rs = dst_addr;
  i.rt = src_addr;
  i.rd = count_reg;
  return i;
}

Instruction Instruction::mem_cpy(std::uint8_t dst_addr, std::uint8_t src_addr,
                                 std::uint8_t len_reg) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kMemCpy);
  i.rs = dst_addr;
  i.rt = src_addr;
  i.rd = len_reg;
  return i;
}

Instruction Instruction::send(std::uint8_t src_addr, std::uint8_t len_reg,
                              std::uint8_t dest_core_reg, std::int32_t tag) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kSend);
  i.rs = src_addr;
  i.rt = len_reg;
  i.rd = dest_core_reg;
  i.imm = tag;
  return i;
}

Instruction Instruction::recv(std::uint8_t dst_addr, std::uint8_t len_reg,
                              std::uint8_t src_core_reg, std::int32_t tag) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kRecv);
  i.rs = dst_addr;
  i.rt = len_reg;
  i.rd = src_core_reg;
  i.imm = tag;
  return i;
}

Instruction Instruction::barrier(std::int32_t barrier_id) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kBarrier);
  i.imm = barrier_id;
  return i;
}

Instruction Instruction::jmp(std::int32_t offset) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kJmp);
  i.imm = offset;
  return i;
}

Instruction Instruction::branch(Opcode cmp, std::uint8_t rs, std::uint8_t rt,
                                std::int32_t offset) {
  CIMFLOW_CHECK(cmp == Opcode::kBeq || cmp == Opcode::kBne || cmp == Opcode::kBlt ||
                    cmp == Opcode::kBge,
                "branch() requires a branch opcode");
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(cmp);
  i.rs = rs;
  i.rt = rt;
  i.imm = offset;
  return i;
}

Instruction Instruction::g_li(std::uint8_t rt, std::int32_t imm16) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kGLi);
  i.rt = rt;
  i.imm = imm16;
  return i;
}

Instruction Instruction::g_lih(std::uint8_t rt, std::int32_t imm16) {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kGLih);
  i.rt = rt;
  i.imm = imm16;
  return i;
}

Instruction Instruction::halt() {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kHalt);
  return i;
}

Instruction Instruction::nop() {
  Instruction i;
  i.opcode = static_cast<std::uint8_t>(Opcode::kNop);
  return i;
}

}  // namespace cimflow::isa
