// CIMFlow ISA opcode space and field layouts (paper Fig. 3).
//
// All instructions are 32 bits with a 6-bit opcode at [31:26] and 5-bit
// register operand fields. Five format variants cover the instruction
// categories (CIM / vector / scalar compute, communication, control flow):
//
//   kCim     : opcode | RS[25:21] | RT[20:16] | RE[15:11] | flags[10:0]
//   kVector  : opcode | RS[25:21] | RT[20:16] | RE[15:11] | RD[10:6] | funct[5:0]
//   kScalarI : opcode | RS[25:21] | RT[20:16] | funct[15:10] | imm[9:0] (signed)
//   kComm    : opcode | RS[25:21] | RT[20:16] | RD[15:11] | offset[10:0] (signed)
//   kControl : opcode | RS[25:21] | RT[20:16] | offset[15:0] (signed)
//
// Opcode ranges by category (the registry reserves 0x30..0x3F for custom
// extensions registered through the instruction description template):
//   0x01..0x07 CIM, 0x08..0x0F vector, 0x10..0x17 scalar,
//   0x18..0x1F communication, 0x20..0x2F control, 0x30..0x3F custom.
#pragma once

#include <cstdint>

namespace cimflow::isa {

enum class Format : std::uint8_t { kCim, kVector, kScalarI, kComm, kControl };

/// Execution unit an instruction occupies (paper Fig. 3 core diagram).
enum class UnitKind : std::uint8_t {
  kCim,      ///< CIM compute unit (macro groups)
  kVector,   ///< vector compute unit
  kScalar,   ///< scalar compute unit
  kTransfer, ///< transfer unit (local/global DMA, NoC send/recv)
  kControl,  ///< front-end (branches, barriers)
};

enum class Opcode : std::uint8_t {
  // --- CIM compute ---------------------------------------------------------
  kCimMvm = 0x01,  ///< CIM_MVM RS=in addr, RT=out addr, RE=mg index; flags b0=accumulate
  kCimLoad = 0x02, ///< CIM_LOAD RS=src addr, RT=mg index; S_AR x S_AC tile
  kCimCfg = 0x03,  ///< CIM_CFG RS=value; flags[4:0]=S_Reg index
  // --- Vector compute ------------------------------------------------------
  kVecOp = 0x08,   ///< VEC_* RD=dst, RS=srcA, RT=srcB/scalar, RE=length; funct=op
  kVecPool = 0x09, ///< VEC_POOL RD=dst row, RS=src base, RE=out pixels; funct b0: 0=max 1=avg
  // --- Scalar compute ------------------------------------------------------
  kScOp = 0x10,    ///< SC_* RD=dst, RS,RT=sources (vector format), funct=ALU op
  kScAddi = 0x11,  ///< SC_*I RT=dst, RS=source, funct=ALU op, imm10 (scalar format)
  kScLw = 0x12,    ///< SC_LW RT = mem32[G[RS] + imm] (local, word-aligned)
  kScSw = 0x13,    ///< SC_SW mem32[G[RS] + imm] = G[RT]
  // --- Communication -------------------------------------------------------
  kMemCpy = 0x18,  ///< MEM_CPY RS=dst addr, RT=src addr, RD=len reg
  kSend = 0x19,    ///< SEND RS=src addr, RT=len reg, RD=dest core reg, offset=tag
  kRecv = 0x1A,    ///< RECV RS=dst addr, RT=len reg, RD=src core reg, offset=tag
  kBarrier = 0x1B, ///< BARRIER offset=barrier id (all cores rendezvous)
  kMemStride = 0x1C, ///< MEM_STRIDE RS=dst, RT=src, RD=count reg; strides in S13/S14, elem bytes in S15
  // --- Control flow --------------------------------------------------------
  kJmp = 0x20,     ///< JMP pc-relative offset
  kBeq = 0x21,
  kBne = 0x22,
  kBlt = 0x23,     ///< signed compare
  kBge = 0x24,
  kHalt = 0x25,
  kNop = 0x26,
  kGLi = 0x27,     ///< G_LI RT, imm16 (sign-extended load immediate)
  kGLih = 0x28,    ///< G_LIH RT, imm16 (replace upper halfword)
};

/// funct values for kVecOp (vector element-wise operations). INT8 ops
/// saturate; QUANT applies the S_QSHIFT rounding shift and S_QZERO offset.
enum class VecFunct : std::uint8_t {
  kCopy8 = 0,
  kAdd8 = 1,    ///< saturating int8 add
  kSub8 = 2,
  kMax8 = 3,
  kMin8 = 4,
  kRelu8 = 5,
  kFill8 = 6,   ///< fill with low byte of G[RT]
  kAdd32 = 7,
  kMax32 = 8,
  kRelu32 = 9,
  kQuant = 10,  ///< int32 -> int8 requantize (S_QSHIFT, S_QZERO)
  kLut8 = 11,   ///< int8 -> int8 via 256-entry table at S_LUT
  kScaleCh8 = 12, ///< per-channel scale: dst=sat((a*b[ch])>>S_QSHIFT), S_CHANNELS
  kCopy32 = 13,
  kFill32 = 14, ///< fill int32 words with G[RT]
  kDeq8To32 = 15, ///< widen int8 -> int32
  kAdd8To32 = 16, ///< dst32 = src32A + widen(src8B); residual-join primitive
  kRowSum32 = 17, ///< dst32[c] += sum_q src8[q*len+c], q < S_POOL_WIN;
                  ///< streaming global-average-pool accumulator
  kDivRound8 = 18, ///< dst8[i] = sat(round(src32[i] / S_AUX1)); GAP finalize
};

/// funct values shared by kScOp (register) and kScAddi (immediate) scalar ALU.
enum class ScalarFunct : std::uint8_t {
  kAdd = 0,
  kSub = 1,
  kMul = 2,
  kAnd = 3,
  kOr = 4,
  kXor = 5,
  kSll = 6,
  kSrl = 7,
  kSra = 8,
  kSlt = 9,   ///< signed set-less-than
  kDivU = 10,
  kRemU = 11,
};

/// Special-purpose register file (S_Reg) indices. Set via CIM_CFG; consumed
/// by CIM and vector instructions as operation descriptors.
enum class SReg : std::uint8_t {
  kActiveRows = 0,   ///< S_AR: MVM/LOAD active row count
  kActiveCols = 1,   ///< S_AC: MVM/LOAD active column count
  kQuantShift = 2,   ///< S_QSHIFT: requantization right-shift
  kQuantZero = 3,    ///< S_QZERO: requantization zero point
  kLutBase = 4,      ///< S_LUT: local address of 256-entry int8 table
  kChannels = 5,     ///< S_CHANNELS: channel count for kScaleCh8
  kPoolKh = 6,
  kPoolKw = 7,
  kPoolStride = 8,
  kPoolWin = 9,      ///< input row width in pixels
  kPoolChannels = 10,
  kMacCount = 11,    ///< active MACs per CIM_MVM for energy (0 = rows*cols)
  kPoolPad = 12,     ///< left/top padding for VEC_POOL
  kAux0 = 13,        ///< MEM_STRIDE dst stride / VEC_POOL input height
  kAux1 = 14,        ///< MEM_STRIDE src stride
  kAux2 = 15,        ///< MEM_STRIDE element bytes
};

/// Local-memory addresses have bit 31 set; global addresses have it clear
/// (the unified address space of paper Sec. III-B).
constexpr std::uint32_t kLocalAddressBit = 0x8000'0000u;

constexpr bool is_local_address(std::uint32_t addr) {
  return (addr & kLocalAddressBit) != 0;
}

constexpr std::uint32_t local_offset(std::uint32_t addr) {
  return addr & ~kLocalAddressBit;
}

constexpr std::uint32_t make_local_address(std::uint32_t offset) {
  return offset | kLocalAddressBit;
}

constexpr int kOpcodeBits = 6;
constexpr int kNumOpcodes = 1 << kOpcodeBits;
constexpr std::uint8_t kFirstCustomOpcode = 0x30;
constexpr std::uint8_t kLastCustomOpcode = 0x3F;

}  // namespace cimflow::isa
