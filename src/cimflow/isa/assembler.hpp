// Two-way text form of the CIMFlow ISA: an assembler with labels and a
// disassembler. Used by tests, debugging dumps and the custom-instruction
// example; the compiler itself emits decoded Instruction structs directly.
//
// Syntax:
//   ; line comment            # also allowed
//   loop:                     ; label definition
//     SC_ADDI R2, R2, 1
//     BLT R2, R3, loop        ; branch targets may be labels or literals
//     CIM_CFG S0, R4          ; S-register operand for CIM_CFG
//     CIM_MVM R5, R6, R7, 1   ; trailing literal = flags field
//     HALT
#pragma once

#include <string>
#include <string_view>

#include "cimflow/isa/program.hpp"
#include "cimflow/isa/registry.hpp"

namespace cimflow::isa {

/// Assembles source text into a core program; throws Error(kParseError) with
/// a line number on malformed input or unknown mnemonics.
CoreProgram assemble(std::string_view source, const Registry& registry = Registry::builtin());

/// Renders one instruction in assembler syntax (no label resolution; branch
/// targets print as relative offsets).
std::string disassemble(const Instruction& inst, const Registry& registry = Registry::builtin());

/// Disassembles a whole program with addresses, one instruction per line.
std::string disassemble(const CoreProgram& program,
                        const Registry& registry = Registry::builtin());

}  // namespace cimflow::isa
