// Predecoded instruction streams (ROADMAP "as fast as the hardware allows").
//
// The seed-era interpreter re-derived everything about an instruction on
// every dynamic execution: opcode class from the raw byte, the per-funct
// operand byte widths of the vector unit from an if-chain, and — worst — the
// registry descriptor of a custom instruction from a std::map lookup. A
// DecodedProgram resolves all of that once per `isa::Program`: each
// instruction becomes one flat `DecodedInst` carrying the resolved operand
// metadata, the precomputed register-use mask the scoreboard reads, and (for
// custom opcodes) the descriptor pointer, so `CoreModel::step()` dispatches
// on a dense struct instead of re-decoding fields every simulated cycle.
//
// Sharing contract — the decode is to instructions what sim/memory's
// GlobalImage is to data: one immutable decode per program, shared by every
// simulator running it concurrently. `shared()` content-addresses the cache
// (a fingerprint over the instruction bytes, not the program's address), so
// a mutated or reallocated program can never alias a stale decode, and the
// DSE engine pins its cached programs' decodes alongside the compiled entry
// so sweep points never re-decode. Map entries are weak — when the last
// simulator and the last pinning entry let go, the decode is reclaimable —
// but the cache additionally keeps a small strong-reference LRU of the most
// recently used decodes (capacity from CIMFLOW_DECODE_LRU, default
// kDefaultStrongDecodes), so back-to-back evaluations of one program in a
// process (repeated CLI `evaluate` calls in a script loop, or the cimflowd
// daemon serving the same model twice) hit a warm decode instead of
// rebuilding from cold. Set the capacity to 0 for the pure weak behavior.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cimflow/isa/program.hpp"
#include "cimflow/isa/registry.hpp"

namespace cimflow::sim {

/// One predecoded instruction: the raw fields laid out flat plus everything
/// `step()` used to re-derive per execution. Arch-dependent quantities
/// (latencies, energy) are NOT baked in — a decode is shared across
/// simulators whose architectures differ in non-compile-relevant parameters.
struct DecodedInst {
  std::uint8_t op = 0;     ///< raw opcode byte (isa::Opcode)
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::uint8_t re = 0;
  std::uint8_t rd = 0;
  std::uint8_t funct = 0;
  /// Vector-unit operand byte widths per element (1 or 4): how many bytes of
  /// the source/destination one element touches — the predecoded form of the
  /// per-funct if-chain the interpreter ran on every kVecOp.
  std::uint8_t vec_rd_scale = 1;
  std::uint8_t vec_wr_scale = 1;
  std::uint16_t flags = 0;
  /// kRowSum32: the read span and work additionally scale with the runtime
  /// S_POOL_WIN value (kept as a flag; sregs are runtime state).
  bool vec_rowsum = false;
  /// kVecOp with rt != 0: the second source participates in dependency
  /// tracking (and, functionally, is read).
  bool vec_reads_b = false;
  std::int32_t imm = 0;
  /// Registers whose scoreboard slot gates this instruction's issue — the
  /// exact set the interpreter passed to use(), deduplicated. A fixed list
  /// (not a bitmask) so the issue-time computation is a short counted loop
  /// over byte indices instead of a find-first-set chain.
  std::uint8_t use_regs[4] = {0, 0, 0, 0};
  std::uint8_t use_count = 0;
  /// Resolved descriptor for custom-range opcodes; null for builtins and for
  /// instructions the registry cannot resolve (those fail lazily at
  /// execution, exactly as the undecoded interpreter did).
  const isa::InstructionDescriptor* custom = nullptr;
};

class DecodedProgram {
 public:
  /// Decodes every core stream of `program` against `registry`. Descriptor
  /// pointers alias `registry`, which must outlive the decode (the same
  /// lifetime callers already guarantee for SimOptions::registry).
  static std::shared_ptr<const DecodedProgram> build(const isa::Program& program,
                                                     const isa::Registry& registry);

  /// The process-wide decode cache: returns the existing decode of an
  /// identical program (same instruction bytes, same registry) or builds and
  /// publishes one. Content-addressed and single-flight, so N simulators
  /// launched concurrently on one program produce exactly one decode.
  static std::shared_ptr<const DecodedProgram> shared(const isa::Program& program,
                                                      const isa::Registry& registry);

  const std::vector<DecodedInst>& core(std::int64_t id) const {
    return cores_[static_cast<std::size_t>(id)];
  }
  std::int64_t core_count() const noexcept {
    return static_cast<std::int64_t>(cores_.size());
  }
  /// Residency accounting (tests, bench notes): bytes of decoded stream.
  std::int64_t bytes() const noexcept { return bytes_; }
  /// Content fingerprint the cache keyed this decode on.
  std::uint64_t fingerprint() const noexcept { return fingerprint_; }

  /// Stable content hash of a program's instruction streams (field-by-field,
  /// so struct padding never leaks in).
  static std::uint64_t program_fingerprint(const isa::Program& program);

 private:
  DecodedProgram() = default;

  std::vector<std::vector<DecodedInst>> cores_;
  std::int64_t bytes_ = 0;
  std::uint64_t fingerprint_ = 0;
};

/// Cumulative counters of the process-wide decode cache (for the sharing
/// tests mirroring the GlobalImage residency test, and for the cimflowd
/// `stats` verb's cache-warmth report).
struct DecodedCacheStats {
  std::size_t lookups = 0;
  std::size_t hits = 0;    ///< served an existing live decode
  std::size_t builds = 0;  ///< decoded fresh (miss or expired entry)
  std::size_t live = 0;    ///< decodes currently alive (strong refs exist)
  std::size_t strong_entries = 0;    ///< decodes pinned by the LRU right now
  std::size_t strong_evictions = 0;  ///< LRU pins dropped by the capacity cap
  std::size_t strong_capacity = 0;   ///< current LRU capacity (entries)
};
DecodedCacheStats decoded_cache_stats();

/// Default strong-LRU capacity when CIMFLOW_DECODE_LRU is unset.
inline constexpr std::size_t kDefaultStrongDecodes = 8;

/// Resizes the strong-reference decode LRU (0 disables pinning entirely —
/// the pure weak-entry behavior the differential tests want). Shrinking
/// drops the least recently used pins immediately. Returns the previous
/// capacity so callers can restore it.
std::size_t decoded_cache_set_strong_capacity(std::size_t capacity);

}  // namespace cimflow::sim
