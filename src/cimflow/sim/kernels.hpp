// Pointer-resolved INT8 functional kernels — the bodies of the simulator's
// hot per-element loops, hoisted out of CoreModel so the per-byte address
// routing (check_span + local/global branch per element) happens once per
// instruction instead of once per byte.
//
// Two implementations of the MVM kernel live here on purpose:
//   * `mvm_accumulate` — the new blocked kernel: weights stream row-major
//     (contiguous, prefetch-friendly), the output column accumulates in a
//     register-resident int32 scratch row, zero input bytes skip their whole
//     weight row;
//   * `mvm_ref` — the retained seed-era reference: column-strided weight
//     walk with a per-column little-endian byte swizzle, exactly the
//     arithmetic the old interpreter performed.
// The reference is the oracle of the randomized differential tests and the
// "old" side of the bench_micro_sim shape sweep; both produce bit-identical
// output bytes (all arithmetic is mod 2^32, see the notes on each kernel).
//
// Everything here is endian-exact: the simulator's int32 memory format is
// little-endian by definition (the old read_i32/write_i32 swizzle), and the
// row load/store helpers collapse to single memcpys on little-endian hosts
// while staying correct on big-endian ones.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace cimflow::sim::kernels {

/// Loads the simulator's little-endian int32 memory format.
inline std::int32_t load_le32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  if constexpr (std::endian::native == std::endian::big) {
    v = ((v & 0xFF000000u) >> 24) | ((v & 0x00FF0000u) >> 8) |
        ((v & 0x0000FF00u) << 8) | ((v & 0x000000FFu) << 24);
  }
  return static_cast<std::int32_t>(v);
}

inline void store_le32(std::uint8_t* p, std::int32_t value) {
  auto v = static_cast<std::uint32_t>(value);
  if constexpr (std::endian::native == std::endian::big) {
    v = ((v & 0xFF000000u) >> 24) | ((v & 0x00FF0000u) >> 8) |
        ((v & 0x0000FF00u) << 8) | ((v & 0x000000FFu) << 24);
  }
  std::memcpy(p, &v, 4);
}

/// Bulk LE row transfers: one memcpy on little-endian hosts.
void load_le32_row(std::int32_t* dst, const std::uint8_t* src, std::int64_t n);
void store_le32_row(std::uint8_t* dst, const std::int32_t* src, std::int64_t n);

// ---------------------------------------------------------------------------
// MVM
// ---------------------------------------------------------------------------

/// acc[j] += sum_i in[i] * w[i*cols + j], weights streamed row-major. `acc`
/// must hold `cols` int32 accumulators preloaded by the caller (zeros, or the
/// prior psum in accumulate mode). Accumulation is mod 2^32 (unsigned
/// internally — no signed-overflow UB), which matches the reference's
/// int64-sum-then-truncate bit for bit.
void mvm_accumulate(std::int32_t* acc, const std::uint8_t* in, const std::int8_t* w,
                    std::int64_t rows, std::int64_t cols);

/// The retained seed-era kernel: per output column, an int64 dot product over
/// column-strided weights, then a little-endian read-modify-write of the
/// 4-byte output word — the differential-test oracle and the
/// microbenchmark's "old" side. `out` holds `4*cols` bytes.
void mvm_ref(std::uint8_t* out, const std::uint8_t* in, const std::int8_t* w,
             std::int64_t rows, std::int64_t cols, bool accumulate);

}  // namespace cimflow::sim::kernels
