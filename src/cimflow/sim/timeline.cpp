#include "cimflow/sim/timeline.hpp"

#include <algorithm>
#include <limits>
#include <string_view>
#include <utility>

#include "cimflow/support/io.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::sim {
namespace {

constexpr int kSimPid = 0;   ///< deterministic sim-cycle tracks
constexpr int kHostPid = 1;  ///< wall-clock compile/flow spans (info-only)

JsonObject make_event(const char* ph, double ts, int pid, std::int64_t tid,
                      const std::string& name) {
  JsonObject event;
  event["ph"] = Json(ph);
  event["ts"] = Json(ts);
  event["pid"] = Json(pid);
  event["tid"] = Json(tid);
  event["name"] = Json(name);
  return event;
}

}  // namespace

Timeline::Timeline(std::int64_t core_count) {
  tracks_.resize(static_cast<std::size_t>(std::max<std::int64_t>(core_count, 0)));
}

void Timeline::emit_slice(std::int64_t core, const char* name,
                          std::int64_t start, std::int64_t end,
                          JsonObject args) {
  JsonObject event =
      make_event("X", static_cast<double>(start), kSimPid, core, name);
  event["dur"] = Json(static_cast<double>(std::max<std::int64_t>(end - start, 0)));
  if (!args.empty()) event["args"] = Json(std::move(args));
  events_.push_back(Json(std::move(event)));
  ++recorded_;
}

void Timeline::block(std::int64_t core, std::int64_t t, const char* reason,
                     JsonObject args) {
  CoreTrack& track = tracks_[static_cast<std::size_t>(core)];
  if (!track.open || std::string_view(track.phase) != "run") return;
  emit_slice(core, "run", track.phase_start, t, {});
  track.phase = reason;
  track.phase_start = t;
  track.args = std::move(args);
}

void Timeline::wake(std::int64_t core, std::int64_t t) {
  CoreTrack& track = tracks_[static_cast<std::size_t>(core)];
  if (!track.open || std::string_view(track.phase) == "run") return;
  emit_slice(core, track.phase, track.phase_start, t, std::move(track.args));
  track.phase = "run";
  track.phase_start = t;
  track.args = {};
}

void Timeline::halt(std::int64_t core, std::int64_t t) {
  CoreTrack& track = tracks_[static_cast<std::size_t>(core)];
  if (!track.open) return;
  emit_slice(core, track.phase, track.phase_start, t, std::move(track.args));
  track.open = false;
}

void Timeline::instant(std::int64_t core, std::int64_t t, const char* name,
                       JsonObject args) {
  JsonObject event =
      make_event("i", static_cast<double>(t), kSimPid, core, name);
  event["s"] = Json("t");  // thread-scoped instant
  if (!args.empty()) event["args"] = Json(std::move(args));
  events_.push_back(Json(std::move(event)));
  ++recorded_;
}

void Timeline::counter(std::int64_t t, const char* name, std::int64_t value) {
  // Counter tracks render per (pid, name); park them on a tid past the cores.
  JsonObject event = make_event("C", static_cast<double>(t), kSimPid,
                                static_cast<std::int64_t>(tracks_.size()), name);
  JsonObject args;
  args["value"] = Json(value);
  event["args"] = Json(std::move(args));
  events_.push_back(Json(std::move(event)));
  ++recorded_;
}

void Timeline::add_host_spans(const std::vector<trace::SpanRecord>& spans) {
  if (spans.empty()) return;
  std::int64_t base = std::numeric_limits<std::int64_t>::max();
  for (const trace::SpanRecord& span : spans) base = std::min(base, span.start_ns);
  for (const trace::SpanRecord& span : spans) {
    JsonObject event =
        make_event("X", static_cast<double>(span.start_ns - base) * 1e-3,
                   kHostPid, 0, span.name);
    event["dur"] = Json(static_cast<double>(span.dur_ns) * 1e-3);
    host_events_.push_back(Json(std::move(event)));
    ++recorded_;
  }
}

Json Timeline::to_json() const {
  JsonArray events;
  events.reserve(events_.size() + host_events_.size() + tracks_.size() + 4);

  // Metadata first: process names, then one thread name per core track.
  // Metadata events carry ts 0 so every event in the file has ph/ts/pid/tid.
  auto meta = [](const char* what, int pid, std::int64_t tid,
                 const std::string& name) {
    JsonObject event = make_event("M", 0.0, pid, tid, what);
    JsonObject args;
    args["name"] = Json(name);
    event["args"] = Json(std::move(args));
    return Json(std::move(event));
  };
  events.push_back(meta("process_name", kSimPid, 0, "cimflow-sim (ts = cycles)"));
  for (std::size_t core = 0; core < tracks_.size(); ++core) {
    events.push_back(meta("thread_name", kSimPid,
                          static_cast<std::int64_t>(core),
                          strprintf("core %zu", core)));
  }
  if (!host_events_.empty()) {
    events.push_back(
        meta("process_name", kHostPid, 0, "cimflow-host (wall clock)"));
    events.push_back(meta("thread_name", kHostPid, 0, "compile/flow spans"));
  }

  events.insert(events.end(), events_.begin(), events_.end());
  events.insert(events.end(), host_events_.begin(), host_events_.end());

  JsonObject root;
  root["displayTimeUnit"] = Json("ms");
  root["traceEvents"] = Json(std::move(events));
  return Json(std::move(root));
}

void Timeline::write(const std::string& path) const {
  write_text_file(path, to_json().dump() + "\n");
}

}  // namespace cimflow::sim
