// The simulator's global-time kernel. Cores advance through conservative
// time windows of `sync_window` cycles: inside a window every core runs
// purely on core-private state (sim/core_model), so the window can be
// sharded across worker threads; at each window boundary the scheduler
// resolves all shared-fabric traffic — SEND routing through the NoC,
// global-buffer bank service, message delivery, barrier release — serially
// and in a deterministic order (request time, then core id, then per-core
// program order). Because a blocked core's architectural clock does not
// advance, deferring its shared access to the boundary never changes the
// modeled cycle it completes at: the SimReport is byte-identical for any
// thread count, including the serial kernel.
#pragma once

#include <cstdint>
#include <vector>

#include "cimflow/sim/core_model.hpp"
#include "cimflow/sim/noc.hpp"

namespace cimflow::sim {

class WindowScheduler {
 public:
  /// `context` must outlive the scheduler; its global image is already bound
  /// and staged by the caller.
  explicit WindowScheduler(const CoreContext& context);

  /// Runs the program to completion (all cores halted); throws
  /// Error(kInternal) on deadlock or watchdog expiry with per-core
  /// diagnostics.
  SimReport run(const isa::Program& program);

 private:
  /// One shared-fabric request surfaced by phase 1 of a window, in the
  /// deterministic service order (time, core, per-core program order).
  struct FabricRequest {
    std::int64_t time = 0;
    std::int64_t core = 0;
    std::int64_t seq = 0;
    bool is_send = false;
    std::size_t send_index = 0;  ///< into that core's outbox when is_send
  };

  /// Serves all posted requests and resolves barriers; wakes unblocked cores.
  void merge();
  /// Global-buffer access: bank selection, bank bandwidth/contention, and the
  /// mesh traversal between bank controller and core.
  std::int64_t serve_global(std::int64_t core_id, const GlobalRequest& request);
  [[noreturn]] void fail_deadlock();

  const CoreContext& ctx_;
  Noc noc_;
  std::vector<std::int64_t> global_chan_free_;  ///< per-bank next-free cycle
  std::vector<CoreModel> cores_;
  double global_mem_energy_pj_ = 0;
  std::vector<FabricRequest> requests_;  ///< merge scratch (reused)
};

}  // namespace cimflow::sim
