// The simulator's global-time kernel, as a discrete-event queue. Cores run
// ahead on core-private state (sim/core_model) until they need the shared
// fabric — SEND routing through the NoC, global-buffer bank service, message
// receipt, barriers — and every such request becomes an event in one global
// priority queue keyed on (request time, core id, per-core program order).
// Events commit serially in strict key order, Chandy-Misra style: an event is
// served only when its timestamp is provably below every still-running core's
// lookahead floor (a core that was just woken cannot surface a new request
// earlier than the wake that resumed it, and a running core cannot surface
// one earlier than its next fetch plus the issue latency). Service order is
// therefore exact in global time — there is no synchronization quantum and no
// window-size knob — and blocked cores schedule a wake event instead of being
// re-polled, so idle stretches are skipped outright. Because every phase of
// the loop is structural (parallel run-to-block on private state, id-ordered
// collection, serial commit), the SimReport is byte-identical for any thread
// count, including the serial kernel.
#pragma once

#include <cstdint>
#include <vector>

#include "cimflow/sim/core_model.hpp"
#include "cimflow/sim/noc.hpp"

namespace cimflow::sim {

class EventScheduler {
 public:
  /// `context` must outlive the scheduler; its global image is already bound
  /// and staged by the caller.
  explicit EventScheduler(const CoreContext& context);

  /// Runs the program to completion (all cores halted); throws
  /// Error(kInternal) on deadlock or watchdog expiry with per-core
  /// diagnostics.
  SimReport run(const isa::Program& program);

 private:
  /// One shared-fabric request in the global event queue. The key
  /// (time, core, seq) is unique per run — seq is the issuing core's program
  /// order — so the min-heap pops in one deterministic total order.
  struct Event {
    std::int64_t time = 0;
    std::int64_t core = 0;
    std::int64_t seq = 0;
    bool is_send = false;
    SendRequest send;      ///< valid when is_send
    GlobalRequest global;  ///< valid when !is_send
  };

  /// Moves every request surfaced by the last run phase into the event queue,
  /// in core-id order. Returns true when at least one core is still runnable
  /// (cut at the lookahead horizon rather than blocked).
  bool collect_requests();
  /// Serves queued events in strict (time, core, seq) order while the head
  /// event's timestamp is below the commit floor; wakes unblocked cores and
  /// lowers the floor to each wake's resume time.
  void commit_events();
  /// Releases the chip-wide barrier when every core is parked at the same
  /// tag. Returns true when a release happened.
  bool try_release_barrier();
  /// Global-buffer access: bank selection, bank bandwidth/contention, and the
  /// mesh traversal between bank controller and core.
  std::int64_t serve_global(std::int64_t core_id, const GlobalRequest& request);
  [[noreturn]] void fail_deadlock();

  void push_event(Event event);
  Event pop_event();

  const CoreContext& ctx_;
  /// Timeline sink (null = tracing off). Touched only from the serial
  /// collect/commit/barrier phases, with sim-cycle timestamps, so recording
  /// never perturbs the report and the sim tracks are thread-count-invariant.
  Timeline* timeline_ = nullptr;
  Noc noc_;
  std::vector<std::int64_t> global_chan_free_;  ///< per-bank next-free cycle
  std::vector<CoreModel> cores_;
  double global_mem_energy_pj_ = 0;
  std::vector<Event> events_;  ///< binary min-heap on (time, core, seq)
  std::int64_t frontier_ = 0;  ///< latest committed event time (lookahead base)
  SchedulerStats stats_;
};

}  // namespace cimflow::sim
