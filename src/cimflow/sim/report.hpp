// Simulation report: the "Detailed Report" of paper Fig. 2 — execution
// latency, energy breakdown per architectural component, and per-unit
// utilization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cimflow/arch/arch_config.hpp"
#include "cimflow/support/json.hpp"

namespace cimflow::sim {

/// Energy by architectural component, picojoules.
struct EnergyBreakdown {
  double cim = 0;          ///< macro arrays + adder trees + accumulators
  double vector_unit = 0;
  double scalar_unit = 0;
  double local_mem = 0;    ///< scratchpad traffic (incl. CIM_LOAD staging)
  double global_mem = 0;   ///< global buffer traffic
  double noc = 0;          ///< flit-hop energy
  double instruction = 0;  ///< fetch + decode + register file
  double leakage = 0;      ///< static energy over the run

  double total() const noexcept {
    return cim + vector_unit + scalar_unit + local_mem + global_mem + noc +
           instruction + leakage;
  }
  /// Paper Fig. 6 aggregation (dynamic energy only — the paper's 3-way
  /// breakdown does not include static power): compute unit =
  /// CIM+vector+scalar+instruction, local memory = scratchpad+global buffer,
  /// NoC = flit traffic.
  double fig6_compute() const noexcept {
    return cim + vector_unit + scalar_unit + instruction;
  }
  double fig6_local_mem() const noexcept { return local_mem + global_mem; }
  double fig6_noc() const noexcept { return noc; }
  double dynamic_total() const noexcept { return total() - leakage; }

  /// Per-component pJ plus the derived totals, as a JSON object.
  Json to_json() const;
};

struct CoreStats {
  std::int64_t instructions = 0;
  std::int64_t halt_cycle = 0;
  std::int64_t cim_busy_cycles = 0;     ///< summed over macro groups
  std::int64_t vector_busy_cycles = 0;
  std::int64_t transfer_busy_cycles = 0;

  Json to_json() const;
};

/// Event-kernel counters (informational — they describe the scheduler run,
/// not the modeled hardware). All three are deterministic for a given program
/// and SimOptions: the kernel's phases are structural, so no counter depends
/// on the thread count. `max_queue_depth` and `idle_cycles_skipped` can shift
/// with SimOptions::lookahead (a bounded horizon caps the queue and can stop
/// a core before it would block); report metrics never do.
struct SchedulerStats {
  std::int64_t events_dispatched = 0;   ///< fabric events committed
  std::int64_t max_queue_depth = 0;     ///< peak pending events
  /// Blocked-core clock advance committed per wake (recv arrival, global
  /// resolution, barrier release) instead of being re-polled — the cycles a
  /// quantum scheduler would have idled through.
  std::int64_t idle_cycles_skipped = 0;

  Json to_json() const;
};

struct SimReport {
  std::int64_t cycles = 0;            ///< chip makespan
  std::int64_t instructions = 0;      ///< dynamic instruction count
  std::int64_t mvm_count = 0;
  std::int64_t macs = 0;              ///< active MACs executed
  std::int64_t images = 0;            ///< batch size processed
  double frequency_ghz = 1.0;

  EnergyBreakdown energy;
  SchedulerStats scheduler;
  std::vector<CoreStats> cores;

  /// The kernel tier the run dispatched to ("scalar"/"avx2"/"neon"; empty on
  /// a default-constructed report). Run telemetry, like wall-clock timings:
  /// deliberately EXCLUDED from to_json()/to_csv_row() so report payloads
  /// stay byte-identical across tiers (the hard invariant). Shown in
  /// summary() and exported by the bench harnesses as an info metric.
  std::string kernel_tier;

  double seconds() const noexcept { return static_cast<double>(cycles) / (frequency_ghz * 1e9); }
  double energy_mj() const noexcept { return energy.total() * 1e-9; }
  /// Sustained throughput in INT8 TOPS (2 ops per MAC).
  double tops() const noexcept {
    return seconds() > 0 ? 2.0 * static_cast<double>(macs) / seconds() / 1e12 : 0;
  }
  double energy_per_image_mj() const noexcept {
    return images > 0 ? energy_mj() / static_cast<double>(images) : 0;
  }
  double latency_per_image_ms() const noexcept {
    return images > 0 ? seconds() * 1e3 / static_cast<double>(images) : 0;
  }
  /// Mean CIM macro-group occupancy across the run, in [0, 1].
  double cim_utilization(const arch::ArchConfig& arch) const noexcept;

  std::string summary() const;

  /// Machine-readable form of the detailed report: the raw counters, the
  /// derived throughput/latency/energy figures, the energy breakdown, and the
  /// per-core statistics. Numbers round-trip exactly through Json::dump.
  Json to_json() const;

  /// Flat CSV view of the same report (cores aggregated away) for sweep
  /// spreadsheets; columns match csv_header().
  static std::string csv_header();
  std::string to_csv_row() const;
};

}  // namespace cimflow::sim
