#include "cimflow/sim/memory.hpp"

#include <algorithm>
#include <cstring>

#include "cimflow/support/status.hpp"

namespace cimflow::sim {

void GlobalImage::bind(const std::vector<std::uint8_t>* base,
                       std::shared_ptr<const void> owner) {
  base_ = base;
  owner_ = std::move(owner);
  size_ = base_bytes();
  owned_pages_.clear();
  const std::int64_t page_count = (size_ + kPageBytes - 1) / kPageBytes;
  pages_ = std::vector<std::atomic<std::uint8_t*>>(static_cast<std::size_t>(page_count));
  for (auto& page : pages_) page.store(nullptr, std::memory_order_relaxed);
}

void GlobalImage::ensure_size(std::int64_t bytes) {
  if (bytes <= size_) return;
  size_ = bytes;
  const std::int64_t page_count = (size_ + kPageBytes - 1) / kPageBytes;
  if (page_count > static_cast<std::int64_t>(pages_.size())) {
    // std::atomic is not movable: rebuild the table and re-publish the
    // already-materialized pages (setup-time only, no concurrent readers).
    std::vector<std::atomic<std::uint8_t*>> grown(static_cast<std::size_t>(page_count));
    for (std::size_t i = 0; i < pages_.size(); ++i) {
      grown[i].store(pages_[i].load(std::memory_order_relaxed), std::memory_order_relaxed);
    }
    for (std::size_t i = pages_.size(); i < grown.size(); ++i) {
      grown[i].store(nullptr, std::memory_order_relaxed);
    }
    pages_ = std::move(grown);
  }
}

const std::uint8_t* GlobalImage::page_for_read(std::int64_t page) const {
  return pages_[static_cast<std::size_t>(page)].load(std::memory_order_acquire);
}

std::uint8_t* GlobalImage::page_for_write(std::int64_t page) {
  std::uint8_t* data = pages_[static_cast<std::size_t>(page)].load(std::memory_order_acquire);
  if (data != nullptr) return data;
  std::lock_guard<std::mutex> lock(mu_);
  data = pages_[static_cast<std::size_t>(page)].load(std::memory_order_relaxed);
  if (data != nullptr) return data;
  auto owned = std::make_unique<std::uint8_t[]>(static_cast<std::size_t>(kPageBytes));
  const std::int64_t base_size = base_bytes();
  const std::int64_t start = page * kPageBytes;
  const std::int64_t from_base = std::clamp<std::int64_t>(base_size - start, 0, kPageBytes);
  if (from_base > 0) {
    std::memcpy(owned.get(), base_->data() + start, static_cast<std::size_t>(from_base));
  }
  if (from_base < kPageBytes) {
    std::memset(owned.get() + from_base, 0, static_cast<std::size_t>(kPageBytes - from_base));
  }
  data = owned.get();
  owned_pages_.push_back(std::move(owned));
  pages_[static_cast<std::size_t>(page)].store(data, std::memory_order_release);
  return data;
}

std::uint8_t GlobalImage::load_u8(std::int64_t addr) const {
  CIMFLOW_CHECK(addr >= 0 && addr < size_, "global image read out of range");
  const std::uint8_t* page = page_for_read(addr / kPageBytes);
  if (page != nullptr) return page[addr % kPageBytes];
  return addr < base_bytes() ? (*base_)[static_cast<std::size_t>(addr)] : 0;
}

void GlobalImage::store_u8(std::int64_t addr, std::uint8_t value) {
  CIMFLOW_CHECK(addr >= 0 && addr < size_, "global image write out of range");
  page_for_write(addr / kPageBytes)[addr % kPageBytes] = value;
}

void GlobalImage::read_bytes(std::int64_t addr, std::int64_t len, std::uint8_t* out) const {
  CIMFLOW_CHECK(addr >= 0 && len >= 0 && addr + len <= size_,
                "global image read out of range");
  while (len > 0) {
    const std::int64_t page = addr / kPageBytes;
    const std::int64_t offset = addr % kPageBytes;
    const std::int64_t chunk = std::min(len, kPageBytes - offset);
    const std::uint8_t* data = page_for_read(page);
    if (data != nullptr) {
      std::memcpy(out, data + offset, static_cast<std::size_t>(chunk));
    } else {
      const std::int64_t from_base = std::clamp<std::int64_t>(base_bytes() - addr, 0, chunk);
      if (from_base > 0) {
        std::memcpy(out, base_->data() + addr, static_cast<std::size_t>(from_base));
      }
      if (from_base < chunk) {
        std::memset(out + from_base, 0, static_cast<std::size_t>(chunk - from_base));
      }
    }
    addr += chunk;
    out += chunk;
    len -= chunk;
  }
}

void GlobalImage::write_bytes(std::int64_t addr, const std::uint8_t* src, std::int64_t len) {
  CIMFLOW_CHECK(addr >= 0 && len >= 0 && addr + len <= size_,
                "global image write out of range");
  while (len > 0) {
    const std::int64_t offset = addr % kPageBytes;
    const std::int64_t chunk = std::min(len, kPageBytes - offset);
    std::memcpy(page_for_write(addr / kPageBytes) + offset, src,
                static_cast<std::size_t>(chunk));
    addr += chunk;
    src += chunk;
    len -= chunk;
  }
}

const std::uint8_t* GlobalImage::span_for_read(std::int64_t addr, std::int64_t len) const {
  CIMFLOW_CHECK(addr >= 0 && len > 0 && addr + len <= size_,
                "global image span out of range");
  const std::int64_t first = addr / kPageBytes;
  const std::int64_t last = (addr + len - 1) / kPageBytes;
  if (first == last) {
    if (const std::uint8_t* page = page_for_read(first)) {
      return page + addr % kPageBytes;
    }
    return addr + len <= base_bytes() ? base_->data() + addr : nullptr;
  }
  // Multi-page: contiguous only when the whole span still reads through the
  // base (no overlapping page materialized, nothing past the base's end).
  if (addr + len > base_bytes()) return nullptr;
  for (std::int64_t page = first; page <= last; ++page) {
    if (page_for_read(page) != nullptr) return nullptr;
  }
  return base_->data() + addr;
}

std::uint8_t* GlobalImage::span_for_write(std::int64_t addr, std::int64_t len) {
  CIMFLOW_CHECK(addr >= 0 && len > 0 && addr + len <= size_,
                "global image span out of range");
  const std::int64_t first = addr / kPageBytes;
  if (first != (addr + len - 1) / kPageBytes) return nullptr;
  return page_for_write(first) + addr % kPageBytes;
}

std::int64_t GlobalImage::overlay_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(owned_pages_.size()) * kPageBytes;
}

}  // namespace cimflow::sim
