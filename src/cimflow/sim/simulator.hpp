// The CIMFlow cycle-accurate simulator (paper Sec. III-D). Each core is an
// in-order 3-stage (IF/DE/EX) pipeline model with a register scoreboard,
// independently pipelined execution units (per-macro-group CIM occupancy,
// vector, scalar, transfer), and 256-byte-granule local-memory dependency
// tracking. Cores advance in global-time order through a min-heap kernel;
// SEND/RECV rendezvous through the mesh NoC model and BARRIER implements
// stage transitions. Functional mode executes bit-exact INT8 semantics
// (validated against the golden executor); timing mode skips data payloads
// for large design-space sweeps.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cimflow/arch/arch_config.hpp"
#include "cimflow/isa/program.hpp"
#include "cimflow/isa/registry.hpp"
#include "cimflow/sim/report.hpp"

namespace cimflow::sim {

struct SimOptions {
  bool functional = false;          ///< execute real INT8 data movement/math
  std::int64_t max_cycles = std::int64_t{1} << 40;  ///< watchdog
  std::int64_t sync_window = 256;   ///< max cycles a core may run ahead
  const isa::Registry* registry = nullptr;  ///< defaults to Registry::builtin()
};

class Simulator {
 public:
  explicit Simulator(const arch::ArchConfig& arch, SimOptions options = {});
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Runs the program to completion (all cores halted). In functional mode
  /// `inputs` supplies one blob of `program.input_bytes_per_image` bytes per
  /// image. Throws Error(kInternal) on deadlock or watchdog expiry, with a
  /// per-core diagnostic in the message.
  SimReport run(const isa::Program& program,
                const std::vector<std::vector<std::uint8_t>>& inputs = {});

  /// Output blob of image `image` after a functional run.
  std::vector<std::uint8_t> output(const isa::Program& program,
                                   std::int64_t image) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cimflow::sim
