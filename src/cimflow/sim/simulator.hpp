// The CIMFlow cycle-accurate simulator (paper Sec. III-D), as a modular
// engine:
//   * sim/core_model — the per-core IF/DE/EX pipeline, scoreboard, execution
//     units and local-memory dependency tracker;
//   * sim/scheduler — the discrete-event kernel: cores run ahead on private
//     state and all shared-fabric traffic (SEND/RECV rendezvous,
//     global-buffer bank + NoC contention, barriers) commits from one global
//     priority event queue in strict (time, core, program order) order —
//     exact global-time service, no synchronization quantum;
//   * sim/memory — program image residency: the global image is borrowed
//     from the program (copy-on-write overlay), so concurrent simulators of
//     one program share the weight bytes instead of copying them.
// Functional mode executes bit-exact INT8 semantics (validated against the
// golden executor); timing mode skips data payloads for large design-space
// sweeps.
//
// Determinism guarantee: `SimOptions::threads` only changes how the event
// scheduler fans cores out over worker threads — the SimReport (and every
// functional output byte) is identical for any thread count, including the
// serial kernel at threads = 1.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cimflow/arch/arch_config.hpp"
#include "cimflow/isa/program.hpp"
#include "cimflow/isa/registry.hpp"
#include "cimflow/sim/kernels_dispatch.hpp"
#include "cimflow/sim/report.hpp"

namespace cimflow::trace {
class Collector;
}  // namespace cimflow::trace

namespace cimflow::sim {

class DecodedProgram;

struct SimOptions {
  bool functional = false;          ///< execute real INT8 data movement/math
  std::int64_t max_cycles = std::int64_t{1} << 40;  ///< watchdog

  // --- event-core group -----------------------------------------------------
  // The scheduler is a discrete-event kernel: shared-fabric requests commit
  // from a global priority queue in strict (time, core, program order) order,
  // so there is no synchronization quantum and no fidelity knob — every
  // report metric is exact regardless of the settings below.
  //
  /// Run-ahead bound, in cycles: how far a core may advance past the
  /// committed event frontier before the scheduler commits queued events.
  /// 0 = unbounded (a core runs until it blocks on the fabric or halts) —
  /// the fastest setting and the default. A positive bound caps pending-event
  /// memory on pathological all-compute-then-all-communicate programs at the
  /// cost of extra scheduler rounds. Never changes a report metric; only the
  /// scheduler info counters (queue depth, idle cycles skipped) may shift.
  std::int64_t lookahead = 0;
  /// Worker threads sharding cores across the event scheduler's run phase.
  /// 1 = serial kernel, 0 = hardware concurrency (also reachable as
  /// `--sim-threads` / CIMFLOW_SIM_THREADS in the CLI and bench harnesses).
  /// Reports are byte-identical for any value; raise it to put the whole
  /// machine on one big simulation.
  std::int64_t threads = 1;
  /// Force the retained byte-routed functional kernels instead of the
  /// pointer-resolved fast paths. Purely a differential-testing/debugging
  /// knob: both implementations produce byte-identical outputs and never
  /// touch timing, so this trades speed for nothing — keep it off outside
  /// the kernel-equivalence tests.
  bool reference_kernels = false;
  /// SIMD implementation tier for the functional hot-path kernels (see
  /// kernels_dispatch.hpp). kAuto resolves at simulator construction: the
  /// strict CIMFLOW_KERNELS env override wins, otherwise the best tier the
  /// host supports. Every tier is byte-identical — this knob (like
  /// reference_kernels) only moves wall clock, never a report metric.
  kernels::KernelTier kernel_tier = kernels::KernelTier::kAuto;
  const isa::Registry* registry = nullptr;  ///< defaults to Registry::builtin()

  // --- observability (never perturbs results) -------------------------------
  /// Chrome trace-event timeline destination ("" = tracing off, the default).
  /// When set, each run records one track per core (run/blocked/parked
  /// intervals plus instant events for rendezvous, bank service, NoC
  /// contention and barrier releases) and writes the JSON file on completion.
  /// All timeline hooks observe the scheduler's serial commit order with
  /// sim-cycle timestamps, so the SimReport, every functional output byte,
  /// and the sim-track trace bytes themselves are identical with tracing on
  /// or off, at any thread count.
  std::string trace_path;
  /// Optional wall-clock spans (e.g. the compile phases of the surrounding
  /// flow) embedded into the trace file as a separate host-clock track.
  /// Only completed spans at write time are included; info-only by nature.
  const trace::Collector* trace_host = nullptr;
};

/// Residency of the simulator's global-memory image after a run (see
/// sim/memory.hpp): `base_bytes` are borrowed from (and shared with) the
/// program, `overlay_bytes` are this simulator's private copy-on-write pages.
/// `decoded_bytes` is the predecoded instruction stream (see decoded.hpp) —
/// shared with every concurrent simulator of the same program, exactly like
/// the base image.
struct SimMemoryStats {
  std::int64_t global_base_bytes = 0;
  std::int64_t global_overlay_bytes = 0;
  std::int64_t decoded_bytes = 0;
};

class Simulator {
 public:
  explicit Simulator(const arch::ArchConfig& arch, SimOptions options = {});
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Runs the program to completion (all cores halted). In functional mode
  /// `inputs` supplies one blob of `program.input_bytes_per_image` bytes per
  /// image. Throws Error(kInternal) on deadlock or watchdog expiry, with a
  /// per-core diagnostic in the message.
  ///
  /// The program's global image is borrowed for the duration of the run and
  /// any subsequent output() calls — `program` must stay alive and unmodified
  /// until then (every existing caller already guarantees this). Callers
  /// holding the program behind a shared_ptr can pass `image_owner` (aliased
  /// to the program) so shared sweeps keep the image alive automatically.
  /// `predecoded`, when supplied, must be a decode of exactly this program
  /// against this simulator's registry (e.g. the handle a DSE cache entry
  /// pins) — it skips the content-hash lookup in the shared decode cache.
  /// When null the simulator resolves the decode itself.
  SimReport run(const isa::Program& program,
                const std::vector<std::vector<std::uint8_t>>& inputs = {},
                std::shared_ptr<const void> image_owner = nullptr,
                std::shared_ptr<const DecodedProgram> predecoded = nullptr);

  /// Output blob of image `image` after a functional run.
  std::vector<std::uint8_t> output(const isa::Program& program,
                                   std::int64_t image) const;

  /// Global-image residency of the most recent run.
  SimMemoryStats memory_stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cimflow::sim
