#include "cimflow/sim/core_model.hpp"

#include <algorithm>
#include <cstring>

#include "cimflow/support/numeric.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::sim {

using isa::Instruction;
using isa::Opcode;
using isa::ScalarFunct;
using isa::SReg;
using isa::VecFunct;

namespace {

constexpr std::int64_t kGranuleBytes = 256;
constexpr std::int64_t kBranchRedirect = 1;  ///< extra cycles after a taken branch

std::int64_t sreg_i(const std::array<std::int32_t, 32>& sregs, SReg r) {
  return sregs[static_cast<std::size_t>(r)];
}

}  // namespace

/// CustomExecContext adapter for user-registered instructions (core-local
/// state only, so custom callbacks stay safe under the parallel scheduler).
struct CoreModel::CustomCtx final : isa::CustomExecContext {
  CoreModel* core = nullptr;
  std::int32_t reg(std::uint8_t index) const override { return core->regs_[index & 31]; }
  void set_reg(std::uint8_t index, std::int32_t value) override {
    core->regs_[index & 31] = value;
  }
  std::int32_t sreg(std::uint8_t index) const override { return core->sregs_[index & 31]; }
  std::uint8_t load_byte(std::uint32_t local_offset) const override {
    return core->load_u8(isa::make_local_address(local_offset));
  }
  void store_byte(std::uint32_t local_offset, std::uint8_t value) override {
    core->store_u8(isa::make_local_address(local_offset), value);
  }
  std::int64_t core_id() const override { return core->id; }
};

void CoreModel::reset(const CoreContext& context, std::int64_t core_id,
                      const std::vector<isa::Instruction>* code) {
  ctx_ = context;
  id = core_id;
  code_ = code;
  pc = 0;
  next_fetch = 0;
  status = code_->empty() ? Status::kHalted : Status::kReady;

  outbox.clear();
  pending_global.reset();
  global_resolution.reset();
  inbox.clear();
  recv_key = {0, 0};
  barrier_tag = 0;
  barrier_issue = 0;
  stats = CoreStats{};
  energy = EnergyBreakdown{};
  mvm_count = 0;
  total_macs = 0;

  last_issue_ = -1;
  reg_ready_.fill(0);
  mg_free_.assign(static_cast<std::size_t>(ctx_.arch->core().mg_per_unit), 0);
  vec_free_ = 0;
  scalar_free_ = 0;
  transfer_free_ = 0;
  regs_.fill(0);
  sregs_.fill(0);
  lmem_.assign(static_cast<std::size_t>(ctx_.arch->core().local_mem_bytes), 0);
  mg_tile_elems_ = ctx_.arch->mg_rows() * ctx_.arch->mg_cols();
  if (ctx_.options->functional) {
    mg_weights_.assign(
        static_cast<std::size_t>(ctx_.arch->core().mg_per_unit * mg_tile_elems_), 0);
  } else {
    mg_weights_.clear();
  }
  gr_write_.assign(
      static_cast<std::size_t>(ceil_div(ctx_.arch->core().local_mem_bytes, kGranuleBytes)),
      0);
  gr_read_ = gr_write_;
  request_seq_ = 0;
}

void CoreModel::fail(const std::string& what) const {
  raise(ErrorCode::kInternal,
        what + strprintf("\n  core %lld: pc=%lld time=%lld status=%d\n", (long long)id,
                         (long long)pc, (long long)next_fetch, static_cast<int>(status)));
}

// ============================================================================
// memory routing
// ============================================================================

void CoreModel::check_span(std::uint32_t addr, std::int64_t len) {
  if (isa::is_local_address(addr)) {
    const std::uint32_t off = isa::local_offset(addr);
    if (off + static_cast<std::uint64_t>(len) > lmem_.size()) {
      fail(strprintf("core %lld local access out of range: off=%u len=%lld",
                     (long long)id, off, (long long)len));
    }
  } else if (addr + static_cast<std::uint64_t>(len) >
             static_cast<std::uint64_t>(ctx_.global->size())) {
    fail(strprintf("global access out of range: addr=%u len=%lld", addr, (long long)len));
  }
}

std::uint8_t CoreModel::load_u8(std::uint32_t addr) {
  check_span(addr, 1);
  if (isa::is_local_address(addr)) return lmem_[isa::local_offset(addr)];
  return ctx_.global->load_u8(addr);
}

void CoreModel::store_u8(std::uint32_t addr, std::uint8_t value) {
  check_span(addr, 1);
  if (isa::is_local_address(addr)) {
    lmem_[isa::local_offset(addr)] = value;
  } else {
    ctx_.global->store_u8(addr, value);
  }
}

std::int32_t CoreModel::read_i32(std::uint32_t addr) {
  check_span(addr, 4);
  std::uint8_t raw[4];
  if (isa::is_local_address(addr)) {
    std::memcpy(raw, lmem_.data() + isa::local_offset(addr), 4);
  } else {
    ctx_.global->read_bytes(addr, 4, raw);
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(raw[i]) << (8 * i);
  return static_cast<std::int32_t>(v);
}

void CoreModel::write_i32(std::uint32_t addr, std::int32_t value) {
  check_span(addr, 4);
  std::uint8_t raw[4];
  const std::uint32_t v = static_cast<std::uint32_t>(value);
  for (int i = 0; i < 4; ++i) raw[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
  if (isa::is_local_address(addr)) {
    std::memcpy(lmem_.data() + isa::local_offset(addr), raw, 4);
  } else {
    ctx_.global->write_bytes(addr, raw, 4);
  }
}

void CoreModel::copy_bytes(std::uint32_t dst, std::uint32_t src, std::int64_t len) {
  if (len <= 0) return;
  check_span(src, len);
  check_span(dst, len);
  const bool src_local = isa::is_local_address(src);
  const bool dst_local = isa::is_local_address(dst);
  if (src_local && dst_local) {
    std::memmove(lmem_.data() + isa::local_offset(dst),
                 lmem_.data() + isa::local_offset(src), static_cast<std::size_t>(len));
  } else if (src_local) {
    ctx_.global->write_bytes(dst, lmem_.data() + isa::local_offset(src), len);
  } else if (dst_local) {
    ctx_.global->read_bytes(src, len, lmem_.data() + isa::local_offset(dst));
  } else {
    // Global-to-global bounces through the core scratch so overlapping
    // regions keep memmove semantics.
    scratch_.resize(static_cast<std::size_t>(len));
    ctx_.global->read_bytes(src, len, scratch_.data());
    ctx_.global->write_bytes(dst, scratch_.data(), len);
  }
}

std::int64_t CoreModel::mem_dep_start(std::uint32_t addr, std::int64_t len,
                                      bool is_write, std::int64_t start) const {
  if (!isa::is_local_address(addr) || len <= 0) return start;
  const std::int64_t g0 = isa::local_offset(addr) / kGranuleBytes;
  const std::int64_t g1 =
      std::min<std::int64_t>(static_cast<std::int64_t>(gr_write_.size()) - 1,
                             (isa::local_offset(addr) + len - 1) / kGranuleBytes);
  for (std::int64_t g = g0; g <= g1; ++g) {
    start = std::max(start, gr_write_[static_cast<std::size_t>(g)]);
    if (is_write) start = std::max(start, gr_read_[static_cast<std::size_t>(g)]);
  }
  return start;
}

void CoreModel::mem_dep_finish(std::uint32_t addr, std::int64_t len, bool is_write,
                               std::int64_t done) {
  if (!isa::is_local_address(addr) || len <= 0) return;
  const std::int64_t g0 = isa::local_offset(addr) / kGranuleBytes;
  const std::int64_t g1 =
      std::min<std::int64_t>(static_cast<std::int64_t>(gr_write_.size()) - 1,
                             (isa::local_offset(addr) + len - 1) / kGranuleBytes);
  for (std::int64_t g = g0; g <= g1; ++g) {
    auto& slot = is_write ? gr_write_[static_cast<std::size_t>(g)]
                          : gr_read_[static_cast<std::size_t>(g)];
    slot = std::max(slot, done);
  }
}

// ============================================================================
// functional helpers
// ============================================================================

void CoreModel::exec_vec(const Instruction& inst, std::int64_t n) {
  const auto funct = static_cast<VecFunct>(inst.funct);
  const auto dst = static_cast<std::uint32_t>(regs_[inst.rd]);
  const auto a = static_cast<std::uint32_t>(regs_[inst.rs]);
  const auto b = static_cast<std::uint32_t>(regs_[inst.rt]);
  auto rd8 = [&](std::uint32_t base, std::int64_t i) {
    return static_cast<std::int8_t>(load_u8(base + static_cast<std::uint32_t>(i)));
  };
  auto wr8 = [&](std::uint32_t base, std::int64_t i, std::int8_t v) {
    store_u8(base + static_cast<std::uint32_t>(i), static_cast<std::uint8_t>(v));
  };
  const int shift = static_cast<int>(sreg_i(sregs_, SReg::kQuantShift));
  const auto zero = static_cast<std::int32_t>(sreg_i(sregs_, SReg::kQuantZero));
  switch (funct) {
    case VecFunct::kCopy8:
      for (std::int64_t i = 0; i < n; ++i) wr8(dst, i, rd8(a, i));
      break;
    case VecFunct::kAdd8:
      for (std::int64_t i = 0; i < n; ++i) {
        wr8(dst, i, saturate_int8(static_cast<std::int32_t>(rd8(a, i)) + rd8(b, i)));
      }
      break;
    case VecFunct::kSub8:
      for (std::int64_t i = 0; i < n; ++i) {
        wr8(dst, i, saturate_int8(static_cast<std::int32_t>(rd8(a, i)) - rd8(b, i)));
      }
      break;
    case VecFunct::kMax8:
      for (std::int64_t i = 0; i < n; ++i) wr8(dst, i, std::max(rd8(a, i), rd8(b, i)));
      break;
    case VecFunct::kMin8:
      for (std::int64_t i = 0; i < n; ++i) wr8(dst, i, std::min(rd8(a, i), rd8(b, i)));
      break;
    case VecFunct::kRelu8:
      for (std::int64_t i = 0; i < n; ++i) wr8(dst, i, std::max<std::int8_t>(rd8(a, i), 0));
      break;
    case VecFunct::kFill8: {
      const auto value = static_cast<std::int8_t>(regs_[inst.rt] & 0xFF);
      for (std::int64_t i = 0; i < n; ++i) wr8(dst, i, value);
      break;
    }
    case VecFunct::kAdd32:
      for (std::int64_t i = 0; i < n; ++i) {
        write_i32(dst + static_cast<std::uint32_t>(4 * i),
                  read_i32(a + static_cast<std::uint32_t>(4 * i)) +
                      read_i32(b + static_cast<std::uint32_t>(4 * i)));
      }
      break;
    case VecFunct::kMax32:
      for (std::int64_t i = 0; i < n; ++i) {
        write_i32(dst + static_cast<std::uint32_t>(4 * i),
                  std::max(read_i32(a + static_cast<std::uint32_t>(4 * i)),
                           read_i32(b + static_cast<std::uint32_t>(4 * i))));
      }
      break;
    case VecFunct::kRelu32:
      for (std::int64_t i = 0; i < n; ++i) {
        write_i32(dst + static_cast<std::uint32_t>(4 * i),
                  std::max(read_i32(a + static_cast<std::uint32_t>(4 * i)), 0));
      }
      break;
    case VecFunct::kQuant:
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t acc = read_i32(a + static_cast<std::uint32_t>(4 * i));
        wr8(dst, i, saturate_int8(rounding_shift_right(acc, shift) + zero));
      }
      break;
    case VecFunct::kLut8: {
      const auto lut = static_cast<std::uint32_t>(sreg_i(sregs_, SReg::kLutBase));
      for (std::int64_t i = 0; i < n; ++i) {
        const auto idx = static_cast<std::uint8_t>(rd8(a, i));
        wr8(dst, i, static_cast<std::int8_t>(load_u8(lut + idx)));
      }
      break;
    }
    case VecFunct::kScaleCh8: {
      const std::int64_t channels = sreg_i(sregs_, SReg::kChannels);
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t product =
            static_cast<std::int64_t>(rd8(a, i)) * rd8(b, i % channels);
        wr8(dst, i, saturate_int8(rounding_shift_right(product, shift) + zero));
      }
      break;
    }
    case VecFunct::kCopy32:
      for (std::int64_t i = 0; i < n; ++i) {
        write_i32(dst + static_cast<std::uint32_t>(4 * i),
                  read_i32(a + static_cast<std::uint32_t>(4 * i)));
      }
      break;
    case VecFunct::kFill32:
      for (std::int64_t i = 0; i < n; ++i) {
        write_i32(dst + static_cast<std::uint32_t>(4 * i), regs_[inst.rt]);
      }
      break;
    case VecFunct::kDeq8To32:
      for (std::int64_t i = 0; i < n; ++i) {
        write_i32(dst + static_cast<std::uint32_t>(4 * i), rd8(a, i));
      }
      break;
    case VecFunct::kAdd8To32:
      for (std::int64_t i = 0; i < n; ++i) {
        write_i32(dst + static_cast<std::uint32_t>(4 * i),
                  read_i32(a + static_cast<std::uint32_t>(4 * i)) + rd8(b, i));
      }
      break;
    case VecFunct::kRowSum32: {
      const std::int64_t pixels = sreg_i(sregs_, SReg::kPoolWin);
      for (std::int64_t c = 0; c < n; ++c) {
        std::int64_t acc = read_i32(dst + static_cast<std::uint32_t>(4 * c));
        for (std::int64_t q = 0; q < pixels; ++q) acc += rd8(a, q * n + c);
        write_i32(dst + static_cast<std::uint32_t>(4 * c), static_cast<std::int32_t>(acc));
      }
      break;
    }
    case VecFunct::kDivRound8: {
      const std::int64_t divisor = std::max<std::int64_t>(1, sreg_i(sregs_, SReg::kAux1));
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t sum = read_i32(a + static_cast<std::uint32_t>(4 * i));
        const std::int64_t rounded = sum >= 0 ? (sum + divisor / 2) / divisor
                                              : -((-sum + divisor / 2) / divisor);
        wr8(dst, i, saturate_int8(static_cast<std::int32_t>(rounded)));
      }
      break;
    }
  }
}

void CoreModel::exec_pool(const Instruction& inst, std::int64_t out_w) {
  const bool avg = inst.funct != 0;
  const auto dst = static_cast<std::uint32_t>(regs_[inst.rd]);
  const auto src = static_cast<std::uint32_t>(regs_[inst.rs]);
  const std::int64_t kh = sreg_i(sregs_, SReg::kPoolKh);
  const std::int64_t kw = sreg_i(sregs_, SReg::kPoolKw);
  const std::int64_t stride = sreg_i(sregs_, SReg::kPoolStride);
  const std::int64_t win = sreg_i(sregs_, SReg::kPoolWin);
  const std::int64_t channels = sreg_i(sregs_, SReg::kPoolChannels);
  const std::int64_t area = kh * kw;
  for (std::int64_t q = 0; q < out_w; ++q) {
    for (std::int64_t c = 0; c < channels; ++c) {
      std::int64_t acc = avg ? 0 : -128;
      for (std::int64_t r = 0; r < kh; ++r) {
        for (std::int64_t s = 0; s < kw; ++s) {
          const std::int64_t idx = (r * win + q * stride + s) * channels + c;
          const auto v =
              static_cast<std::int8_t>(load_u8(src + static_cast<std::uint32_t>(idx)));
          if (avg) {
            acc += v;
          } else {
            acc = std::max<std::int64_t>(acc, v);
          }
        }
      }
      std::int8_t out;
      if (avg) {
        const std::int64_t rounded =
            acc >= 0 ? (acc + area / 2) / area : -((-acc + area / 2) / area);
        out = saturate_int8(static_cast<std::int32_t>(rounded));
      } else {
        out = static_cast<std::int8_t>(acc);
      }
      store_u8(dst + static_cast<std::uint32_t>(q * channels + c),
               static_cast<std::uint8_t>(out));
    }
  }
}

void CoreModel::exec_mvm(const Instruction& inst, std::int64_t rows, std::int64_t cols) {
  const auto in = static_cast<std::uint32_t>(regs_[inst.rs]);
  const auto out = static_cast<std::uint32_t>(regs_[inst.rt]);
  const std::int64_t mg = regs_[inst.re];
  const bool accumulate = (inst.flags & 1) != 0;
  const std::int8_t* weights = mg_weights_.data() + mg * mg_tile_elems_;
  const std::uint8_t* input;
  check_span(in, rows);
  if (isa::is_local_address(in)) {
    input = lmem_.data() + isa::local_offset(in);
  } else {
    scratch_.resize(static_cast<std::size_t>(rows));
    ctx_.global->read_bytes(in, rows, scratch_.data());
    input = scratch_.data();
  }
  for (std::int64_t j = 0; j < cols; ++j) {
    std::int64_t acc = 0;
    for (std::int64_t i = 0; i < rows; ++i) {
      acc += static_cast<std::int64_t>(static_cast<std::int8_t>(input[i])) *
             weights[i * cols + j];
    }
    const auto addr = out + static_cast<std::uint32_t>(4 * j);
    const std::int64_t prev = accumulate ? read_i32(addr) : 0;
    write_i32(addr, static_cast<std::int32_t>(prev + acc));
  }
}

// ============================================================================
// the per-instruction step
// ============================================================================

bool CoreModel::step() {
  const Instruction& inst = (*code_)[static_cast<std::size_t>(pc)];
  const Opcode op = inst.op();
  const arch::ArchConfig& arch = *ctx_.arch;
  const arch::EnergyModel& energy_model = *ctx_.energy;

  const std::int64_t t_fetch = next_fetch;
  std::int64_t t_issue = std::max(t_fetch + 2, last_issue_ + 1);
  auto use = [&](std::uint8_t r) { t_issue = std::max(t_issue, reg_ready_[r]); };

  const std::int64_t lanes = arch.unit().vector_lanes;
  const std::int64_t lm_width = arch.core().local_mem_width_bytes;
  bool taken_branch = false;
  std::int64_t redirect = 0;

  switch (op) {
    // ---- control & scalar -------------------------------------------------
    case Opcode::kNop:
      break;
    case Opcode::kHalt: {
      // A core is only done once its execution units drain: the makespan
      // must include in-flight CIM/vector/transfer work.
      std::int64_t quiesce = t_issue;
      quiesce = std::max(quiesce, vec_free_ + arch.unit().vector_pipeline_depth);
      quiesce = std::max(quiesce, scalar_free_);
      quiesce = std::max(quiesce, transfer_free_);
      for (std::int64_t mg : mg_free_) {
        quiesce = std::max(quiesce, mg + arch.unit().mvm_pipeline_depth);
      }
      status = Status::kHalted;
      stats.halt_cycle = quiesce;
      break;
    }
    case Opcode::kGLi: {
      regs_[inst.rt] = inst.imm;
      reg_ready_[inst.rt] = std::max(reg_ready_[inst.rt], t_issue + 1);
      break;
    }
    case Opcode::kGLih: {
      use(inst.rt);
      regs_[inst.rt] = static_cast<std::int32_t>(
          (static_cast<std::uint32_t>(inst.imm) << 16) |
          (static_cast<std::uint32_t>(regs_[inst.rt]) & 0xFFFFu));
      reg_ready_[inst.rt] = std::max(reg_ready_[inst.rt], t_issue + 1);
      break;
    }
    case Opcode::kScOp:
    case Opcode::kScAddi: {
      use(inst.rs);
      const std::int32_t a = regs_[inst.rs];
      std::int32_t b;
      std::uint8_t dst;
      if (op == Opcode::kScOp) {
        use(inst.rt);
        b = regs_[inst.rt];
        dst = inst.rd;
      } else {
        b = inst.imm;
        dst = inst.rt;
      }
      std::int32_t result = 0;
      switch (static_cast<ScalarFunct>(inst.funct)) {
        case ScalarFunct::kAdd: result = a + b; break;
        case ScalarFunct::kSub: result = a - b; break;
        case ScalarFunct::kMul: result = a * b; break;
        case ScalarFunct::kAnd: result = a & b; break;
        case ScalarFunct::kOr: result = a | b; break;
        case ScalarFunct::kXor: result = a ^ b; break;
        case ScalarFunct::kSll:
          result = static_cast<std::int32_t>(static_cast<std::uint32_t>(a) << (b & 31));
          break;
        case ScalarFunct::kSrl:
          result = static_cast<std::int32_t>(static_cast<std::uint32_t>(a) >> (b & 31));
          break;
        case ScalarFunct::kSra: result = a >> (b & 31); break;
        case ScalarFunct::kSlt: result = a < b ? 1 : 0; break;
        case ScalarFunct::kDivU:
          result = b == 0 ? 0
                          : static_cast<std::int32_t>(static_cast<std::uint32_t>(a) /
                                                      static_cast<std::uint32_t>(b));
          break;
        case ScalarFunct::kRemU:
          result = b == 0 ? 0
                          : static_cast<std::int32_t>(static_cast<std::uint32_t>(a) %
                                                      static_cast<std::uint32_t>(b));
          break;
      }
      if (dst != 0) regs_[dst] = result;
      scalar_free_ = std::max(scalar_free_, t_issue) + 1;
      reg_ready_[dst] = std::max(reg_ready_[dst], t_issue + 1);
      energy.scalar_unit += energy_model.scalar_op_pj();
      break;
    }
    case Opcode::kScLw: {
      use(inst.rs);
      const auto addr = static_cast<std::uint32_t>(regs_[inst.rs] + inst.imm);
      const std::int64_t start = mem_dep_start(addr, 4, false, t_issue);
      if (inst.rt != 0) regs_[inst.rt] = read_i32(addr);
      reg_ready_[inst.rt] = std::max(reg_ready_[inst.rt], start + 2);
      mem_dep_finish(addr, 4, false, start + 2);
      energy.local_mem += energy_model.local_mem_pj(4);
      break;
    }
    case Opcode::kScSw: {
      use(inst.rs);
      use(inst.rt);
      const auto addr = static_cast<std::uint32_t>(regs_[inst.rs] + inst.imm);
      const std::int64_t start = mem_dep_start(addr, 4, true, t_issue);
      write_i32(addr, regs_[inst.rt]);
      mem_dep_finish(addr, 4, true, start + 1);
      energy.local_mem += energy_model.local_mem_pj(4);
      break;
    }
    case Opcode::kJmp:
      taken_branch = true;
      redirect = t_issue + kBranchRedirect;
      pc += inst.imm;
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge: {
      use(inst.rs);
      use(inst.rt);
      const std::int32_t a = regs_[inst.rs];
      const std::int32_t b = regs_[inst.rt];
      bool take = false;
      if (op == Opcode::kBeq) take = a == b;
      if (op == Opcode::kBne) take = a != b;
      if (op == Opcode::kBlt) take = a < b;
      if (op == Opcode::kBge) take = a >= b;
      if (take) {
        taken_branch = true;
        redirect = t_issue + kBranchRedirect;
        pc += inst.imm;
      }
      break;
    }

    // ---- CIM unit ---------------------------------------------------------
    case Opcode::kCimCfg: {
      use(inst.rs);
      sregs_[inst.flags & 31] = regs_[inst.rs];
      break;
    }
    case Opcode::kCimLoad: {
      use(inst.rs);
      use(inst.rt);
      const std::int64_t rows = sreg_i(sregs_, SReg::kActiveRows);
      const std::int64_t cols = sreg_i(sregs_, SReg::kActiveCols);
      const std::int64_t bytes = rows * cols;
      const std::int64_t mg = regs_[inst.rt];
      if (mg < 0 || mg >= arch.core().mg_per_unit) {
        fail(strprintf("core %lld CIM_LOAD: bad macro group %lld", (long long)id,
                       (long long)mg));
      }
      const auto src = static_cast<std::uint32_t>(regs_[inst.rs]);
      std::int64_t start = mem_dep_start(src, bytes, false, t_issue);
      start = std::max(start, mg_free_[static_cast<std::size_t>(mg)]);
      const std::int64_t done =
          start + ceil_div(bytes, arch.core().cim_load_bytes_per_cycle);
      mg_free_[static_cast<std::size_t>(mg)] = done;
      stats.cim_busy_cycles += done - start;
      mem_dep_finish(src, bytes, false, done);
      if (ctx_.options->functional) {
        check_span(src, bytes);
        auto* weights = reinterpret_cast<std::uint8_t*>(mg_weights_.data() +
                                                        mg * mg_tile_elems_);
        if (isa::is_local_address(src)) {
          std::memcpy(weights, lmem_.data() + isa::local_offset(src),
                      static_cast<std::size_t>(bytes));
        } else {
          ctx_.global->read_bytes(src, bytes, weights);
        }
      }
      energy.cim += energy_model.cim_load_pj(bytes);
      energy.local_mem += energy_model.local_mem_pj(bytes);
      break;
    }
    case Opcode::kCimMvm: {
      use(inst.rs);
      use(inst.rt);
      use(inst.re);
      const std::int64_t rows = sreg_i(sregs_, SReg::kActiveRows);
      const std::int64_t cols = sreg_i(sregs_, SReg::kActiveCols);
      std::int64_t macs = sreg_i(sregs_, SReg::kMacCount);
      if (macs <= 0) macs = rows * cols;
      const std::int64_t mg = regs_[inst.re];
      if (mg < 0 || mg >= arch.core().mg_per_unit) {
        fail(strprintf("core %lld CIM_MVM: bad macro group %lld", (long long)id,
                       (long long)mg));
      }
      const auto in = static_cast<std::uint32_t>(regs_[inst.rs]);
      const auto out = static_cast<std::uint32_t>(regs_[inst.rt]);
      std::int64_t start = mem_dep_start(in, rows, false, t_issue);
      start = mem_dep_start(out, cols * 4, true, start);
      start = std::max(start, mg_free_[static_cast<std::size_t>(mg)]);
      const std::int64_t busy_until = start + arch.mvm_interval_cycles();
      const std::int64_t result = start + arch.mvm_latency_cycles();
      mg_free_[static_cast<std::size_t>(mg)] = busy_until;
      stats.cim_busy_cycles += busy_until - start;
      mem_dep_finish(in, rows, false, busy_until);
      mem_dep_finish(out, cols * 4, true, result);
      if (ctx_.options->functional) exec_mvm(inst, rows, cols);
      energy.cim += energy_model.mvm_pj_macs(macs, cols);
      energy.local_mem += energy_model.local_mem_pj(rows + cols * 4);
      ++mvm_count;
      total_macs += macs;
      break;
    }

    // ---- vector unit ------------------------------------------------------
    case Opcode::kVecOp:
    case Opcode::kVecPool: {
      use(inst.rs);
      use(inst.rt);
      use(inst.rd);
      use(inst.re);
      const std::int64_t n = regs_[inst.re];
      std::int64_t work = n;  // lane-elements of vector work
      std::int64_t rd_bytes = n, wr_bytes = n;
      if (op == Opcode::kVecPool) {
        const std::int64_t kh = sreg_i(sregs_, SReg::kPoolKh);
        const std::int64_t kw = sreg_i(sregs_, SReg::kPoolKw);
        const std::int64_t channels = sreg_i(sregs_, SReg::kPoolChannels);
        work = n * channels * kh * kw;
        rd_bytes = work;
        wr_bytes = n * channels;
      } else {
        const auto funct = static_cast<VecFunct>(inst.funct);
        if (funct == VecFunct::kQuant) rd_bytes = 4 * n;
        if (funct == VecFunct::kCopy32 || funct == VecFunct::kFill32 ||
            funct == VecFunct::kAdd32 || funct == VecFunct::kMax32 ||
            funct == VecFunct::kRelu32) {
          rd_bytes = 4 * n;
          wr_bytes = 4 * n;
        }
        if (funct == VecFunct::kDeq8To32 || funct == VecFunct::kAdd8To32) {
          wr_bytes = 4 * n;
        }
        if (funct == VecFunct::kRowSum32) {
          const std::int64_t pixels = sreg_i(sregs_, SReg::kPoolWin);
          work = n * pixels;
          rd_bytes = n * pixels;
          wr_bytes = 4 * n;
        }
        if (funct == VecFunct::kDivRound8) rd_bytes = 4 * n;
      }
      const auto dst = static_cast<std::uint32_t>(regs_[inst.rd]);
      const auto a = static_cast<std::uint32_t>(regs_[inst.rs]);
      const auto b = static_cast<std::uint32_t>(regs_[inst.rt]);
      std::int64_t start = mem_dep_start(dst, wr_bytes, true, t_issue);
      start = mem_dep_start(a, rd_bytes, false, start);
      if (op == Opcode::kVecOp && inst.rt != 0) {
        start = mem_dep_start(b, n, false, start);
      }
      start = std::max(start, vec_free_);
      const std::int64_t busy_until = start + 1 + ceil_div(work, lanes);
      const std::int64_t done = busy_until + arch.unit().vector_pipeline_depth;
      vec_free_ = busy_until;
      stats.vector_busy_cycles += busy_until - start;
      mem_dep_finish(dst, wr_bytes, true, done);
      mem_dep_finish(a, rd_bytes, false, busy_until);
      if (ctx_.options->functional) {
        if (op == Opcode::kVecPool) {
          exec_pool(inst, n);
        } else {
          exec_vec(inst, n);
        }
      }
      energy.vector_unit += energy_model.vector_op_pj(work);
      energy.local_mem += energy_model.local_mem_pj(rd_bytes + wr_bytes);
      break;
    }

    // ---- transfer unit ----------------------------------------------------
    case Opcode::kMemCpy:
    case Opcode::kMemStride: {
      use(inst.rs);
      use(inst.rt);
      use(inst.rd);
      const auto dst = static_cast<std::uint32_t>(regs_[inst.rs]);
      const auto src = static_cast<std::uint32_t>(regs_[inst.rt]);
      std::int64_t count = regs_[inst.rd];
      std::int64_t elem = 1, dstride = 1, sstride = 1;
      if (op == Opcode::kMemStride) {
        dstride = sreg_i(sregs_, SReg::kAux0);
        sstride = sreg_i(sregs_, SReg::kAux1);
        elem = sreg_i(sregs_, SReg::kAux2);
      }
      const std::int64_t bytes = count * elem;
      const std::int64_t dst_span =
          op == Opcode::kMemStride ? (count - 1) * dstride + elem : bytes;
      const std::int64_t src_span =
          op == Opcode::kMemStride ? (count - 1) * sstride + elem : bytes;
      std::int64_t start = std::max(t_issue, transfer_free_);
      start = mem_dep_start(src, src_span, false, start);
      start = mem_dep_start(dst, dst_span, true, start);
      std::int64_t done;
      const bool src_local = isa::is_local_address(src);
      const bool dst_local = isa::is_local_address(dst);
      if (src_local && dst_local) {
        done = start + 2 + ceil_div(bytes, lm_width);
        energy.local_mem += energy_model.local_mem_pj(2 * bytes);
      } else {
        // Shared-fabric access: park the request for the window scheduler on
        // the first pass; the retry consumes the resolved completion time.
        // The core's clock is frozen while parked, so the recomputed `start`
        // is identical — the rendezvous is invisible in the report.
        if (!global_resolution.has_value()) {
          const std::uint32_t global_addr = dst_local ? src : dst;
          pending_global =
              GlobalRequest{global_addr, bytes, start, /*is_read=*/dst_local,
                            request_seq_++};
          status = Status::kBlockedGlobal;
          return false;
        }
        done = *global_resolution;
        global_resolution.reset();
        energy.local_mem += energy_model.local_mem_pj(bytes);
      }
      transfer_free_ = done;
      stats.transfer_busy_cycles += done - start;
      mem_dep_finish(src, src_span, false, done);
      mem_dep_finish(dst, dst_span, true, done);
      if (ctx_.options->functional && bytes > 0) {
        if (op == Opcode::kMemCpy) {
          copy_bytes(dst, src, bytes);
        } else {
          for (std::int64_t i = 0; i < count; ++i) {
            copy_bytes(dst + static_cast<std::uint32_t>(i * dstride),
                       src + static_cast<std::uint32_t>(i * sstride), elem);
          }
        }
      }
      break;
    }
    case Opcode::kSend: {
      use(inst.rs);
      use(inst.rt);
      use(inst.rd);
      const auto src = static_cast<std::uint32_t>(regs_[inst.rs]);
      const std::int64_t bytes = regs_[inst.rt];
      const std::int64_t dst_core = regs_[inst.rd];
      if (dst_core < 0 || dst_core >= ctx_.arch->chip().core_count) {
        fail(strprintf("core %lld SEND to invalid core %lld", (long long)id,
                       (long long)dst_core));
      }
      std::int64_t start = mem_dep_start(src, bytes, false, t_issue);
      start = std::max(start, transfer_free_);
      const std::int64_t inject_done =
          start + 2 + ceil_div(bytes, arch.chip().noc_flit_bytes);
      transfer_free_ = inject_done;
      stats.transfer_busy_cycles += inject_done - start;
      mem_dep_finish(src, bytes, false, inject_done);
      // The sender never observes the arrival time, so it keeps running; the
      // scheduler routes the message through the NoC (contention + energy, in
      // deterministic order) at the window boundary and delivers it then.
      SendRequest req;
      req.dst_core = dst_core;
      req.tag = inst.imm;
      req.bytes = bytes;
      req.depart = start + 2;
      req.seq = request_seq_++;
      if (ctx_.options->functional && bytes > 0) {
        check_span(src, bytes);
        req.payload.resize(static_cast<std::size_t>(bytes));
        if (isa::is_local_address(src)) {
          std::memcpy(req.payload.data(), lmem_.data() + isa::local_offset(src),
                      static_cast<std::size_t>(bytes));
        } else {
          ctx_.global->read_bytes(src, bytes, req.payload.data());
        }
      }
      energy.local_mem += energy_model.local_mem_pj(bytes);
      outbox.push_back(std::move(req));
      break;
    }
    case Opcode::kRecv: {
      use(inst.rs);
      use(inst.rt);
      use(inst.rd);
      const std::int64_t src_core = regs_[inst.rd];
      const auto key = std::make_pair(src_core, static_cast<std::int32_t>(inst.imm));
      auto it = inbox.find(key);
      if (it == inbox.end() || it->second.empty()) {
        recv_key = key;
        status = Status::kBlockedRecv;
        return false;  // retry once a message is delivered
      }
      Message msg = std::move(it->second.front());
      it->second.pop_front();
      const std::int64_t bytes = regs_[inst.rt];
      if (bytes != msg.bytes) {
        fail(strprintf("core %lld RECV size mismatch at pc=%lld (src=%lld tag=%d): "
                       "expected %lld got %lld",
                       (long long)id, (long long)pc, (long long)src_core, inst.imm,
                       (long long)bytes, (long long)msg.bytes));
      }
      const auto dst = static_cast<std::uint32_t>(regs_[inst.rs]);
      std::int64_t start = std::max({t_issue, msg.arrival, transfer_free_});
      start = mem_dep_start(dst, bytes, true, start);
      const std::int64_t done = start + 2 + ceil_div(bytes, lm_width);
      transfer_free_ = done;
      stats.transfer_busy_cycles += done - start;
      mem_dep_finish(dst, bytes, true, done);
      if (ctx_.options->functional && bytes > 0) {
        check_span(dst, bytes);
        if (isa::is_local_address(dst)) {
          std::memcpy(lmem_.data() + isa::local_offset(dst), msg.payload.data(),
                      static_cast<std::size_t>(bytes));
        } else {
          ctx_.global->write_bytes(dst, msg.payload.data(), bytes);
        }
      }
      energy.local_mem += energy_model.local_mem_pj(bytes);
      t_issue = start;  // the core was architecturally waiting
      break;
    }
    case Opcode::kBarrier: {
      // All cores rendezvous through the scheduler: block with the issue time
      // recorded; release_from_barrier() retires the instruction uniformly.
      barrier_tag = static_cast<std::int32_t>(inst.imm);
      barrier_issue = t_issue;
      status = Status::kBlockedBarrier;
      return false;
    }

    default: {
      // Custom instruction via the registry's description template.
      const isa::InstructionDescriptor& desc = ctx_.registry->lookup(inst);
      const std::int64_t n = regs_[inst.re];
      std::int64_t busy = desc.timing.fixed_cycles;
      if (desc.timing.elements_per_cycle > 0) {
        busy += ceil_div(std::max<std::int64_t>(n, 0), desc.timing.elements_per_cycle);
      }
      use(inst.rs);
      use(inst.rt);
      use(inst.re);
      use(inst.rd);
      std::int64_t* unit_free = &scalar_free_;
      if (desc.unit == isa::UnitKind::kVector) unit_free = &vec_free_;
      if (desc.unit == isa::UnitKind::kTransfer) unit_free = &transfer_free_;
      if (desc.unit == isa::UnitKind::kCim) unit_free = &mg_free_[0];
      const std::int64_t start = std::max(t_issue, *unit_free);
      *unit_free = start + busy;
      if (desc.execute) {
        CustomCtx custom;
        custom.core = this;
        desc.execute(inst, custom);
        regs_[0] = 0;
      }
      energy.vector_unit +=
          desc.energy.fixed_pj + desc.energy.per_element_pj * static_cast<double>(n);
      break;
    }
  }

  // Common bookkeeping.
  regs_[0] = 0;
  last_issue_ = t_issue;
  next_fetch = taken_branch ? redirect : std::max(t_fetch + 1, t_issue - 1);
  if (!taken_branch) pc += 1;
  stats.instructions += 1;
  energy.instruction += ctx_.energy->instruction_pj();
  return true;
}

void CoreModel::run_window(std::int64_t window_end) {
  while (status == Status::kReady && next_fetch < window_end) {
    if (pc < 0 || pc >= static_cast<std::int64_t>(code_->size())) {
      fail(strprintf("core %lld ran off its program (pc=%lld)", (long long)id,
                     (long long)pc));
    }
    if (next_fetch > ctx_.options->max_cycles) {
      fail("simulation watchdog expired");
    }
    if (!step()) break;
  }
}

void CoreModel::release_from_barrier(std::int64_t release) {
  status = Status::kReady;
  pc += 1;
  next_fetch = release;
  last_issue_ = release - 1;
  stats.instructions += 1;  // the barrier retires now
  energy.instruction += ctx_.energy->instruction_pj();
}

}  // namespace cimflow::sim
