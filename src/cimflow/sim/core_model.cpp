#include "cimflow/sim/core_model.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "cimflow/sim/kernels.hpp"
#include "cimflow/support/logging.hpp"
#include "cimflow/support/numeric.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::sim {

using isa::Opcode;
using isa::ScalarFunct;
using isa::SReg;
using isa::VecFunct;

namespace {

constexpr std::int64_t kGranuleBytes = 256;
constexpr std::int64_t kBranchRedirect = 1;  ///< extra cycles after a taken branch

std::int64_t sreg_i(const std::array<std::int32_t, 32>& sregs, SReg r) {
  return sregs[static_cast<std::size_t>(r)];
}

/// Whether [p, p+plen) and [q, q+qlen) share no byte. The dispatched vector
/// kernels process whole chunks, which is only equivalent to the
/// element-ordered inline loops when the destination either exactly aliases
/// a same-width source (a chunk then reads its own bytes before writing
/// them) or overlaps no source byte at all — partial overlap keeps the
/// element loop.
bool disjoint(const std::uint8_t* p, std::int64_t plen, const std::uint8_t* q,
              std::int64_t qlen) {
  return p + plen <= q || q + qlen <= p;
}

}  // namespace

/// CustomExecContext adapter for user-registered instructions (core-local
/// state only, so custom callbacks stay safe under the parallel scheduler).
struct CoreModel::CustomCtx final : isa::CustomExecContext {
  CoreModel* core = nullptr;
  std::int32_t reg(std::uint8_t index) const override { return core->regs_[index & 31]; }
  void set_reg(std::uint8_t index, std::int32_t value) override {
    core->regs_[index & 31] = value;
  }
  std::int32_t sreg(std::uint8_t index) const override { return core->sregs_[index & 31]; }
  std::uint8_t load_byte(std::uint32_t local_offset) const override {
    return core->load_u8(isa::make_local_address(local_offset));
  }
  void store_byte(std::uint32_t local_offset, std::uint8_t value) override {
    core->store_u8(isa::make_local_address(local_offset), value);
  }
  std::int64_t core_id() const override { return core->id; }
};

void CoreModel::reset(const CoreContext& context, std::int64_t core_id,
                      const std::vector<isa::Instruction>* code) {
  ctx_ = context;
  kt_ = ctx_.kernels != nullptr
            ? ctx_.kernels
            : &kernels::kernel_table(kernels::KernelTier::kScalar);
  id = core_id;
  code_ = code;
  dcode_ = ctx_.decoded->core(core_id).data();
  code_size_ = static_cast<std::int64_t>(code_->size());
  pc = 0;
  next_fetch = 0;
  status = code_->empty() ? Status::kHalted : Status::kReady;

  outbox.clear();
  pending_global.reset();
  global_resolution.reset();
  inbox.clear();
  recv_key = {0, 0};
  barrier_tag = 0;
  barrier_issue = 0;
  stats = CoreStats{};
  energy = EnergyBreakdown{};
  mvm_count = 0;
  total_macs = 0;
  run_steps = 0;

  last_issue_ = -1;
  reg_ready_.fill(0);
  mg_free_.assign(static_cast<std::size_t>(ctx_.arch->core().mg_per_unit), 0);
  vec_free_ = 0;
  scalar_free_ = 0;
  transfer_free_ = 0;
  regs_.fill(0);
  sregs_.fill(0);
  lmem_.reset_zeroed(static_cast<std::size_t>(ctx_.arch->core().local_mem_bytes));
  mg_tile_elems_ = ctx_.arch->mg_rows() * ctx_.arch->mg_cols();
  if (ctx_.options->functional) {
    mg_weights_.reset_zeroed(
        static_cast<std::size_t>(ctx_.arch->core().mg_per_unit * mg_tile_elems_));
  } else {
    mg_weights_.clear();
  }
  scratch_.clear();
  mvm_row_.clear();
  row_scratch_.clear();
  gr_write_.assign(
      static_cast<std::size_t>(ceil_div(ctx_.arch->core().local_mem_bytes, kGranuleBytes)),
      0);
  gr_read_ = gr_write_;
  request_seq_ = 0;
}

void CoreModel::fail(const std::string& what) const {
  raise(ErrorCode::kInternal,
        what + strprintf("\n  core %lld: pc=%lld time=%lld status=%d\n", (long long)id,
                         (long long)pc, (long long)next_fetch, static_cast<int>(status)));
}

// ============================================================================
// memory routing
// ============================================================================

void CoreModel::check_span(std::uint32_t addr, std::int64_t len) {
  if (isa::is_local_address(addr)) {
    const std::uint32_t off = isa::local_offset(addr);
    if (off + static_cast<std::uint64_t>(len) > lmem_.size()) {
      fail(strprintf("core %lld local access out of range: off=%u len=%lld",
                     (long long)id, off, (long long)len));
    }
  } else if (addr + static_cast<std::uint64_t>(len) >
             static_cast<std::uint64_t>(ctx_.global->size())) {
    fail(strprintf("global access out of range: addr=%u len=%lld", addr, (long long)len));
  }
}

bool CoreModel::span_in_range(std::uint32_t addr, std::int64_t len) const {
  if (isa::is_local_address(addr)) {
    return isa::local_offset(addr) + static_cast<std::uint64_t>(len) <= lmem_.size();
  }
  return addr + static_cast<std::uint64_t>(len) <=
         static_cast<std::uint64_t>(ctx_.global->size());
}

const std::uint8_t* CoreModel::resolve_read(std::uint32_t addr, std::int64_t len) {
  check_span(addr, len);
  if (isa::is_local_address(addr)) return lmem_.data() + isa::local_offset(addr);
  return ctx_.global->span_for_read(addr, len);
}

std::uint8_t* CoreModel::resolve_write(std::uint32_t addr, std::int64_t len) {
  check_span(addr, len);
  if (isa::is_local_address(addr)) return lmem_.data() + isa::local_offset(addr);
  return ctx_.global->span_for_write(addr, len);
}

std::uint8_t* CoreModel::ensure_scratch(std::int64_t len) {
  return scratch_.ensure(static_cast<std::size_t>(len));
}

std::uint8_t CoreModel::load_u8(std::uint32_t addr) {
  check_span(addr, 1);
  if (isa::is_local_address(addr)) return lmem_[isa::local_offset(addr)];
  return ctx_.global->load_u8(addr);
}

void CoreModel::store_u8(std::uint32_t addr, std::uint8_t value) {
  check_span(addr, 1);
  if (isa::is_local_address(addr)) {
    lmem_[isa::local_offset(addr)] = value;
  } else {
    ctx_.global->store_u8(addr, value);
  }
}

std::int32_t CoreModel::read_i32(std::uint32_t addr) {
  check_span(addr, 4);
  std::uint8_t raw[4];
  if (isa::is_local_address(addr)) {
    std::memcpy(raw, lmem_.data() + isa::local_offset(addr), 4);
  } else {
    ctx_.global->read_bytes(addr, 4, raw);
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(raw[i]) << (8 * i);
  return static_cast<std::int32_t>(v);
}

void CoreModel::write_i32(std::uint32_t addr, std::int32_t value) {
  check_span(addr, 4);
  std::uint8_t raw[4];
  const std::uint32_t v = static_cast<std::uint32_t>(value);
  for (int i = 0; i < 4; ++i) raw[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
  if (isa::is_local_address(addr)) {
    std::memcpy(lmem_.data() + isa::local_offset(addr), raw, 4);
  } else {
    ctx_.global->write_bytes(addr, raw, 4);
  }
}

void CoreModel::copy_bytes(std::uint32_t dst, std::uint32_t src, std::int64_t len) {
  if (len <= 0) return;
  check_span(src, len);
  check_span(dst, len);
  const bool src_local = isa::is_local_address(src);
  const bool dst_local = isa::is_local_address(dst);
  if (src_local && dst_local) {
    std::memmove(lmem_.data() + isa::local_offset(dst),
                 lmem_.data() + isa::local_offset(src), static_cast<std::size_t>(len));
  } else if (src_local) {
    ctx_.global->write_bytes(dst, lmem_.data() + isa::local_offset(src), len);
  } else if (dst_local) {
    ctx_.global->read_bytes(src, len, lmem_.data() + isa::local_offset(dst));
  } else {
    // Global-to-global bounces through the core scratch so overlapping
    // regions keep memmove semantics.
    std::uint8_t* bounce = ensure_scratch(len);
    ctx_.global->read_bytes(src, len, bounce);
    ctx_.global->write_bytes(dst, bounce, len);
  }
}

std::int64_t CoreModel::mem_dep_start(std::uint32_t addr, std::int64_t len,
                                      bool is_write, std::int64_t start) const {
  if (!isa::is_local_address(addr) || len <= 0) return start;
  const std::int64_t g0 = isa::local_offset(addr) / kGranuleBytes;
  const std::int64_t g1 =
      std::min<std::int64_t>(static_cast<std::int64_t>(gr_write_.size()) - 1,
                             (isa::local_offset(addr) + len - 1) / kGranuleBytes);
  for (std::int64_t g = g0; g <= g1; ++g) {
    start = std::max(start, gr_write_[static_cast<std::size_t>(g)]);
    if (is_write) start = std::max(start, gr_read_[static_cast<std::size_t>(g)]);
  }
  return start;
}

void CoreModel::mem_dep_finish(std::uint32_t addr, std::int64_t len, bool is_write,
                               std::int64_t done) {
  if (!isa::is_local_address(addr) || len <= 0) return;
  const std::int64_t g0 = isa::local_offset(addr) / kGranuleBytes;
  const std::int64_t g1 =
      std::min<std::int64_t>(static_cast<std::int64_t>(gr_write_.size()) - 1,
                             (isa::local_offset(addr) + len - 1) / kGranuleBytes);
  for (std::int64_t g = g0; g <= g1; ++g) {
    auto& slot = is_write ? gr_write_[static_cast<std::size_t>(g)]
                          : gr_read_[static_cast<std::size_t>(g)];
    slot = std::max(slot, done);
  }
}

// ============================================================================
// functional kernels — pointer-resolved fast paths
// ============================================================================
//
// Every kernel resolves its operand spans once (destination first, so a
// copy-on-write page the op is about to dirty is materialized before source
// spans are pinned — a source overlapping it then reads the page, exactly as
// the byte-routed path would). Any span the image cannot pin as one
// contiguous pointer sends the whole op to the *_ref twin, which handles
// every layout byte by byte. Loops stay element-ordered (no memmove
// shortcuts over possibly-overlapping operands), so fast and ref paths are
// byte-equivalent even for aliased operands.

void CoreModel::exec_vec(const DecodedInst& inst, std::int64_t n) {
  if (ctx_.options->reference_kernels) return exec_vec_ref(inst, n);
  if (n <= 0) return;
  const auto funct = static_cast<VecFunct>(inst.funct);
  const auto dst_addr = static_cast<std::uint32_t>(regs_[inst.rd]);
  const auto a_addr = static_cast<std::uint32_t>(regs_[inst.rs]);
  const auto b_addr = static_cast<std::uint32_t>(regs_[inst.rt]);
  const int shift = static_cast<int>(sreg_i(sregs_, SReg::kQuantShift));
  const auto zero = static_cast<std::int32_t>(sreg_i(sregs_, SReg::kQuantZero));

  std::uint8_t* dst = resolve_write(dst_addr, n * inst.vec_wr_scale);
  if (dst == nullptr) return exec_vec_ref(inst, n);
  auto read_a = [&](std::int64_t len) { return resolve_read(a_addr, len); };

  switch (funct) {
    case VecFunct::kCopy8: {
      const std::uint8_t* a = read_a(n);
      if (a == nullptr) return exec_vec_ref(inst, n);
      if (dst + n <= a || a + n <= dst) {
        std::memcpy(dst, a, static_cast<std::size_t>(n));
      } else {
        for (std::int64_t i = 0; i < n; ++i) dst[i] = a[i];
      }
      break;
    }
    case VecFunct::kAdd8:
    case VecFunct::kSub8:
    case VecFunct::kMax8:
    case VecFunct::kMin8: {
      const std::uint8_t* a = read_a(n);
      const std::uint8_t* b = resolve_read(b_addr, n);
      if (a == nullptr || b == nullptr) return exec_vec_ref(inst, n);
      if ((dst == a || disjoint(dst, n, a, n)) &&
          (dst == b || disjoint(dst, n, b, n))) {
        switch (funct) {
          case VecFunct::kAdd8: kt_->add8(dst, a, b, n); break;
          case VecFunct::kSub8: kt_->sub8(dst, a, b, n); break;
          case VecFunct::kMax8: kt_->max8(dst, a, b, n); break;
          default: kt_->min8(dst, a, b, n); break;
        }
        break;
      }
      for (std::int64_t i = 0; i < n; ++i) {
        const auto x = static_cast<std::int8_t>(a[i]);
        const auto y = static_cast<std::int8_t>(b[i]);
        std::int8_t out = 0;
        switch (funct) {
          case VecFunct::kAdd8: out = saturate_int8(static_cast<std::int32_t>(x) + y); break;
          case VecFunct::kSub8: out = saturate_int8(static_cast<std::int32_t>(x) - y); break;
          case VecFunct::kMax8: out = std::max(x, y); break;
          default: out = std::min(x, y); break;
        }
        dst[i] = static_cast<std::uint8_t>(out);
      }
      break;
    }
    case VecFunct::kRelu8: {
      const std::uint8_t* a = read_a(n);
      if (a == nullptr) return exec_vec_ref(inst, n);
      if (dst == a || disjoint(dst, n, a, n)) {
        kt_->relu8(dst, a, n);
        break;
      }
      for (std::int64_t i = 0; i < n; ++i) {
        dst[i] = static_cast<std::uint8_t>(
            std::max<std::int8_t>(static_cast<std::int8_t>(a[i]), 0));
      }
      break;
    }
    case VecFunct::kFill8: {
      const auto value = static_cast<std::uint8_t>(regs_[inst.rt] & 0xFF);
      std::memset(dst, value, static_cast<std::size_t>(n));
      break;
    }
    case VecFunct::kAdd32:
    case VecFunct::kMax32: {
      const std::uint8_t* a = read_a(4 * n);
      const std::uint8_t* b = resolve_read(b_addr, 4 * n);
      if (a == nullptr || b == nullptr) return exec_vec_ref(inst, n);
      if ((dst == a || disjoint(dst, 4 * n, a, 4 * n)) &&
          (dst == b || disjoint(dst, 4 * n, b, 4 * n))) {
        if (funct == VecFunct::kAdd32) {
          kt_->add32(dst, a, b, n);
        } else {
          kt_->max32(dst, a, b, n);
        }
        break;
      }
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int32_t x = kernels::load_le32(a + 4 * i);
        const std::int32_t y = kernels::load_le32(b + 4 * i);
        kernels::store_le32(dst + 4 * i, funct == VecFunct::kAdd32
                                             ? static_cast<std::int32_t>(
                                                   static_cast<std::uint32_t>(x) +
                                                   static_cast<std::uint32_t>(y))
                                             : std::max(x, y));
      }
      break;
    }
    case VecFunct::kRelu32: {
      const std::uint8_t* a = read_a(4 * n);
      if (a == nullptr) return exec_vec_ref(inst, n);
      if (dst == a || disjoint(dst, 4 * n, a, 4 * n)) {
        kt_->relu32(dst, a, n);
        break;
      }
      for (std::int64_t i = 0; i < n; ++i) {
        kernels::store_le32(dst + 4 * i, std::max(kernels::load_le32(a + 4 * i), 0));
      }
      break;
    }
    case VecFunct::kQuant: {
      const std::uint8_t* a = read_a(4 * n);
      if (a == nullptr) return exec_vec_ref(inst, n);
      // Mixed-width (int32 in, int8 out): only a fully disjoint destination
      // is chunk-safe.
      if (disjoint(dst, n, a, 4 * n)) {
        kt_->quant(dst, a, n, shift, zero);
        break;
      }
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t acc = kernels::load_le32(a + 4 * i);
        dst[i] = static_cast<std::uint8_t>(
            saturate_int8(rounding_shift_right(acc, shift) + zero));
      }
      break;
    }
    case VecFunct::kLut8: {
      // The reference path bounds-checks only the LUT bytes actually
      // indexed; pinning all 256 must therefore never be the thing that
      // fails a run — a table that does not fit whole goes to the lazy path.
      const auto lut_addr = static_cast<std::uint32_t>(sreg_i(sregs_, SReg::kLutBase));
      if (!span_in_range(lut_addr, 256)) return exec_vec_ref(inst, n);
      const std::uint8_t* a = read_a(n);
      const std::uint8_t* lut = resolve_read(lut_addr, 256);
      if (a == nullptr || lut == nullptr) return exec_vec_ref(inst, n);
      for (std::int64_t i = 0; i < n; ++i) dst[i] = lut[a[i]];
      break;
    }
    case VecFunct::kScaleCh8: {
      const std::int64_t channels = sreg_i(sregs_, SReg::kChannels);
      if (channels <= 0) return exec_vec_ref(inst, n);
      const std::uint8_t* a = read_a(n);
      const std::uint8_t* b = resolve_read(b_addr, std::min(channels, n));
      if (a == nullptr || b == nullptr) return exec_vec_ref(inst, n);
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t product = static_cast<std::int64_t>(static_cast<std::int8_t>(a[i])) *
                                     static_cast<std::int8_t>(b[i % channels]);
        dst[i] = static_cast<std::uint8_t>(
            saturate_int8(rounding_shift_right(product, shift) + zero));
      }
      break;
    }
    case VecFunct::kCopy32: {
      const std::uint8_t* a = read_a(4 * n);
      if (a == nullptr) return exec_vec_ref(inst, n);
      if (dst + 4 * n <= a || a + 4 * n <= dst) {
        std::memcpy(dst, a, static_cast<std::size_t>(4 * n));
      } else {
        for (std::int64_t i = 0; i < n; ++i) {
          kernels::store_le32(dst + 4 * i, kernels::load_le32(a + 4 * i));
        }
      }
      break;
    }
    case VecFunct::kFill32: {
      for (std::int64_t i = 0; i < n; ++i) kernels::store_le32(dst + 4 * i, regs_[inst.rt]);
      break;
    }
    case VecFunct::kDeq8To32: {
      const std::uint8_t* a = read_a(n);
      if (a == nullptr) return exec_vec_ref(inst, n);
      if (disjoint(dst, 4 * n, a, n)) {
        kt_->deq8to32(dst, a, n);
        break;
      }
      for (std::int64_t i = 0; i < n; ++i) {
        kernels::store_le32(dst + 4 * i, static_cast<std::int8_t>(a[i]));
      }
      break;
    }
    case VecFunct::kAdd8To32: {
      const std::uint8_t* a = read_a(4 * n);
      const std::uint8_t* b = resolve_read(b_addr, n);
      if (a == nullptr || b == nullptr) return exec_vec_ref(inst, n);
      if ((dst == a || disjoint(dst, 4 * n, a, 4 * n)) &&
          disjoint(dst, 4 * n, b, n)) {
        kt_->add8to32(dst, a, b, n);
        break;
      }
      for (std::int64_t i = 0; i < n; ++i) {
        kernels::store_le32(dst + 4 * i,
                            static_cast<std::int32_t>(
                                static_cast<std::uint32_t>(kernels::load_le32(a + 4 * i)) +
                                static_cast<std::uint32_t>(
                                    static_cast<std::int8_t>(b[i]))));
      }
      break;
    }
    case VecFunct::kRowSum32: {
      const std::int64_t pixels = sreg_i(sregs_, SReg::kPoolWin);
      if (pixels <= 0) break;  // acc = read + write-back of the same values
      const std::uint8_t* a = read_a(n * pixels);
      if (a == nullptr) return exec_vec_ref(inst, n);
      if (disjoint(dst, 4 * n, a, n * pixels)) {
        // Channel-row accumulation in an int32 scratch row: the original
        // per-column int64 sums truncate to int32 at store time, which is
        // exactly mod-2^32 wraparound — the same result rowadd8_i32's uint32
        // adds produce, one vectorized pass per window row.
        std::int32_t* acc = mvm_row_.ensure(static_cast<std::size_t>(n));
        kernels::load_le32_row(acc, dst, n);
        for (std::int64_t q = 0; q < pixels; ++q) {
          kt_->rowadd8_i32(acc, a + q * n, n);
        }
        kernels::store_le32_row(dst, acc, n);
        break;
      }
      for (std::int64_t c = 0; c < n; ++c) {
        std::int64_t acc = kernels::load_le32(dst + 4 * c);
        for (std::int64_t q = 0; q < pixels; ++q) {
          acc += static_cast<std::int8_t>(a[q * n + c]);
        }
        kernels::store_le32(dst + 4 * c, static_cast<std::int32_t>(acc));
      }
      break;
    }
    case VecFunct::kDivRound8: {
      const std::int64_t divisor = std::max<std::int64_t>(1, sreg_i(sregs_, SReg::kAux1));
      const std::uint8_t* a = read_a(4 * n);
      if (a == nullptr) return exec_vec_ref(inst, n);
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t sum = kernels::load_le32(a + 4 * i);
        const std::int64_t rounded = sum >= 0 ? (sum + divisor / 2) / divisor
                                              : -((-sum + divisor / 2) / divisor);
        dst[i] = static_cast<std::uint8_t>(saturate_int8(static_cast<std::int32_t>(rounded)));
      }
      break;
    }
  }
}

void CoreModel::exec_vec_ref(const DecodedInst& inst, std::int64_t n) {
  const auto funct = static_cast<VecFunct>(inst.funct);
  const auto dst = static_cast<std::uint32_t>(regs_[inst.rd]);
  const auto a = static_cast<std::uint32_t>(regs_[inst.rs]);
  const auto b = static_cast<std::uint32_t>(regs_[inst.rt]);
  auto rd8 = [&](std::uint32_t base, std::int64_t i) {
    return static_cast<std::int8_t>(load_u8(base + static_cast<std::uint32_t>(i)));
  };
  auto wr8 = [&](std::uint32_t base, std::int64_t i, std::int8_t v) {
    store_u8(base + static_cast<std::uint32_t>(i), static_cast<std::uint8_t>(v));
  };
  const int shift = static_cast<int>(sreg_i(sregs_, SReg::kQuantShift));
  const auto zero = static_cast<std::int32_t>(sreg_i(sregs_, SReg::kQuantZero));
  switch (funct) {
    case VecFunct::kCopy8:
      for (std::int64_t i = 0; i < n; ++i) wr8(dst, i, rd8(a, i));
      break;
    case VecFunct::kAdd8:
      for (std::int64_t i = 0; i < n; ++i) {
        wr8(dst, i, saturate_int8(static_cast<std::int32_t>(rd8(a, i)) + rd8(b, i)));
      }
      break;
    case VecFunct::kSub8:
      for (std::int64_t i = 0; i < n; ++i) {
        wr8(dst, i, saturate_int8(static_cast<std::int32_t>(rd8(a, i)) - rd8(b, i)));
      }
      break;
    case VecFunct::kMax8:
      for (std::int64_t i = 0; i < n; ++i) wr8(dst, i, std::max(rd8(a, i), rd8(b, i)));
      break;
    case VecFunct::kMin8:
      for (std::int64_t i = 0; i < n; ++i) wr8(dst, i, std::min(rd8(a, i), rd8(b, i)));
      break;
    case VecFunct::kRelu8:
      for (std::int64_t i = 0; i < n; ++i) wr8(dst, i, std::max<std::int8_t>(rd8(a, i), 0));
      break;
    case VecFunct::kFill8: {
      const auto value = static_cast<std::int8_t>(regs_[inst.rt] & 0xFF);
      for (std::int64_t i = 0; i < n; ++i) wr8(dst, i, value);
      break;
    }
    case VecFunct::kAdd32:
      for (std::int64_t i = 0; i < n; ++i) {
        write_i32(dst + static_cast<std::uint32_t>(4 * i),
                  read_i32(a + static_cast<std::uint32_t>(4 * i)) +
                      read_i32(b + static_cast<std::uint32_t>(4 * i)));
      }
      break;
    case VecFunct::kMax32:
      for (std::int64_t i = 0; i < n; ++i) {
        write_i32(dst + static_cast<std::uint32_t>(4 * i),
                  std::max(read_i32(a + static_cast<std::uint32_t>(4 * i)),
                           read_i32(b + static_cast<std::uint32_t>(4 * i))));
      }
      break;
    case VecFunct::kRelu32:
      for (std::int64_t i = 0; i < n; ++i) {
        write_i32(dst + static_cast<std::uint32_t>(4 * i),
                  std::max(read_i32(a + static_cast<std::uint32_t>(4 * i)), 0));
      }
      break;
    case VecFunct::kQuant:
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t acc = read_i32(a + static_cast<std::uint32_t>(4 * i));
        wr8(dst, i, saturate_int8(rounding_shift_right(acc, shift) + zero));
      }
      break;
    case VecFunct::kLut8: {
      const auto lut = static_cast<std::uint32_t>(sreg_i(sregs_, SReg::kLutBase));
      for (std::int64_t i = 0; i < n; ++i) {
        const auto idx = static_cast<std::uint8_t>(rd8(a, i));
        wr8(dst, i, static_cast<std::int8_t>(load_u8(lut + idx)));
      }
      break;
    }
    case VecFunct::kScaleCh8: {
      const std::int64_t channels = sreg_i(sregs_, SReg::kChannels);
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t product =
            static_cast<std::int64_t>(rd8(a, i)) * rd8(b, i % channels);
        wr8(dst, i, saturate_int8(rounding_shift_right(product, shift) + zero));
      }
      break;
    }
    case VecFunct::kCopy32:
      for (std::int64_t i = 0; i < n; ++i) {
        write_i32(dst + static_cast<std::uint32_t>(4 * i),
                  read_i32(a + static_cast<std::uint32_t>(4 * i)));
      }
      break;
    case VecFunct::kFill32:
      for (std::int64_t i = 0; i < n; ++i) {
        write_i32(dst + static_cast<std::uint32_t>(4 * i), regs_[inst.rt]);
      }
      break;
    case VecFunct::kDeq8To32:
      for (std::int64_t i = 0; i < n; ++i) {
        write_i32(dst + static_cast<std::uint32_t>(4 * i), rd8(a, i));
      }
      break;
    case VecFunct::kAdd8To32:
      for (std::int64_t i = 0; i < n; ++i) {
        write_i32(dst + static_cast<std::uint32_t>(4 * i),
                  read_i32(a + static_cast<std::uint32_t>(4 * i)) + rd8(b, i));
      }
      break;
    case VecFunct::kRowSum32: {
      const std::int64_t pixels = sreg_i(sregs_, SReg::kPoolWin);
      for (std::int64_t c = 0; c < n; ++c) {
        std::int64_t acc = read_i32(dst + static_cast<std::uint32_t>(4 * c));
        for (std::int64_t q = 0; q < pixels; ++q) acc += rd8(a, q * n + c);
        write_i32(dst + static_cast<std::uint32_t>(4 * c), static_cast<std::int32_t>(acc));
      }
      break;
    }
    case VecFunct::kDivRound8: {
      const std::int64_t divisor = std::max<std::int64_t>(1, sreg_i(sregs_, SReg::kAux1));
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t sum = read_i32(a + static_cast<std::uint32_t>(4 * i));
        const std::int64_t rounded = sum >= 0 ? (sum + divisor / 2) / divisor
                                              : -((-sum + divisor / 2) / divisor);
        wr8(dst, i, saturate_int8(static_cast<std::int32_t>(rounded)));
      }
      break;
    }
  }
}

void CoreModel::exec_pool(const DecodedInst& inst, std::int64_t out_w) {
  if (ctx_.options->reference_kernels) return exec_pool_ref(inst, out_w);
  const bool avg = inst.funct != 0;
  const auto dst_addr = static_cast<std::uint32_t>(regs_[inst.rd]);
  const auto src_addr = static_cast<std::uint32_t>(regs_[inst.rs]);
  const std::int64_t kh = sreg_i(sregs_, SReg::kPoolKh);
  const std::int64_t kw = sreg_i(sregs_, SReg::kPoolKw);
  const std::int64_t stride = sreg_i(sregs_, SReg::kPoolStride);
  const std::int64_t win = sreg_i(sregs_, SReg::kPoolWin);
  const std::int64_t channels = sreg_i(sregs_, SReg::kPoolChannels);
  // Degenerate descriptors take the byte-routed path (it reproduces the
  // historical behavior for them, whatever that is — e.g. kh <= 0 still
  // writes the init value).
  if (out_w <= 0 || kh <= 0 || kw <= 0 || channels <= 0 || stride < 0 || win < 0) {
    return exec_pool_ref(inst, out_w);
  }
  const std::int64_t src_extent =
      ((kh - 1) * win + (out_w - 1) * stride + (kw - 1)) * channels + channels;
  std::uint8_t* dst = resolve_write(dst_addr, out_w * channels);
  if (dst == nullptr) return exec_pool_ref(inst, out_w);
  const std::uint8_t* src = resolve_read(src_addr, src_extent);
  if (src == nullptr) return exec_pool_ref(inst, out_w);
  const std::int64_t area = kh * kw;
  // Channel-row reduction through the dispatched kernels: each (r, s) window
  // position contributes one contiguous `channels`-wide slice, so the whole
  // output pixel is kh*kw row reductions into a scratch row instead of a
  // per-channel strided walk. Needs a disjoint destination (the strided loop
  // below stays element-ordered for overlap) and, for avg, window areas whose
  // int8 sums fit int32 exactly (|sum| <= 128 * area; the rounded divide
  // needs the true signed sum, not a mod-2^32 wrap).
  if (disjoint(dst, out_w * channels, src, src_extent) &&
      (!avg || area <= (std::int64_t{1} << 23))) {
    if (avg) {
      std::int32_t* acc = mvm_row_.ensure(static_cast<std::size_t>(channels));
      for (std::int64_t q = 0; q < out_w; ++q) {
        const std::uint8_t* base = src + q * stride * channels;
        std::memset(acc, 0, static_cast<std::size_t>(channels) * sizeof(std::int32_t));
        for (std::int64_t r = 0; r < kh; ++r) {
          for (std::int64_t s = 0; s < kw; ++s) {
            kt_->rowadd8_i32(acc, base + (r * win + s) * channels, channels);
          }
        }
        std::uint8_t* out_row = dst + q * channels;
        for (std::int64_t c = 0; c < channels; ++c) {
          const std::int64_t sum = acc[c];
          const std::int64_t rounded =
              sum >= 0 ? (sum + area / 2) / area : -((-sum + area / 2) / area);
          out_row[c] = static_cast<std::uint8_t>(
              saturate_int8(static_cast<std::int32_t>(rounded)));
        }
      }
    } else {
      std::uint8_t* acc = row_scratch_.ensure(static_cast<std::size_t>(channels));
      for (std::int64_t q = 0; q < out_w; ++q) {
        const std::uint8_t* base = src + q * stride * channels;
        std::memset(acc, 0x80, static_cast<std::size_t>(channels));  // -128 identity
        for (std::int64_t r = 0; r < kh; ++r) {
          for (std::int64_t s = 0; s < kw; ++s) {
            kt_->rowmax8(acc, base + (r * win + s) * channels, channels);
          }
        }
        std::memcpy(dst + q * channels, acc, static_cast<std::size_t>(channels));
      }
    }
    return;
  }
  for (std::int64_t q = 0; q < out_w; ++q) {
    for (std::int64_t c = 0; c < channels; ++c) {
      std::int64_t acc = avg ? 0 : -128;
      for (std::int64_t r = 0; r < kh; ++r) {
        const std::uint8_t* row = src + (r * win + q * stride) * channels + c;
        for (std::int64_t s = 0; s < kw; ++s) {
          const auto v = static_cast<std::int8_t>(row[s * channels]);
          if (avg) {
            acc += v;
          } else {
            acc = std::max<std::int64_t>(acc, v);
          }
        }
      }
      std::int8_t out;
      if (avg) {
        const std::int64_t rounded =
            acc >= 0 ? (acc + area / 2) / area : -((-acc + area / 2) / area);
        out = saturate_int8(static_cast<std::int32_t>(rounded));
      } else {
        out = static_cast<std::int8_t>(acc);
      }
      dst[q * channels + c] = static_cast<std::uint8_t>(out);
    }
  }
}

void CoreModel::exec_pool_ref(const DecodedInst& inst, std::int64_t out_w) {
  const bool avg = inst.funct != 0;
  const auto dst = static_cast<std::uint32_t>(regs_[inst.rd]);
  const auto src = static_cast<std::uint32_t>(regs_[inst.rs]);
  const std::int64_t kh = sreg_i(sregs_, SReg::kPoolKh);
  const std::int64_t kw = sreg_i(sregs_, SReg::kPoolKw);
  const std::int64_t stride = sreg_i(sregs_, SReg::kPoolStride);
  const std::int64_t win = sreg_i(sregs_, SReg::kPoolWin);
  const std::int64_t channels = sreg_i(sregs_, SReg::kPoolChannels);
  const std::int64_t area = kh * kw;
  for (std::int64_t q = 0; q < out_w; ++q) {
    for (std::int64_t c = 0; c < channels; ++c) {
      std::int64_t acc = avg ? 0 : -128;
      for (std::int64_t r = 0; r < kh; ++r) {
        for (std::int64_t s = 0; s < kw; ++s) {
          const std::int64_t idx = (r * win + q * stride + s) * channels + c;
          const auto v =
              static_cast<std::int8_t>(load_u8(src + static_cast<std::uint32_t>(idx)));
          if (avg) {
            acc += v;
          } else {
            acc = std::max<std::int64_t>(acc, v);
          }
        }
      }
      std::int8_t out;
      if (avg) {
        const std::int64_t rounded =
            acc >= 0 ? (acc + area / 2) / area : -((-acc + area / 2) / area);
        out = saturate_int8(static_cast<std::int32_t>(rounded));
      } else {
        out = static_cast<std::int8_t>(acc);
      }
      store_u8(dst + static_cast<std::uint32_t>(q * channels + c),
               static_cast<std::uint8_t>(out));
    }
  }
}

void CoreModel::exec_mvm(const DecodedInst& inst, std::int64_t rows, std::int64_t cols) {
  if (ctx_.options->reference_kernels) return exec_mvm_ref(inst, rows, cols);
  const auto in = static_cast<std::uint32_t>(regs_[inst.rs]);
  const auto out = static_cast<std::uint32_t>(regs_[inst.rt]);
  const std::int64_t mg = regs_[inst.re];
  const bool accumulate = (inst.flags & 1) != 0;
  const std::int8_t* weights =
      reinterpret_cast<const std::int8_t*>(mg_weights_.data()) + mg * mg_tile_elems_;

  check_span(in, rows);
  if (cols <= 0) return;
  check_span(out, cols * 4);

  // Overlapping input/output ranges (never emitted by the compiler — psums
  // live apart from activations) would observe different bytes here than
  // under the reference's column-by-column read-modify-write interleaving:
  // this kernel consumes the whole input before flushing. Route them to the
  // reference so fast and byte-routed paths stay equivalent universally.
  if (rows > 0 && isa::is_local_address(in) == isa::is_local_address(out)) {
    const std::uint64_t in0 = in, in1 = in + static_cast<std::uint64_t>(rows);
    const std::uint64_t out0 = out, out1 = out + static_cast<std::uint64_t>(cols) * 4;
    if (in0 < out1 && out0 < in1) return exec_mvm_ref(inst, rows, cols);
  }

  // Output first (materializes the page it may share with the input), then
  // the input span — falling back to a scratch bounce only when the global
  // image cannot pin it.
  std::uint8_t* out_span = resolve_write(out, cols * 4);
  const std::uint8_t* input = nullptr;
  if (rows > 0) {
    input = resolve_read(in, rows);
    if (input == nullptr) {
      std::uint8_t* bounce = ensure_scratch(rows);
      ctx_.global->read_bytes(in, rows, bounce);
      input = bounce;
    }
  }

  // The register-blocked psum row: preloaded (accumulate) or zeroed, all
  // weight rows streamed through it, flushed with one store.
  std::int32_t* row = mvm_row_.ensure(static_cast<std::size_t>(cols));
  if (accumulate) {
    if (out_span != nullptr) {
      kernels::load_le32_row(row, out_span, cols);
    } else {
      std::uint8_t* staging = row_scratch_.ensure(static_cast<std::size_t>(cols * 4));
      ctx_.global->read_bytes(out, cols * 4, staging);
      kernels::load_le32_row(row, staging, cols);
    }
  } else {
    std::fill(row, row + cols, 0);
  }
  if (rows > 0) kt_->mvm_accumulate(row, input, weights, rows, cols);
  if (out_span != nullptr) {
    kernels::store_le32_row(out_span, row, cols);
  } else {
    std::uint8_t* staging = row_scratch_.ensure(static_cast<std::size_t>(cols * 4));
    kernels::store_le32_row(staging, row, cols);
    ctx_.global->write_bytes(out, staging, cols * 4);
  }
}

void CoreModel::exec_mvm_ref(const DecodedInst& inst, std::int64_t rows,
                             std::int64_t cols) {
  const auto in = static_cast<std::uint32_t>(regs_[inst.rs]);
  const auto out = static_cast<std::uint32_t>(regs_[inst.rt]);
  const std::int64_t mg = regs_[inst.re];
  const bool accumulate = (inst.flags & 1) != 0;
  const std::int8_t* weights =
      reinterpret_cast<const std::int8_t*>(mg_weights_.data()) + mg * mg_tile_elems_;
  const std::uint8_t* input;
  check_span(in, rows);
  if (isa::is_local_address(in)) {
    input = lmem_.data() + isa::local_offset(in);
  } else {
    std::uint8_t* bounce = ensure_scratch(rows);
    ctx_.global->read_bytes(in, rows, bounce);
    input = bounce;
  }
  for (std::int64_t j = 0; j < cols; ++j) {
    std::int64_t acc = 0;
    for (std::int64_t i = 0; i < rows; ++i) {
      acc += static_cast<std::int64_t>(static_cast<std::int8_t>(input[i])) *
             weights[i * cols + j];
    }
    const auto addr = out + static_cast<std::uint32_t>(4 * j);
    const std::int64_t prev = accumulate ? read_i32(addr) : 0;
    write_i32(addr, static_cast<std::int32_t>(prev + acc));
  }
}

// ============================================================================
// the per-instruction step
// ============================================================================

bool CoreModel::step() {
  const DecodedInst& inst = dcode_[pc];
  const auto op = static_cast<Opcode>(inst.op);
  const arch::ArchConfig& arch = *ctx_.arch;
  const arch::EnergyModel& energy_model = *ctx_.energy;

  const std::int64_t t_fetch = next_fetch;
  std::int64_t t_issue = std::max(t_fetch + 2, last_issue_ + 1);
  // The predecoded register-use list: the same max the per-operand use()
  // calls computed (max is idempotent, so the decode-time dedup never
  // changes it).
  for (std::uint8_t k = 0; k < inst.use_count; ++k) {
    t_issue = std::max(t_issue, reg_ready_[inst.use_regs[k]]);
  }

  const std::int64_t lanes = arch.unit().vector_lanes;
  const std::int64_t lm_width = arch.core().local_mem_width_bytes;
  bool taken_branch = false;
  std::int64_t redirect = 0;

  switch (op) {
    // ---- control & scalar -------------------------------------------------
    case Opcode::kNop:
      break;
    case Opcode::kHalt: {
      // A core is only done once its execution units drain: the makespan
      // must include in-flight CIM/vector/transfer work.
      std::int64_t quiesce = t_issue;
      quiesce = std::max(quiesce, vec_free_ + arch.unit().vector_pipeline_depth);
      quiesce = std::max(quiesce, scalar_free_);
      quiesce = std::max(quiesce, transfer_free_);
      for (std::int64_t mg : mg_free_) {
        quiesce = std::max(quiesce, mg + arch.unit().mvm_pipeline_depth);
      }
      status = Status::kHalted;
      stats.halt_cycle = quiesce;
      break;
    }
    case Opcode::kGLi: {
      regs_[inst.rt] = inst.imm;
      reg_ready_[inst.rt] = std::max(reg_ready_[inst.rt], t_issue + 1);
      break;
    }
    case Opcode::kGLih: {
      regs_[inst.rt] = static_cast<std::int32_t>(
          (static_cast<std::uint32_t>(inst.imm) << 16) |
          (static_cast<std::uint32_t>(regs_[inst.rt]) & 0xFFFFu));
      reg_ready_[inst.rt] = std::max(reg_ready_[inst.rt], t_issue + 1);
      break;
    }
    case Opcode::kScOp:
    case Opcode::kScAddi: {
      const std::int32_t a = regs_[inst.rs];
      std::int32_t b;
      std::uint8_t dst;
      if (op == Opcode::kScOp) {
        b = regs_[inst.rt];
        dst = inst.rd;
      } else {
        b = inst.imm;
        dst = inst.rt;
      }
      std::int32_t result = 0;
      switch (static_cast<ScalarFunct>(inst.funct)) {
        case ScalarFunct::kAdd: result = a + b; break;
        case ScalarFunct::kSub: result = a - b; break;
        case ScalarFunct::kMul: result = a * b; break;
        case ScalarFunct::kAnd: result = a & b; break;
        case ScalarFunct::kOr: result = a | b; break;
        case ScalarFunct::kXor: result = a ^ b; break;
        case ScalarFunct::kSll:
          result = static_cast<std::int32_t>(static_cast<std::uint32_t>(a) << (b & 31));
          break;
        case ScalarFunct::kSrl:
          result = static_cast<std::int32_t>(static_cast<std::uint32_t>(a) >> (b & 31));
          break;
        case ScalarFunct::kSra: result = a >> (b & 31); break;
        case ScalarFunct::kSlt: result = a < b ? 1 : 0; break;
        case ScalarFunct::kDivU:
          result = b == 0 ? 0
                          : static_cast<std::int32_t>(static_cast<std::uint32_t>(a) /
                                                      static_cast<std::uint32_t>(b));
          break;
        case ScalarFunct::kRemU:
          result = b == 0 ? 0
                          : static_cast<std::int32_t>(static_cast<std::uint32_t>(a) %
                                                      static_cast<std::uint32_t>(b));
          break;
      }
      if (dst != 0) regs_[dst] = result;
      scalar_free_ = std::max(scalar_free_, t_issue) + 1;
      reg_ready_[dst] = std::max(reg_ready_[dst], t_issue + 1);
      energy.scalar_unit += energy_model.scalar_op_pj();
      break;
    }
    case Opcode::kScLw: {
      const auto addr = static_cast<std::uint32_t>(regs_[inst.rs] + inst.imm);
      const std::int64_t start = mem_dep_start(addr, 4, false, t_issue);
      if (inst.rt != 0) regs_[inst.rt] = read_i32(addr);
      reg_ready_[inst.rt] = std::max(reg_ready_[inst.rt], start + 2);
      mem_dep_finish(addr, 4, false, start + 2);
      energy.local_mem += energy_model.local_mem_pj(4);
      break;
    }
    case Opcode::kScSw: {
      const auto addr = static_cast<std::uint32_t>(regs_[inst.rs] + inst.imm);
      const std::int64_t start = mem_dep_start(addr, 4, true, t_issue);
      write_i32(addr, regs_[inst.rt]);
      mem_dep_finish(addr, 4, true, start + 1);
      energy.local_mem += energy_model.local_mem_pj(4);
      break;
    }
    case Opcode::kJmp:
      taken_branch = true;
      redirect = t_issue + kBranchRedirect;
      pc += inst.imm;
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge: {
      const std::int32_t a = regs_[inst.rs];
      const std::int32_t b = regs_[inst.rt];
      bool take = false;
      if (op == Opcode::kBeq) take = a == b;
      if (op == Opcode::kBne) take = a != b;
      if (op == Opcode::kBlt) take = a < b;
      if (op == Opcode::kBge) take = a >= b;
      if (take) {
        taken_branch = true;
        redirect = t_issue + kBranchRedirect;
        pc += inst.imm;
      }
      break;
    }

    // ---- CIM unit ---------------------------------------------------------
    case Opcode::kCimCfg: {
      sregs_[inst.flags & 31] = regs_[inst.rs];
      break;
    }
    case Opcode::kCimLoad: {
      const std::int64_t rows = sreg_i(sregs_, SReg::kActiveRows);
      const std::int64_t cols = sreg_i(sregs_, SReg::kActiveCols);
      const std::int64_t bytes = rows * cols;
      const std::int64_t mg = regs_[inst.rt];
      if (mg < 0 || mg >= arch.core().mg_per_unit) {
        fail(strprintf("core %lld CIM_LOAD: bad macro group %lld", (long long)id,
                       (long long)mg));
      }
      const auto src = static_cast<std::uint32_t>(regs_[inst.rs]);
      std::int64_t start = mem_dep_start(src, bytes, false, t_issue);
      start = std::max(start, mg_free_[static_cast<std::size_t>(mg)]);
      const std::int64_t done =
          start + ceil_div(bytes, arch.core().cim_load_bytes_per_cycle);
      mg_free_[static_cast<std::size_t>(mg)] = done;
      stats.cim_busy_cycles += done - start;
      mem_dep_finish(src, bytes, false, done);
      if (ctx_.options->functional) {
        check_span(src, bytes);
        std::uint8_t* weights = mg_weights_.data() + mg * mg_tile_elems_;
        if (isa::is_local_address(src)) {
          std::memcpy(weights, lmem_.data() + isa::local_offset(src),
                      static_cast<std::size_t>(bytes));
        } else {
          ctx_.global->read_bytes(src, bytes, weights);
        }
      }
      energy.cim += energy_model.cim_load_pj(bytes);
      energy.local_mem += energy_model.local_mem_pj(bytes);
      break;
    }
    case Opcode::kCimMvm: {
      const std::int64_t rows = sreg_i(sregs_, SReg::kActiveRows);
      const std::int64_t cols = sreg_i(sregs_, SReg::kActiveCols);
      std::int64_t macs = sreg_i(sregs_, SReg::kMacCount);
      if (macs <= 0) macs = rows * cols;
      const std::int64_t mg = regs_[inst.re];
      if (mg < 0 || mg >= arch.core().mg_per_unit) {
        fail(strprintf("core %lld CIM_MVM: bad macro group %lld", (long long)id,
                       (long long)mg));
      }
      const auto in = static_cast<std::uint32_t>(regs_[inst.rs]);
      const auto out = static_cast<std::uint32_t>(regs_[inst.rt]);
      std::int64_t start = mem_dep_start(in, rows, false, t_issue);
      start = mem_dep_start(out, cols * 4, true, start);
      start = std::max(start, mg_free_[static_cast<std::size_t>(mg)]);
      const std::int64_t busy_until = start + arch.mvm_interval_cycles();
      const std::int64_t result = start + arch.mvm_latency_cycles();
      mg_free_[static_cast<std::size_t>(mg)] = busy_until;
      stats.cim_busy_cycles += busy_until - start;
      mem_dep_finish(in, rows, false, busy_until);
      mem_dep_finish(out, cols * 4, true, result);
      if (ctx_.options->functional) exec_mvm(inst, rows, cols);
      energy.cim += energy_model.mvm_pj_macs(macs, cols);
      energy.local_mem += energy_model.local_mem_pj(rows + cols * 4);
      ++mvm_count;
      total_macs += macs;
      break;
    }

    // ---- vector unit ------------------------------------------------------
    case Opcode::kVecOp:
    case Opcode::kVecPool: {
      const std::int64_t n = regs_[inst.re];
      std::int64_t work = n;  // lane-elements of vector work
      std::int64_t rd_bytes = n, wr_bytes = n;
      if (op == Opcode::kVecPool) {
        const std::int64_t kh = sreg_i(sregs_, SReg::kPoolKh);
        const std::int64_t kw = sreg_i(sregs_, SReg::kPoolKw);
        const std::int64_t channels = sreg_i(sregs_, SReg::kPoolChannels);
        work = n * channels * kh * kw;
        rd_bytes = work;
        wr_bytes = n * channels;
      } else {
        // The per-funct operand widths, predecoded (see decoded.hpp).
        rd_bytes = n * inst.vec_rd_scale;
        wr_bytes = n * inst.vec_wr_scale;
        if (inst.vec_rowsum) {
          const std::int64_t pixels = sreg_i(sregs_, SReg::kPoolWin);
          work = n * pixels;
          rd_bytes = n * pixels;
        }
      }
      const auto dst = static_cast<std::uint32_t>(regs_[inst.rd]);
      const auto a = static_cast<std::uint32_t>(regs_[inst.rs]);
      const auto b = static_cast<std::uint32_t>(regs_[inst.rt]);
      std::int64_t start = mem_dep_start(dst, wr_bytes, true, t_issue);
      start = mem_dep_start(a, rd_bytes, false, start);
      if (op == Opcode::kVecOp && inst.vec_reads_b) {
        start = mem_dep_start(b, n, false, start);
      }
      start = std::max(start, vec_free_);
      const std::int64_t busy_until = start + 1 + ceil_div(work, lanes);
      const std::int64_t done = busy_until + arch.unit().vector_pipeline_depth;
      vec_free_ = busy_until;
      stats.vector_busy_cycles += busy_until - start;
      mem_dep_finish(dst, wr_bytes, true, done);
      mem_dep_finish(a, rd_bytes, false, busy_until);
      if (ctx_.options->functional) {
        if (op == Opcode::kVecPool) {
          exec_pool(inst, n);
        } else {
          exec_vec(inst, n);
        }
      }
      energy.vector_unit += energy_model.vector_op_pj(work);
      energy.local_mem += energy_model.local_mem_pj(rd_bytes + wr_bytes);
      break;
    }

    // ---- transfer unit ----------------------------------------------------
    case Opcode::kMemCpy:
    case Opcode::kMemStride: {
      const auto dst = static_cast<std::uint32_t>(regs_[inst.rs]);
      const auto src = static_cast<std::uint32_t>(regs_[inst.rt]);
      std::int64_t count = regs_[inst.rd];
      std::int64_t elem = 1, dstride = 1, sstride = 1;
      if (op == Opcode::kMemStride) {
        dstride = sreg_i(sregs_, SReg::kAux0);
        sstride = sreg_i(sregs_, SReg::kAux1);
        elem = sreg_i(sregs_, SReg::kAux2);
      }
      const std::int64_t bytes = count * elem;
      const std::int64_t dst_span =
          op == Opcode::kMemStride ? (count - 1) * dstride + elem : bytes;
      const std::int64_t src_span =
          op == Opcode::kMemStride ? (count - 1) * sstride + elem : bytes;
      std::int64_t start = std::max(t_issue, transfer_free_);
      start = mem_dep_start(src, src_span, false, start);
      start = mem_dep_start(dst, dst_span, true, start);
      std::int64_t done;
      const bool src_local = isa::is_local_address(src);
      const bool dst_local = isa::is_local_address(dst);
      if (src_local && dst_local) {
        done = start + 2 + ceil_div(bytes, lm_width);
        energy.local_mem += energy_model.local_mem_pj(2 * bytes);
      } else {
        // Shared-fabric access: park the request for the event scheduler on
        // the first pass; the retry consumes the resolved completion time.
        // The core's clock is frozen while parked, so the recomputed `start`
        // is identical — the rendezvous is invisible in the report.
        if (!global_resolution.has_value()) {
          const std::uint32_t global_addr = dst_local ? src : dst;
          pending_global =
              GlobalRequest{global_addr, bytes, start, /*is_read=*/dst_local,
                            request_seq_++};
          status = Status::kBlockedGlobal;
          return false;
        }
        done = *global_resolution;
        global_resolution.reset();
        energy.local_mem += energy_model.local_mem_pj(bytes);
      }
      transfer_free_ = done;
      stats.transfer_busy_cycles += done - start;
      mem_dep_finish(src, src_span, false, done);
      mem_dep_finish(dst, dst_span, true, done);
      if (ctx_.options->functional && bytes > 0) {
        if (op == Opcode::kMemCpy) {
          copy_bytes(dst, src, bytes);
        } else {
          for (std::int64_t i = 0; i < count; ++i) {
            copy_bytes(dst + static_cast<std::uint32_t>(i * dstride),
                       src + static_cast<std::uint32_t>(i * sstride), elem);
          }
        }
      }
      break;
    }
    case Opcode::kSend: {
      const auto src = static_cast<std::uint32_t>(regs_[inst.rs]);
      const std::int64_t bytes = regs_[inst.rt];
      const std::int64_t dst_core = regs_[inst.rd];
      if (dst_core < 0 || dst_core >= ctx_.arch->chip().core_count) {
        fail(strprintf("core %lld SEND to invalid core %lld", (long long)id,
                       (long long)dst_core));
      }
      std::int64_t start = mem_dep_start(src, bytes, false, t_issue);
      start = std::max(start, transfer_free_);
      const std::int64_t inject_done =
          start + 2 + ceil_div(bytes, arch.chip().noc_flit_bytes);
      transfer_free_ = inject_done;
      stats.transfer_busy_cycles += inject_done - start;
      mem_dep_finish(src, bytes, false, inject_done);
      // The sender never observes the arrival time, so it keeps running; the
      // scheduler routes the message through the NoC (contention + energy)
      // when the send event commits in global-time order and delivers it then.
      SendRequest req;
      req.dst_core = dst_core;
      req.tag = inst.imm;
      req.bytes = bytes;
      req.depart = start + 2;
      req.seq = request_seq_++;
      if (ctx_.options->functional && bytes > 0) {
        check_span(src, bytes);
        req.payload.resize(static_cast<std::size_t>(bytes));
        if (isa::is_local_address(src)) {
          std::memcpy(req.payload.data(), lmem_.data() + isa::local_offset(src),
                      static_cast<std::size_t>(bytes));
        } else {
          ctx_.global->read_bytes(src, bytes, req.payload.data());
        }
      }
      energy.local_mem += energy_model.local_mem_pj(bytes);
      outbox.push_back(std::move(req));
      break;
    }
    case Opcode::kRecv: {
      const std::int64_t src_core = regs_[inst.rd];
      const auto key = std::make_pair(src_core, static_cast<std::int32_t>(inst.imm));
      auto it = inbox.find(key);
      if (it == inbox.end() || it->second.empty()) {
        recv_key = key;
        status = Status::kBlockedRecv;
        return false;  // retry once a message is delivered
      }
      Message msg = std::move(it->second.front());
      it->second.pop_front();
      const std::int64_t bytes = regs_[inst.rt];
      if (bytes != msg.bytes) {
        fail(strprintf("core %lld RECV size mismatch at pc=%lld (src=%lld tag=%d): "
                       "expected %lld got %lld",
                       (long long)id, (long long)pc, (long long)src_core, inst.imm,
                       (long long)bytes, (long long)msg.bytes));
      }
      const auto dst = static_cast<std::uint32_t>(regs_[inst.rs]);
      std::int64_t start = std::max({t_issue, msg.arrival, transfer_free_});
      start = mem_dep_start(dst, bytes, true, start);
      const std::int64_t done = start + 2 + ceil_div(bytes, lm_width);
      transfer_free_ = done;
      stats.transfer_busy_cycles += done - start;
      mem_dep_finish(dst, bytes, true, done);
      if (ctx_.options->functional && bytes > 0) {
        check_span(dst, bytes);
        if (isa::is_local_address(dst)) {
          std::memcpy(lmem_.data() + isa::local_offset(dst), msg.payload.data(),
                      static_cast<std::size_t>(bytes));
        } else {
          ctx_.global->write_bytes(dst, msg.payload.data(), bytes);
        }
      }
      energy.local_mem += energy_model.local_mem_pj(bytes);
      t_issue = start;  // the core was architecturally waiting
      break;
    }
    case Opcode::kBarrier: {
      // All cores rendezvous through the scheduler: block with the issue time
      // recorded; release_from_barrier() retires the instruction uniformly.
      barrier_tag = static_cast<std::int32_t>(inst.imm);
      barrier_issue = t_issue;
      status = Status::kBlockedBarrier;
      return false;
    }

    default: {
      // Custom instruction via the registry's description template; the
      // descriptor was resolved at decode time (a map lookup per dynamic
      // execution on the seed interpreter). Unresolvable opcodes still fail
      // lazily, with the registry's own error.
      const isa::InstructionDescriptor* resolved = inst.custom;
      if (resolved == nullptr) {
        resolved = &ctx_.registry->lookup((*code_)[static_cast<std::size_t>(pc)]);
      }
      const isa::InstructionDescriptor& desc = *resolved;
      const std::int64_t n = regs_[inst.re];
      std::int64_t busy = desc.timing.fixed_cycles;
      if (desc.timing.elements_per_cycle > 0) {
        busy += ceil_div(std::max<std::int64_t>(n, 0), desc.timing.elements_per_cycle);
      }
      std::int64_t* unit_free = &scalar_free_;
      if (desc.unit == isa::UnitKind::kVector) unit_free = &vec_free_;
      if (desc.unit == isa::UnitKind::kTransfer) unit_free = &transfer_free_;
      if (desc.unit == isa::UnitKind::kCim) unit_free = &mg_free_[0];
      const std::int64_t start = std::max(t_issue, *unit_free);
      *unit_free = start + busy;
      if (desc.execute) {
        CustomCtx custom;
        custom.core = this;
        desc.execute((*code_)[static_cast<std::size_t>(pc)], custom);
        regs_[0] = 0;
      }
      energy.vector_unit +=
          desc.energy.fixed_pj + desc.energy.per_element_pj * static_cast<double>(n);
      break;
    }
  }

  // Common bookkeeping.
  regs_[0] = 0;
  last_issue_ = t_issue;
  next_fetch = taken_branch ? redirect : std::max(t_fetch + 1, t_issue - 1);
  if (!taken_branch) pc += 1;
  stats.instructions += 1;
  energy.instruction += ctx_.energy->instruction_pj();
  return true;
}

void CoreModel::run_until(std::int64_t limit) {
  const std::int64_t base = stats.instructions;
  while (status == Status::kReady && next_fetch < limit) {
    if (pc < 0 || pc >= code_size_) {
      fail(strprintf("core %lld ran off its program (pc=%lld)", (long long)id,
                     (long long)pc));
    }
    if (next_fetch > ctx_.options->max_cycles) {
      // Leveled diagnostic ahead of the raise: the exception carries the same
      // facts, but long sweeps that swallow per-point failures still surface
      // the watchdog through the logger.
      CIMFLOW_ERROR() << "core " << id << " simulation watchdog expired at cycle "
                      << next_fetch << " (max_cycles=" << ctx_.options->max_cycles
                      << ")";
      fail("simulation watchdog expired");
    }
    if (!step()) break;
  }
  run_steps += stats.instructions - base;
}

void CoreModel::release_from_barrier(std::int64_t release) {
  status = Status::kReady;
  pc += 1;
  next_fetch = release;
  last_issue_ = release - 1;
  stats.instructions += 1;  // the barrier retires now
  energy.instruction += ctx_.energy->instruction_pj();
}

}  // namespace cimflow::sim
