#include "cimflow/sim/decoded.hpp"

#include <cstdlib>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "cimflow/support/hash.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::sim {

namespace {

using isa::Opcode;
using isa::VecFunct;

/// The exact register set the interpreter's use() calls covered per opcode —
/// deduplicated (max over the scoreboard is idempotent and order-free, so
/// duplicates and order never mattered), recorded as a short fixed list.
void fill_use_regs(const isa::Instruction& inst, DecodedInst& d) {
  std::uint8_t regs[4];
  std::uint8_t count = 0;
  auto use = [&](std::uint8_t r) {
    r &= 31;
    for (std::uint8_t k = 0; k < count; ++k) {
      if (regs[k] == r) return;
    }
    regs[count++] = r;
  };
  switch (inst.op()) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kGLi:
    case Opcode::kJmp:
    case Opcode::kBarrier:
      break;
    case Opcode::kGLih:
      use(inst.rt);
      break;
    case Opcode::kScAddi:
    case Opcode::kScLw:
    case Opcode::kCimCfg:
      use(inst.rs);
      break;
    case Opcode::kScOp:
    case Opcode::kScSw:
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kCimLoad:
      use(inst.rs);
      use(inst.rt);
      break;
    case Opcode::kCimMvm:
      use(inst.rs);
      use(inst.rt);
      use(inst.re);
      break;
    case Opcode::kVecOp:
    case Opcode::kVecPool:
      use(inst.rs);
      use(inst.rt);
      use(inst.rd);
      use(inst.re);
      break;
    case Opcode::kMemCpy:
    case Opcode::kMemStride:
    case Opcode::kSend:
    case Opcode::kRecv:
      use(inst.rs);
      use(inst.rt);
      use(inst.rd);
      break;
    default:  // custom range
      use(inst.rs);
      use(inst.rt);
      use(inst.re);
      use(inst.rd);
      break;
  }
  for (std::uint8_t k = 0; k < count; ++k) d.use_regs[k] = regs[k];
  d.use_count = count;
}

DecodedInst decode_one(const isa::Instruction& inst, const isa::Registry& registry) {
  DecodedInst d;
  d.op = inst.opcode;
  d.rs = inst.rs;
  d.rt = inst.rt;
  d.re = inst.re;
  d.rd = inst.rd;
  d.funct = inst.funct;
  d.flags = inst.flags;
  d.imm = inst.imm;
  fill_use_regs(inst, d);

  if (inst.op() == Opcode::kVecOp) {
    const auto funct = static_cast<VecFunct>(inst.funct);
    switch (funct) {
      case VecFunct::kQuant:
      case VecFunct::kDivRound8:
        d.vec_rd_scale = 4;
        break;
      case VecFunct::kCopy32:
      case VecFunct::kFill32:
      case VecFunct::kAdd32:
      case VecFunct::kMax32:
      case VecFunct::kRelu32:
        d.vec_rd_scale = 4;
        d.vec_wr_scale = 4;
        break;
      case VecFunct::kDeq8To32:
      case VecFunct::kAdd8To32:
        d.vec_wr_scale = 4;
        break;
      case VecFunct::kRowSum32:
        d.vec_rowsum = true;
        d.vec_wr_scale = 4;
        break;
      default:
        break;
    }
    d.vec_reads_b = inst.rt != 0;
  }

  // Custom-range opcodes resolve their descriptor once here; an unresolvable
  // instruction keeps custom == nullptr and fails lazily at execution with
  // the registry's own error, exactly like the undecoded interpreter.
  const bool builtin = [&] {
    switch (inst.op()) {
      case Opcode::kNop: case Opcode::kHalt: case Opcode::kGLi: case Opcode::kGLih:
      case Opcode::kScOp: case Opcode::kScAddi: case Opcode::kScLw: case Opcode::kScSw:
      case Opcode::kJmp: case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
      case Opcode::kBge: case Opcode::kCimCfg: case Opcode::kCimLoad:
      case Opcode::kCimMvm: case Opcode::kVecOp: case Opcode::kVecPool:
      case Opcode::kMemCpy: case Opcode::kMemStride: case Opcode::kSend:
      case Opcode::kRecv: case Opcode::kBarrier:
        return true;
      default:
        return false;
    }
  }();
  if (!builtin) {
    try {
      d.custom = &registry.lookup(inst);
    } catch (...) {
      d.custom = nullptr;
    }
  }
  return d;
}

struct CacheEntry {
  std::weak_ptr<const DecodedProgram> decode;
};

struct DecodeCache {
  std::mutex mu;
  /// Key: program content fingerprint combined with the registry address
  /// (descriptor pointers alias the registry, so different registries must
  /// never share a decode).
  std::unordered_map<std::uint64_t, CacheEntry> entries;
  /// Strong-reference LRU over the most recently used decodes (front = most
  /// recent). The weak map above deduplicates concurrent users; this list is
  /// what keeps a decode alive BETWEEN users, so a repeated evaluation of
  /// the same program in one process starts warm.
  std::list<std::pair<std::uint64_t, std::shared_ptr<const DecodedProgram>>> strong;
  std::unordered_map<std::uint64_t,
                     std::list<std::pair<std::uint64_t,
                                         std::shared_ptr<const DecodedProgram>>>::iterator>
      strong_index;
  std::size_t strong_capacity = kDefaultStrongDecodes;
  DecodedCacheStats stats;

  DecodeCache() {
    if (const char* env = std::getenv("CIMFLOW_DECODE_LRU")) {
      try {
        const std::int64_t n = parse_i64(env);
        if (n >= 0) strong_capacity = static_cast<std::size_t>(n);
      } catch (...) {
        // An unparsable override keeps the default; the cache must never
        // throw out of a static initializer.
      }
    }
  }

  /// Pins `decode` as the most recently used entry (caller holds mu).
  void touch_strong(std::uint64_t key, const std::shared_ptr<const DecodedProgram>& decode) {
    if (strong_capacity == 0) return;
    auto it = strong_index.find(key);
    if (it != strong_index.end()) {
      strong.splice(strong.begin(), strong, it->second);
      return;
    }
    strong.emplace_front(key, decode);
    strong_index[key] = strong.begin();
    trim_strong();
  }

  /// Drops least-recently-used pins until the list fits (caller holds mu).
  void trim_strong() {
    while (strong.size() > strong_capacity) {
      strong_index.erase(strong.back().first);
      strong.pop_back();
      ++stats.strong_evictions;
    }
  }
};

DecodeCache& cache() {
  static DecodeCache instance;
  return instance;
}

}  // namespace

std::uint64_t DecodedProgram::program_fingerprint(const isa::Program& program) {
  Fnv1a h;
  h.u64(program.cores.size());
  for (const isa::CoreProgram& core : program.cores) {
    h.u64(core.code.size());
    for (const isa::Instruction& inst : core.code) {
      const std::uint8_t fields[6] = {inst.opcode, inst.rs, inst.rt,
                                      inst.re, inst.rd, inst.funct};
      h.bytes(fields, sizeof(fields));
      h.i64(inst.imm);
      h.u64(inst.flags);
    }
  }
  return h.digest();
}

std::shared_ptr<const DecodedProgram> DecodedProgram::build(const isa::Program& program,
                                                            const isa::Registry& registry) {
  auto decoded = std::shared_ptr<DecodedProgram>(new DecodedProgram());
  decoded->cores_.reserve(program.cores.size());
  std::int64_t count = 0;
  for (const isa::CoreProgram& core : program.cores) {
    std::vector<DecodedInst> stream;
    stream.reserve(core.code.size());
    for (const isa::Instruction& inst : core.code) {
      stream.push_back(decode_one(inst, registry));
    }
    count += static_cast<std::int64_t>(stream.size());
    decoded->cores_.push_back(std::move(stream));
  }
  decoded->bytes_ = count * static_cast<std::int64_t>(sizeof(DecodedInst));
  decoded->fingerprint_ = program_fingerprint(program);
  return decoded;
}

std::shared_ptr<const DecodedProgram> DecodedProgram::shared(const isa::Program& program,
                                                             const isa::Registry& registry) {
  const std::uint64_t key = hash_combine(
      program_fingerprint(program),
      static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(&registry)));

  DecodeCache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  ++c.stats.lookups;
  auto it = c.entries.find(key);
  if (it != c.entries.end()) {
    if (auto live = it->second.decode.lock()) {
      ++c.stats.hits;
      c.touch_strong(key, live);
      return live;
    }
  }
  // Build under the lock: single-flight (concurrent simulators of one
  // program decode exactly once), and decoding is cheap relative to any
  // simulation that follows. Expired entries are reclaimed as we go.
  auto decoded = build(program, registry);
  ++c.stats.builds;
  for (auto probe = c.entries.begin(); probe != c.entries.end();) {
    probe = probe->second.decode.expired() ? c.entries.erase(probe) : std::next(probe);
  }
  c.entries[key] = CacheEntry{decoded};
  c.touch_strong(key, decoded);
  return decoded;
}

DecodedCacheStats decoded_cache_stats() {
  DecodeCache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  DecodedCacheStats stats = c.stats;
  stats.live = 0;
  for (const auto& [key, entry] : c.entries) {
    if (!entry.decode.expired()) ++stats.live;
  }
  stats.strong_entries = c.strong.size();
  stats.strong_capacity = c.strong_capacity;
  return stats;
}

std::size_t decoded_cache_set_strong_capacity(std::size_t capacity) {
  DecodeCache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  const std::size_t previous = c.strong_capacity;
  c.strong_capacity = capacity;
  c.trim_strong();
  return previous;
}

}  // namespace cimflow::sim
