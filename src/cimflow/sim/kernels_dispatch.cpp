// Tier registry and runtime dispatch for the SIMD kernel layer (see
// kernels_dispatch.hpp for the contract). The scalar table is assembled from
// the shared inline bodies; the AVX2/NEON tables live in their own
// translation units (per-file ISA flags) and register themselves through
// avx2_table()/neon_table().
#include "cimflow/sim/kernels_dispatch.hpp"

#include <cstdlib>
#include <string>

#include "cimflow/sim/kernels.hpp"
#include "cimflow/support/status.hpp"

namespace cimflow::sim::kernels {

namespace {

const KernelTable kScalarTable = {
    &mvm_accumulate,  // the PR 5 register-blocked row-major kernel
    &scalar_add8,
    &scalar_sub8,
    &scalar_max8,
    &scalar_min8,
    &scalar_relu8,
    &scalar_quant,
    &scalar_add32,
    &scalar_max32,
    &scalar_relu32,
    &scalar_deq8to32,
    &scalar_add8to32,
    &scalar_rowmax8,
    &scalar_rowadd8_i32,
};

/// One CPUID probe per process. __builtin_cpu_supports reads CPUID directly
/// (no OS dependency) and is cheap, but keeping it behind a static makes the
/// "probe once at startup" contract literal.
bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

KernelTier best_available() {
  if (tier_available(KernelTier::kAvx2)) return KernelTier::kAvx2;
  if (tier_available(KernelTier::kNeon)) return KernelTier::kNeon;
  return KernelTier::kScalar;
}

[[noreturn]] void raise_unavailable(KernelTier tier, const char* via) {
  raise(ErrorCode::kInvalidArgument,
        std::string(via) + ": kernel tier '" + to_string(tier) +
            "' is not available on this host (available: scalar" +
            (tier_available(KernelTier::kAvx2) ? ", avx2" : "") +
            (tier_available(KernelTier::kNeon) ? ", neon" : "") + ")");
}

[[noreturn]] void raise_unknown(std::string_view text, const char* via) {
  raise(ErrorCode::kInvalidArgument,
        std::string(via) + ": unknown kernel tier '" + std::string(text) +
            "' (expected auto, scalar, avx2, or neon)");
}

}  // namespace

const char* to_string(KernelTier tier) {
  switch (tier) {
    case KernelTier::kAuto: return "auto";
    case KernelTier::kScalar: return "scalar";
    case KernelTier::kAvx2: return "avx2";
    case KernelTier::kNeon: return "neon";
  }
  return "auto";
}

KernelTier tier_from_string(std::string_view text) {
  if (text == "auto") return KernelTier::kAuto;
  if (text == "scalar") return KernelTier::kScalar;
  if (text == "avx2") return KernelTier::kAvx2;
  if (text == "neon") return KernelTier::kNeon;
  raise_unknown(text, "kernel tier");
}

bool tier_available(KernelTier tier) {
  switch (tier) {
    case KernelTier::kAuto:
    case KernelTier::kScalar:
      return true;
    case KernelTier::kAvx2:
      return avx2_table() != nullptr && cpu_has_avx2();
    case KernelTier::kNeon:
      return neon_table() != nullptr;
  }
  return false;
}

std::vector<KernelTier> available_tiers() {
  std::vector<KernelTier> tiers{KernelTier::kScalar};
  if (tier_available(KernelTier::kAvx2)) tiers.push_back(KernelTier::kAvx2);
  if (tier_available(KernelTier::kNeon)) tiers.push_back(KernelTier::kNeon);
  return tiers;
}

KernelTier resolve_tier(KernelTier requested) {
  if (requested == KernelTier::kAuto) {
    // Env override first, strict: a mistyped gate must fail loudly, never
    // silently fall back to some tier (same rule as CIMFLOW_SIM_THREADS).
    const char* env = std::getenv("CIMFLOW_KERNELS");
    if (env != nullptr && *env != '\0') {
      KernelTier parsed = KernelTier::kAuto;
      if (std::string_view(env) == "auto") {
        parsed = KernelTier::kAuto;
      } else if (std::string_view(env) == "scalar") {
        parsed = KernelTier::kScalar;
      } else if (std::string_view(env) == "avx2") {
        parsed = KernelTier::kAvx2;
      } else if (std::string_view(env) == "neon") {
        parsed = KernelTier::kNeon;
      } else {
        raise_unknown(env, "CIMFLOW_KERNELS");
      }
      if (parsed != KernelTier::kAuto) {
        if (!tier_available(parsed)) raise_unavailable(parsed, "CIMFLOW_KERNELS");
        return parsed;
      }
    }
    return best_available();
  }
  if (!tier_available(requested)) raise_unavailable(requested, "kernel tier");
  return requested;
}

const KernelTable& kernel_table(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return kScalarTable;
    case KernelTier::kAvx2:
      CIMFLOW_CHECK(tier_available(tier), "avx2 kernel table requested on a non-AVX2 host");
      return *avx2_table();
    case KernelTier::kNeon:
      CIMFLOW_CHECK(tier_available(tier), "neon kernel table requested on a non-NEON host");
      return *neon_table();
    case KernelTier::kAuto:
      break;
  }
  raise(ErrorCode::kInvalidArgument,
        "kernel_table needs a concrete tier — resolve_tier(kAuto) first");
}

}  // namespace cimflow::sim::kernels
