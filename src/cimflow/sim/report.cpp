#include "cimflow/sim/report.hpp"

#include <algorithm>

#include "cimflow/support/strings.hpp"

namespace cimflow::sim {

double SimReport::cim_utilization(const arch::ArchConfig& arch) const noexcept {
  if (cycles <= 0 || cores.empty()) return 0;
  double busy = 0;
  for (const CoreStats& core : cores) busy += static_cast<double>(core.cim_busy_cycles);
  const double capacity = static_cast<double>(cycles) *
                          static_cast<double>(cores.size()) *
                          static_cast<double>(arch.core().mg_per_unit);
  return capacity > 0 ? busy / capacity : 0;
}

std::string SimReport::summary() const {
  std::string out;
  out += strprintf("cycles            : %lld (%.3f ms, %lld image(s))\n",
                   (long long)cycles, seconds() * 1e3, (long long)images);
  out += strprintf("instructions      : %lld (%lld MVMs, %.3f GMACs)\n",
                   (long long)instructions, (long long)mvm_count,
                   static_cast<double>(macs) / 1e9);
  out += strprintf("throughput        : %.4f TOPS\n", tops());
  out += strprintf("energy            : %.4f mJ total, %.4f mJ/image\n", energy_mj(),
                   energy_per_image_mj());
  const double total = std::max(energy.total(), 1e-12);
  out += strprintf("  CIM unit        : %10.4f mJ (%5.1f%%)\n", energy.cim * 1e-9,
                   100.0 * energy.cim / total);
  out += strprintf("  vector unit     : %10.4f mJ (%5.1f%%)\n",
                   energy.vector_unit * 1e-9, 100.0 * energy.vector_unit / total);
  out += strprintf("  scalar unit     : %10.4f mJ (%5.1f%%)\n",
                   energy.scalar_unit * 1e-9, 100.0 * energy.scalar_unit / total);
  out += strprintf("  local memory    : %10.4f mJ (%5.1f%%)\n", energy.local_mem * 1e-9,
                   100.0 * energy.local_mem / total);
  out += strprintf("  global memory   : %10.4f mJ (%5.1f%%)\n",
                   energy.global_mem * 1e-9, 100.0 * energy.global_mem / total);
  out += strprintf("  NoC             : %10.4f mJ (%5.1f%%)\n", energy.noc * 1e-9,
                   100.0 * energy.noc / total);
  out += strprintf("  instruction     : %10.4f mJ (%5.1f%%)\n",
                   energy.instruction * 1e-9, 100.0 * energy.instruction / total);
  out += strprintf("  static          : %10.4f mJ (%5.1f%%)\n", energy.leakage * 1e-9,
                   100.0 * energy.leakage / total);
  return out;
}

}  // namespace cimflow::sim
