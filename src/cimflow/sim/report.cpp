#include "cimflow/sim/report.hpp"

#include <algorithm>

#include "cimflow/support/strings.hpp"

namespace cimflow::sim {

Json EnergyBreakdown::to_json() const {
  JsonObject o;
  o["cim_pj"] = Json(cim);
  o["vector_unit_pj"] = Json(vector_unit);
  o["scalar_unit_pj"] = Json(scalar_unit);
  o["local_mem_pj"] = Json(local_mem);
  o["global_mem_pj"] = Json(global_mem);
  o["noc_pj"] = Json(noc);
  o["instruction_pj"] = Json(instruction);
  o["leakage_pj"] = Json(leakage);
  o["total_pj"] = Json(total());
  o["dynamic_total_pj"] = Json(dynamic_total());
  return Json(std::move(o));
}

Json SchedulerStats::to_json() const {
  JsonObject o;
  o["events_dispatched"] = Json(events_dispatched);
  o["max_queue_depth"] = Json(max_queue_depth);
  o["idle_cycles_skipped"] = Json(idle_cycles_skipped);
  return Json(std::move(o));
}

Json CoreStats::to_json() const {
  JsonObject o;
  o["instructions"] = Json(instructions);
  o["halt_cycle"] = Json(halt_cycle);
  o["cim_busy_cycles"] = Json(cim_busy_cycles);
  o["vector_busy_cycles"] = Json(vector_busy_cycles);
  o["transfer_busy_cycles"] = Json(transfer_busy_cycles);
  return Json(std::move(o));
}

Json SimReport::to_json() const {
  JsonObject o;
  o["cycles"] = Json(cycles);
  o["instructions"] = Json(instructions);
  o["mvm_count"] = Json(mvm_count);
  o["macs"] = Json(macs);
  o["images"] = Json(images);
  o["frequency_ghz"] = Json(frequency_ghz);
  o["seconds"] = Json(seconds());
  o["tops"] = Json(tops());
  o["energy_mj"] = Json(energy_mj());
  o["mj_per_image"] = Json(energy_per_image_mj());
  o["ms_per_image"] = Json(latency_per_image_ms());
  o["energy"] = energy.to_json();
  o["scheduler"] = scheduler.to_json();
  JsonArray core_array;
  core_array.reserve(cores.size());
  for (const CoreStats& core : cores) core_array.push_back(core.to_json());
  o["cores"] = Json(std::move(core_array));
  return Json(std::move(o));
}

std::string SimReport::csv_header() {
  return "cycles,instructions,mvm_count,macs,images,frequency_ghz,tops,"
         "energy_mj,mj_per_image,ms_per_image,energy_compute_pj,"
         "energy_local_mem_pj,energy_noc_pj,energy_leakage_pj";
}

std::string SimReport::to_csv_row() const {
  const std::string cells[] = {
      Json::number_to_string(static_cast<double>(cycles)),
      Json::number_to_string(static_cast<double>(instructions)),
      Json::number_to_string(static_cast<double>(mvm_count)),
      Json::number_to_string(static_cast<double>(macs)),
      Json::number_to_string(static_cast<double>(images)),
      Json::number_to_string(frequency_ghz),
      Json::number_to_string(tops()),
      Json::number_to_string(energy_mj()),
      Json::number_to_string(energy_per_image_mj()),
      Json::number_to_string(latency_per_image_ms()),
      Json::number_to_string(energy.fig6_compute()),
      Json::number_to_string(energy.fig6_local_mem()),
      Json::number_to_string(energy.fig6_noc()),
      Json::number_to_string(energy.leakage)};
  return join(std::vector<std::string>(std::begin(cells), std::end(cells)), ",");
}

double SimReport::cim_utilization(const arch::ArchConfig& arch) const noexcept {
  if (cycles <= 0 || cores.empty()) return 0;
  double busy = 0;
  for (const CoreStats& core : cores) busy += static_cast<double>(core.cim_busy_cycles);
  const double capacity = static_cast<double>(cycles) *
                          static_cast<double>(cores.size()) *
                          static_cast<double>(arch.core().mg_per_unit);
  return capacity > 0 ? busy / capacity : 0;
}

std::string SimReport::summary() const {
  std::string out;
  out += strprintf("cycles            : %lld (%.3f ms, %lld image(s))\n",
                   (long long)cycles, seconds() * 1e3, (long long)images);
  out += strprintf("instructions      : %lld (%lld MVMs, %.3f GMACs)\n",
                   (long long)instructions, (long long)mvm_count,
                   static_cast<double>(macs) / 1e9);
  out += strprintf("throughput        : %.4f TOPS\n", tops());
  out += strprintf("energy            : %.4f mJ total, %.4f mJ/image\n", energy_mj(),
                   energy_per_image_mj());
  const double total = std::max(energy.total(), 1e-12);
  out += strprintf("  CIM unit        : %10.4f mJ (%5.1f%%)\n", energy.cim * 1e-9,
                   100.0 * energy.cim / total);
  out += strprintf("  vector unit     : %10.4f mJ (%5.1f%%)\n",
                   energy.vector_unit * 1e-9, 100.0 * energy.vector_unit / total);
  out += strprintf("  scalar unit     : %10.4f mJ (%5.1f%%)\n",
                   energy.scalar_unit * 1e-9, 100.0 * energy.scalar_unit / total);
  out += strprintf("  local memory    : %10.4f mJ (%5.1f%%)\n", energy.local_mem * 1e-9,
                   100.0 * energy.local_mem / total);
  out += strprintf("  global memory   : %10.4f mJ (%5.1f%%)\n",
                   energy.global_mem * 1e-9, 100.0 * energy.global_mem / total);
  out += strprintf("  NoC             : %10.4f mJ (%5.1f%%)\n", energy.noc * 1e-9,
                   100.0 * energy.noc / total);
  out += strprintf("  instruction     : %10.4f mJ (%5.1f%%)\n",
                   energy.instruction * 1e-9, 100.0 * energy.instruction / total);
  out += strprintf("  static          : %10.4f mJ (%5.1f%%)\n", energy.leakage * 1e-9,
                   100.0 * energy.leakage / total);
  if (!kernel_tier.empty()) {
    out += strprintf("kernel tier       : %s\n", kernel_tier.c_str());
  }
  return out;
}

}  // namespace cimflow::sim
