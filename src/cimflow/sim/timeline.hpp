// Simulator timeline recorder: one Chrome trace-event / Perfetto-compatible
// track per core, built entirely from the event scheduler's *serial* phases.
//
// Determinism contract: every hook (block/wake/halt/instant/counter) is
// called only from the scheduler's serial collect/commit/barrier phases, in
// their deterministic iteration order, with sim-cycle timestamps — so for a
// given program and SimOptions the sim-track events (pid 0) are byte-identical
// at any `--sim-threads`, and recording them never touches the SimReport or
// functional outputs. Wall-clock host spans (compile phases etc.) land on a
// separate pid-1 track and are the only non-reproducible content.
//
// Timestamp convention: sim-track `ts`/`dur` are simulator cycles rendered as
// trace microseconds (1 cycle = 1 µs in the viewer); host-track times are
// real microseconds since the first host span.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cimflow/support/json.hpp"
#include "cimflow/support/trace.hpp"

namespace cimflow::sim {

class Timeline {
 public:
  /// Cores start in the "run" phase at cycle 0.
  explicit Timeline(std::int64_t core_count);

  // ----- sim track (pid 0, tid = core id, ts = cycles) ----------------------
  /// Core `core` stopped making progress at cycle `t`: closes its open "run"
  /// slice and opens a `reason` interval ("recv wait" / "global wait" /
  /// "barrier"). `args` annotate the blocked slice when it closes. Idempotent
  /// while the core stays blocked (repeated scheduler rounds re-observe the
  /// same status).
  void block(std::int64_t core, std::int64_t t, const char* reason,
             JsonObject args = {});
  /// Core `core` resumed at cycle `t`: closes the blocked interval, reopens
  /// "run". No-op when the core is already running.
  void wake(std::int64_t core, std::int64_t t);
  /// Core `core` retired HALT at cycle `t`: closes whatever slice is open.
  void halt(std::int64_t core, std::int64_t t);
  /// Instant event (Chrome ph "i", thread scope) on `core`'s track.
  void instant(std::int64_t core, std::int64_t t, const char* name,
               JsonObject args = {});
  /// Counter sample (Chrome ph "C") on the scheduler's pid-0 counter track.
  void counter(std::int64_t t, const char* name, std::int64_t value);

  // ----- host track (pid 1, ts = wall-clock µs) -----------------------------
  /// Adds completed wall-clock spans (e.g. compile phases) as pid-1 slices,
  /// rebased so the earliest span starts at ts 0. Info-only: host times vary
  /// run to run by design.
  void add_host_spans(const std::vector<trace::SpanRecord>& spans);

  /// Events recorded so far (metadata excluded).
  std::int64_t event_count() const noexcept { return recorded_; }

  /// The complete trace: {"displayTimeUnit": "ms", "traceEvents": [...]},
  /// metadata (process/thread names) first, then events in recording order.
  /// Every event carries ph/ts/pid/tid.
  Json to_json() const;
  /// Writes to_json() to `path`; throws Error(kIoError) on failure.
  void write(const std::string& path) const;

 private:
  struct CoreTrack {
    const char* phase = "run";
    std::int64_t phase_start = 0;
    bool open = true;
    JsonObject args;  ///< attached to the current blocked slice on close
  };

  void emit_slice(std::int64_t core, const char* name, std::int64_t start,
                  std::int64_t end, JsonObject args);

  std::vector<CoreTrack> tracks_;
  JsonArray events_;
  JsonArray host_events_;
  std::int64_t recorded_ = 0;
};

}  // namespace cimflow::sim
