#include "cimflow/sim/kernels.hpp"

namespace cimflow::sim::kernels {

void load_le32_row(std::int32_t* dst, const std::uint8_t* src, std::int64_t n) {
  if (n == 0) return;  // callers may pass null pointers for empty rows
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(dst, src, static_cast<std::size_t>(n) * 4);
  } else {
    for (std::int64_t i = 0; i < n; ++i) dst[i] = load_le32(src + 4 * i);
  }
}

void store_le32_row(std::uint8_t* dst, const std::int32_t* src, std::int64_t n) {
  if (n == 0) return;  // callers may pass null pointers for empty rows
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(dst, src, static_cast<std::size_t>(n) * 4);
  } else {
    for (std::int64_t i = 0; i < n; ++i) store_le32(dst + 4 * i, src[i]);
  }
}

void mvm_accumulate(std::int32_t* acc, const std::uint8_t* in, const std::int8_t* w,
                    std::int64_t rows, std::int64_t cols) {
  // The row loop streams the weight matrix exactly once, in storage order.
  // All arithmetic is unsigned (wrap-defined); int8*int8 products fit in
  // int32, and the final uint32 value is the mod-2^32 truncation of the
  // reference's int64 sum.
  auto* uacc = reinterpret_cast<std::uint32_t*>(acc);
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int32_t x = static_cast<std::int8_t>(in[i]);
    if (x == 0) continue;  // adds nothing — skip the whole weight row
    const std::int8_t* row = w + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) {
      uacc[j] += static_cast<std::uint32_t>(x * static_cast<std::int32_t>(row[j]));
    }
  }
}

void mvm_ref(std::uint8_t* out, const std::uint8_t* in, const std::int8_t* w,
             std::int64_t rows, std::int64_t cols, bool accumulate) {
  for (std::int64_t j = 0; j < cols; ++j) {
    std::int64_t acc = 0;
    for (std::int64_t i = 0; i < rows; ++i) {
      acc += static_cast<std::int64_t>(static_cast<std::int8_t>(in[i])) * w[i * cols + j];
    }
    std::uint8_t* word = out + 4 * j;
    // The seed interpreter's per-column read_i32/write_i32 byte swizzle.
    std::uint32_t prev = 0;
    if (accumulate) {
      for (int b = 0; b < 4; ++b) prev |= static_cast<std::uint32_t>(word[b]) << (8 * b);
    }
    const auto value = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(prev)) + acc);
    for (int b = 0; b < 4; ++b) {
      word[b] = static_cast<std::uint8_t>((value >> (8 * b)) & 0xFF);
    }
  }
}

}  // namespace cimflow::sim::kernels
