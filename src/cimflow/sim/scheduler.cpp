#include "cimflow/sim/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "cimflow/sim/timeline.hpp"
#include "cimflow/support/logging.hpp"
#include "cimflow/support/numeric.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::sim {
namespace {

constexpr std::int64_t kBarrierCost = 8;
constexpr std::int64_t kNoLimit = std::numeric_limits<std::int64_t>::max();

/// Minimum gap between a running core's architectural clock and its earliest
/// possible future fabric request: an instruction fetched at `next_fetch`
/// issues no earlier than `next_fetch + 2` (IF/DE), and every fabric
/// departure is at or after its issue time.
constexpr std::int64_t kIssueLatency = 2;

/// Run-phase executor: fans fn(0..n) out over a fixed pool of workers plus
/// the calling thread. Exceptions are captured per index and the
/// smallest-index failure is rethrown after the batch drains, so the error a
/// run reports is the same no matter how the schedule interleaved (the serial
/// path fails at the first index too). The pool is the only thread machinery
/// in the simulator; everything it runs touches core-private state only.
///
/// Scheduler rounds fire tens of thousands of times per second, so the
/// rendezvous is spin-first: workers burn a short budget polling the batch
/// generation (and the caller polls the drain counter) before falling back
/// to a condition variable, keeping the steady-state round-trip in the
/// sub-microsecond range while still sleeping through long serial stretches.
class CorePool {
 public:
  explicit CorePool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ~CorePool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_.store(true, std::memory_order_relaxed);
    }
    cv_start_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  bool parallel() const noexcept { return !threads_.empty(); }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (threads_.empty()) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    n_ = n;
    fn_ = &fn;
    next_.store(0, std::memory_order_relaxed);
    running_.store(threads_.size(), std::memory_order_relaxed);
    {
      // The (empty) critical section orders the batch state above against a
      // worker's predicate check inside cv wait — without it a worker could
      // check the generation, miss the bump, and sleep through the wakeup.
      std::lock_guard<std::mutex> lock(mu_);
      generation_.fetch_add(1, std::memory_order_release);
    }
    cv_start_.notify_all();
    drain(n, fn);
    // Spin for the stragglers first; a round's tail is almost always short.
    for (int spin = 0; running_.load(std::memory_order_acquire) != 0; ++spin) {
      if (spin >= kSpinRounds) {
        std::unique_lock<std::mutex> lock(mu_);
        cv_done_.wait(lock,
                      [this] { return running_.load(std::memory_order_acquire) == 0; });
        break;
      }
      std::this_thread::yield();
    }
    fn_ = nullptr;
    if (!errors_.empty()) {
      std::sort(errors_.begin(), errors_.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      auto error = errors_.front().second;
      errors_.clear();
      std::rethrow_exception(error);
    }
  }

 private:
  /// Poll budget (sched-yield rounds) before sleeping on the condition
  /// variable: long enough to bridge back-to-back rounds, short enough that
  /// workers sleep through genuinely serial stretches.
  static constexpr int kSpinRounds = 4096;

  void drain(std::size_t n, const std::function<void(std::size_t)>& fn) {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        errors_.emplace_back(i, std::current_exception());
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      // Poll for the next batch before sleeping on the condition variable.
      bool signalled = false;
      for (int spin = 0; spin < kSpinRounds; ++spin) {
        if (stop_.load(std::memory_order_relaxed) ||
            generation_.load(std::memory_order_acquire) != seen) {
          signalled = true;
          break;
        }
        std::this_thread::yield();
      }
      if (!signalled) {
        std::unique_lock<std::mutex> lock(mu_);
        cv_start_.wait(lock, [&] {
          return stop_.load(std::memory_order_relaxed) ||
                 generation_.load(std::memory_order_acquire) != seen;
        });
      }
      if (stop_.load(std::memory_order_relaxed)) return;
      seen = generation_.load(std::memory_order_acquire);
      drain(n_, *fn_);
      if (running_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu_);
        cv_done_.notify_one();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> stop_{false};
  std::size_t n_ = 0;
  std::atomic<std::size_t> running_{0};
  std::atomic<std::size_t> next_{0};
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors_;
};

std::size_t resolve_thread_count(std::int64_t requested, std::size_t core_count) {
  if (requested < 0) {
    raise(ErrorCode::kInvalidArgument,
          "SimOptions::threads must be >= 0 (0 = hardware concurrency)");
  }
  std::size_t threads = requested > 0 ? static_cast<std::size_t>(requested)
                                      : static_cast<std::size_t>(
                                            std::thread::hardware_concurrency());
  if (threads == 0) threads = 1;
  return std::min(threads, std::max<std::size_t>(core_count, 1));
}

}  // namespace

EventScheduler::EventScheduler(const CoreContext& context)
    : ctx_(context), timeline_(context.timeline),
      noc_(*context.arch, *context.energy) {
  global_chan_free_.assign(
      static_cast<std::size_t>(ctx_.arch->chip().global_mem_banks), 0);
}

std::int64_t EventScheduler::serve_global(std::int64_t core_id,
                                          const GlobalRequest& request) {
  const arch::ArchConfig& arch = *ctx_.arch;
  const std::int64_t banks = arch.chip().global_mem_banks;
  const std::int64_t bank =
      (static_cast<std::int64_t>(request.addr) >> 12) % banks;  // 4 KB interleave
  const std::int64_t bank_bw =
      std::max<std::int64_t>(1, arch.chip().global_mem_bytes_per_cycle / banks);
  const std::int64_t node = Noc::bank_node(bank * arch.chip().mesh_cols / banks);
  const std::int64_t hops =
      arch.core_x(core_id) + arch.core_y(core_id) + 1;  // request path estimate
  const std::int64_t request_at = request.depart + hops;
  std::int64_t& chan = global_chan_free_[static_cast<std::size_t>(bank)];
  const std::int64_t serve_start =
      std::max(request_at + arch.chip().global_mem_latency, chan);
  const std::int64_t serve_done =
      serve_start + ceil_div(std::max<std::int64_t>(request.bytes, 1), bank_bw);
  chan = serve_done;
  // Data flits traverse the mesh between the bank controller and the core.
  const std::int64_t src = request.is_read ? node : core_id;
  const std::int64_t dst = request.is_read ? core_id : node;
  const std::int64_t tail = noc_.transfer(
      src, dst, request.bytes, request.is_read ? serve_done : request.depart);
  global_mem_energy_pj_ += ctx_.energy->global_mem_pj(request.bytes);
  return std::max(serve_done, tail);
}

void EventScheduler::push_event(Event event) {
  const auto after = [](const Event& a, const Event& b) {
    return std::tie(a.time, a.core, a.seq) > std::tie(b.time, b.core, b.seq);
  };
  events_.push_back(std::move(event));
  std::push_heap(events_.begin(), events_.end(), after);
  stats_.max_queue_depth = std::max<std::int64_t>(
      stats_.max_queue_depth, static_cast<std::int64_t>(events_.size()));
}

EventScheduler::Event EventScheduler::pop_event() {
  const auto after = [](const Event& a, const Event& b) {
    return std::tie(a.time, a.core, a.seq) > std::tie(b.time, b.core, b.seq);
  };
  std::pop_heap(events_.begin(), events_.end(), after);
  Event event = std::move(events_.back());
  events_.pop_back();
  return event;
}

bool EventScheduler::collect_requests() {
  bool any_ready = false;
  for (CoreModel& core : cores_) {
    for (SendRequest& send : core.outbox) {
      Event event;
      event.time = send.depart;
      event.core = core.id;
      event.seq = send.seq;
      event.is_send = true;
      event.send = std::move(send);
      push_event(std::move(event));
    }
    core.outbox.clear();
    if (core.pending_global.has_value()) {
      // The core stays kBlockedGlobal until the event commits and deposits
      // the completion time in global_resolution.
      Event event;
      event.time = core.pending_global->depart;
      event.core = core.id;
      event.seq = core.pending_global->seq;
      event.is_send = false;
      event.global = *core.pending_global;
      core.pending_global.reset();
      if (timeline_ != nullptr) {
        JsonObject args;
        args["addr"] = Json(static_cast<std::int64_t>(event.global.addr));
        args["bytes"] = Json(event.global.bytes);
        args["read"] = Json(event.global.is_read);
        timeline_->block(core.id, core.next_fetch, "global wait", std::move(args));
      }
      push_event(std::move(event));
    }
    if (timeline_ != nullptr) {
      // Phase-B is serial and id-ordered, so slice boundaries land in one
      // deterministic order; block/halt are idempotent across the repeated
      // rounds that re-observe an already-blocked core.
      switch (core.status) {
        case CoreModel::Status::kBlockedRecv: {
          JsonObject args;
          args["src"] = Json(core.recv_key.first);
          args["tag"] = Json(static_cast<std::int64_t>(core.recv_key.second));
          timeline_->block(core.id, core.next_fetch, "recv wait", std::move(args));
          break;
        }
        case CoreModel::Status::kBlockedBarrier: {
          JsonObject args;
          args["tag"] = Json(static_cast<std::int64_t>(core.barrier_tag));
          timeline_->block(core.id, core.barrier_issue, "barrier", std::move(args));
          break;
        }
        case CoreModel::Status::kHalted:
          timeline_->halt(core.id, core.stats.halt_cycle);
          break;
        default:
          break;  // kReady runs on; kBlockedGlobal was noted above
      }
    }
    if (core.status == CoreModel::Status::kReady) any_ready = true;
  }
  return any_ready;
}

void EventScheduler::commit_events() {
  // An event may commit only when no core can still surface an earlier
  // request: cores cut at the lookahead horizon (still kReady) bound the
  // floor by their next issue opportunity, and cores woken during this commit
  // lower it to their wake time. This is the only place shared chip state
  // (NoC links, bank channels, mailboxes, the global-memory energy meter) is
  // written, and events leave the heap in one deterministic total order.
  std::int64_t floor = kNoLimit;
  for (const CoreModel& core : cores_) {
    if (core.status == CoreModel::Status::kReady) {
      floor = std::min(floor, core.next_fetch + kIssueLatency);
    }
  }
  if (timeline_ != nullptr && !events_.empty()) {
    timeline_->counter(events_.front().time, "pending_events",
                       static_cast<std::int64_t>(events_.size()));
  }
  while (!events_.empty() && events_.front().time < floor) {
    Event event = pop_event();
    ++stats_.events_dispatched;
    frontier_ = std::max(frontier_, event.time);
    if (event.is_send) {
      SendRequest& send = event.send;
      const std::int64_t arrival =
          noc_.transfer(event.core, send.dst_core, send.bytes, send.depart);
      const std::int64_t noc_stall = noc_.last_stall();
      Message msg;
      msg.arrival = arrival;
      msg.bytes = send.bytes;
      msg.payload = std::move(send.payload);
      CoreModel& peer = cores_[static_cast<std::size_t>(send.dst_core)];
      const auto key = std::make_pair(event.core, send.tag);
      peer.inbox[key].push_back(std::move(msg));
      const bool rendezvous =
          peer.status == CoreModel::Status::kBlockedRecv && peer.recv_key == key;
      if (rendezvous) {
        // The receive completes no earlier than the arrival and every request
        // the woken core surfaces afterwards departs strictly later, so
        // events up to and including `arrival` may still commit.
        stats_.idle_cycles_skipped +=
            std::max<std::int64_t>(0, arrival - peer.next_fetch);
        peer.status = CoreModel::Status::kReady;
        floor = std::min(floor, arrival + 1);
      }
      if (timeline_ != nullptr) {
        JsonObject sent;
        sent["dst"] = Json(send.dst_core);
        sent["tag"] = Json(static_cast<std::int64_t>(send.tag));
        sent["bytes"] = Json(send.bytes);
        sent["arrival"] = Json(arrival);
        timeline_->instant(event.core, send.depart, "send", std::move(sent));
        if (noc_stall > 0) {
          JsonObject stall;
          stall["stall_cycles"] = Json(noc_stall);
          timeline_->instant(event.core, send.depart, "noc_contention",
                             std::move(stall));
        }
        JsonObject recv;
        recv["src"] = Json(event.core);
        recv["tag"] = Json(static_cast<std::int64_t>(send.tag));
        recv["bytes"] = Json(send.bytes);
        recv["waited"] = Json(rendezvous);
        timeline_->instant(send.dst_core, arrival, "rendezvous", std::move(recv));
        if (rendezvous) timeline_->wake(send.dst_core, arrival);
      }
    } else {
      CoreModel& core = cores_[static_cast<std::size_t>(event.core)];
      const std::int64_t resolution = serve_global(event.core, event.global);
      core.global_resolution = resolution;
      stats_.idle_cycles_skipped +=
          std::max<std::int64_t>(0, resolution - core.next_fetch);
      core.status = CoreModel::Status::kReady;
      // The retried transfer frees at `resolution` and the core's very next
      // fabric request may depart exactly then, so only events strictly
      // earlier may still commit; ties resolve through the (time, core, seq)
      // key once the core has surfaced its request.
      floor = std::min(floor, resolution);
      if (timeline_ != nullptr) {
        const std::int64_t banks = ctx_.arch->chip().global_mem_banks;
        JsonObject args;
        args["bank"] =
            Json((static_cast<std::int64_t>(event.global.addr) >> 12) % banks);
        args["bytes"] = Json(event.global.bytes);
        args["read"] = Json(event.global.is_read);
        args["wait_cycles"] =
            Json(std::max<std::int64_t>(0, resolution - core.next_fetch));
        timeline_->instant(event.core, event.global.depart, "bank_service",
                           std::move(args));
        timeline_->wake(event.core, resolution);
      }
    }
  }
}

bool EventScheduler::try_release_barrier() {
  // The rendezvous completes only when every core of the chip (halted ones
  // can never arrive — that is a deadlock, detected by the main loop) is
  // parked at the same barrier.
  std::size_t arrived = 0;
  bool same_tag = true;
  std::int32_t tag = 0;
  std::int64_t latest_issue = 0;
  for (const CoreModel& core : cores_) {
    if (core.status != CoreModel::Status::kBlockedBarrier) continue;
    if (arrived == 0) tag = core.barrier_tag;
    same_tag = same_tag && core.barrier_tag == tag;
    latest_issue = std::max(latest_issue, core.barrier_issue);
    ++arrived;
  }
  if (arrived != cores_.size() || !same_tag || arrived == 0) return false;
  const std::int64_t release = latest_issue + kBarrierCost;
  for (CoreModel& core : cores_) {
    stats_.idle_cycles_skipped +=
        std::max<std::int64_t>(0, release - core.next_fetch);
    if (timeline_ != nullptr) {
      JsonObject args;
      args["tag"] = Json(static_cast<std::int64_t>(tag));
      timeline_->instant(core.id, release, "barrier_release", std::move(args));
      timeline_->wake(core.id, release);
    }
    core.release_from_barrier(release);
  }
  return true;
}

void EventScheduler::fail_deadlock() {
  std::string detail = "simulation deadlock: cores blocked with no pending messages\n";
  for (const CoreModel& core : cores_) {
    if (core.status == CoreModel::Status::kHalted) continue;
    detail += strprintf("  core %lld: pc=%lld time=%lld status=%d\n",
                        (long long)core.id, (long long)core.pc,
                        (long long)core.next_fetch, static_cast<int>(core.status));
  }
  CIMFLOW_ERROR() << detail;  // leveled diagnostic; the raise carries the same
  raise(ErrorCode::kInternal, detail);
}

SimReport EventScheduler::run(const isa::Program& program) {
  const std::int64_t core_count = ctx_.arch->chip().core_count;
  CIMFLOW_CHECK(ctx_.decoded != nullptr && ctx_.decoded->core_count() == core_count,
                "scheduler needs the program's decode bound in the core context");
  cores_ = std::vector<CoreModel>(static_cast<std::size_t>(core_count));
  for (std::int64_t i = 0; i < core_count; ++i) {
    cores_[static_cast<std::size_t>(i)].reset(
        ctx_, i, &program.cores[static_cast<std::size_t>(i)].code);
  }

  const std::int64_t lookahead = ctx_.options->lookahead;
  if (lookahead < 0) {
    raise(ErrorCode::kInvalidArgument,
          "SimOptions::lookahead must be >= 0 (0 = unbounded run-ahead)");
  }
  CorePool pool(resolve_thread_count(ctx_.options->threads,
                                     static_cast<std::size_t>(core_count)) -
                1);
  std::vector<CoreModel*> active;
  active.reserve(static_cast<std::size_t>(core_count));

  for (;;) {
    // Phase A: every ready core runs on private state only — to its next
    // fabric block, to halt, or to the lookahead horizon — safe to shard
    // across the pool, identical in any order.
    active.clear();
    std::int64_t min_ready_fetch = kNoLimit;
    for (CoreModel& core : cores_) {
      if (core.status == CoreModel::Status::kReady) {
        min_ready_fetch = std::min(min_ready_fetch, core.next_fetch);
        active.push_back(&core);
      }
    }
    if (!active.empty()) {
      // Bounded lookahead caps how far a core may run past the committed
      // event frontier (or past the laggard ready core, whichever is later,
      // so compute-only programs still make progress) — it trades pending
      // event memory against round count and never changes a report metric;
      // 0 = unbounded run-to-block.
      const std::int64_t horizon =
          lookahead == 0 ? kNoLimit
                         : std::max(frontier_, min_ready_fetch) + lookahead;
      if (active.size() > 1) {
        if (pool.parallel()) {
          // Load-balanced sharding: compiled programs skew work heavily onto
          // a few cores (VGG19: max core ≈ 3x the mean), so the pool's atomic
          // hand-out starts the heaviest cores first, using the previous
          // round's retired-instruction count as the weight (id-ordered
          // tiebreak keeps the schedule stable). Wall-clock only: run-phase
          // results are order-independent by construction, and the serial
          // kernel skips the sort entirely (order cannot change its
          // makespan).
          std::sort(active.begin(), active.end(),
                    [](const CoreModel* a, const CoreModel* b) {
                      if (a->run_steps != b->run_steps) {
                        return a->run_steps > b->run_steps;
                      }
                      return a->id < b->id;
                    });
          for (CoreModel* core : active) core->run_steps = 0;
        }
        pool.run(active.size(),
                 [&](std::size_t i) { active[i]->run_until(horizon); });
      } else {
        active.front()->run_until(horizon);
      }
    }

    // Phase B: surface this round's fabric requests into the event queue,
    // serially in core-id order (the heap key makes insertion order moot, but
    // the queue-depth counter stays schedule-independent this way).
    const bool any_ready = collect_requests();

    // Phase C: serial commit in strict (time, core, seq) order.
    if (events_.empty()) {
      if (any_ready) continue;  // horizon-cut cores still advancing
      bool all_halted = true;
      for (const CoreModel& core : cores_) {
        if (core.status != CoreModel::Status::kHalted) {
          all_halted = false;
          break;
        }
      }
      if (all_halted) break;
      if (try_release_barrier()) continue;
      fail_deadlock();
    }
    commit_events();
  }

  SimReport report;
  report.frequency_ghz = ctx_.arch->chip().frequency_ghz;
  report.images = program.batch;
  EnergyBreakdown energy{};
  for (const CoreModel& core : cores_) {
    report.cycles = std::max(report.cycles, core.stats.halt_cycle);
    report.cores.push_back(core.stats);
    report.instructions += core.stats.instructions;
    report.mvm_count += core.mvm_count;
    report.macs += core.total_macs;
    energy.cim += core.energy.cim;
    energy.vector_unit += core.energy.vector_unit;
    energy.scalar_unit += core.energy.scalar_unit;
    energy.local_mem += core.energy.local_mem;
    energy.instruction += core.energy.instruction;
  }
  energy.global_mem = global_mem_energy_pj_;
  energy.noc = noc_.energy_pj();
  energy.leakage = ctx_.energy->leakage_pj(core_count, report.cycles) +
                   ctx_.energy->global_leakage_pj(report.cycles);
  report.energy = energy;
  report.scheduler = stats_;
  return report;
}

}  // namespace cimflow::sim
