// Per-core timing and functional model: the in-order 3-stage (IF/DE/EX)
// pipeline with a register scoreboard, independently pipelined execution
// units (per-macro-group CIM occupancy, vector, scalar, transfer) and
// 256-byte-granule local-memory dependency tracking — one core of the
// cycle-accurate simulator (paper Sec. III-D), factored out of the old
// monolithic Simulator::Impl.
//
// A CoreModel owns everything private to its core (registers, local memory,
// weights, pipeline state, stats, locally attributable energy) and runs ahead
// independently until it needs the shared fabric. Anything that touches
// shared chip state is expressed as a request the event scheduler serves from
// its global priority queue in strict (time, core, program order) order:
//   * SEND posts to `outbox` (the sender does not need the arrival time and
//     keeps running); the scheduler turns each entry into a queued event;
//   * global-buffer transfers block the core with `pending_global` until the
//     event commits the bank/NoC access and deposits the completion time in
//     `global_resolution` — re-executing the instruction then finishes it;
//   * RECV blocks on the core-owned `inbox` (messages are delivered only
//     during the scheduler's serial commit phase);
//   * BARRIER blocks with the tag recorded; the scheduler releases every
//     core at once.
// Because a blocked core's architectural clock does not advance, retrying an
// instruction later computes the exact same times — this is what makes the
// parallel schedule reproduce the serial one byte for byte.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "cimflow/arch/arch_config.hpp"
#include "cimflow/arch/energy_model.hpp"
#include "cimflow/isa/program.hpp"
#include "cimflow/isa/registry.hpp"
#include "cimflow/sim/decoded.hpp"
#include "cimflow/sim/memory.hpp"
#include "cimflow/sim/report.hpp"
#include "cimflow/sim/simulator.hpp"

namespace cimflow::sim {

class Timeline;

/// Shared read-only context every core steps against.
struct CoreContext {
  const arch::ArchConfig* arch = nullptr;
  const arch::EnergyModel* energy = nullptr;
  const isa::Registry* registry = nullptr;
  const SimOptions* options = nullptr;
  GlobalImage* global = nullptr;  ///< shared data image (see memory.hpp contract)
  const DecodedProgram* decoded = nullptr;  ///< shared predecode (see decoded.hpp)
  /// Timeline sink, written only from the scheduler's serial phases; null
  /// when tracing is off (see SimOptions::trace_path).
  Timeline* timeline = nullptr;
  /// Resolved kernel table (see kernels_dispatch.hpp) the fast exec paths
  /// dispatch through; null defensively falls back to the scalar tier.
  const kernels::KernelTable* kernels = nullptr;
};

/// A message in flight between two cores (delivered when its send event
/// commits).
struct Message {
  std::int64_t arrival = 0;
  std::int64_t bytes = 0;
  std::vector<std::uint8_t> payload;  // functional mode only
};

/// A SEND surfaced to the scheduler; it becomes an event the kernel routes
/// through the NoC (charging contention and energy) in strict global-time
/// order.
struct SendRequest {
  std::int64_t dst_core = 0;
  std::int32_t tag = 0;
  std::int64_t bytes = 0;
  std::int64_t depart = 0;  ///< injection time the NoC transfer starts from
  std::int64_t seq = 0;     ///< per-core program order (event-key tiebreak)
  std::vector<std::uint8_t> payload;
};

/// A global-buffer transfer blocked on shared bank/NoC state.
struct GlobalRequest {
  std::uint32_t addr = 0;
  std::int64_t bytes = 0;
  std::int64_t depart = 0;
  bool is_read = false;
  std::int64_t seq = 0;
};

class CoreModel {
 public:
  enum class Status : std::uint8_t {
    kReady,
    kBlockedRecv,     ///< waiting on inbox[recv_key]
    kBlockedGlobal,   ///< waiting on pending_global -> global_resolution
    kBlockedBarrier,  ///< arrived at barrier_tag
    kHalted,
  };

  /// Rebinds the core for a fresh run.
  void reset(const CoreContext& context, std::int64_t id,
             const std::vector<isa::Instruction>* code);

  /// Advances until the core's clock reaches `limit` (pass INT64_MAX for an
  /// unbounded run-to-block), it blocks, or it halts. Throws Error(kInternal)
  /// with a core-scoped diagnostic on invalid programs or watchdog expiry.
  void run_until(std::int64_t limit);

  /// Releases a core blocked at a barrier: the barrier instruction retires at
  /// `release` (scheduler-computed, uniform across all cores).
  void release_from_barrier(std::int64_t release);

  // ----- scheduler-facing state ---------------------------------------------
  Status status = Status::kReady;
  std::int64_t id = 0;
  std::int64_t next_fetch = 0;  ///< the core's architectural clock
  std::int64_t pc = 0;

  std::vector<SendRequest> outbox;  ///< drained into the event queue each round
  std::optional<GlobalRequest> pending_global;
  std::optional<std::int64_t> global_resolution;

  /// Incoming mailboxes, keyed (source core, tag). The owning core pops
  /// while it runs; the scheduler pushes only during serial event commits.
  std::map<std::pair<std::int64_t, std::int32_t>, std::deque<Message>> inbox;
  std::pair<std::int64_t, std::int32_t> recv_key{0, 0};  ///< valid when kBlockedRecv

  std::int32_t barrier_tag = 0;      ///< valid when kBlockedBarrier
  std::int64_t barrier_issue = 0;    ///< issue time of the blocked barrier

  CoreStats stats;
  EnergyBreakdown energy;  ///< locally attributable categories only
  std::int64_t mvm_count = 0;
  std::int64_t total_macs = 0;
  /// Instructions retired since the scheduler last reset the counter; the
  /// scheduler sorts the next round's ready list by it so the heaviest cores
  /// dispatch first (wall-clock only — results are order-independent by
  /// construction).
  std::int64_t run_steps = 0;

 private:
  struct CustomCtx;

  bool step();  ///< executes at pc; false = blocked (state already recorded)

  [[noreturn]] void fail(const std::string& what) const;

  // Memory routing: local addresses hit the core scratchpad, global ones the
  // shared image. Spans never mix halves (the address MSB partitions them).
  std::uint8_t load_u8(std::uint32_t addr);
  void store_u8(std::uint32_t addr, std::uint8_t value);
  std::int32_t read_i32(std::uint32_t addr);
  void write_i32(std::uint32_t addr, std::int32_t value);
  void copy_bytes(std::uint32_t dst, std::uint32_t src, std::int64_t len);
  void check_span(std::uint32_t addr, std::int64_t len);

  // Span resolution for the pointer kernels: bounds-check, then pin
  // [addr, addr+len) to one contiguous pointer (local memory directly, global
  // via GlobalImage's span API). nullptr = no contiguous view; the caller
  // falls back to the byte-routed reference path. `len` must be > 0.
  const std::uint8_t* resolve_read(std::uint32_t addr, std::int64_t len);
  std::uint8_t* resolve_write(std::uint32_t addr, std::int64_t len);
  /// Non-throwing bounds probe (the check_span predicate): used where a fast
  /// path wants to pin MORE bytes than the reference path would lazily touch
  /// — running past the end must route to the lazy path, not fail the run.
  bool span_in_range(std::uint32_t addr, std::int64_t len) const;
  /// Grow-only bounce buffer (never shrinks, so repeated global MVMs/copies
  /// stop churning through resize + re-zeroing).
  std::uint8_t* ensure_scratch(std::int64_t len);

  std::int64_t mem_dep_start(std::uint32_t addr, std::int64_t len, bool is_write,
                             std::int64_t start) const;
  void mem_dep_finish(std::uint32_t addr, std::int64_t len, bool is_write,
                      std::int64_t done);

  // Functional kernels: each op resolves its operand spans once and runs the
  // pointer kernel; the retained *_ref twins are the seed-era byte-routed
  // implementations — the fallback when a span cannot be pinned, and the
  // oracle behind SimOptions::reference_kernels differential testing.
  void exec_vec(const DecodedInst& inst, std::int64_t n);
  void exec_vec_ref(const DecodedInst& inst, std::int64_t n);
  void exec_pool(const DecodedInst& inst, std::int64_t out_w);
  void exec_pool_ref(const DecodedInst& inst, std::int64_t out_w);
  void exec_mvm(const DecodedInst& inst, std::int64_t rows, std::int64_t cols);
  void exec_mvm_ref(const DecodedInst& inst, std::int64_t rows, std::int64_t cols);

  CoreContext ctx_;
  const std::vector<isa::Instruction>* code_ = nullptr;
  const DecodedInst* dcode_ = nullptr;  ///< ctx_.decoded stream for this core
  std::int64_t code_size_ = 0;

  // Pipeline state.
  std::int64_t last_issue_ = -1;
  std::array<std::int64_t, 32> reg_ready_{};
  std::vector<std::int64_t> mg_free_;
  std::int64_t vec_free_ = 0;
  std::int64_t scalar_free_ = 0;
  std::int64_t transfer_free_ = 0;

  // Architectural state.
  std::array<std::int32_t, 32> regs_{};
  std::array<std::int32_t, 32> sregs_{};
  ZeroedBuffer lmem_;
  ZeroedBuffer mg_weights_;  // int8 tiles: mg_per_unit * mg_rows * mg_cols
  std::int64_t mg_tile_elems_ = 0;
  /// Dispatched kernel table, cached from ctx_.kernels at reset().
  const kernels::KernelTable* kt_ = nullptr;
  // Grow-only 64-byte-aligned scratch (see AlignedBuffer): the vector tiers
  // run their dominant-case aligned accesses against these bases.
  AlignedBuffer<std::uint8_t> scratch_;    ///< bounce buffer for global reads
  AlignedBuffer<std::int32_t> mvm_row_;    ///< register-blocked MVM psum row
  AlignedBuffer<std::uint8_t> row_scratch_;  ///< psum-row byte staging

  // Local-memory dependency granules.
  std::vector<std::int64_t> gr_write_;
  std::vector<std::int64_t> gr_read_;

  std::int64_t request_seq_ = 0;  ///< program-order stamp for fabric requests
};

}  // namespace cimflow::sim
