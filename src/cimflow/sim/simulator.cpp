// Simulator facade: owns the run-independent pieces (architecture copy,
// energy model, registry binding, the shared global image) and delegates each
// run to a fresh EventScheduler. The cycle-accurate machinery lives in
// sim/core_model (per-core pipeline) and sim/scheduler (discrete-event
// kernel).
#include "cimflow/sim/simulator.hpp"

#include <algorithm>

#include "cimflow/arch/energy_model.hpp"
#include "cimflow/sim/decoded.hpp"
#include "cimflow/sim/memory.hpp"
#include "cimflow/sim/scheduler.hpp"
#include "cimflow/sim/timeline.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/trace.hpp"

namespace cimflow::sim {

struct Simulator::Impl {
  // The config is copied (not referenced): DSE workers construct simulators
  // from per-point temporaries, so the simulator must own its architecture.
  // energy_model keeps pointers into the member copy, never the parameter.
  Impl(const arch::ArchConfig& arch_in, SimOptions options_in)
      : arch(arch_in),
        options(options_in),
        energy_model(arch),
        registry(options.registry != nullptr ? *options.registry
                                             : isa::Registry::builtin()),
        kernel_tier(kernels::resolve_tier(options.kernel_tier)),
        kernel_table(&kernels::kernel_table(kernel_tier)) {}

  const arch::ArchConfig arch;
  SimOptions options;
  arch::EnergyModel energy_model;
  const isa::Registry& registry;
  /// Resolved once at construction (env override + CPUID probe); the table
  /// the cores' exec paths dispatch through for the whole simulator lifetime.
  const kernels::KernelTier kernel_tier;
  const kernels::KernelTable* kernel_table;
  GlobalImage global;
  /// The program's predecoded instruction streams: resolved through the
  /// process-wide content-addressed cache, so N concurrent simulators of one
  /// program share a single decode the same way they share the data image.
  std::shared_ptr<const DecodedProgram> decoded;
  /// Per-run timeline recorder; only allocated when trace_path is set.
  std::unique_ptr<Timeline> timeline;

  CoreContext context() {
    CoreContext ctx;
    ctx.arch = &arch;
    ctx.energy = &energy_model;
    ctx.registry = &registry;
    ctx.options = &options;
    ctx.global = &global;
    ctx.decoded = decoded.get();
    ctx.timeline = timeline.get();
    ctx.kernels = kernel_table;
    return ctx;
  }

  SimReport run(const isa::Program& program,
                const std::vector<std::vector<std::uint8_t>>& inputs,
                std::shared_ptr<const void> image_owner,
                std::shared_ptr<const DecodedProgram> predecoded) {
    if (static_cast<std::int64_t>(program.cores.size()) != arch.chip().core_count) {
      raise(ErrorCode::kInvalidArgument,
            "program core count does not match the architecture");
    }
    if (predecoded != nullptr &&
        predecoded->core_count() != static_cast<std::int64_t>(program.cores.size())) {
      raise(ErrorCode::kInvalidArgument,
            "predecoded program does not match the program's core count");
    }

    // The program image is the immutable shared base; everything this run
    // writes lands in the simulator-private copy-on-write overlay. The
    // decode is shared the same way (and pinned by DSE cache entries, so
    // sweep points re-use it across simulator instances).
    global.bind(&program.global_image, std::move(image_owner));
    decoded = predecoded != nullptr ? std::move(predecoded)
                                    : DecodedProgram::shared(program, registry);

    if (options.functional) {
      if (static_cast<std::int64_t>(inputs.size()) != program.batch) {
        raise(ErrorCode::kInvalidArgument, "functional run needs one input per image");
      }
      for (std::size_t img = 0; img < inputs.size(); ++img) {
        if (static_cast<std::int64_t>(inputs[img].size()) !=
            program.input_bytes_per_image) {
          raise(ErrorCode::kInvalidArgument, "input image size mismatch");
        }
        const std::int64_t offset =
            static_cast<std::int64_t>(program.input_global_offset) +
            static_cast<std::int64_t>(img) * program.input_bytes_per_image;
        global.ensure_size(offset + static_cast<std::int64_t>(inputs[img].size()));
        global.write_bytes(offset, inputs[img].data(),
                           static_cast<std::int64_t>(inputs[img].size()));
      }
    }

    timeline.reset();
    if (!options.trace_path.empty()) {
      timeline = std::make_unique<Timeline>(arch.chip().core_count);
    }

    const CoreContext ctx = context();
    EventScheduler scheduler(ctx);
    SimReport report = scheduler.run(program);
    report.kernel_tier = kernels::to_string(kernel_tier);
    if (timeline != nullptr) {
      // Host spans (wall clock) ride on a separate track; the sim tracks are
      // cycle-stamped and byte-reproducible without them.
      if (options.trace_host != nullptr) {
        timeline->add_host_spans(options.trace_host->spans());
      }
      timeline->write(options.trace_path);
    }
    return report;
  }
};

Simulator::Simulator(const arch::ArchConfig& arch, SimOptions options)
    : impl_(std::make_unique<Impl>(arch, options)) {}

Simulator::~Simulator() = default;

SimReport Simulator::run(const isa::Program& program,
                         const std::vector<std::vector<std::uint8_t>>& inputs,
                         std::shared_ptr<const void> image_owner,
                         std::shared_ptr<const DecodedProgram> predecoded) {
  return impl_->run(program, inputs, std::move(image_owner), std::move(predecoded));
}

std::vector<std::uint8_t> Simulator::output(const isa::Program& program,
                                            std::int64_t image) const {
  const std::int64_t offset = static_cast<std::int64_t>(program.output_global_offset) +
                              image * program.output_bytes_per_image;
  CIMFLOW_CHECK(offset >= 0 &&
                    offset + program.output_bytes_per_image <= impl_->global.size(),
                "output region out of range");
  std::vector<std::uint8_t> out(static_cast<std::size_t>(program.output_bytes_per_image));
  impl_->global.read_bytes(offset, program.output_bytes_per_image, out.data());
  return out;
}

SimMemoryStats Simulator::memory_stats() const {
  return {impl_->global.base_bytes(), impl_->global.overlay_bytes(),
          impl_->decoded == nullptr ? 0 : impl_->decoded->bytes()};
}

}  // namespace cimflow::sim
