#include "cimflow/sim/simulator.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <deque>
#include <map>
#include <queue>

#include "cimflow/arch/energy_model.hpp"
#include "cimflow/sim/noc.hpp"
#include "cimflow/support/numeric.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::sim {

using isa::Instruction;
using isa::Opcode;
using isa::ScalarFunct;
using isa::SReg;
using isa::VecFunct;

namespace {

constexpr std::int64_t kGranuleBytes = 256;
constexpr std::int64_t kBranchRedirect = 1;  ///< extra cycles after a taken branch
constexpr std::int64_t kBarrierCost = 8;

std::int64_t sreg_i(const std::array<std::int32_t, 32>& sregs, SReg r) {
  return sregs[static_cast<std::size_t>(r)];
}

}  // namespace

struct Simulator::Impl {
  // The config is copied (not referenced): DSE workers construct simulators
  // from per-point temporaries, so the simulator must own its architecture.
  // energy_model/noc keep pointers into the member copy, never the parameter.
  Impl(const arch::ArchConfig& arch_in, SimOptions options)
      : arch(arch_in),
        options(options),
        energy_model(arch),
        noc(arch, energy_model),
        registry(options.registry != nullptr ? *options.registry
                                             : isa::Registry::builtin()) {}

  // ----- configuration ------------------------------------------------------
  const arch::ArchConfig arch;
  SimOptions options;
  arch::EnergyModel energy_model;
  Noc noc;
  const isa::Registry& registry;

  // ----- chip state ---------------------------------------------------------
  std::vector<std::uint8_t> global_mem;
  std::vector<std::int64_t> global_chan_free;  ///< per-bank next-free cycle

  struct Message {
    std::int64_t arrival = 0;
    std::int64_t bytes = 0;
    std::vector<std::uint8_t> payload;  // functional mode only
  };
  // (src_core, dst_core, tag) -> FIFO
  std::map<std::tuple<std::int64_t, std::int64_t, std::int32_t>, std::deque<Message>>
      mailboxes;

  struct BarrierState {
    std::int64_t arrived = 0;
    std::int64_t release_time = 0;
  };
  std::map<std::int32_t, BarrierState> barriers;

  // ----- per-core state -----------------------------------------------------
  enum class Status : std::uint8_t { kReady, kBlockedRecv, kBlockedBarrier, kHalted };

  struct Core;

  /// CustomExecContext adapter for user-registered instructions.
  struct CustomCtx final : isa::CustomExecContext {
    Core* core = nullptr;
    Impl* impl = nullptr;
    std::int32_t reg(std::uint8_t index) const override;
    void set_reg(std::uint8_t index, std::int32_t value) override;
    std::int32_t sreg(std::uint8_t index) const override;
    std::uint8_t load_byte(std::uint32_t local_offset) const override;
    void store_byte(std::uint32_t local_offset, std::uint8_t value) override;
    std::int64_t core_id() const override;
  };

  struct Core {
    std::int64_t id = 0;
    const std::vector<Instruction>* code = nullptr;
    std::int64_t pc = 0;
    Status status = Status::kReady;

    // Timing state.
    std::int64_t next_fetch = 0;
    std::int64_t last_issue = -1;
    std::array<std::int64_t, 32> reg_ready{};
    std::vector<std::int64_t> mg_free;
    std::int64_t vec_free = 0;
    std::int64_t scalar_free = 0;
    std::int64_t transfer_free = 0;

    // Architectural state.
    std::array<std::int32_t, 32> regs{};
    std::array<std::int32_t, 32> sregs{};
    std::vector<std::uint8_t> lmem;
    std::vector<std::int8_t> mg_weights;  // mg_per_unit * mg_rows * mg_cols
    std::int64_t mg_tile_elems = 0;

    // Local-memory dependency granules.
    std::vector<std::int64_t> gr_write;
    std::vector<std::int64_t> gr_read;

    CoreStats stats;

    std::int64_t local_time() const noexcept { return next_fetch; }
  };

  std::vector<Core> cores;
  std::priority_queue<std::pair<std::int64_t, std::int64_t>,
                      std::vector<std::pair<std::int64_t, std::int64_t>>,
                      std::greater<>>
      ready_heap;  // (time, core id)

  EnergyBreakdown energy;
  std::int64_t total_instructions = 0;
  std::int64_t mvm_count = 0;
  std::int64_t total_macs = 0;

  // ==========================================================================
  // helpers
  // ==========================================================================

  [[noreturn]] void fail(const std::string& what) {
    std::string detail = what + "\n";
    for (const Core& core : cores) {
      if (core.status == Status::kHalted) continue;
      detail += strprintf("  core %lld: pc=%lld time=%lld status=%d\n",
                          (long long)core.id, (long long)core.pc,
                          (long long)core.next_fetch, static_cast<int>(core.status));
    }
    raise(ErrorCode::kInternal, detail);
  }

  std::uint8_t* mem_ptr(Core& core, std::uint32_t addr, std::int64_t len) {
    if (isa::is_local_address(addr)) {
      const std::uint32_t off = isa::local_offset(addr);
      if (off + static_cast<std::uint64_t>(len) > core.lmem.size()) {
        fail(strprintf("core %lld local access out of range: off=%u len=%lld",
                       (long long)core.id, off, (long long)len));
      }
      return core.lmem.data() + off;
    }
    if (addr + static_cast<std::uint64_t>(len) > global_mem.size()) {
      fail(strprintf("global access out of range: addr=%u len=%lld", addr,
                     (long long)len));
    }
    return global_mem.data() + addr;
  }

  /// Earliest start time satisfying local-memory dependencies, and records
  /// the access. Only local addresses are granule-tracked.
  std::int64_t mem_dep_start(Core& core, std::uint32_t addr, std::int64_t len,
                             bool is_write, std::int64_t start) {
    if (!isa::is_local_address(addr) || len <= 0) return start;
    const std::int64_t g0 = isa::local_offset(addr) / kGranuleBytes;
    const std::int64_t g1 =
        std::min<std::int64_t>(static_cast<std::int64_t>(core.gr_write.size()) - 1,
                               (isa::local_offset(addr) + len - 1) / kGranuleBytes);
    for (std::int64_t g = g0; g <= g1; ++g) {
      start = std::max(start, core.gr_write[static_cast<std::size_t>(g)]);
      if (is_write) start = std::max(start, core.gr_read[static_cast<std::size_t>(g)]);
    }
    return start;
  }

  void mem_dep_finish(Core& core, std::uint32_t addr, std::int64_t len, bool is_write,
                      std::int64_t done) {
    if (!isa::is_local_address(addr) || len <= 0) return;
    const std::int64_t g0 = isa::local_offset(addr) / kGranuleBytes;
    const std::int64_t g1 =
        std::min<std::int64_t>(static_cast<std::int64_t>(core.gr_write.size()) - 1,
                               (isa::local_offset(addr) + len - 1) / kGranuleBytes);
    for (std::int64_t g = g0; g <= g1; ++g) {
      auto& slot = is_write ? core.gr_write[static_cast<std::size_t>(g)]
                            : core.gr_read[static_cast<std::size_t>(g)];
      slot = std::max(slot, done);
    }
  }

  /// Global-buffer access: `addr` selects the page-interleaved bank along
  /// the top mesh edge; the transfer pays NoC traversal to/from the bank
  /// plus per-bank bandwidth (aggregate bandwidth / banks) and contention.
  std::int64_t global_access(std::int64_t core_id, std::uint32_t addr,
                             std::int64_t bytes, std::int64_t depart, bool is_read) {
    const std::int64_t banks = arch.chip().global_mem_banks;
    const std::int64_t bank =
        (static_cast<std::int64_t>(addr) >> 12) % banks;  // 4 KB interleave
    const std::int64_t bank_bw = std::max<std::int64_t>(
        1, arch.chip().global_mem_bytes_per_cycle / banks);
    const std::int64_t node = Noc::bank_node(bank * arch.chip().mesh_cols / banks);
    const std::int64_t hops =
        arch.core_x(core_id) + arch.core_y(core_id) + 1;  // request path estimate
    const std::int64_t request_at = depart + hops;
    std::int64_t& chan = global_chan_free[static_cast<std::size_t>(bank)];
    const std::int64_t serve_start =
        std::max(request_at + arch.chip().global_mem_latency, chan);
    const std::int64_t serve_done =
        serve_start + ceil_div(std::max<std::int64_t>(bytes, 1), bank_bw);
    chan = serve_done;
    // Data flits traverse the mesh between the bank controller and the core.
    const std::int64_t src = is_read ? node : core_id;
    const std::int64_t dst = is_read ? core_id : node;
    const std::int64_t tail = noc.transfer(src, dst, bytes, is_read ? serve_done : depart);
    energy.global_mem += energy_model.global_mem_pj(bytes);
    return std::max(serve_done, tail);
  }

  // ==========================================================================
  // functional helpers
  // ==========================================================================

  std::int32_t read_i32(Core& core, std::uint32_t addr) {
    const std::uint8_t* p = mem_ptr(core, addr, 4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return static_cast<std::int32_t>(v);
  }

  void write_i32(Core& core, std::uint32_t addr, std::int32_t value) {
    std::uint8_t* p = mem_ptr(core, addr, 4);
    const std::uint32_t v = static_cast<std::uint32_t>(value);
    for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
  }

  void exec_vec(Core& core, const Instruction& inst, std::int64_t n) {
    const auto funct = static_cast<VecFunct>(inst.funct);
    const auto dst = static_cast<std::uint32_t>(core.regs[inst.rd]);
    const auto a = static_cast<std::uint32_t>(core.regs[inst.rs]);
    const auto b = static_cast<std::uint32_t>(core.regs[inst.rt]);
    auto rd8 = [&](std::uint32_t base, std::int64_t i) {
      return static_cast<std::int8_t>(*mem_ptr(core, base + static_cast<std::uint32_t>(i), 1));
    };
    auto wr8 = [&](std::uint32_t base, std::int64_t i, std::int8_t v) {
      *mem_ptr(core, base + static_cast<std::uint32_t>(i), 1) = static_cast<std::uint8_t>(v);
    };
    const int shift = static_cast<int>(sreg_i(core.sregs, SReg::kQuantShift));
    const auto zero = static_cast<std::int32_t>(sreg_i(core.sregs, SReg::kQuantZero));
    switch (funct) {
      case VecFunct::kCopy8:
        for (std::int64_t i = 0; i < n; ++i) wr8(dst, i, rd8(a, i));
        break;
      case VecFunct::kAdd8:
        for (std::int64_t i = 0; i < n; ++i) {
          wr8(dst, i, saturate_int8(static_cast<std::int32_t>(rd8(a, i)) + rd8(b, i)));
        }
        break;
      case VecFunct::kSub8:
        for (std::int64_t i = 0; i < n; ++i) {
          wr8(dst, i, saturate_int8(static_cast<std::int32_t>(rd8(a, i)) - rd8(b, i)));
        }
        break;
      case VecFunct::kMax8:
        for (std::int64_t i = 0; i < n; ++i) wr8(dst, i, std::max(rd8(a, i), rd8(b, i)));
        break;
      case VecFunct::kMin8:
        for (std::int64_t i = 0; i < n; ++i) wr8(dst, i, std::min(rd8(a, i), rd8(b, i)));
        break;
      case VecFunct::kRelu8:
        for (std::int64_t i = 0; i < n; ++i) wr8(dst, i, std::max<std::int8_t>(rd8(a, i), 0));
        break;
      case VecFunct::kFill8: {
        const auto value = static_cast<std::int8_t>(core.regs[inst.rt] & 0xFF);
        for (std::int64_t i = 0; i < n; ++i) wr8(dst, i, value);
        break;
      }
      case VecFunct::kAdd32:
        for (std::int64_t i = 0; i < n; ++i) {
          write_i32(core, dst + static_cast<std::uint32_t>(4 * i),
                    read_i32(core, a + static_cast<std::uint32_t>(4 * i)) +
                        read_i32(core, b + static_cast<std::uint32_t>(4 * i)));
        }
        break;
      case VecFunct::kMax32:
        for (std::int64_t i = 0; i < n; ++i) {
          write_i32(core, dst + static_cast<std::uint32_t>(4 * i),
                    std::max(read_i32(core, a + static_cast<std::uint32_t>(4 * i)),
                             read_i32(core, b + static_cast<std::uint32_t>(4 * i))));
        }
        break;
      case VecFunct::kRelu32:
        for (std::int64_t i = 0; i < n; ++i) {
          write_i32(core, dst + static_cast<std::uint32_t>(4 * i),
                    std::max(read_i32(core, a + static_cast<std::uint32_t>(4 * i)), 0));
        }
        break;
      case VecFunct::kQuant:
        for (std::int64_t i = 0; i < n; ++i) {
          const std::int64_t acc = read_i32(core, a + static_cast<std::uint32_t>(4 * i));
          wr8(dst, i, saturate_int8(rounding_shift_right(acc, shift) + zero));
        }
        break;
      case VecFunct::kLut8: {
        const auto lut = static_cast<std::uint32_t>(sreg_i(core.sregs, SReg::kLutBase));
        for (std::int64_t i = 0; i < n; ++i) {
          const auto idx = static_cast<std::uint8_t>(rd8(a, i));
          wr8(dst, i, static_cast<std::int8_t>(*mem_ptr(core, lut + idx, 1)));
        }
        break;
      }
      case VecFunct::kScaleCh8: {
        const std::int64_t channels = sreg_i(core.sregs, SReg::kChannels);
        for (std::int64_t i = 0; i < n; ++i) {
          const std::int64_t product =
              static_cast<std::int64_t>(rd8(a, i)) * rd8(b, i % channels);
          wr8(dst, i, saturate_int8(rounding_shift_right(product, shift) + zero));
        }
        break;
      }
      case VecFunct::kCopy32:
        for (std::int64_t i = 0; i < n; ++i) {
          write_i32(core, dst + static_cast<std::uint32_t>(4 * i),
                    read_i32(core, a + static_cast<std::uint32_t>(4 * i)));
        }
        break;
      case VecFunct::kFill32:
        for (std::int64_t i = 0; i < n; ++i) {
          write_i32(core, dst + static_cast<std::uint32_t>(4 * i), core.regs[inst.rt]);
        }
        break;
      case VecFunct::kDeq8To32:
        for (std::int64_t i = 0; i < n; ++i) {
          write_i32(core, dst + static_cast<std::uint32_t>(4 * i), rd8(a, i));
        }
        break;
      case VecFunct::kAdd8To32:
        for (std::int64_t i = 0; i < n; ++i) {
          write_i32(core, dst + static_cast<std::uint32_t>(4 * i),
                    read_i32(core, a + static_cast<std::uint32_t>(4 * i)) + rd8(b, i));
        }
        break;
      case VecFunct::kRowSum32: {
        const std::int64_t pixels = sreg_i(core.sregs, SReg::kPoolWin);
        for (std::int64_t c = 0; c < n; ++c) {
          std::int64_t acc = read_i32(core, dst + static_cast<std::uint32_t>(4 * c));
          for (std::int64_t q = 0; q < pixels; ++q) acc += rd8(a, q * n + c);
          write_i32(core, dst + static_cast<std::uint32_t>(4 * c),
                    static_cast<std::int32_t>(acc));
        }
        break;
      }
      case VecFunct::kDivRound8: {
        const std::int64_t divisor =
            std::max<std::int64_t>(1, sreg_i(core.sregs, SReg::kAux1));
        for (std::int64_t i = 0; i < n; ++i) {
          const std::int64_t sum = read_i32(core, a + static_cast<std::uint32_t>(4 * i));
          const std::int64_t rounded = sum >= 0 ? (sum + divisor / 2) / divisor
                                                : -((-sum + divisor / 2) / divisor);
          wr8(dst, i, saturate_int8(static_cast<std::int32_t>(rounded)));
        }
        break;
      }
    }
  }

  void exec_pool(Core& core, const Instruction& inst, std::int64_t out_w) {
    const bool avg = inst.funct != 0;
    const auto dst = static_cast<std::uint32_t>(core.regs[inst.rd]);
    const auto src = static_cast<std::uint32_t>(core.regs[inst.rs]);
    const std::int64_t kh = sreg_i(core.sregs, SReg::kPoolKh);
    const std::int64_t kw = sreg_i(core.sregs, SReg::kPoolKw);
    const std::int64_t stride = sreg_i(core.sregs, SReg::kPoolStride);
    const std::int64_t win = sreg_i(core.sregs, SReg::kPoolWin);
    const std::int64_t channels = sreg_i(core.sregs, SReg::kPoolChannels);
    const std::int64_t area = kh * kw;
    for (std::int64_t q = 0; q < out_w; ++q) {
      for (std::int64_t c = 0; c < channels; ++c) {
        std::int64_t acc = avg ? 0 : -128;
        for (std::int64_t r = 0; r < kh; ++r) {
          for (std::int64_t s = 0; s < kw; ++s) {
            const std::int64_t idx = (r * win + q * stride + s) * channels + c;
            const auto v = static_cast<std::int8_t>(
                *mem_ptr(core, src + static_cast<std::uint32_t>(idx), 1));
            if (avg) {
              acc += v;
            } else {
              acc = std::max<std::int64_t>(acc, v);
            }
          }
        }
        std::int8_t out;
        if (avg) {
          const std::int64_t rounded =
              acc >= 0 ? (acc + area / 2) / area : -((-acc + area / 2) / area);
          out = saturate_int8(static_cast<std::int32_t>(rounded));
        } else {
          out = static_cast<std::int8_t>(acc);
        }
        *mem_ptr(core, dst + static_cast<std::uint32_t>(q * channels + c), 1) =
            static_cast<std::uint8_t>(out);
      }
    }
  }

  void exec_mvm(Core& core, const Instruction& inst, std::int64_t rows,
                std::int64_t cols) {
    const auto in = static_cast<std::uint32_t>(core.regs[inst.rs]);
    const auto out = static_cast<std::uint32_t>(core.regs[inst.rt]);
    const std::int64_t mg = core.regs[inst.re];
    const bool accumulate = (inst.flags & 1) != 0;
    const std::int8_t* weights = core.mg_weights.data() + mg * core.mg_tile_elems;
    const std::uint8_t* input = mem_ptr(core, in, rows);
    for (std::int64_t j = 0; j < cols; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t i = 0; i < rows; ++i) {
        acc += static_cast<std::int64_t>(static_cast<std::int8_t>(input[i])) *
               weights[i * cols + j];
      }
      const auto addr = out + static_cast<std::uint32_t>(4 * j);
      const std::int64_t prev = accumulate ? read_i32(core, addr) : 0;
      write_i32(core, addr, static_cast<std::int32_t>(prev + acc));
    }
  }

  // ==========================================================================
  // the per-instruction step
  // ==========================================================================

  /// Executes the instruction at core.pc. Returns false when the core
  /// blocked (recv/barrier) and must be retried later.
  bool step(Core& core) {
    const Instruction& inst = (*core.code)[static_cast<std::size_t>(core.pc)];
    const Opcode op = inst.op();

    const std::int64_t t_fetch = core.next_fetch;
    std::int64_t t_issue = std::max(t_fetch + 2, core.last_issue + 1);
    auto use = [&](std::uint8_t r) { t_issue = std::max(t_issue, core.reg_ready[r]); };

    const std::int64_t lanes = arch.unit().vector_lanes;
    const std::int64_t lm_width = arch.core().local_mem_width_bytes;
    bool taken_branch = false;
    std::int64_t redirect = 0;

    switch (op) {
      // ---- control & scalar -------------------------------------------------
      case Opcode::kNop:
        break;
      case Opcode::kHalt: {
        // A core is only done once its execution units drain: the makespan
        // must include in-flight CIM/vector/transfer work.
        std::int64_t quiesce = t_issue;
        quiesce = std::max(quiesce, core.vec_free + arch.unit().vector_pipeline_depth);
        quiesce = std::max(quiesce, core.scalar_free);
        quiesce = std::max(quiesce, core.transfer_free);
        for (std::int64_t mg : core.mg_free) {
          quiesce = std::max(quiesce, mg + arch.unit().mvm_pipeline_depth);
        }
        core.status = Status::kHalted;
        core.stats.halt_cycle = quiesce;
        break;
      }
      case Opcode::kGLi: {
        core.regs[inst.rt] = inst.imm;
        core.reg_ready[inst.rt] = std::max(core.reg_ready[inst.rt], t_issue + 1);
        break;
      }
      case Opcode::kGLih: {
        use(inst.rt);
        core.regs[inst.rt] = static_cast<std::int32_t>(
            (static_cast<std::uint32_t>(inst.imm) << 16) |
            (static_cast<std::uint32_t>(core.regs[inst.rt]) & 0xFFFFu));
        core.reg_ready[inst.rt] = std::max(core.reg_ready[inst.rt], t_issue + 1);
        break;
      }
      case Opcode::kScOp:
      case Opcode::kScAddi: {
        use(inst.rs);
        const std::int32_t a = core.regs[inst.rs];
        std::int32_t b;
        std::uint8_t dst;
        if (op == Opcode::kScOp) {
          use(inst.rt);
          b = core.regs[inst.rt];
          dst = inst.rd;
        } else {
          b = inst.imm;
          dst = inst.rt;
        }
        std::int32_t result = 0;
        switch (static_cast<ScalarFunct>(inst.funct)) {
          case ScalarFunct::kAdd: result = a + b; break;
          case ScalarFunct::kSub: result = a - b; break;
          case ScalarFunct::kMul: result = a * b; break;
          case ScalarFunct::kAnd: result = a & b; break;
          case ScalarFunct::kOr: result = a | b; break;
          case ScalarFunct::kXor: result = a ^ b; break;
          case ScalarFunct::kSll:
            result = static_cast<std::int32_t>(static_cast<std::uint32_t>(a)
                                               << (b & 31));
            break;
          case ScalarFunct::kSrl:
            result = static_cast<std::int32_t>(static_cast<std::uint32_t>(a) >> (b & 31));
            break;
          case ScalarFunct::kSra: result = a >> (b & 31); break;
          case ScalarFunct::kSlt: result = a < b ? 1 : 0; break;
          case ScalarFunct::kDivU:
            result = b == 0 ? 0
                            : static_cast<std::int32_t>(static_cast<std::uint32_t>(a) /
                                                        static_cast<std::uint32_t>(b));
            break;
          case ScalarFunct::kRemU:
            result = b == 0 ? 0
                            : static_cast<std::int32_t>(static_cast<std::uint32_t>(a) %
                                                        static_cast<std::uint32_t>(b));
            break;
        }
        if (dst != 0) core.regs[dst] = result;
        core.scalar_free = std::max(core.scalar_free, t_issue) + 1;
        core.reg_ready[dst] = std::max(core.reg_ready[dst], t_issue + 1);
        energy.scalar_unit += energy_model.scalar_op_pj();
        break;
      }
      case Opcode::kScLw: {
        use(inst.rs);
        const auto addr =
            static_cast<std::uint32_t>(core.regs[inst.rs] + inst.imm);
        const std::int64_t start = mem_dep_start(core, addr, 4, false, t_issue);
        if (inst.rt != 0) core.regs[inst.rt] = read_i32(core, addr);
        core.reg_ready[inst.rt] = std::max(core.reg_ready[inst.rt], start + 2);
        mem_dep_finish(core, addr, 4, false, start + 2);
        energy.local_mem += energy_model.local_mem_pj(4);
        break;
      }
      case Opcode::kScSw: {
        use(inst.rs);
        use(inst.rt);
        const auto addr =
            static_cast<std::uint32_t>(core.regs[inst.rs] + inst.imm);
        const std::int64_t start = mem_dep_start(core, addr, 4, true, t_issue);
        write_i32(core, addr, core.regs[inst.rt]);
        mem_dep_finish(core, addr, 4, true, start + 1);
        energy.local_mem += energy_model.local_mem_pj(4);
        break;
      }
      case Opcode::kJmp:
        taken_branch = true;
        redirect = t_issue + kBranchRedirect;
        core.pc += inst.imm;
        break;
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge: {
        use(inst.rs);
        use(inst.rt);
        const std::int32_t a = core.regs[inst.rs];
        const std::int32_t b = core.regs[inst.rt];
        bool take = false;
        if (op == Opcode::kBeq) take = a == b;
        if (op == Opcode::kBne) take = a != b;
        if (op == Opcode::kBlt) take = a < b;
        if (op == Opcode::kBge) take = a >= b;
        if (take) {
          taken_branch = true;
          redirect = t_issue + kBranchRedirect;
          core.pc += inst.imm;
        }
        break;
      }

      // ---- CIM unit ---------------------------------------------------------
      case Opcode::kCimCfg: {
        use(inst.rs);
        core.sregs[inst.flags & 31] = core.regs[inst.rs];
        break;
      }
      case Opcode::kCimLoad: {
        use(inst.rs);
        use(inst.rt);
        const std::int64_t rows = sreg_i(core.sregs, SReg::kActiveRows);
        const std::int64_t cols = sreg_i(core.sregs, SReg::kActiveCols);
        const std::int64_t bytes = rows * cols;
        const std::int64_t mg = core.regs[inst.rt];
        if (mg < 0 || mg >= arch.core().mg_per_unit) {
          fail(strprintf("core %lld CIM_LOAD: bad macro group %lld", (long long)core.id,
                         (long long)mg));
        }
        const auto src = static_cast<std::uint32_t>(core.regs[inst.rs]);
        std::int64_t start = mem_dep_start(core, src, bytes, false, t_issue);
        start = std::max(start, core.mg_free[static_cast<std::size_t>(mg)]);
        const std::int64_t done =
            start + ceil_div(bytes, arch.core().cim_load_bytes_per_cycle);
        core.mg_free[static_cast<std::size_t>(mg)] = done;
        core.stats.cim_busy_cycles += done - start;
        mem_dep_finish(core, src, bytes, false, done);
        if (options.functional) {
          const std::uint8_t* data = mem_ptr(core, src, bytes);
          std::copy(data, data + bytes,
                    reinterpret_cast<std::uint8_t*>(core.mg_weights.data() +
                                                    mg * core.mg_tile_elems));
        }
        energy.cim += energy_model.cim_load_pj(bytes);
        energy.local_mem += energy_model.local_mem_pj(bytes);
        break;
      }
      case Opcode::kCimMvm: {
        use(inst.rs);
        use(inst.rt);
        use(inst.re);
        const std::int64_t rows = sreg_i(core.sregs, SReg::kActiveRows);
        const std::int64_t cols = sreg_i(core.sregs, SReg::kActiveCols);
        std::int64_t macs = sreg_i(core.sregs, SReg::kMacCount);
        if (macs <= 0) macs = rows * cols;
        const std::int64_t mg = core.regs[inst.re];
        if (mg < 0 || mg >= arch.core().mg_per_unit) {
          fail(strprintf("core %lld CIM_MVM: bad macro group %lld", (long long)core.id,
                         (long long)mg));
        }
        const auto in = static_cast<std::uint32_t>(core.regs[inst.rs]);
        const auto out = static_cast<std::uint32_t>(core.regs[inst.rt]);
        std::int64_t start = mem_dep_start(core, in, rows, false, t_issue);
        start = mem_dep_start(core, out, cols * 4, true, start);
        start = std::max(start, core.mg_free[static_cast<std::size_t>(mg)]);
        const std::int64_t busy_until = start + arch.mvm_interval_cycles();
        const std::int64_t result = start + arch.mvm_latency_cycles();
        core.mg_free[static_cast<std::size_t>(mg)] = busy_until;
        core.stats.cim_busy_cycles += busy_until - start;
        mem_dep_finish(core, in, rows, false, busy_until);
        mem_dep_finish(core, out, cols * 4, true, result);
        if (options.functional) exec_mvm(core, inst, rows, cols);
        energy.cim += energy_model.mvm_pj_macs(macs, cols);
        energy.local_mem += energy_model.local_mem_pj(rows + cols * 4);
        ++mvm_count;
        total_macs += macs;
        break;
      }

      // ---- vector unit ------------------------------------------------------
      case Opcode::kVecOp:
      case Opcode::kVecPool: {
        use(inst.rs);
        use(inst.rt);
        use(inst.rd);
        use(inst.re);
        const std::int64_t n = core.regs[inst.re];
        std::int64_t work = n;   // lane-elements of vector work
        std::int64_t rd_bytes = n, wr_bytes = n;
        if (op == Opcode::kVecPool) {
          const std::int64_t kh = sreg_i(core.sregs, SReg::kPoolKh);
          const std::int64_t kw = sreg_i(core.sregs, SReg::kPoolKw);
          const std::int64_t channels = sreg_i(core.sregs, SReg::kPoolChannels);
          work = n * channels * kh * kw;
          rd_bytes = work;
          wr_bytes = n * channels;
        } else {
          const auto funct = static_cast<VecFunct>(inst.funct);
          if (funct == VecFunct::kQuant) rd_bytes = 4 * n;
          if (funct == VecFunct::kCopy32 || funct == VecFunct::kFill32 ||
              funct == VecFunct::kAdd32 || funct == VecFunct::kMax32 ||
              funct == VecFunct::kRelu32) {
            rd_bytes = 4 * n;
            wr_bytes = 4 * n;
          }
          if (funct == VecFunct::kDeq8To32 || funct == VecFunct::kAdd8To32) {
            wr_bytes = 4 * n;
          }
          if (funct == VecFunct::kRowSum32) {
            const std::int64_t pixels = sreg_i(core.sregs, SReg::kPoolWin);
            work = n * pixels;
            rd_bytes = n * pixels;
            wr_bytes = 4 * n;
          }
          if (funct == VecFunct::kDivRound8) rd_bytes = 4 * n;
        }
        const auto dst = static_cast<std::uint32_t>(core.regs[inst.rd]);
        const auto a = static_cast<std::uint32_t>(core.regs[inst.rs]);
        const auto b = static_cast<std::uint32_t>(core.regs[inst.rt]);
        std::int64_t start = mem_dep_start(core, dst, wr_bytes, true, t_issue);
        start = mem_dep_start(core, a, rd_bytes, false, start);
        if (op == Opcode::kVecOp && inst.rt != 0) {
          start = mem_dep_start(core, b, n, false, start);
        }
        start = std::max(start, core.vec_free);
        const std::int64_t busy_until = start + 1 + ceil_div(work, lanes);
        const std::int64_t done = busy_until + arch.unit().vector_pipeline_depth;
        core.vec_free = busy_until;
        core.stats.vector_busy_cycles += busy_until - start;
        mem_dep_finish(core, dst, wr_bytes, true, done);
        mem_dep_finish(core, a, rd_bytes, false, busy_until);
        if (options.functional) {
          if (op == Opcode::kVecPool) {
            exec_pool(core, inst, n);
          } else {
            exec_vec(core, inst, n);
          }
        }
        energy.vector_unit += energy_model.vector_op_pj(work);
        energy.local_mem += energy_model.local_mem_pj(rd_bytes + wr_bytes);
        break;
      }

      // ---- transfer unit ----------------------------------------------------
      case Opcode::kMemCpy:
      case Opcode::kMemStride: {
        use(inst.rs);
        use(inst.rt);
        use(inst.rd);
        const auto dst = static_cast<std::uint32_t>(core.regs[inst.rs]);
        const auto src = static_cast<std::uint32_t>(core.regs[inst.rt]);
        std::int64_t count = core.regs[inst.rd];
        std::int64_t elem = 1, dstride = 1, sstride = 1;
        if (op == Opcode::kMemStride) {
          dstride = sreg_i(core.sregs, SReg::kAux0);
          sstride = sreg_i(core.sregs, SReg::kAux1);
          elem = sreg_i(core.sregs, SReg::kAux2);
        }
        const std::int64_t bytes = count * elem;
        const std::int64_t dst_span =
            op == Opcode::kMemStride ? (count - 1) * dstride + elem : bytes;
        const std::int64_t src_span =
            op == Opcode::kMemStride ? (count - 1) * sstride + elem : bytes;
        std::int64_t start = std::max(t_issue, core.transfer_free);
        start = mem_dep_start(core, src, src_span, false, start);
        start = mem_dep_start(core, dst, dst_span, true, start);
        std::int64_t done;
        const bool src_local = isa::is_local_address(src);
        const bool dst_local = isa::is_local_address(dst);
        if (src_local && dst_local) {
          done = start + 2 + ceil_div(bytes, lm_width);
          energy.local_mem += energy_model.local_mem_pj(2 * bytes);
        } else {
          const std::uint32_t global_addr = dst_local ? src : dst;
          done = global_access(core.id, global_addr, bytes, start,
                               /*is_read=*/dst_local);
          energy.local_mem += energy_model.local_mem_pj(bytes);
        }
        core.transfer_free = done;
        core.stats.transfer_busy_cycles += done - start;
        mem_dep_finish(core, src, src_span, false, done);
        mem_dep_finish(core, dst, dst_span, true, done);
        if (options.functional && bytes > 0) {
          if (op == Opcode::kMemCpy) {
            const std::uint8_t* s = mem_ptr(core, src, bytes);
            std::uint8_t* d = mem_ptr(core, dst, bytes);
            std::memmove(d, s, static_cast<std::size_t>(bytes));
          } else {
            for (std::int64_t i = 0; i < count; ++i) {
              const std::uint8_t* s =
                  mem_ptr(core, src + static_cast<std::uint32_t>(i * sstride), elem);
              std::uint8_t* d =
                  mem_ptr(core, dst + static_cast<std::uint32_t>(i * dstride), elem);
              std::memcpy(d, s, static_cast<std::size_t>(elem));
            }
          }
        }
        break;
      }
      case Opcode::kSend: {
        use(inst.rs);
        use(inst.rt);
        use(inst.rd);
        const auto src = static_cast<std::uint32_t>(core.regs[inst.rs]);
        const std::int64_t bytes = core.regs[inst.rt];
        const std::int64_t dst_core = core.regs[inst.rd];
        if (dst_core < 0 || dst_core >= static_cast<std::int64_t>(cores.size())) {
          fail(strprintf("core %lld SEND to invalid core %lld", (long long)core.id,
                         (long long)dst_core));
        }
        std::int64_t start = mem_dep_start(core, src, bytes, false, t_issue);
        start = std::max(start, core.transfer_free);
        const std::int64_t inject_done =
            start + 2 + ceil_div(bytes, arch.chip().noc_flit_bytes);
        core.transfer_free = inject_done;
        core.stats.transfer_busy_cycles += inject_done - start;
        mem_dep_finish(core, src, bytes, false, inject_done);
        Message msg;
        msg.arrival = noc.transfer(core.id, dst_core, bytes, start + 2);
        msg.bytes = bytes;
        if (options.functional && bytes > 0) {
          const std::uint8_t* data = mem_ptr(core, src, bytes);
          msg.payload.assign(data, data + bytes);
        }
        energy.local_mem += energy_model.local_mem_pj(bytes);
        const auto key = std::make_tuple(core.id, dst_core, inst.imm);
        mailboxes[key].push_back(std::move(msg));
        // Wake the receiver if it is blocked on this mailbox.
        Core& peer = cores[static_cast<std::size_t>(dst_core)];
        if (peer.status == Status::kBlockedRecv) {
          peer.status = Status::kReady;
          ready_heap.emplace(peer.next_fetch, peer.id);
        }
        break;
      }
      case Opcode::kRecv: {
        use(inst.rs);
        use(inst.rt);
        use(inst.rd);
        const std::int64_t src_core = core.regs[inst.rd];
        const auto key = std::make_tuple(src_core, core.id, inst.imm);
        auto it = mailboxes.find(key);
        if (it == mailboxes.end() || it->second.empty()) {
          core.status = Status::kBlockedRecv;
          return false;  // retry when a message arrives
        }
        Message msg = std::move(it->second.front());
        it->second.pop_front();
        const std::int64_t bytes = core.regs[inst.rt];
        if (bytes != msg.bytes) {
          fail(strprintf("core %lld RECV size mismatch at pc=%lld (src=%lld tag=%d): "
                         "expected %lld got %lld",
                         (long long)core.id, (long long)core.pc, (long long)src_core,
                         inst.imm, (long long)bytes, (long long)msg.bytes));
        }
        const auto dst = static_cast<std::uint32_t>(core.regs[inst.rs]);
        std::int64_t start = std::max({t_issue, msg.arrival, core.transfer_free});
        start = mem_dep_start(core, dst, bytes, true, start);
        const std::int64_t done = start + 2 + ceil_div(bytes, lm_width);
        core.transfer_free = done;
        core.stats.transfer_busy_cycles += done - start;
        mem_dep_finish(core, dst, bytes, true, done);
        if (options.functional && bytes > 0) {
          std::uint8_t* d = mem_ptr(core, dst, bytes);
          std::copy(msg.payload.begin(), msg.payload.end(), d);
        }
        energy.local_mem += energy_model.local_mem_pj(bytes);
        t_issue = start;  // the core was architecturally waiting
        break;
      }
      case Opcode::kBarrier: {
        BarrierState& bar = barriers[static_cast<std::int32_t>(inst.imm)];
        bar.arrived += 1;
        bar.release_time = std::max(bar.release_time, t_issue);
        if (bar.arrived < static_cast<std::int64_t>(cores.size())) {
          core.status = Status::kBlockedBarrier;
          // pc stays at the barrier; release() advances it.
          return false;
        }
        // Last arrival: release everyone.
        const std::int64_t release = bar.release_time + kBarrierCost;
        for (Core& peer : cores) {
          if (peer.id == core.id) continue;
          CIMFLOW_CHECK(peer.status == Status::kBlockedBarrier,
                        "barrier release found peer not blocked");
          peer.status = Status::kReady;
          peer.pc += 1;
          peer.next_fetch = release;
          peer.last_issue = release - 1;
          peer.stats.instructions += 1;  // their barrier retires now
          total_instructions += 1;
          ready_heap.emplace(release, peer.id);
        }
        t_issue = release;
        break;
      }

      default: {
        // Custom instruction via the registry's description template.
        const isa::InstructionDescriptor& desc = registry.lookup(inst);
        const std::int64_t n = core.regs[inst.re];
        std::int64_t busy = desc.timing.fixed_cycles;
        if (desc.timing.elements_per_cycle > 0) {
          busy += ceil_div(std::max<std::int64_t>(n, 0), desc.timing.elements_per_cycle);
        }
        use(inst.rs);
        use(inst.rt);
        use(inst.re);
        use(inst.rd);
        std::int64_t* unit_free = &core.scalar_free;
        if (desc.unit == isa::UnitKind::kVector) unit_free = &core.vec_free;
        if (desc.unit == isa::UnitKind::kTransfer) unit_free = &core.transfer_free;
        if (desc.unit == isa::UnitKind::kCim) unit_free = &core.mg_free[0];
        const std::int64_t start = std::max(t_issue, *unit_free);
        *unit_free = start + busy;
        if (desc.execute) {
          CustomCtx ctx;
          ctx.core = &core;
          ctx.impl = this;
          desc.execute(inst, ctx);
          core.regs[0] = 0;
        }
        energy.vector_unit += desc.energy.fixed_pj +
                              desc.energy.per_element_pj * static_cast<double>(n);
        break;
      }
    }

    // Common bookkeeping.
    core.regs[0] = 0;
    core.last_issue = t_issue;
    core.next_fetch = taken_branch ? redirect : std::max(t_fetch + 1, t_issue - 1);
    if (!taken_branch) core.pc += 1;
    core.stats.instructions += 1;
    total_instructions += 1;
    energy.instruction += energy_model.instruction_pj();
    return true;
  }

  // ==========================================================================
  // run loop
  // ==========================================================================

  SimReport run(const isa::Program& program,
                const std::vector<std::vector<std::uint8_t>>& inputs);
};

std::int32_t Simulator::Impl::CustomCtx::reg(std::uint8_t index) const {
  return core->regs[index & 31];
}
void Simulator::Impl::CustomCtx::set_reg(std::uint8_t index, std::int32_t value) {
  core->regs[index & 31] = value;
}
std::int32_t Simulator::Impl::CustomCtx::sreg(std::uint8_t index) const {
  return core->sregs[index & 31];
}
std::uint8_t Simulator::Impl::CustomCtx::load_byte(std::uint32_t local_offset) const {
  return *impl->mem_ptr(*core, isa::make_local_address(local_offset), 1);
}
void Simulator::Impl::CustomCtx::store_byte(std::uint32_t local_offset,
                                            std::uint8_t value) {
  *impl->mem_ptr(*core, isa::make_local_address(local_offset), 1) = value;
}
std::int64_t Simulator::Impl::CustomCtx::core_id() const { return core->id; }

SimReport Simulator::Impl::run(const isa::Program& program,
                               const std::vector<std::vector<std::uint8_t>>& inputs) {
  const std::int64_t core_count = arch.chip().core_count;
  if (static_cast<std::int64_t>(program.cores.size()) != core_count) {
    raise(ErrorCode::kInvalidArgument,
          "program core count does not match the architecture");
  }

  // Reset chip state.
  cores.clear();
  cores.resize(static_cast<std::size_t>(core_count));
  mailboxes.clear();
  barriers.clear();
  noc.reset();
  global_chan_free.assign(static_cast<std::size_t>(arch.chip().global_mem_banks), 0);
  energy = EnergyBreakdown{};
  total_instructions = 0;
  mvm_count = 0;
  total_macs = 0;

  global_mem = program.global_image;
  if (options.functional) {
    if (static_cast<std::int64_t>(inputs.size()) != program.batch) {
      raise(ErrorCode::kInvalidArgument, "functional run needs one input per image");
    }
    for (std::size_t img = 0; img < inputs.size(); ++img) {
      if (static_cast<std::int64_t>(inputs[img].size()) !=
          program.input_bytes_per_image) {
        raise(ErrorCode::kInvalidArgument, "input image size mismatch");
      }
      const std::size_t offset =
          program.input_global_offset +
          img * static_cast<std::size_t>(program.input_bytes_per_image);
      if (global_mem.size() < offset + inputs[img].size()) {
        global_mem.resize(offset + inputs[img].size(), 0);
      }
      std::copy(inputs[img].begin(), inputs[img].end(),
                global_mem.begin() + static_cast<std::ptrdiff_t>(offset));
    }
  }

  const std::int64_t mg_tile = arch.mg_rows() * arch.mg_cols();
  for (std::int64_t i = 0; i < core_count; ++i) {
    Core& core = cores[static_cast<std::size_t>(i)];
    core.id = i;
    core.code = &program.cores[static_cast<std::size_t>(i)].code;
    core.lmem.assign(static_cast<std::size_t>(arch.core().local_mem_bytes), 0);
    core.mg_free.assign(static_cast<std::size_t>(arch.core().mg_per_unit), 0);
    core.mg_tile_elems = mg_tile;
    if (options.functional) {
      core.mg_weights.assign(
          static_cast<std::size_t>(arch.core().mg_per_unit * mg_tile), 0);
    }
    core.gr_write.assign(
        static_cast<std::size_t>(ceil_div(arch.core().local_mem_bytes, kGranuleBytes)),
        0);
    core.gr_read = core.gr_write;
    if (core.code->empty()) {
      core.status = Status::kHalted;
    } else {
      ready_heap.emplace(0, i);
    }
  }

  // Main loop: advance the earliest core, in bursts bounded by the sync
  // window so cross-core resources stay causally consistent.
  while (!ready_heap.empty()) {
    const auto [t, id] = ready_heap.top();
    ready_heap.pop();
    Core& core = cores[static_cast<std::size_t>(id)];
    if (core.status != Status::kReady || core.next_fetch != t) continue;  // stale
    const std::int64_t horizon =
        (ready_heap.empty() ? t : ready_heap.top().first) + options.sync_window;
    int steps = 0;
    while (core.status == Status::kReady && core.next_fetch <= horizon &&
           steps < 256) {
      if (core.pc < 0 || core.pc >= static_cast<std::int64_t>(core.code->size())) {
        fail(strprintf("core %lld ran off its program (pc=%lld)", (long long)id,
                       (long long)core.pc));
      }
      if (core.next_fetch > options.max_cycles) {
        fail("simulation watchdog expired");
      }
      if (!step(core)) break;
      ++steps;
    }
    if (core.status == Status::kReady) ready_heap.emplace(core.next_fetch, id);
  }

  // All cores must have halted; anything else is a deadlock.
  for (const Core& core : cores) {
    if (core.status != Status::kHalted) {
      fail("simulation deadlock: cores blocked with no pending messages");
    }
  }

  SimReport report;
  report.frequency_ghz = arch.chip().frequency_ghz;
  report.instructions = total_instructions;
  report.mvm_count = mvm_count;
  report.macs = total_macs;
  report.images = program.batch;
  for (const Core& core : cores) {
    report.cycles = std::max(report.cycles, core.stats.halt_cycle);
    report.cores.push_back(core.stats);
  }
  energy.leakage = energy_model.leakage_pj(core_count, report.cycles) +
                   energy_model.global_leakage_pj(report.cycles);
  energy.noc = noc.energy_pj();
  report.energy = energy;
  return report;
}

Simulator::Simulator(const arch::ArchConfig& arch, SimOptions options)
    : impl_(std::make_unique<Impl>(arch, options)) {}

Simulator::~Simulator() = default;

SimReport Simulator::run(const isa::Program& program,
                         const std::vector<std::vector<std::uint8_t>>& inputs) {
  return impl_->run(program, inputs);
}

std::vector<std::uint8_t> Simulator::output(const isa::Program& program,
                                            std::int64_t image) const {
  const std::size_t offset =
      program.output_global_offset +
      static_cast<std::size_t>(image * program.output_bytes_per_image);
  CIMFLOW_CHECK(offset + static_cast<std::size_t>(program.output_bytes_per_image) <=
                    impl_->global_mem.size(),
                "output region out of range");
  return {impl_->global_mem.begin() + static_cast<std::ptrdiff_t>(offset),
          impl_->global_mem.begin() +
              static_cast<std::ptrdiff_t>(offset +
                                          static_cast<std::size_t>(
                                              program.output_bytes_per_image))};
}

}  // namespace cimflow::sim
