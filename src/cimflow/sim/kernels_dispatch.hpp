// Runtime-dispatched SIMD kernel tiers for the INT8 functional hot path.
//
// PR 5 turned the per-element simulator loops into pointer-resolved kernels;
// this layer adds explicit vector implementations behind runtime CPU
// dispatch. A KernelTable is a set of function pointers covering the hot
// kernels (the row-major MVM accumulate, the saturating INT8 elementwise
// ops, the widening/requantizing 32-bit ops, and the pooling row
// reductions); each implementation tier fills the table once:
//
//   * kScalar — the portable loops, byte-for-byte the behavior the inline
//     exec_vec/exec_pool loops always had (and the tier every other one is
//     differentially tested against);
//   * kAvx2   — compiled in its own translation unit with -mavx2 (see
//     kernels_avx2.cpp), selected only after a CPUID probe, so the binary
//     stays runnable on baseline x86-64 hosts;
//   * kNeon   — aarch64 NEON (baseline on that ISA, no probe needed).
//
// Tier selection: SimOptions::kernel_tier (kAuto by default) resolves via
// resolve_tier() — the CIMFLOW_KERNELS=scalar|avx2|neon environment override
// is strict-parsed first, then the best available tier wins. Requesting a
// tier the host lacks raises Error(kInvalidArgument): differential tests
// skip unavailable tiers instead of silently testing the wrong code.
//
// Bit-exactness contract (the hard invariant of PRs 5-9): every tier
// produces byte-identical outputs for identical inputs — all accumulation is
// mod 2^32, saturation bounds are exact, and rounding matches
// support/numeric.hpp. SIMD only changes wall clock; reports and --json
// payloads never move.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "cimflow/support/numeric.hpp"

namespace cimflow::sim::kernels {

enum class KernelTier : std::uint8_t {
  kAuto = 0,    ///< resolve at simulator construction (env override + probe)
  kScalar = 1,  ///< portable loops — always available
  kAvx2 = 2,    ///< x86-64 AVX2 (runtime CPUID-gated)
  kNeon = 3,    ///< aarch64 NEON (baseline on that ISA)
};

/// The dispatched hot kernels. All pointers are non-null in every registered
/// table; 32-bit operands are raw little-endian byte rows (the simulator's
/// int32 memory format), int8 operands are raw bytes reinterpreted signed.
/// Every kernel tolerates unaligned pointers (the 64-byte-aligned buffers
/// make alignment the dominant case, not a requirement) and n == 0.
/// Operands must not partially overlap — callers fall back to the
/// element-ordered inline loops for aliased layouts (see exec_vec).
struct KernelTable {
  /// acc[j] += sum_i in[i] * w[i*cols + j] (mod 2^32), weights row-major.
  void (*mvm_accumulate)(std::int32_t* acc, const std::uint8_t* in,
                         const std::int8_t* w, std::int64_t rows, std::int64_t cols);

  // Saturating INT8 elementwise ops (dst may exactly alias a or b).
  void (*add8)(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
               std::int64_t n);
  void (*sub8)(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
               std::int64_t n);
  void (*max8)(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
               std::int64_t n);
  void (*min8)(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
               std::int64_t n);
  void (*relu8)(std::uint8_t* dst, const std::uint8_t* a, std::int64_t n);

  /// dst[i] = saturate_int8(rounding_shift_right(le32(a)[i], shift) + zero).
  void (*quant)(std::uint8_t* dst, const std::uint8_t* a, std::int64_t n,
                int shift, std::int32_t zero);

  // LE-int32 elementwise ops (add32 wraps mod 2^32, like the inline loop).
  void (*add32)(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                std::int64_t n);
  void (*max32)(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                std::int64_t n);
  void (*relu32)(std::uint8_t* dst, const std::uint8_t* a, std::int64_t n);
  void (*deq8to32)(std::uint8_t* dst, const std::uint8_t* a, std::int64_t n);
  void (*add8to32)(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                   std::int64_t n);

  // Pooling row reductions (exec_pool / VEC_ROWSUM32 channel rows).
  /// acc[i] = max(int8(acc[i]), int8(src[i])).
  void (*rowmax8)(std::uint8_t* acc, const std::uint8_t* src, std::int64_t n);
  /// acc[i] += sign_extend(src[i]) (mod 2^32).
  void (*rowadd8_i32)(std::int32_t* acc, const std::uint8_t* src, std::int64_t n);
};

/// "auto", "scalar", "avx2", "neon".
const char* to_string(KernelTier tier);

/// Strict parse of the CLI/env spelling; unknown names raise
/// Error(kInvalidArgument) listing the accepted values.
KernelTier tier_from_string(std::string_view text);

/// Whether `tier` can run on this host (kAuto and kScalar always can; kAvx2
/// additionally needs the CPUID probe to pass, kNeon an aarch64 build).
bool tier_available(KernelTier tier);

/// Every concrete tier this host can run, scalar first — the differential
/// test suite and the microbenchmarks iterate this.
std::vector<KernelTier> available_tiers();

/// Resolves a requested tier to a concrete one: kAuto honors the strict
/// CIMFLOW_KERNELS override and otherwise picks the best available tier;
/// explicit requests are validated (an unavailable tier raises
/// Error(kInvalidArgument) naming the knob that asked for it).
KernelTier resolve_tier(KernelTier requested);

/// The registered table of a concrete, available tier (resolve first).
const KernelTable& kernel_table(KernelTier tier);

/// Per-TU tier tables: nullptr when the translation unit was not compiled
/// for the ISA (the stub keeps the link portable; availability additionally
/// gates on the runtime probe).
const KernelTable* avx2_table();
const KernelTable* neon_table();

// ---------------------------------------------------------------------------
// Shared scalar bodies. The scalar table is built from these, and the SIMD
// translation units reuse them for ragged tails — one definition guarantees
// tails and the scalar tier can never drift apart.
// ---------------------------------------------------------------------------

inline std::int32_t scalar_load_le32(const std::uint8_t* p) {
  return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
      (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24));
}

inline void scalar_store_le32(std::uint8_t* p, std::int32_t value) {
  const auto v = static_cast<std::uint32_t>(value);
  p[0] = static_cast<std::uint8_t>(v & 0xFF);
  p[1] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
  p[2] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
  p[3] = static_cast<std::uint8_t>((v >> 24) & 0xFF);
}

inline void scalar_add8(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                        std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(
        saturate_int8(static_cast<std::int32_t>(static_cast<std::int8_t>(a[i])) +
                      static_cast<std::int8_t>(b[i])));
  }
}

inline void scalar_sub8(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                        std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(
        saturate_int8(static_cast<std::int32_t>(static_cast<std::int8_t>(a[i])) -
                      static_cast<std::int8_t>(b[i])));
  }
}

inline void scalar_max8(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                        std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const auto x = static_cast<std::int8_t>(a[i]);
    const auto y = static_cast<std::int8_t>(b[i]);
    dst[i] = static_cast<std::uint8_t>(x > y ? x : y);
  }
}

inline void scalar_min8(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                        std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const auto x = static_cast<std::int8_t>(a[i]);
    const auto y = static_cast<std::int8_t>(b[i]);
    dst[i] = static_cast<std::uint8_t>(x < y ? x : y);
  }
}

inline void scalar_relu8(std::uint8_t* dst, const std::uint8_t* a, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const auto x = static_cast<std::int8_t>(a[i]);
    dst[i] = static_cast<std::uint8_t>(x > 0 ? x : std::int8_t{0});
  }
}

inline void scalar_quant(std::uint8_t* dst, const std::uint8_t* a, std::int64_t n,
                         int shift, std::int32_t zero) {
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t acc = scalar_load_le32(a + 4 * i);
    dst[i] = static_cast<std::uint8_t>(
        saturate_int8(rounding_shift_right(acc, shift) + zero));
  }
}

inline void scalar_add32(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                         std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    scalar_store_le32(dst + 4 * i,
                      static_cast<std::int32_t>(
                          static_cast<std::uint32_t>(scalar_load_le32(a + 4 * i)) +
                          static_cast<std::uint32_t>(scalar_load_le32(b + 4 * i))));
  }
}

inline void scalar_max32(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                         std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t x = scalar_load_le32(a + 4 * i);
    const std::int32_t y = scalar_load_le32(b + 4 * i);
    scalar_store_le32(dst + 4 * i, x > y ? x : y);
  }
}

inline void scalar_relu32(std::uint8_t* dst, const std::uint8_t* a, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t x = scalar_load_le32(a + 4 * i);
    scalar_store_le32(dst + 4 * i, x > 0 ? x : 0);
  }
}

inline void scalar_deq8to32(std::uint8_t* dst, const std::uint8_t* a, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    scalar_store_le32(dst + 4 * i, static_cast<std::int8_t>(a[i]));
  }
}

inline void scalar_add8to32(std::uint8_t* dst, const std::uint8_t* a,
                            const std::uint8_t* b, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    scalar_store_le32(
        dst + 4 * i,
        static_cast<std::int32_t>(
            static_cast<std::uint32_t>(scalar_load_le32(a + 4 * i)) +
            static_cast<std::uint32_t>(
                static_cast<std::int32_t>(static_cast<std::int8_t>(b[i])))));
  }
}

inline void scalar_rowmax8(std::uint8_t* acc, const std::uint8_t* src, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const auto cur = static_cast<std::int8_t>(acc[i]);
    const auto v = static_cast<std::int8_t>(src[i]);
    if (v > cur) acc[i] = src[i];
  }
}

inline void scalar_rowadd8_i32(std::int32_t* acc, const std::uint8_t* src,
                               std::int64_t n) {
  auto* uacc = reinterpret_cast<std::uint32_t*>(acc);
  for (std::int64_t i = 0; i < n; ++i) {
    uacc[i] += static_cast<std::uint32_t>(
        static_cast<std::int32_t>(static_cast<std::int8_t>(src[i])));
  }
}

}  // namespace cimflow::sim::kernels
