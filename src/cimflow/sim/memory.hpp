// Program-image residency for the simulator (ROADMAP "simulator memory").
//
// A functional simulation used to copy the whole program global image
// (weights, LUTs, staging area — hundreds of MB for VGG19) into every
// Simulator::Impl, so an N-way concurrent sweep kept N full copies resident.
// GlobalImage replaces the copy with a borrow: the program's image is an
// immutable base shared by every simulator running that program, and each
// simulator materializes only the 64 KB pages it actually writes
// (copy-on-write). Weight pages are never written, so sweep memory grows with
// the activation/staging footprint, not with the weight image times the
// simulator count.
//
// Concurrency contract (what the parallel event scheduler relies on):
//   * the base is never written through this class;
//   * concurrent reads are always safe;
//   * concurrent writes are safe when they target distinct bytes — the page
//     table publishes freshly materialized pages atomically, so two cores
//     writing disjoint addresses of the same page do not race;
//   * writes racing reads of the SAME byte are a program bug (compiled
//     programs order cross-core global traffic with stage barriers), exactly
//     as they were under the serial kernel.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

namespace cimflow::sim {

/// Cache-line / vector-width alignment for the simulator's bulk buffers: the
/// SIMD kernel tiers tolerate unaligned operands, but 64-byte-aligned bases
/// make aligned accesses the dominant case (and keep hot rows from splitting
/// cache lines).
inline constexpr std::size_t kBufferAlignBytes = 64;

/// Zero-initialized bulk storage for per-core architectural state (local
/// scratchpads, CIM weight arrays). `reset_zeroed` hands back fresh
/// calloc-backed memory instead of memset-ing a vector: a large allocation
/// comes straight from a fresh anonymous mapping, which the kernel already
/// guarantees zero — so resetting a 64-core chip costs O(pages actually
/// touched by the program), not O(total capacity). On a sweep of short
/// simulations the old eager zeroing of ~64 MB of scratchpads per run WAS
/// the dominant cost. data() is 64-byte aligned: calloc keeps the zero-page
/// trick (aligned_alloc+memset would reintroduce the eager-zeroing cost), so
/// alignment comes from over-allocating kBufferAlignBytes-1 slack and
/// rounding the base pointer up.
class ZeroedBuffer {
 public:
  /// Replaces the contents with `n` zero bytes (previous storage released).
  /// Throws std::bad_alloc on failure, matching the vector it replaced.
  void reset_zeroed(std::size_t n) {
    raw_.reset(n == 0 ? nullptr
                      : static_cast<std::uint8_t*>(
                            std::calloc(n + kBufferAlignBytes - 1, 1)));
    if (n != 0 && raw_ == nullptr) throw std::bad_alloc();
    data_ = align_up(raw_.get());
    size_ = n;
  }
  void clear() {
    raw_.reset();
    data_ = nullptr;
    size_ = 0;
  }
  std::uint8_t* data() noexcept { return data_; }
  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  std::uint8_t& operator[](std::size_t i) noexcept { return data_[i]; }
  std::uint8_t operator[](std::size_t i) const noexcept { return data_[i]; }

 private:
  static std::uint8_t* align_up(std::uint8_t* p) noexcept {
    if (p == nullptr) return nullptr;
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    return p + ((kBufferAlignBytes - addr % kBufferAlignBytes) % kBufferAlignBytes);
  }
  struct FreeDeleter {
    void operator()(std::uint8_t* p) const noexcept { std::free(p); }
  };
  std::unique_ptr<std::uint8_t[], FreeDeleter> raw_;
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Grow-only 64-byte-aligned scratch for the hot-path kernels (the MVM
/// accumulator row, pooling channel rows, the reference-path bounce buffer).
/// `ensure` returns a pointer with capacity for at least `n` elements;
/// contents are unspecified after growth — every caller fully initializes
/// the elements it uses. Replaces the std::vector scratch members so the
/// vector tiers start from aligned bases without a per-call copy.
template <typename T>
class AlignedBuffer {
 public:
  T* ensure(std::size_t n) {
    if (n > capacity_) {
      // Grow-only with the vector's usual doubling so ensure() stays O(1)
      // amortized across the monotone ramp of kernel widths in a program.
      std::size_t want = capacity_ == 0 ? std::size_t{64} : capacity_ * 2;
      if (want < n) want = n;
      const std::size_t bytes =
          (want * sizeof(T) + kBufferAlignBytes - 1) / kBufferAlignBytes *
          kBufferAlignBytes;
      data_.reset(static_cast<T*>(std::aligned_alloc(kBufferAlignBytes, bytes)));
      if (data_ == nullptr) throw std::bad_alloc();
      capacity_ = want;
    }
    return data_.get();
  }
  void clear() {
    data_.reset();
    capacity_ = 0;
  }
  T* data() noexcept { return data_.get(); }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct FreeDeleter {
    void operator()(T* p) const noexcept { std::free(p); }
  };
  std::unique_ptr<T, FreeDeleter> data_;
  std::size_t capacity_ = 0;
};

class GlobalImage {
 public:
  /// Pages are the copy-on-write granule: big enough that page-table walks
  /// are cheap, small enough that a written staging region does not drag
  /// whole weight megabytes into the overlay.
  static constexpr std::int64_t kPageBytes = std::int64_t{1} << 16;

  GlobalImage() = default;
  GlobalImage(const GlobalImage&) = delete;
  GlobalImage& operator=(const GlobalImage&) = delete;

  /// Rebinds to `base` (borrowed, not copied) and drops any overlay from a
  /// previous run. `owner`, when set, keeps the storage behind `base` alive
  /// for the lifetime of this binding (e.g. the DSE engine's shared compiled
  /// program); when null the caller guarantees `base` outlives the binding.
  /// Not thread-safe: called between runs, never during one.
  void bind(const std::vector<std::uint8_t>* base, std::shared_ptr<const void> owner);

  /// Logical image size: the base plus any extension from ensure_size().
  std::int64_t size() const noexcept { return size_; }

  /// Grows the logical size (zero-filled beyond the base) — input staging for
  /// batches whose images extend past the compiled image. Setup-time only,
  /// not thread-safe against concurrent access.
  void ensure_size(std::int64_t bytes);

  std::uint8_t load_u8(std::int64_t addr) const;
  void store_u8(std::int64_t addr, std::uint8_t value);
  void read_bytes(std::int64_t addr, std::int64_t len, std::uint8_t* out) const;
  void write_bytes(std::int64_t addr, const std::uint8_t* src, std::int64_t len);

  // --- span pinning (the simulator's pointer-resolved kernels) --------------
  //
  // Resolves [addr, addr+len) to one contiguous pointer so per-element loops
  // run over raw memory instead of per-byte routed accesses. Returns nullptr
  // when no contiguous view exists — the caller falls back to the byte path
  // (read_bytes/write_bytes), which handles every layout. `len` must be > 0
  // and in range (callers bounds-check first, as for read_bytes).
  //
  // A read span resolves when the range lies in a single materialized page,
  // or entirely in the base with no overlapping page materialized (the same
  // view read_bytes would copy from). A write span resolves only within a
  // single page — page_for_write materializes it — because two overlay pages
  // are never contiguous. Thread-safety matches the byte path: the returned
  // pointer is into the page table / base that concurrent cores also use,
  // under the same disjoint-bytes contract.
  const std::uint8_t* span_for_read(std::int64_t addr, std::int64_t len) const;
  std::uint8_t* span_for_write(std::int64_t addr, std::int64_t len);

  /// Residency accounting for tests and bench notes.
  std::int64_t base_bytes() const noexcept { return base_ == nullptr ? 0 : static_cast<std::int64_t>(base_->size()); }
  std::int64_t overlay_bytes() const;

 private:
  const std::uint8_t* page_for_read(std::int64_t page) const;
  std::uint8_t* page_for_write(std::int64_t page);

  const std::vector<std::uint8_t>* base_ = nullptr;
  std::shared_ptr<const void> owner_;
  std::int64_t size_ = 0;

  /// Published page pointers; null = read through the base. Materialization
  /// is serialized by `mu_`; lookups are lock-free acquire loads.
  std::vector<std::atomic<std::uint8_t*>> pages_;
  std::vector<std::unique_ptr<std::uint8_t[]>> owned_pages_;
  mutable std::mutex mu_;
};

}  // namespace cimflow::sim
