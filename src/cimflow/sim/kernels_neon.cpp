// NEON kernel tier (aarch64). NEON is baseline on aarch64 so no per-file
// flags or runtime probe are needed — the guard below is a compile-time ISA
// check only; on any other target the TU becomes a nullptr-returning stub.
//
// Mirrors kernels_avx2.cpp, same bit-exactness rules:
//   * vmlal_s16 widening multiply-accumulates wrap mod 2^32, identical to
//     the scalar tier's uint32 adds (|x*w| <= 16384, no intermediate clip).
//   * Quantization uses the unsigned abs + bias + logical-right-shift trick
//     (exact for shifts in [1, 31], see the AVX2 TU) and vqmovn saturating
//     narrows, which compose to exactly saturate_int8.
//   * 32-bit operands are little-endian byte rows; loading them with vld1q_u8
//     and reinterpreting to s32 gives the right lane values on a
//     little-endian target without ever forming a misaligned int32 pointer.
//   * Ragged tails run the shared scalar bodies from kernels_dispatch.hpp.
#include "cimflow/sim/kernels_dispatch.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace cimflow::sim::kernels {
namespace {

void mvm_accumulate_neon(std::int32_t* acc, const std::uint8_t* in,
                         const std::int8_t* w, std::int64_t rows, std::int64_t cols) {
  std::int64_t j = 0;
  // 16-column blocks, four q-register accumulators held across all rows.
  for (; j + 16 <= cols; j += 16) {
    int32x4_t a0 = vld1q_s32(acc + j);
    int32x4_t a1 = vld1q_s32(acc + j + 4);
    int32x4_t a2 = vld1q_s32(acc + j + 8);
    int32x4_t a3 = vld1q_s32(acc + j + 12);
    for (std::int64_t i = 0; i < rows; ++i) {
      const auto x = static_cast<std::int8_t>(in[i]);
      if (x == 0) continue;  // zero input row adds nothing — keep the skip
      const int8x16_t wrow = vld1q_s8(w + i * cols + j);
      const int16x8_t w_lo = vmovl_s8(vget_low_s8(wrow));
      const int16x8_t w_hi = vmovl_s8(vget_high_s8(wrow));
      const int16x4_t xd = vdup_n_s16(x);
      a0 = vmlal_s16(a0, vget_low_s16(w_lo), xd);
      a1 = vmlal_s16(a1, vget_high_s16(w_lo), xd);
      a2 = vmlal_s16(a2, vget_low_s16(w_hi), xd);
      a3 = vmlal_s16(a3, vget_high_s16(w_hi), xd);
    }
    vst1q_s32(acc + j, a0);
    vst1q_s32(acc + j + 4, a1);
    vst1q_s32(acc + j + 8, a2);
    vst1q_s32(acc + j + 12, a3);
  }
  if (j < cols) {
    // Ragged column tail (< 16): the scalar row-major loop over the slice.
    auto* uacc = reinterpret_cast<std::uint32_t*>(acc);
    for (std::int64_t i = 0; i < rows; ++i) {
      const std::int32_t x = static_cast<std::int8_t>(in[i]);
      if (x == 0) continue;
      const std::int8_t* row = w + i * cols;
      for (std::int64_t c = j; c < cols; ++c) {
        uacc[c] += static_cast<std::uint32_t>(x * static_cast<std::int32_t>(row[c]));
      }
    }
  }
}

void add8_neon(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
               std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int8x16_t va = vreinterpretq_s8_u8(vld1q_u8(a + i));
    const int8x16_t vb = vreinterpretq_s8_u8(vld1q_u8(b + i));
    vst1q_u8(dst + i, vreinterpretq_u8_s8(vqaddq_s8(va, vb)));
  }
  scalar_add8(dst + i, a + i, b + i, n - i);
}

void sub8_neon(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
               std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int8x16_t va = vreinterpretq_s8_u8(vld1q_u8(a + i));
    const int8x16_t vb = vreinterpretq_s8_u8(vld1q_u8(b + i));
    vst1q_u8(dst + i, vreinterpretq_u8_s8(vqsubq_s8(va, vb)));
  }
  scalar_sub8(dst + i, a + i, b + i, n - i);
}

void max8_neon(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
               std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int8x16_t va = vreinterpretq_s8_u8(vld1q_u8(a + i));
    const int8x16_t vb = vreinterpretq_s8_u8(vld1q_u8(b + i));
    vst1q_u8(dst + i, vreinterpretq_u8_s8(vmaxq_s8(va, vb)));
  }
  scalar_max8(dst + i, a + i, b + i, n - i);
}

void min8_neon(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
               std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int8x16_t va = vreinterpretq_s8_u8(vld1q_u8(a + i));
    const int8x16_t vb = vreinterpretq_s8_u8(vld1q_u8(b + i));
    vst1q_u8(dst + i, vreinterpretq_u8_s8(vminq_s8(va, vb)));
  }
  scalar_min8(dst + i, a + i, b + i, n - i);
}

void relu8_neon(std::uint8_t* dst, const std::uint8_t* a, std::int64_t n) {
  std::int64_t i = 0;
  const int8x16_t zero = vdupq_n_s8(0);
  for (; i + 16 <= n; i += 16) {
    const int8x16_t va = vreinterpretq_s8_u8(vld1q_u8(a + i));
    vst1q_u8(dst + i, vreinterpretq_u8_s8(vmaxq_s8(va, zero)));
  }
  scalar_relu8(dst + i, a + i, n - i);
}

int32x4_t quant_shift_neon(int32x4_t v, uint32x4_t vround, int32x4_t vshift,
                           int32x4_t vzp) {
  const uint32x4_t neg = vcltq_s32(v, vdupq_n_s32(0));
  // |v| as uint32 (abs of INT32_MIN wraps to exactly 2^31 unsigned), + bias
  // < 2^32, then a logical right shift — equal to the scalar int64 rounding
  // shift for every int32 input when 1 <= shift <= 31.
  const uint32x4_t av = vreinterpretq_u32_s32(vabsq_s32(v));
  const uint32x4_t t = vshlq_u32(vaddq_u32(av, vround), vshift);
  const int32x4_t ts = vreinterpretq_s32_u32(t);  // < 2^31, non-negative
  const int32x4_t r = vbslq_s32(neg, vnegq_s32(ts), ts);
  return vaddq_s32(r, vzp);
}

void quant_neon(std::uint8_t* dst, const std::uint8_t* a, std::int64_t n, int shift,
                std::int32_t zero) {
  if (shift < 1 || shift > 31) return scalar_quant(dst, a, n, shift, zero);
  const uint32x4_t vround = vdupq_n_u32(std::uint32_t{1} << (shift - 1));
  const int32x4_t vshift = vdupq_n_s32(-shift);  // negative count = right shift
  const int32x4_t vzp = vdupq_n_s32(zero);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int32x4_t v0 = vreinterpretq_s32_u8(vld1q_u8(a + 4 * i));
    const int32x4_t v1 = vreinterpretq_s32_u8(vld1q_u8(a + 4 * i + 16));
    const int32x4_t r0 = quant_shift_neon(v0, vround, vshift, vzp);
    const int32x4_t r1 = quant_shift_neon(v1, vround, vshift, vzp);
    // Saturating int32 -> int16 -> int8 narrows compose to saturate_int8.
    const int16x8_t p16 = vcombine_s16(vqmovn_s32(r0), vqmovn_s32(r1));
    const int8x8_t p8 = vqmovn_s16(p16);
    vst1_u8(dst + i, vreinterpret_u8_s8(p8));
  }
  scalar_quant(dst + i, a + 4 * i, n - i, shift, zero);
}

void add32_neon(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int32x4_t va = vreinterpretq_s32_u8(vld1q_u8(a + 4 * i));
    const int32x4_t vb = vreinterpretq_s32_u8(vld1q_u8(b + 4 * i));
    vst1q_u8(dst + 4 * i, vreinterpretq_u8_s32(vaddq_s32(va, vb)));
  }
  scalar_add32(dst + 4 * i, a + 4 * i, b + 4 * i, n - i);
}

void max32_neon(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int32x4_t va = vreinterpretq_s32_u8(vld1q_u8(a + 4 * i));
    const int32x4_t vb = vreinterpretq_s32_u8(vld1q_u8(b + 4 * i));
    vst1q_u8(dst + 4 * i, vreinterpretq_u8_s32(vmaxq_s32(va, vb)));
  }
  scalar_max32(dst + 4 * i, a + 4 * i, b + 4 * i, n - i);
}

void relu32_neon(std::uint8_t* dst, const std::uint8_t* a, std::int64_t n) {
  std::int64_t i = 0;
  const int32x4_t zero = vdupq_n_s32(0);
  for (; i + 4 <= n; i += 4) {
    const int32x4_t va = vreinterpretq_s32_u8(vld1q_u8(a + 4 * i));
    vst1q_u8(dst + 4 * i, vreinterpretq_u8_s32(vmaxq_s32(va, zero)));
  }
  scalar_relu32(dst + 4 * i, a + 4 * i, n - i);
}

void deq8to32_neon(std::uint8_t* dst, const std::uint8_t* a, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int16x8_t w = vmovl_s8(vreinterpret_s8_u8(vld1_u8(a + i)));
    vst1q_u8(dst + 4 * i, vreinterpretq_u8_s32(vmovl_s16(vget_low_s16(w))));
    vst1q_u8(dst + 4 * i + 16, vreinterpretq_u8_s32(vmovl_s16(vget_high_s16(w))));
  }
  scalar_deq8to32(dst + 4 * i, a + i, n - i);
}

void add8to32_neon(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                   std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int32x4_t a0 = vreinterpretq_s32_u8(vld1q_u8(a + 4 * i));
    const int32x4_t a1 = vreinterpretq_s32_u8(vld1q_u8(a + 4 * i + 16));
    const int16x8_t w = vmovl_s8(vreinterpret_s8_u8(vld1_u8(b + i)));
    vst1q_u8(dst + 4 * i,
             vreinterpretq_u8_s32(vaddq_s32(a0, vmovl_s16(vget_low_s16(w)))));
    vst1q_u8(dst + 4 * i + 16,
             vreinterpretq_u8_s32(vaddq_s32(a1, vmovl_s16(vget_high_s16(w)))));
  }
  scalar_add8to32(dst + 4 * i, a + 4 * i, b + i, n - i);
}

void rowmax8_neon(std::uint8_t* acc, const std::uint8_t* src, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int8x16_t va = vreinterpretq_s8_u8(vld1q_u8(acc + i));
    const int8x16_t vs = vreinterpretq_s8_u8(vld1q_u8(src + i));
    vst1q_u8(acc + i, vreinterpretq_u8_s8(vmaxq_s8(va, vs)));
  }
  scalar_rowmax8(acc + i, src + i, n - i);
}

void rowadd8_i32_neon(std::int32_t* acc, const std::uint8_t* src, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int32x4_t a0 = vld1q_s32(acc + i);
    const int32x4_t a1 = vld1q_s32(acc + i + 4);
    const int16x8_t w = vmovl_s8(vreinterpret_s8_u8(vld1_u8(src + i)));
    vst1q_s32(acc + i, vaddq_s32(a0, vmovl_s16(vget_low_s16(w))));
    vst1q_s32(acc + i + 4, vaddq_s32(a1, vmovl_s16(vget_high_s16(w))));
  }
  scalar_rowadd8_i32(acc + i, src + i, n - i);
}

const KernelTable kNeonTable = {
    &mvm_accumulate_neon,
    &add8_neon,
    &sub8_neon,
    &max8_neon,
    &min8_neon,
    &relu8_neon,
    &quant_neon,
    &add32_neon,
    &max32_neon,
    &relu32_neon,
    &deq8to32_neon,
    &add8to32_neon,
    &rowmax8_neon,
    &rowadd8_i32_neon,
};

}  // namespace

const KernelTable* neon_table() { return &kNeonTable; }

}  // namespace cimflow::sim::kernels

#else  // not an aarch64 NEON target — dispatch skips the tier.

namespace cimflow::sim::kernels {
const KernelTable* neon_table() { return nullptr; }
}  // namespace cimflow::sim::kernels

#endif
