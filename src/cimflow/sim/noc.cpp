#include "cimflow/sim/noc.hpp"

#include <algorithm>

#include "cimflow/support/numeric.hpp"
#include "cimflow/support/status.hpp"

namespace cimflow::sim {
namespace {
// Direction encoding for directed mesh links.
enum Dir { kEast = 0, kWest = 1, kSouth = 2, kNorth = 3, kDirCount = 4 };
}  // namespace

Noc::Noc(const arch::ArchConfig& arch, const arch::EnergyModel& energy)
    : arch_(&arch), energy_(&energy) {
  links_.resize(static_cast<std::size_t>(arch.chip().core_count) * kDirCount);
}

void Noc::reset() {
  for (Link& link : links_) link.next_free = 0;
  energy_pj_ = 0;
  flit_hops_ = 0;
  last_stall_ = 0;
}

std::int64_t Noc::node_x(std::int64_t node) const {
  if (node < 0) return (-node - 1) % arch_->chip().mesh_cols;  // bank column
  return arch_->core_x(node);
}

std::int64_t Noc::node_y(std::int64_t node) const {
  return node < 0 ? 0 : arch_->core_y(node);
}

std::size_t Noc::link_index(std::int64_t x, std::int64_t y, int dir) const {
  const std::int64_t node = y * arch_->chip().mesh_cols + x;
  return static_cast<std::size_t>(node) * kDirCount + static_cast<std::size_t>(dir);
}

std::int64_t Noc::transfer(std::int64_t src, std::int64_t dst, std::int64_t bytes,
                           std::int64_t depart) {
  CIMFLOW_CHECK(bytes >= 0, "negative transfer size");
  if (bytes == 0) bytes = 1;
  const std::int64_t flits = ceil_div(bytes, arch_->chip().noc_flit_bytes);
  const std::int64_t router = arch_->chip().noc_router_latency;

  std::int64_t x = node_x(src);
  std::int64_t y = node_y(src);
  const std::int64_t dx = node_x(dst);
  const std::int64_t dy = node_y(dst);

  // XY routing: wormhole pipelining means the head flit pays router latency
  // per hop while the body streams behind; each traversed link is reserved
  // for `flits` cycles, providing contention back-pressure.
  std::int64_t head = depart;
  std::int64_t hops = 0;
  auto traverse = [&](int dir) {
    Link& link = links_[link_index(x, y, dir)];
    head = std::max(head + router, link.next_free);
    link.next_free = head + flits;
    ++hops;
  };
  while (x != dx) {
    const int dir = x < dx ? kEast : kWest;
    traverse(dir);
    x += (dir == kEast) ? 1 : -1;
  }
  while (y != dy) {
    const int dir = y < dy ? kSouth : kNorth;
    traverse(dir);
    y += (dir == kSouth) ? 1 : -1;
  }
  if (hops == 0) {
    // Local loopback through the router.
    head = depart + router;
    hops = 1;
  }
  flit_hops_ += flits * hops;
  energy_pj_ += energy_->noc_pj(bytes, hops);
  // How much later the tail lands than a contention-free traversal of the
  // same route — surfaced as the timeline's noc_contention instants.
  last_stall_ = std::max<std::int64_t>(0, head + flits - (depart + router * hops + flits));
  return head + flits;  // tail arrival
}

}  // namespace cimflow::sim
