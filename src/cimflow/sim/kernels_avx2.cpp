// AVX2 kernel tier. This translation unit is the only one compiled with
// -mavx2 (per-file flag in CMakeLists.txt), and its functions are reached
// only through the dispatch table after the runtime CPUID probe passes — the
// binary stays runnable on baseline x86-64 hosts. Without the flag (or on a
// non-x86 toolchain) the TU compiles to a nullptr-returning stub.
//
// Bit-exactness notes (the invariant every trick below preserves):
//   * All 32-bit accumulation is wraparound (_mm256_add_epi32 == the scalar
//     tier's uint32 adds, mod 2^32).
//   * The MVM deliberately avoids _mm256_maddubs_epi16: its adjacent-pair
//     sums saturate at int16, which would silently clip |x0*w + x1*w'| >
//     32767 and break byte-identity with the scalar tier. Instead both
//     operands are sign-extended to int16 and row pairs go through
//     _mm256_madd_epi16, whose pairwise int32 sums cannot overflow
//     (|product| <= 128*128).
//   * Quantization reproduces rounding_shift_right exactly: |value| and the
//     rounding bias fit uint32 for shifts in [1, 31] (|value| <= 2^31, bias
//     <= 2^30), so an unsigned add + logical shift equals the scalar int64
//     computation; shifts outside that window take the shared scalar body.
//   * Ragged tails always run the shared scalar bodies from
//     kernels_dispatch.hpp — tails and the scalar tier are the same code.
//
// All loads/stores are unaligned-tolerant (loadu/storeu): the 64-byte-aligned
// buffers make aligned addresses the dominant case, and on AVX2 hardware
// loadu on an aligned address costs the same as an aligned load — while the
// kernels stay correct for page-offset operand windows.
#include "cimflow/sim/kernels_dispatch.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace cimflow::sim::kernels {
namespace {

void mvm_accumulate_avx2(std::int32_t* acc, const std::uint8_t* in,
                         const std::int8_t* w, std::int64_t rows, std::int64_t cols) {
  std::int64_t j = 0;
  // 32-column blocks first: four ymm accumulators stay register-resident
  // across the WHOLE row loop, so accumulator memory traffic is once per
  // block instead of once per row — that, not the multiplies, is what the
  // auto-vectorized scalar loop pays for on wide tiles. The doubled block
  // also halves the per-row broadcast/branch overhead of the 16-col loop.
  for (; j + 32 <= cols; j += 32) {
    __m256i acc0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j));
    __m256i acc1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j + 8));
    __m256i acc2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j + 16));
    __m256i acc3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j + 24));
    std::int64_t i = 0;
    for (; i + 2 <= rows; i += 2) {
      const auto x0 = static_cast<std::int8_t>(in[i]);
      const auto x1 = static_cast<std::int8_t>(in[i + 1]);
      if (x0 == 0 && x1 == 0) continue;  // both rows add nothing — skip the pair
      const __m256i xpair = _mm256_set1_epi32(
          static_cast<std::int32_t>((static_cast<std::uint32_t>(
                                         static_cast<std::uint16_t>(x1))
                                     << 16) |
                                    static_cast<std::uint16_t>(x0)));
      const __m128i w0a =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i * cols + j));
      const __m128i w1a =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + (i + 1) * cols + j));
      const __m128i w0b =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i * cols + j + 16));
      const __m128i w1b = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(w + (i + 1) * cols + j + 16));
      acc0 = _mm256_add_epi32(
          acc0, _mm256_madd_epi16(
                    _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(w0a, w1a)), xpair));
      acc1 = _mm256_add_epi32(
          acc1, _mm256_madd_epi16(
                    _mm256_cvtepi8_epi16(_mm_unpackhi_epi8(w0a, w1a)), xpair));
      acc2 = _mm256_add_epi32(
          acc2, _mm256_madd_epi16(
                    _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(w0b, w1b)), xpair));
      acc3 = _mm256_add_epi32(
          acc3, _mm256_madd_epi16(
                    _mm256_cvtepi8_epi16(_mm_unpackhi_epi8(w0b, w1b)), xpair));
    }
    if (i < rows) {  // odd last row: pair it with a zero row (no OOB load)
      const auto x = static_cast<std::int8_t>(in[i]);
      if (x != 0) {
        const __m256i xpair = _mm256_set1_epi32(static_cast<std::uint16_t>(x));
        const __m128i zero = _mm_setzero_si128();
        const __m128i w0a =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i * cols + j));
        const __m128i w0b = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(w + i * cols + j + 16));
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(
                      _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(w0a, zero)), xpair));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(
                      _mm256_cvtepi8_epi16(_mm_unpackhi_epi8(w0a, zero)), xpair));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(
                      _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(w0b, zero)), xpair));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_madd_epi16(
                      _mm256_cvtepi8_epi16(_mm_unpackhi_epi8(w0b, zero)), xpair));
      }
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + j), acc0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + j + 8), acc1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + j + 16), acc2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + j + 24), acc3);
  }
  // 16-column block for the [cols%32 >= 16] remainder — same scheme, half
  // the accumulators.
  for (; j + 16 <= cols; j += 16) {
    __m256i acc_lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j));
    __m256i acc_hi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j + 8));
    std::int64_t i = 0;
    for (; i + 2 <= rows; i += 2) {
      const auto x0 = static_cast<std::int8_t>(in[i]);
      const auto x1 = static_cast<std::int8_t>(in[i + 1]);
      if (x0 == 0 && x1 == 0) continue;  // both rows add nothing — skip the pair
      // One [x0, x1] int16 pair broadcast to every madd lane.
      const __m256i xpair = _mm256_set1_epi32(
          static_cast<std::int32_t>((static_cast<std::uint32_t>(
                                         static_cast<std::uint16_t>(x1))
                                     << 16) |
                                    static_cast<std::uint16_t>(x0)));
      const __m128i w0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i * cols + j));
      const __m128i w1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + (i + 1) * cols + j));
      // Interleave the two weight rows at BYTE granularity, then sign-extend:
      // the int16 pairs land as [w0[c], w1[c]] in natural column order, so
      // madd's pair sums compute x0*w0[c] + x1*w1[c] per column c with no
      // lane-crossing fixup in the loop (a permute here costs the same
      // shuffle port the extends need — it halved the bar this path clears).
      const __m256i lo = _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(w0, w1));
      const __m256i hi = _mm256_cvtepi8_epi16(_mm_unpackhi_epi8(w0, w1));
      acc_lo = _mm256_add_epi32(acc_lo, _mm256_madd_epi16(lo, xpair));
      acc_hi = _mm256_add_epi32(acc_hi, _mm256_madd_epi16(hi, xpair));
    }
    if (i < rows) {  // odd last row: pair it with a zero row (no OOB load)
      const auto x = static_cast<std::int8_t>(in[i]);
      if (x != 0) {
        const __m256i xpair = _mm256_set1_epi32(static_cast<std::uint16_t>(x));
        const __m128i w0 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i * cols + j));
        const __m128i zero = _mm_setzero_si128();
        const __m256i lo = _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(w0, zero));
        const __m256i hi = _mm256_cvtepi8_epi16(_mm_unpackhi_epi8(w0, zero));
        acc_lo = _mm256_add_epi32(acc_lo, _mm256_madd_epi16(lo, xpair));
        acc_hi = _mm256_add_epi32(acc_hi, _mm256_madd_epi16(hi, xpair));
      }
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + j), acc_lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + j + 8), acc_hi);
  }
  if (j < cols) {
    // Ragged column tail (< 16): the scalar row-major loop over the slice.
    auto* uacc = reinterpret_cast<std::uint32_t*>(acc);
    for (std::int64_t i = 0; i < rows; ++i) {
      const std::int32_t x = static_cast<std::int8_t>(in[i]);
      if (x == 0) continue;
      const std::int8_t* row = w + i * cols;
      for (std::int64_t c = j; c < cols; ++c) {
        uacc[c] += static_cast<std::uint32_t>(x * static_cast<std::int32_t>(row[c]));
      }
    }
  }
}

void add8_avx2(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
               std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_adds_epi8(va, vb));
  }
  scalar_add8(dst + i, a + i, b + i, n - i);
}

void sub8_avx2(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
               std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_subs_epi8(va, vb));
  }
  scalar_sub8(dst + i, a + i, b + i, n - i);
}

void max8_avx2(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
               std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_max_epi8(va, vb));
  }
  scalar_max8(dst + i, a + i, b + i, n - i);
}

void min8_avx2(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
               std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_min_epi8(va, vb));
  }
  scalar_min8(dst + i, a + i, b + i, n - i);
}

void relu8_avx2(std::uint8_t* dst, const std::uint8_t* a, std::int64_t n) {
  std::int64_t i = 0;
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 32 <= n; i += 32) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_max_epi8(va, zero));
  }
  scalar_relu8(dst + i, a + i, n - i);
}

void quant_avx2(std::uint8_t* dst, const std::uint8_t* a, std::int64_t n, int shift,
                std::int32_t zero) {
  if (shift < 1 || shift > 31) return scalar_quant(dst, a, n, shift, zero);
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vround = _mm256_set1_epi32(std::int32_t{1} << (shift - 1));
  const __m256i vzp = _mm256_set1_epi32(zero);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * i));
    const __m256i neg = _mm256_cmpgt_epi32(vzero, v);
    // |v| as uint32 (abs of INT32_MIN wraps to exactly 2^31 — still correct
    // unsigned), + bias <= 2^31 + 2^30 < 2^32, then a LOGICAL shift: equal to
    // the scalar int64 (value + round) >> shift for every int32 input.
    const __m256i av = _mm256_abs_epi32(v);
    const __m256i t = _mm256_srli_epi32(_mm256_add_epi32(av, vround), shift);
    const __m256i tneg = _mm256_sub_epi32(vzero, t);
    const __m256i shifted = _mm256_blendv_epi8(t, tneg, neg);
    const __m256i r = _mm256_add_epi32(shifted, vzp);
    // Saturating int32 -> int16 -> int8 narrows compose to the exact
    // saturate_int8 clamp; 128-bit packs keep the element order.
    const __m128i lo = _mm256_castsi256_si128(r);
    const __m128i hi = _mm256_extracti128_si256(r, 1);
    const __m128i p16 = _mm_packs_epi32(lo, hi);
    const __m128i p8 = _mm_packs_epi16(p16, p16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i), p8);
  }
  scalar_quant(dst + i, a + 4 * i, n - i, shift, zero);
}

void add32_avx2(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 4 * i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 4 * i),
                        _mm256_add_epi32(va, vb));
  }
  scalar_add32(dst + 4 * i, a + 4 * i, b + 4 * i, n - i);
}

void max32_avx2(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 4 * i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 4 * i),
                        _mm256_max_epi32(va, vb));
  }
  scalar_max32(dst + 4 * i, a + 4 * i, b + 4 * i, n - i);
}

void relu32_avx2(std::uint8_t* dst, const std::uint8_t* a, std::int64_t n) {
  std::int64_t i = 0;
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 8 <= n; i += 8) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 4 * i),
                        _mm256_max_epi32(va, zero));
  }
  scalar_relu32(dst + 4 * i, a + 4 * i, n - i);
}

void deq8to32_avx2(std::uint8_t* dst, const std::uint8_t* a, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i b8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 4 * i),
                        _mm256_cvtepi8_epi32(b8));
  }
  scalar_deq8to32(dst + 4 * i, a + i, n - i);
}

void add8to32_avx2(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                   std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * i));
    const __m128i b8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 4 * i),
                        _mm256_add_epi32(va, _mm256_cvtepi8_epi32(b8)));
  }
  scalar_add8to32(dst + 4 * i, a + 4 * i, b + i, n - i);
}

void rowmax8_avx2(std::uint8_t* acc, const std::uint8_t* src, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i vs = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), _mm256_max_epi8(va, vs));
  }
  scalar_rowmax8(acc + i, src + i, n - i);
}

void rowadd8_i32_avx2(std::int32_t* acc, const std::uint8_t* src, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m128i s8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_add_epi32(va, _mm256_cvtepi8_epi32(s8)));
  }
  scalar_rowadd8_i32(acc + i, src + i, n - i);
}

const KernelTable kAvx2Table = {
    &mvm_accumulate_avx2,
    &add8_avx2,
    &sub8_avx2,
    &max8_avx2,
    &min8_avx2,
    &relu8_avx2,
    &quant_avx2,
    &add32_avx2,
    &max32_avx2,
    &relu32_avx2,
    &deq8to32_avx2,
    &add8to32_avx2,
    &rowmax8_avx2,
    &rowadd8_i32_avx2,
};

}  // namespace

const KernelTable* avx2_table() { return &kAvx2Table; }

}  // namespace cimflow::sim::kernels

#else  // !__AVX2__ — toolchain could not target AVX2; dispatch skips the tier.

namespace cimflow::sim::kernels {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace cimflow::sim::kernels

#endif
