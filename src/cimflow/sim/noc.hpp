// Mesh NoC model: XY routing, per-link wormhole serialization with
// next-free-time contention, and flit-hop energy (calibrated against Noxim
// in the paper; see DESIGN.md for the approximation notes).
//
// The model is order-sensitive: each transfer reserves links against their
// next-free times, so contention depends on the service order. The event
// scheduler guarantees transfers are issued in strict global-time order
// (event key (time, core, program order)), which makes link contention exact
// — there is no batching window that could serve a later request first.
#pragma once

#include <cstdint>
#include <vector>

#include "cimflow/arch/arch_config.hpp"
#include "cimflow/arch/energy_model.hpp"

namespace cimflow::sim {

class Noc {
 public:
  Noc(const arch::ArchConfig& arch, const arch::EnergyModel& energy);

  /// Routes `bytes` from `src` to `dst` starting at `depart`; returns the
  /// arrival cycle (head latency + serialization + contention) and charges
  /// NoC energy. `src`/`dst` use core ids; negative ids address global-memory
  /// bank controllers along the top mesh edge: id -(1+x) sits at column x.
  std::int64_t transfer(std::int64_t src, std::int64_t dst, std::int64_t bytes,
                        std::int64_t depart);

  /// Node id of global-memory bank `bank`.
  static std::int64_t bank_node(std::int64_t bank) { return -(1 + bank); }

  double energy_pj() const noexcept { return energy_pj_; }
  std::int64_t flit_hops() const noexcept { return flit_hops_; }

  /// Contention stall of the most recent transfer(): cycles its tail arrived
  /// later than an uncontended traversal of the same route. Observability
  /// only (the timeline's noc_contention instants); never feeds timing.
  std::int64_t last_stall() const noexcept { return last_stall_; }

  /// Clears link reservations and energy counters (new simulation run).
  void reset();

 private:
  struct Link {
    std::int64_t next_free = 0;
  };

  std::int64_t node_x(std::int64_t node) const;
  std::int64_t node_y(std::int64_t node) const;
  /// Directed link index from (x,y) toward a neighbor direction.
  std::size_t link_index(std::int64_t x, std::int64_t y, int dir) const;

  const arch::ArchConfig* arch_;
  const arch::EnergyModel* energy_;
  std::vector<Link> links_;
  double energy_pj_ = 0;
  std::int64_t flit_hops_ = 0;
  std::int64_t last_stall_ = 0;
};

}  // namespace cimflow::sim
