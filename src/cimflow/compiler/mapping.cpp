#include "cimflow/compiler/mapping.hpp"

#include "cimflow/support/numeric.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::compiler {

std::pair<std::int64_t, std::int64_t> GroupMapping::stripe(std::int64_t replica) const {
  CIMFLOW_CHECK(replica >= 0 && replica < replicas, "replica index out of range");
  // Vector-only groups carry their output grid in geom too (valid=false but
  // out_h set), so pooling kernels iterate the full row range.
  const std::int64_t rows = geom.out_h > 0 ? geom.out_h : 1;
  const std::int64_t base = rows / replicas;
  const std::int64_t extra = rows % replicas;
  // First `extra` replicas take one extra row so stripes differ by <= 1.
  const std::int64_t begin = replica * base + std::min(replica, extra);
  const std::int64_t size = base + (replica < extra ? 1 : 0);
  return {begin, begin + size};
}

std::pair<std::int64_t, std::int64_t> GroupMapping::col_tile_range(std::int64_t j) const {
  CIMFLOW_CHECK(j >= 0 && j < cores_per_replica, "core index out of range");
  const std::int64_t tiles = geom.valid ? geom.col_tiles : 1;
  const std::int64_t base = tiles / cores_per_replica;
  const std::int64_t extra = tiles % cores_per_replica;
  const std::int64_t begin = j * base + std::min(j, extra);
  const std::int64_t size = base + (j < extra ? 1 : 0);
  return {begin, begin + size};
}

std::pair<std::int64_t, std::int64_t> GroupMapping::channel_range(
    std::int64_t j, const arch::ArchConfig& arch) const {
  const auto [ct0, ct1] = col_tile_range(j);
  if (!geom.valid) return {0, 0};
  const std::int64_t tile_width = geom.depthwise ? geom.dw_block : arch.mg_cols();
  const std::int64_t begin = ct0 * tile_width;
  const std::int64_t end = std::min(geom.k_cols, ct1 * tile_width);
  return {begin, end};
}

std::int64_t StagePlan::cores_used() const noexcept {
  std::int64_t total = 0;
  for (const auto& [group, mapping] : mappings) total += mapping.total_cores();
  return total;
}

std::int64_t MappingPlan::stage_of(graph::GroupId g) const {
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (stages[i].contains(g)) return static_cast<std::int64_t>(i);
  }
  return -1;
}

std::string MappingPlan::summary(const graph::CondensedGraph& cg) const {
  std::string out = strprintf("%s: %zu stage(s), est. %.0f cycles\n", strategy.c_str(),
                              stages.size(), estimated_cycles);
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const StagePlan& stage = stages[s];
    out += strprintf("  stage %zu (%lld cores):\n", s, (long long)stage.cores_used());
    for (graph::GroupId g : stage.groups) {
      const GroupMapping& m = stage.mappings.at(g);
      out += strprintf("    %-28s x%lld replicas, %lld core(s)/replica, %lld pass(es)\n",
                       cg.group(g).name.c_str(), (long long)m.replicas,
                       (long long)m.cores_per_replica, (long long)m.passes);
    }
  }
  return out;
}

}  // namespace cimflow::compiler
