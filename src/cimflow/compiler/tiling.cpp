#include "cimflow/compiler/tiling.hpp"

#include <algorithm>

#include "cimflow/support/numeric.hpp"
#include "cimflow/support/status.hpp"

namespace cimflow::compiler {

std::int64_t TileGeometry::tile_rows(std::int64_t rt, const arch::ArchConfig& arch) const {
  if (depthwise) return k_rows;  // single logical row tile
  const std::int64_t mg_rows = arch.mg_rows();
  const std::int64_t remaining = k_rows - rt * mg_rows;
  return std::min(mg_rows, remaining);
}

std::int64_t TileGeometry::tile_cols(std::int64_t ct, const arch::ArchConfig& arch) const {
  if (depthwise) {
    const std::int64_t remaining = k_cols - ct * dw_block;
    return std::min(dw_block, remaining);
  }
  const std::int64_t mg_cols = arch.mg_cols();
  const std::int64_t remaining = k_cols - ct * mg_cols;
  return std::min(mg_cols, remaining);
}

std::int64_t TileGeometry::tile_channels(std::int64_t ct, const arch::ArchConfig& arch) const {
  return tile_cols(ct, arch);
}

TileGeometry tile_geometry(const graph::Graph& graph, const graph::Group& group,
                           const arch::ArchConfig& arch) {
  TileGeometry geom;
  if (group.anchor == graph::kInvalidNode) return geom;
  const graph::Node& anchor = graph.node(group.anchor);
  const graph::Shape in = graph.node(anchor.inputs.at(0)).out_shape;
  const graph::Shape out = anchor.out_shape;

  geom.out_h = out.h;
  geom.out_w = out.w;
  geom.positions = out.h * out.w;

  switch (anchor.kind) {
    case graph::OpKind::kConv2d: {
      const auto& a = anchor.conv();
      geom.k_rows = a.kernel * a.kernel * in.c;
      geom.k_cols = a.out_channels;
      geom.row_tiles = ceil_div(geom.k_rows, arch.mg_rows());
      geom.col_tiles = ceil_div(geom.k_cols, arch.mg_cols());
      break;
    }
    case graph::OpKind::kDepthwiseConv2d: {
      const auto& a = anchor.conv();
      const std::int64_t taps = a.kernel * a.kernel;
      // Channels per block-diagonal tile: limited by array rows (R*S rows
      // per channel) and by the tile's weight columns.
      geom.depthwise = true;
      geom.dw_block = std::min(arch.mg_rows() / taps, arch.mg_cols());
      if (geom.dw_block <= 0) return geom;  // kernel larger than array: invalid
      geom.k_cols = in.c;
      geom.k_rows = taps * std::min(geom.dw_block, in.c);
      geom.row_tiles = 1;
      geom.col_tiles = ceil_div(in.c, geom.dw_block);
      break;
    }
    case graph::OpKind::kFullyConnected: {
      geom.k_rows = in.per_image();
      geom.k_cols = anchor.fc().out_features;
      geom.row_tiles = ceil_div(geom.k_rows, arch.mg_rows());
      geom.col_tiles = ceil_div(geom.k_cols, arch.mg_cols());
      break;
    }
    default:
      return geom;
  }
  geom.valid = true;
  return geom;
}

std::int64_t min_cores_for(const TileGeometry& geom, const graph::Graph& graph,
                           const graph::Group& group, const arch::ArchConfig& arch) {
  if (!geom.valid) return 1;  // vector-only groups occupy one core minimum
  const std::int64_t mg = arch.core().mg_per_unit;
  const graph::Node& anchor = graph.node(group.anchor);
  if (anchor.kind == graph::OpKind::kFullyConnected) {
    return 1;  // FC streams row passes when tiles exceed resident MGs
  }
  // Convolutions must keep all row tiles of a column tile resident in one
  // core (partial sums never cross cores).
  if (geom.row_tiles > mg) {
    raise(ErrorCode::kCapacityExceeded,
          "convolution row tiles exceed macro groups per core for " + group.name);
  }
  const std::int64_t col_tiles_per_core = std::max<std::int64_t>(1, mg / geom.row_tiles);
  return ceil_div(geom.col_tiles, col_tiles_per_core);
}

}  // namespace cimflow::compiler
