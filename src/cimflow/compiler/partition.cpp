#include "cimflow/compiler/partition.hpp"

#include <limits>
#include <unordered_map>

#include "cimflow/graph/closures.hpp"
#include "cimflow/support/logging.hpp"
#include "cimflow/support/status.hpp"

namespace cimflow::compiler {

const char* to_string(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::kGeneric: return "generic";
    case Strategy::kOpportunistic: return "cimmlc";
    case Strategy::kDpOptimized: return "dp";
  }
  return "?";
}

Strategy strategy_from_string(const std::string& name) {
  if (name == "generic") return Strategy::kGeneric;
  if (name == "cimmlc" || name == "opportunistic") return Strategy::kOpportunistic;
  if (name == "dp" || name == "optimized") return Strategy::kDpOptimized;
  raise(ErrorCode::kInvalidArgument, "unknown strategy: " + name);
}

namespace {

/// Capacity-greedy partition in linear order: extend the current stage while
/// the sum of minimum core requirements fits the chip.
std::vector<std::vector<graph::GroupId>> greedy_stages(const graph::CondensedGraph& cg,
                                                       const CostModel& model,
                                                       const arch::ArchConfig& arch) {
  std::vector<std::vector<graph::GroupId>> stages;
  std::vector<graph::GroupId> current;
  std::int64_t used = 0;
  for (graph::GroupId g : cg.compute_order()) {
    StagePlan probe;
    if (!model.optimal_mapping({g}, arch.chip().core_count, /*dup=*/false, probe)) {
      raise(ErrorCode::kCapacityExceeded,
            "operator " + cg.group(g).name + " cannot be placed on the chip");
    }
    const std::int64_t need = probe.mappings.at(g).total_cores();
    if (!current.empty() && used + need > arch.chip().core_count) {
      stages.push_back(current);
      current.clear();
      used = 0;
    }
    current.push_back(g);
    used += need;
  }
  if (!current.empty()) stages.push_back(current);
  return stages;
}

MappingPlan plan_greedy(const graph::CondensedGraph& cg, const arch::ArchConfig& arch,
                        const CostModel& model, bool duplication, const char* name) {
  MappingPlan plan;
  plan.strategy = name;
  for (const auto& groups : greedy_stages(cg, model, arch)) {
    StagePlan stage;
    const bool ok = model.optimal_mapping(groups, arch.chip().core_count, duplication, stage);
    CIMFLOW_CHECK(ok, "greedy stage must be feasible by construction");
    plan.estimated_cycles += model.stage_cycles(stage);
    plan.stages.push_back(std::move(stage));
  }
  return plan;
}

/// Algorithm 1: DP-based partitioning and mapping over dependency closures.
MappingPlan plan_dp(const graph::CondensedGraph& cg, const arch::ArchConfig& arch,
                    const CostModel& model) {
  const std::vector<graph::GroupId> order = cg.compute_order();
  const std::size_t n = order.size();

  // Bit position i corresponds to order[i]; predecessors restricted to
  // compute groups (graph inputs are always available).
  std::vector<std::int32_t> bit_of(static_cast<std::size_t>(cg.size()), -1);
  for (std::size_t i = 0; i < n; ++i) bit_of[static_cast<std::size_t>(order[i])] =
      static_cast<std::int32_t>(i);
  std::vector<std::vector<std::int32_t>> preds(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (graph::GroupId p : cg.group(order[i]).preds) {
      const std::int32_t bit = bit_of[static_cast<std::size_t>(p)];
      if (bit >= 0) preds[i].push_back(bit);
    }
  }

  bool truncated = false;
  const std::vector<DynBitset> closures =
      graph::enumerate_closures(preds, /*limit=*/8192, &truncated);
  if (truncated) {
    CIMFLOW_WARN() << "dependency-closure enumeration truncated; DP degrades to "
                      "contiguous partitioning";
  }

  std::unordered_map<DynBitset, std::size_t, DynBitsetHash> index_of;
  index_of.reserve(closures.size());
  for (std::size_t i = 0; i < closures.size(); ++i) index_of.emplace(closures[i], i);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(closures.size(), kInf);
  std::vector<std::ptrdiff_t> prev(closures.size(), -1);
  // Memoized stage evaluations keyed by the stage's bitmask.
  struct StageEval {
    bool feasible = false;
    double cycles = 0;
    StagePlan plan;
  };
  std::unordered_map<DynBitset, StageEval, DynBitsetHash> stage_cache;

  auto eval_stage = [&](const DynBitset& mask) -> const StageEval& {
    auto it = stage_cache.find(mask);
    if (it != stage_cache.end()) return it->second;
    StageEval eval;
    std::vector<graph::GroupId> groups;
    mask.for_each([&](std::size_t bit) { groups.push_back(order[bit]); });
    eval.feasible = model.optimal_mapping(groups, arch.chip().core_count,
                                          /*dup=*/true, eval.plan);
    if (eval.feasible) eval.cycles = model.stage_cycles(eval.plan);
    return stage_cache.emplace(mask, std::move(eval)).first->second;
  };

  dp[0] = 0;  // closures[0] is the empty set (sorted by popcount)
  for (std::size_t i = 1; i < closures.size(); ++i) {
    const DynBitset& di = closures[i];
    for (std::size_t j = 0; j < closures.size(); ++j) {
      if (closures[j].count() >= di.count()) break;  // sorted by popcount
      if (dp[j] == kInf || !di.contains(closures[j])) continue;
      const DynBitset stage_mask = di.difference(closures[j]);
      const StageEval& eval = eval_stage(stage_mask);
      if (!eval.feasible) continue;
      const double candidate = dp[j] + eval.cycles;
      if (candidate < dp[i]) {
        dp[i] = candidate;
        prev[i] = static_cast<std::ptrdiff_t>(j);
      }
    }
  }

  const std::size_t full = closures.size() - 1;
  CIMFLOW_CHECK(closures[full].count() == n, "closure enumeration missed the full set");
  if (dp[full] == kInf) {
    raise(ErrorCode::kCapacityExceeded, "no feasible DP partitioning found");
  }

  // ReconstructSolution: walk the prev chain, collecting stage plans.
  MappingPlan plan;
  plan.strategy = "dp";
  plan.estimated_cycles = dp[full];
  std::vector<StagePlan> reversed;
  std::size_t cursor = full;
  while (cursor != 0) {
    const std::size_t before = static_cast<std::size_t>(prev[cursor]);
    const DynBitset stage_mask = closures[cursor].difference(closures[before]);
    reversed.push_back(stage_cache.at(stage_mask).plan);
    cursor = before;
  }
  plan.stages.assign(reversed.rbegin(), reversed.rend());
  return plan;
}

}  // namespace

MappingPlan plan_mapping(const graph::CondensedGraph& cg, const arch::ArchConfig& arch,
                         Strategy strategy, std::int64_t batch) {
  const CostModel model(cg, arch, batch);
  switch (strategy) {
    case Strategy::kGeneric:
      return plan_greedy(cg, arch, model, /*duplication=*/false, "generic");
    case Strategy::kOpportunistic:
      return plan_greedy(cg, arch, model, /*duplication=*/true, "cimmlc");
    case Strategy::kDpOptimized:
      return plan_dp(cg, arch, model);
  }
  raise(ErrorCode::kInternal, "unreachable strategy");
}

}  // namespace cimflow::compiler
