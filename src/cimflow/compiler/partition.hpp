// CG-level model partitioning: the three compilation strategies evaluated in
// the paper (Sec. IV-B):
//   kGeneric       - inter-layer pipeline, capacity-greedy stages, no
//                    operator duplication ("generic mapping scheme").
//   kOpportunistic - the CIM-MLC-style baseline: same capacity-greedy
//                    partition, then vacant cores filled by opportunistic
//                    weight duplication.
//   kDpOptimized   - CIMFlow's contribution (Algorithm 1): dynamic
//                    programming over dependency closures with per-stage
//                    OptimalMapping, jointly choosing partition points and
//                    duplication.
#pragma once

#include "cimflow/compiler/cost_model.hpp"
#include "cimflow/compiler/mapping.hpp"

namespace cimflow::compiler {

enum class Strategy : std::uint8_t { kGeneric, kOpportunistic, kDpOptimized };

const char* to_string(Strategy strategy) noexcept;
Strategy strategy_from_string(const std::string& name);

/// Runs CG-level partitioning + core mapping for the condensed graph.
/// Throws Error(kCapacityExceeded) when some single operator cannot be
/// placed on the chip at all.
MappingPlan plan_mapping(const graph::CondensedGraph& cg, const arch::ArchConfig& arch,
                         Strategy strategy, std::int64_t batch);

}  // namespace cimflow::compiler
