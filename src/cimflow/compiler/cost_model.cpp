#include "cimflow/compiler/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "cimflow/support/numeric.hpp"
#include "cimflow/support/status.hpp"

#include "cimflow/compiler/layout.hpp"

namespace cimflow::compiler {
namespace {

/// Fixed local-memory reservations outside the activation buffers — exactly
/// the SegmentPlanner's built-in segments, so planning and code generation
/// use one source of truth.
std::int64_t fixed_segment_total(const arch::ArchConfig& arch) {
  return SegmentPlanner::weight_stage_bytes(arch) + SegmentPlanner::im2col_bytes(arch) +
         SegmentPlanner::kPsumBytes + SegmentPlanner::kBiasBytes +
         SegmentPlanner::kConstBytes + SegmentPlanner::kRecvStageBytes +
         SegmentPlanner::kSpillBytes;
}

/// Anchor node of a group, or nullptr for vector-only groups.
const graph::Node* anchor_of(const graph::CondensedGraph& cg, const graph::Group& g) {
  if (g.anchor == graph::kInvalidNode) return nullptr;
  return &cg.source().node(g.anchor);
}

/// Input shape feeding the group's first compute node.
graph::Shape group_input_shape(const graph::CondensedGraph& cg, const graph::Group& g) {
  const graph::Node& first = cg.source().node(g.nodes.front());
  return cg.source().node(first.inputs.at(0)).out_shape;
}

/// Conv-like spatial parameters (kernel/stride/pad); identity for others.
struct SpatialParams {
  std::int64_t kernel = 1, stride = 1, pad = 0;
};

SpatialParams spatial_params(const graph::CondensedGraph& cg, const graph::Group& g) {
  const graph::Node* anchor = anchor_of(cg, g);
  if (anchor != nullptr && (anchor->kind == graph::OpKind::kConv2d ||
                            anchor->kind == graph::OpKind::kDepthwiseConv2d)) {
    const auto& a = anchor->conv();
    return {a.kernel, a.stride, a.pad};
  }
  // Vector-only pool groups also have a window.
  if (anchor == nullptr) {
    const graph::Node& first = cg.source().node(g.nodes.front());
    if (first.kind == graph::OpKind::kMaxPool || first.kind == graph::OpKind::kAvgPool) {
      const auto& p = first.pool();
      return {p.kernel, p.stride, p.pad};
    }
  }
  return {};
}

bool is_fc_group(const graph::CondensedGraph& cg, const graph::Group& g) {
  const graph::Node* anchor = anchor_of(cg, g);
  return anchor != nullptr && anchor->kind == graph::OpKind::kFullyConnected;
}

/// Output rows of the group for striping purposes.
std::int64_t group_out_rows(const graph::CondensedGraph& cg, const graph::Group& g) {
  const graph::Node* anchor = anchor_of(cg, g);
  if (anchor != nullptr) return anchor->out_shape.h;
  return cg.source().node(g.nodes.front()).out_shape.h;
}

}  // namespace

BufferBudget buffer_budget(const arch::ArchConfig& arch) {
  const std::int64_t remaining =
      std::max<std::int64_t>(0, arch.core().local_mem_bytes - fixed_segment_total(arch));
  BufferBudget b;
  b.direct_in_limit = remaining / 2;
  b.direct_out_limit = remaining * 3 / 10;
  b.skip_limit = remaining / 5;
  return b;
}

std::int64_t consumer_window_bytes(const graph::CondensedGraph& cg,
                                   const graph::Group& group, const GroupMapping& m,
                                   const arch::ArchConfig& arch) {
  (void)arch;
  if (is_fc_group(cg, group)) {
    // FC with resident weights holds the whole input vector.
    return group_input_shape(cg, group).per_image();
  }
  if (cg.source().node(group.nodes.front()).kind == graph::OpKind::kGlobalAvgPool) {
    // GAP consumes its entire input map (no spatial striping).
    return group_input_shape(cg, group).per_image();
  }
  const graph::Shape in = group_input_shape(cg, group);
  const SpatialParams sp = spatial_params(cg, group);
  const std::int64_t out_rows = group_out_rows(cg, group);
  const std::int64_t stripe_rows = ceil_div(out_rows, m.replicas);
  const std::int64_t window_rows =
      std::min(in.h + 2 * sp.pad, (stripe_rows - 1) * sp.stride + sp.kernel);
  return window_rows * (in.w + 2 * sp.pad) * in.c;
}

std::int64_t producer_stripe_bytes(const graph::CondensedGraph& cg,
                                   const graph::Group& group, const GroupMapping& m,
                                   const arch::ArchConfig& arch) {
  const graph::Shape out =
      cg.source().node(cg.source().resolve_alias(group.nodes.back())).out_shape;
  const std::int64_t stripe_rows = ceil_div(out.h, m.replicas);
  std::int64_t channels = out.c;
  if (m.cores_per_replica > 1 && m.geom.valid) {
    const std::int64_t tile_width = m.geom.depthwise ? m.geom.dw_block : arch.mg_cols();
    channels = std::min<std::int64_t>(
        out.c, ceil_div(m.geom.col_tiles, m.cores_per_replica) * tile_width);
  } else if (m.cores_per_replica > 1) {
    channels = ceil_div(out.c, m.cores_per_replica);
  }
  return stripe_rows * out.w * channels;
}

TransferMode decide_edge_mode(const graph::CondensedGraph& cg,
                              const graph::Group& producer, const GroupMapping& pm,
                              const graph::Group& consumer, const GroupMapping& cm,
                              const arch::ArchConfig& arch) {
  const BufferBudget budget = buffer_budget(arch);
  if (cm.passes > 1 || pm.passes > 1) return TransferMode::kGlobal;
  if (producer_stripe_bytes(cg, producer, pm, arch) > budget.direct_out_limit) {
    return TransferMode::kGlobal;
  }
  // Is this the consumer's primary (spatial) input or a secondary operand
  // (residual skip / SE gate)?
  const graph::Node& first = cg.source().node(consumer.nodes.front());
  const graph::GroupId primary_group = cg.group_of(first.inputs.at(0));
  const bool primary = (primary_group == producer.id);
  if (primary) {
    if (consumer_window_bytes(cg, consumer, cm, arch) > budget.direct_in_limit) {
      return TransferMode::kGlobal;
    }
  } else {
    // Secondary operands are consumed at the consumer's own stripe/channels.
    const graph::Shape out = cg.source().node(consumer.nodes.back()).out_shape;
    const std::int64_t stripe_rows = ceil_div(out.h, cm.replicas);
    const std::int64_t bytes =
        stripe_rows * out.w * ceil_div(out.c, std::max<std::int64_t>(1, cm.cores_per_replica));
    if (bytes > budget.skip_limit) return TransferMode::kGlobal;
  }
  return TransferMode::kDirect;
}

CostModel::CostModel(const graph::CondensedGraph& cg, const arch::ArchConfig& arch,
                     std::int64_t batch)
    : cg_(&cg), arch_(&arch), batch_(batch) {
  CIMFLOW_CHECK(batch >= 1, "batch must be >= 1");
}

bool CostModel::group_allows_duplication(const graph::Group& group) const {
  if (is_fc_group(*cg_, group)) return false;
  for (graph::NodeId member : group.nodes) {
    const graph::OpKind kind = cg_->source().node(member).kind;
    if (kind == graph::OpKind::kMaxPool || kind == graph::OpKind::kAvgPool ||
        kind == graph::OpKind::kGlobalAvgPool) {
      return false;  // pooling needs all positions of its channel slice
    }
  }
  return true;
}

GroupMapping CostModel::base_mapping(graph::GroupId group_id, std::int64_t replicas) const {
  const graph::Group& group = cg_->group(group_id);
  GroupMapping m;
  m.group = group_id;
  m.geom = tile_geometry(cg_->source(), group, *arch_);
  {
    // The group's output grid follows its *exported* (last) tensor, not the
    // anchor: an FC group fused with an SE ScaleChannels exports the scaled
    // feature map, and vector-only groups have no anchor at all. Striping
    // and transfer wiring key off this grid. Flatten members are layout
    // aliases and resolve to their producer.
    const graph::Shape out =
        cg_->source().node(cg_->source().resolve_alias(group.nodes.back())).out_shape;
    m.geom.out_h = out.h;
    m.geom.out_w = out.w;
    m.geom.positions = out.h * out.w;
  }
  m.replicas = std::max<std::int64_t>(
      1, std::min(replicas, group_out_rows(*cg_, group)));
  if (m.geom.valid) {
    const std::int64_t mg = arch_->core().mg_per_unit;
    if (is_fc_group(*cg_, group)) {
      m.cores_per_replica = 1;
      m.passes = ceil_div(m.geom.total_tiles(), mg);
    } else {
      m.cores_per_replica = min_cores_for(m.geom, cg_->source(), group, *arch_);
      m.passes = 1;
    }
  } else {
    m.cores_per_replica = 1;
    m.passes = 1;
  }
  return m;
}

GroupCost CostModel::group_cost(graph::GroupId group_id, const GroupMapping& m) const {
  const graph::Group& group = cg_->group(group_id);
  const arch::ArchConfig& arch = *arch_;
  const graph::Node* anchor = anchor_of(*cg_, group);
  const std::int64_t lanes = arch.unit().vector_lanes;
  const std::int64_t lm_width = arch.core().local_mem_width_bytes;
  const std::int64_t flit = arch.chip().noc_flit_bytes;
  const std::int64_t gbw = arch.chip().global_mem_bytes_per_cycle;
  // Global traffic streams through the mesh at flit bandwidth (the link is
  // the bottleneck, not the SRAM port, for realistic flit sizes).
  const double xfer_bw = static_cast<double>(std::min(flit, gbw));

  GroupCost cost;
  const graph::Shape in = group_input_shape(*cg_, group);
  const graph::Shape out = cg_->source().node(group.nodes.back()).out_shape;
  const SpatialParams sp = spatial_params(*cg_, group);
  const std::int64_t stripe_rows = ceil_div(group_out_rows(*cg_, group), m.replicas);

  if (m.geom.valid && anchor != nullptr) {
    const std::int64_t positions_core = stripe_rows * m.geom.out_w;
    const std::int64_t tiles_core =
        m.geom.depthwise
            ? ceil_div(m.geom.col_tiles, m.cores_per_replica)
            : m.geom.row_tiles * ceil_div(m.geom.col_tiles, m.cores_per_replica);
    const std::int64_t channels_core = ceil_div(m.geom.k_cols, m.cores_per_replica);

    if (anchor->kind == graph::OpKind::kFullyConnected) {
      const double mvms = static_cast<double>(tiles_core);
      cost.compute_cycles = mvms * static_cast<double>(arch.mvm_interval_cycles()) +
                            3.0 * (2.0 + static_cast<double>(channels_core) / lanes) + 20.0;
      // Row passes stream all tiles' weights through the core each batch.
      cost.weight_load_cycles =
          static_cast<double>(tiles_core) * static_cast<double>(arch.mg_weight_bytes()) *
          (1.0 / static_cast<double>(gbw) +
           1.0 / static_cast<double>(arch.core().cim_load_bytes_per_cycle));
    } else {
      const std::int64_t gather_ops = m.geom.depthwise
                                          ? sp.kernel * ceil_div(m.geom.col_tiles,
                                                                 m.cores_per_replica)
                                          : sp.kernel;
      const double gather_cycles =
          static_cast<double>(gather_ops) *
          (4.0 + static_cast<double>(sp.kernel * in.c) / lm_width);
      const double cim_cycles =
          static_cast<double>(tiles_core) * static_cast<double>(arch.mvm_interval_cycles());
      const double vec_cycles = 3.0 * (2.0 + static_cast<double>(channels_core) / lanes);
      // Within one output position the gather -> MVM -> epilogue chain is
      // serialized by local-memory dependencies (single im2col/psum buffer),
      // so the units add up rather than overlap; the instruction-issue floor
      // (one instruction per cycle) also bounds the rate.
      const double issue_floor = 10.0 + 3.0 * static_cast<double>(tiles_core) +
                                 2.0 * static_cast<double>(gather_ops);
      const double per_position =
          std::max(gather_cycles + cim_cycles + vec_cycles + 10.0, issue_floor);
      cost.compute_cycles = static_cast<double>(positions_core) * per_position;
      cost.weight_load_cycles =
          static_cast<double>(tiles_core) * static_cast<double>(arch.mg_weight_bytes()) *
          (1.0 / static_cast<double>(gbw) +
           1.0 / static_cast<double>(arch.core().cim_load_bytes_per_cycle));
    }
  } else {
    // Vector-only group (pool / GAP): elementwise work over the window.
    const std::int64_t elems = out.per_image() / std::max<std::int64_t>(1, m.cores_per_replica);
    const double window = static_cast<double>(sp.kernel * sp.kernel);
    cost.compute_cycles = static_cast<double>(elems) * window / static_cast<double>(lanes) +
                          static_cast<double>(out.h) * 8.0;
  }

  // Input side: bytes that must arrive at the bottleneck core per image.
  const std::int64_t window_rows =
      std::min(in.h + 2 * sp.pad, (stripe_rows - 1) * sp.stride + sp.kernel);
  const double in_bytes_direct = static_cast<double>(window_rows * in.w * in.c);
  const double reread = sp.stride > 0 ? std::max(1.0, static_cast<double>(sp.kernel) /
                                                          static_cast<double>(sp.stride))
                                      : 1.0;
  const double in_bytes_global = in_bytes_direct * reread;
  cost.in_cycles = in_bytes_global / xfer_bw + 64.0;

  // Output side: stripe bytes leave the core once, plus fan-out copies for
  // duplicated consumers (priced optimistically as one extra copy).
  const double out_bytes =
      static_cast<double>(stripe_rows * out.w *
                          ceil_div(out.c, std::max<std::int64_t>(1, m.cores_per_replica)));
  const double fanout = static_cast<double>(std::max<std::size_t>(1, group.succs.size()));
  cost.out_cycles = out_bytes * fanout / xfer_bw + 64.0;
  return cost;
}

double CostModel::stage_cycles(const StagePlan& stage) const {
  double weight_bytes_total = 0;
  double max_core_load = 0;
  double fill = 0;
  double bottleneck = 0;
  for (graph::GroupId g : stage.groups) {
    const GroupMapping& m = stage.mappings.at(g);
    const GroupCost cost = group_cost(g, m);
    max_core_load = std::max(max_core_load, cost.weight_load_cycles);
    weight_bytes_total += cost.weight_load_cycles;  // proxy for global traffic share
    fill += cost.bound();
    bottleneck = std::max(bottleneck, cost.bound());
  }
  const double load = std::max(max_core_load, weight_bytes_total / 4.0);
  return load + fill + static_cast<double>(batch_ - 1) * bottleneck + 200.0;
}

void CostModel::assign_core_ids(StagePlan& stage) const {
  std::int64_t next = 0;
  for (graph::GroupId g : stage.groups) {
    GroupMapping& m = stage.mappings.at(g);
    m.core_ids.clear();
    for (std::int64_t i = 0; i < m.total_cores(); ++i) m.core_ids.push_back(next++);
  }
  CIMFLOW_CHECK(next <= arch_->chip().core_count, "stage overflows the core grid");
}

void CostModel::fill_edge_modes(StagePlan& stage) const {
  stage.edge_modes.clear();
  for (graph::GroupId g : stage.groups) {
    const graph::Group& consumer = cg_->group(g);
    for (graph::GroupId p : consumer.preds) {
      if (!stage.contains(p)) continue;  // cross-stage or graph input: global
      const graph::Group& producer = cg_->group(p);
      const TransferMode mode =
          decide_edge_mode(*cg_, producer, stage.mappings.at(p), consumer,
                           stage.mappings.at(g), *arch_);
      stage.edge_modes[{p, g}] = mode;
    }
  }
}

bool CostModel::optimal_mapping(const std::vector<graph::GroupId>& groups,
                                std::int64_t total_cores, bool allow_duplication,
                                StagePlan& out) const {
  out = StagePlan{};
  out.groups = groups;
  std::int64_t used = 0;
  for (graph::GroupId g : groups) {
    GroupMapping m = base_mapping(g, /*replicas=*/1);
    used += m.total_cores();
    out.mappings.emplace(g, std::move(m));
  }
  if (used > total_cores) return false;

  if (allow_duplication) {
    // Greedy marginal improvement: repeatedly relax the stage bottleneck by
    // either duplicating it (one more replica) or widening it (one more core
    // per replica, which shrinks FC passes / splits vector groups), whichever
    // fits in the leftover cores.
    std::int64_t leftover = total_cores - used;
    for (int iter = 0; iter < 512 && leftover > 0; ++iter) {
      graph::GroupId bottleneck = -1;
      double worst = -1;
      for (graph::GroupId g : groups) {
        const double bound = group_cost(g, out.mappings.at(g)).bound();
        if (bound > worst) {
          worst = bound;
          bottleneck = g;
        }
      }
      if (bottleneck < 0) break;
      GroupMapping& current = out.mappings.at(bottleneck);
      const graph::Group& group = cg_->group(bottleneck);

      GroupMapping best = current;
      double best_bound = worst;
      bool improved = false;
      // Candidate: one more replica.
      if (group_allows_duplication(group) && current.cores_per_replica <= leftover &&
          current.replicas < group_out_rows(*cg_, group)) {
        GroupMapping candidate = current;
        candidate.replicas += 1;
        const double bound = group_cost(bottleneck, candidate).bound();
        if (bound < best_bound) {
          best = candidate;
          best_bound = bound;
          improved = true;
        }
      }
      // Candidate: widen each replica by one core (more column splitting /
      // fewer FC passes).
      if (current.replicas <= leftover && current.geom.valid &&
          current.cores_per_replica < current.geom.col_tiles) {
        GroupMapping candidate = current;
        candidate.cores_per_replica += 1;
        if (is_fc_group(*cg_, group)) {
          const std::int64_t tiles_core = ceil_div(candidate.geom.col_tiles,
                                                   candidate.cores_per_replica) *
                                          candidate.geom.row_tiles;
          candidate.passes = ceil_div(tiles_core, arch_->core().mg_per_unit);
        }
        const double bound = group_cost(bottleneck, candidate).bound();
        if (bound < best_bound) {
          best = candidate;
          best_bound = bound;
          improved = true;
        }
      }
      if (!improved) break;
      leftover -= best.total_cores() - current.total_cores();
      current = best;
    }
  }
  assign_core_ids(out);
  fill_edge_modes(out);
  return true;
}

}  // namespace cimflow::compiler
