// Mapping data model: the output of CG-level optimization and the input to
// OP-level code generation. A MappingPlan is a sequence of execution stages
// (paper Fig. 4 "Stage 1 / Stage 2"); each stage assigns every condensed
// group a cluster of cores, a duplication factor, and transfer modes for its
// incoming edges.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cimflow/compiler/tiling.hpp"
#include "cimflow/graph/condense.hpp"

namespace cimflow::compiler {

/// How an inter-group activation tensor travels.
enum class TransferMode : std::uint8_t {
  kDirect,  ///< core-to-core NoC sends within a stage (both maps fit locally)
  kGlobal,  ///< streamed through global memory with doorbell synchronization
};

/// Placement of one condensed group within a stage.
struct GroupMapping {
  graph::GroupId group = -1;
  TileGeometry geom;            ///< invalid for vector-only groups
  std::int64_t replicas = 1;    ///< weight-duplication factor (position split)
  std::int64_t cores_per_replica = 1;
  std::vector<std::int64_t> core_ids;  ///< replicas * cores_per_replica entries,
                                       ///< replica-major ([r*cpr + j])
  std::int64_t passes = 1;      ///< FC row-streaming passes (1 = fully resident)

  std::int64_t total_cores() const noexcept { return replicas * cores_per_replica; }
  std::int64_t core_at(std::int64_t replica, std::int64_t j) const {
    return core_ids.at(static_cast<std::size_t>(replica * cores_per_replica + j));
  }

  /// Output rows [begin, end) handled by `replica` (row striping).
  std::pair<std::int64_t, std::int64_t> stripe(std::int64_t replica) const;

  /// Column-tile range [begin, end) held by intra-replica core `j`.
  std::pair<std::int64_t, std::int64_t> col_tile_range(std::int64_t j) const;

  /// Output channel range [begin, end) produced by intra-replica core `j`.
  std::pair<std::int64_t, std::int64_t> channel_range(std::int64_t j,
                                                      const arch::ArchConfig& arch) const;
};

/// One execution stage: a dependency-convex set of groups resident together.
struct StagePlan {
  std::vector<graph::GroupId> groups;  ///< in linear (dependency) order
  std::map<graph::GroupId, GroupMapping> mappings;
  /// Transfer mode per intra-stage edge (producer group, consumer group).
  std::map<std::pair<graph::GroupId, graph::GroupId>, TransferMode> edge_modes;

  std::int64_t cores_used() const noexcept;
  bool contains(graph::GroupId g) const { return mappings.count(g) != 0; }
};

struct MappingPlan {
  std::string strategy;          ///< "generic" | "cimmlc" | "dp"
  std::vector<StagePlan> stages;
  double estimated_cycles = 0.0; ///< cost-model estimate for the whole plan

  /// Stage index executing a group (-1 when absent).
  std::int64_t stage_of(graph::GroupId g) const;

  std::string summary(const graph::CondensedGraph& cg) const;
};

}  // namespace cimflow::compiler
