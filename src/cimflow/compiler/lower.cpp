#include "cimflow/compiler/lower.hpp"

#include <algorithm>

#include "cimflow/isa/opcode.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::compiler {

using isa::Instruction;
using isa::Opcode;
using isa::ScalarFunct;
using isa::SReg;
using isa::VecFunct;

// ---------------------------------------------------------------------------
// CodeBuilder
// ---------------------------------------------------------------------------

CodeBuilder::VReg CodeBuilder::fresh() { return next_vreg_++; }

CodeBuilder::VReg CodeBuilder::li(std::int64_t value) {
  auto it = const_cache_.find(value);
  if (it != const_cache_.end()) return it->second;
  const VReg reg = fresh();
  const std::int32_t v32 = static_cast<std::int32_t>(value);
  const std::int32_t low = static_cast<std::int16_t>(v32 & 0xFFFF);
  if (v32 >= -32768 && v32 <= 32767) {
    Emitted e;
    e.inst = Instruction::g_li(0, v32);
    e.rt = reg;
    push(std::move(e));
  } else {
    Emitted lo;
    lo.inst = Instruction::g_li(0, low);
    lo.rt = reg;
    push(std::move(lo));
    Emitted hi;
    hi.inst = Instruction::g_lih(
        0, static_cast<std::int16_t>((v32 >> 16) & 0xFFFF));
    hi.rt = reg;
    hi.rs = reg;  // G_LIH keeps the low halfword: model as use+def via rs slot
    push(std::move(hi));
  }
  const_cache_.emplace(value, reg);
  return reg;
}

void CodeBuilder::sc_op(ScalarFunct fn, VReg dst, VReg a, VReg b) {
  Emitted e;
  e.inst = Instruction::sc_op(fn, 0, 0, 0);
  e.rd = dst;
  e.rs = a;
  e.rt = b;
  push(std::move(e));
}

void CodeBuilder::sc_addi(ScalarFunct fn, VReg dst, VReg src, std::int64_t imm) {
  CIMFLOW_CHECK(imm >= -512 && imm <= 511, "scalar immediate out of range");
  Emitted e;
  e.inst = Instruction::sc_addi(fn, 0, 0, static_cast<std::int32_t>(imm));
  e.rt = dst;
  e.rs = src;
  push(std::move(e));
}

CodeBuilder::VReg CodeBuilder::add_scaled(VReg base, VReg var, std::int64_t coeff) {
  if (coeff == 0) return base;
  const VReg out = fresh();
  if (coeff == 1) {
    sc_op(ScalarFunct::kAdd, out, base, var);
    return out;
  }
  const VReg scaled = fresh();
  if (coeff > 0 && (coeff & (coeff - 1)) == 0) {
    // Power of two: shift is cheaper than multiply.
    std::int64_t shift = 0;
    while ((std::int64_t{1} << shift) != coeff) ++shift;
    sc_addi(ScalarFunct::kSll, scaled, var, shift);
  } else if (coeff >= -512 && coeff <= 511) {
    sc_addi(ScalarFunct::kMul, scaled, var, coeff);
  } else {
    sc_op(ScalarFunct::kMul, scaled, var, li(coeff));
  }
  sc_op(ScalarFunct::kAdd, out, base, scaled);
  return out;
}

void CodeBuilder::set_sreg(SReg sreg, std::int64_t value) {
  const auto key = static_cast<std::uint8_t>(sreg);
  auto it = sreg_cache_.find(key);
  if (it != sreg_cache_.end() && it->second == value) return;
  Emitted e;
  e.inst = Instruction::cim_cfg(sreg, 0);
  e.rs = li(value);
  push(std::move(e));
  sreg_cache_[key] = value;
}

void CodeBuilder::set_sreg_dynamic(SReg sreg, VReg value) {
  Emitted e;
  e.inst = Instruction::cim_cfg(sreg, 0);
  e.rs = value;
  push(std::move(e));
  sreg_cache_.erase(static_cast<std::uint8_t>(sreg));
}

void CodeBuilder::mem_cpy(VReg dst_addr, VReg src_addr, std::int64_t len) {
  Emitted e;
  e.inst = Instruction::mem_cpy(0, 0, 0);
  e.rs = dst_addr;
  e.rt = src_addr;
  e.rd = li(len);
  push(std::move(e));
}

void CodeBuilder::mem_stride(VReg dst_addr, VReg src_addr, std::int64_t count,
                             std::int64_t dst_stride, std::int64_t src_stride,
                             std::int64_t elem) {
  set_sreg(SReg::kAux0, dst_stride);
  set_sreg(SReg::kAux1, src_stride);
  set_sreg(SReg::kAux2, elem);
  Emitted e;
  e.inst = Instruction::mem_stride(0, 0, 0);
  e.rs = dst_addr;
  e.rt = src_addr;
  e.rd = li(count);
  push(std::move(e));
}

void CodeBuilder::cim_load(VReg src_addr, std::int64_t mg, std::int64_t rows,
                           std::int64_t cols) {
  set_sreg(SReg::kActiveRows, rows);
  set_sreg(SReg::kActiveCols, cols);
  Emitted e;
  e.inst = Instruction::cim_load(0, 0);
  e.rs = src_addr;
  e.rt = li(mg);
  push(std::move(e));
}

void CodeBuilder::cim_mvm(VReg in_addr, VReg out_addr, std::int64_t mg, bool accumulate,
                          std::int64_t rows, std::int64_t cols, std::int64_t macs) {
  set_sreg(SReg::kActiveRows, rows);
  set_sreg(SReg::kActiveCols, cols);
  set_sreg(SReg::kMacCount, macs);
  Emitted e;
  e.inst = Instruction::cim_mvm(0, 0, 0, accumulate);
  e.rs = in_addr;
  e.rt = out_addr;
  e.re = li(mg);
  push(std::move(e));
}

void CodeBuilder::vec_op(VecFunct fn, VReg dst, VReg a, VReg b, std::int64_t len) {
  Emitted e;
  e.inst = Instruction::vec_op(fn, 0, 0, 0, 0);
  e.rd = dst;
  e.rs = a;
  e.rt = b;
  e.re = li(len);
  push(std::move(e));
}

void CodeBuilder::vec_pool(bool avg, VReg dst, VReg src, std::int64_t out_w) {
  Emitted e;
  e.inst = Instruction::vec_pool(avg, 0, 0, 0);
  e.rd = dst;
  e.rs = src;
  e.re = li(out_w);
  push(std::move(e));
}

void CodeBuilder::send(VReg addr, std::int64_t len, std::int64_t dst_core,
                       std::int32_t tag) {
  Emitted e;
  e.inst = Instruction::send(0, 0, 0, tag);
  e.rs = addr;
  e.rt = li(len);
  e.rd = li(dst_core);
  push(std::move(e));
}

void CodeBuilder::recv(VReg addr, std::int64_t len, std::int64_t src_core,
                       std::int32_t tag) {
  Emitted e;
  e.inst = Instruction::recv(0, 0, 0, tag);
  e.rs = addr;
  e.rt = li(len);
  e.rd = li(src_core);
  push(std::move(e));
}

void CodeBuilder::barrier(std::int32_t id) {
  Emitted e;
  e.inst = Instruction::barrier(id);
  push(std::move(e));
}

void CodeBuilder::halt() {
  Emitted e;
  e.inst = Instruction::halt();
  push(std::move(e));
}

CodeBuilder::Loop CodeBuilder::loop_begin(std::int64_t lower, std::int64_t upper,
                                          std::int64_t step) {
  Loop loop;
  loop.iv = fresh();
  loop.upper = upper;
  loop.step = step;
  // Induction variables are initialized with their own G_LI (never shared
  // with the constant cache — they mutate).
  Emitted init;
  CIMFLOW_CHECK(lower >= -32768 && lower <= 32767, "loop lower bound out of range");
  init.inst = Instruction::g_li(0, static_cast<std::int32_t>(lower));
  init.rt = loop.iv;
  push(std::move(init));
  loop.head = emitted_.size();
  // The S-register cache cannot persist across the loop back-edge: a value
  // set inside iteration 1 may differ by the time iteration 2 reads it.
  invalidate_sreg_cache();
  return loop;
}

void CodeBuilder::loop_end(Loop& loop) {
  sc_addi(ScalarFunct::kAdd, loop.iv, loop.iv, loop.step);
  Emitted branch;
  branch.inst = Instruction::branch(Opcode::kBlt, 0, 0, 0);
  branch.rs = loop.iv;
  branch.rt = li(loop.upper);
  branch.branch_target = static_cast<std::ptrdiff_t>(loop.head);
  push(std::move(branch));
  invalidate_sreg_cache();
}

// --- register allocation -----------------------------------------------------

namespace {

constexpr std::uint8_t kZeroReg = 0;
constexpr std::uint8_t kScratch[4] = {1, 2, 3, 4};
constexpr std::uint8_t kSpillBase = 31;
constexpr std::uint8_t kFirstAlloc = 5;
constexpr std::uint8_t kLastAlloc = 30;

struct Interval {
  std::size_t start = 0;
  std::size_t end = 0;
  bool used = false;
};

}  // namespace

std::vector<Instruction> CodeBuilder::finalize(std::int64_t spill_base) {
  // 1. Liveness: raw intervals, then extend across loop back-edges so a vreg
  //    live anywhere inside a loop body stays live for the whole body.
  std::vector<Interval> intervals(static_cast<std::size_t>(next_vreg_));
  auto touch = [&](VReg v, std::size_t pos) {
    if (v < 0) return;
    Interval& iv = intervals[static_cast<std::size_t>(v)];
    if (!iv.used) {
      iv.used = true;
      iv.start = pos;
      iv.end = pos;
    } else {
      iv.start = std::min(iv.start, pos);
      iv.end = std::max(iv.end, pos);
    }
  };
  for (std::size_t i = 0; i < emitted_.size(); ++i) {
    const Emitted& e = emitted_[i];
    touch(e.rs, i);
    touch(e.rt, i);
    touch(e.re, i);
    touch(e.rd, i);
  }
  // Loop back-edges: a value defined before a loop and used inside must
  // survive every iteration, so its interval extends to the back edge.
  // Values defined *inside* the body are re-computed each iteration (all
  // emission is def-before-use straightline code) and need no extension.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < emitted_.size(); ++i) {
      const Emitted& e = emitted_[i];
      if (e.branch_target < 0 || static_cast<std::size_t>(e.branch_target) > i) continue;
      const std::size_t t = static_cast<std::size_t>(e.branch_target);
      for (Interval& iv : intervals) {
        if (!iv.used) continue;
        if (iv.start < t && iv.end >= t && iv.end < i) {
          iv.end = i;
          changed = true;
        }
      }
    }
  }

  // 2. Linear scan with spill-furthest-end.
  std::vector<std::int16_t> assignment(static_cast<std::size_t>(next_vreg_), -1);
  std::vector<std::int16_t> spill_slot(static_cast<std::size_t>(next_vreg_), -1);
  std::vector<std::pair<std::size_t, VReg>> order;  // (start, vreg)
  for (VReg v = 0; v < next_vreg_; ++v) {
    if (intervals[static_cast<std::size_t>(v)].used) {
      order.emplace_back(intervals[static_cast<std::size_t>(v)].start, v);
    }
  }
  std::sort(order.begin(), order.end());
  std::vector<VReg> active;  // vregs currently holding a physical register
  std::vector<bool> phys_free(32, false);
  for (std::uint8_t r = kFirstAlloc; r <= kLastAlloc; ++r) phys_free[r] = true;
  std::int16_t next_slot = 0;

  for (const auto& [start, v] : order) {
    // Expire finished intervals.
    std::erase_if(active, [&](VReg a) {
      if (intervals[static_cast<std::size_t>(a)].end < start) {
        phys_free[static_cast<std::size_t>(assignment[static_cast<std::size_t>(a)])] = true;
        return true;
      }
      return false;
    });
    std::int16_t reg = -1;
    for (std::uint8_t r = kFirstAlloc; r <= kLastAlloc; ++r) {
      if (phys_free[r]) {
        reg = r;
        break;
      }
    }
    if (reg >= 0) {
      phys_free[static_cast<std::size_t>(reg)] = false;
      assignment[static_cast<std::size_t>(v)] = reg;
      active.push_back(v);
      continue;
    }
    // Spill the active interval with the furthest end (or this one).
    VReg victim = v;
    std::size_t furthest = intervals[static_cast<std::size_t>(v)].end;
    for (VReg a : active) {
      if (intervals[static_cast<std::size_t>(a)].end > furthest) {
        furthest = intervals[static_cast<std::size_t>(a)].end;
        victim = a;
      }
    }
    if (victim != v) {
      assignment[static_cast<std::size_t>(v)] =
          assignment[static_cast<std::size_t>(victim)];
      assignment[static_cast<std::size_t>(victim)] = -1;
      spill_slot[static_cast<std::size_t>(victim)] = next_slot++;
      std::erase(active, victim);
      active.push_back(v);
    } else {
      spill_slot[static_cast<std::size_t>(v)] = next_slot++;
    }
  }
  if (next_slot * 4 > SegmentPlanner::kSpillBytes) {
    raise(ErrorCode::kCapacityExceeded,
          strprintf("register spill area overflow: %d slots", next_slot));
  }
  CIMFLOW_CHECK(next_slot <= 120, "spill slots exceed SC_LW immediate range");

  // 3. Rewrite: materialize physical registers, insert spill loads/stores,
  //    record new positions for branch fixup.
  std::vector<Instruction> out;
  out.reserve(emitted_.size() + 16);
  std::vector<std::size_t> new_pos(emitted_.size() + 1, 0);

  // Prologue: R31 <- spill base address (local).
  const std::uint32_t spill_addr =
      isa::make_local_address(static_cast<std::uint32_t>(spill_base));
  out.push_back(Instruction::g_li(kSpillBase,
                                  static_cast<std::int16_t>(spill_addr & 0xFFFF)));
  out.push_back(Instruction::g_lih(
      kSpillBase, static_cast<std::int16_t>((spill_addr >> 16) & 0xFFFF)));

  for (std::size_t i = 0; i < emitted_.size(); ++i) {
    new_pos[i] = out.size();
    const Emitted& e = emitted_[i];
    Instruction inst = e.inst;
    int scratch_used = 0;
    auto resolve_use = [&](VReg v) -> std::uint8_t {
      if (v < 0) return kZeroReg;
      const std::int16_t phys = assignment[static_cast<std::size_t>(v)];
      if (phys >= 0) return static_cast<std::uint8_t>(phys);
      const std::int16_t slot = spill_slot[static_cast<std::size_t>(v)];
      CIMFLOW_CHECK(slot >= 0, "vreg neither assigned nor spilled");
      CIMFLOW_CHECK(scratch_used < 4, "too many spilled operands in one op");
      const std::uint8_t scratch = kScratch[scratch_used++];
      out.push_back(Instruction::sc_lw(scratch, kSpillBase, slot * 4));
      return scratch;
    };
    // Determine def operand slot by opcode.
    const Opcode op = e.inst.op();
    const bool def_rd = (op == Opcode::kScOp);
    const bool def_rt = (op == Opcode::kScAddi || op == Opcode::kScLw ||
                         op == Opcode::kGLi || op == Opcode::kGLih);
    // Uses first (loads precede the op). G_LIH's rs slot only marks the
    // use+def of rt for liveness; the encoding does not read rs.
    if (e.rs >= 0 && op != Opcode::kGLih) inst.rs = resolve_use(e.rs);
    if (e.rt >= 0 && !def_rt) inst.rt = resolve_use(e.rt);
    if (e.re >= 0) inst.re = resolve_use(e.re);
    if (e.rd >= 0 && !def_rd) inst.rd = resolve_use(e.rd);

    // Defs: write to phys or scratch + store.
    std::uint8_t def_phys = 0;
    std::int16_t def_slot = -1;
    const VReg def_vreg = def_rd ? e.rd : (def_rt ? e.rt : kNoReg);
    if (def_vreg >= 0) {
      const std::int16_t phys = assignment[static_cast<std::size_t>(def_vreg)];
      if (phys >= 0) {
        def_phys = static_cast<std::uint8_t>(phys);
      } else {
        def_slot = spill_slot[static_cast<std::size_t>(def_vreg)];
        CIMFLOW_CHECK(def_slot >= 0, "def vreg neither assigned nor spilled");
        CIMFLOW_CHECK(scratch_used < 4, "too many spilled operands in one op");
        def_phys = kScratch[scratch_used++];
        if (op == Opcode::kGLih || op == Opcode::kScAddi) {
          // Read-modify-write defs (G_LIH keeps low half; ADDI reads rs which
          // may be the same spilled vreg) — the use path above already loaded
          // the old value into a scratch; for G_LIH ensure the scratch holds it.
          if (op == Opcode::kGLih) {
            out.push_back(Instruction::sc_lw(def_phys, kSpillBase, def_slot * 4));
          }
        }
      }
      if (def_rd) inst.rd = def_phys;
      if (def_rt) inst.rt = def_phys;
    }
    out.push_back(inst);
    if (def_slot >= 0) {
      out.push_back(Instruction::sc_sw(def_phys, kSpillBase, def_slot * 4));
    }
  }
  new_pos[emitted_.size()] = out.size();

  // 4. Branch fixup: retarget relative offsets to the rewritten positions.
  for (std::size_t i = 0; i < emitted_.size(); ++i) {
    const Emitted& e = emitted_[i];
    if (e.branch_target < 0) continue;
    // The branch is the last instruction emitted for entry i (spill loads
    // precede it; branches never have spilled defs).
    const std::size_t branch_pos = new_pos[i + 1] - 1;
    const std::size_t target_pos = new_pos[static_cast<std::size_t>(e.branch_target)];
    out[branch_pos].imm =
        static_cast<std::int32_t>(static_cast<std::ptrdiff_t>(target_pos) -
                                  static_cast<std::ptrdiff_t>(branch_pos));
  }
  return out;
}

// ---------------------------------------------------------------------------
// IR lowering
// ---------------------------------------------------------------------------

namespace {

class FuncLowerer {
 public:
  FuncLowerer(const SegmentPlanner& segments, CodeBuilder& builder)
      : segments_(&segments), builder_(&builder) {}

  void run(const ir::Func& func) { lower_region(func.body); }

 private:
  /// Materializes buffer+index into an address register.
  CodeBuilder::VReg address(const std::string& buf, const ir::AffineExpr& index) {
    std::int64_t base = index.constant;
    if (buf != "global") {
      base += static_cast<std::int64_t>(
          isa::make_local_address(static_cast<std::uint32_t>(segments_->offset(buf))));
    }
    CodeBuilder::VReg reg = builder_->li(base);
    for (const auto& [var, coeff] : index.terms) {
      reg = builder_->add_scaled(reg, var_reg(var), coeff);
    }
    return reg;
  }

  CodeBuilder::VReg var_reg(const std::string& var) const {
    auto it = vars_.find(var);
    CIMFLOW_CHECK(it != vars_.end(), "unbound loop variable: " + var);
    return it->second;
  }

  void lower_region(const std::vector<ir::Op>& ops) {
    for (const ir::Op& op : ops) lower_op(op);
  }

  void lower_op(const ir::Op& op) {
    CodeBuilder& b = *builder_;
    if (op.is_loop()) {
      const std::int64_t lower = op.i("lower");
      const std::int64_t upper = op.i("upper");
      if (upper <= lower) return;
      CodeBuilder::Loop loop = b.loop_begin(lower, upper, op.i("step"));
      const std::string& var = op.s("var");
      vars_[var] = loop.iv;
      lower_region(op.body);
      vars_.erase(var);
      b.loop_end(loop);
      return;
    }
    if (op.kind == "mem.copy") {
      const auto dst = address(op.s("dst_buf"), op.affine("dst_index"));
      const auto src = address(op.s("src_buf"), op.affine("src_index"));
      b.mem_cpy(dst, src, op.i("len"));
      return;
    }
    if (op.kind == "mem.stride_copy") {
      const auto dst = address(op.s("dst_buf"), op.affine("dst_index"));
      const auto src = address(op.s("src_buf"), op.affine("src_index"));
      const std::int64_t elem = op.i("elem");
      const std::int64_t dstride = op.i("dst_stride");
      const std::int64_t sstride = op.i("src_stride");
      if (dstride == elem && sstride == elem) {
        b.mem_cpy(dst, src, op.i("count") * elem);  // degenerate: contiguous
      } else {
        b.mem_stride(dst, src, op.i("count"), dstride, sstride, elem);
      }
      return;
    }
    if (op.kind == "mem.fill") {
      const auto dst = address(op.s("buf"), op.affine("index"));
      const std::int64_t elem = op.i_or("elem", 1);
      const auto value = b.li(op.i("value"));
      b.vec_op(elem == 4 ? VecFunct::kFill32 : VecFunct::kFill8, dst, dst, value,
               op.i("len"));
      return;
    }
    if (op.kind == "cim.load") {
      const auto src = address(op.s("src_buf"), op.affine("src_index"));
      b.cim_load(src, op.i("mg"), op.i("rows"), op.i("cols"));
      return;
    }
    if (op.kind == "cim.mvm") {
      const auto in = address(op.s("in_buf"), op.affine("in_index"));
      const auto out = address(op.s("out_buf"), op.affine("out_index"));
      b.cim_mvm(in, out, op.i("mg"), op.i("acc") != 0, op.i("rows"), op.i("cols"),
                op.i("macs"));
      return;
    }
    if (op.kind == "vec.elt") {
      const auto funct = static_cast<VecFunct>(op.i("funct"));
      if (funct == VecFunct::kQuant || funct == VecFunct::kScaleCh8) {
        b.set_sreg(SReg::kQuantShift, op.i("shift"));
        b.set_sreg(SReg::kQuantZero, op.i_or("zero", 0));
      }
      if (funct == VecFunct::kLut8) {
        const std::int64_t lut_addr = static_cast<std::int64_t>(isa::make_local_address(
            static_cast<std::uint32_t>(segments_->offset("const") + op.i("lut_base"))));
        b.set_sreg(SReg::kLutBase, lut_addr);
      }
      if (funct == VecFunct::kScaleCh8) {
        b.set_sreg(SReg::kChannels, op.i("channels"));
      }
      if (funct == VecFunct::kRowSum32) {
        b.set_sreg(SReg::kPoolWin, op.i("pixels"));
      }
      if (funct == VecFunct::kDivRound8) {
        b.set_sreg(SReg::kAux1, op.i("divisor"));
      }
      const auto dst = address(op.s("dst_buf"), op.affine("dst_index"));
      const auto a = address(op.s("a_buf"), op.affine("a_index"));
      CodeBuilder::VReg bb = CodeBuilder::kNoReg;
      if (op.has("b_buf")) {
        bb = address(op.s("b_buf"), op.affine("b_index"));
      }
      b.vec_op(funct, dst, a, bb, op.i("len"));
      return;
    }
    if (op.kind == "vec.pool") {
      b.set_sreg(SReg::kPoolKh, op.i("kh"));
      b.set_sreg(SReg::kPoolKw, op.i("kw"));
      b.set_sreg(SReg::kPoolStride, op.i("stride"));
      b.set_sreg(SReg::kPoolWin, op.i("win"));
      b.set_sreg(SReg::kPoolChannels, op.i("channels"));
      b.set_sreg(SReg::kAux0, op.i("h_in"));
      // The source address points at the first window row used by this
      // output row: src_index + p_base * win * channels.
      ir::AffineExpr p_base;
      if (auto it = op.attrs.find("p_base");
          it != op.attrs.end() && std::holds_alternative<std::int64_t>(it->second)) {
        p_base = ir::AffineExpr(std::get<std::int64_t>(it->second));
      } else {
        p_base = op.affine("p_base");
      }
      ir::AffineExpr src = op.affine("src_index");
      src += p_base.scaled(op.i("win") * op.i("channels"));
      const auto src_reg = address(op.s("src_buf"), src);
      const auto dst = address(op.s("dst_buf"), op.affine("dst_index"));
      b.vec_pool(op.i("avg") != 0, dst, src_reg, op.i("out_w"));
      return;
    }
    if (op.kind == "comm.send") {
      const auto addr = address(op.s("buf"), op.affine("index"));
      b.send(addr, op.i("len"), op.i("dst_core"),
             static_cast<std::int32_t>(op.i("tag")));
      return;
    }
    if (op.kind == "comm.recv") {
      const auto addr = address(op.s("buf"), op.affine("index"));
      b.recv(addr, op.i("len"), op.i("src_core"),
             static_cast<std::int32_t>(op.i("tag")));
      return;
    }
    raise(ErrorCode::kInternal, "cannot lower IR op: " + op.kind);
  }

  const SegmentPlanner* segments_;
  CodeBuilder* builder_;
  std::map<std::string, CodeBuilder::VReg> vars_;
};

}  // namespace

void lower_func(const ir::Func& func, const SegmentPlanner& segments,
                CodeBuilder& builder) {
  FuncLowerer(segments, builder).run(func);
}

}  // namespace cimflow::compiler
