// Tile geometry: how one condensed operator's weight matrix maps onto the
// 2-D CIM array structure (paper Fig. 4, "Dimension Matching" /
// "2D CIM Array (H x W)"). Shared by the cost model (CG level) and the code
// generator (OP level) so planning and emission can never disagree.
#pragma once

#include <cstdint>

#include "cimflow/arch/arch_config.hpp"
#include "cimflow/graph/condense.hpp"

namespace cimflow::compiler {

/// Geometry of an MVM-anchored operator on macro-group tiles.
///
/// Dense convolution / FC: the im2col weight matrix is k_rows x k_cols
/// (k_rows = R*S*C or IN, k_cols = output channels) and is cut into
/// row_tiles x col_tiles tiles of mg_rows x mg_cols.
///
/// Depthwise convolution uses a block-diagonal layout: `dw_block` channels
/// share one tile (rows = R*S*dw_block, one weight column per channel), so
/// row_tiles = 1 and col_tiles = ceil(C / dw_block). Off-diagonal weights
/// are stored as zeros; active MACs per MVM are R*S per column, which the
/// energy model prices via the S_MACS hint.
struct TileGeometry {
  bool valid = false;
  bool depthwise = false;

  std::int64_t k_rows = 0;      ///< matmul rows (im2col contraction dim)
  std::int64_t k_cols = 0;      ///< matmul cols (output channels)
  std::int64_t row_tiles = 0;
  std::int64_t col_tiles = 0;
  std::int64_t dw_block = 0;    ///< channels per depthwise tile (0 if dense)

  std::int64_t out_h = 0;       ///< output positions grid
  std::int64_t out_w = 0;
  std::int64_t positions = 0;   ///< out_h * out_w

  std::int64_t total_tiles() const noexcept { return row_tiles * col_tiles; }

  /// Active rows of tile (rt, *): last row tile may be partial.
  std::int64_t tile_rows(std::int64_t rt, const arch::ArchConfig& arch) const;
  /// Active cols of tile (*, ct): last col tile may be partial.
  std::int64_t tile_cols(std::int64_t ct, const arch::ArchConfig& arch) const;
  /// Output channels covered by col tile ct (dw: dw_block channels).
  std::int64_t tile_channels(std::int64_t ct, const arch::ArchConfig& arch) const;
};

/// Computes geometry for the anchor of `group`; returns !valid for groups
/// without an MVM anchor (vector-only and input groups).
TileGeometry tile_geometry(const graph::Graph& graph, const graph::Group& group,
                           const arch::ArchConfig& arch);

/// Minimum cores able to hold the operator's tiles resident (conv/dwconv
/// must be fully resident: ceil(tiles / mg_per_unit); FC may stream row
/// passes, so its minimum is 1 core).
std::int64_t min_cores_for(const TileGeometry& geom, const graph::Graph& graph,
                           const graph::Group& group, const arch::ArchConfig& arch);

}  // namespace cimflow::compiler
