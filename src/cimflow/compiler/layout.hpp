// Memory layout shared between OP-level kernel building and program
// assembly: local-memory segment planning per core and global-memory
// placement of weights, activations and I/O regions.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cimflow/compiler/mapping.hpp"
#include "cimflow/graph/condense.hpp"

namespace cimflow::compiler {

/// Named local-memory buffers of one core for one stage. Fixed segments
/// (weight staging, im2col, psum, bias, constants, receive staging, spill)
/// are always present; activation buffers ("in", "out", "skip", "gate",
/// "win") are sized by the kernel builder. Offsets are local-memory byte
/// offsets (without the address-space tag bit).
class SegmentPlanner {
 public:
  explicit SegmentPlanner(const arch::ArchConfig& arch);

  /// Allocates (or returns the existing) buffer; throws
  /// Error(kCapacityExceeded) when local memory would overflow.
  std::int64_t allocate(const std::string& name, std::int64_t bytes);

  bool has(const std::string& name) const { return offsets_.count(name) != 0; }
  std::int64_t offset(const std::string& name) const;
  std::int64_t size(const std::string& name) const;
  std::int64_t used() const noexcept { return cursor_; }
  std::int64_t capacity() const noexcept { return capacity_; }

  /// Standard fixed segment sizes (kept in sync with the cost model's
  /// buffer-budget computation).
  static std::int64_t weight_stage_bytes(const arch::ArchConfig& arch);
  static std::int64_t im2col_bytes(const arch::ArchConfig& arch);
  static constexpr std::int64_t kPsumBytes = 48 * 1024;
  static constexpr std::int64_t kBiasBytes = 8 * 1024;
  static constexpr std::int64_t kConstBytes = 4 * 1024;
  /// Must stay >= the cost model's direct_out_limit: any direct chunk fits
  /// in staging because chunks never exceed a producer stripe buffer.
  static constexpr std::int64_t kRecvStageBytes = 128 * 1024;
  static constexpr std::int64_t kSpillBytes = 4 * 1024;

 private:
  std::int64_t capacity_;
  std::int64_t cursor_ = 0;
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> offsets_;  // name -> (off, size)
};

/// Global-memory placement of one inter-group tensor (activation), with one
/// slot per in-flight image: address(img) = base + img * per_image.
struct TensorPlacement {
  std::int64_t base = 0;
  std::int64_t per_image = 0;  ///< bytes (NHWC, full channel width)
};

/// Global-memory image: weights (pre-tiled per MG), biases, LUTs, activation
/// tensors, network input and output regions.
class GlobalLayout {
 public:
  /// Reserves `bytes` and returns the base offset (16-byte aligned).
  std::int64_t reserve(std::int64_t bytes);

  void place_tensor(graph::NodeId node, std::int64_t per_image_bytes, std::int64_t batch);
  bool has_tensor(graph::NodeId node) const { return tensors_.count(node) != 0; }
  const TensorPlacement& tensor(graph::NodeId node) const;

  std::int64_t total_bytes() const noexcept { return cursor_; }

 private:
  std::int64_t cursor_ = 0;
  std::map<graph::NodeId, TensorPlacement> tensors_;
};

/// Where the pre-tiled weights of one (group, replica-core, mg-slot, pass)
/// live in global memory. Filled by the weight-image builder; consumed by
/// kernel builders when emitting the CIM_LOAD preamble.
struct WeightTileRef {
  std::int64_t global_offset = 0;
  std::int64_t rows = 0;  ///< active rows (tile image is rows x cols bytes)
  std::int64_t cols = 0;
  std::int64_t macs = 0;  ///< nonzero-weight MACs (depthwise < rows*cols)
  std::int64_t row_tile = 0;
  std::int64_t col_tile = 0;
  std::int64_t mg_slot = 0;  ///< macro-group index within the core
  std::int64_t pass = 0;     ///< FC row-streaming pass
};

}  // namespace cimflow::compiler
