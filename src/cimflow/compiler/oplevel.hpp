// OP-level optimization (paper Sec. III-C, Fig. 4 bottom): builds one IR
// function per (stage, group, core) — the *virtual mapping* — then runs the
// physical-mapping pass pipeline (loop tiling / CIM-MVM extraction /
// memory-access annotation) to produce the loop nests the backend lowers to
// ISA instructions.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cimflow/compiler/layout.hpp"
#include "cimflow/compiler/mapping.hpp"
#include "cimflow/ir/ir.hpp"
#include "cimflow/ir/pass.hpp"

namespace cimflow::compiler {

/// How this core acquires one input tensor.
enum class InputStyle : std::uint8_t {
  kDirectWindow,    ///< NoC receive + scatter into the padded window buffer
  kGlobalPrefetch,  ///< whole window copied from global memory per image
  kGlobalRowWindow, ///< k-row window fetched from global per output row
};

/// One core-to-core chunk of a direct edge: rows/channels are in producer-
/// tensor coordinates, `tag` is the NoC message tag.
struct DirectChunk {
  std::int64_t peer_core = 0;
  std::int64_t row0 = 0, row1 = 0;
  std::int64_t ch0 = 0, ch1 = 0;
  std::int32_t tag = 0;
};

/// Source description of one input edge of a kernel.
struct EdgeSource {
  bool direct = false;
  InputStyle style = InputStyle::kGlobalPrefetch;
  std::vector<DirectChunk> chunks;           ///< direct mode receives
  TensorPlacement placement;                 ///< global mode (and graph inputs)
  std::vector<DirectChunk> doorbells;        ///< intra-stage global producers
  // Producer tensor geometry (full tensor, before any split):
  std::int64_t tensor_h = 1, tensor_w = 1, tensor_c = 1;
};

/// Everything the kernel builder needs for one (stage, group, core).
struct KernelContext {
  const graph::CondensedGraph* cg = nullptr;
  const arch::ArchConfig* arch = nullptr;
  graph::GroupId group = -1;
  GroupMapping mapping;
  std::int64_t replica = 0;  ///< replica index of this core
  std::int64_t lane = 0;     ///< intra-replica core index (column split)
  std::int64_t core_id = 0;
  std::int64_t batch = 1;

  std::vector<WeightTileRef> tiles;  ///< resident/streamed weight tiles
  std::int64_t bias_global = -1;     ///< global offset of this core's bias slice
  std::int64_t lut_global = -1;      ///< global offset of the LUT (if any)

  EdgeSource primary;                              ///< anchor's spatial input
  std::map<graph::NodeId, EdgeSource> secondary;   ///< skip adds / SE gates keyed
                                                   ///< by the consuming node

  bool write_global_out = false;
  TensorPlacement out_placement;              ///< valid when write_global_out
  std::vector<DirectChunk> direct_out;        ///< sends to direct consumers
  std::vector<DirectChunk> out_doorbells;     ///< doorbells to global consumers

  SegmentPlanner* segments = nullptr;  ///< this core's local-memory plan

  /// Memory-access annotation (paper Fig. 4): when true, input windows are
  /// prefetched at the highest loop level that fits local memory; when false
  /// (ablation), spatial kernels fall back to per-output-row window fetches.
  bool annotate_memory = true;
};

/// Builds the virtual-mapping IR for one kernel. The returned function
/// contains matmul.virtual placeholders; run the OP-level pipeline before
/// lowering. Throws Error(kUnsupported) for group shapes outside the
/// supported operator set.
ir::Func build_kernel(const KernelContext& ctx);

/// The physical-mapping pass: expands matmul.virtual ops into per-tile
/// cim.mvm sequences (loop tiling + MVM extraction of Fig. 4).
ir::Pass physical_mapping_pass();

/// Standard OP-level pipeline: canonicalize -> physical mapping -> memory
/// annotation (invariant hoisting) -> small-loop unrolling -> cleanup.
/// `hoist_memory` exists so ablation benches can disable the annotation.
ir::PassManager oplevel_pipeline(bool hoist_memory = true);

}  // namespace cimflow::compiler
