// Top-level compiler entry point: DNN graph + architecture + strategy ->
// executable whole-chip program (paper Fig. 2, "Compiler").
#pragma once

#include <cstdint>
#include <string>

#include "cimflow/compiler/mapping.hpp"
#include "cimflow/compiler/partition.hpp"
#include "cimflow/graph/graph.hpp"
#include "cimflow/isa/program.hpp"

namespace cimflow::compiler {

struct CompileOptions {
  Strategy strategy = Strategy::kDpOptimized;
  std::int64_t batch = 1;          ///< images per run (pipelined)
  bool materialize_data = true;    ///< write weights/LUTs into the global
                                   ///< image (required for functional sim;
                                   ///< timing-only sweeps can skip it)
  bool hoist_memory = true;        ///< OP-level memory-annotation pass
                                   ///< (ablation knob)
};

struct CompileStats {
  std::int64_t stages = 0;
  std::int64_t total_instructions = 0;
  std::int64_t global_bytes = 0;       ///< global-memory footprint
  std::int64_t weight_image_bytes = 0; ///< pre-tiled weight bytes
  double estimated_cycles = 0;         ///< CG-level cost-model estimate
};

struct CompileResult {
  isa::Program program;
  MappingPlan plan;
  CompileStats stats;
};

/// Compiles `graph` for `arch`. Throws Error(kCapacityExceeded /
/// kUnsupported / kInvalidConfig) on infeasible inputs.
CompileResult compile(const graph::Graph& graph, const arch::ArchConfig& arch,
                      const CompileOptions& options = {});

}  // namespace cimflow::compiler
