// Code generation backend (paper Fig. 4 "Code Generation"): lowers OP-level
// IR to CIMFlow ISA instructions. The CodeBuilder emits over an unbounded
// virtual register file; finalize() runs conventional compilation passes —
// constant-register reuse happens at emission, then liveness analysis,
// linear-scan register allocation with spilling, and branch fixup.
//
// Physical register convention: R0 is hardwired zero, R1-R4 are spill
// scratch, R31 holds the spill-segment base, R5-R30 are allocatable.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cimflow/arch/arch_config.hpp"
#include "cimflow/compiler/layout.hpp"
#include "cimflow/ir/ir.hpp"
#include "cimflow/isa/program.hpp"

namespace cimflow::compiler {

class CodeBuilder {
 public:
  using VReg = std::int32_t;
  static constexpr VReg kNoReg = -1;

  explicit CodeBuilder(const arch::ArchConfig& arch) : arch_(&arch) {}

  /// Returns a virtual register holding `value` (cached per constant).
  VReg li(std::int64_t value);

  /// Fresh virtual register (mutable; not const-cached).
  VReg fresh();

  // --- scalar ---------------------------------------------------------------
  void sc_op(isa::ScalarFunct fn, VReg dst, VReg a, VReg b);
  void sc_addi(isa::ScalarFunct fn, VReg dst, VReg src, std::int64_t imm);
  /// dst = a + b * coeff (expands to MUL/ADD or ADDI as profitable).
  VReg add_scaled(VReg base, VReg var, std::int64_t coeff);

  // --- special registers (cached writes) -------------------------------------
  void set_sreg(isa::SReg sreg, std::int64_t value);
  void set_sreg_dynamic(isa::SReg sreg, VReg value);

  // --- memory / cim / vector / comm ------------------------------------------
  void mem_cpy(VReg dst_addr, VReg src_addr, std::int64_t len);
  void mem_stride(VReg dst_addr, VReg src_addr, std::int64_t count,
                  std::int64_t dst_stride, std::int64_t src_stride, std::int64_t elem);
  void cim_load(VReg src_addr, std::int64_t mg, std::int64_t rows, std::int64_t cols);
  void cim_mvm(VReg in_addr, VReg out_addr, std::int64_t mg, bool accumulate,
               std::int64_t rows, std::int64_t cols, std::int64_t macs);
  void vec_op(isa::VecFunct fn, VReg dst, VReg a, VReg b, std::int64_t len);
  void vec_pool(bool avg, VReg dst, VReg src, std::int64_t out_w);
  void send(VReg addr, std::int64_t len, std::int64_t dst_core, std::int32_t tag);
  void recv(VReg addr, std::int64_t len, std::int64_t src_core, std::int32_t tag);
  void barrier(std::int32_t id);
  void halt();

  // --- loops ------------------------------------------------------------------
  struct Loop {
    VReg iv = kNoReg;
    std::size_t head = 0;
    std::int64_t upper = 0;
    std::int64_t step = 1;
  };
  Loop loop_begin(std::int64_t lower, std::int64_t upper, std::int64_t step = 1);
  void loop_end(Loop& loop);

  /// Number of instructions emitted so far (pre-allocation).
  std::size_t size() const noexcept { return emitted_.size(); }

  /// Drops the constant-register and S-register caches. Called between
  /// kernels/stages so constant live ranges stay local (otherwise a constant
  /// first used in stage 0 and last used in stage N pins a register — or a
  /// spill slot — for the whole program).
  void clear_caches() {
    const_cache_.clear();
    sreg_cache_.clear();
  }

  /// Runs register allocation + branch fixup and returns final instructions.
  /// `spill_base` is the local-memory offset of the spill area.
  std::vector<isa::Instruction> finalize(std::int64_t spill_base);

 private:
  struct Emitted {
    isa::Instruction inst;
    VReg rs = kNoReg, rt = kNoReg, re = kNoReg, rd = kNoReg;
    std::ptrdiff_t branch_target = -1;  ///< emitted-index branch target
  };

  void push(Emitted e) { emitted_.push_back(std::move(e)); }
  void invalidate_sreg_cache() { sreg_cache_.clear(); }

  const arch::ArchConfig* arch_;
  std::vector<Emitted> emitted_;
  VReg next_vreg_ = 0;
  std::map<std::int64_t, VReg> const_cache_;
  std::map<std::uint8_t, std::int64_t> sreg_cache_;
};

/// Lowers one OP-level IR function into the builder. Buffer names resolve
/// through `segments`; the reserved buffer "global" addresses global memory.
void lower_func(const ir::Func& func, const SegmentPlanner& segments,
                CodeBuilder& builder);

}  // namespace cimflow::compiler
