// Whole-program assembly: builds the global-memory image (pre-tiled weights,
// biases, LUTs, activation tensors), wires inter-core transfers, builds and
// lowers every per-core kernel, and stitches stage barriers — producing the
// executable isa::Program (paper Fig. 4 "Inter-core Scheduling" + "Code
// Generation").
#include <algorithm>
#include <map>
#include <set>

#include "cimflow/compiler/compiler.hpp"
#include "cimflow/compiler/cost_model.hpp"
#include "cimflow/compiler/lower.hpp"
#include "cimflow/compiler/oplevel.hpp"
#include "cimflow/support/logging.hpp"
#include "cimflow/support/numeric.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"
#include "cimflow/support/trace.hpp"

namespace cimflow::compiler {
namespace {

using graph::GroupId;
using graph::NodeId;

class ProgramAssembler {
 public:
  ProgramAssembler(const graph::CondensedGraph& cg, const arch::ArchConfig& arch,
                   const MappingPlan& plan, const CompileOptions& opt)
      : cg_(&cg), arch_(&arch), plan_(&plan), opt_(&opt) {}

  CompileResult run();

 private:
  // --- tensor identity -------------------------------------------------------

  /// Resolves layout no-ops: a Flatten node's tensor IS its input's tensor.
  NodeId effective(NodeId node) const {
    const graph::Node& n = cg_->source().node(node);
    if (n.kind == graph::OpKind::kFlatten) return effective(n.inputs.at(0));
    return node;
  }

  /// The node whose tensor a group exports (must be unique).
  NodeId exported_node(const graph::Group& group) const {
    return effective(group.nodes.back());
  }

  const graph::Shape& tensor_shape(NodeId node) const {
    return cg_->source().node(node).out_shape;
  }

  // --- phases ------------------------------------------------------------------

  void check_single_export() const;
  void place_tensors();
  void build_weight_images();
  void emit_programs();

  // --- helpers -----------------------------------------------------------------

  void write_image(std::int64_t offset, const std::uint8_t* data, std::int64_t len) {
    if (!opt_->materialize_data) return;
    if (static_cast<std::int64_t>(image_.size()) < offset + len) {
      image_.resize(static_cast<std::size_t>(offset + len), 0);
    }
    std::copy(data, data + len, image_.begin() + static_cast<std::ptrdiff_t>(offset));
  }

  std::int32_t next_tag(std::int64_t src_core, std::int64_t dst_core) {
    std::int32_t& counter = tag_counters_[{src_core, dst_core}];
    if (counter >= 1023) {
      raise(ErrorCode::kCapacityExceeded, "NoC tag space exhausted for core pair");
    }
    return counter++;
  }

  struct Region {
    std::int64_t row0 = 0, row1 = 0, ch0 = 0, ch1 = 0;
    bool empty() const { return row0 >= row1 || ch0 >= ch1; }
  };

  /// Rows/channels of the producer tensor a consumer core needs for `edge`.
  Region needed_region(const graph::Group& consumer, const GroupMapping& cm,
                       std::int64_t replica, std::int64_t lane, NodeId member,
                       bool primary, const graph::Shape& tensor) const;

  /// Rows/channels of its tensor one producer core holds.
  Region produced_region(const graph::Group& producer, const GroupMapping& pm,
                         std::int64_t replica, std::int64_t lane) const;

  std::pair<std::int64_t, std::int64_t> vector_channel_range(
      const GroupMapping& m, std::int64_t lane, std::int64_t channels) const {
    if (m.geom.valid) {
      GroupMapping copy = m;
      return copy.channel_range(lane, *arch_);
    }
    const std::int64_t per = ceil_div(channels, m.cores_per_replica);
    const std::int64_t c0 = std::min(channels, lane * per);
    return {c0, std::min(channels, c0 + per)};
  }

  const graph::CondensedGraph* cg_;
  const arch::ArchConfig* arch_;
  const MappingPlan* plan_;
  const CompileOptions* opt_;

  GlobalLayout layout_;
  std::vector<std::uint8_t> image_;
  std::map<std::pair<std::int64_t, std::int64_t>, std::int32_t> tag_counters_;

  // Per (group, lane): resident/streamed weight tiles and bias placement.
  std::map<std::pair<GroupId, std::int64_t>, std::vector<WeightTileRef>> tiles_;
  std::map<std::pair<GroupId, std::int64_t>, std::int64_t> bias_offsets_;
  std::map<GroupId, std::int64_t> lut_offsets_;

  std::int64_t weight_image_bytes_ = 0;
};

void ProgramAssembler::check_single_export() const {
  for (const graph::Group& group : cg_->groups()) {
    if (group.is_input) continue;
    const NodeId exported = exported_node(group);
    for (NodeId member : group.nodes) {
      if (effective(member) == exported) continue;
      const graph::Node& node = cg_->source().node(member);
      for (NodeId user : node.users) {
        if (cg_->group_of(user) != group.id &&
            cg_->source().node(user).kind != graph::OpKind::kFlatten) {
          raise(ErrorCode::kUnsupported,
                "group " + group.name + " exports more than one tensor (" +
                    node.name + ")");
        }
      }
      if (member == cg_->source().output() && member != group.nodes.back()) {
        raise(ErrorCode::kUnsupported,
              "graph output is an interior node of group " + group.name);
      }
    }
  }
}

void ProgramAssembler::place_tensors() {
  for (const graph::Group& group : cg_->groups()) {
    const NodeId exported =
        group.is_input ? group.nodes.front() : exported_node(group);
    layout_.place_tensor(exported, tensor_shape(exported).per_image(), opt_->batch);
  }
}

void ProgramAssembler::build_weight_images() {
  for (const StagePlan& stage : plan_->stages) {
    for (GroupId gid : stage.groups) {
      const graph::Group& group = cg_->group(gid);
      const GroupMapping& m = stage.mappings.at(gid);
      if (!m.geom.valid) continue;
      const graph::Node& anchor = cg_->source().node(group.anchor);
      const graph::Shape in = cg_->source().node(anchor.inputs.at(0)).out_shape;
      const std::int64_t mg_rows = arch_->mg_rows();
      const std::int64_t mg_cols = arch_->mg_cols();
      const std::int64_t mg = arch_->core().mg_per_unit;
      const std::vector<std::int8_t>& w = *anchor.weights;

      for (std::int64_t lane = 0; lane < m.cores_per_replica; ++lane) {
        GroupMapping probe = m;
        const auto [ct0, ct1] = probe.col_tile_range(lane);
        std::vector<WeightTileRef>& refs = tiles_[{gid, lane}];
        std::int64_t slot = 0;
        for (std::int64_t ct = ct0; ct < ct1; ++ct) {
          if (m.geom.depthwise) {
            const std::int64_t taps = anchor.conv().kernel * anchor.conv().kernel;
            const std::int64_t c0 = ct * m.geom.dw_block;
            const std::int64_t chans = std::min(m.geom.dw_block, m.geom.k_cols - c0);
            WeightTileRef ref;
            ref.rows = taps * chans;
            ref.cols = chans;
            ref.macs = taps * chans;
            ref.row_tile = 0;
            ref.col_tile = ct;
            ref.mg_slot = slot % mg;
            ref.pass = slot / mg;
            ++slot;
            ref.global_offset = layout_.reserve(ref.rows * ref.cols);
            if (opt_->materialize_data) {
              std::vector<std::uint8_t> tile(
                  static_cast<std::size_t>(ref.rows * ref.cols), 0);
              for (std::int64_t j = 0; j < chans; ++j) {
                for (std::int64_t t = 0; t < taps; ++t) {
                  const std::int64_t row = t * chans + j;
                  tile[static_cast<std::size_t>(row * ref.cols + j)] =
                      static_cast<std::uint8_t>(w[static_cast<std::size_t>(
                          (c0 + j) * taps + t)]);
                }
              }
              write_image(ref.global_offset, tile.data(),
                          static_cast<std::int64_t>(tile.size()));
            }
            weight_image_bytes_ += ref.rows * ref.cols;
            refs.push_back(ref);
            continue;
          }
          for (std::int64_t rt = 0; rt < m.geom.row_tiles; ++rt) {
            WeightTileRef ref;
            ref.rows = std::min(mg_rows, m.geom.k_rows - rt * mg_rows);
            ref.cols = std::min(mg_cols, m.geom.k_cols - ct * mg_cols);
            ref.macs = ref.rows * ref.cols;
            ref.row_tile = rt;
            ref.col_tile = ct;
            ref.mg_slot = slot % mg;
            ref.pass = slot / mg;
            ++slot;
            ref.global_offset = layout_.reserve(ref.rows * ref.cols);
            if (opt_->materialize_data) {
              std::vector<std::uint8_t> tile(
                  static_cast<std::size_t>(ref.rows * ref.cols));
              const std::int64_t kernel =
                  anchor.kind == graph::OpKind::kConv2d ? anchor.conv().kernel : 1;
              for (std::int64_t i = 0; i < ref.rows; ++i) {
                const std::int64_t mrow = rt * mg_rows + i;
                for (std::int64_t j = 0; j < ref.cols; ++j) {
                  const std::int64_t k = ct * mg_cols + j;
                  std::int64_t widx;
                  if (anchor.kind == graph::OpKind::kConv2d) {
                    const std::int64_t c = mrow % in.c;
                    const std::int64_t s = (mrow / in.c) % kernel;
                    const std::int64_t r = mrow / (in.c * kernel);
                    widx = ((k * kernel + r) * kernel + s) * in.c + c;
                  } else {  // fully connected: W[o][i]
                    widx = k * m.geom.k_rows + mrow;
                  }
                  tile[static_cast<std::size_t>(i * ref.cols + j)] =
                      static_cast<std::uint8_t>(w[static_cast<std::size_t>(widx)]);
                }
              }
              write_image(ref.global_offset, tile.data(),
                          static_cast<std::int64_t>(tile.size()));
            }
            weight_image_bytes_ += ref.rows * ref.cols;
            refs.push_back(ref);
          }
        }
        // Non-FC kernels must keep every tile resident.
        if (anchor.kind != graph::OpKind::kFullyConnected) {
          for (const WeightTileRef& ref : refs) {
            CIMFLOW_CHECK(ref.pass == 0, "conv tiles exceed macro groups per core");
          }
        }
        // Bias slice for this lane.
        if (anchor.bias) {
          const auto [k0, k1] = probe.channel_range(lane, *arch_);
          const std::int64_t bytes = (k1 - k0) * 4;
          const std::int64_t offset = layout_.reserve(bytes);
          bias_offsets_[{gid, lane}] = offset;
          if (opt_->materialize_data) {
            std::vector<std::uint8_t> blob(static_cast<std::size_t>(bytes));
            for (std::int64_t k = k0; k < k1; ++k) {
              const std::uint32_t v = static_cast<std::uint32_t>(
                  (*anchor.bias)[static_cast<std::size_t>(k)]);
              for (int b = 0; b < 4; ++b) {
                blob[static_cast<std::size_t>((k - k0) * 4 + b)] =
                    static_cast<std::uint8_t>((v >> (8 * b)) & 0xFF);
              }
            }
            write_image(offset, blob.data(), bytes);
          }
        }
      }
      // LUT table (at most one distinct table per group).
      const std::array<std::int8_t, 256>* table = nullptr;
      for (NodeId member : group.nodes) {
        const graph::Node& node = cg_->source().node(member);
        if (node.kind != graph::OpKind::kLut) continue;
        if (table != nullptr && !(node.lut().table == *table)) {
          raise(ErrorCode::kUnsupported,
                "group " + group.name + " fuses two distinct LUTs");
        }
        table = &node.lut().table;
      }
      if (table != nullptr) {
        const std::int64_t offset = layout_.reserve(256);
        lut_offsets_[gid] = offset;
        write_image(offset, reinterpret_cast<const std::uint8_t*>(table->data()), 256);
      }
    }
  }
}

ProgramAssembler::Region ProgramAssembler::needed_region(
    const graph::Group& consumer, const GroupMapping& cm, std::int64_t replica,
    std::int64_t lane, NodeId member, bool primary,
    const graph::Shape& tensor) const {
  GroupMapping m = cm;  // non-const copy for the helper accessors
  Region region;
  const graph::Node& first = cg_->source().node(consumer.nodes.front());
  const auto [p0, p1] = m.stripe(replica);
  if (!primary) {
    const graph::Node& node = cg_->source().node(member);
    if (node.kind == graph::OpKind::kScaleChannels) {
      region.row0 = 0;
      region.row1 = tensor.h;
    } else {  // residual add at the consumer's own stripe
      region.row0 = p0;
      region.row1 = p1;
    }
    const auto [c0, c1] = vector_channel_range(m, lane, tensor.c);
    region.ch0 = c0;
    region.ch1 = c1;
    return region;
  }
  std::int64_t kernel = 1, stride = 1, pad = 0;
  bool slice_channels = false;
  switch (first.kind) {
    case graph::OpKind::kConv2d:
    case graph::OpKind::kDepthwiseConv2d: {
      kernel = first.conv().kernel;
      stride = first.conv().stride;
      pad = first.conv().pad;
      break;
    }
    case graph::OpKind::kMaxPool:
    case graph::OpKind::kAvgPool: {
      kernel = first.pool().kernel;
      stride = first.pool().stride;
      pad = first.pool().pad;
      slice_channels = true;
      break;
    }
    default:
      // FC / GAP: whole tensor.
      region.row0 = 0;
      region.row1 = tensor.h;
      region.ch0 = 0;
      region.ch1 = tensor.c;
      return region;
  }
  region.row0 = std::max<std::int64_t>(0, p0 * stride - pad);
  region.row1 = std::min(tensor.h, (p1 - 1) * stride - pad + kernel);
  if (slice_channels) {
    const auto [c0, c1] = vector_channel_range(m, lane, tensor.c);
    region.ch0 = c0;
    region.ch1 = c1;
  } else {
    region.ch0 = 0;
    region.ch1 = tensor.c;
  }
  return region;
}

ProgramAssembler::Region ProgramAssembler::produced_region(
    const graph::Group& producer, const GroupMapping& pm, std::int64_t replica,
    std::int64_t lane) const {
  GroupMapping m = pm;
  Region region;
  const auto [p0, p1] = m.stripe(replica);
  region.row0 = p0;
  region.row1 = p1;
  const graph::Shape out = tensor_shape(exported_node(producer));
  const auto [c0, c1] = vector_channel_range(m, lane, out.c);
  region.ch0 = c0;
  region.ch1 = c1;
  return region;
}

CompileResult ProgramAssembler::run() {
  {
    // Tensor placement + weight tiling into per-macro-group images.
    CIMFLOW_TRACE_SPAN("compile.tiling");
    check_single_export();
    place_tensors();
    build_weight_images();
  }
  CIMFLOW_TRACE_SPAN("compile.codegen");

  const std::int64_t core_count = arch_->chip().core_count;
  std::vector<CodeBuilder> builders;
  builders.reserve(static_cast<std::size_t>(core_count));
  for (std::int64_t i = 0; i < core_count; ++i) builders.emplace_back(*arch_);

  for (std::size_t stage_idx = 0; stage_idx < plan_->stages.size(); ++stage_idx) {
    const StagePlan& stage = plan_->stages[stage_idx];

    // ---- Wire all edges of this stage ------------------------------------
    // recv side: (consumer group, member-or-(-1 for primary), core) -> chunks
    std::map<std::tuple<GroupId, NodeId, std::int64_t>, std::vector<DirectChunk>>
        recv_chunks;
    std::map<std::tuple<GroupId, NodeId, std::int64_t>, std::vector<DirectChunk>>
        recv_bells;
    std::map<std::int64_t, std::vector<DirectChunk>> send_chunks;  // by producer core
    std::map<std::int64_t, std::vector<DirectChunk>> send_bells;

    auto wire_edge = [&](const graph::Group& consumer, const GroupMapping& cm,
                         NodeId member, bool primary, NodeId producer_node) {
      const GroupId pg = cg_->group_of(producer_node);
      const graph::Group& producer = cg_->group(pg);
      if (producer.is_input || !stage.contains(pg)) return;  // global, no bells needed
      const auto mode_it = stage.edge_modes.find({pg, consumer.id});
      const TransferMode mode =
          mode_it != stage.edge_modes.end() ? mode_it->second : TransferMode::kGlobal;
      const GroupMapping& pm = stage.mappings.at(pg);
      const graph::Shape tensor = tensor_shape(exported_node(producer));
      for (std::int64_t rc = 0; rc < cm.replicas; ++rc) {
        for (std::int64_t jc = 0; jc < cm.cores_per_replica; ++jc) {
          const std::int64_t ccore = cm.core_at(rc, jc);
          const Region need = needed_region(consumer, cm, rc, jc, member, primary, tensor);
          for (std::int64_t rp = 0; rp < pm.replicas; ++rp) {
            for (std::int64_t jp = 0; jp < pm.cores_per_replica; ++jp) {
              const std::int64_t pcore = pm.core_at(rp, jp);
              if (mode == TransferMode::kGlobal) {
                // Doorbell: one token per producer core per image.
                DirectChunk bell;
                bell.peer_core = pcore;
                bell.tag = next_tag(pcore, ccore);
                recv_bells[{consumer.id, member, ccore}].push_back(bell);
                DirectChunk sbell = bell;
                sbell.peer_core = ccore;
                send_bells[pcore].push_back(sbell);
                continue;
              }
              const Region have = produced_region(producer, pm, rp, jp);
              Region chunk;
              chunk.row0 = std::max(need.row0, have.row0);
              chunk.row1 = std::min(need.row1, have.row1);
              chunk.ch0 = std::max(need.ch0, have.ch0);
              chunk.ch1 = std::min(need.ch1, have.ch1);
              if (chunk.empty()) continue;
              DirectChunk dc;
              dc.peer_core = pcore;
              dc.row0 = chunk.row0;
              dc.row1 = chunk.row1;
              dc.ch0 = chunk.ch0;
              dc.ch1 = chunk.ch1;
              dc.tag = next_tag(pcore, ccore);
              recv_chunks[{consumer.id, member, ccore}].push_back(dc);
              DirectChunk sc = dc;
              sc.peer_core = ccore;
              send_chunks[pcore].push_back(sc);
            }
          }
        }
      }
    };

    for (GroupId gid : stage.groups) {
      const graph::Group& consumer = cg_->group(gid);
      const GroupMapping& cm = stage.mappings.at(gid);
      const graph::Node& first = cg_->source().node(consumer.nodes.front());
      wire_edge(consumer, cm, -1, /*primary=*/true, effective(first.inputs.at(0)));
      for (NodeId member : consumer.nodes) {
        const graph::Node& node = cg_->source().node(member);
        if (member == consumer.nodes.front()) continue;
        for (NodeId input : node.inputs) {
          if (cg_->group_of(input) == gid) continue;
          wire_edge(consumer, cm, member, /*primary=*/false, effective(input));
        }
      }
    }

    // ---- Build + lower each core's kernel --------------------------------
    for (GroupId gid : stage.groups) {
      const graph::Group& group = cg_->group(gid);
      const GroupMapping& m = stage.mappings.at(gid);
      const graph::Node& first = cg_->source().node(group.nodes.front());
      const NodeId primary_node = effective(first.inputs.at(0));
      const GroupId primary_group = cg_->group_of(primary_node);

      // Does this group's output go to global memory?
      bool write_global = (exported_node(group) == effective(cg_->source().output()));
      for (GroupId succ : group.succs) {
        const auto it = stage.edge_modes.find({gid, succ});
        if (it == stage.edge_modes.end() || it->second == TransferMode::kGlobal) {
          write_global = true;
        }
      }
      if (group.succs.empty()) write_global = true;

      for (std::int64_t r = 0; r < m.replicas; ++r) {
        for (std::int64_t j = 0; j < m.cores_per_replica; ++j) {
          const std::int64_t core = m.core_at(r, j);
          KernelContext ctx;
          ctx.cg = cg_;
          ctx.arch = arch_;
          ctx.group = gid;
          ctx.mapping = m;
          ctx.replica = r;
          ctx.lane = j;
          ctx.core_id = core;
          ctx.batch = opt_->batch;
          ctx.annotate_memory = opt_->hoist_memory;
          if (auto it = tiles_.find({gid, j}); it != tiles_.end()) ctx.tiles = it->second;
          if (auto it = bias_offsets_.find({gid, j}); it != bias_offsets_.end()) {
            ctx.bias_global = it->second;
          }
          if (auto it = lut_offsets_.find(gid); it != lut_offsets_.end()) {
            ctx.lut_global = it->second;
          }

          // Primary input.
          {
            EdgeSource& edge = ctx.primary;
            const graph::Shape t = tensor_shape(primary_node);
            edge.tensor_h = t.h;
            edge.tensor_w = t.w;
            edge.tensor_c = t.c;
            edge.placement = layout_.tensor(primary_node);
            auto rc = recv_chunks.find({gid, -1, core});
            if (rc != recv_chunks.end() && !rc->second.empty()) {
              edge.direct = true;
              edge.style = InputStyle::kDirectWindow;
              edge.chunks = rc->second;
            } else {
              edge.direct = false;
              // Prefetch when the window fits the direct-in budget.
              const BufferBudget budget = buffer_budget(*arch_);
              const std::int64_t window =
                  consumer_window_bytes(*cg_, group, m, *arch_);
              edge.style = window <= budget.direct_in_limit
                               ? InputStyle::kGlobalPrefetch
                               : InputStyle::kGlobalRowWindow;
              if (auto rb = recv_bells.find({gid, -1, core}); rb != recv_bells.end()) {
                edge.doorbells = rb->second;
              }
            }
            // Intra-stage direct edges only exist when the mode says so; an
            // empty chunk list with a direct mode means this core needs no
            // data (possible for extreme striping) — keep it global-free.
            if (primary_group >= 0 && !cg_->group(primary_group).is_input &&
                stage.contains(primary_group)) {
              const auto mode_it = stage.edge_modes.find({primary_group, gid});
              if (mode_it != stage.edge_modes.end() &&
                  mode_it->second == TransferMode::kDirect) {
                edge.direct = true;
                edge.style = InputStyle::kDirectWindow;
              }
            }
          }

          // Secondary inputs.
          for (NodeId member : group.nodes) {
            const graph::Node& node = cg_->source().node(member);
            if (member == group.nodes.front()) continue;
            for (NodeId input : node.inputs) {
              if (cg_->group_of(input) == gid) continue;
              EdgeSource edge;
              const NodeId src = effective(input);
              const graph::Shape t = tensor_shape(src);
              edge.tensor_h = t.h;
              edge.tensor_w = t.w;
              edge.tensor_c = t.c;
              edge.placement = layout_.tensor(src);
              const GroupId sg = cg_->group_of(src);
              if (stage.contains(sg)) {
                const auto mode_it = stage.edge_modes.find({sg, gid});
                edge.direct = mode_it != stage.edge_modes.end() &&
                              mode_it->second == TransferMode::kDirect;
              }
              if (auto rc = recv_chunks.find({gid, member, core});
                  rc != recv_chunks.end()) {
                edge.chunks = rc->second;
              }
              if (auto rb = recv_bells.find({gid, member, core});
                  rb != recv_bells.end()) {
                edge.doorbells = rb->second;
              }
              ctx.secondary.emplace(member, std::move(edge));
            }
          }

          // Output side.
          ctx.write_global_out = write_global;
          ctx.out_placement = layout_.tensor(exported_node(group));
          if (auto sc = send_chunks.find(core); sc != send_chunks.end()) {
            ctx.direct_out = sc->second;
          }
          if (auto sb = send_bells.find(core); sb != send_bells.end()) {
            ctx.out_doorbells = sb->second;
          }

          // Build IR, run the OP-level pipeline, lower into this core.
          // One compile.lower span per emitted kernel, nested inside
          // compile.codegen (phase_timings counts both).
          CIMFLOW_TRACE_SPAN("compile.lower");
          SegmentPlanner segments(*arch_);
          ctx.segments = &segments;
          ir::Module module;
          module.name = strprintf("stage%zu", stage_idx);
          module.funcs.push_back(build_kernel(ctx));
          oplevel_pipeline(opt_->hoist_memory).run(module);
          CodeBuilder& builder = builders[static_cast<std::size_t>(core)];
          builder.clear_caches();  // keep constant live ranges kernel-local
          lower_func(module.funcs.front(), segments, builder);
          builder.clear_caches();
        }
      }
    }

    // ---- Stage barrier on every core --------------------------------------
    for (std::int64_t core = 0; core < core_count; ++core) {
      builders[static_cast<std::size_t>(core)].barrier(
          static_cast<std::int32_t>(stage_idx));
    }
  }

  // ---- Finalize ------------------------------------------------------------
  CompileResult result;
  result.plan = *plan_;
  result.program = isa::Program(core_count);
  const SegmentPlanner reference(*arch_);
  const std::int64_t spill_base = reference.offset("spill");
  for (std::int64_t core = 0; core < core_count; ++core) {
    CodeBuilder& b = builders[static_cast<std::size_t>(core)];
    b.halt();
    result.program.cores[static_cast<std::size_t>(core)].code =
        b.finalize(spill_base);
    const std::int64_t words = static_cast<std::int64_t>(
        result.program.cores[static_cast<std::size_t>(core)].size());
    if (words > arch_->core().instr_mem_words) {
      raise(ErrorCode::kCapacityExceeded,
            strprintf("core %lld program (%lld words) exceeds instruction memory",
                      (long long)core, (long long)words));
    }
  }

  const NodeId input_node = cg_->source().inputs().front();
  const NodeId output_node = effective(cg_->source().output());
  result.program.input_global_offset =
      static_cast<std::uint32_t>(layout_.tensor(input_node).base);
  result.program.input_bytes_per_image = layout_.tensor(input_node).per_image;
  result.program.output_global_offset =
      static_cast<std::uint32_t>(layout_.tensor(output_node).base);
  result.program.output_bytes_per_image = layout_.tensor(output_node).per_image;
  result.program.batch = opt_->batch;
  result.program.barrier_count = static_cast<std::int64_t>(plan_->stages.size());
  if (opt_->materialize_data) {
    image_.resize(static_cast<std::size_t>(layout_.total_bytes()), 0);
    result.program.global_image = std::move(image_);
  }

  result.stats.stages = static_cast<std::int64_t>(plan_->stages.size());
  result.stats.total_instructions = result.program.total_instructions();
  result.stats.global_bytes = layout_.total_bytes();
  result.stats.weight_image_bytes = weight_image_bytes_;
  result.stats.estimated_cycles = plan_->estimated_cycles;
  return result;
}

}  // namespace

CompileResult compile(const graph::Graph& graph, const arch::ArchConfig& arch,
                      const CompileOptions& options) {
  graph.verify();
  const graph::CondensedGraph cg = [&] {
    // Graph partitioning: condense the DNN into closure groups.
    CIMFLOW_TRACE_SPAN("compile.partition");
    return graph::CondensedGraph::build(graph);
  }();
  const MappingPlan plan = [&] {
    // CG-level partitioning + macro-group/core mapping.
    CIMFLOW_TRACE_SPAN("compile.mapping");
    return plan_mapping(cg, arch, options.strategy, options.batch);
  }();
  ProgramAssembler assembler(cg, arch, plan, options);
  CompileResult result = assembler.run();
  CIMFLOW_INFO() << graph.name() << " compiled with strategy '" << result.plan.strategy
                 << "': " << result.stats.stages << " stage(s), "
                 << result.stats.total_instructions << " instructions";
  return result;
}

}  // namespace cimflow::compiler
