#include "cimflow/compiler/oplevel.hpp"

#include "cimflow/compiler/cost_model.hpp"

#include <algorithm>
#include <functional>

#include "cimflow/isa/opcode.hpp"
#include "cimflow/support/numeric.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::compiler {
namespace {

using ir::AffineExpr;
using ir::Op;

std::int64_t vf(isa::VecFunct f) { return static_cast<std::int64_t>(f); }

// ---------------------------------------------------------------------------
// Small op factories
// ---------------------------------------------------------------------------

Op op_copy(const std::string& dst, AffineExpr didx, const std::string& src,
           AffineExpr sidx, std::int64_t len) {
  Op op("mem.copy");
  op.set("dst_buf", dst).set("dst_index", std::move(didx));
  op.set("src_buf", src).set("src_index", std::move(sidx));
  op.set("len", len);
  return op;
}

Op op_stride_copy(const std::string& dst, AffineExpr didx, std::int64_t dstride,
                  const std::string& src, AffineExpr sidx, std::int64_t sstride,
                  std::int64_t count, std::int64_t elem) {
  Op op("mem.stride_copy");
  op.set("dst_buf", dst).set("dst_index", std::move(didx)).set("dst_stride", dstride);
  op.set("src_buf", src).set("src_index", std::move(sidx)).set("src_stride", sstride);
  op.set("count", count).set("elem", elem);
  return op;
}

Op op_fill(const std::string& buf, AffineExpr idx, std::int64_t len, std::int64_t value,
           std::int64_t elem = 1) {
  Op op("mem.fill");
  op.set("buf", buf).set("index", std::move(idx)).set("len", len);
  op.set("value", value).set("elem", elem);
  return op;
}

Op op_vec(isa::VecFunct funct, const std::string& dst, AffineExpr didx,
          const std::string& a, AffineExpr aidx, std::int64_t len) {
  Op op("vec.elt");
  op.set("funct", vf(funct));
  op.set("dst_buf", dst).set("dst_index", std::move(didx));
  op.set("a_buf", a).set("a_index", std::move(aidx));
  op.set("len", len);
  return op;
}

Op op_send(const std::string& buf, AffineExpr idx, std::int64_t len, std::int64_t core,
           std::int64_t tag) {
  Op op("comm.send");
  op.set("buf", buf).set("index", std::move(idx)).set("len", len);
  op.set("dst_core", core).set("tag", tag);
  return op;
}

Op op_recv(const std::string& buf, AffineExpr idx, std::int64_t len, std::int64_t core,
           std::int64_t tag) {
  Op op("comm.recv");
  op.set("buf", buf).set("index", std::move(idx)).set("len", len);
  op.set("src_core", core).set("tag", tag);
  return op;
}

// ---------------------------------------------------------------------------
// KernelBuilder
// ---------------------------------------------------------------------------

class KernelBuilder {
 public:
  explicit KernelBuilder(const KernelContext& ctx) : ctx_(ctx) {
    const graph::CondensedGraph& cg = *ctx_.cg;
    group_ = &cg.group(ctx_.group);
    anchor_ = group_->anchor != graph::kInvalidNode
                  ? &cg.source().node(group_->anchor)
                  : nullptr;
    classify();
  }

  ir::Func build() {
    ir::Func func;
    func.name = strprintf("%s_core%lld", group_->name.c_str(), (long long)ctx_.core_id);
    region_stack_.push_back(&func.body);
    plan_geometry();
    plan_buffers();
    if (kind_ == Kind::kFc) {
      build_fc();
    } else {
      build_spatial();
    }
    region_stack_.pop_back();
    return func;
  }

 private:
  enum class Kind { kConv, kDepthwise, kFc, kPool, kGap };

  void classify() {
    if (anchor_ != nullptr) {
      switch (anchor_->kind) {
        case graph::OpKind::kConv2d: kind_ = Kind::kConv; return;
        case graph::OpKind::kDepthwiseConv2d: kind_ = Kind::kDepthwise; return;
        case graph::OpKind::kFullyConnected: kind_ = Kind::kFc; return;
        default: break;
      }
    }
    const graph::Node& first = ctx_.cg->source().node(group_->nodes.front());
    switch (first.kind) {
      case graph::OpKind::kMaxPool:
      case graph::OpKind::kAvgPool: kind_ = Kind::kPool; return;
      case graph::OpKind::kGlobalAvgPool: kind_ = Kind::kGap; return;
      default:
        raise(ErrorCode::kUnsupported,
              std::string("unsupported leading operator in group: ") +
                  graph::to_string(first.kind));
    }
  }

  // --- region/emission helpers ---------------------------------------------

  void emit(Op op) { region_stack_.back()->push_back(std::move(op)); }

  /// Runs `body` inside a fresh loop.for region.
  void loop(const std::string& var, std::int64_t lo, std::int64_t hi,
            const std::function<void()>& body) {
    if (hi <= lo) return;
    Op op = ir::make_for(var, lo, hi);
    region_stack_.push_back(&op.body);
    body();
    region_stack_.pop_back();
    emit(std::move(op));
  }

  // --- geometry --------------------------------------------------------------

  void plan_geometry() {
    const graph::CondensedGraph& cg = *ctx_.cg;
    const graph::Node& last =
        cg.source().node(cg.source().resolve_alias(group_->nodes.back()));
    out_h_ = last.out_shape.h;
    out_w_ = last.out_shape.w;
    k_total_ = last.out_shape.c;

    auto [s0, s1] = ctx_.mapping.stripe(ctx_.replica);
    p0_ = s0;
    p1_ = s1;

    // Channel slice of this core.
    if (ctx_.mapping.geom.valid) {
      auto [c0, c1] = ctx_.mapping.channel_range(ctx_.lane, *ctx_.arch);
      ck0_ = c0;
      ck1_ = c1;
    } else {
      // Vector-only groups split output channels evenly across lanes.
      const std::int64_t per =
          ceil_div(k_total_, ctx_.mapping.cores_per_replica);
      ck0_ = std::min(k_total_, ctx_.lane * per);
      ck1_ = std::min(k_total_, ck0_ + per);
    }
    kc_ = ck1_ - ck0_;
    CIMFLOW_CHECK(kc_ > 0, "core has empty channel slice");

    in_h_ = ctx_.primary.tensor_h;
    in_w_ = ctx_.primary.tensor_w;
    in_c_ = ctx_.primary.tensor_c;

    kernel_ = 1;
    stride_ = 1;
    pad_ = 0;
    pool_avg_ = false;
    if (kind_ == Kind::kConv || kind_ == Kind::kDepthwise) {
      const auto& a = anchor_->conv();
      kernel_ = a.kernel;
      stride_ = a.stride;
      pad_ = a.pad;
    } else if (kind_ == Kind::kPool) {
      const graph::Node& first = cg.source().node(group_->nodes.front());
      const auto& a = first.pool();
      kernel_ = a.kernel;
      stride_ = a.stride;
      pad_ = a.pad;
      pool_avg_ = first.kind == graph::OpKind::kAvgPool;
    }

    // Input channel slice this core actually reads: spatial MVM kernels need
    // every input channel; pool/GAP kernels only their output slice.
    ic0_ = 0;
    ic1_ = in_c_;
    if (kind_ == Kind::kPool) {
      ic0_ = ck0_;
      ic1_ = ck1_;
    }
    icw_ = ic1_ - ic0_;

    wp_ = in_w_ + 2 * pad_;
    in_origin_ = p0_ * stride_ - pad_;
    win_rows_ = (p1_ - p0_ - 1) * stride_ + kernel_;
    row_window_ = ctx_.primary.style == InputStyle::kGlobalRowWindow;
    if (!ctx_.annotate_memory && !ctx_.primary.direct &&
        (kind_ == Kind::kConv || kind_ == Kind::kDepthwise || kind_ == Kind::kPool)) {
      row_window_ = true;  // ablation: fetch at the innermost feasible level
    }
    if (kind_ == Kind::kGap || kind_ == Kind::kFc) {
      row_window_ = false;  // whole (small) tensors are prefetched...
      win_rows_ = in_h_;
      in_origin_ = 0;
      if (kind_ == Kind::kGap && !ctx_.primary.direct &&
          (in_h_ * wp_ * icw_ > buffer_budget(*ctx_.arch).direct_in_limit ||
           !ctx_.annotate_memory)) {
        // ...except a GAP over a map too large for local memory, which
        // streams row by row into an int32 accumulator.
        row_window_ = true;
      }
    }
  }

  // --- buffer planning --------------------------------------------------------

  void plan_buffers() {
    SegmentPlanner& seg = *ctx_.segments;
    if (row_window_) {
      seg.allocate("win", kernel_ * wp_ * icw_);
    } else {
      seg.allocate("in", win_rows_ * wp_ * icw_);
    }
    // A stripe-sized output buffer is needed for direct NoC consumers; a
    // producer with mixed consumers keeps the stripe buffer AND flushes rows
    // to global memory from it.
    direct_out_buffer_ = !ctx_.write_global_out || !ctx_.direct_out.empty();
    if (direct_out_buffer_) {
      seg.allocate("outbuf", (p1_ - p0_) * out_w_ * kc_);
    } else {
      seg.allocate("orow", out_w_ * kc_);
    }
    for (const auto& [node, edge] : ctx_.secondary) {
      const graph::Node& consumer = ctx_.cg->source().node(node);
      if (consumer.kind == graph::OpKind::kScaleChannels) {
        // Map operand of an SE scale: full slice map (direct) or row buffer.
        if (edge.direct) {
          seg.allocate("skip", edge.tensor_h * edge.tensor_w * kc_);
        } else {
          seg.allocate("maprow", edge.tensor_w * kc_);
        }
      } else {
        if (edge.direct) {
          seg.allocate("skip", (p1_ - p0_) * out_w_ * kc_);
        } else {
          seg.allocate("skiprow", out_w_ * kc_);
        }
      }
    }
    if (kind_ == Kind::kFc) {
      seg.allocate("fcout", kc_);
    }
  }

  // --- preamble ----------------------------------------------------------------

  /// Copies one weight tile from global to staging and loads it into its MG.
  void emit_tile_load(const WeightTileRef& tile) {
    emit(op_copy("wstage", 0, "global", AffineExpr(tile.global_offset),
                 tile.rows * tile.cols));
    Op load("cim.load");
    load.set("mg", tile.mg_slot);
    load.set("src_buf", std::string("wstage")).set("src_index", AffineExpr(0));
    load.set("rows", tile.rows).set("cols", tile.cols);
    emit(std::move(load));
  }

  void emit_preamble_constants() {
    if (ctx_.bias_global >= 0) {
      emit(op_copy("bias", 0, "global", AffineExpr(ctx_.bias_global), kc_ * 4));
    }
    if (ctx_.lut_global >= 0) {
      emit(op_copy("const", 0, "global", AffineExpr(ctx_.lut_global), 256));
    }
    if (relu_clamp_hi() < 127) {
      Op fill = op_fill("const", 256, kc_, relu_clamp_hi());
      emit(std::move(fill));
    }
  }

  std::int64_t relu_clamp_hi() const {
    for (graph::NodeId member : group_->nodes) {
      const graph::Node& node = ctx_.cg->source().node(member);
      if (node.kind == graph::OpKind::kRelu && node.relu().hi < 127) {
        return node.relu().hi;
      }
    }
    return 127;
  }

  bool group_has_lut() const { return ctx_.lut_global >= 0; }

  // --- input acquisition --------------------------------------------------------

  /// Whether the window buffer needs a zero fill (padding or missing rows).
  bool window_needs_fill() const {
    return pad_ > 0 || in_origin_ < 0 || in_origin_ + win_rows_ > in_h_;
  }

  std::int64_t fill_value() const {
    return (kind_ == Kind::kPool && !pool_avg_) ? -128 : 0;
  }

  /// Global address of input tensor row `row`, channel ic0_, for image img.
  AffineExpr global_in_addr(const AffineExpr& img, const AffineExpr& row) const {
    AffineExpr addr(ctx_.primary.placement.base + ic0_);
    addr += img.scaled(ctx_.primary.placement.per_image);
    addr += row.scaled(in_w_ * in_c_);
    return addr;
  }

  /// Fetches one input-tensor row `row` into buffer row `brow` (channel
  /// slice [ic0_, ic1_), left-padded by pad_ columns).
  void emit_row_fetch(const std::string& buf, const AffineExpr& brow,
                      const AffineExpr& img, const AffineExpr& row) {
    AffineExpr dst = brow.scaled(wp_ * icw_);
    dst += pad_ * icw_;
    if (icw_ == in_c_) {
      emit(op_copy(buf, std::move(dst), "global", global_in_addr(img, row),
                   in_w_ * in_c_));
    } else {
      emit(op_stride_copy(buf, std::move(dst), icw_, "global", global_in_addr(img, row),
                          in_c_, in_w_, icw_));
    }
  }

  /// Prefetches the whole window into "in" for image `img`.
  void emit_window_prefetch(const AffineExpr& img) {
    if (window_needs_fill()) {
      emit(op_fill("in", 0, win_rows_ * wp_ * icw_, fill_value()));
    }
    const std::int64_t first_present = std::max<std::int64_t>(0, in_origin_);
    const std::int64_t last_present = std::min(in_h_, in_origin_ + win_rows_);
    if (first_present >= last_present) return;
    loop("fr", first_present, last_present, [&] {
      const AffineExpr row = AffineExpr::var("fr");
      AffineExpr brow = row;
      brow += -in_origin_;
      emit_row_fetch("in", brow, img, row);
    });
  }

  /// Receives direct chunks + doorbells for an edge into the window buffer
  /// layout used by `buf` ("in" window coordinates or "skip" stripe coords).
  void emit_direct_receive(const EdgeSource& edge, const std::string& buf,
                           std::int64_t buf_row_origin, std::int64_t buf_row_width,
                           std::int64_t buf_ch_origin, std::int64_t buf_ch_width,
                           std::int64_t left_pad_cols) {
    for (const DirectChunk& chunk : edge.chunks) {
      const std::int64_t rows = chunk.row1 - chunk.row0;
      const std::int64_t chs = chunk.ch1 - chunk.ch0;
      const std::int64_t len = rows * edge.tensor_w * chs;
      if (len <= 0) continue;
      CIMFLOW_CHECK(len <= SegmentPlanner::kRecvStageBytes,
                    "direct chunk exceeds receive staging");
      emit(op_recv("rstage", 0, len, chunk.peer_core, chunk.tag));
      loop("rr", 0, rows, [&] {
        AffineExpr dst =
            AffineExpr::var("rr", buf_row_width) +
            AffineExpr((chunk.row0 - buf_row_origin) * buf_row_width +
                       left_pad_cols * buf_ch_width + (chunk.ch0 - buf_ch_origin));
        AffineExpr src = AffineExpr::var("rr", edge.tensor_w * chs);
        if (chs == buf_ch_width && buf_ch_width == edge.tensor_c) {
          emit(op_copy(buf, std::move(dst), "rstage", std::move(src),
                       edge.tensor_w * chs));
        } else {
          emit(op_stride_copy(buf, std::move(dst), buf_ch_width, "rstage",
                              std::move(src), chs, edge.tensor_w, chs));
        }
      });
    }
  }

  void emit_doorbell_waits(const EdgeSource& edge) {
    // Doorbell tokens land at the tail of the receive staging buffer (never
    // in "spill", which backs register spill slots).
    for (const DirectChunk& bell : edge.doorbells) {
      emit(op_recv("rstage", SegmentPlanner::kRecvStageBytes - 4, 4, bell.peer_core,
                   bell.tag));
    }
  }

  /// Acquires the primary input for image `img` (except row-window style,
  /// which fetches inside the position loop).
  void emit_primary_acquisition(const AffineExpr& img) {
    const EdgeSource& edge = ctx_.primary;
    if (edge.direct) {
      if (window_needs_fill()) {
        emit(op_fill("in", 0, win_rows_ * wp_ * icw_, fill_value()));
      }
      emit_direct_receive(edge, "in", in_origin_, wp_ * icw_, ic0_, icw_, pad_);
      return;
    }
    emit_doorbell_waits(edge);
    if (!row_window_) emit_window_prefetch(img);
  }

  /// Acquires secondary (skip) operands that use direct transfer.
  void emit_secondary_acquisition(const AffineExpr& img) {
    (void)img;
    for (const auto& [node, edge] : ctx_.secondary) {
      emit_doorbell_waits(edge);
      if (!edge.direct) continue;
      const graph::Node& consumer = ctx_.cg->source().node(node);
      if (consumer.kind == graph::OpKind::kScaleChannels) {
        emit_direct_receive(edge, "skip", 0, edge.tensor_w * kc_, ck0_, kc_, 0);
      } else {
        emit_direct_receive(edge, "skip", p0_, out_w_ * kc_, ck0_, kc_, 0);
      }
    }
  }

  // --- compute: spatial kernels (conv / dw / pool / gap) -------------------------

  /// Emits the per-`p` row window fetch (row-window style). `p_const` < 0
  /// means `p` is the loop variable "p".
  void emit_row_window(const AffineExpr& img, std::int64_t p_const) {
    const AffineExpr p =
        p_const >= 0 ? AffineExpr(p_const) : AffineExpr::var("p");
    // Input rows [p*stride - pad, p*stride - pad + kernel).
    if (p_const >= 0) {
      // Boundary row: presence known exactly.
      const std::int64_t base = p_const * stride_ - pad_;
      emit(op_fill("win", 0, kernel_ * wp_ * icw_, fill_value()));
      for (std::int64_t r = 0; r < kernel_; ++r) {
        const std::int64_t row = base + r;
        if (row < 0 || row >= in_h_) continue;
        emit_row_fetch("win", AffineExpr(r), img, AffineExpr(row));
      }
      return;
    }
    // Interior rows: all kernel_ rows present.
    if (pad_ > 0) {
      emit(op_fill("win", 0, kernel_ * wp_ * icw_, fill_value()));
    }
    loop("r", 0, kernel_, [&] {
      AffineExpr row = p.scaled(stride_) + AffineExpr::var("r") + AffineExpr(-pad_);
      emit_row_fetch("win", AffineExpr::var("r"), img, row);
    });
  }

  /// Buffer + index of the input pixel row used by gather for output row
  /// expression `p` and kernel row `r` (affine), starting at column q*stride.
  std::pair<std::string, AffineExpr> gather_source(const AffineExpr& p,
                                                   const AffineExpr& r,
                                                   const AffineExpr& q) const {
    if (row_window_) {
      AffineExpr idx = r.scaled(wp_ * icw_) + q.scaled(stride_ * icw_);
      return {"win", std::move(idx)};
    }
    // Window buffer "in": buffer row = p*stride + r - (p0*stride).
    AffineExpr idx = p.scaled(stride_ * wp_ * icw_) + r.scaled(wp_ * icw_) +
                     q.scaled(stride_ * icw_) +
                     AffineExpr(-p0_ * stride_ * wp_ * icw_);
    return {"in", std::move(idx)};
  }

  /// Emits the matmul.virtual op covering `tiles` (physical mapping expands it).
  void emit_matmul(const std::vector<WeightTileRef>& tiles, const std::string& in_buf,
                   AffineExpr in_idx, AffineExpr psum_idx) {
    Op op("matmul.virtual");
    op.set("in_buf", in_buf).set("in_index", std::move(in_idx));
    op.set("out_buf", std::string("psum")).set("out_index", std::move(psum_idx));
    std::vector<std::int64_t> flat;
    flat.reserve(tiles.size() * 6);
    const std::int64_t mg_rows = ctx_.arch->mg_rows();
    for (const WeightTileRef& t : tiles) {
      flat.push_back(t.mg_slot);
      flat.push_back(t.rows);
      flat.push_back(t.cols);
      flat.push_back(t.macs);
      // Input offset: dense tiles read im2col at row-tile offset; depthwise
      // tiles read their gathered block at offset 0.
      flat.push_back(kind_ == Kind::kDepthwise ? 0 : t.row_tile * mg_rows);
      // Psum offset: column-tile position within this core's slice (bytes).
      const std::int64_t first_ct = ctx_.mapping.col_tile_range(ctx_.lane).first;
      const std::int64_t tile_width =
          kind_ == Kind::kDepthwise ? ctx_.mapping.geom.dw_block : ctx_.arch->mg_cols();
      flat.push_back((t.col_tile - first_ct) * tile_width * 4);
    }
    op.set("tiles", std::move(flat));
    emit(std::move(op));
  }

  /// Epilogue for one output pixel: psum[0..kc) -> int8 row at
  /// out_buf/out_idx, applying the group's fused member operators in order.
  void emit_epilogue(const AffineExpr& img, const AffineExpr& p, const AffineExpr& q,
                     const std::string& out_buf, const AffineExpr& out_idx,
                     const AffineExpr& psum_idx) {
    // Requantize accumulator.
    Op quant = op_vec(isa::VecFunct::kQuant, out_buf, out_idx, "psum", psum_idx, kc_);
    quant.set("shift", static_cast<std::int64_t>(anchor_->quant.shift));
    quant.set("zero", std::int64_t{0});
    emit(std::move(quant));

    for (graph::NodeId member : group_->nodes) {
      const graph::Node& node = ctx_.cg->source().node(member);
      if (member == group_->anchor) continue;
      switch (node.kind) {
        case graph::OpKind::kRelu: {
          emit(op_vec(isa::VecFunct::kRelu8, out_buf, out_idx, out_buf, out_idx, kc_));
          if (node.relu().hi < 127) {
            Op clamp = op_vec(isa::VecFunct::kMin8, out_buf, out_idx, out_buf, out_idx, kc_);
            clamp.set("b_buf", std::string("const")).set("b_index", AffineExpr(256));
            emit(std::move(clamp));
          }
          break;
        }
        case graph::OpKind::kLut: {
          Op lut = op_vec(isa::VecFunct::kLut8, out_buf, out_idx, out_buf, out_idx, kc_);
          lut.set("lut_base", std::int64_t{0});  // lut lives at const[0]
          emit(std::move(lut));
          break;
        }
        case graph::OpKind::kAdd: {
          const EdgeSource& edge = ctx_.secondary.at(member);
          Op add = op_vec(isa::VecFunct::kAdd8, out_buf, out_idx, out_buf, out_idx, kc_);
          if (edge.direct) {
            AffineExpr sidx = p.scaled(out_w_ * kc_) + q.scaled(kc_) +
                              AffineExpr(-p0_ * out_w_ * kc_);
            add.set("b_buf", std::string("skip")).set("b_index", std::move(sidx));
          } else {
            add.set("b_buf", std::string("skiprow")).set("b_index", q.scaled(kc_));
          }
          emit(std::move(add));
          break;
        }
        case graph::OpKind::kFlatten:
          break;  // layout no-op
        case graph::OpKind::kScaleChannels:
          // Handled by the FC builder's map epilogue.
          break;
        default:
          raise(ErrorCode::kUnsupported,
                std::string("unsupported fused member: ") + graph::to_string(node.kind));
      }
    }
    (void)img;
  }

  /// Fetches the skip row for output row `p` when the skip edge is global.
  void emit_skip_row_fetch(const AffineExpr& img, const AffineExpr& p) {
    for (const auto& [node, edge] : ctx_.secondary) {
      const graph::Node& consumer = ctx_.cg->source().node(node);
      if (consumer.kind != graph::OpKind::kAdd || edge.direct) continue;
      AffineExpr src(edge.placement.base + ck0_);
      src += img.scaled(edge.placement.per_image);
      src += p.scaled(out_w_ * k_total_);
      if (kc_ == k_total_) {
        emit(op_copy("skiprow", 0, "global", std::move(src), out_w_ * kc_));
      } else {
        emit(op_stride_copy("skiprow", 0, kc_, "global", std::move(src), k_total_,
                            out_w_, kc_));
      }
    }
  }

  /// Flushes one output row to the global tensor (global-out mode). The
  /// source is the row buffer, or the stripe buffer when direct consumers
  /// require one.
  void emit_row_flush(const AffineExpr& img, const AffineExpr& p) {
    AffineExpr dst(ctx_.out_placement.base + ck0_);
    dst += img.scaled(ctx_.out_placement.per_image);
    dst += p.scaled(out_w_ * k_total_);
    const std::string src_buf = direct_out_buffer_ ? "outbuf" : "orow";
    AffineExpr src(0);
    if (direct_out_buffer_) {
      src = p.scaled(out_w_ * kc_) + AffineExpr(-p0_ * out_w_ * kc_);
    }
    if (kc_ == k_total_) {
      emit(op_copy("global", std::move(dst), src_buf, std::move(src), out_w_ * kc_));
    } else {
      emit(op_stride_copy("global", std::move(dst), k_total_, src_buf, std::move(src),
                          kc_, out_w_, kc_));
    }
  }

  /// Body of one output row `p` for conv/dw/pool kernels.
  void emit_position_row(const AffineExpr& img, const AffineExpr& p,
                         std::int64_t p_const) {
    if (row_window_ && kind_ != Kind::kGap) emit_row_window(img, p_const);
    emit_skip_row_fetch(img, p);

    const std::string out_buf = direct_out_buffer_ ? "outbuf" : "orow";
    auto out_index = [&](const AffineExpr& q) {
      if (direct_out_buffer_) {
        return p.scaled(out_w_ * kc_) + q.scaled(kc_) + AffineExpr(-p0_ * out_w_ * kc_);
      }
      return q.scaled(kc_);
    };

    if (kind_ == Kind::kPool) {
      // One vec.pool computes the whole output row from the window.
      Op pool("vec.pool");
      pool.set("avg", pool_avg_ ? std::int64_t{1} : std::int64_t{0});
      pool.set("dst_buf", out_buf).set("dst_index", out_index(AffineExpr(0)));
      if (row_window_) {
        pool.set("src_buf", std::string("win")).set("src_index", AffineExpr(0));
        pool.set("p_base", std::int64_t{0});
        pool.set("h_in", kernel_);
      } else {
        pool.set("src_buf", std::string("in")).set("src_index", AffineExpr(0));
        // Window row of output row p: p*stride - pad - in_origin_ = p*stride
        // - p0*stride.
        AffineExpr base = p.scaled(stride_) + AffineExpr(-p0_ * stride_);
        pool.set("p_base", std::move(base));
        pool.set("h_in", win_rows_);
      }
      pool.set("out_w", out_w_).set("kh", kernel_).set("kw", kernel_);
      pool.set("stride", stride_).set("win", wp_).set("channels", icw_);
      emit(std::move(pool));
    } else if (kind_ == Kind::kGap) {
      if (row_window_) {
        // Streaming GAP: int32 channel accumulator, one row-sum per input
        // row, rounded division at the end (bit-exact vs the executor).
        emit(op_fill("psum", 0, icw_, 0, /*elem=*/4));
        loop("gp", 0, in_h_, [&] {
          emit_row_fetch("win", AffineExpr(0), img, AffineExpr::var("gp"));
          Op sum = op_vec(isa::VecFunct::kRowSum32, "psum", 0, "win", 0, icw_);
          sum.set("pixels", in_w_);
          emit(std::move(sum));
        });
        Op div = op_vec(isa::VecFunct::kDivRound8, out_buf, out_index(AffineExpr(0)),
                        "psum", 0, icw_);
        div.set("divisor", in_h_ * in_w_);
        emit(std::move(div));
      } else {
        Op pool("vec.pool");
        pool.set("avg", std::int64_t{1});
        pool.set("dst_buf", out_buf).set("dst_index", out_index(AffineExpr(0)));
        pool.set("src_buf", std::string("in")).set("src_index", AffineExpr(0));
        pool.set("p_base", std::int64_t{0});
        pool.set("h_in", in_h_).set("out_w", std::int64_t{1});
        pool.set("kh", in_h_).set("kw", in_w_).set("stride", std::int64_t{1});
        pool.set("win", in_w_).set("channels", icw_);
        emit(std::move(pool));
      }
    } else {
      loop("q", 0, out_w_, [&] {
        const AffineExpr q = AffineExpr::var("q");
        emit_gather_and_mvms(p, q);
        emit_epilogue(img, p, q, out_buf, out_index(q), AffineExpr(0));
      });
    }
    if (ctx_.write_global_out) emit_row_flush(img, p);
  }

  void emit_gather_and_mvms(const AffineExpr& p, const AffineExpr& q) {
    // Initialize the accumulator with the bias slice.
    emit(op_vec(isa::VecFunct::kCopy32, "psum", 0, "bias", 0, kc_));

    if (kind_ == Kind::kConv) {
      const std::int64_t sc = kernel_ * in_c_;  // one kernel-row slice
      loop("r", 0, kernel_, [&] {
        auto [buf, src] = gather_source(p, AffineExpr::var("r"), q);
        emit(op_copy("im2col", AffineExpr::var("r", sc), buf, std::move(src), sc));
      });
      emit_matmul(ctx_.tiles, "im2col", 0, 0);
    } else {  // depthwise: per block-diagonal tile, gather then MVM
      const std::int64_t bc = ctx_.mapping.geom.dw_block;
      for (const WeightTileRef& tile : ctx_.tiles) {
        const std::int64_t cb = tile.col_tile * bc;  // first channel of block
        const std::int64_t chans = tile.cols;
        loop("r", 0, kernel_, [&] {
          auto [buf, src] = gather_source(p, AffineExpr::var("r"), q);
          src += AffineExpr(cb - ic0_);
          emit(op_stride_copy("im2col", AffineExpr::var("r", kernel_ * chans), chans,
                              buf, std::move(src), icw_, kernel_, chans));
        });
        emit_matmul({tile}, "im2col", 0, 0);
      }
    }
  }

  /// Splits the stripe's p range so boundary rows (incomplete windows) are
  /// emitted with constant p and the interior as a loop.
  void emit_position_rows(const AffineExpr& img) {
    std::int64_t lo_full = p0_;
    std::int64_t hi_full = p1_;
    if (row_window_) {
      while (lo_full < p1_ && lo_full * stride_ - pad_ < 0) ++lo_full;
      while (hi_full > lo_full && (hi_full - 1) * stride_ - pad_ + kernel_ > in_h_) {
        --hi_full;
      }
    }
    for (std::int64_t p = p0_; p < lo_full; ++p) {
      emit_position_row(img, AffineExpr(p), p);
    }
    if (hi_full > lo_full) {
      loop("p", lo_full, hi_full,
           [&] { emit_position_row(img, AffineExpr::var("p"), -1); });
    }
    for (std::int64_t p = hi_full; p < p1_; ++p) {
      emit_position_row(img, AffineExpr(p), p);
    }
  }

  // --- output dispatch -----------------------------------------------------------

  void emit_output_dispatch(const AffineExpr& img) {
    for (const DirectChunk& chunk : ctx_.direct_out) {
      const std::int64_t rows = chunk.row1 - chunk.row0;
      const std::int64_t chs = chunk.ch1 - chunk.ch0;
      const std::int64_t len = rows * out_w_ * chs;
      if (len <= 0) continue;
      CIMFLOW_CHECK(direct_out_buffer_, "direct send requires a stripe buffer");
      if (rows == p1_ - p0_ && chs == kc_) {
        emit(op_send("outbuf", 0, len, chunk.peer_core, chunk.tag));
        continue;
      }
      CIMFLOW_CHECK(len <= SegmentPlanner::kRecvStageBytes,
                    "direct out chunk exceeds staging");
      AffineExpr src((chunk.row0 - p0_) * out_w_ * kc_ + (chunk.ch0 - ck0_));
      emit(op_stride_copy("rstage", 0, chs, "outbuf", std::move(src), kc_,
                          rows * out_w_, chs));
      emit(op_send("rstage", 0, len, chunk.peer_core, chunk.tag));
    }
    for (const DirectChunk& bell : ctx_.out_doorbells) {
      emit(op_send("rstage", SegmentPlanner::kRecvStageBytes - 4, 4, bell.peer_core,
                   bell.tag));
    }
    (void)img;
  }

  // --- top-level builders -----------------------------------------------------------

  void build_spatial() {
    emit_preamble_constants();
    for (const WeightTileRef& tile : ctx_.tiles) emit_tile_load(tile);
    loop("img", 0, ctx_.batch, [&] {
      const AffineExpr img = AffineExpr::var("img");
      emit_primary_acquisition(img);
      emit_secondary_acquisition(img);
      emit_position_rows(img);
      emit_output_dispatch(img);
    });
  }

  void build_fc() {
    emit_preamble_constants();
    const std::int64_t passes = std::max<std::int64_t>(1, ctx_.mapping.passes);
    const std::int64_t mg = ctx_.arch->core().mg_per_unit;

    // Row-streaming passes: load up to `mg` tiles, accumulate all images.
    for (std::int64_t pass = 0; pass < passes; ++pass) {
      std::vector<WeightTileRef> pass_tiles;
      for (const WeightTileRef& t : ctx_.tiles) {
        if (t.pass == pass) pass_tiles.push_back(t);
      }
      CIMFLOW_CHECK(static_cast<std::int64_t>(pass_tiles.size()) <= mg,
                    "pass has more tiles than macro groups");
      for (const WeightTileRef& tile : pass_tiles) emit_tile_load(tile);
      loop("img", 0, ctx_.batch, [&] {
        const AffineExpr img = AffineExpr::var("img");
        if (pass == 0) {
          emit_primary_acquisition(img);
          emit_secondary_acquisition(img);
          emit(op_vec(isa::VecFunct::kCopy32, "psum", img.scaled(kc_ * 4), "bias", 0,
                      kc_));
        } else if (!ctx_.primary.direct) {
          // Re-prefetch the input vector for this pass (streamed weights).
          emit_window_prefetch(img);
        }
        emit_matmul(pass_tiles, "in", 0, img.scaled(kc_ * 4));
      });
    }

    // Epilogue + dispatch per image.
    loop("img", 0, ctx_.batch, [&] {
      const AffineExpr img = AffineExpr::var("img");
      Op quant = op_vec(isa::VecFunct::kQuant, "fcout", 0, "psum", img.scaled(kc_ * 4),
                        kc_);
      quant.set("shift", static_cast<std::int64_t>(anchor_->quant.shift));
      quant.set("zero", std::int64_t{0});
      emit(std::move(quant));
      const graph::Node* scale_node = nullptr;
      for (graph::NodeId member : group_->nodes) {
        const graph::Node& node = ctx_.cg->source().node(member);
        if (member == group_->anchor) continue;
        switch (node.kind) {
          case graph::OpKind::kRelu: {
            emit(op_vec(isa::VecFunct::kRelu8, "fcout", 0, "fcout", 0, kc_));
            if (node.relu().hi < 127) {
              Op clamp = op_vec(isa::VecFunct::kMin8, "fcout", 0, "fcout", 0, kc_);
              clamp.set("b_buf", std::string("const")).set("b_index", AffineExpr(256));
              emit(std::move(clamp));
            }
            break;
          }
          case graph::OpKind::kLut: {
            Op lut = op_vec(isa::VecFunct::kLut8, "fcout", 0, "fcout", 0, kc_);
            lut.set("lut_base", std::int64_t{0});
            emit(std::move(lut));
            break;
          }
          case graph::OpKind::kScaleChannels:
            scale_node = &node;
            break;
          case graph::OpKind::kFlatten:
            break;
          default:
            raise(ErrorCode::kUnsupported,
                  std::string("unsupported FC group member: ") +
                      graph::to_string(node.kind));
        }
      }
      if (scale_node != nullptr) {
        emit_map_scale(img, *scale_node);
      } else {
        emit_fc_dispatch(img);
      }
    });
  }

  /// SE gate application: scales the (large) map operand channel-wise by the
  /// freshly computed gate vector in "fcout", streaming row by row.
  void emit_map_scale(const AffineExpr& img, const graph::Node& scale) {
    const EdgeSource& edge = ctx_.secondary.at(scale.id);
    const std::int64_t map_h = edge.tensor_h;
    const std::int64_t map_w = edge.tensor_w;
    loop("mp", 0, map_h, [&] {
      const AffineExpr mp = AffineExpr::var("mp");
      std::string row_buf;
      AffineExpr row_idx(0);
      if (edge.direct) {
        row_buf = "skip";
        row_idx = mp.scaled(map_w * kc_);
      } else {
        row_buf = "maprow";
        AffineExpr src(edge.placement.base + ck0_);
        src += img.scaled(edge.placement.per_image);
        src += mp.scaled(map_w * edge.tensor_c);
        if (kc_ == edge.tensor_c) {
          emit(op_copy("maprow", 0, "global", std::move(src), map_w * kc_));
        } else {
          emit(op_stride_copy("maprow", 0, kc_, "global", std::move(src),
                              edge.tensor_c, map_w, kc_));
        }
      }
      Op sc = op_vec(isa::VecFunct::kScaleCh8, row_buf, row_idx, row_buf, row_idx,
                     map_w * kc_);
      sc.set("b_buf", std::string("fcout")).set("b_index", AffineExpr(0));
      sc.set("channels", kc_);
      sc.set("shift", static_cast<std::int64_t>(scale.quant.shift));
      emit(std::move(sc));
      if (ctx_.write_global_out) {
        AffineExpr dst(ctx_.out_placement.base + ck0_);
        dst += img.scaled(ctx_.out_placement.per_image);
        dst += mp.scaled(map_w * k_total_);
        if (kc_ == k_total_) {
          emit(op_copy("global", std::move(dst), row_buf, row_idx, map_w * kc_));
        } else {
          emit(op_stride_copy("global", std::move(dst), k_total_, row_buf, row_idx,
                              kc_, map_w, kc_));
        }
      }
      if (direct_out_buffer_) {
        // Keep the scaled map in "outbuf" for direct sends.
        AffineExpr dst = mp.scaled(map_w * kc_);
        emit(op_copy("outbuf", std::move(dst), row_buf, row_idx, map_w * kc_));
      }
    });
    emit_output_dispatch(img);
  }

  void emit_fc_dispatch(const AffineExpr& img) {
    if (ctx_.write_global_out) {
      AffineExpr dst(ctx_.out_placement.base + ck0_);
      dst += img.scaled(ctx_.out_placement.per_image);
      emit(op_copy("global", std::move(dst), "fcout", 0, kc_));
    }
    if (direct_out_buffer_) {
      emit(op_copy("outbuf", 0, "fcout", 0, kc_));
    }
    emit_output_dispatch(img);
  }

  const KernelContext& ctx_;
  const graph::Group* group_ = nullptr;
  const graph::Node* anchor_ = nullptr;
  Kind kind_ = Kind::kConv;

  std::int64_t out_h_ = 0, out_w_ = 0, k_total_ = 0;
  std::int64_t p0_ = 0, p1_ = 0;
  std::int64_t ck0_ = 0, ck1_ = 0, kc_ = 0;
  std::int64_t in_h_ = 0, in_w_ = 0, in_c_ = 0;
  std::int64_t ic0_ = 0, ic1_ = 0, icw_ = 0;
  std::int64_t kernel_ = 1, stride_ = 1, pad_ = 0;
  std::int64_t wp_ = 0, in_origin_ = 0, win_rows_ = 0;
  bool pool_avg_ = false;
  bool row_window_ = false;
  bool direct_out_buffer_ = false;

  std::vector<std::vector<Op>*> region_stack_;
};

}  // namespace

ir::Func build_kernel(const KernelContext& ctx) {
  KernelBuilder builder(ctx);
  return builder.build();
}

ir::Pass physical_mapping_pass() {
  return ir::Pass{"physical-mapping", [](ir::Func& func) {
    std::function<void(std::vector<Op>&)> expand = [&](std::vector<Op>& ops) {
      std::vector<Op> result;
      for (Op& op : ops) {
        expand(op.body);
        if (op.kind != "matmul.virtual") {
          result.push_back(std::move(op));
          continue;
        }
        const std::vector<std::int64_t>& tiles = op.ints("tiles");
        CIMFLOW_CHECK(tiles.size() % 6 == 0, "malformed tile list");
        for (std::size_t t = 0; t < tiles.size(); t += 6) {
          Op mvm("cim.mvm");
          mvm.set("mg", tiles[t]);
          mvm.set("rows", tiles[t + 1]).set("cols", tiles[t + 2]);
          mvm.set("macs", tiles[t + 3]);
          mvm.set("in_buf", op.s("in_buf"));
          mvm.set("in_index", op.affine("in_index") + AffineExpr(tiles[t + 4]));
          mvm.set("out_buf", op.s("out_buf"));
          mvm.set("out_index", op.affine("out_index") + AffineExpr(tiles[t + 5]));
          mvm.set("acc", std::int64_t{1});
          result.push_back(std::move(mvm));
        }
      }
      ops = std::move(result);
    };
    expand(func.body);
  }};
}

ir::PassManager oplevel_pipeline(bool hoist_memory) {
  ir::PassManager pm;
  pm.add(ir::canonicalize_pass());
  pm.add(physical_mapping_pass());
  if (hoist_memory) pm.add(ir::hoist_invariant_pass());
  pm.add(ir::unroll_small_loops_pass(/*max_trips=*/2));
  pm.add(ir::drop_empty_loops_pass());
  pm.add(ir::canonicalize_pass());
  return pm;
}

}  // namespace cimflow::compiler
