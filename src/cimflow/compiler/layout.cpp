#include "cimflow/compiler/layout.hpp"

#include "cimflow/support/numeric.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::compiler {

std::int64_t SegmentPlanner::weight_stage_bytes(const arch::ArchConfig& arch) {
  return arch.mg_weight_bytes();
}

std::int64_t SegmentPlanner::im2col_bytes(const arch::ArchConfig& arch) {
  return arch.core().mg_per_unit * arch.mg_rows();
}

SegmentPlanner::SegmentPlanner(const arch::ArchConfig& arch)
    : capacity_(arch.core().local_mem_bytes) {
  allocate("wstage", weight_stage_bytes(arch));
  allocate("im2col", im2col_bytes(arch));
  allocate("psum", kPsumBytes);
  allocate("bias", kBiasBytes);
  allocate("const", kConstBytes);
  allocate("rstage", kRecvStageBytes);
  allocate("spill", kSpillBytes);
}

std::int64_t SegmentPlanner::allocate(const std::string& name, std::int64_t bytes) {
  auto it = offsets_.find(name);
  if (it != offsets_.end()) {
    CIMFLOW_CHECK(it->second.second >= bytes, "segment re-allocated with larger size");
    return it->second.first;
  }
  const std::int64_t aligned = align_up<std::int64_t>(bytes, 16);
  if (cursor_ + aligned > capacity_) {
    raise(ErrorCode::kCapacityExceeded,
          strprintf("local memory overflow: segment '%s' (%lld B) exceeds capacity "
                    "(used %lld of %lld)",
                    name.c_str(), (long long)bytes, (long long)cursor_,
                    (long long)capacity_));
  }
  const std::int64_t offset = cursor_;
  cursor_ += aligned;
  offsets_.emplace(name, std::make_pair(offset, aligned));
  return offset;
}

std::int64_t SegmentPlanner::offset(const std::string& name) const {
  auto it = offsets_.find(name);
  CIMFLOW_CHECK(it != offsets_.end(), "unknown segment: " + name);
  return it->second.first;
}

std::int64_t SegmentPlanner::size(const std::string& name) const {
  auto it = offsets_.find(name);
  CIMFLOW_CHECK(it != offsets_.end(), "unknown segment: " + name);
  return it->second.second;
}

std::int64_t GlobalLayout::reserve(std::int64_t bytes) {
  const std::int64_t base = cursor_;
  cursor_ += align_up<std::int64_t>(bytes, 16);
  return base;
}

void GlobalLayout::place_tensor(graph::NodeId node, std::int64_t per_image_bytes,
                                std::int64_t batch) {
  if (tensors_.count(node) != 0) return;
  TensorPlacement placement;
  placement.per_image = per_image_bytes;
  placement.base = reserve(per_image_bytes * batch);
  tensors_.emplace(node, placement);
}

const TensorPlacement& GlobalLayout::tensor(graph::NodeId node) const {
  auto it = tensors_.find(node);
  CIMFLOW_CHECK(it != tensors_.end(), "tensor not placed in global memory");
  return it->second;
}

}  // namespace cimflow::compiler
