// CG-level cost estimation (paper Sec. III-C): prices compute, intra-/
// inter-cluster communication and stage-switch weight reloads for candidate
// mappings, and implements OptimalMapping(stage, R) — core allocation with
// weight duplication — used by all three partitioning strategies.
//
// The estimates deliberately reuse the exact tile geometry and transfer-mode
// rules the code generator applies, so the DP optimizes the same program the
// backend will emit; absolute cycle counts still come from simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "cimflow/compiler/mapping.hpp"

namespace cimflow::compiler {

/// Local-memory budget split used for transfer-mode decisions. Derived from
/// the core's local memory minus fixed reservations (weight staging, im2col
/// row buffer, psum, bias, constants, receive staging).
struct BufferBudget {
  std::int64_t direct_in_limit = 0;   ///< max bytes for a consumer input window
  std::int64_t direct_out_limit = 0;  ///< max bytes for a producer stripe buffer
  std::int64_t skip_limit = 0;        ///< max bytes for secondary-input buffers
};

BufferBudget buffer_budget(const arch::ArchConfig& arch);

/// Input-window bytes a consumer core must hold for `group` under mapping
/// `m` (stripe input rows x padded width x all input channels); used for the
/// direct-in eligibility test and by the code generator's segment planner.
std::int64_t consumer_window_bytes(const graph::CondensedGraph& cg,
                                   const graph::Group& group, const GroupMapping& m,
                                   const arch::ArchConfig& arch);

/// Output-stripe bytes a producer core must hold under mapping `m`.
std::int64_t producer_stripe_bytes(const graph::CondensedGraph& cg,
                                   const graph::Group& group, const GroupMapping& m,
                                   const arch::ArchConfig& arch);

/// Decides the transfer mode of edge producer->consumer given both mappings
/// (kDirect only when producer stripes and all consumer windows fit the
/// budget); stage boundaries always use kGlobal.
TransferMode decide_edge_mode(const graph::CondensedGraph& cg,
                              const graph::Group& producer, const GroupMapping& pm,
                              const graph::Group& consumer, const GroupMapping& cm,
                              const arch::ArchConfig& arch);

/// Per-image cost of one mapped group (cycles on the bottleneck core).
struct GroupCost {
  double compute_cycles = 0;  ///< CIM + vector + scalar on the critical core
  double in_cycles = 0;       ///< receiving / fetching inputs
  double out_cycles = 0;      ///< sending / writing outputs
  double weight_load_cycles = 0;  ///< per-stage preamble (not per image)

  double bound() const noexcept {
    double b = compute_cycles;
    if (in_cycles > b) b = in_cycles;
    if (out_cycles > b) b = out_cycles;
    return b;
  }
};

class CostModel {
 public:
  CostModel(const graph::CondensedGraph& cg, const arch::ArchConfig& arch,
            std::int64_t batch);

  /// Cost of `group` under mapping `m` (per image; weight load separately).
  GroupCost group_cost(graph::GroupId group, const GroupMapping& m) const;

  /// Pipeline cost of a whole stage over the batch: weight loads + fill +
  /// (batch-1) * bottleneck.
  double stage_cycles(const StagePlan& stage) const;

  /// OptimalMapping(stage, R): allocates `total_cores` across `groups`
  /// (linear order), choosing duplication factors greedily by marginal
  /// benefit when `allow_duplication`; fills edge modes. Returns false when
  /// the stage cannot fit (minimum cores exceed the chip).
  bool optimal_mapping(const std::vector<graph::GroupId>& groups,
                       std::int64_t total_cores, bool allow_duplication,
                       StagePlan& out) const;

  const arch::ArchConfig& arch() const noexcept { return *arch_; }
  std::int64_t batch() const noexcept { return batch_; }

 private:
  GroupMapping base_mapping(graph::GroupId group, std::int64_t replicas) const;
  bool group_allows_duplication(const graph::Group& group) const;
  void assign_core_ids(StagePlan& stage) const;
  void fill_edge_modes(StagePlan& stage) const;

  const graph::CondensedGraph* cg_;
  const arch::ArchConfig* arch_;
  std::int64_t batch_;
};

}  // namespace cimflow::compiler
