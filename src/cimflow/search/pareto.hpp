// Pareto-dominance bookkeeping for the adaptive DSE search subsystem
// (ROADMAP "Adaptive DSE"). A ParetoArchive maintains the non-dominated set
// of evaluated design points over an N-dimensional objective vector where
// every objective is minimized (latency, energy, silicon area, ...).
//
// The archive is deterministic by construction: the final front depends only
// on the set of inserted (id, objectives) pairs, never on insertion order.
// Exact objective ties collapse onto the smallest id, entries are kept sorted
// by id, and non-finite objectives (failed points surface as NaN) are
// rejected outright — so two sweeps that evaluate the same points always
// report byte-identical fronts.
#pragma once

#include <cstddef>
#include <vector>

#include "cimflow/support/numeric.hpp"

namespace cimflow::search {

/// True when `a` Pareto-dominates `b`: no objective worse, at least one
/// strictly better (all objectives minimized; vectors must have equal size).
inline bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  return pareto_dominates(a, b);
}

/// One archive member: an externally meaningful id (the DSE grid index) plus
/// its objective vector.
struct ParetoEntry {
  std::size_t id = 0;
  std::vector<double> objectives;
};

class ParetoArchive {
 public:
  /// `dimensions` is the objective-vector size every insert must match.
  explicit ParetoArchive(std::size_t dimensions);

  std::size_t dimensions() const noexcept { return dimensions_; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Offers a candidate to the archive. Returns true when the archive ends up
  /// containing an entry with this id: the candidate was non-dominated (it
  /// joined, evicting any members it dominates), or it tied an existing
  /// member's objectives exactly and won the deterministic tie-break (the
  /// smallest id represents an objective vector). Candidates with any
  /// non-finite objective — failed or unevaluated points — are rejected.
  /// Throws Error(kInvalidArgument) on a dimension mismatch.
  bool insert(std::size_t id, std::vector<double> objectives);

  /// True when some member dominates `objectives` or matches it exactly —
  /// i.e. an insert could not improve the front.
  bool covers(const std::vector<double>& objectives) const;

  /// True when id is currently a front member.
  bool contains(std::size_t id) const;

  /// The front, sorted by id (deterministic regardless of insertion order).
  const std::vector<ParetoEntry>& entries() const noexcept { return entries_; }

  /// Just the member ids, sorted ascending.
  std::vector<std::size_t> ids() const;

  /// True when, for every entry of `other`, some entry of this archive
  /// dominates it or ties it exactly — the "equal to or dominating" front
  /// comparison used by the adaptive-vs-dense acceptance gate. An empty
  /// `other` is trivially covered.
  bool covers_front(const ParetoArchive& other) const;

 private:
  std::size_t dimensions_;
  std::vector<ParetoEntry> entries_;  ///< sorted by id
};

}  // namespace cimflow::search
