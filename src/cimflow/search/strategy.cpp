#include "cimflow/search/strategy.hpp"

#include <algorithm>

#include "cimflow/support/rng.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::search {

SearchSpace::Coords SearchSpace::coords(std::size_t index) const {
  if (index >= size()) {
    raise(ErrorCode::kInvalidArgument,
          strprintf("grid index %zu outside space of %zu point(s)", index, size()));
  }
  // The one row-major decode, shared with DseEngine's grid fill.
  const DseGridCoords c = dse_grid_coords(index, flit_sizes.size(), strategies.size());
  return {c.mg_i, c.flit_i, c.strategy_i};
}

std::size_t SearchSpace::index_of(const Coords& c) const {
  return dse_grid_index({c.mg_i, c.flit_i, c.strategy_i}, flit_sizes.size(),
                        strategies.size());
}

DseJobPoint SearchSpace::sample(std::size_t index) const {
  const Coords c = coords(index);
  DseJobPoint point;
  point.macros_per_group = mg_sizes[c.mg_i];
  point.flit_bytes = flit_sizes[c.flit_i];
  point.strategy = strategies[c.strategy_i];
  point.seed_index = index;
  return point;
}

void SearchStrategy::observe(const DsePoint&, std::size_t, const ParetoArchive&) {}

// --- GridStrategy ------------------------------------------------------------

void GridStrategy::reset(const SearchSpace& space, std::uint64_t) {
  total_ = space.size();
  cursor_ = 0;
}

std::vector<std::size_t> GridStrategy::propose(std::size_t limit) {
  std::vector<std::size_t> out;
  while (cursor_ < total_ && out.size() < limit) out.push_back(cursor_++);
  return out;
}

// --- RandomStrategy ----------------------------------------------------------

void RandomStrategy::reset(const SearchSpace& space, std::uint64_t seed) {
  order_.resize(space.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  // Fisher-Yates with the repo's deterministic generator: the same seed
  // explores the same permutation on every platform.
  SplitMix64 rng(seed ^ 0xADA9'7153'EA4C'9B1Dull);
  for (std::size_t i = order_.size(); i > 1; --i) {
    std::swap(order_[i - 1], order_[rng.next_below(i)]);
  }
  cursor_ = 0;
}

std::vector<std::size_t> RandomStrategy::propose(std::size_t limit) {
  std::vector<std::size_t> out;
  while (cursor_ < order_.size() && out.size() < limit) out.push_back(order_[cursor_++]);
  return out;
}

// --- ParetoRefineStrategy ----------------------------------------------------

std::vector<std::pair<std::size_t, std::size_t>> bisection_order(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> order;
  if (n == 0) return order;
  order.push_back({0, 0});
  if (n == 1) return order;
  order.push_back({n - 1, 0});
  // Breadth-first interval splitting: each wave adds the midpoints of the
  // previous wave's intervals, so depth grows with resolution.
  struct Interval {
    std::size_t lo, hi, depth;
  };
  std::vector<Interval> wave = {{0, n - 1, 1}};
  while (!wave.empty()) {
    std::vector<Interval> next;
    for (const Interval& iv : wave) {
      if (iv.hi - iv.lo < 2) continue;
      const std::size_t mid = iv.lo + (iv.hi - iv.lo) / 2;
      order.push_back({mid, iv.depth});
      next.push_back({iv.lo, mid, iv.depth + 1});
      next.push_back({mid, iv.hi, iv.depth + 1});
    }
    wave = std::move(next);
  }
  return order;
}

void ParetoRefineStrategy::reset(const SearchSpace& space, std::uint64_t) {
  space_ = space;
  seen_.assign(space.size(), 0);
  pending_.clear();
  front_.clear();
  seeded_ = false;
  cross_seeded_ = false;
  filled_ = false;
}

void ParetoRefineStrategy::enqueue(std::size_t index) {
  if (seen_[index]) return;
  seen_[index] = 1;
  pending_.push_back(index);
}

void ParetoRefineStrategy::refill() {
  if (!seeded_) {
    // Phase 1 — anchors: the (min, min) and (max, max) hardware corners
    // under every compiler strategy. The compiler-strategy axis is
    // categorical — an optimized mapping can reorder the whole hardware
    // landscape (the paper's Fig. 7 point) — so each strategy gets its own
    // anchors; the hardware axes are ordinal, so two corners bracket them.
    seeded_ = true;
    for (std::size_t s = 0; s < space_.strategies.size(); ++s) {
      enqueue(space_.index_of({0, 0, s}));
      enqueue(space_.index_of(
          {space_.mg_sizes.size() - 1, space_.flit_sizes.size() - 1, s}));
    }
    return;
  }
  if (!cross_seeded_) {
    // Phase 1b — anti-diagonal corners: the hardware axes can pull in
    // opposite directions (EfficientNet's optimum on the default landscape
    // is small-MG / wide-flit), so the (min, max) and (max, min) corners
    // bracket the rectangle too. They come after the diagonal anchors so a
    // strategy the anchors already showed to be dominated everywhere does
    // not spend budget here; with no front yet nothing is provably
    // dominated, so every strategy keeps its corners.
    cross_seeded_ = true;
    std::vector<unsigned char> on_front(space_.strategies.size(),
                                        front_.empty() ? 1 : 0);
    for (std::size_t id : front_) on_front[space_.coords(id).strategy_i] = 1;
    for (std::size_t s = 0; s < space_.strategies.size(); ++s) {
      if (!on_front[s]) continue;
      enqueue(space_.index_of({0, space_.flit_sizes.size() - 1, s}));
      enqueue(space_.index_of({space_.mg_sizes.size() - 1, 0, s}));
    }
    if (!pending_.empty()) return;
  }
  // Phase 2 — refinement: unexplored grid neighbors (one step along one
  // axis, strategy swaps included) of the current front. Gradient
  // exploitation comes before any broader fill: under a tight budget the
  // cells adjacent to known-good points are the highest-value spend, and
  // dominated points never make the front, so the space around them stays
  // unexplored.
  std::vector<std::size_t> candidates;
  for (std::size_t id : front_) {
    const SearchSpace::Coords c = space_.coords(id);
    auto offer = [&](SearchSpace::Coords n) { candidates.push_back(space_.index_of(n)); };
    if (c.mg_i > 0) offer({c.mg_i - 1, c.flit_i, c.strategy_i});
    if (c.mg_i + 1 < space_.mg_sizes.size()) offer({c.mg_i + 1, c.flit_i, c.strategy_i});
    if (c.flit_i > 0) offer({c.mg_i, c.flit_i - 1, c.strategy_i});
    if (c.flit_i + 1 < space_.flit_sizes.size())
      offer({c.mg_i, c.flit_i + 1, c.strategy_i});
    if (c.strategy_i > 0) offer({c.mg_i, c.flit_i, c.strategy_i - 1});
    if (c.strategy_i + 1 < space_.strategies.size())
      offer({c.mg_i, c.flit_i, c.strategy_i + 1});
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
  for (std::size_t index : candidates) enqueue(index);
  if (!pending_.empty()) return;

  if (!filled_) {
    // Phase 3 — neighbors exhausted: fill the promising region
    // coarse-to-fine as a backstop against spikes that are not grid-adjacent
    // to the front (non-monotone mapping/capacity interactions make them
    // common on the MG axis). Strategies with no presence on the current
    // front were dominated outright; their whole region is skipped.
    // Remaining (mg, flit) cells queue in axis-bisection order, shallow
    // depths first — the budget, not this schedule, decides how far down
    // the queue evaluation gets. Once the queue drains, phase 2 resumes
    // around whatever new front members the fill surfaced.
    filled_ = true;
    // No evidence yet (every anchor failed) -> nothing is provably
    // dominated; fill everywhere rather than converging on thin air.
    std::vector<unsigned char> on_front(space_.strategies.size(),
                                        front_.empty() ? 1 : 0);
    for (std::size_t id : front_) on_front[space_.coords(id).strategy_i] = 1;
    const auto mg_order = bisection_order(space_.mg_sizes.size());
    const auto flit_order = bisection_order(space_.flit_sizes.size());
    // (depth, grid index) pairs, stably sorted by combined depth.
    std::vector<std::pair<std::size_t, std::size_t>> cells;
    for (const auto& [mg_i, mg_depth] : mg_order) {
      for (const auto& [flit_i, flit_depth] : flit_order) {
        for (std::size_t s = 0; s < space_.strategies.size(); ++s) {
          if (!on_front[s]) continue;
          cells.push_back(
              {mg_depth + flit_depth, space_.index_of({mg_i, flit_i, s})});
        }
      }
    }
    std::sort(cells.begin(), cells.end());
    for (const auto& [depth, index] : cells) enqueue(index);
  }
}

std::vector<std::size_t> ParetoRefineStrategy::propose(std::size_t limit) {
  if (limit == 0 || space_.size() == 0) return {};
  if (pending_.empty()) refill();
  std::vector<std::size_t> out;
  std::size_t taken = 0;
  while (taken < pending_.size() && out.size() < limit) out.push_back(pending_[taken++]);
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(taken));
  return out;
}

void ParetoRefineStrategy::observe(const DsePoint&, std::size_t,
                                   const ParetoArchive& archive) {
  front_ = archive.ids();
}

// --- Factory -----------------------------------------------------------------

std::unique_ptr<SearchStrategy> make_strategy(const std::string& name) {
  if (name == "grid") return std::make_unique<GridStrategy>();
  if (name == "random") return std::make_unique<RandomStrategy>();
  if (name == "pareto") return std::make_unique<ParetoRefineStrategy>();
  raise(ErrorCode::kInvalidArgument,
        "unknown search strategy: " + name + " (expected grid, random, or pareto)");
}

}  // namespace cimflow::search
