#include "cimflow/search/driver.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "cimflow/core/program_cache.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"
#include "cimflow/support/trace.hpp"

namespace cimflow::search {

const char* to_string(Objective objective) noexcept {
  switch (objective) {
    case Objective::kLatency: return "latency";
    case Objective::kEnergy: return "energy";
    case Objective::kArea: return "area";
  }
  return "?";
}

Objective objective_from_string(const std::string& name) {
  if (name == "latency") return Objective::kLatency;
  if (name == "energy") return Objective::kEnergy;
  if (name == "area") return Objective::kArea;
  raise(ErrorCode::kInvalidArgument,
        "unknown objective: " + name + " (expected latency, energy, or area)");
}

double objective_value(Objective objective, const DsePoint& point,
                       const arch::ArchConfig& base) {
  switch (objective) {
    case Objective::kLatency: return point.report.sim.latency_per_image_ms();
    case Objective::kEnergy: return point.energy_mj();
    case Objective::kArea:
      return arch_with(base, point.macros_per_group, point.flit_bytes).area_mm2();
  }
  return 0;
}

std::vector<DsePoint> SearchResult::ok_points() const {
  std::vector<DsePoint> out;
  out.reserve(points.size());
  for (const DsePoint& point : points) {
    if (point.ok) out.push_back(point);
  }
  return out;
}

std::vector<std::size_t> SearchResult::front_positions(
    const std::vector<DsePoint>& subset) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < subset.size(); ++i) {
    if (std::binary_search(front_equivalent.begin(), front_equivalent.end(),
                           subset[i].index)) {
      out.push_back(i);
    }
  }
  return out;
}

Json SearchResult::to_json(bool include_run_info) const {
  JsonObject search;
  search["strategy"] = Json(strategy);
  search["space_size"] = Json(static_cast<std::int64_t>(space_size));
  search["budget"] = Json(static_cast<std::int64_t>(budget));
  search["evaluations"] = Json(static_cast<std::int64_t>(evaluations()));
  JsonArray objective_names;
  for (Objective o : objectives) objective_names.push_back(Json(std::string(to_string(o))));
  search["objectives"] = Json(std::move(objective_names));
  JsonArray front;
  for (const ParetoEntry& entry : archive.entries()) {
    JsonObject member;
    member["index"] = Json(static_cast<std::int64_t>(entry.id));
    JsonArray values;
    for (double v : entry.objectives) values.push_back(Json(v));
    member["objectives"] = Json(std::move(values));
    front.push_back(Json(std::move(member)));
  }
  search["front"] = Json(std::move(front));

  JsonObject o;
  o["search"] = Json(std::move(search));
  o["stats"] = stats.to_json(include_run_info);
  JsonArray point_array;
  point_array.reserve(points.size());
  for (const DsePoint& point : points) point_array.push_back(point.to_json());
  o["points"] = Json(std::move(point_array));
  return Json(std::move(o));
}

SearchResult SearchDriver::run(const graph::Graph& model, const arch::ArchConfig& base,
                               SearchStrategy& strategy, const SearchJob& job) const {
  if (options_.engine.eval.persistent_cache != nullptr && !job.cache_dir.empty()) {
    raise(ErrorCode::kInvalidArgument,
          "SearchJob::cache_dir conflicts with the caller-scoped persistent cache "
          "already wired into DseEngine::Options");
  }
  if (job.objectives.empty()) {
    raise(ErrorCode::kInvalidArgument,
          "SearchJob::objectives must name at least one objective");
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t space_size = job.space.size();
  const std::size_t budget =
      job.budget == 0 ? space_size : std::min(job.budget, space_size);

  SearchResult result;
  result.strategy = strategy.name();
  result.space_size = space_size;
  result.budget = budget;
  result.objectives = job.objectives;
  result.archive = ParetoArchive(job.objectives.size());

  // A bad --cache-dir throws here (kIoError with the path), before any
  // evaluation work starts.
  std::optional<PersistentProgramCache> persistent;
  DseEngine::Options engine_options = options_.engine;
  // Hoisted compile memo: each propose() batch is one DseEngine::run, and a
  // run-local memo would forget every compile between batches — identical
  // software configurations in different batches of a cache-less search
  // would recompile. One memo at search scope closes that gap (the model is
  // hashed once for the whole search so the memo key stays collision-safe).
  // A caller-scoped memo (cimflowd keeps one warm across requests — its keys
  // carry the model fingerprint, so sharing across models is safe) takes
  // precedence over the search-local one.
  ProgramMemo search_memo;
  if (engine_options.eval.memo == nullptr) engine_options.eval.memo = &search_memo;
  if (engine_options.eval.model_fingerprint == 0) {
    engine_options.eval.model_fingerprint = model_fingerprint(model);
  }
  if (!job.cache_dir.empty()) {
    persistent.emplace(job.cache_dir, job.cache_max_bytes);
    engine_options.eval.persistent_cache = &*persistent;
  }
  const DseEngine engine(engine_options);

  strategy.reset(job.space, job.seed);
  std::unordered_set<std::size_t> evaluated;
  // Objective vectors of ok points, keyed by grid index — computed once in
  // the streaming callback, reused for the final tie-inclusive front pass.
  std::unordered_map<std::size_t, std::vector<double>> point_objectives;

  while (evaluated.size() < budget) {
    const std::vector<std::size_t> proposed = strategy.propose(budget - evaluated.size());
    // Defend against a misbehaving strategy: repeats would double-evaluate
    // and corrupt the archive's id space, and an over-long batch would bust
    // the budget the caller asked for.
    std::vector<std::size_t> batch;
    for (std::size_t index : proposed) {
      if (evaluated.size() == budget) break;
      if (evaluated.insert(index).second) batch.push_back(index);
    }
    if (batch.empty()) break;

    DseJob dse_job;
    dse_job.batch = job.batch;
    dse_job.functional = job.functional;
    dse_job.hoist_memory = job.hoist_memory;
    dse_job.seed = job.seed;
    dse_job.explicit_points.reserve(batch.size());
    for (std::size_t index : batch) dse_job.explicit_points.push_back(job.space.sample(index));

    // The engine serializes on_point and fires it in batch order, so the
    // archive and the strategy can be updated from inside the callback —
    // points stream out while later ones are still simulating. The callback
    // only reads; the points themselves are moved (not copied) out of the
    // batch result below — full EvaluationReports are heavy.
    const std::size_t evaluated_before = evaluated.size() - batch.size();
    std::size_t completed = 0;
    dse_job.on_point = [&](const DsePoint& engine_point) {
      const std::size_t grid_index = batch[engine_point.index];
      bool joined = false;
      if (engine_point.ok) {
        std::vector<double> objectives;
        objectives.reserve(job.objectives.size());
        for (Objective o : job.objectives) {
          objectives.push_back(objective_value(o, engine_point, base));
        }
        joined = result.archive.insert(grid_index, objectives);
        point_objectives.emplace(grid_index, std::move(objectives));
      }
      strategy.observe(engine_point, grid_index, result.archive);
      if (job.on_point) {
        DsePoint copy = engine_point;  // only the user callback pays for one
        copy.index = grid_index;
        job.on_point(copy);
      }
      ++completed;
      if (job.progress) job.progress(evaluated_before + completed, budget);
      if (joined && job.on_front) job.on_front(result.archive);
    };

    DseResult batch_result = [&] {
      // One search.batch span per engine run on the driver thread; the
      // per-point dse.* spans are recorded by the engine's workers into the
      // same EvalContext::trace sink (when one is wired in).
      trace::Scope trace_scope(engine_options.eval.trace);
      CIMFLOW_TRACE_SPAN("search.batch");
      return engine.run(model, base, dse_job);
    }();
    for (std::size_t i = 0; i < batch_result.points.size(); ++i) {
      batch_result.points[i].index = batch[i];  // canonical grid index
      result.points.push_back(std::move(batch_result.points[i]));
    }
    result.stats.compile_cache_hits += batch_result.stats.compile_cache_hits;
    result.stats.compile_cache_misses += batch_result.stats.compile_cache_misses;
    result.stats.persistent_cache_hits += batch_result.stats.persistent_cache_hits;
    result.stats.persistent_cache_stores += batch_result.stats.persistent_cache_stores;
    result.stats.persistent_cache_evictions += batch_result.stats.persistent_cache_evictions;
    result.stats.persistent_cache_touch_failures +=
        batch_result.stats.persistent_cache_touch_failures;
    result.stats.sim_wall_seconds += batch_result.stats.sim_wall_seconds;
    result.stats.threads_used =
        std::max(result.stats.threads_used, batch_result.stats.threads_used);
  }

  std::sort(result.points.begin(), result.points.end(),
            [](const DsePoint& a, const DsePoint& b) { return a.index < b.index; });
  // The archive collapses exact ties onto one id; collect the tie-inclusive
  // view against the *final* front (an early tie whose vector was later
  // dominated must not count), so displays never mark an equally-optimal
  // configuration as dominated.
  for (const DsePoint& point : result.points) {
    const auto it = point_objectives.find(point.index);
    if (it == point_objectives.end()) continue;  // failed point
    for (const ParetoEntry& entry : result.archive.entries()) {
      if (entry.objectives == it->second) {
        result.front_equivalent.push_back(point.index);  // points are sorted
        break;
      }
    }
  }
  result.stats.total_points = result.points.size();
  for (const DsePoint& point : result.points) {
    if (point.ok) {
      ++result.stats.evaluated;
    } else {
      ++result.stats.failed;
    }
  }
  result.stats.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace cimflow::search
