// Pluggable exploration strategies for the adaptive DSE search subsystem.
// A SearchStrategy decides WHICH points of the (mg x flit x compiler
// strategy) design space get evaluated and in what order; the SearchDriver
// owns WHEN (budget, batching) and HOW (the multithreaded DseEngine).
//
// Three built-ins:
//   * GridStrategy   — every point in grid-index order; with an unlimited
//     budget this reproduces the dense DseJob sweep exactly (same seeds,
//     same reports, byte-identical JSON).
//   * RandomStrategy — a seeded uniform permutation of the space; the
//     budget-bounded baseline adaptive methods must beat.
//   * ParetoRefineStrategy — seeds the hardware corners under every compiler
//     strategy, then repeatedly proposes the unexplored grid neighbors of
//     the current Pareto front; when those exhaust, it falls back to a
//     coarse-to-fine bisection fill of the strategies still holding front
//     membership (dominated strategies' regions are skipped outright), and
//     resumes neighborhood refinement around whatever the fill surfaces.
//     Dominated regions are never expanded, which is what cuts big-model
//     sweep cost (ROADMAP "Adaptive DSE").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cimflow/core/dse.hpp"
#include "cimflow/search/pareto.hpp"

namespace cimflow::search {

/// The discrete design space strategies explore: the same axes as DseJob,
/// with the identical row-major index convention
/// (index = (mg_i * |flit| + flit_i) * |strategies| + strategy_i), so a grid
/// index doubles as the canonical seed index of the point.
struct SearchSpace {
  std::vector<std::int64_t> mg_sizes = {4, 8, 12, 16};
  std::vector<std::int64_t> flit_sizes = {8, 16};
  std::vector<compiler::Strategy> strategies = {compiler::Strategy::kGeneric};

  struct Coords {
    std::size_t mg_i = 0;
    std::size_t flit_i = 0;
    std::size_t strategy_i = 0;
  };

  std::size_t size() const noexcept {
    return mg_sizes.size() * flit_sizes.size() * strategies.size();
  }

  /// Grid index -> per-axis indices (throws Error(kInvalidArgument) when out
  /// of range) and back.
  Coords coords(std::size_t index) const;
  std::size_t index_of(const Coords& c) const;

  /// The concrete sample at `index`, carrying the grid index as seed_index —
  /// what DseJob::explicit_points consumes.
  DseJobPoint sample(std::size_t index) const;
};

class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;

  /// Stable identifier ("grid", "random", "pareto") used by the CLI and in
  /// reports.
  virtual std::string name() const = 0;

  /// Begins a fresh search. `seed` feeds any stochastic choices (only
  /// RandomStrategy uses it; the others are fully deterministic).
  virtual void reset(const SearchSpace& space, std::uint64_t seed) = 0;

  /// The next grid indices to evaluate — at most `limit`, never repeating an
  /// index from any earlier propose() of this search. An empty batch means
  /// the strategy has converged (nothing left it considers worth
  /// evaluating); the driver then stops even with budget remaining.
  virtual std::vector<std::size_t> propose(std::size_t limit) = 0;

  /// Feedback after each evaluation, in batch order. `grid_index` is the
  /// point's canonical index in the space (`point.index` is its engine-batch
  /// position — use `grid_index`). `archive` is the driver's current Pareto
  /// front over the configured objectives (failed points are excluded from
  /// it, but still reported here).
  virtual void observe(const DsePoint& point, std::size_t grid_index,
                       const ParetoArchive& archive);
};

class GridStrategy final : public SearchStrategy {
 public:
  std::string name() const override { return "grid"; }
  void reset(const SearchSpace& space, std::uint64_t seed) override;
  std::vector<std::size_t> propose(std::size_t limit) override;

 private:
  std::size_t total_ = 0;
  std::size_t cursor_ = 0;
};

class RandomStrategy final : public SearchStrategy {
 public:
  std::string name() const override { return "random"; }
  void reset(const SearchSpace& space, std::uint64_t seed) override;
  std::vector<std::size_t> propose(std::size_t limit) override;

 private:
  std::vector<std::size_t> order_;  ///< seeded permutation of the space
  std::size_t cursor_ = 0;
};

class ParetoRefineStrategy final : public SearchStrategy {
 public:
  std::string name() const override { return "pareto"; }
  void reset(const SearchSpace& space, std::uint64_t seed) override;
  std::vector<std::size_t> propose(std::size_t limit) override;
  void observe(const DsePoint& point, std::size_t grid_index,
               const ParetoArchive& archive) override;

 private:
  /// Queues the next wave's indices (skipping anything enqueued before):
  /// diagonal corner anchors first, then the anti-diagonal corners of
  /// strategies still on the front, then grid neighbors of the current
  /// front, then — once neighbors exhaust — the coarse-to-fine fill of
  /// non-dominated strategies.
  void refill();
  void enqueue(std::size_t index);

  SearchSpace space_;
  std::vector<unsigned char> seen_;   ///< ever enqueued (proposed or pending)
  std::vector<std::size_t> pending_;  ///< enqueued, not yet handed out
  std::vector<std::size_t> front_;    ///< current front's grid indices
  bool seeded_ = false;
  bool cross_seeded_ = false;
  bool filled_ = false;
};

/// Coarse-to-fine visit order for an ordinal axis of `n` values: endpoints
/// first, then recursive interval midpoints. Returns (index, depth) pairs in
/// visit order — the schedule ParetoRefineStrategy fills surviving regions
/// with, exposed for tests.
std::vector<std::pair<std::size_t, std::size_t>> bisection_order(std::size_t n);

/// Factory for the CLI / examples: "grid", "random", or "pareto". Throws
/// Error(kInvalidArgument) listing the valid names on anything else.
std::unique_ptr<SearchStrategy> make_strategy(const std::string& name);

}  // namespace cimflow::search
