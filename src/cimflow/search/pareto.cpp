#include "cimflow/search/pareto.hpp"

#include <algorithm>
#include <cmath>

#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::search {
namespace {

bool all_finite(const std::vector<double>& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace

ParetoArchive::ParetoArchive(std::size_t dimensions) : dimensions_(dimensions) {
  if (dimensions == 0) {
    raise(ErrorCode::kInvalidArgument, "ParetoArchive needs at least one objective");
  }
}

bool ParetoArchive::insert(std::size_t id, std::vector<double> objectives) {
  if (objectives.size() != dimensions_) {
    raise(ErrorCode::kInvalidArgument,
          strprintf("objective vector has %zu dimensions, archive expects %zu",
                    objectives.size(), dimensions_));
  }
  if (!all_finite(objectives)) return false;

  for (ParetoEntry& entry : entries_) {
    if (entry.objectives == objectives) {
      // Exact tie: the smallest id represents this objective vector, so the
      // front is independent of insertion order.
      if (id < entry.id) {
        entry.id = id;
        std::sort(entries_.begin(), entries_.end(),
                  [](const ParetoEntry& a, const ParetoEntry& b) { return a.id < b.id; });
        return true;
      }
      return id == entry.id;
    }
    if (dominates(entry.objectives, objectives)) return false;
  }

  std::erase_if(entries_, [&](const ParetoEntry& entry) {
    return dominates(objectives, entry.objectives);
  });
  ParetoEntry entry{id, std::move(objectives)};
  entries_.insert(std::upper_bound(entries_.begin(), entries_.end(), entry,
                                   [](const ParetoEntry& a, const ParetoEntry& b) {
                                     return a.id < b.id;
                                   }),
                  std::move(entry));
  return true;
}

bool ParetoArchive::covers(const std::vector<double>& objectives) const {
  if (objectives.size() != dimensions_) {
    raise(ErrorCode::kInvalidArgument,
          strprintf("objective vector has %zu dimensions, archive expects %zu",
                    objectives.size(), dimensions_));
  }
  if (!all_finite(objectives)) return false;
  for (const ParetoEntry& entry : entries_) {
    if (entry.objectives == objectives || dominates(entry.objectives, objectives)) {
      return true;
    }
  }
  return false;
}

bool ParetoArchive::contains(std::size_t id) const {
  for (const ParetoEntry& entry : entries_) {
    if (entry.id == id) return true;
  }
  return false;
}

std::vector<std::size_t> ParetoArchive::ids() const {
  std::vector<std::size_t> out;
  out.reserve(entries_.size());
  for (const ParetoEntry& entry : entries_) out.push_back(entry.id);
  return out;
}

bool ParetoArchive::covers_front(const ParetoArchive& other) const {
  // Checked here, not left to covers(), so an empty `other` with mismatched
  // dimensions cannot slip through as trivially covered.
  if (other.dimensions_ != dimensions_) {
    raise(ErrorCode::kInvalidArgument,
          strprintf("comparing a %zu-objective front against a %zu-objective archive",
                    other.dimensions_, dimensions_));
  }
  for (const ParetoEntry& entry : other.entries_) {
    if (!covers(entry.objectives)) return false;
  }
  return true;
}

}  // namespace cimflow::search
