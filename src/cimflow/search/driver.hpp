// SearchDriver: runs a SearchStrategy on top of the multithreaded DseEngine
// under an evaluation budget — the adaptive layer over per-point parallelism.
// Each propose() batch becomes one explicit-point DseJob (so batches still
// fan out across the engine's worker pool and share its compile caches), and
// every completed point streams back through the job's callbacks while the
// driver maintains the Pareto archive the strategy refines against.
//
// Determinism: a point's input seed derives from its canonical grid index,
// not from batch order, so the same design point produces bit-identical
// reports under any strategy, batching, thread count, or persistent-cache
// temperature. SearchResult::to_json(false) is therefore byte-identical
// across reruns — the property the persistent-cache acceptance gate checks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cimflow/core/dse.hpp"
#include "cimflow/search/pareto.hpp"
#include "cimflow/search/strategy.hpp"

namespace cimflow::search {

/// What each Pareto objective measures (all minimized).
enum class Objective : std::uint8_t {
  kLatency,  ///< ms per image (sim)
  kEnergy,   ///< mJ per image (sim)
  kArea,     ///< mm² silicon estimate of the point's ArchConfig
};

/// "latency" / "energy" / "area".
const char* to_string(Objective objective) noexcept;
/// Inverse of to_string; throws Error(kInvalidArgument) on unknown names.
Objective objective_from_string(const std::string& name);

/// The objective value of an evaluated point (`base` supplies the
/// non-swept architecture parameters for the area estimate).
double objective_value(Objective objective, const DsePoint& point,
                       const arch::ArchConfig& base);

struct SearchJob {
  SearchSpace space;
  std::int64_t batch = 4;
  bool functional = false;   ///< simulate real INT8 data movement
  bool hoist_memory = true;  ///< OP-level memory-annotation pass
  std::uint64_t seed = 7;    ///< base seed; per-point seeds derive from it
  // (Per-point simulator threads moved to the engine's EvalContext:
  // SearchDriver::Options::engine.eval.sim_threads.)

  /// Maximum evaluations (0 = the whole space). The driver stops at the
  /// budget even mid-refinement; a strategy may stop earlier by converging.
  std::size_t budget = 0;

  /// The Pareto objectives, in order. Defaults to the paper's Fig. 7 plane.
  std::vector<Objective> objectives = {Objective::kLatency, Objective::kEnergy};

  /// Persistent compile-cache directory; empty disables persistence. The
  /// driver opens (or creates) it and wires it through the engine, so
  /// repeated sweeps reuse compilations across runs and processes.
  std::string cache_dir;
  /// Size cap for `cache_dir` (0 = unlimited): least-recently-used entries
  /// are evicted after stores so sweep farms sharing a directory stay
  /// bounded (PersistentProgramCache's LRU policy).
  std::int64_t cache_max_bytes = 0;

  /// Streaming callbacks, invoked in evaluation order as points complete
  /// (the point's `index` is already the canonical grid index). Serialized.
  std::function<void(const DsePoint&)> on_point;
  /// (evaluated so far, evaluation budget). Serialized.
  std::function<void(std::size_t, std::size_t)> progress;
  /// Fired whenever a point joins the front, with the updated archive.
  std::function<void(const ParetoArchive&)> on_front;
};

struct SearchResult {
  std::string strategy;      ///< SearchStrategy::name()
  std::size_t space_size = 0;
  std::size_t budget = 0;    ///< resolved budget the driver enforced
  std::vector<Objective> objectives;

  /// Evaluated points sorted by grid index; each point's `index` is its
  /// canonical grid index (failed points included, ok == false).
  std::vector<DsePoint> points;

  /// Pareto front over `objectives` (entry ids are grid indices). Exact
  /// objective ties collapse onto one representative id — see
  /// `front_equivalent` for the tie-inclusive view.
  ParetoArchive archive = ParetoArchive(1);

  /// Grid indices (sorted) of every evaluated point whose objectives exactly
  /// match a front entry — the front members plus their exact ties. The
  /// table's star column uses this, so equally-optimal configurations are
  /// never displayed as dominated.
  std::vector<std::size_t> front_equivalent;

  /// Aggregated engine statistics across all batches.
  DseStats stats;

  std::size_t evaluations() const noexcept { return points.size(); }
  std::vector<DsePoint> ok_points() const;

  /// Positions (into `subset`, typically ok_points()) of the points on the
  /// front or exactly tying it — the star column of dse_points_table.
  std::vector<std::size_t> front_positions(const std::vector<DsePoint>& subset) const;

  /// {"search": {...}, "stats": ..., "points": [...]} — a superset of
  /// DseResult::to_json() with the search block describing strategy, budget,
  /// coverage, and the front. Without run info the document is byte-
  /// identical across reruns of the same search.
  Json to_json(bool include_run_info = true) const;
};

class SearchDriver {
 public:
  struct Options {
    /// Engine configuration for each batch. `engine.eval` may carry
    /// caller-scoped warm layers (cimflowd keeps one EvalContext alive across
    /// requests); when its memo/persistent_cache are left null the driver
    /// hoists its own search-scoped memo and opens a persistent cache from
    /// SearchJob::cache_dir. Setting both a caller cache and cache_dir is an
    /// error — the request must pick one. A zero
    /// `engine.eval.model_fingerprint` is filled in by hashing the model once
    /// per search.
    DseEngine::Options engine;
  };

  SearchDriver() = default;
  explicit SearchDriver(Options options) : options_(options) {}

  const Options& options() const noexcept { return options_; }

  /// Runs `strategy` over `job.space` for `model` on variations of `base`.
  /// The strategy is reset() first, so a strategy object can be reused
  /// across runs. Failure semantics match DseEngine::run: per-point domain
  /// errors are recorded on the point; systemic failures propagate.
  SearchResult run(const graph::Graph& model, const arch::ArchConfig& base,
                   SearchStrategy& strategy, const SearchJob& job) const;

 private:
  Options options_;
};

}  // namespace cimflow::search
