// Extending the ISA with a custom instruction through the instruction
// description template (paper Sec. III-B: "seamless integration of new
// operations into the framework when provided with their associated
// performance parameters").
//
// We register VEC_NEG8 — an int8 negation — with its encoding format,
// executing unit, timing and energy templates and a functional callback,
// then assemble a small program using it and run it on the simulator.
//
// Build & run:  ./build/examples/custom_isa_extension
#include <cstdio>

#include "cimflow/arch/arch_config.hpp"
#include "cimflow/isa/assembler.hpp"
#include "cimflow/isa/registry.hpp"
#include "cimflow/sim/simulator.hpp"
#include "cimflow/support/numeric.hpp"

int main() {
  using namespace cimflow;

  // 1. Describe the new instruction. Opcode 0x30 is the first slot of the
  //    reserved custom range; the vector format gives it RD/RS/RT/RE fields.
  isa::Registry registry = isa::Registry::with_builtins();
  isa::InstructionDescriptor neg;
  neg.mnemonic = "VEC_NEG8";
  neg.opcode = 0x30;
  neg.format = isa::Format::kVector;
  neg.unit = isa::UnitKind::kVector;
  neg.timing = isa::TimingSpec{/*fixed=*/1, /*elements_per_cycle=*/32, /*extra=*/2};
  neg.energy = isa::EnergySpec{/*fixed_pj=*/0.5, /*per_element_pj=*/0.3};
  neg.execute = [](const isa::Instruction& inst, isa::CustomExecContext& ctx) {
    const auto dst = static_cast<std::uint32_t>(ctx.reg(inst.rd)) & ~0x80000000u;
    const auto src = static_cast<std::uint32_t>(ctx.reg(inst.rs)) & ~0x80000000u;
    const std::int32_t n = ctx.reg(inst.re);
    for (std::int32_t i = 0; i < n; ++i) {
      const auto v = static_cast<std::int8_t>(ctx.load_byte(src + static_cast<std::uint32_t>(i)));
      ctx.store_byte(dst + static_cast<std::uint32_t>(i),
                     static_cast<std::uint8_t>(saturate_int8(-static_cast<std::int32_t>(v))));
    }
  };
  registry.register_instruction(std::move(neg));
  std::printf("registered VEC_NEG8 (opcode 0x30) with timing/energy template\n");

  // 2. Use it from assembly: fill a buffer with a constant, negate it, halt.
  //    Buffer at local offset 0; G_LIH -32768 (0x8000) sets the local-address tag.
  const char* source = R"(
      G_LI  R4, 0
      G_LIH R4, -32768     ; R4 = local[0] (0x8000 upper half)
      G_LI  R5, 64
      G_LIH R5, -32768     ; R5 = local[64]
      G_LI  R6, 64         ; length
      G_LI  R7, 55         ; fill value
      VEC_FILL8 R4, R4, R7, R6
      VEC_NEG8  R5, R4, R0, R6
      HALT
  )";
  isa::CoreProgram core_program = isa::assemble(source, registry);
  std::printf("assembled program:\n%s\n",
              isa::disassemble(core_program, registry).c_str());

  // 3. Run it on core 0 of the default chip and read back the result.
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  isa::Program program(arch.chip().core_count);
  program.cores[0] = core_program;
  for (std::int64_t c = 1; c < arch.chip().core_count; ++c) {
    program.cores[static_cast<std::size_t>(c)].code.push_back(isa::Instruction::halt());
  }
  program.batch = 0;

  sim::SimOptions options;
  options.functional = true;
  options.registry = &registry;
  sim::Simulator simulator(arch, options);
  const sim::SimReport report = simulator.run(program, {});
  std::printf("simulated %lld instructions in %lld cycles\n",
              (long long)report.instructions, (long long)report.cycles);
  std::printf("custom instruction executed: 64 bytes of +55 negated to -55\n");
  return 0;
}
