// The capacity-constraint story (paper Secs. I-II): VGG19's 144 MB of INT8
// weights cannot fit the chip's 32 MB of CIM arrays, so the compiler must
// partition the model into execution stages. This example shows the stage
// decisions each strategy makes and what the stage switching costs.
//
// Build & run:  ./build/examples/capacity_partitioning
#include <cstdio>

#include "cimflow/core/flow.hpp"
#include "cimflow/graph/condense.hpp"
#include "cimflow/models/models.hpp"

int main() {
  using namespace cimflow;

  const graph::Graph model = models::vgg19();
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  std::printf("model : %s\n", model.summary().c_str());
  std::printf("chip  : %lld MB of CIM weight capacity -> multi-stage execution required\n\n",
              (long long)(arch.chip_weight_bytes() >> 20));

  const graph::CondensedGraph cg = graph::CondensedGraph::build(model);
  std::printf("%s\n\n", cg.summary().c_str());

  Flow flow(arch);
  for (compiler::Strategy strategy :
       {compiler::Strategy::kGeneric, compiler::Strategy::kDpOptimized}) {
    FlowOptions options;
    options.strategy = strategy;
    options.batch = 4;
    const compiler::CompileResult compiled = flow.compile(model, options);
    std::printf("--- strategy: %s ---\n", compiled.plan.strategy.c_str());
    std::printf("%s", compiled.plan.summary(cg).c_str());
    std::printf("weight image: %.1f MB streamed across %lld stage(s)\n\n",
                static_cast<double>(compiled.stats.weight_image_bytes) / 1e6,
                (long long)compiled.stats.stages);
  }

  std::printf(
      "Note how the DP partitioner chooses stage boundaries jointly with\n"
      "duplication decisions, while the greedy baseline simply packs layers\n"
      "until capacity runs out.\n");
  return 0;
}
