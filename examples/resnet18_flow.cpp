// Full ResNet18 through the CIMFlow stack: compile with all three
// compilation strategies on the default architecture and compare latency,
// throughput, energy and mapping decisions (a single-model slice of the
// paper's Fig. 5 study).
//
// Build & run:  ./build/examples/resnet18_flow
#include <cstdio>

#include "cimflow/core/flow.hpp"
#include "cimflow/models/models.hpp"

int main() {
  using namespace cimflow;

  const graph::Graph model = models::resnet18();
  std::printf("model: %s\n\n", model.summary().c_str());

  Flow flow(arch::ArchConfig::cimflow_default());
  for (compiler::Strategy strategy :
       {compiler::Strategy::kGeneric, compiler::Strategy::kOpportunistic,
        compiler::Strategy::kDpOptimized}) {
    FlowOptions options;
    options.strategy = strategy;
    options.batch = 8;
    // One big evaluation at a time: let the event scheduler shard the
    // simulation over every hardware thread (the report is byte-identical to
    // sim_threads = 1, just faster).
    options.eval.sim_threads = 0;
    const EvaluationReport report = flow.evaluate(model, options);
    std::printf("%s\n", report.summary().c_str());
  }
  std::printf(
      "Expected ordering (paper Fig. 5): dp is fastest; the generic mapping\n"
      "(inter-layer pipeline, no duplication) is slowest.\n");
  return 0;
}
