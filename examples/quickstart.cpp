// Quickstart: the complete CIMFlow workflow on a small CNN.
//
//   1. describe a DNN model as a computation graph,
//   2. pick an architecture configuration (Table I defaults here),
//   3. compile with the DP-based strategy,
//   4. run the cycle-accurate simulator in functional mode, and
//   5. check the result bit-exactly against the golden reference executor.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "cimflow/core/flow.hpp"
#include "cimflow/models/models.hpp"

int main() {
  using namespace cimflow;

  // 1. Model: a small CNN (2 convs + pool + GAP + classifier), INT8.
  models::ModelOptions mopt;
  const graph::Graph model = models::micro_cnn(mopt);
  std::printf("model: %s\n", model.summary().c_str());

  // 2. Architecture: the paper's Table I default digital CIM chip.
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  std::printf("%s\n", arch.summary().c_str());

  // 3-5. Compile, simulate, validate.
  Flow flow(arch);
  FlowOptions options;
  options.strategy = compiler::Strategy::kDpOptimized;
  options.batch = 2;
  options.validate = true;  // functional simulation + golden comparison

  const EvaluationReport report = flow.evaluate(model, options);
  std::printf("%s\n", report.summary().c_str());
  return report.validated && report.validation_passed ? 0 : 1;
}
