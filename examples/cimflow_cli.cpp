// cimflow_cli — command-line driver for the integrated workflow.
//
//   cimflow_cli evaluate  --model resnet18|vgg19|mobilenetv2|efficientnetb0|micro
//                         [--model-file m.txt] [--arch config.json]
//                         [--strategy generic|cimmlc|dp] [--batch N]
//                         [--validate] [--input-hw N]
//                         [--sim-threads N]     # shard one simulation across
//                                               # N workers (0 = all cores);
//                                               # reports are byte-identical
//                         [--kernels T]         # SIMD kernel tier: auto
//                                               # (default)|scalar|avx2|neon,
//                                               # mirroring CIMFLOW_KERNELS;
//                                               # byte-identical reports, only
//                                               # wall clock moves
//                         [--sync-window N]     # deprecated: the event-driven
//                                               # simulator has no rendezvous
//                                               # quantum (warn-and-ignore)
//                         [--trace out.json]    # Chrome trace-event timeline of
//                                               # the simulated run (one track
//                                               # per core); never perturbs the
//                                               # report or --json bytes
//                         [--json report.json]           # machine-readable report
//   cimflow_cli describe  --model NAME [--save m.txt]    # dump model format
//   cimflow_cli plan      --model NAME [--strategy S]    # mapping only
//   cimflow_cli arch      [--arch config.json]           # resolved parameters
//   cimflow_cli sweep     --model NAME [--mg 4,8,12,16] [--flit 8,16]
//                         [--strategies generic,dp] [--batch N] [--threads N]
//                         [--sim-threads N]     # simulator threads per point
//                         [--cache-max-bytes N] # LRU size cap for --cache-dir
//                         [--strategy grid|random|pareto]  # search strategy
//                         [--budget N]          # max evaluations (0 = all)
//                         [--cache-dir DIR]     # persistent compile cache
//                         [--objectives latency,energy[,area]]
//                         [--json sweep.json] [--csv sweep.csv]
//                         # (mg x flit x strategy) DSE — dense grid by
//                         # default, Pareto-guided under --strategy pareto
//   cimflow_cli serve     --socket /path/cimflowd.sock [--workers N]
//                         [--queue N]           # admission bound (rejections
//                                               # are structured errors)
//                         [--cache-dir DIR] [--cache-max-bytes N]
//                         [--decode-lru N]      # strong decode-LRU capacity
//                         # run cimflowd: a long-lived evaluation daemon with
//                         # warm model/program/decode caches across requests
//   cimflow_cli client    --socket /path/cimflowd.sock [--verb V] ...
//                         # drive a running cimflowd; V = evaluate (default),
//                         # sweep, search, stats, metrics, shutdown. evaluate
//                         # and sweep take the same flags and defaults as the
//                         # direct subcommands, and --json writes
//                         # byte-identical documents to theirs. `metrics`
//                         # prints Prometheus text exposition.
//
// Every subcommand honors --log-level debug|info|warn|error|off (and the
// CIMFLOW_LOG environment variable; the flag wins when both are given).
//
// --json/--csv destinations are validated: an unwritable path raises a
// cimflow::Error naming the path (exit 1) instead of silently dropping the
// artifact. The sweep --json report is deterministic: rerunning the same
// sweep (any thread count, cold or warm --cache-dir) writes identical bytes.
//
// Numeric flags are parsed strictly: "--batch 4x" or an empty list element
// is an error naming the flag, never a silent truncation to 4.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cimflow/core/dse.hpp"
#include "cimflow/core/flow.hpp"
#include "cimflow/search/driver.hpp"
#include "cimflow/service/protocol.hpp"
#include "cimflow/service/server.hpp"
#include "cimflow/sim/decoded.hpp"
#include "cimflow/sim/kernels_dispatch.hpp"
#include "cimflow/support/io.hpp"
#include "cimflow/support/logging.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"
#include "cimflow/graph/condense.hpp"
#include "cimflow/graph/serialize.hpp"
#include "cimflow/models/models.hpp"

namespace {

using namespace cimflow;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::set<std::string> bare;  ///< options given without a value (--validate)
  bool flag(const std::string& name) const { return options.count(name) != 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
  /// Value of an option that requires one; `--budget` with nothing following
  /// is a usage error, not the value "1".
  std::string value(const std::string& name, const std::string& fallback) const {
    if (bare.count(name) != 0) {
      raise(ErrorCode::kInvalidArgument, "option --" + name + " requires a value");
    }
    return get(name, fallback);
  }
  /// Same for path-valued options (`--json` with no path is not a file "1").
  std::string path(const std::string& name) const {
    if (bare.count(name) != 0) {
      raise(ErrorCode::kInvalidArgument, "option --" + name + " requires a path");
    }
    return get(name, "");
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "1";
      args.bare.insert(key);
    }
  }
  return args;
}

//// e.what() without its "InvalidArgument: " code-name prefix, so a wrapped
/// error reads "option --batch: invalid integer '4x'" with one prefix.
std::string bare_message(const Error& e) {
  const std::string prefix = std::string(to_string(e.code())) + ": ";
  const std::string what = e.what();
  return starts_with(what, prefix) ? what.substr(prefix.size()) : what;
}

// Strict numeric flags: "--batch 4x" is an error naming --batch, not 4.
std::int64_t int_option(const Args& args, const std::string& name,
                        const std::string& fallback) {
  try {
    return parse_i64(args.value(name, fallback));
  } catch (const Error& e) {
    raise(ErrorCode::kInvalidArgument, "option --" + name + ": " + bare_message(e));
  }
}

std::vector<std::int64_t> int_list_option(const Args& args, const std::string& name,
                                          const std::string& fallback) {
  try {
    return parse_i64_list(args.value(name, fallback));
  } catch (const Error& e) {
    raise(ErrorCode::kInvalidArgument, "option --" + name + ": " + bare_message(e));
  }
}

/// Strict --kernels parse mirroring the CIMFLOW_KERNELS env override:
/// auto (default) resolves to the best tier the host supports; scalar/avx2/
/// neon pin a tier (an unavailable one fails at simulator construction).
/// "--kernels avx512" is an error naming the flag, never a silent fallback.
sim::kernels::KernelTier kernels_option(const Args& args) {
  try {
    return sim::kernels::tier_from_string(args.value("kernels", "auto"));
  } catch (const Error& e) {
    raise(ErrorCode::kInvalidArgument, "option --kernels: " + bare_message(e));
  }
}

graph::Graph load_model(const Args& args) {
  if (args.flag("model-file")) {
    return graph::load_text_file(args.get("model-file", ""));
  }
  models::ModelOptions options;
  options.input_hw = int_option(args, "input-hw", "224");
  return models::build_model(args.get("model", "resnet18"), options);
}

arch::ArchConfig load_arch(const Args& args) {
  if (args.flag("arch")) return arch::ArchConfig::from_file(args.get("arch", ""));
  return arch::ArchConfig::cimflow_default();
}

std::vector<compiler::Strategy> parse_strategy_list(const std::string& text) {
  std::vector<compiler::Strategy> values;
  for (const std::string& piece : split(text, ',', /*keep_empty=*/true)) {
    if (piece.empty()) {
      raise(ErrorCode::kInvalidArgument,
            "option --strategies: empty element in list '" + text + "'");
    }
    values.push_back(compiler::strategy_from_string(piece));
  }
  return values;
}

int usage() {
  std::fprintf(stderr,
               "usage: cimflow_cli <evaluate|describe|plan|arch|sweep|serve|client> "
               "[--model NAME] "
               "[--model-file F] [--arch F] [--strategy generic|cimmlc|dp] "
               "[--batch N] [--validate] [--input-hw N] [--save F] "
               "[--mg LIST] [--flit LIST] [--strategies LIST] [--threads N]\n"
               "  evaluate --json F       write the full evaluation report as JSON\n"
               "  evaluate --trace F      write a Chrome trace-event timeline of the\n"
               "                          simulated run (load in chrome://tracing or\n"
               "                          ui.perfetto.dev; report bytes are unchanged)\n"
               "  --sim-threads N         shard each simulation across N workers\n"
               "                          (0 = all cores; byte-identical reports)\n"
               "  --kernels T             SIMD kernel tier: auto (default), scalar,\n"
               "                          avx2, neon — mirrors CIMFLOW_KERNELS; every\n"
               "                          tier produces byte-identical reports\n"
               "  --sync-window N         deprecated, ignored (the event-driven\n"
               "                          simulator has no rendezvous quantum)\n"
               "  --log-level L           stderr verbosity: debug|info|warn|error|off\n"
               "                          (default warn; CIMFLOW_LOG env also works)\n"
               "  sweep    --strategy S   search strategy: grid (default), random, pareto\n"
               "  sweep    --budget N     cap the number of evaluated points (0 = all)\n"
               "  sweep    --cache-dir D  reuse compiled programs across runs/processes\n"
               "  sweep    --objectives L Pareto objectives (latency,energy[,area])\n"
               "  sweep    --json F       write the sweep (deterministic bytes) as JSON\n"
               "  sweep    --csv F        write one CSV row per evaluated point\n"
               "  serve    --socket P     run cimflowd on UNIX socket P\n"
               "           [--workers N] [--queue N] [--cache-dir D] [--decode-lru N]\n"
               "           [--kernels T]\n"
               "  client   --socket P --verb evaluate|sweep|search|stats|metrics|shutdown\n"
               "                          drive a running cimflowd (same flags and\n"
               "                          byte-identical --json as the direct commands;\n"
               "                          metrics prints Prometheus text exposition)\n");
  return 2;
}

/// Writes `content` to the path under `flag` (when given) and confirms on
/// stderr; unwritable paths raise Error(kIoError) naming the path.
void write_requested(const Args& args, const std::string& flag, const std::string& content) {
  if (!args.flag(flag)) return;
  const std::string path = args.path(flag);
  write_text_file(path, content);
  std::fprintf(stderr, "wrote --%s %s\n", flag.c_str(), path.c_str());
}

/// Rejects bad --json/--csv destinations before the evaluation runs, so a
/// typo'd directory fails in milliseconds instead of after a long sweep.
void check_output_flags(const Args& args) {
  for (const char* flag : {"json", "csv", "trace"}) {
    if (args.flag(flag)) ensure_writable(args.path(flag));
  }
}

/// --sync-window died with the window scheduler: the event-driven simulator
/// has no rendezvous quantum to tune. The flag still strict-parses its value
/// (a typo'd number stays an error, never a silent acceptance), then warns
/// and is ignored so existing scripts keep running with identical results.
void warn_deprecated_sync_window(const Args& args) {
  if (!args.flag("sync-window")) return;
  (void)int_option(args, "sync-window", "0");
  CIMFLOW_WARN() << "--sync-window is deprecated and ignored (the event-driven "
                    "simulator has no rendezvous quantum)";
}

/// Builds a daemon request's params from the same flags and defaults the
/// direct subcommands use — the property making `client --json` output
/// byte-identical to direct `evaluate --json` / `sweep --json` output.
Json client_params(const Args& args, const std::string& verb) {
  JsonObject params;
  if (verb == "stats" || verb == "metrics" || verb == "shutdown") {
    return Json(std::move(params));
  }
  if (verb != "evaluate" && verb != "sweep" && verb != "search") {
    raise(ErrorCode::kInvalidArgument,
          "option --verb: unknown verb '" + verb +
              "' (expected evaluate, sweep, search, stats, metrics, or shutdown)");
  }
  params["model"] = Json(args.value("model", "resnet18"));
  params["input_hw"] = Json(int_option(args, "input-hw", "224"));
  // The raw config document; the daemon resolves it exactly like --arch does
  // for a direct invocation.
  if (args.flag("arch")) params["arch"] = Json::parse_file(args.path("arch"));
  if (verb == "evaluate") {
    params["strategy"] = Json(args.get("strategy", "dp"));
    params["batch"] = Json(int_option(args, "batch", "8"));
    if (args.flag("validate")) params["validate"] = Json(true);
    params["sim_threads"] = Json(int_option(args, "sim-threads", "1"));
    warn_deprecated_sync_window(args);
    return Json(std::move(params));
  }
  JsonArray mg, flit;
  for (std::int64_t v : int_list_option(args, "mg", "4,8,12,16")) mg.push_back(Json(v));
  for (std::int64_t v : int_list_option(args, "flit", "8,16")) flit.push_back(Json(v));
  params["mg"] = Json(std::move(mg));
  params["flit"] = Json(std::move(flit));
  JsonArray strategies;
  for (compiler::Strategy s : parse_strategy_list(args.value("strategies", "generic,dp"))) {
    strategies.push_back(Json(std::string(compiler::to_string(s))));
  }
  params["strategies"] = Json(std::move(strategies));
  params["batch"] = Json(int_option(args, "batch", "4"));
  params["budget"] = Json(int_option(args, "budget", "0"));
  params["sim_threads"] = Json(int_option(args, "sim-threads", "1"));
  params["threads"] = Json(int_option(args, "threads", "0"));
  JsonArray objectives;
  for (const std::string& name : split(args.value("objectives", "latency,energy"), ',')) {
    objectives.push_back(Json(name));
  }
  params["objectives"] = Json(std::move(objectives));
  params["search_strategy"] =
      Json(args.value("strategy", verb == "sweep" ? "grid" : "pareto"));
  return Json(std::move(params));
}

/// One request against a running cimflowd: connect, send, stream progress to
/// stderr, and write the result payload exactly where the direct subcommand
/// would (stdout, or --json). Exit 1 on a structured error event.
int run_client(const Args& args) {
  check_output_flags(args);
  const std::string socket_path = args.path("socket");
  if (socket_path.empty()) {
    raise(ErrorCode::kInvalidArgument, "client requires --socket PATH");
  }
  const std::string verb = args.value("verb", "evaluate");
  JsonObject request;
  request["id"] = Json(std::int64_t{1});
  request["verb"] = Json(verb);
  request["params"] = client_params(args, verb);

  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    raise(ErrorCode::kInvalidArgument,
          "socket path too long for AF_UNIX: " + socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    raise(ErrorCode::kIoError,
          std::string("cannot create UNIX socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    raise(ErrorCode::kIoError,
          "cannot connect to " + socket_path + ": " + reason +
              " (is cimflowd running? start it with: cimflow_cli serve --socket ...)");
  }
  const std::string line = service::wire_line(Json(std::move(request)));
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::send(fd, line.data() + off, line.size() - off, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      raise(ErrorCode::kIoError, "connection to " + socket_path + " broke mid-request");
    }
    off += static_cast<std::size_t>(n);
  }

  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      const std::string text = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (text.empty()) continue;
      const Json event = Json::parse(text);
      const std::string kind = event.get_or("event", std::string());
      if (kind == "progress") {
        std::fprintf(stderr, "  [%lld/%lld] done\n",
                     static_cast<long long>(event.get_or("completed", std::int64_t{0})),
                     static_cast<long long>(event.get_or("total", std::int64_t{0})));
      } else if (kind == "error") {
        const Json& detail = event.at("error");
        std::fprintf(stderr, "error: %s: %s\n",
                     detail.get_or("code", std::string("?")).c_str(),
                     detail.get_or("message", std::string()).c_str());
        ::close(fd);
        return 1;
      } else if (kind == "result") {
        if (event.contains("cache")) {
          std::fprintf(stderr, "cache: %s\n", event.at("cache").dump_line().c_str());
        }
        // String payloads (the `metrics` verb's Prometheus text) print
        // verbatim — a JSON-escaped dump would be unscrapeable.
        const Json& body = event.at("payload");
        const std::string payload =
            body.is_string() ? body.as_string() : body.dump() + "\n";
        if (args.flag("json")) {
          write_text_file(args.path("json"), payload);
          std::fprintf(stderr, "wrote --json %s\n", args.path("json").c_str());
        } else {
          std::printf("%s", payload.c_str());
        }
        ::close(fd);
        return 0;
      }
    }
  }
  ::close(fd);
  std::fprintf(stderr, "error: connection closed before a result event\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    log::init_from_env();
    if (args.flag("log-level")) {
      log::set_threshold(log::level_from_string(args.value("log-level", "warn")));
    }
    if (args.command == "arch") {
      std::printf("%s\n%s\n", load_arch(args).summary().c_str(),
                  load_arch(args).to_json().dump().c_str());
      return 0;
    }
    if (args.command == "describe") {
      const graph::Graph model = load_model(args);
      std::printf("%s\n", model.summary().c_str());
      const std::string text = graph::save_text(model, 0x51AF);
      if (args.flag("save")) {
        graph::save_text_file(model, 0x51AF, args.get("save", "model.txt"));
        std::printf("written to %s\n", args.get("save", "model.txt").c_str());
      } else {
        std::printf("%s", text.c_str());
      }
      return 0;
    }
    if (args.command == "plan") {
      const graph::Graph model = load_model(args);
      Flow flow(load_arch(args));
      FlowOptions options;
      options.strategy = compiler::strategy_from_string(args.get("strategy", "dp"));
      options.batch = int_option(args, "batch", "8");
      const compiler::CompileResult compiled = flow.compile(model, options);
      const graph::CondensedGraph cg = graph::CondensedGraph::build(model);
      std::printf("%s\n%s", model.summary().c_str(),
                  compiled.plan.summary(cg).c_str());
      std::printf("instructions: %lld, global image: %.1f MB\n",
                  (long long)compiled.stats.total_instructions,
                  static_cast<double>(compiled.stats.global_bytes) / 1e6);
      return 0;
    }
    if (args.command == "sweep") {
      check_output_flags(args);
      const graph::Graph model = load_model(args);
      search::SearchJob job;
      job.space.mg_sizes = int_list_option(args, "mg", "4,8,12,16");
      job.space.flit_sizes = int_list_option(args, "flit", "8,16");
      job.space.strategies = parse_strategy_list(args.value("strategies", "generic,dp"));
      job.batch = int_option(args, "batch", "4");
      const std::int64_t budget = int_option(args, "budget", "0");
      if (budget < 0) {
        raise(ErrorCode::kInvalidArgument,
              "--budget must be >= 0 (0 = the whole space)");
      }
      job.budget = static_cast<std::size_t>(budget);
      job.cache_dir = args.flag("cache-dir") ? args.path("cache-dir") : "";
      job.cache_max_bytes = int_option(args, "cache-max-bytes", "0");
      job.objectives.clear();
      for (const std::string& name :
           split(args.value("objectives", "latency,energy"), ',')) {
        job.objectives.push_back(search::objective_from_string(name));
      }
      job.progress = [](std::size_t completed, std::size_t budget) {
        std::fprintf(stderr, "  [%zu/%zu] done\n", completed, budget);
      };
      search::SearchDriver::Options dopt;
      dopt.engine.num_threads =
          static_cast<std::size_t>(int_option(args, "threads", "0"));
      dopt.engine.eval.sim_threads = int_option(args, "sim-threads", "1");
      dopt.engine.eval.kernel_tier = kernels_option(args);
      const std::unique_ptr<search::SearchStrategy> strategy =
          search::make_strategy(args.value("strategy", "grid"));
      const search::SearchResult result =
          search::SearchDriver(dopt).run(model, load_arch(args), *strategy, job);

      const std::vector<DsePoint> points = result.ok_points();
      const std::vector<std::size_t> front = result.front_positions(points);
      std::printf("%s\nsearch: %s evaluated %zu of %zu point(s), %zu on the front\n",
                  dse_points_table(points, front).c_str(), result.strategy.c_str(),
                  result.evaluations(), result.space_size, front.size());
      std::printf("sweep: %s\n", result.stats.summary().c_str());
      // The JSON report omits run telemetry (wall-clock, thread count, cache
      // temperatures) so identical sweeps produce byte-identical files.
      write_requested(args, "json", result.to_json(false).dump() + "\n");
      if (args.flag("csv")) {
        // Building the DseResult view copies every evaluated report; only
        // pay for it when a CSV was actually requested.
        const DseResult csv_view{result.points, result.stats};
        write_requested(args, "csv", csv_view.to_csv());
      }
      for (const DsePoint& p : result.points) {
        if (!p.ok) {
          std::printf("skipped mg=%lld flit=%lldB %s: %s\n",
                      (long long)p.macros_per_group, (long long)p.flit_bytes,
                      compiler::to_string(p.strategy), p.error.c_str());
        }
      }
      return result.stats.evaluated > 0 ? 0 : 1;
    }
    if (args.command == "serve") {
      service::DaemonOptions dopt;
      dopt.socket_path = args.path("socket");
      if (dopt.socket_path.empty()) {
        raise(ErrorCode::kInvalidArgument, "serve requires --socket PATH");
      }
      dopt.workers = static_cast<std::size_t>(int_option(args, "workers", "2"));
      dopt.max_queue = static_cast<std::size_t>(int_option(args, "queue", "8"));
      dopt.router.cache_dir = args.flag("cache-dir") ? args.path("cache-dir") : "";
      dopt.router.cache_max_bytes = int_option(args, "cache-max-bytes", "0");
      dopt.router.decode_lru = static_cast<std::size_t>(int_option(
          args, "decode-lru", std::to_string(sim::kDefaultStrongDecodes)));
      dopt.router.kernel_tier = kernels_option(args);
      service::Daemon daemon(dopt);
      std::fprintf(stderr, "cimflowd listening on %s (workers=%zu, queue=%zu)\n",
                   daemon.socket_path().c_str(), dopt.workers, dopt.max_queue);
      daemon.serve();
      std::fprintf(stderr, "cimflowd stopped\n");
      return 0;
    }
    if (args.command == "client") {
      return run_client(args);
    }
    if (args.command == "evaluate") {
      check_output_flags(args);
      const graph::Graph model = load_model(args);
      Flow flow(load_arch(args));
      FlowOptions options;
      options.strategy = compiler::strategy_from_string(args.get("strategy", "dp"));
      options.batch = int_option(args, "batch", "8");
      options.validate = args.flag("validate");
      options.eval.sim_threads = int_option(args, "sim-threads", "1");
      options.eval.kernel_tier = kernels_option(args);
      options.trace_path = args.flag("trace") ? args.path("trace") : "";
      warn_deprecated_sync_window(args);
      const EvaluationReport report = flow.evaluate(model, options);
      std::printf("%s\n", report.summary().c_str());
      for (const trace::PhaseTiming& phase : report.phase_timings) {
        CIMFLOW_INFO() << "phase " << phase.name << ": "
                       << strprintf("%.3f ms", phase.seconds * 1e3) << " ("
                       << phase.count << " span" << (phase.count == 1 ? "" : "s")
                       << ")";
      }
      if (args.flag("trace")) {
        std::fprintf(stderr, "wrote --trace %s\n", args.path("trace").c_str());
      }
      write_requested(args, "json", report.to_json().dump() + "\n");
      return report.validated && !report.validation_passed ? 1 : 0;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Anything non-domain (OOM, logic errors); malformed numeric options are
    // cimflow::Error now, caught above with the offending flag in the message.
    std::fprintf(stderr, "unexpected error: %s\n", e.what());
    return 2;
  }
  return usage();
}
