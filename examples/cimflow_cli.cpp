// cimflow_cli — command-line driver for the integrated workflow.
//
//   cimflow_cli evaluate  --model resnet18|vgg19|mobilenetv2|efficientnetb0|micro
//                         [--model-file m.txt] [--arch config.json]
//                         [--strategy generic|cimmlc|dp] [--batch N]
//                         [--validate] [--input-hw N]
//   cimflow_cli describe  --model NAME [--save m.txt]    # dump model format
//   cimflow_cli plan      --model NAME [--strategy S]    # mapping only
//   cimflow_cli arch      [--arch config.json]           # resolved parameters
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "cimflow/core/flow.hpp"
#include "cimflow/graph/condense.hpp"
#include "cimflow/graph/serialize.hpp"
#include "cimflow/models/models.hpp"

namespace {

using namespace cimflow;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const { return options.count(name) != 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "1";
    }
  }
  return args;
}

graph::Graph load_model(const Args& args) {
  if (args.flag("model-file")) {
    return graph::load_text_file(args.get("model-file", ""));
  }
  models::ModelOptions options;
  options.input_hw = std::stol(args.get("input-hw", "224"));
  return models::build_model(args.get("model", "resnet18"), options);
}

arch::ArchConfig load_arch(const Args& args) {
  if (args.flag("arch")) return arch::ArchConfig::from_file(args.get("arch", ""));
  return arch::ArchConfig::cimflow_default();
}

int usage() {
  std::fprintf(stderr,
               "usage: cimflow_cli <evaluate|describe|plan|arch> [--model NAME] "
               "[--model-file F] [--arch F] [--strategy generic|cimmlc|dp] "
               "[--batch N] [--validate] [--input-hw N] [--save F]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    if (args.command == "arch") {
      std::printf("%s\n%s\n", load_arch(args).summary().c_str(),
                  load_arch(args).to_json().dump().c_str());
      return 0;
    }
    if (args.command == "describe") {
      const graph::Graph model = load_model(args);
      std::printf("%s\n", model.summary().c_str());
      const std::string text = graph::save_text(model, 0x51AF);
      if (args.flag("save")) {
        graph::save_text_file(model, 0x51AF, args.get("save", "model.txt"));
        std::printf("written to %s\n", args.get("save", "model.txt").c_str());
      } else {
        std::printf("%s", text.c_str());
      }
      return 0;
    }
    if (args.command == "plan") {
      const graph::Graph model = load_model(args);
      Flow flow(load_arch(args));
      FlowOptions options;
      options.strategy = compiler::strategy_from_string(args.get("strategy", "dp"));
      options.batch = std::stol(args.get("batch", "8"));
      const compiler::CompileResult compiled = flow.compile(model, options);
      const graph::CondensedGraph cg = graph::CondensedGraph::build(model);
      std::printf("%s\n%s", model.summary().c_str(),
                  compiled.plan.summary(cg).c_str());
      std::printf("instructions: %lld, global image: %.1f MB\n",
                  (long long)compiled.stats.total_instructions,
                  static_cast<double>(compiled.stats.global_bytes) / 1e6);
      return 0;
    }
    if (args.command == "evaluate") {
      const graph::Graph model = load_model(args);
      Flow flow(load_arch(args));
      FlowOptions options;
      options.strategy = compiler::strategy_from_string(args.get("strategy", "dp"));
      options.batch = std::stol(args.get("batch", "8"));
      options.validate = args.flag("validate");
      const EvaluationReport report = flow.evaluate(model, options);
      std::printf("%s\n", report.summary().c_str());
      return report.validated && !report.validation_passed ? 1 : 0;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
