// Architectural design-space exploration with the DSE helper (paper
// Sec. IV-C): sweep macro-group size and NoC flit size for EfficientNetB0
// under two compilation strategies, then print the Pareto-optimal
// (throughput, energy) configurations.
//
// Build & run:  ./build/examples/design_space_exploration
#include <cstdio>

#include "cimflow/core/dse.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/support/table.hpp"
#include "cimflow/support/strings.hpp"

int main() {
  using namespace cimflow;

  const graph::Graph model = models::efficientnet_b0();
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();

  DseSweepOptions options;
  options.mg_sizes = {4, 8, 16};
  options.flit_sizes = {8, 16};
  options.strategies = {compiler::Strategy::kGeneric, compiler::Strategy::kDpOptimized};
  options.batch = 8;
  options.progress = [](std::size_t index, std::size_t total) {
    std::fprintf(stderr, "  [%zu/%zu] evaluating...\n", index + 1, total);
  };

  const std::vector<DsePoint> points = run_dse_sweep(model, base, options);
  const std::vector<std::size_t> front = pareto_front(points);

  TextTable table({"MG", "Flit", "Strategy", "TOPS", "mJ/image", "Pareto"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DsePoint& p = points[i];
    const bool on_front =
        std::find(front.begin(), front.end(), i) != front.end();
    table.add_row({strprintf("%lld", (long long)p.macros_per_group),
                   strprintf("%lldB", (long long)p.flit_bytes),
                   compiler::to_string(p.strategy), strprintf("%.4f", p.tops()),
                   strprintf("%.3f", p.energy_mj()), on_front ? "*" : ""});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("%zu of %zu configurations are Pareto-optimal (marked *).\n",
              front.size(), points.size());
  return 0;
}
