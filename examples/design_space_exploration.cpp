// Architectural design-space exploration (paper Sec. IV-C), two ways:
//
//   1. the dense (mg x flit x strategy) grid on the parallel DseEngine —
//      every configuration evaluated, Pareto front computed afterwards;
//   2. the adaptive search subsystem: ParetoRefineStrategy on a SearchDriver
//      seeds a coarse corner sample, then refines grid neighborhoods around
//      the evolving front, skipping dominated regions — recovering the same
//      front from a fraction of the evaluations.
//
// Build & run:  ./build/examples/design_space_exploration
#include <cstdio>

#include "cimflow/models/models.hpp"
#include "cimflow/search/driver.hpp"
#include "cimflow/support/strings.hpp"

int main() {
  using namespace cimflow;

  const graph::Graph model = models::efficientnet_b0();
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();

  search::SearchJob job;
  job.space.mg_sizes = {4, 8, 16};
  job.space.flit_sizes = {8, 16};
  job.space.strategies = {compiler::Strategy::kGeneric, compiler::Strategy::kDpOptimized};
  job.batch = 8;
  // The engine already fans points out across the machine, so each point
  // keeps the serial simulator kernel (the default
  // SearchDriver::Options::engine.eval.sim_threads = 1); for few-point jobs
  // of big models, raise it instead — reports are identical either way.
  // Points stream back as workers finish them; index is the grid index.
  job.on_point = [](const DsePoint& p) {
    std::fprintf(stderr, "  [%zu] mg=%lld flit=%lldB %s: %s\n", p.index + 1,
                 (long long)p.macros_per_group, (long long)p.flit_bytes,
                 compiler::to_string(p.strategy),
                 p.ok ? strprintf("%.4f TOPS", p.tops()).c_str()
                      : p.error.c_str());
  };

  const search::SearchDriver driver;  // default: one worker per hardware thread

  // --- Pass 1: dense grid (GridStrategy == the classic full sweep) ----------
  search::GridStrategy grid;
  const search::SearchResult dense = driver.run(model, base, grid, job);

  // --- Pass 2: Pareto-guided refinement under half the budget ---------------
  search::ParetoRefineStrategy refine;
  job.budget = job.space.size() / 2;
  const search::SearchResult adaptive = driver.run(model, base, refine, job);

  const std::vector<DsePoint> points = dense.ok_points();
  const std::vector<std::size_t> front = dense.front_positions(points);
  std::printf("%s\n", dse_points_table(points, front).c_str());
  std::printf("dense:    %zu evaluations, %zu Pareto-optimal (marked *)\n",
              dense.evaluations(), front.size());
  std::printf("adaptive: %zu evaluations (budget %zu), front %s\n",
              adaptive.evaluations(), adaptive.budget,
              adaptive.archive.covers_front(dense.archive)
                  ? "matches or dominates the dense front"
                  : "MISSES part of the dense front");
  std::printf("sweep: %s\n", dense.stats.summary().c_str());
  return 0;
}
