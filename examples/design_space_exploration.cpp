// Architectural design-space exploration with the parallel DSE engine (paper
// Sec. IV-C): sweep macro-group size and NoC flit size for EfficientNetB0
// under two compilation strategies, then print the Pareto-optimal
// (throughput, energy) configurations.
//
// Build & run:  ./build/examples/design_space_exploration
#include <cstdio>

#include "cimflow/core/dse.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/support/strings.hpp"

int main() {
  using namespace cimflow;

  const graph::Graph model = models::efficientnet_b0();
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();

  DseJob job;
  job.mg_sizes = {4, 8, 16};
  job.flit_sizes = {8, 16};
  job.strategies = {compiler::Strategy::kGeneric, compiler::Strategy::kDpOptimized};
  job.batch = 8;
  // Points stream back in grid order as workers finish them.
  job.on_point = [](const DsePoint& p) {
    std::fprintf(stderr, "  [%zu] mg=%lld flit=%lldB %s: %s\n", p.index + 1,
                 (long long)p.macros_per_group, (long long)p.flit_bytes,
                 compiler::to_string(p.strategy),
                 p.ok ? strprintf("%.4f TOPS", p.tops()).c_str()
                      : p.error.c_str());
  };

  DseEngine engine;  // default: one worker per hardware thread
  const DseResult result = engine.run(model, base, job);
  const std::vector<DsePoint> points = result.ok_points();
  const std::vector<std::size_t> front = pareto_front(points);

  std::printf("%s\n", dse_points_table(points, front).c_str());
  std::printf("%zu of %zu configurations are Pareto-optimal (marked *).\n",
              front.size(), points.size());
  std::printf("sweep: %s\n", result.stats.summary().c_str());
  return 0;
}
